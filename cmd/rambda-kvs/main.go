// rambda-kvs runs the in-memory key-value store evaluation of paper
// Sec. VI-B: peak throughput (Fig. 8), latency (Fig. 9), the batch-size
// sweep (Fig. 10), and power efficiency (Tab. III) across the CPU,
// SmartNIC, and RAMBDA designs.
package main

import (
	"flag"
	"fmt"

	"rambda/internal/experiments"
)

func main() {
	keys := flag.Int("keys", 1<<20, "preloaded key-value pairs")
	requests := flag.Int("requests", 60000, "requests per measurement")
	batch := flag.Int("batch", 32, "peak-throughput batch size")
	theta := flag.Float64("theta", 0.99, "Zipf skew")
	sweep := flag.Bool("sweep", false, "also run the Fig. 10 batch sweep")
	seed := flag.Uint64("seed", 8, "workload seed")
	flag.Parse()

	cfg := experiments.DefaultKVSConfig()
	cfg.Keys = *keys
	cfg.Requests = *requests
	cfg.Batch = *batch
	cfg.ZipfTheta = *theta
	cfg.Seed = *seed

	fmt.Println(experiments.Fig8Table(cfg))
	fmt.Println(experiments.Fig9Table(cfg))
	fmt.Println(experiments.Tab3Table(cfg))
	if *sweep {
		fmt.Println(experiments.Fig10Table(cfg))
	}
}
