// rambda-micro runs the single-machine microbenchmark of paper
// Sec. VI-A (Fig. 7): a permuted linked-list walk served by CPU cores,
// the RAMBDA accelerator (cpoll and spin-polling variants), and the
// local-memory projections, on DRAM and emulated NVM.
package main

import (
	"flag"
	"fmt"

	"rambda/internal/experiments"
)

func main() {
	nodes := flag.Int("nodes", 1<<20, "linked-list nodes (64 B each)")
	requests := flag.Int("requests", 60000, "requests per configuration")
	window := flag.Int("window", 16, "outstanding requests per connection")
	seed := flag.Uint64("seed", 7, "workload seed")
	flag.Parse()

	cfg := experiments.Fig7Config{
		Nodes: *nodes, Requests: *requests, Window: *window, Seed: *seed,
	}
	fmt.Println(experiments.Fig7Table(cfg))
}
