// rambda-tx runs the chain-replicated transaction evaluation of paper
// Sec. VI-C (Fig. 12): RAMBDA's combined near-data transactions against
// HyperLoop's sequential group-based RDMA operations on an emulated
// two-replica NVM chain.
package main

import (
	"flag"
	"fmt"

	"rambda/internal/experiments"
)

func main() {
	pairs := flag.Int("pairs", 20000, "preloaded key-value pairs per replica")
	txs := flag.Int("txs", 20000, "transactions per measurement")
	seed := flag.Uint64("seed", 12, "workload seed")
	flag.Parse()

	cfg := experiments.Fig12Config{Pairs: *pairs, Transactions: *txs, Seed: *seed}
	fmt.Println(experiments.Fig12Table(cfg))
}
