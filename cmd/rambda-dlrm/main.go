// rambda-dlrm runs the recommendation-inference evaluation of paper
// Sec. VI-D (Fig. 13): MERCI-based embedding reduction on CPU core
// sweeps and the RAMBDA accelerator variants over six Amazon
// Review-like datasets.
package main

import (
	"flag"
	"fmt"

	"rambda/internal/experiments"
)

func main() {
	queries := flag.Int("queries", 20000, "queries per measurement")
	rowScale := flag.Float64("rowscale", 0.25, "embedding table height scale")
	seed := flag.Uint64("seed", 13, "workload seed")
	flag.Parse()

	cfg := experiments.Fig13Config{
		Queries: *queries, Dim: 64, RowScale: *rowScale, Seed: *seed,
	}
	fmt.Println(experiments.Fig13Table(cfg))
}
