// rambda-bench is the performance-regression harness: it times every
// paper figure end to end, runs the sim engine's microbenchmark
// kernels, and writes the results as JSON (BENCH_<pr>.json in the repo
// root records the trajectory across PRs).
//
// Usage:
//
//	go run ./cmd/rambda-bench -quick                 # figures + micro, write BENCH_8.json
//	go run ./cmd/rambda-bench -skip-figures          # microbenchmarks only
//	go run ./cmd/rambda-bench -quick -baseline BENCH_7.json
//	go run ./cmd/rambda-bench -quick -sim-parallel 4 # partitioned engine, 4 goroutines per sim
//
// With -baseline, the run fails (exit 1) when anything regresses:
//   - a microbenchmark's machine-normalized score (ns/op divided by the
//     RNGUint64 calibration kernel's ns/op, so a baseline committed from
//     one machine remains meaningful on CI hardware of a different
//     speed) grows by more than -max-regress (default 25%);
//   - a microbenchmark allocates more per op than the baseline (with a
//     one-alloc slack) — steady-state-zero kernels must stay at zero;
//   - a figure's heap allocation count grows by more than -max-regress
//     (figures are deterministic, so alloc counts are too; only checked
//     when both runs used the same -quick scale).
//
// JSON schema (BENCH_*.json):
//
//	{
//	  "schema": "rambda-bench/1",
//	  "quick": bool, "parallel": int, "go": string,
//	  "calibration_ns_per_op": float,        // RNGUint64 ns/op
//	  "figures": {"<id>": {
//	      "wall_ns":        int,   // figure jobs + table render
//	      "allocs":         int,   // heap allocations during the figure
//	      "peak_rss_bytes": int    // per-figure VmHWM (high-water mark reset before each figure; cumulative where /proc is unavailable)
//	  }},
//	  "micro": {"<kernel>": {
//	      "ns_per_op": float, "allocs_per_op": int, "bytes_per_op": int,
//	      "normalized": float      // ns_per_op / calibration_ns_per_op
//	  }}
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"rambda/internal/chainrep"
	"rambda/internal/experiments"
	"rambda/internal/lsm"
	"rambda/internal/rnic"
	"rambda/internal/runner"
	"rambda/internal/scaleout"
	"rambda/internal/sim"
)

type figureResult struct {
	WallNS       int64 `json:"wall_ns"`
	Allocs       int64 `json:"allocs"`
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

type microResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Normalized  float64 `json:"normalized"`
	// Filled only when -seed points at a BENCH file measured on the
	// pre-optimization engine: the seed's raw ns/op and the speedup of
	// this run over it (same-machine comparison, not normalized).
	SeedNsPerOp   float64 `json:"seed_ns_per_op,omitempty"`
	SpeedupVsSeed float64 `json:"speedup_vs_seed,omitempty"`
}

type report struct {
	Schema        string                  `json:"schema"`
	Quick         bool                    `json:"quick"`
	Parallel      int                     `json:"parallel"`
	SimParallel   int                     `json:"sim_parallel,omitempty"`
	Go            string                  `json:"go"`
	CalibrationNs float64                 `json:"calibration_ns_per_op"`
	Figures       map[string]figureResult `json:"figures"`
	Micro         map[string]microResult  `json:"micro"`
}

// microKernels names each sim kernel timed by the harness. RNGUint64 is
// also the calibration reference and is timed first, separately.
var microKernels = []struct {
	name string
	fn   func(n int)
}{
	{"ResourceAcquireGapFree", func(n int) { sim.BenchAcquireGapFree(n) }},
	{"ResourceAcquireGapHeavy", func(n int) { sim.BenchAcquireGapHeavy(n) }},
	{"ResourceAcquireGapSaturated", func(n int) { sim.BenchAcquireGapSaturated(n) }},
	{"ClosedLoopRun", func(n int) { sim.BenchClosedLoop(n) }},
	{"HistogramRecord", func(n int) { sim.BenchHistogramRecord(n) }},
	{"HistogramPercentile", func(n int) { sim.BenchHistogramPercentile(n) }},
	{"ZipfNext", func(n int) { sim.BenchZipf(n) }},
	{"ParallelEpochBarrier", func(n int) { sim.BenchParallelEpochBarrier(n) }},
	{"RCWriteHotPath", func(n int) { rnic.BenchWriteHotPath(n) }},
	{"RCRetransmitStorm", func(n int) { rnic.BenchRetransmitStorm(n) }},
	{"ChainFailoverReplay", func(n int) { chainrep.BenchFailoverReplay(n) }},
	{"ShardRouteHotPath", func(n int) { scaleout.BenchShardRouteHotPath(n) }},
	{"MigrationFailoverReplay", func(n int) { scaleout.BenchMigrationFailoverReplay(n) }},
	{"LSMReadHotPath", func(n int) { lsm.BenchReadHotPath(n) }},
	{"ScanMerge", func(n int) { lsm.BenchScanMerge(n) }},
}

func main() {
	quick := flag.Bool("quick", false, "run figures at quick scale (mirrors rambda-figures -quick)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for figure sweep points")
	simParallel := flag.Int("sim-parallel", 1, "goroutines per simulation for the partitioned engine and its pipelined streams")
	out := flag.String("out", "BENCH_8.json", "output JSON path")
	only := flag.String("only", "", "time a single figure id (e.g. fig7)")
	skipFigures := flag.Bool("skip-figures", false, "skip figure timings, run only the sim microbenchmarks")
	baselinePath := flag.String("baseline", "", "baseline BENCH_*.json to compare microbenchmarks against")
	seedPath := flag.String("seed", "", "BENCH_*.json measured on the pre-optimization engine; embeds per-kernel speedups in the output")
	maxRegress := flag.Float64("max-regress", 0.25, "fail when a microbenchmark's normalized score regresses by more than this fraction")
	traceOut := flag.String("trace-out", "", "write the breakdown figure's spans as Chrome trace_event JSON to this file")
	metricsOut := flag.String("metrics-out", "", "write the breakdown figure's metrics registry as JSON to this file")
	flag.Parse()

	runner.SetDefault(*parallel)
	sim.SetParallel(*simParallel)
	rep := report{
		Schema:      "rambda-bench/1",
		Quick:       *quick,
		Parallel:    *parallel,
		SimParallel: *simParallel,
		Go:          runtime.Version(),
		Figures:     map[string]figureResult{},
		Micro:       map[string]microResult{},
	}

	// Calibration first, on a quiet process.
	calib := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		sim.BenchRNG(b.N)
	})
	rep.CalibrationNs = nsPerOp(calib)
	fmt.Fprintf(os.Stderr, "calibration RNGUint64: %.2f ns/op\n", rep.CalibrationNs)
	rep.Micro["RNGUint64"] = microResult{
		NsPerOp:     nsPerOp(calib),
		AllocsPerOp: calib.AllocsPerOp(),
		BytesPerOp:  calib.AllocedBytesPerOp(),
		Normalized:  1,
	}

	for _, k := range microKernels {
		k := k
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			k.fn(b.N)
		})
		m := microResult{
			NsPerOp:     nsPerOp(r),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		m.Normalized = m.NsPerOp / rep.CalibrationNs
		rep.Micro[k.name] = m
		fmt.Fprintf(os.Stderr, "micro %-28s %12.2f ns/op  %6d B/op  %4d allocs/op\n",
			k.name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}

	if !*skipFigures {
		for _, s := range experiments.StandardSpecsObs(*quick, *traceOut, *metricsOut) {
			if *only != "" && !strings.EqualFold(*only, s.ID) {
				continue
			}
			resetPeakRSS()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			if err := runner.Run(*parallel, s.Jobs); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			_ = s.Table().String()
			wall := time.Since(start)
			runtime.ReadMemStats(&ms1)
			rep.Figures[s.ID] = figureResult{
				WallNS:       wall.Nanoseconds(),
				Allocs:       int64(ms1.Mallocs - ms0.Mallocs),
				PeakRSSBytes: peakRSSBytes(),
			}
			fmt.Fprintf(os.Stderr, "figure %-12s %10s  %12d allocs  peak-rss %d MiB\n",
				s.ID, wall.Round(time.Millisecond), ms1.Mallocs-ms0.Mallocs, peakRSSBytes()>>20)
		}
	}

	if *seedPath != "" {
		embedSeed(&rep, *seedPath)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if *baselinePath != "" {
		if failed := compareBaseline(&rep, *baselinePath, *maxRegress); failed {
			os.Exit(1)
		}
	}
}

// nsPerOp keeps fractional precision (BenchmarkResult.NsPerOp truncates
// to an integer, useless for sub-100ns kernels).
func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N <= 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// compareBaseline checks every microbenchmark present in both runs
// (normalized time and allocs/op) plus per-figure alloc counts, and
// reports regressions beyond maxRegress.
func compareBaseline(rep *report, path string, maxRegress float64) (failed bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
		return true
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "baseline %s: %v\n", path, err)
		return true
	}
	if base.CalibrationNs <= 0 {
		fmt.Fprintf(os.Stderr, "baseline %s has no calibration; skipping regression check\n", path)
		return false
	}
	// Kernels whose wall time is dominated by goroutine wakeups rather
	// than single-threaded compute: the RNGUint64 calibration does not
	// normalize scheduler latency across machines, so their times are
	// recorded but not gated. Alloc counts are still checked.
	schedulerBound := map[string]bool{"ParallelEpochBarrier": true}
	for name, cur := range rep.Micro {
		b, ok := base.Micro[name]
		if !ok || b.Normalized <= 0 || name == "RNGUint64" {
			continue
		}
		ratio := cur.Normalized / b.Normalized
		status := "ok"
		if ratio > 1+maxRegress {
			if schedulerBound[name] {
				status = "slower (not gated: scheduler-bound)"
			} else {
				status = "REGRESSION"
				failed = true
			}
		}
		// Alloc counts are deterministic per op; one alloc of slack
		// absorbs testing.Benchmark's occasional warmup remainder.
		if cur.AllocsPerOp > b.AllocsPerOp+1 {
			status = "ALLOC REGRESSION"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "compare %-28s baseline %8.2f (%d allocs)  now %8.2f (%d allocs)  ratio %.2fx  %s\n",
			name, b.Normalized, b.AllocsPerOp, cur.Normalized, cur.AllocsPerOp, ratio, status)
	}
	// Figure alloc counts are only comparable at the same sweep scale.
	// Tiny figures (a few thousand allocs) are dominated by harness and
	// engine setup, where a handful of extra allocations blows past any
	// ratio; an absolute slack keeps the gate meaningful for the large
	// sweeps without tripping on setup noise.
	const figureAllocSlack = 8192
	if rep.Quick == base.Quick {
		for id, cur := range rep.Figures {
			b, ok := base.Figures[id]
			if !ok || b.Allocs <= 0 {
				continue
			}
			ratio := float64(cur.Allocs) / float64(b.Allocs)
			status := "ok"
			if ratio > 1+maxRegress && cur.Allocs-b.Allocs > figureAllocSlack {
				status = "ALLOC REGRESSION"
				failed = true
			}
			fmt.Fprintf(os.Stderr, "compare %-28s baseline %12d allocs  now %12d allocs  ratio %.2fx  %s\n",
				id, b.Allocs, cur.Allocs, ratio, status)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "FAIL: regression beyond %.0f%% vs %s\n", maxRegress*100, path)
	}
	return failed
}

// embedSeed copies the pre-optimization ns/op for each kernel out of a
// seed BENCH file and records the raw same-machine speedup alongside
// this run's numbers.
func embedSeed(rep *report, path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seed: %v\n", err)
		return
	}
	var seed report
	if err := json.Unmarshal(raw, &seed); err != nil {
		fmt.Fprintf(os.Stderr, "seed %s: %v\n", path, err)
		return
	}
	for name, cur := range rep.Micro {
		s, ok := seed.Micro[name]
		if !ok || s.NsPerOp <= 0 || cur.NsPerOp <= 0 {
			continue
		}
		cur.SeedNsPerOp = s.NsPerOp
		cur.SpeedupVsSeed = s.NsPerOp / cur.NsPerOp
		rep.Micro[name] = cur
		fmt.Fprintf(os.Stderr, "seed    %-28s %12.2f -> %10.2f ns/op  %8.1fx\n",
			name, s.NsPerOp, cur.NsPerOp, cur.SpeedupVsSeed)
	}
}

// resetPeakRSS makes the next peakRSSBytes reading per-figure: free
// heap is returned to the OS, then the kernel's resident high-water
// mark is cleared (/proc/self/clear_refs, value 5). Best-effort — where
// clear_refs is unavailable the readings degrade to the old cumulative
// behaviour.
func resetPeakRSS() {
	runtime.GC()
	debug.FreeOSMemory()
	_ = os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}

// peakRSSBytes reads the process resident-set high-water mark (VmHWM),
// reset before each figure by resetPeakRSS so the value reflects that
// figure's working set. Returns 0 where /proc is unavailable.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
