// rambda-figures regenerates every table and figure of the paper's
// evaluation section on the simulated testbed.
//
// Usage:
//
//	go run ./cmd/rambda-figures              # everything, one worker per CPU
//	go run ./cmd/rambda-figures -only fig8   # one experiment
//	go run ./cmd/rambda-figures -quick       # smaller workloads
//	go run ./cmd/rambda-figures -parallel 1  # sequential (pre-harness behaviour)
//
// Every figure enumerates its sweep as independent runner jobs; the
// CLI flattens all selected figures into a single worker pool so whole
// figures overlap with each other as well as their own points. Output
// is printed in a fixed order from slot-indexed results, so it is
// byte-identical for every -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"rambda/internal/experiments"
	"rambda/internal/runner"
)

func main() {
	only := flag.String("only", "", "run a single experiment: fig1, fig5, fig7, fig8, fig9, fig10, fig12, fig13, tab3, scalability")
	quick := flag.Bool("quick", false, "scale workloads down for a fast pass")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for sweep points (1 = sequential)")
	flag.Parse()

	runner.SetDefault(*parallel)

	f7 := experiments.DefaultFig7Config()
	kvs := experiments.DefaultKVSConfig()
	f12 := experiments.DefaultFig12Config()
	f13 := experiments.DefaultFig13Config()
	fig1Requests := 20000
	if *quick {
		fig1Requests = 4000
		f7.Nodes = 1 << 18
		f7.Requests = 20000
		kvs.Keys = 1 << 18
		kvs.Requests = 15000
		f12.Transactions = 4000
		f13.Queries = 6000
		f13.RowScale = 0.1
	}

	specs := []experiments.Spec{
		experiments.Fig1Spec(fig1Requests, 1),
		experiments.Fig5Spec(),
		experiments.Fig7Spec(f7),
		experiments.Fig8Spec(kvs),
		experiments.Fig9Spec(kvs),
		experiments.Fig10Spec(kvs),
		experiments.Tab3Spec(kvs),
		experiments.Fig12Spec(f12),
		experiments.Fig13Spec(f13),
		experiments.ScalabilitySpec(experiments.DefaultScalabilityConfig()),
	}

	var selected []experiments.Spec
	for _, s := range specs {
		if *only == "" || strings.EqualFold(*only, s.ID) {
			selected = append(selected, s)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}

	// One flat pool across every selected figure: points of different
	// figures run side by side, results land in per-figure slots.
	var jobs []runner.Job
	for _, s := range selected {
		jobs = append(jobs, s.Jobs...)
	}
	if err := runner.Run(*parallel, jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, s := range selected {
		fmt.Println(s.Table())
	}
}
