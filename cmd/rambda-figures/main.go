// rambda-figures regenerates every table and figure of the paper's
// evaluation section on the simulated testbed.
//
// Usage:
//
//	go run ./cmd/rambda-figures              # everything, one worker per CPU
//	go run ./cmd/rambda-figures -only fig8   # one experiment
//	go run ./cmd/rambda-figures -quick       # smaller workloads
//	go run ./cmd/rambda-figures -parallel 1  # sequential (pre-harness behaviour)
//	go run ./cmd/rambda-figures -sim-parallel 4  # partitioned engine, 4 goroutines per sim
//
// Every figure enumerates its sweep as independent runner jobs; the
// CLI flattens all selected figures into a single worker pool so whole
// figures overlap with each other as well as their own points. Output
// is printed in a fixed order from slot-indexed results, so it is
// byte-identical for every -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"

	"rambda/internal/experiments"
	"rambda/internal/runner"
	"rambda/internal/sim"
)

func main() {
	only := flag.String("only", "", "run a single experiment: fig1, fig5, fig7, fig8, fig9, fig10, fig12, fig13, tab3, scalability, chaos, breakdown, scaleout, chaos-scaleout, ycsb")
	quick := flag.Bool("quick", false, "scale workloads down for a fast pass")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for sweep points (1 = sequential)")
	simParallel := flag.Int("sim-parallel", 1, "goroutines per simulation for the partitioned engine and its pipelined streams (1 = sequential; output is byte-identical for every value)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the figure runs to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after all figures) to this file")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	traceOut := flag.String("trace-out", "", "write the breakdown experiment's spans as Chrome trace_event JSON to this file")
	metricsOut := flag.String("metrics-out", "", "write the breakdown experiment's metrics registry as JSON to this file")
	scaleoutMetricsOut := flag.String("scaleout-metrics-out", "", "write the scaleout sweep's per-point metrics registries as JSON to this file")
	chaosScaleoutMetricsOut := flag.String("chaos-scaleout-metrics-out", "", "write the chaos-scaleout sweep's per-point metrics registries (scaleout + fault-layer gauges) as JSON to this file")
	ycsbMetricsOut := flag.String("ycsb-metrics-out", "", "write the ycsb sweep's per-point storage-backend metrics registries as JSON to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer trace.Stop()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	runner.SetDefault(*parallel)
	sim.SetParallel(*simParallel)

	specs := experiments.StandardSpecsPaths(*quick, experiments.ObsPaths{
		TraceOut:                *traceOut,
		MetricsOut:              *metricsOut,
		ScaleoutMetricsOut:      *scaleoutMetricsOut,
		ChaosScaleoutMetricsOut: *chaosScaleoutMetricsOut,
		YCSBMetricsOut:          *ycsbMetricsOut,
	})

	var selected []experiments.Spec
	for _, s := range specs {
		if *only == "" || strings.EqualFold(*only, s.ID) {
			selected = append(selected, s)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}

	// One flat pool across every selected figure: points of different
	// figures run side by side, results land in per-figure slots.
	var jobs []runner.Job
	for _, s := range selected {
		jobs = append(jobs, s.Jobs...)
	}
	if err := runner.Run(*parallel, jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, s := range selected {
		fmt.Println(s.Table())
	}
}
