// rambda-figures regenerates every table and figure of the paper's
// evaluation section on the simulated testbed.
//
// Usage:
//
//	go run ./cmd/rambda-figures              # everything
//	go run ./cmd/rambda-figures -only fig8   # one experiment
//	go run ./cmd/rambda-figures -quick       # smaller workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rambda/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment: fig1, fig5, fig7, fig8, fig9, fig10, fig12, fig13, tab3, scalability")
	quick := flag.Bool("quick", false, "scale workloads down for a fast pass")
	flag.Parse()

	f7 := experiments.DefaultFig7Config()
	kvs := experiments.DefaultKVSConfig()
	f12 := experiments.DefaultFig12Config()
	f13 := experiments.DefaultFig13Config()
	fig1Requests := 20000
	if *quick {
		fig1Requests = 4000
		f7.Nodes = 1 << 18
		f7.Requests = 20000
		kvs.Keys = 1 << 18
		kvs.Requests = 15000
		f12.Transactions = 4000
		f13.Queries = 6000
		f13.RowScale = 0.1
	}

	runs := []struct {
		id string
		fn func() *experiments.Table
	}{
		{"fig1", func() *experiments.Table { return experiments.Fig1Table(fig1Requests, 1) }},
		{"fig5", func() *experiments.Table { return experiments.Fig5Table() }},
		{"fig7", func() *experiments.Table { return experiments.Fig7Table(f7) }},
		{"fig8", func() *experiments.Table { return experiments.Fig8Table(kvs) }},
		{"fig9", func() *experiments.Table { return experiments.Fig9Table(kvs) }},
		{"fig10", func() *experiments.Table { return experiments.Fig10Table(kvs) }},
		{"tab3", func() *experiments.Table { return experiments.Tab3Table(kvs) }},
		{"fig12", func() *experiments.Table { return experiments.Fig12Table(f12) }},
		{"fig13", func() *experiments.Table { return experiments.Fig13Table(f13) }},
		{"scalability", func() *experiments.Table { return experiments.ScalabilityTable(experiments.DefaultScalabilityConfig()) }},
	}

	matched := false
	for _, r := range runs {
		if *only != "" && !strings.EqualFold(*only, r.id) {
			continue
		}
		matched = true
		fmt.Println(r.fn())
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
