// multitenant: two applications sharing one cc-accelerator.
//
// RAMBDA's modularized design runs the APU as the only
// application-specific block; rings, cpoll, the scheduler, and the SQ
// handler are shared infrastructure. This example co-locates a
// latency-critical echo service and a memory-hungry scan service on one
// accelerator and shows how the round-robin scheduler and shared
// cc-link shape each tenant's latency.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"encoding/binary"
	"fmt"

	"rambda"
)

const (
	echoConns = 2
	scanConns = 2
	requests  = 8000
)

func main() {
	server := rambda.NewMachine(rambda.MachineConfig{Name: "server", Variant: rambda.Prototype})
	client := rambda.NewMachine(rambda.MachineConfig{Name: "client"})
	rambda.Connect(server, client)

	// The scan tenant's working set, in host DRAM behind the cc-link.
	scanData := server.Space.Alloc("scan-data", 1<<20, rambda.DRAM)

	// One APU dispatching by connection: the first byte selects the
	// tenant (a minimal multi-tenant dispatch, as a shared-FPGA
	// hypervisor would provide).
	app := rambda.AppFunc(func(ctx *rambda.AppCtx, now rambda.Time, req []byte) ([]byte, rambda.Time) {
		switch req[0] {
		case 'e': // echo tenant: a few cycles, no memory
			return req[1:], ctx.Compute(now, 4)
		case 's': // scan tenant: 16 dependent reads over the cc-link
			idx := binary.LittleEndian.Uint32(req[1:5])
			t := now
			for i := 0; i < 16; i++ {
				off := (uint64(idx) + uint64(i)*4096) % uint64(scanData.Size-64)
				t = ctx.Read(t, scanData.Base+rambda.Addr(off), 64)
			}
			return []byte("scanned"), ctx.Compute(t, 32)
		default:
			panic("unknown tenant")
		}
	})

	opts := rambda.DefaultServerOptions()
	opts.Connections = echoConns + scanConns
	srv := rambda.NewServer(server, app, opts)
	conns := make([]*rambda.Client, opts.Connections)
	for i := range conns {
		conns[i] = rambda.Dial(client, srv, i)
	}

	run := func(withScan bool) *rambda.Histogram {
		echoLat := rambda.NewHistogram(0)
		clients := echoConns * 8
		if withScan {
			clients = (echoConns + scanConns) * 8
		}
		rng := rambda.NewRNG(5)
		rambda.ClosedLoop{Clients: clients, PerClient: requests / clients, Warmup: 2,
			Stagger: 50 * rambda.Nanosecond}.Run(
			func(id int, issue rambda.Time) rambda.Time {
				conn := id % echoConns
				payload := []byte{'e', 'c', 'h', 'o'}
				isEcho := true
				if withScan && id%(echoConns+scanConns) >= echoConns {
					conn = echoConns + id%scanConns
					payload = make([]byte, 5)
					payload[0] = 's'
					binary.LittleEndian.PutUint32(payload[1:], uint32(rng.Uint64n(1<<20)))
					isEcho = false
				}
				_, done := conns[conn].Call(issue, payload)
				if isEcho {
					echoLat.Record(done - issue)
				}
				return done
			})
		return echoLat
	}

	alone := run(false)
	shared := run(true)
	fmt.Printf("%-22s  %-10s  %-10s\n", "echo tenant", "avg", "p99")
	fmt.Printf("%-22s  %-10v  %-10v\n", "alone on the accel", alone.Mean(), alone.P99())
	fmt.Printf("%-22s  %-10v  %-10v\n", "sharing with scanner", shared.Mean(), shared.P99())
	fmt.Printf("\ninterference: +%.1f%% avg latency from the co-located scan tenant\n",
		100*(float64(shared.Mean())/float64(alone.Mean())-1))
}
