// kvcache: a read-through in-memory key-value store on RAMBDA,
// exercising the paper's KVS design (Sec. IV-A) under a skewed YCSB-C
// style workload.
//
// The example compares the RAMBDA accelerator against the CPU baseline
// on the same store contents, printing throughput and latency for both
// — a miniature of the paper's Fig. 8/9.
//
// Run with:
//
//	go run ./examples/kvcache
package main

import (
	"fmt"

	"rambda"
	"rambda/internal/hostcpu"
	"rambda/internal/kvs"
)

const (
	keys        = 100_000
	connections = 4
	window      = 32
	requests    = 30_000
)

func key(i int) []byte { return []byte(fmt.Sprintf("item-%08d", i)) }

// buildStore preloads a MICA-style store in the machine's data memory.
func buildStore(m *rambda.Machine) *kvs.Store {
	store := kvs.New(m.Space, kvs.Config{
		Buckets:   keys / 4,
		PoolBytes: keys * 192,
		Kind:      m.DataKind(),
	})
	var trace []kvs.Access // reused across the preload loop
	for i := 0; i < keys; i++ {
		var err error
		if trace, err = store.PutInto(trace[:0], key(i), []byte(fmt.Sprintf("value-of-%d", i))); err != nil {
			panic(err)
		}
	}
	return store
}

func workload(seed uint64) func() kvs.Request {
	rng := rambda.NewRNG(seed)
	return func() kvs.Request {
		k := int(rng.Uint64n(keys))
		if rng.Intn(10) == 0 { // 10% writes
			return kvs.Request{Op: kvs.OpPut, Key: key(k), Val: []byte("updated!")}
		}
		return kvs.Request{Op: kvs.OpGet, Key: key(k)}
	}
}

func runRambda() *rambda.Result {
	server := rambda.NewMachine(rambda.MachineConfig{Name: "server", Variant: rambda.Prototype})
	client := rambda.NewMachine(rambda.MachineConfig{Name: "client"})
	rambda.Connect(server, client)
	store := buildStore(server)

	// Per-server request-path scratch: the store's value/trace buffers,
	// the response encode buffer, and a zero slab for modelled writes.
	// The server handles one request at a time, so reuse is safe; the
	// returned frame is consumed by the transport before the next call.
	var (
		sc      kvs.Scratch
		respBuf []byte
		zeros   []byte
	)
	app := rambda.AppFunc(func(ctx *rambda.AppCtx, now rambda.Time, reqB []byte) ([]byte, rambda.Time) {
		req, err := kvs.DecodeRequest(reqB)
		if err != nil {
			panic(err)
		}
		resp, trace := kvs.ApplyScratch(store, req, &sc)
		t := ctx.Compute(now, 6) // hash unit
		for _, a := range trace {
			if a.Write {
				if a.Bytes > len(zeros) {
					zeros = make([]byte, a.Bytes)
				}
				t = ctx.Write(t, a.Addr, zeros[:a.Bytes])
			} else {
				t = ctx.Read(t, a.Addr, a.Bytes)
			}
		}
		respBuf = kvs.AppendResponse(respBuf[:0], resp)
		return respBuf, t
	})
	opts := rambda.DefaultServerOptions()
	opts.Connections = connections
	srv := rambda.NewServer(server, app, opts)
	conns := make([]*rambda.Client, connections)
	for i := range conns {
		conns[i] = rambda.Dial(client, srv, i)
	}

	next := workload(42)
	var reqBuf []byte // reused: Call consumes the frame before returning
	return rambda.ClosedLoop{
		Clients: connections * window, PerClient: requests / (connections * window),
		Warmup: 2, Stagger: 40 * rambda.Nanosecond,
	}.Run(func(id int, issue rambda.Time) rambda.Time {
		reqBuf = kvs.AppendRequest(reqBuf[:0], next())
		_, done := conns[id%connections].Call(issue, reqBuf)
		return done
	})
}

func runCPU() *rambda.Result {
	server := rambda.NewMachine(rambda.MachineConfig{Name: "server"})
	client := rambda.NewMachine(rambda.MachineConfig{Name: "client"})
	rambda.Connect(server, client)
	store := buildStore(server)

	// Same per-server scratch discipline as the RAMBDA path.
	var (
		sc      kvs.Scratch
		respBuf []byte
	)
	h := rambda.CPUHandler(func(reqB []byte) ([]byte, hostcpu.Work) {
		req, err := kvs.DecodeRequest(reqB)
		if err != nil {
			panic(err)
		}
		resp, trace := kvs.ApplyScratch(store, req, &sc)
		respBuf = kvs.AppendResponse(respBuf[:0], resp)
		return respBuf, hostcpu.Work{
			Cycles: 900, Accesses: len(trace), AccessBytes: 64,
			Addr: store.IndexRange().Base,
		}
	})
	opts := rambda.DefaultCPUServerOptions()
	opts.Connections = connections
	srv := rambda.NewCPUServer(server, h, opts)
	conns := make([]*rambda.CPUClient, connections)
	for i := range conns {
		conns[i] = rambda.DialCPU(client, srv, i)
	}

	next := workload(42)
	var reqBuf []byte // reused: Call consumes the frame before returning
	return rambda.ClosedLoop{
		Clients: connections * window, PerClient: requests / (connections * window),
		Warmup: 2, Stagger: 40 * rambda.Nanosecond,
	}.Run(func(id int, issue rambda.Time) rambda.Time {
		reqBuf = kvs.AppendRequest(reqBuf[:0], next())
		_, done := conns[id%connections].Call(issue, reqBuf)
		return done
	})
}

func main() {
	r := runRambda()
	c := runCPU()
	fmt.Printf("%-8s  %-12s  %-10s  %-10s\n", "system", "throughput", "avg", "p99")
	fmt.Printf("%-8s  %9.2f Mops  %-10v  %-10v\n", "RAMBDA", r.Throughput/1e6, r.Latency.Mean(), r.Latency.P99())
	fmt.Printf("%-8s  %9.2f Mops  %-10v  %-10v\n", "CPU", c.Throughput/1e6, c.Latency.Mean(), c.Latency.P99())
	fmt.Println()
	fmt.Println("note: at this moderate load both systems are below their peaks and")
	fmt.Println("RAMBDA's average latency sits slightly above the CPU's — its data")
	fmt.Println("accesses cross the UPI link (paper Sec. VI-B). Run cmd/rambda-figures")
	fmt.Println("for the saturated Fig. 8 comparison where RAMBDA comes out ahead.")
}
