// Quickstart: a minimal RAMBDA application in ~60 lines.
//
// It builds a server machine with the prototype cc-accelerator and a
// client machine, connects them over the simulated 25 GbE fabric,
// registers a tiny key-value APU, and walks a handful of requests end
// to end — printing what each one cost in virtual time.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"rambda"
)

func main() {
	// 1. Machines: a RAMBDA server (CPU + RNIC + cc-accelerator) and a
	//    plain client box, wired by a 25 GbE duplex path.
	server := rambda.NewMachine(rambda.MachineConfig{Name: "server", Variant: rambda.Prototype})
	client := rambda.NewMachine(rambda.MachineConfig{Name: "client"})
	rambda.Connect(server, client)

	// 2. Application data lives in the server's unified address space so
	//    the accelerator can reach it coherently.
	data := server.Space.Alloc("greetings", 1<<16, rambda.DRAM)
	server.Space.Write(data.Base, []byte("hello from the cc-accelerator"))

	// 3. The APU: the only application-specific part of RAMBDA. It gets
	//    coherent reads/writes and compute cycles; the framework handles
	//    rings, cpoll notification, and the RNIC.
	app := rambda.AppFunc(func(ctx *rambda.AppCtx, now rambda.Time, req []byte) ([]byte, rambda.Time) {
		n := int(req[0])
		t := ctx.Read(now, data.Base, n) // fetch the payload coherently
		t = ctx.Compute(t, 4)            // a few fabric cycles of work
		out := make([]byte, n)
		server.Space.Read(data.Base, out)
		return out, t
	})

	// 4. A server with 4 client rings, pointer-buffer cpoll, and one
	//    remote connection. A Tracer attached through the options records
	//    every pipeline stage each request passes through, in virtual
	//    time (leave it nil to skip tracing entirely).
	opts := rambda.DefaultServerOptions()
	opts.Connections = 4
	tracer := rambda.NewTracer()
	opts.Trace = tracer
	srv := rambda.NewServer(server, app, opts)
	conn := rambda.Dial(client, srv, 0)

	// 5. Issue requests; each Call reports when the response landed in
	//    client memory (virtual time).
	now := rambda.Time(0)
	for _, n := range []byte{5, 10, 29} {
		resp, done := conn.Call(now, []byte{n})
		fmt.Printf("t=%-10v request(%2d bytes) -> %q\n", done, n, resp)
		now = done
	}
	fmt.Printf("served %d requests through cpoll (%d coherence signals)\n",
		srv.Served(), srv.Checker().Signals())

	// 6. Export the recorded spans as Chrome trace_event JSON — load the
	//    file in chrome://tracing or https://ui.perfetto.dev to see each
	//    request's NIC/wire/ring/notify/compute timeline.
	const traceFile = "quickstart-trace.json"
	if err := rambda.WriteChromeTraceFile(traceFile, []rambda.TraceExport{
		{Name: "quickstart", Trace: tracer, PID: 1},
	}); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %d spans to %s\n", tracer.Len(), traceFile)
}
