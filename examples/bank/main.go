// bank: chain-replicated transfer transactions on NVM (paper
// Sec. IV-B). Accounts live in a flat NVM data area replicated across a
// two-node chain; every transfer is a (2 reads, 2 writes) transaction
// executed near-data by the RAMBDA accelerator with per-key concurrency
// control and a combined redo-log entry per replica.
//
// The example also demonstrates failure recovery: after the transfers,
// a fresh replica is rebuilt purely by replaying the redo log, and the
// balances must match.
//
// Run with:
//
//	go run ./examples/bank
package main

import (
	"encoding/binary"
	"fmt"

	"rambda"
	"rambda/internal/chainrep"
	"rambda/internal/memdev"
)

const (
	accounts      = 1000
	initialCents  = 10_000
	transfers     = 5000
	accountStride = 64
)

func accountOffset(id int) uint32 { return uint32(id * accountStride) }

func encodeBalance(cents uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, cents)
	return b
}

func newReplica() (*chainrep.Node, *memdev.System) {
	m := rambda.NewMachine(rambda.MachineConfig{Name: "replica", WithNVM: true})
	node := chainrep.NewNode(m.Space, m.Mem, chainrep.NodeConfig{
		Name: "rambda", ProcDelay: 320 * rambda.Nanosecond, PerTupleDelay: 50 * rambda.Nanosecond,
	}, accounts*accountStride, 8192, chainrep.EntrySize(4, 8))
	return node, m.Mem
}

func main() {
	chain := &chainrep.Chain{
		ClientOneWay: 2 * rambda.Microsecond,
		HopDelay:     2500 * rambda.Nanosecond,
		WireBPS:      3.125e9,
	}
	var mems []*memdev.System
	for i := 0; i < 2; i++ {
		node, mem := newReplica()
		chain.Nodes = append(chain.Nodes, node)
		mems = append(mems, mem)
	}

	// Open the accounts on every replica.
	for id := 0; id < accounts; id++ {
		for _, n := range chain.Nodes {
			n.Store.Write(0, accountOffset(id), encodeBalance(initialCents))
		}
	}

	// Transfer money around: read both balances at the head, write both
	// updates through the chain as ONE combined transaction.
	rng := rambda.NewRNG(7)
	hist := rambda.NewHistogram(0)
	now := rambda.Time(0)
	moved := uint64(0)
	for i := 0; i < transfers; i++ {
		from, to := int(rng.Uint64n(accounts)), int(rng.Uint64n(accounts))
		if from == to {
			continue
		}
		amount := rng.Uint64n(50) + 1

		tx := chainrep.Tx{Reads: []chainrep.ReadOp{
			{Offset: accountOffset(from), Len: 8},
			{Offset: accountOffset(to), Len: 8},
		}}
		vals, _, err := chain.RambdaTx(now, tx)
		if err != nil {
			panic(err)
		}
		fromBal := binary.LittleEndian.Uint64(vals[0])
		toBal := binary.LittleEndian.Uint64(vals[1])
		if fromBal < amount {
			continue // insufficient funds
		}
		tx = chainrep.Tx{Writes: []chainrep.Tuple{
			{Offset: accountOffset(from), Data: encodeBalance(fromBal - amount)},
			{Offset: accountOffset(to), Data: encodeBalance(toBal + amount)},
		}}
		_, done, err := chain.RambdaTx(now, tx)
		if err != nil {
			panic(err)
		}
		hist.Record(done - now)
		now = done
		moved += amount
	}

	// Conservation: total balance must be unchanged on every replica.
	for ri, n := range chain.Nodes {
		var total uint64
		for id := 0; id < accounts; id++ {
			raw, _ := n.Store.Read(now, accountOffset(id), 8)
			total += binary.LittleEndian.Uint64(raw)
		}
		if total != accounts*initialCents {
			panic(fmt.Sprintf("replica %d lost money: %d", ri, total))
		}
	}

	// Crash the tail and rebuild it from its redo log alone.
	rebuilt, _ := newReplica()
	replayed, err := chain.Nodes[1].Log.Replay(rebuilt.Store)
	if err != nil {
		panic(err)
	}

	fmt.Printf("transfers committed : %d (%d cents moved)\n", hist.Count(), moved)
	fmt.Printf("write-tx latency    : avg %v, p99 %v\n", hist.Mean(), hist.P99())
	fmt.Printf("log entries replayed: %d (bounded by the log window)\n", replayed)
	fmt.Printf("NVM media write amplification: %.2fx (8 B account updates in 256 B media blocks)\n",
		mems[0].NVM.WriteAmplification())
	fmt.Printf("conservation check  : PASS (every replica totals %d cents)\n", accounts*initialCents)
}
