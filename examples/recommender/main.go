// recommender: end-to-end DLRM inference serving on RAMBDA (paper
// Sec. IV-C) — the CPU-accelerator *collaboration* use case. Requests
// arrive over RDMA; the accelerator passes them to a CPU core for
// preprocessing through the intra-machine ring pair, runs the
// embedding reduction (with MERCI memoization) and the MLP, and sends
// scores back through the RNIC.
//
// The example verifies MERCI's correctness property — memoized and
// native reductions produce identical scores — and reports how much of
// the gather traffic memoization eliminated.
//
// Run with:
//
//	go run ./examples/recommender
package main

import (
	"encoding/binary"
	"fmt"

	"rambda"
	"rambda/internal/dlrm"
)

func main() {
	// Serve on the RAMBDA-LH projection: embedding tables live in
	// accelerator-local HBM.
	cat := dlrm.Category{
		Name: "demo", Rows: 100_000, BundleSize: 4,
		BundlesPerQuery: 5, SinglesPerQuery: 8, BundleSkew: 0.9,
	}
	server := rambda.NewMachine(rambda.MachineConfig{
		Name: "server", Variant: rambda.LocalHBM,
	})
	client := rambda.NewMachine(rambda.MachineConfig{Name: "client"})
	rambda.Connect(server, client)

	ds := dlrm.NewDataset(cat, 21)
	rng := rambda.NewRNG(21)
	table := dlrm.NewTable(server.Space, "embeddings", cat.Rows, 64, rambda.AccelLocal, rng)
	memo := dlrm.BuildMemo(server.Space, "memo", table, ds.Bundles, cat.Rows/4, rambda.AccelLocal, rng)
	mlp := dlrm.NewMLP(64, 32, rng)
	model := dlrm.NewModel(table, memo, mlp, ds.Bundles)
	native := dlrm.NewModel(table, nil, mlp, ds.Bundles)

	// Wire format: [bundles u8][singles u8][ids u32...].
	decode := func(b []byte) dlrm.Query {
		q := dlrm.Query{}
		nb, ns := int(b[0]), int(b[1])
		off := 2
		for i := 0; i < nb; i++ {
			q.Bundles = append(q.Bundles, int(binary.LittleEndian.Uint32(b[off:])))
			off += 4
		}
		for i := 0; i < ns; i++ {
			q.Singles = append(q.Singles, int(binary.LittleEndian.Uint32(b[off:])))
			off += 4
		}
		return q
	}
	encode := func(q dlrm.Query) []byte {
		b := []byte{byte(len(q.Bundles)), byte(len(q.Singles))}
		var tmp [4]byte
		for _, v := range append(append([]int{}, q.Bundles...), q.Singles...) {
			binary.LittleEndian.PutUint32(tmp[:], uint32(v))
			b = append(b, tmp[:]...)
		}
		return b
	}

	var memoHits, totalRows, memoRows int64
	app := rambda.AppFunc(func(ctx *rambda.AppCtx, now rambda.Time, req []byte) ([]byte, rambda.Time) {
		// Preprocessing (parse + transform) belongs on the CPU: it is
		// irregular and branch-rich (Sec. IV-C).
		t := ctx.InvokeCPU(now, len(req), 500)
		q := decode(req)

		score, _, st := model.Infer(q, dlrm.AggSum)
		nativeScore, _, nst := native.Infer(q, dlrm.AggSum)
		if d := score - nativeScore; d > 1e-4 || d < -1e-4 {
			panic("MERCI memoization changed the result")
		}
		memoHits += int64(st.MemoHits)
		totalRows += int64(nst.ReducedVectors)
		memoRows += int64(len(st.Trace))

		// Gather in 64-wide waves against HBM, then reduce + MLP.
		addrs := make([]rambda.Addr, 0, len(st.Trace))
		for _, a := range st.Trace {
			addrs = append(addrs, a.Addr)
		}
		for i := 0; i < len(addrs); i += 64 {
			end := i + 64
			if end > len(addrs) {
				end = len(addrs)
			}
			t = server.Accel.ReadDataWave(t, addrs[i:end], table.RowBytes())
		}
		t = ctx.Compute(t, 2*st.ReducedVectors+st.FLOPs/64)

		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(out, uint32(score*1e6))
		return out, t
	})

	opts := rambda.DefaultServerOptions()
	opts.Connections = 4
	opts.EntryBytes = 256
	srv := rambda.NewServer(server, app, opts)
	conns := make([]*rambda.Client, opts.Connections)
	for i := range conns {
		conns[i] = rambda.Dial(client, srv, i)
	}

	const queries = 4000
	res := rambda.ClosedLoop{
		Clients: opts.Connections * 16, PerClient: queries / (opts.Connections * 16),
		Warmup: 1, Stagger: 60 * rambda.Nanosecond,
	}.Run(func(id int, issue rambda.Time) rambda.Time {
		q := ds.NextQuery()
		resp, done := conns[id%opts.Connections].Call(issue, encode(q))
		if len(resp) != 4 {
			panic("bad response")
		}
		return done
	})

	fmt.Printf("inference throughput : %.2f Mq/s (avg latency %v)\n", res.Throughput/1e6, res.Latency.Mean())
	fmt.Printf("MERCI memo hits      : %d bundles served from precomputed sums\n", memoHits)
	fmt.Printf("gather reduction     : %d rows -> %d accesses (%.1f%% saved), results equal within float tolerance\n",
		totalRows, memoRows, 100*(1-float64(memoRows)/float64(totalRows)))
}
