// Package rambda is the public API of this repository: a full-system,
// simulation-backed reproduction of "RAMBDA: RDMA-driven Acceleration
// Framework for Memory-intensive µs-scale Datacenter Applications"
// (HPCA 2023).
//
// The package re-exports the framework's core concepts so applications
// can be written against a stable surface:
//
//   - Machines (CPU + memory devices + coherence domain + RNIC +
//     optional cc-accelerator) built from the paper's testbed
//     parameters.
//   - The RAMBDA server runtime: request/response rings, cpoll
//     notification (direct-pinned or pointer-buffer), the APU plug-in
//     interface, and the SQ handler driving the NIC.
//   - Remote (RDMA) and intra-machine clients.
//   - The CPU baseline server for comparisons.
//   - The virtual-time toolkit (clock, load drivers, histograms) that
//     every benchmark in this repository uses.
//   - Deterministic observability: per-request span tracing and a
//     metrics registry, with Chrome trace_event and JSON exporters
//     (see the Observability section below).
//
// See examples/quickstart for a minimal end-to-end application and
// DESIGN.md for the system inventory.
package rambda

import (
	"io"

	"rambda/internal/core"
	"rambda/internal/cpoll"
	"rambda/internal/hostcpu"
	"rambda/internal/kvs"
	"rambda/internal/lsm"
	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/sim"
)

// Virtual time.
type (
	// Time is a point in virtual time (picoseconds).
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// Histogram collects latency samples.
	Histogram = sim.Histogram
	// ClosedLoop drives closed-loop load.
	ClosedLoop = sim.ClosedLoop
	// Result summarizes a load run.
	Result = sim.Result
	// RNG is the deterministic random source used across experiments.
	RNG = sim.RNG
)

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewRNG returns a deterministic random source.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// NewHistogram creates a latency histogram (cap <= 0 for the default).
func NewHistogram(cap int) *Histogram { return sim.NewHistogram(cap) }

// Memory.
type (
	// Addr is a physical address in a machine's unified space.
	Addr = memspace.Addr
	// MemKind classifies backing memory (DRAM/NVM/accelerator-local).
	MemKind = memspace.Kind
	// Region is an allocated, backed span of the address space.
	Region = memspace.Region
)

// Memory kinds.
const (
	DRAM       = memspace.KindDRAM
	NVM        = memspace.KindNVM
	AccelLocal = memspace.KindAccelLocal
)

// Machines.
type (
	// Machine is one server or client box.
	Machine = core.Machine
	// MachineConfig selects a machine's hardware.
	MachineConfig = core.MachineConfig
	// Variant selects the cc-accelerator build.
	Variant = core.AccelVariant
)

// Accelerator variants.
const (
	// NoAccel builds a plain machine (client or CPU-baseline server).
	NoAccel = core.NoAccel
	// Prototype is the paper's in-package FPGA with no local memory.
	Prototype = core.AccelBase
	// LocalDDR is the RAMBDA-LD projection (U280 DDR4).
	LocalDDR = core.AccelLD
	// LocalHBM is the RAMBDA-LH projection (U280 HBM2).
	LocalHBM = core.AccelLH
)

// NewMachine builds a machine from the paper's testbed parameters.
func NewMachine(cfg MachineConfig) *Machine { return core.NewMachine(cfg) }

// Connect wires two machines' RNICs with a 25 GbE duplex path.
func Connect(a, b *Machine) { core.ConnectMachines(a, b) }

// Framework.
type (
	// App is the application processing unit plug-in: the only
	// application-specific part of a RAMBDA accelerator.
	App = core.App
	// AppFunc adapts a function to App.
	AppFunc = core.AppFunc
	// AppCtx provides the APU's standard interfaces (coherent
	// read/write, compute, CPU invocation).
	AppCtx = core.AppCtx
	// Server is a RAMBDA server instance.
	Server = core.Server
	// ServerOptions sizes a server's rings and notification mechanism.
	ServerOptions = core.ServerOptions
	// Client is a remote (RDMA) client connection.
	Client = core.Client
	// LocalClient is an intra-machine client connection.
	LocalClient = core.LocalClient
	// NotifyMode selects cpoll vs spin-polling.
	NotifyMode = core.NotifyMode
	// CpollMode selects the cpoll region layout.
	CpollMode = cpoll.Mode
	// Breakdown decomposes one request's latency into pipeline stages
	// (see Client.CallTraced).
	Breakdown = core.Breakdown
)

// Notification options.
const (
	// Cpoll is coherence-assisted notification (the paper's design).
	Cpoll = core.NotifyCpoll
	// SpinPolling is the conventional polling ablation.
	SpinPolling = core.NotifyPolling
	// DirectPinned pins the rings themselves as the cpoll region.
	DirectPinned = cpoll.Direct
	// PointerBuffer pins a compact per-ring counter array instead.
	PointerBuffer = cpoll.PointerBuffer
)

// DefaultServerOptions mirrors the prototype configuration.
func DefaultServerOptions() ServerOptions { return core.DefaultServerOptions() }

// NewServer allocates a RAMBDA server on a machine with an accelerator.
func NewServer(m *Machine, app App, opts ServerOptions) *Server {
	return core.NewServer(m, app, opts)
}

// Dial establishes remote connection idx from client machine cm.
func Dial(cm *Machine, s *Server, idx int) *Client {
	return core.ConnectClient(cm, s, idx)
}

// DialLocal establishes intra-machine connection idx.
func DialLocal(s *Server, idx int) *LocalClient {
	return core.ConnectLocalClient(s, idx)
}

// CPU baseline.
type (
	// CPUServer is the two-sided-RDMA CPU baseline server.
	CPUServer = core.CPUServer
	// CPUServerOptions sizes the baseline.
	CPUServerOptions = core.CPUServerOptions
	// CPUHandler computes a response and the core/memory work to charge.
	CPUHandler = core.CPUHandler
	// CPUClient is a remote client of the baseline.
	CPUClient = core.CPUClient
	// Work describes one request's execution on a server core (cycles,
	// memory accesses, batching/latency-hiding factors).
	Work = hostcpu.Work
)

// DefaultCPUServerOptions mirrors the evaluation configuration.
func DefaultCPUServerOptions() CPUServerOptions { return core.DefaultCPUServerOptions() }

// NewCPUServer allocates the baseline server.
func NewCPUServer(m *Machine, h CPUHandler, opts CPUServerOptions) *CPUServer {
	return core.NewCPUServer(m, h, opts)
}

// DialCPU establishes remote connection idx to the baseline server.
func DialCPU(cm *Machine, s *CPUServer, idx int) *CPUClient {
	return core.ConnectCPUClient(cm, s, idx)
}

// Storage backends. Every serving scenario talks to its storage engine
// through StorageBackend (the kvs.Backend contract): backends execute
// the operation against the simulated address space and append one
// MemAccess per touch to the caller's trace, which the APU replays
// through its coherent datapath so DRAM/NVM bandwidth is charged by
// address kind. Two engines ship: the MICA-style hash index (KVStore)
// and the tiered LSM tree (LSMTree) with MVCC snapshots and key-ordered
// range scans. DispatchRequest routes a decoded wire request to either.
type (
	// StorageBackend is the pluggable KVS storage engine interface.
	StorageBackend = kvs.Backend
	// KVStore is the MICA-style hash index over DRAM or NVM.
	KVStore = kvs.Store
	// KVStoreConfig sizes a KVStore.
	KVStoreConfig = kvs.Config
	// LSMTree is the tiered storage engine: DRAM memtable + NVM
	// sstables, WAL-durable, MVCC snapshot reads, merged range scans.
	LSMTree = lsm.DB
	// LSMConfig sizes an LSMTree.
	LSMConfig = lsm.Config
	// LSMSnapshot is a pinned read view: its Get/Scan results are frozen
	// at pin time, unaffected by later writes, flushes, or compactions.
	LSMSnapshot = lsm.Snapshot
	// MemAccess is one traced memory touch (address, bytes, direction).
	MemAccess = kvs.Access
	// KVRequest is a decoded wire request.
	KVRequest = kvs.Request
	// KVResponse is a wire response.
	KVResponse = kvs.Response
	// KVScratch is a worker's reusable request-path buffer set.
	KVScratch = kvs.Scratch
	// KVScanPair locates one key/value pair in a flat scan buffer.
	KVScanPair = kvs.ScanPair
)

// Wire opcodes and statuses.
const (
	OpGet    = kvs.OpGet
	OpPut    = kvs.OpPut
	OpDelete = kvs.OpDelete
	// OpScan visits up to MaxScanLimit pairs from a start key; its
	// response travels through the multi-pair scan codec.
	OpScan         = kvs.OpScan
	MaxScanLimit   = kvs.MaxScanLimit
	StatusOK       = kvs.StatusOK
	StatusNotFound = kvs.StatusNotFound
	StatusError    = kvs.StatusError
)

// NewKVStore allocates a hash store in a machine's address space.
func NewKVStore(space *memspace.Space, cfg KVStoreConfig) *KVStore {
	return kvs.New(space, cfg)
}

// OpenLSM opens a fresh LSM tree on a machine's memory system (the
// machine must have NVM: MachineConfig.WithNVM).
func OpenLSM(m *Machine, cfg LSMConfig) *LSMTree {
	return lsm.Open(m.Space, m.Mem, cfg)
}

// DispatchRequest executes a decoded request against any storage
// backend using the scratch's buffers (kvs.ApplyScratch).
func DispatchRequest(b StorageBackend, r KVRequest, sc *KVScratch) (KVResponse, []MemAccess) {
	return kvs.ApplyScratch(b, r, sc)
}

// Observability. Attach a Tracer and/or Metrics registry through
// ServerOptions (Trace, Metrics fields) before NewServer; both are
// virtual-time collectors, so a run with a collector attached produces
// byte-identical exports for the same seed. Leaving them nil is the
// fast path: no spans, no samples, no allocations.
type (
	// Tracer records nested request spans in virtual time. One tracer
	// serves one deterministic run (single goroutine).
	Tracer = obs.Trace
	// Metrics is a registry of named counters and gauges sampled on a
	// virtual-time ticker.
	Metrics = obs.Registry
	// TraceStage classifies a span by pipeline stage.
	TraceStage = obs.Stage
	// TraceExport names one tracer for Chrome trace_event export.
	TraceExport = obs.TraceJSON
	// MetricsExport names one registry for JSON export.
	MetricsExport = obs.MetricsJSON
)

// Pipeline stages for spans.
const (
	StageNIC        = obs.StageNIC
	StageWire       = obs.StageWire
	StageRing       = obs.StageRing
	StageNotify     = obs.StageNotify
	StageCompute    = obs.StageCompute
	StageMemory     = obs.StageMemory
	StageScan       = obs.StageScan
	StageCompaction = obs.StageCompaction
	StageOther      = obs.StageOther
)

// NewTracer creates an empty span collector.
func NewTracer() *Tracer { return obs.NewTrace() }

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WriteChromeTrace writes the named tracers as Chrome trace_event JSON
// (load in chrome://tracing or Perfetto).
func WriteChromeTrace(w io.Writer, traces []TraceExport) error {
	return obs.WriteChromeTrace(w, traces)
}

// WriteChromeTraceFile is WriteChromeTrace to a file path.
func WriteChromeTraceFile(path string, traces []TraceExport) error {
	return obs.WriteChromeTraceFile(path, traces)
}

// WriteMetrics writes the named registries' samples and final values as
// JSON.
func WriteMetrics(w io.Writer, regs []MetricsExport) error {
	return obs.WriteMetrics(w, regs)
}

// WriteMetricsFile is WriteMetrics to a file path.
func WriteMetricsFile(path string, regs []MetricsExport) error {
	return obs.WriteMetricsFile(path, regs)
}
