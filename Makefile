# Convenience targets mirroring the CI pipeline (.github/workflows/ci.yml).

GO ?= go
PARALLEL ?= 0 # 0 = one worker per CPU (runner default)

.PHONY: all build test race vet lint figures figures-quick bench bench-check profile clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checked run of the packages that exercise the parallel harness.
# The experiments suite runs multi-minute sweeps; give it headroom.
race:
	$(GO) test -race -timeout 45m ./internal/runner/... ./internal/experiments/... ./internal/sim/...

vet:
	$(GO) vet ./...

# Requires golangci-lint on PATH (CI installs it via the official action).
lint:
	golangci-lint run

figures:
	$(GO) run ./cmd/rambda-figures -parallel $(PARALLEL)

figures-quick:
	$(GO) run ./cmd/rambda-figures -quick -parallel $(PARALLEL)

# Performance-regression harness: times every figure plus the sim
# microbenchmark kernels and writes BENCH_8.json (schema documented in
# cmd/rambda-bench and EXPERIMENTS.md). Runs the partitioned engine at
# -sim-parallel 4 — output stays byte-identical, only wall time moves.
bench:
	$(GO) run ./cmd/rambda-bench -quick -parallel $(PARALLEL) -sim-parallel 4 -out BENCH_8.json -baseline BENCH_7.json

# Figures + microbenchmarks compared against the committed baseline;
# fails on a >25% machine-normalized time regression or on alloc-count
# regressions (micro allocs/op and per-figure totals). This is what
# CI's bench-smoke job runs.
bench-check:
	$(GO) run ./cmd/rambda-bench -quick -parallel $(PARALLEL) -sim-parallel 4 -out /tmp/BENCH_ci.json -baseline BENCH_8.json

# CPU-profile one figure end to end, then open pprof. Usage:
#   make profile FIG=fig8
FIG ?= fig8
profile:
	$(GO) run ./cmd/rambda-figures -quick -parallel 1 -only $(FIG) -cpuprofile /tmp/$(FIG).prof > /dev/null
	$(GO) tool pprof -top /tmp/$(FIG).prof | head -20

clean:
	$(GO) clean ./...
