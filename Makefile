# Convenience targets mirroring the CI pipeline (.github/workflows/ci.yml).

GO ?= go
PARALLEL ?= 0 # 0 = one worker per CPU (runner default)

.PHONY: all build test race vet lint figures figures-quick clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checked run of the packages that exercise the parallel harness.
# The experiments suite runs multi-minute sweeps; give it headroom.
race:
	$(GO) test -race -timeout 45m ./internal/runner/... ./internal/experiments/... ./internal/sim/...

vet:
	$(GO) vet ./...

# Requires golangci-lint on PATH (CI installs it via the official action).
lint:
	golangci-lint run

figures:
	$(GO) run ./cmd/rambda-figures -parallel $(PARALLEL)

figures-quick:
	$(GO) run ./cmd/rambda-figures -quick -parallel $(PARALLEL)

clean:
	$(GO) clean ./...
