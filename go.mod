module rambda

go 1.22
