// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. VI), plus ablations for the design choices called
// out in DESIGN.md. Each benchmark runs the corresponding experiment at
// a reduced scale and reports the simulated headline metric via
// b.ReportMetric, so `go test -bench=. -benchmem` prints the whole
// reproduction in one sweep. Full-scale runs: cmd/rambda-figures.
package rambda_test

import (
	"flag"
	"os"
	"testing"

	"rambda"
	"rambda/internal/core"
	"rambda/internal/cpoll"
	"rambda/internal/dlrm"
	"rambda/internal/experiments"
	"rambda/internal/runner"
	"rambda/internal/sim"
)

// -parallel mirrors cmd/rambda-figures: worker goroutines fanning each
// experiment's sweep points (0 = one per CPU, 1 = sequential). Usage:
// go test -bench=. -args -parallel 4. Results are bit-identical for
// every value; only wall-clock changes.
var benchParallel = flag.Int("parallel", 0, "experiment sweep workers (0 = NumCPU, 1 = sequential)")

func TestMain(m *testing.M) {
	flag.Parse()
	runner.SetDefault(*benchParallel)
	os.Exit(m.Run())
}

// --- Fig. 1: SmartNIC host-access latency ---

func BenchmarkFig1SmartNICHostAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1(2000, 1)
		b.ReportMetric(rows[len(rows)-1].Avg.Microseconds(), "us-avg@100%host")
		b.ReportMetric(rows[0].Avg.Microseconds(), "us-avg@0%host")
	}
}

// --- Fig. 5: DDIO/TPH memory bandwidth ---

func BenchmarkFig5DDIOTPH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5()
		for _, r := range rows {
			if !r.DDIO && !r.TPH {
				b.ReportMetric(r.WriteGBs, "GB/s-mem-write@off/off")
			}
			if r.DDIO && r.TPH {
				b.ReportMetric(r.WriteGBs, "GB/s-mem-write@on/on")
			}
		}
	}
}

// --- Fig. 7: microbenchmark ---

func fig7BenchConfig() experiments.Fig7Config {
	return experiments.Fig7Config{Nodes: 1 << 16, Requests: 10000, Window: 16, Seed: 7, Parallel: *benchParallel}
}

func BenchmarkFig7Microbenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(fig7BenchConfig())
		for _, r := range rows {
			if r.Mem == "dram" {
				switch r.Config {
				case "CPU-1", "RAMBDA", "RAMBDA-LH":
					b.ReportMetric(r.Throughput/1e6, "Mops-"+r.Config)
				}
			}
		}
	}
}

// --- Figs. 8-10 + Tab. III: KVS ---

func kvsBenchConfig() experiments.KVSConfig {
	cfg := experiments.DefaultKVSConfig()
	cfg.Keys = 1 << 16
	cfg.Requests = 8000
	cfg.Parallel = *benchParallel
	return cfg
}

func BenchmarkFig8KVSPeakThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(kvsBenchConfig())
		for _, r := range rows {
			if r.Dist == "uniform" && r.Workload == "get" {
				b.ReportMetric(r.Throughput/1e6, "Mops-"+r.System)
			}
		}
	}
}

func BenchmarkFig9KVSLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(kvsBenchConfig())
		for _, r := range rows {
			if r.Dist == "uniform" && r.P99 != 0 {
				b.ReportMetric(r.P99.Microseconds(), "us-p99-"+r.System)
			}
		}
	}
}

func BenchmarkFig10BatchSweep(b *testing.B) {
	cfg := kvsBenchConfig()
	cfg.Requests = 6000
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig10(cfg)
		gains := map[string][2]float64{}
		for _, r := range rows {
			g := gains[r.System]
			if r.Batch == 1 {
				g[0] = r.Throughput
			}
			if r.Batch == 32 {
				g[1] = r.Throughput
			}
			gains[r.System] = g
		}
		for sys, g := range gains {
			b.ReportMetric(g[1]/g[0], "x-batch-gain-"+sys)
		}
	}
}

func BenchmarkTab3PowerEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Tab3(kvsBenchConfig()) {
			b.ReportMetric(r.KopPerW, "KopPerW-"+r.System)
		}
	}
}

// --- Fig. 12: chain-replicated transactions ---

func BenchmarkFig12ChainTxLatency(b *testing.B) {
	cfg := experiments.Fig12Config{Pairs: 4000, Transactions: 3000, Seed: 12, Parallel: *benchParallel}
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(cfg)
		for _, r := range rows {
			if r.ValueBytes == 64 {
				b.ReportMetric(r.Avg.Microseconds(), "us-avg-"+r.System+r.Shape)
			}
		}
	}
}

// --- Fig. 13: DLRM inference ---

func BenchmarkFig13DLRMThroughput(b *testing.B) {
	cfg := experiments.Fig13Config{Queries: 5000, Dim: 64, RowScale: 0.05, Seed: 13, Parallel: *benchParallel}
	cat := dlrm.AmazonCategories[0]
	for i := 0; i < b.N; i++ {
		b.ReportMetric(experiments.Fig13CPUOne(cat, cfg, 8)/1e6, "Mqps-CPU-8")
		b.ReportMetric(experiments.Fig13RambdaOne(cat, cfg, core.AccelBase)/1e6, "Mqps-RAMBDA")
		b.ReportMetric(experiments.Fig13RambdaOne(cat, cfg, core.AccelLH)/1e6, "Mqps-RAMBDA-LH")
	}
}

// --- Ablations (DESIGN.md Sec. 4) ---

// BenchmarkAblationCpollVsPolling isolates the notification mechanism.
func BenchmarkAblationCpollVsPolling(b *testing.B) {
	cfg := fig7BenchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(cfg)
		var polling, cp float64
		for _, r := range rows {
			if r.Mem == "dram" && r.Config == "RAMBDA-polling" {
				polling = r.Throughput
			}
			if r.Mem == "dram" && r.Config == "RAMBDA" {
				cp = r.Throughput
			}
		}
		b.ReportMetric(cp/polling, "x-cpoll-gain")
	}
}

// BenchmarkAblationPointerVsDirect compares the two cpoll region
// layouts end to end on the echo workload.
func BenchmarkAblationPointerVsDirect(b *testing.B) {
	run := func(mode cpoll.Mode) float64 {
		sm := rambda.NewMachine(rambda.MachineConfig{Name: "srv", Variant: rambda.Prototype})
		cm := rambda.NewMachine(rambda.MachineConfig{Name: "cli"})
		rambda.Connect(sm, cm)
		app := rambda.AppFunc(func(ctx *rambda.AppCtx, now rambda.Time, req []byte) ([]byte, rambda.Time) {
			return req, ctx.Compute(now, 8)
		})
		opts := rambda.DefaultServerOptions()
		opts.Connections = 4
		opts.RingEntries = 16
		opts.EntryBytes = 64
		opts.Mode = mode
		s := rambda.NewServer(sm, app, opts)
		conns := make([]*rambda.Client, 4)
		for i := range conns {
			conns[i] = rambda.Dial(cm, s, i)
		}
		res := sim.ClosedLoop{Clients: 32, PerClient: 100, Warmup: 2}.Run(
			func(id int, issue sim.Time) sim.Time {
				_, done := conns[id%4].Call(issue, []byte("abcd"))
				return done
			})
		return res.Throughput
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(cpoll.PointerBuffer)/1e6, "Mops-pointer")
		b.ReportMetric(run(cpoll.Direct)/1e6, "Mops-direct")
	}
}

// BenchmarkAblationAdaptiveDDIO isolates the NVM write-amplification
// effect (Fig. 7's NVM pair).
func BenchmarkAblationAdaptiveDDIO(b *testing.B) {
	cfg := fig7BenchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(cfg)
		var ddio, adaptive float64
		for _, r := range rows {
			if r.Mem == "nvm" && r.Config == "RAMBDA-DDIO" {
				ddio = r.Throughput
			}
			if r.Mem == "nvm" && r.Config == "RAMBDA" {
				adaptive = r.Throughput
			}
		}
		b.ReportMetric(adaptive/ddio, "x-adaptive-gain")
	}
}

// BenchmarkAblationMERCIMemoization compares memoized vs native
// reduction traffic.
func BenchmarkAblationMERCIMemoization(b *testing.B) {
	cat := dlrm.AmazonCategories[0]
	cat.Rows = 1 << 14
	ds := dlrm.NewDataset(cat, 9)
	sm := rambda.NewMachine(rambda.MachineConfig{Name: "m"})
	rng := rambda.NewRNG(9)
	table := dlrm.NewTable(sm.Space, "t", cat.Rows, 64, rambda.DRAM, rng)
	memo := dlrm.BuildMemo(sm.Space, "memo", table, ds.Bundles, cat.Rows/4, rambda.DRAM, rng)
	mlp := dlrm.NewMLP(64, 32, rng)
	withMemo := dlrm.NewModel(table, memo, mlp, ds.Bundles)
	native := dlrm.NewModel(table, nil, mlp, ds.Bundles)

	b.ResetTimer()
	var mAcc, nAcc int
	for i := 0; i < b.N; i++ {
		q := ds.NextQuery()
		_, _, st := withMemo.Infer(q, dlrm.AggSum)
		_, _, nst := native.Infer(q, dlrm.AggSum)
		mAcc += len(st.Trace)
		nAcc += len(nst.Trace)
	}
	b.ReportMetric(float64(nAcc)/float64(mAcc), "x-access-reduction")
}

// BenchmarkAblationDoorbellBatching isolates the SQ handler's response
// doorbell amortization (Fig. 10's RAMBDA 2x effect).
func BenchmarkAblationDoorbellBatching(b *testing.B) {
	cfg := kvsBenchConfig()
	cfg.Requests = 6000
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig10(cfg)
		var b1, b32 float64
		for _, r := range rows {
			if r.System == "RAMBDA" && r.Batch == 1 {
				b1 = r.Throughput
			}
			if r.System == "RAMBDA" && r.Batch == 32 {
				b32 = r.Throughput
			}
		}
		b.ReportMetric(b32/b1, "x-doorbell-batch-gain")
	}
}
