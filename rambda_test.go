package rambda_test

import (
	"testing"

	"rambda"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	server := rambda.NewMachine(rambda.MachineConfig{Name: "server", Variant: rambda.Prototype})
	client := rambda.NewMachine(rambda.MachineConfig{Name: "client"})
	rambda.Connect(server, client)

	data := server.Space.Alloc("data", 4096, rambda.DRAM)
	server.Space.Write(data.Base, []byte("facade"))

	app := rambda.AppFunc(func(ctx *rambda.AppCtx, now rambda.Time, req []byte) ([]byte, rambda.Time) {
		t := ctx.Read(now, data.Base, 6)
		out := make([]byte, 6)
		server.Space.Read(data.Base, out)
		return out, ctx.Compute(t, 4)
	})
	opts := rambda.DefaultServerOptions()
	opts.Connections = 2
	srv := rambda.NewServer(server, app, opts)

	conn := rambda.Dial(client, srv, 0)
	resp, done := conn.Call(0, []byte("x"))
	if string(resp) != "facade" {
		t.Fatalf("resp=%q", resp)
	}
	if done <= 0 || done > 100*rambda.Microsecond {
		t.Fatalf("done=%v", done)
	}

	local := rambda.DialLocal(srv, 1)
	resp, _ = local.Call(done, []byte("y"))
	if string(resp) != "facade" {
		t.Fatalf("local resp=%q", resp)
	}
	if srv.Served() != 2 {
		t.Fatalf("served=%d", srv.Served())
	}
}

func TestFacadeVariantsAndModes(t *testing.T) {
	for _, v := range []rambda.Variant{rambda.Prototype, rambda.LocalDDR, rambda.LocalHBM} {
		m := rambda.NewMachine(rambda.MachineConfig{Name: "m", Variant: v, AccelLocalBytes: 1 << 16})
		if m.Accel == nil {
			t.Fatalf("variant %v has no accelerator", v)
		}
	}
	if rambda.NewMachine(rambda.MachineConfig{Name: "m"}).Accel != nil {
		t.Fatal("NoAccel machine must have no accelerator")
	}
	opts := rambda.DefaultServerOptions()
	opts.Mode = rambda.DirectPinned
	opts.Notify = rambda.SpinPolling
	opts.Connections = 2
	opts.RingEntries = 8
	opts.EntryBytes = 64
	m := rambda.NewMachine(rambda.MachineConfig{Name: "srv", Variant: rambda.Prototype})
	srv := rambda.NewServer(m, rambda.AppFunc(
		func(ctx *rambda.AppCtx, now rambda.Time, req []byte) ([]byte, rambda.Time) {
			return req, now
		}), opts)
	c := rambda.DialLocal(srv, 0)
	if resp, _ := c.Call(0, []byte("z")); string(resp) != "z" {
		t.Fatalf("polling+direct echo = %q", resp)
	}
}

func TestFacadeCPUBaseline(t *testing.T) {
	sm := rambda.NewMachine(rambda.MachineConfig{Name: "srv"})
	cm := rambda.NewMachine(rambda.MachineConfig{Name: "cli"})
	rambda.Connect(sm, cm)
	srv := rambda.NewCPUServer(sm, func(req []byte) ([]byte, rambda.Work) {
		return append([]byte("ok:"), req...), rambda.Work{Cycles: 100}
	}, cpuOpts())
	c := rambda.DialCPU(cm, srv, 0)
	resp, _ := c.Call(0, []byte("req"))
	if string(resp) != "ok:req" {
		t.Fatalf("resp=%q", resp)
	}
}

func cpuOpts() rambda.CPUServerOptions {
	o := rambda.DefaultCPUServerOptions()
	o.Connections = 1
	o.RingEntries = 8
	return o
}
