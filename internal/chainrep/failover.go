package chainrep

import (
	"bytes"
	"errors"

	"rambda/internal/fault"
	"rambda/internal/sim"
)

// This file is the chain's availability layer under fault injection:
// crash detection via missed acks (the predecessor times out waiting for
// the downstream ack and declares the replica dead), chain
// reconfiguration that splices the dead replica out, and rejoin with
// redo-log replay plus catch-up of the transactions committed while the
// replica was gone. With no injector attached (EnableFaultDetection
// never called) every path below is skipped and the chain behaves
// byte-identically to the fault-free model.

// ErrNoReplicas reports that every replica of the chain is down.
var ErrNoReplicas = errors.New("chainrep: no live replicas")

// defaultAckTimeout is the missed-ack detection timer when
// EnableFaultDetection is given none: comfortably above the per-hop
// latency so healthy chains never false-positive.
const defaultAckTimeout = 50 * sim.Microsecond

// FailoverStats counts the availability layer's work.
type FailoverStats struct {
	// MissedAcks counts detection timeouts charged; Failovers counts
	// replicas spliced out; Rejoins counts replicas brought back;
	// ReplayedTx counts redo-log entries replayed during rejoins;
	// CaughtUpTx counts committed transactions re-shipped to rejoining
	// replicas.
	MissedAcks, Failovers, Rejoins, ReplayedTx, CaughtUpTx int64
}

// Name returns the replica's node name (the key fault windows match).
func (n *Node) Name() string { return n.cfg.Name }

// EnableFaultDetection arms the chain's failure detector against the
// instantiated fault plan. ackTimeout <= 0 takes the default. Committed
// write sets are retained from this point on so spliced-out replicas can
// catch up on rejoin.
func (c *Chain) EnableFaultDetection(inj *fault.Injector, ackTimeout sim.Duration) {
	if ackTimeout <= 0 {
		ackTimeout = defaultAckTimeout
	}
	c.inj = inj
	c.ackTimeout = ackTimeout
	c.alive = make([]bool, len(c.Nodes))
	for i := range c.alive {
		c.alive[i] = true
	}
	c.downKind = make([]fault.Kind, len(c.Nodes))
	c.applied = make([]int, len(c.Nodes))
}

// FailoverStats returns the availability counters.
func (c *Chain) FailoverStats() FailoverStats { return c.fstats }

// Alive reports whether replica i is currently part of the chain.
func (c *Chain) Alive(i int) bool { return c.inj == nil || c.alive[i] }

// LiveReplicas counts replicas currently in the chain.
func (c *Chain) LiveReplicas() int {
	if c.inj == nil {
		return len(c.Nodes)
	}
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	return n
}

// spliceOut removes replica i from the chain (reconfiguration: its
// predecessor forwards directly to its successor from now on).
func (c *Chain) spliceOut(i int, kind fault.Kind) {
	c.alive[i] = false
	c.downKind[i] = kind
	c.fstats.Failovers++
}

// headAt resolves the current head: the first live replica that is
// actually up at `at`. A dead head costs the caller one ack timeout per
// detection before the chain reconfigures around it.
func (c *Chain) headAt(at sim.Time) (int, sim.Time, error) {
	if c.inj == nil {
		return 0, at, nil
	}
	for i, node := range c.Nodes {
		if !c.alive[i] {
			continue
		}
		if down, kind := c.inj.NodeState(node.Name(), at); down {
			at += sim.Time(c.ackTimeout)
			c.fstats.MissedAcks++
			c.spliceOut(i, kind)
			continue
		}
		return i, at, nil
	}
	return -1, at, ErrNoReplicas
}

// replicateFaulty pushes one committed write set down the live chain,
// detecting dead replicas by their missing acks and splicing them out.
// A crashing replica may have persisted the write-ahead log entry before
// dying mid-apply (torn transaction) — redo-log replay repairs that on
// rejoin.
func (c *Chain) replicateFaulty(at sim.Time, writes []Tuple, reqBytes int) (sim.Time, error) {
	committed := 0
	for i, node := range c.Nodes {
		if !c.alive[i] {
			continue
		}
		if committed > 0 {
			at += c.HopDelay + c.wire(reqBytes)
		}
		if down, kind := c.inj.NodeState(node.Name(), at); down {
			// The upstream replica waits out the ack timeout, declares
			// this one dead, and the chain reconfigures around it.
			at += sim.Time(c.ackTimeout)
			c.fstats.MissedAcks++
			c.spliceOut(i, kind)
			if kind == fault.Crash {
				// Write-ahead semantics: the entry may have reached the
				// victim's NVM log before the data writes — leave the
				// torn entry for replay to repair.
				node.entryBuf = AppendEntry(node.entryBuf[:0], writes)
				node.Log.Append(at, node.entryBuf)
			}
			continue
		}
		var err error
		at, err = node.applyTx(at, writes)
		if err != nil {
			return at, err
		}
		c.applied[i]++
		committed++
	}
	// Retain the write set whether or not any replica committed it:
	// a crashing replica may hold the set's torn log entry (appended
	// above), so rejoin catch-up must drive every replica — including
	// ones spliced out before this set — to the same outcome for it.
	// When committed == 0 the client sees ErrNoReplicas and retries
	// with identical bytes, so retaining the "failed" set is idempotent
	// with the retry: the write surfaces exactly once, never torn.
	kept := make([]Tuple, len(writes))
	for i, w := range writes {
		kept[i] = Tuple{Offset: w.Offset, Data: append([]byte(nil), w.Data...)}
	}
	c.history = append(c.history, kept)
	if committed == 0 {
		return at, ErrNoReplicas
	}
	return at, nil
}

// applyCatchUp re-applies one committed entry at a rejoining replica:
// log append plus data writes, with no concurrency control (the entry
// already committed on the live chain).
func (n *Node) applyCatchUp(now sim.Time, writes []Tuple) sim.Time {
	at := now + n.cfg.ProcDelay + sim.Duration(len(writes))*n.cfg.PerTupleDelay
	n.entryBuf = AppendEntry(n.entryBuf[:0], writes)
	at = n.Log.Append(at, n.entryBuf)
	for _, w := range writes {
		at = n.Store.Write(at, w.Offset, w.Data)
	}
	return at
}

// ApplyCommitted pushes an already-committed write set down the whole
// chain — log append plus data writes at every replica, with no
// concurrency control — and returns the client-visible completion time.
// This is the rejoin catch-up machinery (applyCatchUp) exposed for
// constructive reconfiguration: internal/scaleout installs migration
// snapshot chunks and redo-log catch-up entries into a destination
// shard's chain through it. With fault detection armed it takes the
// same detection/splice/history path as a regular replicated write, so
// a later Rejoin still catches the replica up.
func (c *Chain) ApplyCommitted(now sim.Time, writes []Tuple) (sim.Time, error) {
	reqBytes := EntryBytes(writes)
	at := now + c.wire(reqBytes) + c.ClientOneWay
	if c.inj != nil {
		var err error
		at, err = c.replicateFaulty(at, writes, reqBytes)
		if err != nil {
			return now, err
		}
	} else {
		for i, node := range c.Nodes {
			if i > 0 {
				at += c.HopDelay + c.wire(reqBytes)
			}
			at = node.applyCatchUp(at, writes)
		}
	}
	return at + c.wire(ackBytes) + c.ClientOneWay, nil
}

// Rejoin brings a spliced-out replica back into the chain: it waits out
// the rest of the node's fault window, replays the replica's own redo
// log (a crash loses in-flight volatile state; the NVM log repairs any
// torn transaction), then catches up on every write set committed while
// it was out, and finally rejoins the chain. It returns when the replica
// is state-equal with the live chain and serving again.
func (c *Chain) Rejoin(now sim.Time, i int) (sim.Time, error) {
	if c.inj == nil || c.alive[i] {
		return now, nil
	}
	node := c.Nodes[i]
	at := c.inj.NodeUpAt(node.Name(), now)
	if c.downKind[i] == fault.Crash {
		n, err := node.Log.Replay(node.Store)
		if err != nil {
			return at, err
		}
		c.fstats.ReplayedTx += int64(n)
	}
	for _, writes := range c.history[c.applied[i]:] {
		at += c.HopDelay + c.wire(EntryBytes(writes))
		at = node.applyCatchUp(at, writes)
		c.applied[i]++
		c.fstats.CaughtUpTx++
	}
	c.alive[i] = true
	c.fstats.Rejoins++
	return at, nil
}

// StateEqual compares the first n bytes of two replicas' data areas —
// the rejoin acceptance check.
func StateEqual(a, b Backend, n int) bool {
	av, _ := a.ReadInto(nil, 0, 0, n)
	bv, _ := b.ReadInto(nil, 0, 0, n)
	return bytes.Equal(av, bv)
}

// conflictBackoffCap bounds the exponential conflict backoff shift.
const conflictBackoffCap = 6

// RambdaTxWithRetry wraps RambdaTx with retry-on-conflict: a transaction
// that loses its concurrency-control race backs off exponentially and
// re-executes, up to maxAttempts (<=0 takes 3). It returns the attempt
// count alongside the usual results; on exhaustion err is ErrConflict.
func (c *Chain) RambdaTxWithRetry(now sim.Time, tx Tx, backoff sim.Duration,
	maxAttempts int) (vals [][]byte, done sim.Time, attempts int, err error) {
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	at := now
	for attempts = 1; ; attempts++ {
		vals, done, err = c.RambdaTxInto(at, tx, nil)
		if err != ErrConflict || attempts >= maxAttempts {
			if err != nil {
				done = at
			}
			return vals, done, attempts, err
		}
		shift := attempts - 1
		if shift > conflictBackoffCap {
			shift = conflictBackoffCap
		}
		at += sim.Time(backoff << uint(shift))
	}
}
