package chainrep

import (
	"encoding/binary"
	"fmt"

	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// Tuple is one write of a transaction: (data, len, offset), the format
// of paper Sec. IV-B's log entries.
type Tuple struct {
	Offset uint32
	Data   []byte
}

// RedoLog is the per-replica transaction log: a ring of entries in NVM
// serving as both the inter-machine request buffer and the redo log for
// failure recovery ("the ring buffers are allocated in the NVM as the
// redo-log"). One entry holds a whole multi-tuple transaction; its
// first byte is the tuple count.
type RedoLog struct {
	space  *memspace.Space
	mem    *memdev.System
	region *memspace.Region

	entrySize int
	entries   int
	tail      int
	appended  int64

	// pad is Append's reusable zero-padded staging buffer (entrySize
	// bytes; memspace.Write copies it out before Append returns).
	pad []byte
}

// tupleHdr is [4B offset][2B len].
const tupleHdr = 6

// EntrySize returns the encoded size of a log entry holding n tuples of
// valueBytes each — for sizing log geometry.
func EntrySize(n, valueBytes int) int { return 1 + n*(tupleHdr+valueBytes) }

// NewRedoLog allocates a log of `entries` fixed-size entries in NVM.
func NewRedoLog(space *memspace.Space, mem *memdev.System, entries, entrySize int) *RedoLog {
	if entries <= 0 || entrySize < 1+tupleHdr {
		panic("chainrep: bad log geometry")
	}
	region := space.Alloc("chainrep-log", uint64(entries*entrySize), memspace.KindNVM)
	return &RedoLog{
		space: space, mem: mem, region: region,
		entrySize: entrySize, entries: entries,
	}
}

// Range returns the log region (registered to the RNIC without TPH —
// adaptive DDIO keeps NVM writes out of the cache).
func (l *RedoLog) Range() memspace.Range { return l.region.Range }

// EntryBytes returns the encoded size of a log entry holding exactly
// these tuples — for wire-cost accounting without encoding.
func EntryBytes(tuples []Tuple) int {
	size := 1
	for _, t := range tuples {
		size += tupleHdr + len(t.Data)
	}
	return size
}

// EncodeEntry serializes tuples into log-entry format in a fresh
// buffer.
func EncodeEntry(tuples []Tuple) []byte {
	return AppendEntry(nil, tuples)
}

// AppendEntry serializes tuples onto dst and returns the extended
// slice; reusing the returned buffer (re-sliced to [:0]) makes the
// steady-state encode allocation-free.
func AppendEntry(dst []byte, tuples []Tuple) []byte {
	if len(tuples) == 0 || len(tuples) > 255 {
		panic(fmt.Sprintf("chainrep: entry with %d tuples", len(tuples)))
	}
	dst = append(dst, byte(len(tuples)))
	var hdr [tupleHdr]byte
	for _, t := range tuples {
		binary.LittleEndian.PutUint32(hdr[0:4], t.Offset)
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(len(t.Data)))
		dst = append(dst, hdr[:]...)
		dst = append(dst, t.Data...)
	}
	return dst
}

// DecodeEntry parses a log entry.
func DecodeEntry(b []byte) ([]Tuple, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("chainrep: empty entry")
	}
	n := int(b[0])
	if n == 0 {
		return nil, fmt.Errorf("chainrep: zero-tuple entry")
	}
	off := 1
	tuples := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		if off+tupleHdr > len(b) {
			return nil, fmt.Errorf("chainrep: truncated tuple header")
		}
		o := binary.LittleEndian.Uint32(b[off : off+4])
		dl := int(binary.LittleEndian.Uint16(b[off+4 : off+6]))
		if off+tupleHdr+dl > len(b) {
			return nil, fmt.Errorf("chainrep: truncated tuple data")
		}
		data := make([]byte, dl)
		copy(data, b[off+tupleHdr:off+tupleHdr+dl])
		tuples = append(tuples, Tuple{Offset: o, Data: data})
		off += tupleHdr + dl
	}
	return tuples, nil
}

// Append persists an encoded entry at the tail, charging a sequential
// NVM write, and returns the completion time.
func (l *RedoLog) Append(now sim.Time, entry []byte) sim.Time {
	if len(entry) > l.entrySize {
		panic(fmt.Sprintf("chainrep: entry %d exceeds log entry size %d", len(entry), l.entrySize))
	}
	addr := l.region.Base + memspace.Addr(l.tail*l.entrySize)
	at := l.mem.NVM.WriteSequential(now, len(entry))
	if cap(l.pad) < l.entrySize {
		l.pad = make([]byte, l.entrySize)
	}
	padded := l.pad[:l.entrySize]
	n := copy(padded, entry)
	// Zero the remainder so stale bytes never decode.
	for i := n; i < len(padded); i++ {
		padded[i] = 0
	}
	l.space.Write(addr, padded)
	l.tail = (l.tail + 1) % l.entries
	l.appended++
	return at
}

// Appended reports the number of entries written.
func (l *RedoLog) Appended() int64 { return l.appended }

// Replay re-applies every live log entry to the backend in append
// order — the redo path after a crash. It returns the number of
// transactions replayed.
func (l *RedoLog) Replay(store Backend) (int, error) {
	n := int(l.appended)
	if n > l.entries {
		n = l.entries
	}
	start := (l.tail - n + l.entries) % l.entries
	replayed := 0
	for i := 0; i < n; i++ {
		idx := (start + i) % l.entries
		addr := l.region.Base + memspace.Addr(idx*l.entrySize)
		raw := make([]byte, l.entrySize)
		l.space.Read(addr, raw)
		tuples, err := DecodeEntry(raw)
		if err != nil {
			return replayed, fmt.Errorf("chainrep: replay entry %d: %w", idx, err)
		}
		for _, t := range tuples {
			store.Write(0, t.Offset, t.Data)
		}
		replayed++
	}
	return replayed, nil
}
