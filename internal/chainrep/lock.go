package chainrep

// LockTable is the accelerator's concurrency control unit (paper
// Sec. IV-B): a small hash table indexed by key (data-area offset).
// A key touched by an outstanding transaction blocks later transactions
// on the same key; blocked transactions queue in arrival order.
type LockTable struct {
	held    map[uint32]bool
	waiting map[uint32]int // queued transactions per key

	acquired, conflicts int64
}

// NewLockTable builds an empty table.
func NewLockTable() *LockTable {
	return &LockTable{held: make(map[uint32]bool), waiting: make(map[uint32]int)}
}

// TryAcquire atomically claims every offset for one transaction. On
// conflict nothing is claimed and the transaction is counted as queued.
func (l *LockTable) TryAcquire(offsets []uint32) bool {
	for _, o := range offsets {
		if l.held[o] {
			l.conflicts++
			l.waiting[o]++
			return false
		}
	}
	for _, o := range offsets {
		l.held[o] = true
	}
	l.acquired++
	return true
}

// Release frees every offset.
func (l *LockTable) Release(offsets []uint32) {
	for _, o := range offsets {
		if !l.held[o] {
			panic("chainrep: releasing an unheld lock")
		}
		delete(l.held, o)
		if l.waiting[o] > 0 {
			l.waiting[o]--
			if l.waiting[o] == 0 {
				delete(l.waiting, o)
			}
		}
	}
}

// Held reports the number of locked keys.
func (l *LockTable) Held() int { return len(l.held) }

// Conflicts reports lifetime conflict count.
func (l *LockTable) Conflicts() int64 { return l.conflicts }
