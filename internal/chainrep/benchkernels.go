package chainrep

import (
	"fmt"

	"rambda/internal/fault"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// BenchFailoverReplay is the fault-path kernel for the chain: it commits
// n transactions through a 3-replica chain whose middle replica crashes
// early in the run, then rejoins it — redo-log replay plus full history
// catch-up. The catch-up re-ships every committed write set, so the
// kernel scales with n the way a real recovery does.
func BenchFailoverReplay(n int) sim.Time {
	c := &Chain{
		ClientOneWay: 2 * sim.Microsecond,
		HopDelay:     2500 * sim.Nanosecond,
		WireBPS:      3.125e9,
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		space := memspace.New()
		mem := &memdev.System{
			Space: space,
			DRAM:  memdev.NewDRAM(name+":dram", 6, 120e9, 90*sim.Nanosecond),
			NVM:   memdev.NewNVM(name+":nvm", 6, 39e9, 300*sim.Nanosecond, 3),
			LLC:   memdev.NewLLC(name+":llc", 300e9, 20*sim.Nanosecond),
		}
		c.Nodes = append(c.Nodes, NewNode(space, mem, NodeConfig{
			Name: name, ProcDelay: 500 * sim.Nanosecond, PerTupleDelay: 100 * sim.Nanosecond,
		}, 1<<20, 4096, 4096))
	}
	// Crash r1 almost immediately and keep it down past any plausible run
	// length, so nearly every commit lands on the shortened chain and the
	// final Rejoin replays and catches up the full history.
	c.EnableFaultDetection(fault.New(fault.Plan{Nodes: []fault.Window{
		{Node: "r1", Kind: fault.Crash, From: 20 * sim.Microsecond, To: sim.Time(n+1) * sim.Time(sim.Millisecond)},
	}}), 25*sim.Microsecond)

	rng := sim.NewRNG(5)
	data := []byte("bench-failover-payload")
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		off := uint32(rng.Intn(1<<18)) &^ 63
		_, done, err := c.RambdaTxInto(now, Tx{Writes: []Tuple{{Offset: off, Data: data}}}, nil)
		if err != nil {
			panic(err)
		}
		now = done
	}
	now = sim.Time(n+1) * sim.Time(sim.Millisecond)
	back, err := c.Rejoin(now, 1)
	if err != nil {
		panic(err)
	}
	return back
}
