package chainrep

import (
	"testing"

	"rambda/internal/fault"
	"rambda/internal/sim"
)

func writeTx(off uint32, data string) Tx {
	return Tx{Writes: []Tuple{{Offset: off, Data: []byte(data)}}}
}

func TestFaultFreeChainUnchangedByDetection(t *testing.T) {
	// Arming the detector against an empty plan must not move a single
	// timestamp.
	tx := Tx{
		Reads:  []ReadOp{{Offset: 512, Len: 8}},
		Writes: []Tuple{{Offset: 0, Data: []byte("parity")}},
	}
	run := func(arm bool) sim.Time {
		c := newChain(3)
		if arm {
			c.EnableFaultDetection(fault.New(fault.Plan{}), 0)
		}
		var done sim.Time
		for i := 0; i < 10; i++ {
			_, d, err := c.RambdaTx(done, tx)
			if err != nil {
				t.Fatal(err)
			}
			done = d
		}
		return done
	}
	if plain, armed := run(false), run(true); plain != armed {
		t.Fatalf("empty plan changed chain timing: %v vs %v", plain, armed)
	}
}

func TestMidChainCrashSplicesAndServes(t *testing.T) {
	// Replica r1 crashes mid-run: the chain detects the missed ack,
	// splices r1 out, and keeps committing writes on the survivors.
	c := newChain(3)
	inj := fault.New(fault.Plan{Nodes: []fault.Window{
		{Node: "r1", Kind: fault.Crash, From: 100 * sim.Microsecond, To: 10 * sim.Millisecond},
	}})
	c.EnableFaultDetection(inj, 30*sim.Microsecond)

	now := sim.Time(0)
	for i := 0; i < 20; i++ {
		_, done, err := c.RambdaTx(now, writeTx(uint32(i*64), "live"))
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		now = done
	}
	if c.Alive(1) {
		t.Fatal("crashed replica still in the chain")
	}
	if c.LiveReplicas() != 2 {
		t.Fatalf("live=%d, want 2", c.LiveReplicas())
	}
	st := c.FailoverStats()
	if st.Failovers != 1 || st.MissedAcks == 0 {
		t.Fatalf("stats=%+v", st)
	}
	// Committed data is on both survivors.
	for _, i := range []int{0, 2} {
		got, _ := c.Nodes[i].Store.Read(now, 0, 4)
		if string(got) != "live" {
			t.Fatalf("survivor %d missing committed write: %q", i, got)
		}
	}
}

func TestHeadCrashFailsOverReads(t *testing.T) {
	// The head crashes; committed reads keep working, served by the next
	// live replica.
	c := newChain(3)
	inj := fault.New(fault.Plan{Nodes: []fault.Window{
		{Node: "r0", Kind: fault.Crash, From: 50 * sim.Microsecond, To: sim.Second},
	}})
	c.EnableFaultDetection(inj, 20*sim.Microsecond)

	// Commit a write while everyone is up.
	_, done, err := c.RambdaTx(0, writeTx(0, "committed"))
	if err != nil {
		t.Fatal(err)
	}
	// Read after the head died: detection costs a timeout, then the new
	// head serves the committed value.
	at := sim.Time(100 * sim.Microsecond)
	_ = done
	data, rdone := c.ReadTx(at, ReadOp{Offset: 0, Len: 9})
	if string(data) != "committed" {
		t.Fatalf("read after head crash = %q", data)
	}
	if rdone < at+sim.Time(c.ackTimeout) {
		t.Fatalf("failover read at %v must include the detection timeout", rdone)
	}
	if c.Alive(0) || !c.Alive(1) {
		t.Fatal("head not spliced out")
	}
	// Writes continue on the shortened chain.
	if _, _, err := c.RambdaTx(rdone, writeTx(64, "after")); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRejoinReplaysToStateEqual(t *testing.T) {
	// The acceptance scenario: one replica crashes, the chain keeps
	// serving committed reads and writes, and the rejoined replica
	// replays its redo log plus the missed history to a store
	// state-equal with the survivors.
	c := newChain(3)
	const crashFrom, crashTo = 200 * sim.Microsecond, 2 * sim.Millisecond
	inj := fault.New(fault.Plan{Nodes: []fault.Window{
		{Node: "r2", Kind: fault.Crash, From: crashFrom, To: crashTo},
	}})
	c.EnableFaultDetection(inj, 25*sim.Microsecond)

	// Phase 1: commits with everyone up.
	now := sim.Time(0)
	for i := 0; i < 5; i++ {
		_, done, err := c.RambdaTx(now, writeTx(uint32(i*32), "pre--"))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	// Phase 2: r2 is dead; the chain detects, splices, keeps committing.
	now = crashFrom + sim.Time(10*sim.Microsecond)
	for i := 0; i < 8; i++ {
		_, done, err := c.RambdaTx(now, writeTx(uint32(512+i*32), "down-"))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if c.Alive(2) {
		t.Fatal("r2 not spliced")
	}
	// Committed reads still served.
	if data, _ := c.ReadTx(now, ReadOp{Offset: 0, Len: 5}); string(data) != "pre--" {
		t.Fatalf("committed read during outage = %q", data)
	}

	// Phase 3: rejoin. The replica waits out its window, replays its own
	// redo log, and catches up on what it missed.
	back, err := c.Rejoin(now, 2)
	if err != nil {
		t.Fatal(err)
	}
	if back < crashTo {
		t.Fatalf("rejoined at %v, before the crash window ended (%v)", back, crashTo)
	}
	st := c.FailoverStats()
	if st.Rejoins != 1 || st.ReplayedTx == 0 || st.CaughtUpTx == 0 {
		t.Fatalf("stats=%+v, want a rejoin with replay and catch-up", st)
	}
	if !c.Alive(2) || c.LiveReplicas() != 3 {
		t.Fatal("replica not back in the chain")
	}
	// State equality across the whole data prefix the test touched.
	if !StateEqual(c.Nodes[0].Store, c.Nodes[2].Store, 1024) {
		t.Fatal("rejoined replica store differs from the live chain")
	}
	// And it participates in new commits again.
	if _, _, err := c.RambdaTx(back, writeTx(900, "again")); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Nodes[2].Store.Read(back, 900, 5)
	if string(got) != "again" {
		t.Fatal("rejoined replica missing post-rejoin write")
	}
}

func TestPauseRejoinCatchesUpWithoutReplay(t *testing.T) {
	// A paused replica keeps its state: rejoin only ships the missed
	// write sets, no redo-log replay.
	c := newChain(2)
	inj := fault.New(fault.Plan{Nodes: []fault.Window{
		{Node: "r1", Kind: fault.Pause, From: 10 * sim.Microsecond, To: 500 * sim.Microsecond},
	}})
	c.EnableFaultDetection(inj, 15*sim.Microsecond)

	now := sim.Time(50 * sim.Microsecond)
	for i := 0; i < 3; i++ {
		_, done, err := c.RambdaTx(now, writeTx(uint32(i*16), "paus"))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	back, err := c.Rejoin(now, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := c.FailoverStats()
	if st.ReplayedTx != 0 {
		t.Fatalf("pause rejoin must not replay the redo log: %+v", st)
	}
	if st.CaughtUpTx != 3 {
		t.Fatalf("caught up %d, want 3", st.CaughtUpTx)
	}
	if !StateEqual(c.Nodes[0].Store, c.Nodes[1].Store, 256) {
		t.Fatal("paused replica not state-equal after catch-up")
	}
	_ = back
}

func TestAllReplicasDownReported(t *testing.T) {
	c := newChain(2)
	inj := fault.New(fault.Plan{Nodes: []fault.Window{
		{Node: "r0", Kind: fault.Crash, From: 0, To: sim.Second},
		{Node: "r1", Kind: fault.Crash, From: 0, To: sim.Second},
	}})
	c.EnableFaultDetection(inj, 10*sim.Microsecond)
	if _, _, err := c.RambdaTx(0, writeTx(0, "x")); err != ErrNoReplicas {
		t.Fatalf("err=%v, want ErrNoReplicas", err)
	}
}

func TestDeterministicChaosSequence(t *testing.T) {
	// Two identical universes with the same fault plan must agree on
	// every timestamp and counter.
	run := func() (sim.Time, FailoverStats) {
		c := newChain(3)
		inj := fault.New(fault.Plan{Seed: 11, Nodes: []fault.Window{
			{Node: "r1", Kind: fault.Crash, From: 80 * sim.Microsecond, To: 400 * sim.Microsecond},
			{Node: "r2", Kind: fault.Pause, From: 600 * sim.Microsecond, To: 900 * sim.Microsecond},
		}})
		c.EnableFaultDetection(inj, 20*sim.Microsecond)
		now := sim.Time(0)
		for i := 0; i < 30; i++ {
			_, done, err := c.RambdaTx(now, writeTx(uint32(i%7)*64, "det!"))
			if err != nil {
				t.Fatal(err)
			}
			now = done
			if i == 15 {
				if at, err := c.Rejoin(now, 1); err == nil && at > now {
					now = at
				}
			}
		}
		return now, c.FailoverStats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("chaos run diverged: %v/%+v vs %v/%+v", t1, s1, t2, s2)
	}
}

func TestConflictRetryBackoff(t *testing.T) {
	c := newChain(1)
	n := c.Nodes[0]
	n.CC.TryAcquire([]uint32{0})

	// Every attempt conflicts: the wrapper backs off exponentially and
	// surfaces ErrConflict with the attempt count.
	_, done, attempts, err := c.RambdaTxWithRetry(0, writeTx(0, "x"), 10*sim.Microsecond, 4)
	if err != ErrConflict {
		t.Fatalf("err=%v", err)
	}
	if attempts != 4 {
		t.Fatalf("attempts=%d, want 4", attempts)
	}
	// Backoffs 10+20+40 = 70us elapsed across retries.
	if done != sim.Time(70*sim.Microsecond) {
		t.Fatalf("done=%v, want 70us of accumulated backoff", done)
	}

	// Release between attempts is the normal case: first attempt wins.
	n.CC.Release([]uint32{0})
	_, _, attempts, err = c.RambdaTxWithRetry(done, writeTx(0, "y"), 10*sim.Microsecond, 4)
	if err != nil || attempts != 1 {
		t.Fatalf("post-release attempts=%d err=%v", attempts, err)
	}
	if n.CC.Held() != 0 {
		t.Fatal("locks leaked")
	}
}

// TestRejoinRacesApplyCommitted interleaves the constructive
// reconfiguration path (ApplyCommitted — the migration install machinery)
// with a crash window and a rejoin: installs flowing while a replica is
// down must splice it out like any replicated write (leaving a torn log
// entry), accumulate in the catch-up history, and be fully recovered by
// the rejoin — after which further installs include the replica again
// and all three stores are byte-equal.
func TestRejoinRacesApplyCommitted(t *testing.T) {
	c := newChain(3)
	win := fault.Window{
		Node: "r1", Kind: fault.Crash,
		From: 50 * sim.Microsecond, To: 400 * sim.Microsecond,
	}
	c.EnableFaultDetection(fault.New(fault.Plan{Nodes: []fault.Window{win}}), 20*sim.Microsecond)

	now := sim.Time(0)
	// Whole-chain traffic before the window: a mix of client commits and
	// installs.
	for i := 0; i < 3; i++ {
		_, done, err := c.RambdaTx(now, writeTx(uint32(i*64), "pre"))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if now >= win.From {
		t.Fatalf("pre-window traffic ran past the window start: %v", now)
	}
	now = win.From

	// Installs during the window splice r1 out on first contact and keep
	// committing on the shortened chain.
	for i := 0; i < 5; i++ {
		done, err := c.ApplyCommitted(now, []Tuple{{Offset: uint32(512 + i*64), Data: []byte("mig")}})
		if err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
		now = done
	}
	if c.Alive(1) || c.LiveReplicas() != 2 {
		t.Fatal("installs against a downed replica did not splice it out")
	}
	// Client commits racing the same window land in the same history.
	for i := 0; i < 3; i++ {
		_, done, err := c.RambdaTx(now, writeTx(uint32(1024+i*64), "mid"))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}

	// Rejoin waits out the window, replays the torn log entry, and
	// catches up every install and commit that raced the outage.
	back, err := c.Rejoin(now, 1)
	if err != nil {
		t.Fatal(err)
	}
	if back < win.To {
		t.Fatalf("rejoin at %v, before the window closed at %v", back, win.To)
	}
	st := c.FailoverStats()
	if st.Rejoins != 1 || st.Failovers != 1 {
		t.Fatalf("failover accounting: %+v", st)
	}
	if st.ReplayedTx < 1 {
		t.Fatalf("crash rejoin replayed nothing: %+v", st)
	}
	if st.CaughtUpTx < 8 {
		t.Fatalf("caught up %d write sets, want the 5 installs + 3 commits", st.CaughtUpTx)
	}

	// Installs after the rejoin go down the whole chain again.
	for i := 0; i < 5; i++ {
		done, err := c.ApplyCommitted(back, []Tuple{{Offset: uint32(2048 + i*64), Data: []byte("post")}})
		if err != nil {
			t.Fatalf("post-rejoin install %d: %v", i, err)
		}
		back = done
	}
	const n = 4096
	if !StateEqual(c.Nodes[0].Store, c.Nodes[1].Store, n) ||
		!StateEqual(c.Nodes[0].Store, c.Nodes[2].Store, n) {
		t.Fatal("replicas diverged after rejoin raced ApplyCommitted")
	}
}
