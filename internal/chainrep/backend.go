package chainrep

import (
	"fmt"

	"rambda/internal/lsm"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// Backend abstracts a replica's persistent storage engine. The paper's
// transaction system addresses pairs by NVM offset (HyperLoop
// semantics); the engine underneath can be the flat NVM data area or a
// RocksDB-like LSM database, which is what the paper's evaluation runs
// on ("we adopt RocksDB ... to use the emulated NVM as a persistent
// storage medium", Sec. VI-C).
type Backend interface {
	// ReadInto appends n bytes at offset to dst (which may be nil) and
	// returns the grown slice, charging storage time. This is the
	// primary read form: callers that pass a reused buffer read without
	// allocating once its capacity has grown to the working size.
	ReadInto(dst []byte, now sim.Time, offset uint32, n int) ([]byte, sim.Time)
	// Read returns n bytes at offset, charging storage time.
	//
	// Deprecated: use ReadInto with a reused buffer; Read allocates a
	// fresh slice per call.
	Read(now sim.Time, offset uint32, n int) ([]byte, sim.Time)
	// Write persists data at offset, charging storage time.
	Write(now sim.Time, offset uint32, data []byte) sim.Time
}

var (
	_ Backend = (*Store)(nil)
	_ Backend = (*LSMBackend)(nil)
)

// LSMBackend adapts an lsm.DB to the offset-addressed Backend
// interface: each offset is one database key.
type LSMBackend struct {
	DB *lsm.DB
}

// NewLSMBackend opens an LSM database on the replica's NVM.
func NewLSMBackend(space *memspace.Space, mem *memdev.System, cfg lsm.Config) *LSMBackend {
	return &LSMBackend{DB: lsm.Open(space, mem, cfg)}
}

func lsmKey(offset uint32) string { return fmt.Sprintf("off-%08x", offset) }

// ReadInto implements Backend. Missing offsets read as zeroes (matching
// the flat store's freshly allocated data area).
func (b *LSMBackend) ReadInto(dst []byte, now sim.Time, offset uint32, n int) ([]byte, sim.Time) {
	val, at, ok := b.DB.Get(now, lsmKey(offset))
	if !ok {
		val = nil
	}
	if len(val) > n {
		val = val[:n]
	}
	dst = append(dst, val...)
	for i := len(val); i < n; i++ {
		dst = append(dst, 0)
	}
	return dst, at
}

// Read implements Backend.
//
// Deprecated: use ReadInto with a reused buffer.
func (b *LSMBackend) Read(now sim.Time, offset uint32, n int) ([]byte, sim.Time) {
	return b.ReadInto(nil, now, offset, n)
}

// Write implements Backend.
func (b *LSMBackend) Write(now sim.Time, offset uint32, data []byte) sim.Time {
	at, err := b.DB.Put(now, lsmKey(offset), data)
	if err != nil {
		panic(fmt.Sprintf("chainrep: lsm backend write: %v", err))
	}
	return at
}

// NewNodeLSM builds a replica whose data area is an LSM database
// instead of the flat offset store; the redo log and concurrency
// control are unchanged.
func NewNodeLSM(space *memspace.Space, mem *memdev.System, cfg NodeConfig,
	dbCfg lsm.Config, logEntries, logEntrySize int) *Node {
	return &Node{
		cfg:   cfg,
		Store: NewLSMBackend(space, mem, dbCfg),
		Log:   NewRedoLog(space, mem, logEntries, logEntrySize),
		CC:    NewLockTable(),
	}
}
