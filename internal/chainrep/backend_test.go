package chainrep

import (
	"bytes"
	"fmt"
	"testing"

	"rambda/internal/lsm"
	"rambda/internal/sim"
)

func newLSMNode(name string) *Node {
	space, mem := newMem()
	cfg := lsm.DefaultConfig()
	cfg.MemtableBytes = 4 << 10
	return NewNodeLSM(space, mem, NodeConfig{
		Name: name, ProcDelay: 320 * sim.Nanosecond, PerTupleDelay: 50 * sim.Nanosecond,
	}, cfg, 1024, 4096)
}

func TestLSMBackendReadWrite(t *testing.T) {
	space, mem := newMem()
	b := NewLSMBackend(space, mem, lsm.DefaultConfig())
	at := b.Write(0, 256, []byte("persisted"))
	if at <= 0 {
		t.Fatal("LSM write must charge WAL time")
	}
	data, _ := b.Read(at, 256, 9)
	if string(data) != "persisted" {
		t.Fatalf("read=%q", data)
	}
	// Missing offsets read as zeroes (flat-store semantics).
	data, _ = b.Read(at, 512, 4)
	if !bytes.Equal(data, make([]byte, 4)) {
		t.Fatalf("missing offset = %v", data)
	}
	// Short stored values pad out.
	data, _ = b.Read(at, 256, 16)
	if len(data) != 16 || string(data[:9]) != "persisted" {
		t.Fatalf("padded read = %q", data)
	}
}

func TestChainOverLSMBackend(t *testing.T) {
	c := &Chain{
		ClientOneWay: 2 * sim.Microsecond,
		HopDelay:     2500 * sim.Nanosecond,
		WireBPS:      3.125e9,
	}
	for i := 0; i < 2; i++ {
		c.Nodes = append(c.Nodes, newLSMNode(fmt.Sprintf("r%d", i)))
	}
	tx := Tx{Writes: []Tuple{
		{Offset: 0, Data: []byte("W0")},
		{Offset: 64, Data: []byte("W1")},
	}}
	_, done, err := c.RambdaTx(0, tx)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes {
		got, _ := n.Store.Read(done, 64, 2)
		if string(got) != "W1" {
			t.Fatalf("replica %d missing write: %q", i, got)
		}
	}
	// Reads see writes through the same backend.
	vals, _, err := c.RambdaTx(done, Tx{Reads: []ReadOp{{Offset: 0, Len: 2}}})
	if err != nil || string(vals[0]) != "W0" {
		t.Fatalf("read-back: %q err=%v", vals, err)
	}
}

func TestBackendsAgreeUnderSameTxStream(t *testing.T) {
	flat := newChain(2)
	lsmChain := &Chain{ClientOneWay: flat.ClientOneWay, HopDelay: flat.HopDelay, WireBPS: flat.WireBPS}
	for i := 0; i < 2; i++ {
		lsmChain.Nodes = append(lsmChain.Nodes, newLSMNode(fmt.Sprintf("l%d", i)))
	}
	rng := sim.NewRNG(33)
	now1, now2 := sim.Time(0), sim.Time(0)
	for i := 0; i < 200; i++ {
		off := uint32(rng.Intn(64)) * 64
		data := []byte(fmt.Sprintf("v%06d", i))
		tx := Tx{Writes: []Tuple{{Offset: off, Data: data}}}
		var err error
		if _, now1, err = flat.RambdaTx(now1, tx); err != nil {
			t.Fatal(err)
		}
		if _, now2, err = lsmChain.RambdaTx(now2, tx); err != nil {
			t.Fatal(err)
		}
	}
	for off := uint32(0); off < 64*64; off += 64 {
		a, _ := flat.Nodes[0].Store.Read(now1, off, 7)
		b, _ := lsmChain.Nodes[0].Store.Read(now2, off, 7)
		if !bytes.Equal(a, b) {
			t.Fatalf("backends diverge at offset %d: %q vs %q", off, a, b)
		}
	}
}

func TestRedoLogReplayIntoLSM(t *testing.T) {
	// The redo log can rebuild an LSM replica just like a flat one.
	n := newLSMNode("src")
	n.applyTx(0, []Tuple{{Offset: 0, Data: []byte("aa")}, {Offset: 64, Data: []byte("bb")}})
	n.applyTx(0, []Tuple{{Offset: 0, Data: []byte("AA")}})

	fresh := newLSMNode("dst")
	replayed, err := n.Log.Replay(fresh.Store)
	if err != nil || replayed != 2 {
		t.Fatalf("replayed=%d err=%v", replayed, err)
	}
	got, _ := fresh.Store.Read(0, 0, 2)
	if string(got) != "AA" {
		t.Fatalf("offset 0 = %q", got)
	}
	got, _ = fresh.Store.Read(0, 64, 2)
	if string(got) != "bb" {
		t.Fatalf("offset 64 = %q", got)
	}
}
