// Package chainrep implements the distributed transaction system of
// paper Sec. IV-B: chain replication over NVM-resident data with a redo
// log, a per-key concurrency control unit in the accelerator, and the
// HyperLoop baseline (group-based RDMA ops issued sequentially per
// key-value pair). The topology mirrors Fig. 11's emulated two-replica
// chain with ARM-core routing between ports.
package chainrep

import (
	"fmt"

	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// Store is a HyperLoop-style flat NVM data area: key-value pairs are
// addressed by byte offset relative to the region base (paper: "stored
// in the NVM and accessed by the address offset relative to the
// starting address").
type Store struct {
	space  *memspace.Space
	mem    *memdev.System
	region *memspace.Region
}

// NewStore allocates the NVM data area.
func NewStore(space *memspace.Space, mem *memdev.System, bytes uint64) *Store {
	return &Store{
		space:  space,
		mem:    mem,
		region: space.Alloc("chainrep-data", bytes, memspace.KindNVM),
	}
}

// Size returns the data area capacity.
func (s *Store) Size() uint64 { return s.region.Size }

// Range returns the data region (for MR registration).
func (s *Store) Range() memspace.Range { return s.region.Range }

func (s *Store) check(offset uint32, n int) {
	if uint64(offset)+uint64(n) > s.region.Size {
		panic(fmt.Sprintf("chainrep: access [%d,+%d) outside data area %d", offset, n, s.region.Size))
	}
}

// ReadInto appends n bytes at offset to dst, charging the NVM read.
// With a reused buffer the read is allocation-free once the buffer's
// capacity covers the working size.
func (s *Store) ReadInto(dst []byte, now sim.Time, offset uint32, n int) ([]byte, sim.Time) {
	s.check(offset, n)
	at := s.mem.NVM.Read(now, n)
	base := len(dst)
	if cap(dst)-base < n {
		grown := make([]byte, base, base+n)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+n]
	s.space.Read(s.region.Base+memspace.Addr(offset), dst[base:])
	return dst, at
}

// Read returns n bytes at offset, charging the NVM read.
//
// Deprecated: use ReadInto with a reused buffer.
func (s *Store) Read(now sim.Time, offset uint32, n int) ([]byte, sim.Time) {
	return s.ReadInto(nil, now, offset, n)
}

// Write stores data at offset, charging a sequential NVM write.
func (s *Store) Write(now sim.Time, offset uint32, data []byte) sim.Time {
	s.check(offset, len(data))
	at := s.mem.NVM.WriteSequential(now, len(data))
	s.space.Write(s.region.Base+memspace.Addr(offset), data)
	return at
}
