package chainrep

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

func newMem() (*memspace.Space, *memdev.System) {
	space := memspace.New()
	return space, &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM("dram", 6, 120e9, 90*sim.Nanosecond),
		NVM:   memdev.NewNVM("nvm", 6, 39e9, 300*sim.Nanosecond, 3),
		LLC:   memdev.NewLLC("llc", 300e9, 20*sim.Nanosecond),
	}
}

func newNode(name string) *Node {
	space, mem := newMem()
	return NewNode(space, mem, NodeConfig{
		Name: name, ProcDelay: 500 * sim.Nanosecond, PerTupleDelay: 100 * sim.Nanosecond,
	}, 1<<20, 1024, 4096)
}

func newChain(n int) *Chain {
	c := &Chain{
		ClientOneWay: 2 * sim.Microsecond,
		HopDelay:     2500 * sim.Nanosecond,
		WireBPS:      3.125e9,
	}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, newNode(fmt.Sprintf("r%d", i)))
	}
	return c
}

func TestEntryCodecRoundTrip(t *testing.T) {
	in := []Tuple{
		{Offset: 0, Data: []byte("alpha")},
		{Offset: 4096, Data: bytes.Repeat([]byte{7}, 1024)},
	}
	out, err := DecodeEntry(EncodeEntry(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Offset != 0 || string(out[0].Data) != "alpha" ||
		out[1].Offset != 4096 || !bytes.Equal(out[1].Data, in[1].Data) {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestEntryCodecErrors(t *testing.T) {
	if _, err := DecodeEntry(nil); err == nil {
		t.Fatal("empty entry accepted")
	}
	if _, err := DecodeEntry([]byte{0}); err == nil {
		t.Fatal("zero-tuple entry accepted")
	}
	if _, err := DecodeEntry([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated header accepted")
	}
	good := EncodeEntry([]Tuple{{Offset: 1, Data: []byte("xyz")}})
	if _, err := DecodeEntry(good[:len(good)-1]); err == nil {
		t.Fatal("truncated data accepted")
	}
}

func TestStoreReadWrite(t *testing.T) {
	space, mem := newMem()
	s := NewStore(space, mem, 4096)
	at := s.Write(0, 128, []byte("persist me"))
	if at <= 0 {
		t.Fatal("write must cost NVM time")
	}
	data, _ := s.Read(at, 128, 10)
	if string(data) != "persist me" {
		t.Fatalf("read=%q", data)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds access must panic")
		}
	}()
	s.Write(0, 4090, []byte("too far"))
}

func TestRedoLogReplayRecoversStore(t *testing.T) {
	space, mem := newMem()
	log := NewRedoLog(space, mem, 16, 256)

	txs := [][]Tuple{
		{{Offset: 0, Data: []byte("aaaa")}},
		{{Offset: 64, Data: []byte("bbbb")}, {Offset: 128, Data: []byte("cccc")}},
		{{Offset: 0, Data: []byte("AAAA")}}, // overwrites tx 1
	}
	for _, tx := range txs {
		log.Append(0, EncodeEntry(tx))
	}
	// Simulate a crash: replay the log into a fresh (empty) data area.
	fresh := NewStore(space, mem, 8192)
	n, err := log.Replay(fresh)
	if err != nil || n != 3 {
		t.Fatalf("replayed=%d err=%v", n, err)
	}
	got, _ := fresh.Read(0, 0, 4)
	if string(got) != "AAAA" {
		t.Fatalf("offset 0 = %q, want last write", got)
	}
	got, _ = fresh.Read(0, 64, 4)
	if string(got) != "bbbb" {
		t.Fatalf("offset 64 = %q", got)
	}
}

func TestRedoLogWrapsAndReplaysWindow(t *testing.T) {
	space, mem := newMem()
	store := NewStore(space, mem, 1<<16)
	log := NewRedoLog(space, mem, 4, 64)
	for i := 0; i < 10; i++ {
		log.Append(0, EncodeEntry([]Tuple{{Offset: uint32(i * 8), Data: []byte{byte(i)}}}))
	}
	n, err := log.Replay(store)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed=%d, want the 4-entry window", n)
	}
	// The last 4 appends (6..9) must be applied.
	for i := 6; i < 10; i++ {
		got, _ := store.Read(0, uint32(i*8), 1)
		if got[0] != byte(i) {
			t.Fatalf("entry %d lost", i)
		}
	}
}

func TestLockTable(t *testing.T) {
	l := NewLockTable()
	if !l.TryAcquire([]uint32{1, 2, 3}) {
		t.Fatal("fresh acquire failed")
	}
	if l.TryAcquire([]uint32{3, 4}) {
		t.Fatal("conflicting acquire succeeded")
	}
	if l.Conflicts() != 1 {
		t.Fatal("conflict not counted")
	}
	l.Release([]uint32{1, 2, 3})
	if !l.TryAcquire([]uint32{3, 4}) {
		t.Fatal("acquire after release failed")
	}
	if l.Held() != 2 {
		t.Fatalf("held=%d", l.Held())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	l.Release([]uint32{9})
}

func TestLockTableAtomicity(t *testing.T) {
	// A failed multi-key acquire must not leave partial locks.
	l := NewLockTable()
	l.TryAcquire([]uint32{5})
	if l.TryAcquire([]uint32{4, 5}) {
		t.Fatal("conflict missed")
	}
	if l.Held() != 1 {
		t.Fatalf("partial acquire leaked: held=%d", l.Held())
	}
	l.Release([]uint32{5})
	if !l.TryAcquire([]uint32{4, 5}) {
		t.Fatal("key 4 stuck")
	}
}

func TestRambdaTxAppliesEverywhereAndReads(t *testing.T) {
	c := newChain(2)
	// Seed data at the head for the reads.
	c.Nodes[0].Store.Write(0, 512, []byte("seeded!!"))

	tx := Tx{
		Reads:  []ReadOp{{Offset: 512, Len: 8}},
		Writes: []Tuple{{Offset: 0, Data: []byte("W0")}, {Offset: 64, Data: []byte("W1")}},
	}
	vals, done, err := c.RambdaTx(0, tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || string(vals[0]) != "seeded!!" {
		t.Fatalf("reads=%q", vals)
	}
	if done <= 2*c.ClientOneWay+c.HopDelay {
		t.Fatalf("done=%v implausibly fast", done)
	}
	// Every replica applied both tuples and logged once.
	for i, n := range c.Nodes {
		got, _ := n.Store.Read(done, 0, 2)
		if string(got) != "W0" {
			t.Fatalf("replica %d missing W0: %q", i, got)
		}
		got, _ = n.Store.Read(done, 64, 2)
		if string(got) != "W1" {
			t.Fatalf("replica %d missing W1", i)
		}
		if n.Log.Appended() != 1 {
			t.Fatalf("replica %d log entries=%d, want 1 combined entry", i, n.Log.Appended())
		}
		if n.CC.Held() != 0 {
			t.Fatalf("replica %d leaked locks", i)
		}
	}
}

func TestHyperLoopTxAppliesPerTuple(t *testing.T) {
	c := newChain(2)
	tx := Tx{Writes: []Tuple{{Offset: 0, Data: []byte("A")}, {Offset: 64, Data: []byte("B")}}}
	_, done := c.HyperLoopTx(0, tx)
	for i, n := range c.Nodes {
		if n.Log.Appended() != 2 {
			t.Fatalf("replica %d log entries=%d, want one per tuple", i, n.Log.Appended())
		}
		got, _ := n.Store.Read(done, 64, 1)
		if got[0] != 'B' {
			t.Fatalf("replica %d missing B", i)
		}
	}
}

func TestSingleWriteTxParity(t *testing.T) {
	// Paper: for a (0,1) transaction RAMBDA and HyperLoop take the same
	// path (within ~3%).
	tx := Tx{Writes: []Tuple{{Offset: 0, Data: make([]byte, 64)}}}
	_, rd, err := newChain(2).RambdaTx(0, tx)
	if err != nil {
		t.Fatal(err)
	}
	_, hd := newChain(2).HyperLoopTx(0, tx)
	ratio := float64(rd) / float64(hd)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("(0,1) parity broken: rambda=%v hyperloop=%v (ratio %.2f)", rd, hd, ratio)
	}
}

func TestMultiOpTxAdvantage(t *testing.T) {
	// Paper: for a (4,2) transaction RAMBDA cuts ~2/3 of the latency.
	mk := func() Tx {
		tx := Tx{}
		for i := 0; i < 4; i++ {
			tx.Reads = append(tx.Reads, ReadOp{Offset: uint32(i * 256), Len: 64})
		}
		for i := 0; i < 2; i++ {
			tx.Writes = append(tx.Writes, Tuple{Offset: uint32(4096 + i*256), Data: make([]byte, 64)})
		}
		return tx
	}
	_, rd, err := newChain(2).RambdaTx(0, mk())
	if err != nil {
		t.Fatal(err)
	}
	_, hd := newChain(2).HyperLoopTx(0, mk())
	reduction := 1 - float64(rd)/float64(hd)
	if reduction < 0.5 || reduction > 0.8 {
		t.Fatalf("(4,2) reduction=%.2f, want ~0.63-0.67 (rambda=%v hyperloop=%v)", reduction, rd, hd)
	}
}

func TestConflictReported(t *testing.T) {
	c := newChain(1)
	n := c.Nodes[0]
	n.CC.TryAcquire([]uint32{0})
	_, _, err := c.RambdaTx(0, Tx{Writes: []Tuple{{Offset: 0, Data: []byte("x")}}})
	if err != ErrConflict {
		t.Fatalf("err=%v, want ErrConflict", err)
	}
	n.CC.Release([]uint32{0})
	if _, _, err := c.RambdaTx(0, Tx{Writes: []Tuple{{Offset: 0, Data: []byte("x")}}}); err != nil {
		t.Fatal("post-release tx failed")
	}
}

func TestReadTxSameOnBothSystems(t *testing.T) {
	c := newChain(2)
	c.Nodes[0].Store.Write(0, 0, []byte("ro"))
	data, done := c.ReadTx(0, ReadOp{Offset: 0, Len: 2})
	if string(data) != "ro" {
		t.Fatalf("data=%q", data)
	}
	if done <= 2*c.ClientOneWay {
		t.Fatal("read tx too fast")
	}
}

func TestLogEntrySizeEnforced(t *testing.T) {
	space, mem := newMem()
	log := NewRedoLog(space, mem, 4, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize entry must panic")
		}
	}()
	log.Append(0, EncodeEntry([]Tuple{{Offset: 0, Data: make([]byte, 128)}}))
}

func TestReplayEquivalenceProperty(t *testing.T) {
	// Property: applying transactions directly and replaying the log
	// into a fresh store yield identical data areas.
	f := func(raw []uint16) bool {
		space, mem := newMem()
		direct := NewStore(space, mem, 4096)
		replayed := NewStore(space, mem, 4096)
		log := NewRedoLog(space, mem, 64, 128)
		count := 0
		for _, r := range raw {
			if count >= 64 {
				break // stay within the log window
			}
			off := uint32(r % 4000)
			data := []byte{byte(r), byte(r >> 8)}
			direct.Write(0, off, data)
			log.Append(0, EncodeEntry([]Tuple{{Offset: off, Data: data}}))
			count++
		}
		if count == 0 {
			return true
		}
		if _, err := log.Replay(replayed); err != nil {
			return false
		}
		a, _ := direct.Read(0, 0, 4000)
		b, _ := replayed.Read(0, 0, 4000)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
