package chainrep

import (
	"testing"

	"rambda/internal/sim"
)

// Steady-state allocation guard for the transaction path: once a
// TxScratch has grown to the workload's high-water mark, the paper's
// representative (4 reads, 2 writes) transaction must not allocate —
// reads land in the scratch's reused buffers and writes reuse each
// node's offset/log-entry scratch. This extends the kvs/rnic/ringbuf
// guards to the chain replication layer.
func TestRambdaTxScratchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are distorted under the race detector")
	}
	c := newChain(3)
	payload := []byte("sixty-four-byte-write-payload-for-the-steady-state-alloc-guard!!")
	tx := Tx{
		Reads: []ReadOp{{Offset: 0, Len: 64}, {Offset: 128, Len: 64},
			{Offset: 256, Len: 64}, {Offset: 384, Len: 64}},
		Writes: []Tuple{{Offset: 512, Data: payload}, {Offset: 640, Data: payload}},
	}
	sc := &TxScratch{}
	now := sim.Time(0)
	steady := func() {
		_, done, err := c.RambdaTxInto(now, tx, sc)
		if err != nil {
			panic(err)
		}
		now = done
	}
	for i := 0; i < 8; i++ { // grow sc and per-node scratch, warm the log
		steady()
	}
	if n := testing.AllocsPerRun(200, steady); n != 0 {
		t.Fatalf("RambdaTxInto: %.2f allocs/op in steady state, want 0", n)
	}
}

// The HyperLoop comparison path shares the same scratch discipline.
func TestHyperLoopTxScratchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are distorted under the race detector")
	}
	c := newChain(3)
	payload := []byte("sixty-four-byte-write-payload-for-the-steady-state-alloc-guard!!")
	tx := Tx{
		Reads:  []ReadOp{{Offset: 0, Len: 64}, {Offset: 128, Len: 64}},
		Writes: []Tuple{{Offset: 512, Data: payload}},
	}
	sc := &TxScratch{}
	now := sim.Time(0)
	steady := func() {
		_, done := c.HyperLoopTxInto(now, tx, sc)
		now = done
	}
	for i := 0; i < 8; i++ {
		steady()
	}
	if n := testing.AllocsPerRun(200, steady); n != 0 {
		t.Fatalf("HyperLoopTxInto: %.2f allocs/op in steady state, want 0", n)
	}
}
