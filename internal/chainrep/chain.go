package chainrep

import (
	"errors"

	"rambda/internal/fault"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// ErrConflict reports that a transaction lost its concurrency-control
// race and must retry (paper: conflicting transactions "will be
// buffered in the queue in the order of arrival"; the serial evaluation
// client never conflicts).
var ErrConflict = errors.New("chainrep: key locked by an outstanding transaction")

// NodeConfig sets a replica's processing costs.
type NodeConfig struct {
	Name string
	// ProcDelay is the per-request processing time of the node's
	// processing unit (the RAMBDA accelerator or the emulated
	// HyperLoop RNIC firmware).
	ProcDelay sim.Duration
	// PerTupleDelay is the additional processing per write tuple
	// (concurrency-control lookup, FSM transition).
	PerTupleDelay sim.Duration
}

// Node is one replica: persistent data backend + redo log +
// concurrency control.
type Node struct {
	cfg   NodeConfig
	Store Backend
	Log   *RedoLog
	CC    *LockTable

	// Per-node request-path scratch (each sweep point drives its chain
	// from one goroutine): lock offsets, the encoded log entry, and a
	// one-tuple slice header for the HyperLoop path.
	offsets  []uint32
	entryBuf []byte
	one      [1]Tuple
}

// NewNode builds a replica inside the given space/memory system.
func NewNode(space *memspace.Space, mem *memdev.System, cfg NodeConfig,
	dataBytes uint64, logEntries, logEntrySize int) *Node {
	return &Node{
		cfg:   cfg,
		Store: NewStore(space, mem, dataBytes),
		Log:   NewRedoLog(space, mem, logEntries, logEntrySize),
		CC:    NewLockTable(),
	}
}

// applyTx runs the RAMBDA accelerator path at this node: concurrency
// control, combined log append, then data writes.
func (n *Node) applyTx(now sim.Time, writes []Tuple) (sim.Time, error) {
	offsets := n.offsets[:0]
	for _, w := range writes {
		offsets = append(offsets, w.Offset)
	}
	n.offsets = offsets
	if !n.CC.TryAcquire(offsets) {
		return now, ErrConflict
	}
	defer n.CC.Release(offsets)

	at := now + n.cfg.ProcDelay + sim.Duration(len(writes))*n.cfg.PerTupleDelay
	n.entryBuf = AppendEntry(n.entryBuf[:0], writes)
	at = n.Log.Append(at, n.entryBuf)
	for _, w := range writes {
		at = n.Store.Write(at, w.Offset, w.Data)
	}
	return at, nil
}

// applyHyperLoop runs the RNIC-firmware path for a single tuple: the
// group-based RDMA write lands in the log and the data area directly,
// with no concurrency control (HyperLoop's semantics cover one pair per
// operation).
func (n *Node) applyHyperLoop(now sim.Time, w Tuple) sim.Time {
	at := now + n.cfg.ProcDelay
	n.one[0] = w
	n.entryBuf = AppendEntry(n.entryBuf[:0], n.one[:])
	at = n.Log.Append(at, n.entryBuf)
	return n.Store.Write(at, w.Offset, w.Data)
}

// ReadOp is one read of a transaction.
type ReadOp struct {
	Offset uint32
	Len    int
}

// Tx is a multi-operation transaction, e.g. the paper's (4 reads, 2
// writes) representative workload.
type Tx struct {
	Reads  []ReadOp
	Writes []Tuple
}

// Chain is the replication chain plus the emulated network topology of
// Fig. 11: the client reaches the head over the datacenter link, and
// replicas are bridged by the client SmartNIC's ARM routing (2-3 us per
// hop in the paper's measurement).
type Chain struct {
	Nodes []*Node
	// ClientOneWay is the client<->chain one-way latency (network +
	// PCIe at each end).
	ClientOneWay sim.Duration
	// HopDelay is the inter-replica routing latency.
	HopDelay sim.Duration
	// WireBPS is the network bandwidth for payload serialization.
	WireBPS float64

	// Availability layer (failover.go). inj == nil — the default, until
	// EnableFaultDetection — is the fault-free fast path: no liveness
	// checks, no history retention, byte-identical timing.
	inj        *fault.Injector
	ackTimeout sim.Duration
	alive      []bool
	downKind   []fault.Kind
	applied    []int     // committed write sets applied per replica
	history    [][]Tuple // committed write sets, for rejoin catch-up
	fstats     FailoverStats
}

// wire returns the serialization delay of `bytes` on the chain's links.
func (c *Chain) wire(bytes int) sim.Duration {
	if c.WireBPS <= 0 {
		return 0
	}
	return sim.Duration(float64(bytes) / c.WireBPS * float64(sim.Second))
}

// ackBytes is the size of a chain ACK / client completion.
const ackBytes = 32

// RambdaTx executes a transaction with the RAMBDA protocol: the client
// issues ONE combined request; the head's accelerator executes reads
// and concurrency control, the combined log entry flows down the chain,
// and the tail responds to the client (Fig. 11's path 1→2→3→4).
func (c *Chain) RambdaTx(now sim.Time, tx Tx) (vals [][]byte, done sim.Time, err error) {
	reqBytes := ackBytes
	if len(tx.Writes) > 0 {
		reqBytes = EntryBytes(tx.Writes)
	}
	at := now + c.wire(reqBytes) + c.ClientOneWay
	hi, at, err := c.headAt(at)
	if err != nil {
		return nil, now, err
	}
	head := c.Nodes[hi]

	// Reads execute at the head (chain replication serves consistent
	// reads from one end); after a head crash the detector has already
	// routed us to the next live replica, which holds every committed
	// write.
	respBytes := ackBytes
	for _, r := range tx.Reads {
		var data []byte
		data, at = head.Store.Read(at, r.Offset, r.Len)
		vals = append(vals, data)
		respBytes += r.Len
	}

	// Writes replicate down the chain (read-only transactions skip the
	// chain entirely, like HyperLoop's direct reads).
	if len(tx.Writes) > 0 {
		if c.inj != nil {
			at, err = c.replicateFaulty(at, tx.Writes, reqBytes)
			if err != nil {
				return nil, now, err
			}
		} else {
			for i, node := range c.Nodes {
				if i > 0 {
					at += c.HopDelay + c.wire(reqBytes)
				}
				at, err = node.applyTx(at, tx.Writes)
				if err != nil {
					return nil, now, err
				}
			}
		}
	}

	done = at + c.wire(respBytes) + c.ClientOneWay
	return vals, done, nil
}

// HyperLoopTx executes the same transaction with HyperLoop's
// group-based primitives: every read is a one-sided RDMA read to the
// head and every write tuple is a separate group operation traversing
// the whole chain, all issued sequentially by the client (paper: "the
// client needs to sequentially issue RDMA operations for each key-value
// pair").
func (c *Chain) HyperLoopTx(now sim.Time, tx Tx) (vals [][]byte, done sim.Time) {
	at := now
	head := c.Nodes[0]
	for _, r := range tx.Reads {
		at += c.ClientOneWay + c.wire(ackBytes) // read request
		var data []byte
		data, at = head.Store.Read(at, r.Offset, r.Len)
		vals = append(vals, data)
		at += c.ClientOneWay + c.wire(r.Len) // data back
	}
	for _, w := range tx.Writes {
		entryLen := 1 + tupleHdr + len(w.Data)
		at += c.ClientOneWay + c.wire(entryLen)
		for i, node := range c.Nodes {
			if i > 0 {
				at += c.HopDelay + c.wire(entryLen)
			}
			at = node.applyHyperLoop(at, w)
		}
		at += c.ClientOneWay + c.wire(ackBytes) // group ACK
	}
	return vals, at
}

// ReadTx is a pure-read transaction: identical in both systems (one
// one-sided RDMA read to the head), excluded from the paper's
// comparison for that reason.
func (c *Chain) ReadTx(now sim.Time, r ReadOp) ([]byte, sim.Time) {
	at := now + c.ClientOneWay + c.wire(ackBytes)
	hi, at, err := c.headAt(at)
	if err != nil {
		return nil, at
	}
	data, at := c.Nodes[hi].Store.Read(at, r.Offset, r.Len)
	return data, at + c.ClientOneWay + c.wire(r.Len)
}
