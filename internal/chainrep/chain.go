package chainrep

import (
	"errors"

	"rambda/internal/fault"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/sim"
)

// ErrConflict reports that a transaction lost its concurrency-control
// race and must retry (paper: conflicting transactions "will be
// buffered in the queue in the order of arrival"; the serial evaluation
// client never conflicts).
var ErrConflict = errors.New("chainrep: key locked by an outstanding transaction")

// NodeConfig sets a replica's processing costs.
type NodeConfig struct {
	Name string
	// ProcDelay is the per-request processing time of the node's
	// processing unit (the RAMBDA accelerator or the emulated
	// HyperLoop RNIC firmware).
	ProcDelay sim.Duration
	// PerTupleDelay is the additional processing per write tuple
	// (concurrency-control lookup, FSM transition).
	PerTupleDelay sim.Duration
}

// Node is one replica: persistent data backend + redo log +
// concurrency control.
type Node struct {
	cfg   NodeConfig
	Store Backend
	Log   *RedoLog
	CC    *LockTable

	// Per-node request-path scratch (each sweep point drives its chain
	// from one goroutine): lock offsets, the encoded log entry, and a
	// one-tuple slice header for the HyperLoop path.
	offsets  []uint32
	entryBuf []byte
	one      [1]Tuple
}

// NewNode builds a replica inside the given space/memory system.
func NewNode(space *memspace.Space, mem *memdev.System, cfg NodeConfig,
	dataBytes uint64, logEntries, logEntrySize int) *Node {
	return &Node{
		cfg:   cfg,
		Store: NewStore(space, mem, dataBytes),
		Log:   NewRedoLog(space, mem, logEntries, logEntrySize),
		CC:    NewLockTable(),
	}
}

// applyTx runs the RAMBDA accelerator path at this node: concurrency
// control, combined log append, then data writes.
func (n *Node) applyTx(now sim.Time, writes []Tuple) (sim.Time, error) {
	offsets := n.offsets[:0]
	for _, w := range writes {
		offsets = append(offsets, w.Offset)
	}
	n.offsets = offsets
	if !n.CC.TryAcquire(offsets) {
		return now, ErrConflict
	}
	defer n.CC.Release(offsets)

	at := now + n.cfg.ProcDelay + sim.Duration(len(writes))*n.cfg.PerTupleDelay
	n.entryBuf = AppendEntry(n.entryBuf[:0], writes)
	at = n.Log.Append(at, n.entryBuf)
	for _, w := range writes {
		at = n.Store.Write(at, w.Offset, w.Data)
	}
	return at, nil
}

// applyHyperLoop runs the RNIC-firmware path for a single tuple: the
// group-based RDMA write lands in the log and the data area directly,
// with no concurrency control (HyperLoop's semantics cover one pair per
// operation).
func (n *Node) applyHyperLoop(now sim.Time, w Tuple) sim.Time {
	at := now + n.cfg.ProcDelay
	n.one[0] = w
	n.entryBuf = AppendEntry(n.entryBuf[:0], n.one[:])
	at = n.Log.Append(at, n.entryBuf)
	return n.Store.Write(at, w.Offset, w.Data)
}

// ReadOp is one read of a transaction.
type ReadOp struct {
	Offset uint32
	Len    int
}

// Tx is a multi-operation transaction, e.g. the paper's (4 reads, 2
// writes) representative workload.
type Tx struct {
	Reads  []ReadOp
	Writes []Tuple
}

// Chain is the replication chain plus the emulated network topology of
// Fig. 11: the client reaches the head over the datacenter link, and
// replicas are bridged by the client SmartNIC's ARM routing (2-3 us per
// hop in the paper's measurement).
type Chain struct {
	Nodes []*Node
	// ClientOneWay is the client<->chain one-way latency (network +
	// PCIe at each end).
	ClientOneWay sim.Duration
	// HopDelay is the inter-replica routing latency.
	HopDelay sim.Duration
	// WireBPS is the network bandwidth for payload serialization.
	WireBPS float64

	// tr, when non-nil, records per-hop spans (client legs, head reads,
	// replica applies and inter-replica hops). Nil is the fast path.
	tr *obs.Trace

	// Availability layer (failover.go). inj == nil — the default, until
	// EnableFaultDetection — is the fault-free fast path: no liveness
	// checks, no history retention, byte-identical timing.
	inj        *fault.Injector
	ackTimeout sim.Duration
	alive      []bool
	downKind   []fault.Kind
	applied    []int     // committed write sets applied per replica
	history    [][]Tuple // committed write sets, for rejoin catch-up
	fstats     FailoverStats
}

// wire returns the serialization delay of `bytes` on the chain's links.
func (c *Chain) wire(bytes int) sim.Duration {
	if c.WireBPS <= 0 {
		return 0
	}
	return sim.Duration(float64(bytes) / c.WireBPS * float64(sim.Second))
}

// ackBytes is the size of a chain ACK / client completion.
const ackBytes = 32

// SetTrace attaches a span recorder to the chain (nil detaches). The
// chain is driven from one goroutine per sweep point, matching the
// trace's single-goroutine contract.
func (c *Chain) SetTrace(tr *obs.Trace) { c.tr = tr }

// TxScratch holds reusable per-transaction result storage for the Into
// transaction forms: one backing buffer per read slot plus the returned
// value-slice header. Buffers grow to the workload's high-water mark and
// are then reused, so steady-state transactions read without
// allocating. Returned values alias the scratch and stay valid only
// until the next transaction that uses the same scratch.
type TxScratch struct {
	vals [][]byte
	bufs [][]byte
}

// buf returns read slot i's backing buffer, empty but with retained
// capacity.
func (sc *TxScratch) buf(i int) []byte {
	for len(sc.bufs) <= i {
		sc.bufs = append(sc.bufs, nil)
	}
	return sc.bufs[i][:0]
}

// RambdaTxInto executes a transaction with the RAMBDA protocol: the
// client issues ONE combined request; the head's accelerator executes
// reads and concurrency control, the combined log entry flows down the
// chain, and the tail responds to the client (Fig. 11's path 1→2→3→4).
// This is the primary form: read results land in sc's reused buffers
// (sc may be nil, in which case every read allocates like RambdaTx).
func (c *Chain) RambdaTxInto(now sim.Time, tx Tx, sc *TxScratch) (vals [][]byte, done sim.Time, err error) {
	reqBytes := ackBytes
	if len(tx.Writes) > 0 {
		reqBytes = EntryBytes(tx.Writes)
	}
	at := now + c.wire(reqBytes) + c.ClientOneWay
	if c.tr != nil {
		c.tr.Span("chain-send", obs.StageWire, now, at)
	}
	hi, at, err := c.headAt(at)
	if err != nil {
		return nil, now, err
	}
	head := c.Nodes[hi]

	// Reads execute at the head (chain replication serves consistent
	// reads from one end); after a head crash the detector has already
	// routed us to the next live replica, which holds every committed
	// write.
	if sc != nil {
		vals = sc.vals[:0]
	}
	respBytes := ackBytes
	for ri, r := range tx.Reads {
		var dst []byte
		if sc != nil {
			dst = sc.buf(ri)
		}
		rstart := at
		var data []byte
		data, at = head.Store.ReadInto(dst, rstart, r.Offset, r.Len)
		if c.tr != nil {
			c.tr.Span("head-read", obs.StageMemory, rstart, at)
		}
		if sc != nil {
			sc.bufs[ri] = data
		}
		vals = append(vals, data)
		respBytes += r.Len
	}
	if sc != nil {
		sc.vals = vals
	}

	// Writes replicate down the chain (read-only transactions skip the
	// chain entirely, like HyperLoop's direct reads).
	if len(tx.Writes) > 0 {
		if c.inj != nil {
			at, err = c.replicateFaulty(at, tx.Writes, reqBytes)
			if err != nil {
				return nil, now, err
			}
		} else {
			for i, node := range c.Nodes {
				if i > 0 {
					hop := at
					at += c.HopDelay + c.wire(reqBytes)
					if c.tr != nil {
						c.tr.Span("chain-hop", obs.StageWire, hop, at)
					}
				}
				apply := at
				at, err = node.applyTx(apply, tx.Writes)
				if err != nil {
					return nil, now, err
				}
				if c.tr != nil {
					// Per-hop ack timing: when this replica durably
					// applied the write set and handed off.
					c.tr.Span(node.cfg.Name, obs.StageMemory, apply, at)
				}
			}
		}
	}

	done = at + c.wire(respBytes) + c.ClientOneWay
	if c.tr != nil {
		c.tr.Span("chain-ack", obs.StageWire, at, done)
	}
	return vals, done, nil
}

// RambdaTx executes a transaction with the RAMBDA protocol, allocating
// fresh result buffers.
//
// Deprecated: use RambdaTxInto with a reused TxScratch.
func (c *Chain) RambdaTx(now sim.Time, tx Tx) ([][]byte, sim.Time, error) {
	return c.RambdaTxInto(now, tx, nil)
}

// HyperLoopTxInto executes the same transaction with HyperLoop's
// group-based primitives: every read is a one-sided RDMA read to the
// head and every write tuple is a separate group operation traversing
// the whole chain, all issued sequentially by the client (paper: "the
// client needs to sequentially issue RDMA operations for each key-value
// pair"). Like RambdaTxInto, sc may be nil.
func (c *Chain) HyperLoopTxInto(now sim.Time, tx Tx, sc *TxScratch) (vals [][]byte, done sim.Time) {
	at := now
	head := c.Nodes[0]
	if sc != nil {
		vals = sc.vals[:0]
	}
	for ri, r := range tx.Reads {
		at += c.ClientOneWay + c.wire(ackBytes) // read request
		var dst []byte
		if sc != nil {
			dst = sc.buf(ri)
		}
		rstart := at
		var data []byte
		data, at = head.Store.ReadInto(dst, rstart, r.Offset, r.Len)
		if c.tr != nil {
			c.tr.Span("head-read", obs.StageMemory, rstart, at)
		}
		if sc != nil {
			sc.bufs[ri] = data
		}
		vals = append(vals, data)
		at += c.ClientOneWay + c.wire(r.Len) // data back
	}
	if sc != nil {
		sc.vals = vals
	}
	for _, w := range tx.Writes {
		entryLen := 1 + tupleHdr + len(w.Data)
		at += c.ClientOneWay + c.wire(entryLen)
		for i, node := range c.Nodes {
			if i > 0 {
				hop := at
				at += c.HopDelay + c.wire(entryLen)
				if c.tr != nil {
					c.tr.Span("chain-hop", obs.StageWire, hop, at)
				}
			}
			apply := at
			at = node.applyHyperLoop(apply, w)
			if c.tr != nil {
				c.tr.Span(node.cfg.Name, obs.StageMemory, apply, at)
			}
		}
		at += c.ClientOneWay + c.wire(ackBytes) // group ACK
	}
	return vals, at
}

// HyperLoopTx executes a transaction with HyperLoop's group-based
// primitives, allocating fresh result buffers.
//
// Deprecated: use HyperLoopTxInto with a reused TxScratch.
func (c *Chain) HyperLoopTx(now sim.Time, tx Tx) ([][]byte, sim.Time) {
	return c.HyperLoopTxInto(now, tx, nil)
}

// ReadTx is a pure-read transaction: identical in both systems (one
// one-sided RDMA read to the head), excluded from the paper's
// comparison for that reason.
func (c *Chain) ReadTx(now sim.Time, r ReadOp) ([]byte, sim.Time) {
	at := now + c.ClientOneWay + c.wire(ackBytes)
	hi, at, err := c.headAt(at)
	if err != nil {
		return nil, at
	}
	data, at := c.Nodes[hi].Store.Read(at, r.Offset, r.Len)
	return data, at + c.ClientOneWay + c.wire(r.Len)
}
