// Package smartnic models the NVIDIA BlueField-2 SmartNIC used as the
// paper's SmartNIC-offloading baseline (Tab. II): eight ARM A72 cores,
// 16 GB of on-board DDR4, and host-memory access via one-sided RDMA
// over the PCIe link — the path whose cost Fig. 1 quantifies and whose
// cache-miss behaviour drives Figs. 8–9's SmartNIC results.
package smartnic

import (
	"container/list"
	"unsafe"

	"rambda/internal/interconnect"
	"rambda/internal/memdev"
	"rambda/internal/sim"
)

// Config describes the SmartNIC SoC.
type Config struct {
	Name    string
	Cores   int     // ARM cores (8)
	ClockHz float64 // 2.5 GHz

	// On-board DRAM.
	LocalBW      float64
	LocalLatency sim.Duration

	// Host access path: PCIe bandwidth plus the fixed round-trip
	// overhead of "the physical PCIe link, memory management unit
	// (MMU), DMA engine, and I/O controller" (paper Sec. II-B).
	PCIeBW        float64
	HostRoundTrip sim.Duration
}

// DefaultConfig returns the BlueField-2 parameters from Tab. II,
// calibrated against Fig. 1's measured access latencies.
func DefaultConfig(name string) Config {
	return Config{
		Name:          name,
		Cores:         8,
		ClockHz:       2.5e9,
		LocalBW:       19e9,
		LocalLatency:  110 * sim.Nanosecond,
		PCIeBW:        16e9,
		HostRoundTrip: 1600 * sim.Nanosecond,
	}
}

// SmartNIC is the SoC model.
type SmartNIC struct {
	cfg   Config
	cores *sim.Resource
	local *memdev.DRAM
	pcie  *interconnect.PCIe
	host  *memdev.System

	localAccesses, hostAccesses int64
}

// New builds a SmartNIC whose host accesses land in the given host
// memory system (nil host is allowed for purely local workloads).
func New(cfg Config, host *memdev.System) *SmartNIC {
	if cfg.Cores <= 0 || cfg.ClockHz <= 0 {
		panic("smartnic: bad config")
	}
	return &SmartNIC{
		cfg:   cfg,
		cores: sim.NewResource(cfg.Name+":arm", cfg.Cores, 0, cfg.ClockHz, 0),
		local: memdev.NewDRAM(cfg.Name+":ddr", 1, cfg.LocalBW, cfg.LocalLatency),
		pcie:  interconnect.NewPCIe(cfg.Name+":pcie", cfg.PCIeBW, cfg.HostRoundTrip/2, 400*sim.Nanosecond),
		host:  host,
	}
}

// Config returns the SoC configuration.
func (s *SmartNIC) Config() Config { return s.cfg }

// Exec occupies an ARM core for `cycles` cycles.
func (s *SmartNIC) Exec(now sim.Time, cycles int) sim.Time {
	_, done := s.cores.Acquire(now, cycles)
	return done
}

// Cores exposes the ARM pool.
func (s *SmartNIC) Cores() *sim.Resource { return s.cores }

// LocalAccess reads or writes on-board DRAM with load/store
// instructions.
func (s *SmartNIC) LocalAccess(now sim.Time, bytes int) sim.Time {
	s.localAccesses++
	return s.local.Access(now, bytes)
}

// LocalAccessOverlapped hides local latency across `overlap` streams.
func (s *SmartNIC) LocalAccessOverlapped(now sim.Time, bytes, overlap int) sim.Time {
	s.localAccesses++
	return s.local.AccessOverlapped(now, bytes, overlap)
}

// HostAccess reaches host memory with a one-sided RDMA read/write over
// PCIe (direct verbs, paper Sec. II-B). overlap > 1 models
// batching/pipelining that hides part of the round trip.
func (s *SmartNIC) HostAccess(now sim.Time, bytes, overlap int) sim.Time {
	if overlap < 1 {
		overlap = 1
	}
	s.hostAccesses++
	// Request descriptor toward the host, payload back (or forth).
	at := s.pcie.DMA(now, bytes)
	if s.host != nil {
		at = s.host.DRAM.AccessOverlapped(at, bytes, overlap)
	}
	// The fixed round-trip overhead, partially hidden by pipelining;
	// the PCIe propagation already covered half a crossing.
	visible := s.cfg.HostRoundTrip / 2 / sim.Duration(overlap)
	return at + visible
}

// LocalAccesses and HostAccesses report traffic counters.
func (s *SmartNIC) LocalAccesses() int64 { return s.localAccesses }
func (s *SmartNIC) HostAccesses() int64  { return s.hostAccesses }

// LRUCache is the on-board software cache of recently accessed hash
// entries and key-value pairs (paper Sec. VI-B allocates 512 MB of the
// SmartNIC's DRAM for it). Capacity is accounted in bytes.
type LRUCache struct {
	capacity int64
	used     int64
	order    *list.List // front = most recent; values are *cacheEntry
	byKey    map[string]*list.Element

	// Key interning: byte-slice keys are copied once per distinct key
	// into append-only arena blocks; `interned` dedups so re-inserting
	// a key the cache has ever seen (including after eviction) reuses
	// the same string header and bytes. Arena memory is bounded by the
	// distinct-key universe, not by insert traffic.
	interned map[string]string
	arena    keyArena

	hits, misses int64
}

type cacheEntry struct {
	key  string
	val  []byte
	size int64
}

// keyArena stores interned key bytes in append-only blocks. Blocks are
// never reallocated (append only ever fills spare capacity), so the
// unsafe.String headers handed out stay valid for the cache's lifetime.
type keyArena struct {
	blocks [][]byte
}

const arenaBlockBytes = 64 << 10

func (a *keyArena) intern(key []byte) string {
	n := len(key)
	if len(a.blocks) == 0 {
		a.grow(n)
	}
	b := &a.blocks[len(a.blocks)-1]
	if cap(*b)-len(*b) < n {
		a.grow(n)
		b = &a.blocks[len(a.blocks)-1]
	}
	off := len(*b)
	*b = append(*b, key...)
	return unsafe.String(&(*b)[off], n)
}

func (a *keyArena) grow(need int) {
	size := arenaBlockBytes
	if need > size {
		size = need
	}
	a.blocks = append(a.blocks, make([]byte, 0, size))
}

// NewLRUCache builds a byte-bounded LRU cache.
func NewLRUCache(capacityBytes int64) *LRUCache {
	if capacityBytes <= 0 {
		panic("smartnic: cache capacity must be positive")
	}
	return &LRUCache{
		capacity: capacityBytes,
		order:    list.New(),
		byKey:    make(map[string]*list.Element),
		interned: make(map[string]string),
	}
}

func entrySize(keyLen int, val []byte) int64 {
	// Key + value + bookkeeping overhead (hash entry).
	return int64(keyLen + len(val) + 32)
}

// Get returns the cached value and refreshes recency.
func (c *LRUCache) Get(key string) ([]byte, bool) {
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// GetBytes is Get keyed by a byte slice: the map lookup's string
// conversion is the compiler-recognized non-allocating pattern, so
// steady-state lookups stay allocation-free while inserts (which must
// materialize an owned string key) still go through Put.
func (c *LRUCache) GetBytes(key []byte) ([]byte, bool) {
	if el, ok := c.byKey[string(key)]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// Put inserts or refreshes a value, evicting LRU entries to fit. It is
// the string-keyed convenience form of PutBytes (same interning, no
// per-insert key copy beyond the one-time arena intern).
func (c *LRUCache) Put(key string, val []byte) {
	c.PutBytes(unsafe.Slice(unsafe.StringData(key), len(key)), val)
}

// PutBytes inserts or refreshes a value keyed by raw bytes, evicting
// LRU entries to fit. The key path never allocates in steady state:
// resident-key refreshes use the compiler's non-allocating
// []byte→string map lookup, and re-inserting any previously seen key
// (including one evicted since) reuses its interned string.
func (c *LRUCache) PutBytes(key, val []byte) {
	size := entrySize(len(key), val)
	if size > c.capacity {
		return // larger than the whole cache: uncacheable
	}
	if el, ok := c.byKey[string(key)]; ok {
		e := el.Value.(*cacheEntry)
		c.used += size - e.size
		e.val, e.size = val, size
		c.order.MoveToFront(el)
	} else {
		k := c.internKey(key)
		el := c.order.PushFront(&cacheEntry{key: k, val: val, size: size})
		c.byKey[k] = el
		c.used += size
	}
	for c.used > c.capacity {
		back := c.order.Back()
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.byKey, e.key)
		c.used -= e.size
	}
}

// internKey returns the canonical owned string for a byte key, copying
// it into the arena the first time the key is ever inserted.
func (c *LRUCache) internKey(key []byte) string {
	if k, ok := c.interned[string(key)]; ok {
		return k
	}
	k := c.arena.intern(key)
	c.interned[k] = k
	return k
}

// Invalidate drops a key (e.g. on a PUT that must reach host memory).
func (c *LRUCache) Invalidate(key string) {
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.byKey, key)
		c.used -= e.size
	}
}

// UsedBytes reports current occupancy.
func (c *LRUCache) UsedBytes() int64 { return c.used }

// Len reports the number of cached entries.
func (c *LRUCache) Len() int { return c.order.Len() }

// HitRate reports the lifetime hit ratio.
func (c *LRUCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
