// Package smartnic models the NVIDIA BlueField-2 SmartNIC used as the
// paper's SmartNIC-offloading baseline (Tab. II): eight ARM A72 cores,
// 16 GB of on-board DDR4, and host-memory access via one-sided RDMA
// over the PCIe link — the path whose cost Fig. 1 quantifies and whose
// cache-miss behaviour drives Figs. 8–9's SmartNIC results.
package smartnic

import (
	"container/list"

	"rambda/internal/interconnect"
	"rambda/internal/memdev"
	"rambda/internal/sim"
)

// Config describes the SmartNIC SoC.
type Config struct {
	Name    string
	Cores   int     // ARM cores (8)
	ClockHz float64 // 2.5 GHz

	// On-board DRAM.
	LocalBW      float64
	LocalLatency sim.Duration

	// Host access path: PCIe bandwidth plus the fixed round-trip
	// overhead of "the physical PCIe link, memory management unit
	// (MMU), DMA engine, and I/O controller" (paper Sec. II-B).
	PCIeBW        float64
	HostRoundTrip sim.Duration
}

// DefaultConfig returns the BlueField-2 parameters from Tab. II,
// calibrated against Fig. 1's measured access latencies.
func DefaultConfig(name string) Config {
	return Config{
		Name:          name,
		Cores:         8,
		ClockHz:       2.5e9,
		LocalBW:       19e9,
		LocalLatency:  110 * sim.Nanosecond,
		PCIeBW:        16e9,
		HostRoundTrip: 1600 * sim.Nanosecond,
	}
}

// SmartNIC is the SoC model.
type SmartNIC struct {
	cfg   Config
	cores *sim.Resource
	local *memdev.DRAM
	pcie  *interconnect.PCIe
	host  *memdev.System

	localAccesses, hostAccesses int64
}

// New builds a SmartNIC whose host accesses land in the given host
// memory system (nil host is allowed for purely local workloads).
func New(cfg Config, host *memdev.System) *SmartNIC {
	if cfg.Cores <= 0 || cfg.ClockHz <= 0 {
		panic("smartnic: bad config")
	}
	return &SmartNIC{
		cfg:   cfg,
		cores: sim.NewResource(cfg.Name+":arm", cfg.Cores, 0, cfg.ClockHz, 0),
		local: memdev.NewDRAM(cfg.Name+":ddr", 1, cfg.LocalBW, cfg.LocalLatency),
		pcie:  interconnect.NewPCIe(cfg.Name+":pcie", cfg.PCIeBW, cfg.HostRoundTrip/2, 400*sim.Nanosecond),
		host:  host,
	}
}

// Config returns the SoC configuration.
func (s *SmartNIC) Config() Config { return s.cfg }

// Exec occupies an ARM core for `cycles` cycles.
func (s *SmartNIC) Exec(now sim.Time, cycles int) sim.Time {
	_, done := s.cores.Acquire(now, cycles)
	return done
}

// Cores exposes the ARM pool.
func (s *SmartNIC) Cores() *sim.Resource { return s.cores }

// LocalAccess reads or writes on-board DRAM with load/store
// instructions.
func (s *SmartNIC) LocalAccess(now sim.Time, bytes int) sim.Time {
	s.localAccesses++
	return s.local.Access(now, bytes)
}

// LocalAccessOverlapped hides local latency across `overlap` streams.
func (s *SmartNIC) LocalAccessOverlapped(now sim.Time, bytes, overlap int) sim.Time {
	s.localAccesses++
	return s.local.AccessOverlapped(now, bytes, overlap)
}

// HostAccess reaches host memory with a one-sided RDMA read/write over
// PCIe (direct verbs, paper Sec. II-B). overlap > 1 models
// batching/pipelining that hides part of the round trip.
func (s *SmartNIC) HostAccess(now sim.Time, bytes, overlap int) sim.Time {
	if overlap < 1 {
		overlap = 1
	}
	s.hostAccesses++
	// Request descriptor toward the host, payload back (or forth).
	at := s.pcie.DMA(now, bytes)
	if s.host != nil {
		at = s.host.DRAM.AccessOverlapped(at, bytes, overlap)
	}
	// The fixed round-trip overhead, partially hidden by pipelining;
	// the PCIe propagation already covered half a crossing.
	visible := s.cfg.HostRoundTrip / 2 / sim.Duration(overlap)
	return at + visible
}

// LocalAccesses and HostAccesses report traffic counters.
func (s *SmartNIC) LocalAccesses() int64 { return s.localAccesses }
func (s *SmartNIC) HostAccesses() int64  { return s.hostAccesses }

// LRUCache is the on-board software cache of recently accessed hash
// entries and key-value pairs (paper Sec. VI-B allocates 512 MB of the
// SmartNIC's DRAM for it). Capacity is accounted in bytes.
type LRUCache struct {
	capacity int64
	used     int64
	order    *list.List // front = most recent; values are *cacheEntry
	byKey    map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key  string
	val  []byte
	size int64
}

// NewLRUCache builds a byte-bounded LRU cache.
func NewLRUCache(capacityBytes int64) *LRUCache {
	if capacityBytes <= 0 {
		panic("smartnic: cache capacity must be positive")
	}
	return &LRUCache{
		capacity: capacityBytes,
		order:    list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

func entrySize(key string, val []byte) int64 {
	// Key + value + bookkeeping overhead (hash entry).
	return int64(len(key) + len(val) + 32)
}

// Get returns the cached value and refreshes recency.
func (c *LRUCache) Get(key string) ([]byte, bool) {
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// GetBytes is Get keyed by a byte slice: the map lookup's string
// conversion is the compiler-recognized non-allocating pattern, so
// steady-state lookups stay allocation-free while inserts (which must
// materialize an owned string key) still go through Put.
func (c *LRUCache) GetBytes(key []byte) ([]byte, bool) {
	if el, ok := c.byKey[string(key)]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// Put inserts or refreshes a value, evicting LRU entries to fit.
func (c *LRUCache) Put(key string, val []byte) {
	size := entrySize(key, val)
	if size > c.capacity {
		return // larger than the whole cache: uncacheable
	}
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		c.used += size - e.size
		e.val, e.size = val, size
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&cacheEntry{key: key, val: val, size: size})
		c.byKey[key] = el
		c.used += size
	}
	for c.used > c.capacity {
		back := c.order.Back()
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.byKey, e.key)
		c.used -= e.size
	}
}

// Invalidate drops a key (e.g. on a PUT that must reach host memory).
func (c *LRUCache) Invalidate(key string) {
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.byKey, key)
		c.used -= e.size
	}
}

// UsedBytes reports current occupancy.
func (c *LRUCache) UsedBytes() int64 { return c.used }

// Len reports the number of cached entries.
func (c *LRUCache) Len() int { return c.order.Len() }

// HitRate reports the lifetime hit ratio.
func (c *LRUCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
