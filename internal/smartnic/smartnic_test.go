package smartnic

import (
	"fmt"
	"testing"
	"testing/quick"

	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

func newHost() *memdev.System {
	space := memspace.New()
	space.Alloc("host", 1<<20, memspace.KindDRAM)
	return &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM("host:dram", 6, 120e9, 90*sim.Nanosecond),
		LLC:   memdev.NewLLC("host:llc", 300e9, 20*sim.Nanosecond),
	}
}

func TestHostAccessFarSlowerThanLocal(t *testing.T) {
	s := New(DefaultConfig("bf2"), newHost())
	local := s.LocalAccess(0, 64)
	host := s.HostAccess(0, 64, 1)
	if host < 8*local {
		t.Fatalf("host access (%v) must be much slower than local (%v)", host, local)
	}
	// Calibration: a single 64B host access is on the order of 1-3us.
	if host < sim.Microsecond || host > 4*sim.Microsecond {
		t.Fatalf("host access=%v, want ~1.5-2.5us (Fig. 1 calibration)", host)
	}
	if s.LocalAccesses() != 1 || s.HostAccesses() != 1 {
		t.Fatal("counters")
	}
}

func TestHostAccessOverlapHidesLatency(t *testing.T) {
	s := New(DefaultConfig("bf2"), newHost())
	serial := s.HostAccess(0, 64, 1)
	s2 := New(DefaultConfig("bf2"), newHost())
	pipelined := s2.HostAccess(0, 64, 16)
	if pipelined >= serial {
		t.Fatalf("pipelined (%v) must beat serial (%v)", pipelined, serial)
	}
}

func TestExecUsesARMCores(t *testing.T) {
	s := New(DefaultConfig("bf2"), nil)
	// 2500 cycles at 2.5GHz = 1us; 8 cores run 8 in parallel.
	var done sim.Time
	for i := 0; i < 8; i++ {
		done = s.Exec(0, 2500)
	}
	if done != sim.Microsecond {
		t.Fatalf("8 parallel execs done=%v", done)
	}
	done = s.Exec(0, 2500)
	if done != 2*sim.Microsecond {
		t.Fatalf("9th exec=%v, want queued to 2us", done)
	}
}

func TestFig1Shape(t *testing.T) {
	// Request latency (100 x 64B accesses) must grow linearly with the
	// host-access percentage.
	lat := func(hostPct int) sim.Time {
		s := New(DefaultConfig("bf2"), newHost())
		at := sim.Time(0)
		for i := 0; i < 100; i++ {
			if i*100 < hostPct*100/1*1 && i < hostPct {
				at = s.HostAccess(at, 64, 1)
			} else {
				at = s.LocalAccess(at, 64)
			}
		}
		return at
	}
	l0, l50, l100 := lat(0), lat(50), lat(100)
	if !(l0 < l50 && l50 < l100) {
		t.Fatalf("latency not increasing: %v %v %v", l0, l50, l100)
	}
	mid := (l0 + l100) / 2
	if l50 < mid*8/10 || l50 > mid*12/10 {
		t.Fatalf("50%% point %v not linear between %v and %v", l50, l0, l100)
	}
}

func TestLRUBasics(t *testing.T) {
	c := NewLRUCache(1 << 10)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("value-a"))
	v, ok := c.Get("a")
	if !ok || string(v) != "value-a" {
		t.Fatalf("get=%q ok=%v", v, ok)
	}
	c.Put("a", []byte("replaced"))
	v, _ = c.Get("a")
	if string(v) != "replaced" {
		t.Fatal("replace failed")
	}
	c.Invalidate("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("invalidated key still present")
	}
	if c.UsedBytes() != 0 {
		t.Fatalf("used=%d after invalidate", c.UsedBytes())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Each entry is 1+3+32 = 36 bytes; capacity for ~3.
	c := NewLRUCache(110)
	c.Put("a", []byte("aaa"))
	c.Put("b", []byte("bbb"))
	c.Put("c", []byte("ccc"))
	c.Get("a") // refresh a; b is now LRU
	c.Put("d", []byte("ddd"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
}

func TestLRUOversizeEntryIgnored(t *testing.T) {
	c := NewLRUCache(64)
	c.Put("huge", make([]byte, 128))
	if c.Len() != 0 {
		t.Fatal("oversize entry must not be cached")
	}
}

func TestLRUHitRate(t *testing.T) {
	c := NewLRUCache(1 << 20)
	c.Put("k", []byte("v"))
	c.Get("k")
	c.Get("k")
	c.Get("miss")
	if hr := c.HitRate(); hr < 0.6 || hr > 0.7 {
		t.Fatalf("hit rate=%v, want 2/3", hr)
	}
}

func TestLRUCapacityInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewLRUCache(4096)
		for _, op := range ops {
			key := fmt.Sprintf("key-%d", op%64)
			if op%3 == 0 {
				c.Get(key)
			} else {
				c.Put(key, make([]byte, int(op%200)))
			}
			if c.UsedBytes() > 4096 || c.UsedBytes() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLRUInterningOwnsKeyBytes(t *testing.T) {
	// PutBytes must copy the key: the caller's buffer is scratch and is
	// rewritten per request in the experiment hot paths.
	c := NewLRUCache(1 << 10)
	buf := []byte("key-a")
	c.PutBytes(buf, []byte("va"))
	copy(buf, "key-b")
	c.PutBytes(buf, []byte("vb"))
	if v, ok := c.Get("key-a"); !ok || string(v) != "va" {
		t.Fatalf("key-a=%q ok=%v (intern did not copy the key)", v, ok)
	}
	if v, ok := c.GetBytes([]byte("key-b")); !ok || string(v) != "vb" {
		t.Fatalf("key-b=%q ok=%v", v, ok)
	}
}

func TestLRUInternDedupsAcrossEviction(t *testing.T) {
	// Each entry is 5+3+32 = 40 bytes: capacity 80 holds two. Cycling
	// three keys evicts and re-inserts each repeatedly; the interning
	// table must stay at the distinct-key count instead of growing with
	// insert traffic.
	c := NewLRUCache(80)
	keys := [][]byte{[]byte("key-a"), []byte("key-b"), []byte("key-c")}
	for i := 0; i < 300; i++ {
		c.PutBytes(keys[i%3], []byte("vvv"))
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2 resident", c.Len())
	}
	if len(c.interned) != 3 {
		t.Fatalf("interned %d keys, want 3 (dedup across eviction)", len(c.interned))
	}
	if len(c.arena.blocks) != 1 {
		t.Fatalf("arena has %d blocks, want 1 (15 bytes of distinct keys)", len(c.arena.blocks))
	}
}

func TestLRUSteadyStateZeroAlloc(t *testing.T) {
	// The fig8/fig9 SmartNIC hot path: GETs hitting the cache and
	// refresh-Puts of resident keys. Neither may allocate once the
	// working set is resident (ROADMAP item 5: no string key
	// materialized per insert).
	if raceEnabled {
		t.Skip("allocation counts distorted under -race")
	}
	c := NewLRUCache(1 << 20)
	const n = 64
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
		vals[i] = make([]byte, 40)
		c.PutBytes(keys[i], vals[i])
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		k := keys[i%n]
		c.PutBytes(k, vals[i%n])
		if _, ok := c.GetBytes(k); !ok {
			t.Fatal("resident key missing")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state PutBytes+GetBytes allocates %.1f/op, want 0", allocs)
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { New(Config{}, nil) },
		func() { NewLRUCache(0) },
	} {
		func() {
			defer func() { recover() }()
			f()
			t.Fatal("expected panic")
		}()
	}
}
