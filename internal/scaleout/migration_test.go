package scaleout

import (
	"encoding/binary"
	"testing"

	"rambda/internal/chainrep"
	"rambda/internal/sim"
)

// TestMigrationUnderSkewedWrites is the live-migration correctness
// check: a 70%-hot workload with a 50/50 GET/PUT mix drives hot-key
// migrations while writes race the snapshot copy (CopyChunk 1 spreads
// each copy over several request completions). Every read is compared
// against a model store, so a lost write, a duplicated apply with stale
// bytes, or a read served from a half-migrated shard all fail
// immediately. Afterwards the replicas of every shard must be
// state-equal and a stale frontend must reach every moved key through
// exactly the reject-refresh-retry path.
func TestMigrationUnderSkewedWrites(t *testing.T) {
	cfg := testClusterConfig()
	c := New(cfg)
	const keys = 512
	now := preloadN(c, keys)

	model := make([]uint64, keys)
	for i := range model {
		model[i] = uint64(i)
	}

	fe := c.NewFrontend()
	stale := c.NewFrontend() // keeps the version-1 map until it collides
	rng := sim.NewRNG(99)
	var key []byte
	val := make([]byte, 46)
	seq := uint64(1 << 32)
	sawMidMigrationRead := false
	for i := 0; i < 4000; i++ {
		k := rng.Intn(keys)
		if rng.Intn(10) < 7 {
			k = rng.Intn(4)
		}
		key = appendBenchKey(key[:0], k)
		if rng.Intn(2) == 0 {
			seq++
			binary.LittleEndian.PutUint64(val, seq)
			now = fe.Put(now, key, val)
			model[k] = seq
		} else {
			if c.MigrationActive() {
				sawMidMigrationRead = true
			}
			got, done := fe.Get(now, key)
			if v := binary.LittleEndian.Uint64(got); v != model[k] {
				t.Fatalf("request %d: key %d read %#x, want %#x (lost or stale write)", i, k, v, model[k])
			}
			now = done
		}
	}

	st := c.Stats()
	if st.Migrations == 0 || st.MovedKeys == 0 {
		t.Fatalf("workload triggered no migration: %+v", st)
	}
	if !sawMidMigrationRead {
		t.Fatal("no read ever raced a migration; the interleaving is untested")
	}
	if st.LastImbalance >= st.FirstImbalance {
		t.Fatalf("imbalance did not drop: first %.3f, last %.3f", st.FirstImbalance, st.LastImbalance)
	}
	if st.MapVersion != 1+uint64(st.Migrations) {
		t.Fatalf("map version %d after %d migrations", st.MapVersion, st.Migrations)
	}

	// The stale frontend still routes by the pre-migration map: its
	// first collision with a moved key pays one reject + map refresh,
	// after which every key — moved or not — reads correctly.
	if stale.MapVersion() != 1 {
		t.Fatalf("stale frontend refreshed prematurely to version %d", stale.MapVersion())
	}
	before := st.StaleRetries
	for k := 0; k < keys; k++ {
		key = appendBenchKey(key[:0], k)
		got, done := stale.Get(now, key)
		if v := binary.LittleEndian.Uint64(got); v != model[k] {
			t.Fatalf("stale frontend: key %d read %#x, want %#x", k, v, model[k])
		}
		now = done
	}
	if retries := c.Stats().StaleRetries - before; retries != 1 {
		t.Fatalf("stale frontend paid %d retries over the key sweep, want exactly 1", retries)
	}
	if stale.MapVersion() != st.MapVersion {
		t.Fatalf("stale frontend at version %d after refresh, want %d", stale.MapVersion(), st.MapVersion)
	}

	// Migration installs went down each destination chain like regular
	// replicated writes: replicas must agree byte-for-byte.
	n := cfg.SlotsPerShard * cfg.SlotBytes
	for i := 0; i < c.Shards(); i++ {
		ch := c.Chain(i)
		if !chainrep.StateEqual(ch.Nodes[0].Store, ch.Nodes[1].Store, n) {
			t.Fatalf("shard %d: replicas diverged after migration", i)
		}
	}
}

// TestMigrationDisabledKeepsImbalance pins the control: with
// RebalanceEvery 0 the same skewed workload never migrates and the
// authoritative map never moves past version 1.
func TestMigrationDisabledKeepsImbalance(t *testing.T) {
	cfg := testClusterConfig()
	cfg.RebalanceEvery = 0
	c := New(cfg)
	const keys = 512
	now := preloadN(c, keys)
	fe := c.NewFrontend()
	rng := sim.NewRNG(99)
	var key []byte
	for i := 0; i < 2000; i++ {
		k := rng.Intn(keys)
		if rng.Intn(10) < 7 {
			k = rng.Intn(4)
		}
		key = appendBenchKey(key[:0], k)
		_, done := fe.Get(now, key)
		now = done
	}
	st := c.Stats()
	if st.Migrations != 0 || st.MapVersion != 1 || st.StaleRetries != 0 {
		t.Fatalf("migration ran while disabled: %+v", st)
	}
}
