package scaleout

import (
	"fmt"

	"rambda/internal/fault"
	"rambda/internal/obs"
	"rambda/internal/sim"
)

// This file wires the cluster through internal/fault: every shard
// chain gets the chainrep failure detector, crashed replicas are
// spliced out by missed acks on the request path, and the cluster's
// per-completion tick opportunistically rejoins replicas whose fault
// windows have ended — so failover and recovery both happen mid
// -traffic, racing whatever migration or resize is in flight. With no
// injector attached (EnableFaults never called) every path here is a
// nil check and the cluster behaves byte-identically to the fault-free
// model.

// EnableFaults arms the cluster against the instantiated fault plan:
// every shard chain (including shards added later by AddShard) runs
// the missed-ack failure detector at the configured AckTimeout, and
// the request loop starts scanning for rejoinable replicas. Call it
// after any fault-free bulk load: preloads through an armed chain pay
// liveness checks and retain history.
func (c *Cluster) EnableFaults(inj *fault.Injector) {
	c.inj = inj
	for _, sh := range c.shards {
		sh.chain.EnableFaultDetection(inj, c.cfg.AckTimeout)
	}
}

// maybeRejoin scans for spliced-out replicas whose fault windows have
// ended and rejoins them — redo-log replay plus history catch-up — in
// shard-id order, so recovery is deterministic. It runs on every
// request completion (cheap when all chains are whole: one live-count
// per shard) and after every failed attempt, so a cluster under a
// crash storm heals as soon as virtual time passes each window.
func (c *Cluster) maybeRejoin(now sim.Time) {
	for _, sh := range c.shards {
		if sh.retired {
			continue
		}
		ch := sh.chain
		if ch.LiveReplicas() == len(ch.Nodes) {
			continue
		}
		for i, n := range ch.Nodes {
			if ch.Alive(i) || c.inj.NodeDown(n.Name(), now) {
				continue
			}
			if _, err := ch.Rejoin(now, i); err != nil {
				panic(fmt.Sprintf("scaleout: rejoin %s: %v", n.Name(), err))
			}
		}
	}
}

// RejoinAll waits out every active fault window and rejoins every
// spliced-out replica, returning the time the last catch-up finished.
// The end-of-run convergence step: after it, every live shard's
// replicas are state-equal.
func (c *Cluster) RejoinAll(now sim.Time) sim.Time {
	if c.inj == nil {
		return now
	}
	for _, sh := range c.shards {
		ch := sh.chain
		for i, n := range ch.Nodes {
			if ch.Alive(i) {
				continue
			}
			at, err := ch.Rejoin(now, i)
			if err != nil {
				panic(fmt.Sprintf("scaleout: rejoin %s: %v", n.Name(), err))
			}
			if at > now {
				now = at
			}
		}
	}
	return now
}

// RegisterFaultMetrics adds the availability-layer gauges to a
// registry. It is deliberately separate from RegisterMetrics — the
// fault-free scaleout export predates these counters and must stay
// byte-identical — so only fault-enabled experiments register both.
func (c *Cluster) RegisterFaultMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".timeout_retries", func() float64 { return float64(c.timeoutRetries) })
	reg.Gauge(prefix+".failed", func() float64 { return float64(c.failed) })
	reg.Gauge(prefix+".deep_stale", func() float64 { return float64(c.deepStale) })
	reg.Gauge(prefix+".aborted_migrations", func() float64 { return float64(c.aborted) })
	reg.Gauge(prefix+".range_migrations", func() float64 { return float64(c.rangeMigrations) })
	reg.Gauge(prefix+".range_keys", func() float64 { return float64(c.rangeKeys) })
	reg.Gauge(prefix+".resizes", func() float64 { return float64(c.resizes) })
	reg.Gauge(prefix+".live_shards", func() float64 { return float64(c.LiveShards()) })
	reg.Gauge(prefix+".failovers", func() float64 {
		var n int64
		for _, sh := range c.shards {
			n += sh.chain.FailoverStats().Failovers
		}
		return float64(n)
	})
	reg.Gauge(prefix+".rejoins", func() float64 {
		var n int64
		for _, sh := range c.shards {
			n += sh.chain.FailoverStats().Rejoins
		}
		return float64(n)
	})
}
