package scaleout

import (
	"errors"
	"fmt"

	"rambda/internal/chainrep"
	"rambda/internal/fault"
	"rambda/internal/kvs"
	"rambda/internal/lsm"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/sim"
)

// ErrRetriesExhausted reports that a request burned every attempt —
// stale-map refreshes and failover timeouts both count — without being
// served. It is the frontend's degradation contract: a request to a
// fully-crashed shard fails loudly and countably instead of wedging.
var ErrRetriesExhausted = errors.New("scaleout: request retries exhausted")

// Config sizes a sharded cluster.
type Config struct {
	// Shards is the number of shard chains; Replicas the chain length of
	// each; VNodes the virtual nodes per shard on the ring.
	Shards   int
	Replicas int
	VNodes   int

	// SlotsPerShard bounds the distinct keys a shard can hold (each key
	// owns one fixed SlotBytes store slot); LogEntries sizes each
	// replica's redo-log ring.
	SlotsPerShard int
	SlotBytes     int
	LogEntries    int

	// Backend selects each replica's storage engine: "" or "flat" is the
	// flat NVM store (the chainrep default), "lsm" puts a tiered LSM tree
	// (DRAM memtable + NVM sstables, internal/lsm) under every replica —
	// same chain protocol, same slot addressing, but writes absorb in the
	// memtable and background flush/compaction charges the replica's NVM.
	Backend string

	// Seed places the ring's virtual nodes.
	Seed uint64

	// Testbed timing, matching the chainrep experiments.
	ClientOneWay  sim.Duration
	HopDelay      sim.Duration
	WireBPS       float64
	ProcDelay     sim.Duration
	PerTupleDelay sim.Duration

	// Hot-key detection and migration policy. RebalanceEvery is the
	// detection window in requests (0 disables migration);
	// ImbalanceThreshold is the max/mean window load ratio that triggers
	// a migration; HotKeysPerMove caps keys moved per migration;
	// MaxMigrations caps migrations per run; CopyChunk is the number of
	// keys snapshot-copied per request completion while a migration is
	// in flight.
	TopK               int
	RebalanceEvery     int
	ImbalanceThreshold float64
	HotKeysPerMove     int
	MaxMigrations      int
	CopyChunk          int

	// Fault handling and elasticity. MaxAttempts bounds Frontend.do's
	// retry loop — stale-map refreshes and failover timeouts both
	// consume attempts (<= 0 takes 6). RetryBackoff is the base of the
	// exponential backoff charged after an attempt that found no live
	// replica. AckTimeout is the chain failure detector's missed-ack
	// timer once EnableFaults arms it (<= 0 takes the chainrep
	// default). RangeChunkKeys caps the keys moved per elastic range
	// migration (<= 0 takes 256).
	MaxAttempts    int
	RetryBackoff   sim.Duration
	AckTimeout     sim.Duration
	RangeChunkKeys int
}

// DefaultConfig returns a 4-shard cluster at the chainrep testbed
// parameters.
func DefaultConfig() Config {
	return Config{
		Shards:        4,
		Replicas:      2,
		VNodes:        64,
		SlotsPerShard: 1 << 15,
		SlotBytes:     64,
		LogEntries:    4096,
		Seed:          42,

		ClientOneWay:  2 * sim.Microsecond,
		HopDelay:      2500 * sim.Nanosecond,
		WireBPS:       3.125e9,
		ProcDelay:     500 * sim.Nanosecond,
		PerTupleDelay: 100 * sim.Nanosecond,

		TopK:               16,
		RebalanceEvery:     2000,
		ImbalanceThreshold: 1.2,
		HotKeysPerMove:     4,
		MaxMigrations:      8,
		CopyChunk:          8,

		MaxAttempts:    6,
		RetryBackoff:   10 * sim.Microsecond,
		AckTimeout:     25 * sim.Microsecond,
		RangeChunkKeys: 256,
	}
}

// defaultMaxAttempts backs MaxAttempts when a caller-built Config left
// it zero.
const defaultMaxAttempts = 6

// retryShiftCap bounds the exponential retry backoff shift.
const retryShiftCap = 6

// slotRef locates one key's value inside its shard's store.
type slotRef struct {
	off uint32
	n   uint16
}

// Shard is one partition: a replicated chain plus the key-hash index
// over its store slots, its hot-key sketch, and its latency histogram.
type Shard struct {
	id        int
	chain     *chainrep.Chain
	index     map[uint64]slotRef
	nextSlot  uint32
	slots     uint32
	slotBytes uint32

	hot    *obs.TopK
	hist   *sim.Histogram
	served int64 // lifetime requests served here
	window int64 // requests in the current detection window

	// retired marks a shard drained and removed by an elastic resize:
	// it owns no keys, serves no requests, and is skipped by every
	// planner. Its chain is kept (cheap, and its history stays
	// inspectable) but never touched again.
	retired bool

	// Request-path scratch: each cluster is driven from one goroutine
	// (one runner sweep point), so one read op, one write tuple, and one
	// TxScratch per shard make the steady state allocation-free.
	sc chainrep.TxScratch
	rd [1]chainrep.ReadOp
	wr [1]chainrep.Tuple
}

// shardLSMConfig sizes a replica's LSM tree from the shard's data
// footprint: the memtable absorbs ~1/16 of the working set before a
// flush, L0 bounds at 4 runs.
func shardLSMConfig(dataBytes uint64) lsm.Config {
	mt := int(dataBytes / 16)
	if mt < 16<<10 {
		mt = 16 << 10
	}
	return lsm.Config{
		MemtableBytes: mt,
		L0Runs:        4,
		SSTableBytes:  8 << 20,
		WALBytes:      1 << 20,
		MaxLevels:     4,
	}
}

// newShard builds shard i's chain: Replicas fresh machines, each with
// its own memory system, storage backend (flat NVM store or tiered LSM
// tree, per Config.Backend), and redo log.
func newShard(i int, cfg Config) *Shard {
	ch := &chainrep.Chain{
		ClientOneWay: cfg.ClientOneWay,
		HopDelay:     cfg.HopDelay,
		WireBPS:      cfg.WireBPS,
	}
	dataBytes := uint64(cfg.SlotsPerShard) * uint64(cfg.SlotBytes)
	entrySize := chainrep.EntrySize(1, cfg.SlotBytes)
	for r := 0; r < cfg.Replicas; r++ {
		name := fmt.Sprintf("s%dr%d", i, r)
		space := memspace.New()
		mem := &memdev.System{
			Space: space,
			DRAM:  memdev.NewDRAM(name+":dram", 6, 120e9, 90*sim.Nanosecond),
			NVM:   memdev.NewNVM(name+":nvm", 6, 39e9, 300*sim.Nanosecond, 3),
			LLC:   memdev.NewLLC(name+":llc", 300e9, 20*sim.Nanosecond),
		}
		nodeCfg := chainrep.NodeConfig{
			Name: name, ProcDelay: cfg.ProcDelay, PerTupleDelay: cfg.PerTupleDelay,
		}
		switch cfg.Backend {
		case "", "flat":
			ch.Nodes = append(ch.Nodes, chainrep.NewNode(space, mem, nodeCfg,
				dataBytes, cfg.LogEntries, entrySize))
		case "lsm":
			ch.Nodes = append(ch.Nodes, chainrep.NewNodeLSM(space, mem, nodeCfg,
				shardLSMConfig(dataBytes), cfg.LogEntries, entrySize))
		default:
			panic(fmt.Sprintf("scaleout: unknown backend %q", cfg.Backend))
		}
	}
	return &Shard{
		id:        i,
		chain:     ch,
		index:     make(map[uint64]slotRef),
		slots:     uint32(cfg.SlotsPerShard),
		slotBytes: uint32(cfg.SlotBytes),
		hot:       obs.NewTopK(cfg.TopK),
		hist:      sim.NewHistogram(0),
	}
}

// ensureSlot returns key hash h's slot, allocating the next free one on
// first touch.
func (s *Shard) ensureSlot(h uint64, n int) slotRef {
	if ref, ok := s.index[h]; ok {
		if int(ref.n) != n {
			ref.n = uint16(n)
			s.index[h] = ref
		}
		return ref
	}
	if s.nextSlot >= s.slots {
		panic(fmt.Sprintf("scaleout: shard %d store full (%d slots)", s.id, s.slots))
	}
	if n > int(s.slotBytes) {
		panic(fmt.Sprintf("scaleout: value %d B exceeds slot size %d B", n, s.slotBytes))
	}
	ref := slotRef{off: s.nextSlot * s.slotBytes, n: uint16(n)}
	s.nextSlot++
	s.index[h] = ref
	return ref
}

// migEntry is one write to a migrating key, logged at the source for
// catch-up replay at the destination.
type migEntry struct {
	key uint64
	val []byte
}

// migration is one in-flight hot-key move. Phase A (start): the keys
// are marked migrating and writes to them start being logged. Phase B
// (stepMigration): the source's current values are snapshot-copied to
// the destination, CopyChunk keys per request completion. Phase C (same
// call that finishes the copy): the logged writes are replayed at the
// destination in arrival order and the shard map flips atomically.
type migration struct {
	src, dst  int
	keys      []uint64 // hottest first, the sketch's deterministic order
	cursor    int      // next key to snapshot-copy
	migrating map[uint64]bool
	log       []migEntry

	// elastic marks a range-migration chunk of an in-flight resize;
	// resizeStart is the resize cursor to rewind to if the chunk
	// aborts (so the whole chunk re-copies on retry).
	elastic     bool
	resizeStart int
}

// Cluster is the sharded KVS: Shards chain-replicated partitions behind
// a consistent-hash ring, an authoritative ShardMap that migrations
// flip, and the hot-key detection state machine. One Cluster is driven
// from one goroutine; all cross-shard decisions are deterministic.
type Cluster struct {
	cfg    Config
	shards []*Shard
	cur    *ShardMap // authoritative routing state
	mig    *migration

	// Availability layer: inj == nil — the default, until EnableFaults
	// — is the fault-free fast path (no liveness scans, no retry
	// bookkeeping, byte-identical behaviour); resize is the in-flight
	// elastic reshape, nil when the shard set is stable.
	inj    *fault.Injector
	resize *resize

	sinceCheck     int
	checks         int64
	staleRetries   int64
	migrations     int64
	movedKeys      int64
	firstImbalance float64
	lastImbalance  float64

	deepStale       int64 // refreshes that jumped >= 2 map versions
	timeoutRetries  int64 // attempts that found no live replica
	failed          int64 // requests that exhausted every attempt
	aborted         int64 // migrations abandoned to a crashed chain
	rangeMigrations int64 // elastic range chunks flipped
	rangeKeys       int64 // keys moved by elastic chunks
	resizes         int64 // completed AddShard/RemoveShard reshapes

	reg *obs.Registry

	// Migration-path scratch, separate from the shards' request scratch
	// so a snapshot copy never clobbers a value a frontend just
	// returned.
	migSc  chainrep.TxScratch
	migRd  [1]chainrep.ReadOp
	migWr  [1]chainrep.Tuple
	topBuf []obs.TopKEntry
}

// New builds the cluster: Shards empty shard chains and a version-1
// shard map over the ring.
func New(cfg Config) *Cluster {
	if cfg.Shards < 1 || cfg.Replicas < 1 {
		panic("scaleout: need Shards >= 1 and Replicas >= 1")
	}
	c := &Cluster{cfg: cfg, firstImbalance: 1, lastImbalance: 1}
	// Shard chains are fully independent machines (private memspace,
	// memory devices, replica chains; no RNG), so build them as
	// unlinked partitions of the parallel engine: one barrier-free
	// epoch, slot-indexed results, concurrent under -sim-parallel and
	// byte-identical to the sequential loop.
	c.shards = make([]*Shard, cfg.Shards)
	eng := sim.NewEngine(cfg.Seed)
	for i := 0; i < cfg.Shards; i++ {
		i := i
		eng.AddPartition(fmt.Sprintf("shard%d", i), 0, func(p *sim.Partition, _ sim.Time) {
			c.shards[i] = newShard(i, cfg)
			p.SetNext(sim.MaxTime)
		})
	}
	eng.Run()
	c.cur = NewShardMap(NewRing(cfg.Shards, cfg.VNodes, cfg.Seed))
	return c
}

// Config returns the cluster's sizing.
func (c *Cluster) Config() Config { return c.cfg }

// Shards reports the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Chain exposes shard i's replication chain (tests check replica
// state-equality through it).
func (c *Cluster) Chain(i int) *chainrep.Chain { return c.shards[i].chain }

// Map returns the authoritative shard map.
func (c *Cluster) Map() *ShardMap { return c.cur }

// MigrationActive reports whether a hot-key move is in flight.
func (c *Cluster) MigrationActive() bool { return c.mig != nil }

// ResizeActive reports whether an elastic reshape is in flight.
func (c *Cluster) ResizeActive() bool { return c.resize != nil }

// Retired reports whether shard i has been drained and removed.
func (c *Cluster) Retired(i int) bool { return c.shards[i].retired }

// LiveShards counts the non-retired shards.
func (c *Cluster) LiveShards() int {
	n := 0
	for _, sh := range c.shards {
		if !sh.retired {
			n++
		}
	}
	return n
}

// ShardServed reports shard i's lifetime request count.
func (c *Cluster) ShardServed(i int) int64 { return c.shards[i].served }

// MergedLatency folds the per-shard latency histograms into one
// cluster-wide distribution (sim.Histogram.Merge keeps count/sum/min/
// max exact). Call it once after the run, on one goroutine.
func (c *Cluster) MergedLatency() *sim.Histogram {
	h := sim.NewHistogram(0)
	for _, sh := range c.shards {
		h.Merge(sh.hist)
	}
	return h
}

// Stats summarizes the run.
type Stats struct {
	Requests       int64
	StaleRetries   int64
	Migrations     int64
	MovedKeys      int64
	MapVersion     uint64
	Overrides      int
	FirstImbalance float64 // max/mean shard load, first detection window
	LastImbalance  float64 // max/mean shard load, latest window

	// Fault-path and elasticity counters, all zero on the fault-free
	// fast path. DeepStale counts map refreshes that crossed two or
	// more versions (the elastic-resharding staleness the single-flip
	// model never produced); TimeoutRetries counts attempts that found
	// no live replica; Failed counts requests that exhausted every
	// attempt; Aborted counts migrations abandoned to a crashed chain;
	// RangeMigrations/RangeKeys count elastic handoff chunks and the
	// keys they moved; Resizes counts completed reshapes; LiveShards is
	// the current non-retired shard count.
	DeepStale       int64
	TimeoutRetries  int64
	Failed          int64
	Aborted         int64
	RangeMigrations int64
	RangeKeys       int64
	Resizes         int64
	LiveShards      int

	// Chain availability counters, summed over every shard chain.
	Failovers  int64
	MissedAcks int64
	Rejoins    int64
	ReplayedTx int64
	CaughtUpTx int64
}

// Stats reads the cluster counters.
func (c *Cluster) Stats() Stats {
	var req int64
	live := 0
	st := Stats{
		StaleRetries:    c.staleRetries,
		Migrations:      c.migrations,
		MovedKeys:       c.movedKeys,
		MapVersion:      c.cur.Version,
		Overrides:       c.cur.Overrides(),
		FirstImbalance:  c.firstImbalance,
		LastImbalance:   c.lastImbalance,
		DeepStale:       c.deepStale,
		TimeoutRetries:  c.timeoutRetries,
		Failed:          c.failed,
		Aborted:         c.aborted,
		RangeMigrations: c.rangeMigrations,
		RangeKeys:       c.rangeKeys,
		Resizes:         c.resizes,
	}
	for _, sh := range c.shards {
		req += sh.served
		if !sh.retired {
			live++
		}
		fs := sh.chain.FailoverStats()
		st.Failovers += fs.Failovers
		st.MissedAcks += fs.MissedAcks
		st.Rejoins += fs.Rejoins
		st.ReplayedTx += fs.ReplayedTx
		st.CaughtUpTx += fs.CaughtUpTx
	}
	st.Requests = req
	st.LiveShards = live
	return st
}

// RegisterMetrics wires the cluster into an obs.Registry: gauges for
// the migration counters, the load-imbalance ratio, the map version,
// and per-shard served counts. The registry's virtual-time ticker is
// advanced at every request completion, so the exported samples show
// the imbalance dropping when a migration lands.
func (c *Cluster) RegisterMetrics(reg *obs.Registry, prefix string) {
	c.reg = reg
	reg.Gauge(prefix+".stale_retries", func() float64 { return float64(c.staleRetries) })
	reg.Gauge(prefix+".migrations", func() float64 { return float64(c.migrations) })
	reg.Gauge(prefix+".moved_keys", func() float64 { return float64(c.movedKeys) })
	reg.Gauge(prefix+".imbalance", func() float64 { return c.lastImbalance })
	reg.Gauge(prefix+".map_version", func() float64 { return float64(c.cur.Version) })
	reg.Gauge(prefix+".overrides", func() float64 { return float64(c.cur.Overrides()) })
	for i := range c.shards {
		sh := c.shards[i]
		reg.Gauge(fmt.Sprintf("%s.shard%d.served", prefix, i),
			func() float64 { return float64(sh.served) })
	}
}

// Preload installs one pair at its owning shard, CC-free (the bulk-load
// path before the workload opens). It returns the install's completion
// time; chaining it through a load loop serializes the preload, and the
// workload should open at the returned time.
func (c *Cluster) Preload(now sim.Time, key, val []byte) sim.Time {
	h := kvs.Hash64(key)
	sh := c.shards[c.cur.Shard(h)]
	ref := sh.ensureSlot(h, len(val))
	c.migWr[0] = chainrep.Tuple{Offset: ref.off, Data: val}
	done, err := sh.chain.ApplyCommitted(now, c.migWr[:1])
	if err != nil {
		panic(fmt.Sprintf("scaleout: preload: %v", err))
	}
	return done
}

// wireDur returns the serialization delay of n bytes on the cluster's
// links.
func (c *Cluster) wireDur(n int) sim.Duration {
	if c.cfg.WireBPS <= 0 {
		return 0
	}
	return sim.Duration(float64(n) / c.cfg.WireBPS * float64(sim.Second))
}

// mapBytes estimates the serialized shard map (ring geometry is client
// config; the transfer is versions plus overrides).
func (c *Cluster) mapBytes() int { return 64 + 12*c.cur.Overrides() }

// rejectCost charges a stale-map miss: the wasted round trip to the
// wrong shard (which answers with a small WRONG_SHARD status) plus the
// refresh fetch of the current map from the configuration service.
func (c *Cluster) rejectCost() sim.Duration {
	reject := 2*c.cfg.ClientOneWay + c.wireDur(32)
	refresh := 2*c.cfg.ClientOneWay + c.wireDur(c.mapBytes())
	return reject + refresh
}

// Frontend is one client-side router holding a possibly stale shard
// map. Frontends refresh lazily: only when a shard rejects a request
// routed by an outdated map version.
type Frontend struct {
	c *Cluster
	m *ShardMap
}

// NewFrontend returns a frontend starting from the current map.
func (c *Cluster) NewFrontend() *Frontend {
	return &Frontend{c: c, m: c.cur}
}

// MapVersion reports the frontend's current map version.
func (f *Frontend) MapVersion() uint64 { return f.m.Version }

// Get reads key. The returned value aliases the owning shard's scratch
// and is valid until the next request that shard serves. Get panics on
// a retry-exhausted request — impossible without fault injection; use
// TryGet when faults are armed.
func (f *Frontend) Get(now sim.Time, key []byte) ([]byte, sim.Time) {
	v, done, err := f.do(now, key, nil)
	if err != nil {
		panic(fmt.Sprintf("scaleout: get: %v", err))
	}
	return v, done
}

// Put writes key=val. Like Get it panics on a retry-exhausted request;
// use TryPut when faults are armed.
func (f *Frontend) Put(now sim.Time, key, val []byte) sim.Time {
	_, done, err := f.do(now, key, val)
	if err != nil {
		panic(fmt.Sprintf("scaleout: put: %v", err))
	}
	return done
}

// TryGet is the fault-aware read: on ErrRetriesExhausted the returned
// time is when the frontend gave up (attempt costs and backoff
// included) and the read executed zero times.
func (f *Frontend) TryGet(now sim.Time, key []byte) ([]byte, sim.Time, error) {
	return f.do(now, key, nil)
}

// TryPut is the fault-aware write: on ErrRetriesExhausted the write
// may still surface later — a crashed replica can hold its torn log
// entry, and rejoin convergence applies it chain-wide — so callers
// must treat a failed put as "at most once, never torn" (DESIGN.md
// §11), exactly the contract of a timed-out RPC.
func (f *Frontend) TryPut(now sim.Time, key, val []byte) (sim.Time, error) {
	_, done, err := f.do(now, key, val)
	return done, err
}

// do routes one request with a bounded retry budget. A stale map sends
// it to a shard that no longer owns the key; the shard's ownership
// check rejects it, the frontend pays the reject + map-refresh cost,
// and retries with the fresh map — the request is never executed
// twice. With a current map and a live chain the loop serves on the
// first pass. An attempt that reaches a chain with no live replica
// costs the failed round trip plus an exponential backoff, triggers a
// rejoin scan, and retries; both kinds of retry consume attempts, and
// exhaustion returns a counted ErrRetriesExhausted instead of wedging.
func (f *Frontend) do(now sim.Time, key, val []byte) ([]byte, sim.Time, error) {
	h := kvs.Hash64(key)
	c := f.c
	at := now
	maxAttempts := c.cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = defaultMaxAttempts
	}
	for attempt := 1; ; attempt++ {
		sid := f.m.Shard(h)
		if sid != c.cur.Shard(h) {
			at += c.rejectCost()
			c.staleRetries++
			// Under elastic resharding every flipped chunk publishes a
			// version, so a quiet frontend can fall arbitrarily far
			// behind; the refresh hands it the authoritative map in one
			// fetch, but the depth is worth counting.
			if c.cur.Version > f.m.Version+1 {
				c.deepStale++
			}
			f.m = c.cur
			if attempt >= maxAttempts {
				c.failed++
				c.afterRequest(now)
				return nil, at, ErrRetriesExhausted
			}
			continue
		}
		sh := c.shards[sid]
		var ret []byte
		var done sim.Time
		var err error
		if val == nil {
			ref, ok := sh.index[h]
			if !ok {
				panic("scaleout: GET of a key that was never loaded")
			}
			sh.rd[0] = chainrep.ReadOp{Offset: ref.off, Len: int(ref.n)}
			var vals [][]byte
			vals, done, err = sh.chain.RambdaTxInto(at, chainrep.Tx{Reads: sh.rd[:1]}, &sh.sc)
			if err == nil {
				ret = vals[0]
			}
		} else {
			ref := sh.ensureSlot(h, len(val))
			sh.wr[0] = chainrep.Tuple{Offset: ref.off, Data: val}
			_, done, err = sh.chain.RambdaTxInto(at, chainrep.Tx{Writes: sh.wr[:1]}, &sh.sc)
			// A write to a key mid-migration commits at the source (the
			// owner until the flip) and is additionally logged for
			// catch-up replay at the destination.
			if err == nil && c.mig != nil && sid == c.mig.src && c.mig.migrating[h] {
				c.mig.log = append(c.mig.log, migEntry{key: h, val: append([]byte(nil), val...)})
			}
		}
		if err != nil {
			// Every replica of the shard is down. Charge the failed
			// round trip plus the backoff, give window-expired replicas
			// a chance to rejoin, and retry.
			c.timeoutRetries++
			shift := attempt - 1
			if shift > retryShiftCap {
				shift = retryShiftCap
			}
			at += sim.Time(2*c.cfg.ClientOneWay) + sim.Time(c.cfg.RetryBackoff<<uint(shift))
			c.maybeRejoin(at)
			if attempt >= maxAttempts {
				c.failed++
				c.afterRequest(now)
				return nil, at, ErrRetriesExhausted
			}
			continue
		}
		sh.hot.Observe(h)
		sh.served++
		sh.window++
		sh.hist.Record(done - now)
		c.afterRequest(now)
		return ret, done, nil
	}
}

// afterRequest is the cluster's per-completion tick: rejoin replicas
// whose fault windows ended, advance any in-flight migration by one
// chunk, pump the elastic resize, run the hot-key detection check at
// window boundaries, and advance the metrics ticker. Driving the state
// machine from the request loop (rather than a background goroutine)
// interleaves migration traffic with foreground requests while keeping
// the whole cluster single-threaded and deterministic. Every branch is
// gated so the fault-free, fixed-shard path is byte-identical to the
// pre-fault model.
func (c *Cluster) afterRequest(now sim.Time) {
	if c.inj != nil {
		c.maybeRejoin(now)
	}
	if c.mig != nil {
		c.stepMigration(now)
	}
	if c.resize != nil && c.mig == nil && now >= c.resize.retryAt {
		c.pumpResize(now)
	}
	// Hot-key detection pauses while a resize is redrawing the ring:
	// the window loads it would act on are already being reshaped.
	if c.cfg.RebalanceEvery > 0 && c.resize == nil {
		c.sinceCheck++
		if c.sinceCheck >= c.cfg.RebalanceEvery {
			c.rebalanceCheck(now)
			c.sinceCheck = 0
		}
	}
	if c.reg != nil {
		c.reg.Tick(now)
	}
}

// stepMigration advances the in-flight move: snapshot-copies up to
// CopyChunk keys from the source head into the destination chain, and —
// once the copy completes — replays the catch-up log and flips the map.
// A logged write may both land in a later snapshot read and be replayed
// (same offset, same bytes): the replay is idempotent, so the
// destination always ends at the source's latest value.
//
// Fault semantics: a source-side partial failover is invisible here —
// the snapshot read fails over to the next live replica, and the
// catch-up log carries any writes that raced it, so the move resumes
// rather than restarts. Only a chain with no live replica at all
// (source unreadable, or destination unable to accept installs) aborts
// the move; nothing flipped, so the source keeps serving and the abort
// is retried later (next detection window for hot-key moves, the
// resize pump for elastic chunks). It returns the time the last
// install completed (now when nothing advanced).
func (c *Cluster) stepMigration(now sim.Time) sim.Time {
	m := c.mig
	src, dst := c.shards[m.src], c.shards[m.dst]
	at := now
	chunk := c.cfg.CopyChunk
	if chunk < 1 {
		chunk = 1
	}
	for i := 0; i < chunk && m.cursor < len(m.keys); i++ {
		h := m.keys[m.cursor]
		ref := src.index[h]
		c.migRd[0] = chainrep.ReadOp{Offset: ref.off, Len: int(ref.n)}
		vals, _, err := src.chain.RambdaTxInto(at, chainrep.Tx{Reads: c.migRd[:1]}, &c.migSc)
		if err != nil {
			return c.abortMigration(now)
		}
		dref := dst.ensureSlot(h, int(ref.n))
		c.migWr[0] = chainrep.Tuple{Offset: dref.off, Data: vals[0]}
		at, err = dst.chain.ApplyCommitted(at, c.migWr[:1])
		if err != nil {
			return c.abortMigration(now)
		}
		m.cursor++
	}
	if m.cursor < len(m.keys) {
		return at
	}
	// Catch-up: writes that raced the copy, in arrival order.
	for _, e := range m.log {
		dref := dst.index[e.key]
		c.migWr[0] = chainrep.Tuple{Offset: dref.off, Data: e.val}
		var err error
		at, err = dst.chain.ApplyCommitted(at, c.migWr[:1])
		if err != nil {
			return c.abortMigration(now)
		}
	}
	// Atomic flip: publish the next map version; the source drops its
	// index entries so any request still routed there by a stale map
	// fails the ownership check rather than reading dead data.
	c.cur = c.cur.withOverrides(m.keys, m.dst)
	for _, h := range m.keys {
		delete(src.index, h)
	}
	if m.elastic {
		c.rangeMigrations++
		c.rangeKeys += int64(len(m.keys))
	} else {
		c.migrations++
		c.movedKeys += int64(len(m.keys))
	}
	c.mig = nil
	return at
}

// abortMigration abandons the in-flight move after its source or
// destination lost every replica. Nothing has flipped: the source (if
// alive) still owns and serves every key, the destination's partial
// copies are invisible and will be overwritten by the retry, and the
// catch-up log is discarded with the move (its writes committed at the
// source, which remains the owner). Elastic chunks rewind the resize
// cursor and back off; hot-key moves wait for the next detection
// window.
func (c *Cluster) abortMigration(now sim.Time) sim.Time {
	m := c.mig
	c.aborted++
	c.mig = nil
	// Drop the destination index entries the partial copy installed:
	// nothing flipped, so the destination owns none of these keys, and a
	// stale entry would make a later elastic drain treat the key as
	// resident there and hand off dead bytes. The slots themselves leak
	// (a retry allocates fresh ones); that waste is bounded by the abort
	// count.
	dst := c.shards[m.dst]
	for _, h := range m.keys {
		delete(dst.index, h)
	}
	if m.elastic && c.resize != nil {
		c.resize.cursor = m.resizeStart
		backoff := c.cfg.RetryBackoff
		if backoff <= 0 {
			backoff = 10 * sim.Microsecond
		}
		c.resize.retryAt = now + sim.Time(backoff)
	}
	return now
}

// rebalanceCheck closes a detection window: it computes the window's
// load imbalance (max/mean requests per shard), starts a migration when
// the threshold is crossed, and resets the window counters and hot-key
// sketches. All selections tie-break on the lowest shard id.
func (c *Cluster) rebalanceCheck(now sim.Time) {
	_ = now
	var total, maxv int64
	maxi, live := -1, 0
	for i, sh := range c.shards {
		if sh.retired {
			continue
		}
		live++
		total += sh.window
		if maxi < 0 || sh.window > maxv {
			maxv = sh.window
			maxi = i
		}
	}
	imb := 1.0
	if total > 0 {
		imb = float64(maxv) * float64(live) / float64(total)
	}
	if c.checks == 0 {
		c.firstImbalance = imb
	}
	c.checks++
	c.lastImbalance = imb

	if c.mig == nil && imb >= c.cfg.ImbalanceThreshold &&
		c.migrations < int64(c.cfg.MaxMigrations) && live > 1 {
		c.startMigration(maxi)
	}

	for _, sh := range c.shards {
		sh.window = 0
		sh.hot.Reset()
	}
}

// startMigration plans a move from the window's most-loaded shard to
// its least-loaded one: the source's hottest still-owned keys, capped
// at HotKeysPerMove. Each key is taken only if shipping its window
// traffic leaves the destination strictly below the source's pre-move
// load — a key hot enough to violate that would merely relocate the
// hotspot and oscillate back next window.
func (c *Cluster) startMigration(src int) {
	dst := -1
	for i, sh := range c.shards {
		if sh.retired {
			continue
		}
		if dst < 0 || sh.window < c.shards[dst].window {
			dst = i
		}
	}
	if dst < 0 || dst == src {
		return
	}
	sh := c.shards[src]
	c.topBuf = sh.hot.Top(c.topBuf[:0])
	max := c.cfg.HotKeysPerMove
	if max < 1 {
		max = 1
	}
	keys := make([]uint64, 0, max)
	srcLoad, dstLoad := sh.window, c.shards[dst].window
	for _, e := range c.topBuf {
		if len(keys) == max {
			break
		}
		h := e.Key
		if c.cur.Shard(h) != src {
			continue // sketch residue from before an earlier flip
		}
		if _, ok := sh.index[h]; !ok {
			continue
		}
		if dstLoad+e.Count >= srcLoad {
			continue
		}
		keys = append(keys, h)
		srcLoad -= e.Count
		dstLoad += e.Count
	}
	if len(keys) == 0 {
		return
	}
	m := &migration{src: src, dst: dst, keys: keys,
		migrating: make(map[uint64]bool, len(keys))}
	for _, h := range keys {
		m.migrating[h] = true
	}
	c.mig = m
}
