package scaleout

import (
	"errors"
	"fmt"
	"sort"

	"rambda/internal/sim"
)

// Elastic resharding: AddShard and RemoveShard reshape the cluster by
// handing whole key ranges between chains as a sequence of bounded
// range migrations — the same three-phase machinery as hot-key moves
// (mark + write log, chunked snapshot copy, catch-up replay + atomic
// map flip), so resharding inherits the hot path's fault story: a
// chunk whose source or destination loses every replica aborts, backs
// off, and retries; a partial failover is ridden out by the chain's
// own splice/rejoin. Each flipped chunk publishes a map version and
// reroutes its keys via overrides on the old ring; only after every
// key has reached its target home does finishResize install the
// target ring and drop the overrides it makes redundant — frontends
// never observe an intermediate ring.

var (
	// ErrResizeActive rejects a reshape while another is in flight.
	ErrResizeActive = errors.New("scaleout: resize already in flight")
	// ErrLastShard rejects removing the only live shard.
	ErrLastShard = errors.New("scaleout: cannot remove the last live shard")
	// ErrShardRetired rejects removing an already-retired shard.
	ErrShardRetired = errors.New("scaleout: shard already retired")
)

// rangeMove is one key's pending hop of an elastic resize.
type rangeMove struct {
	h        uint64
	src, dst int
}

// resize is an in-flight cluster reshape: the ring the cluster is
// converging to, the shard being drained (-1 for pure adds), and the
// deterministic work list of key moves with its consume cursor. An
// aborted chunk rewinds the cursor to its start and sets retryAt so
// the pump backs off instead of hammering a dead chain.
type resize struct {
	target   *Ring
	removing int
	pending  []rangeMove
	cursor   int
	retryAt  sim.Time
}

// AddShard grows the cluster by one shard chain and starts the
// full-range handoff that moves the new shard's arcs onto it. The new
// shard inherits the cluster's fault detector when one is armed. It
// returns the new shard's id.
func (c *Cluster) AddShard(now sim.Time) (int, error) {
	if c.resize != nil {
		return -1, ErrResizeActive
	}
	id := len(c.shards)
	sh := newShard(id, c.cfg)
	if c.inj != nil {
		sh.chain.EnableFaultDetection(c.inj, c.cfg.AckTimeout)
	}
	c.shards = append(c.shards, sh)
	c.startResize(now, -1)
	return id, nil
}

// RemoveShard drains shard id — every resident key moves to its home
// on the shrunk ring — and retires it once empty. The drain is the
// same chunked handoff as AddShard's, exercised while the shard keeps
// serving the keys not yet moved.
func (c *Cluster) RemoveShard(now sim.Time, id int) error {
	if c.resize != nil {
		return ErrResizeActive
	}
	if id < 0 || id >= len(c.shards) {
		return fmt.Errorf("scaleout: no shard %d", id)
	}
	if c.shards[id].retired {
		return ErrShardRetired
	}
	if c.LiveShards() <= 1 {
		return ErrLastShard
	}
	c.startResize(now, id)
	return nil
}

// startResize computes the target ring over the post-reshape live
// set and the deterministic pending-move list. Any in-flight hot-key
// move is aborted first (nothing has flipped, so this is free): its
// keys re-route through the resize plan if they must move at all, and
// letting it flip mid-plan could strand keys on a draining shard.
func (c *Cluster) startResize(now sim.Time, removing int) {
	if c.mig != nil {
		c.abortMigration(now)
	}
	ids := make([]int, 0, len(c.shards))
	for i, sh := range c.shards {
		if sh.retired || i == removing {
			continue
		}
		ids = append(ids, i)
	}
	c.resize = &resize{
		target:   NewRingIDs(ids, c.cfg.VNodes, c.cfg.Seed),
		removing: removing,
	}
	c.resize.pending = c.planPending()
}

// resizeTarget is a key's home after the reshape: its hot-key
// override if that still points at a surviving shard (migrated heat
// stays where the balancer put it), the target ring otherwise.
func (c *Cluster) resizeTarget(h uint64) int {
	r := c.resize
	if d, ok := c.cur.overrides[h]; ok && d != r.removing {
		return d
	}
	return r.target.Lookup(h)
}

// planPending walks every live shard's resident keys and lists the
// ones whose post-reshape home differs, sorted by (src, dst, hash) so
// the plan is independent of map iteration order and chunks come out
// as same-(src,dst) runs.
func (c *Cluster) planPending() []rangeMove {
	var pending []rangeMove
	for sid, sh := range c.shards {
		if sh.retired {
			continue
		}
		for h := range sh.index {
			if d := c.resizeTarget(h); d != sid {
				pending = append(pending, rangeMove{h: h, src: sid, dst: d})
			}
		}
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].src != pending[j].src {
			return pending[i].src < pending[j].src
		}
		if pending[i].dst != pending[j].dst {
			return pending[i].dst < pending[j].dst
		}
		return pending[i].h < pending[j].h
	})
	return pending
}

// pumpResize installs the next range chunk as the in-flight migration,
// or finishes the resize when the work list is drained. Called from
// the per-completion tick whenever no migration is running and the
// abort backoff (if any) has elapsed.
func (c *Cluster) pumpResize(now sim.Time) {
	r := c.resize
	if r.cursor >= len(r.pending) {
		c.finishResize()
		return
	}
	chunkCap := c.cfg.RangeChunkKeys
	if chunkCap < 1 {
		chunkCap = 256
	}
	first := r.pending[r.cursor]
	keys := make([]uint64, 0, chunkCap)
	end := r.cursor
	for end < len(r.pending) && len(keys) < chunkCap {
		mv := r.pending[end]
		if mv.src != first.src || mv.dst != first.dst {
			break
		}
		keys = append(keys, mv.h)
		end++
	}
	m := &migration{
		src: first.src, dst: first.dst, keys: keys,
		migrating:   make(map[uint64]bool, len(keys)),
		elastic:     true,
		resizeStart: r.cursor,
	}
	for _, h := range keys {
		m.migrating[h] = true
	}
	r.cursor = end
	c.mig = m
}

// finishResize installs the target ring as the next map version,
// keeping only the overrides that still redirect (drained-shard
// overrides are gone by construction; overrides the new ring already
// satisfies are dropped). A draining shard must be empty here — every
// resident key was on the pending list and every pending move flipped
// — so it retires.
func (c *Cluster) finishResize() {
	r := c.resize
	next := &ShardMap{Version: c.cur.Version + 1, ring: r.target}
	for h, d := range c.cur.overrides {
		if d == r.removing || d == r.target.Lookup(h) {
			continue
		}
		if next.overrides == nil {
			next.overrides = make(map[uint64]int)
		}
		next.overrides[h] = d
	}
	c.cur = next
	if r.removing >= 0 {
		sh := c.shards[r.removing]
		if len(sh.index) != 0 {
			panic(fmt.Sprintf("scaleout: retiring shard %d with %d keys still resident",
				r.removing, len(sh.index)))
		}
		sh.retired = true
	}
	c.resizes++
	c.resize = nil
}

// DrainResize pumps the in-flight resize (and any migration chunk) to
// completion outside the request loop — the end-of-run path, and the
// synchronous form for tests. It advances virtual time past abort
// backoffs and rejoins recovered replicas between pumps, so it
// converges even when chunks keep aborting against a crash window: the
// backoff walks time up to the window's end. Returns the completion
// time of the last install.
func (c *Cluster) DrainResize(now sim.Time) sim.Time {
	for iter := 0; c.resize != nil || c.mig != nil; iter++ {
		if iter > 1<<20 {
			panic("scaleout: DrainResize did not converge")
		}
		if c.inj != nil {
			c.maybeRejoin(now)
		}
		if c.mig != nil {
			if at := c.stepMigration(now); at > now {
				now = at
			}
			continue
		}
		if c.resize.retryAt > now {
			now = c.resize.retryAt
			continue
		}
		c.pumpResize(now)
	}
	return now
}
