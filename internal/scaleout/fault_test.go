package scaleout

import (
	"encoding/binary"
	"fmt"
	"testing"

	"rambda/internal/chainrep"
	"rambda/internal/fault"
	"rambda/internal/kvs"
	"rambda/internal/sim"
)

// These tests drive the cluster's availability layer: shard chains
// crash and rejoin mid-traffic while hot-key migrations are in flight.
// Correctness is model-checked with possible-value sets: a successful
// put pins its key to the written value; a failed put leaves the key
// ambiguous between every value it might hold ("at most once, never
// torn" — the torn-entry convergence of DESIGN.md §11 may still apply
// it); a successful read must observe a member of the set and collapses
// it, because once a value has been served the chain's history is fixed
// for that key. A lost write, a duplicated apply, or a read of
// half-migrated bytes all fail the membership check immediately.

// migSpan is one hot-key migration observed by the recon pass: who
// moved keys where, and the virtual-time interval the move spanned.
type migSpan struct {
	src, dst   int
	start, end sim.Time
}

// faultSkewResult is everything a scenario needs to assert on.
type faultSkewResult struct {
	c        *Cluster
	spans    []migSpan
	possible [][]uint64
	end      sim.Time
}

// runFaultedSkew replays the standard 70%-hot skewed workload against a
// cluster armed with the given crash windows, model-checking every
// read. The request sequence (keys, op mix, values) is a pure function
// of the RNG, independent of request outcomes, so two runs — and in
// particular a fault run and its fault-free recon — are byte-identical
// up to the first open window.
func runFaultedSkew(t *testing.T, windows []fault.Window, reqs int) faultSkewResult {
	t.Helper()
	cfg := testClusterConfig()
	c := New(cfg)
	const keys = 512
	now := preloadN(c, keys)
	c.EnableFaults(fault.New(fault.Plan{Nodes: windows}))

	possible := make([][]uint64, keys)
	for i := range possible {
		possible[i] = []uint64{uint64(i)}
	}

	fe := c.NewFrontend()
	rng := sim.NewRNG(99)
	var key []byte
	val := make([]byte, 46)
	seq := uint64(1 << 32)
	var spans []migSpan
	var cur *migSpan
	for i := 0; i < reqs; i++ {
		k := rng.Intn(keys)
		if rng.Intn(10) < 7 {
			k = rng.Intn(4)
		}
		key = appendBenchKey(key[:0], k)
		if rng.Intn(2) == 0 {
			seq++
			binary.LittleEndian.PutUint64(val, seq)
			done, err := fe.TryPut(now, key, val)
			if err != nil {
				// The write may or may not surface: a crashed replica can
				// hold its torn log entry and rejoin convergence applies
				// it chain-wide.
				possible[k] = append(possible[k], seq)
			} else {
				possible[k] = possible[k][:0]
				possible[k] = append(possible[k], seq)
			}
			now = done
		} else {
			got, done, err := fe.TryGet(now, key)
			if err == nil {
				v := binary.LittleEndian.Uint64(got)
				found := false
				for _, want := range possible[k] {
					if v == want {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("request %d: key %d read %#x, not in possible set %#x", i, k, v, possible[k])
				}
				possible[k] = possible[k][:0]
				possible[k] = append(possible[k], v)
			}
			now = done
		}
		if c.mig != nil && cur == nil {
			cur = &migSpan{src: c.mig.src, dst: c.mig.dst, start: now}
		} else if c.mig == nil && cur != nil {
			cur.end = now
			spans = append(spans, *cur)
			cur = nil
		}
	}
	return faultSkewResult{c: c, spans: spans, possible: possible, end: now}
}

// verifyConverged is the end-of-run acceptance check: every replica
// rejoined and caught up, every key readable with a value from its
// possible set, and every live shard's replicas byte-equal.
func verifyConverged(t *testing.T, r faultSkewResult) {
	t.Helper()
	c := r.c
	now := c.DrainResize(r.end)
	now = c.RejoinAll(now)
	fe := c.NewFrontend()
	var key []byte
	for k := range r.possible {
		key = appendBenchKey(key[:0], k)
		got, done := fe.Get(now, key)
		v := binary.LittleEndian.Uint64(got)
		found := false
		for _, want := range r.possible[k] {
			if v == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("final sweep: key %d reads %#x, not in possible set %#x", k, v, r.possible[k])
		}
		now = done
	}
	n := c.cfg.SlotsPerShard * c.cfg.SlotBytes
	for i := 0; i < c.Shards(); i++ {
		if c.Retired(i) {
			continue
		}
		ch := c.Chain(i)
		for j := 1; j < len(ch.Nodes); j++ {
			if !chainrep.StateEqual(ch.Nodes[0].Store, ch.Nodes[j].Store, n) {
				t.Fatalf("shard %d: replica %d diverged after rejoin", i, j)
			}
		}
	}
}

// reconFirstMigration runs the workload fault-free (armed against an
// empty plan, which moves no timestamp) and returns the first
// migration's span. Fault scenarios place their windows inside it, so
// the crash is guaranteed to race the intended migration phase: the
// fault run is byte-identical to the recon until the window opens.
func reconFirstMigration(t *testing.T, reqs int) migSpan {
	t.Helper()
	r := runFaultedSkew(t, nil, reqs)
	if len(r.spans) == 0 {
		t.Fatal("recon pass saw no migration; cannot place fault windows")
	}
	if st := r.c.Stats(); st.Failed != 0 || st.Aborted != 0 || st.Failovers != 0 {
		t.Fatalf("recon pass took fault paths: %+v", st)
	}
	return r.spans[0]
}

// TestMigrationSurvivesDestinationCrash crashes one destination replica
// from the instant the first migration starts until mid-copy: snapshot
// installs splice the dead replica out (leaving torn log entries), the
// flip races the shortened chain, and the rejoin replays and catches
// the replica up. The move must complete — not abort — and the model
// must hold throughout.
func TestMigrationSurvivesDestinationCrash(t *testing.T) {
	const reqs = 4000
	m0 := reconFirstMigration(t, reqs)
	half := m0.start + (m0.end-m0.start)/2
	if half <= m0.start {
		half = m0.start + sim.Time(sim.Microsecond)
	}
	r := runFaultedSkew(t, []fault.Window{
		{Node: fmt.Sprintf("s%dr1", m0.dst), Kind: fault.Crash, From: m0.start, To: half},
	}, reqs)
	st := r.c.Stats()
	if st.Migrations == 0 {
		t.Fatalf("no migration completed under destination crash: %+v", st)
	}
	if st.Aborted != 0 {
		t.Fatalf("single-replica destination crash aborted the move: %+v", st)
	}
	if st.Failovers < 1 || st.Rejoins < 1 {
		t.Fatalf("crash was not detected or never healed: %+v", st)
	}
	if st.ReplayedTx < 1 {
		t.Fatalf("crash rejoin replayed no redo-log entries: %+v", st)
	}
	verifyConverged(t, r)
}

// TestMigrationSurvivesSourceCrash crashes the source head for the
// whole first migration: snapshot reads fail over to the surviving
// replica and the move resumes — catch-up log intact — instead of
// restarting or aborting.
func TestMigrationSurvivesSourceCrash(t *testing.T) {
	const reqs = 4000
	m0 := reconFirstMigration(t, reqs)
	r := runFaultedSkew(t, []fault.Window{
		{Node: fmt.Sprintf("s%dr0", m0.src), Kind: fault.Crash,
			From: m0.start, To: m0.end + sim.Time(50*sim.Microsecond)},
	}, reqs)
	st := r.c.Stats()
	if st.Migrations == 0 {
		t.Fatalf("no migration completed under source head crash: %+v", st)
	}
	if st.Aborted != 0 {
		t.Fatalf("partial source failover aborted the move: %+v", st)
	}
	if st.Failovers < 1 || st.Rejoins < 1 {
		t.Fatalf("head crash was not detected or never healed: %+v", st)
	}
	verifyConverged(t, r)
}

// TestMigrationAbortsWhenDestinationDies crashes both destination
// replicas across the first migration: the first install finds no live
// replica, the move aborts — nothing flipped, the source keeps serving
// — and a later detection window retries it after the chain heals.
func TestMigrationAbortsWhenDestinationDies(t *testing.T) {
	const reqs = 4000
	m0 := reconFirstMigration(t, reqs)
	to := m0.start + sim.Time(120*sim.Microsecond)
	r := runFaultedSkew(t, []fault.Window{
		{Node: fmt.Sprintf("s%dr0", m0.dst), Kind: fault.Crash, From: m0.start, To: to},
		{Node: fmt.Sprintf("s%dr1", m0.dst), Kind: fault.Crash, From: m0.start, To: to},
	}, reqs)
	st := r.c.Stats()
	if st.Aborted < 1 {
		t.Fatalf("fully-dead destination did not abort the move: %+v", st)
	}
	if st.Failovers < 2 || st.Rejoins < 2 {
		t.Fatalf("double crash was not detected or never healed: %+v", st)
	}
	verifyConverged(t, r)
}

// TestFaultedClusterDeterministic pins the fault path's determinism:
// the destination-crash scenario, run twice, produces identical stats
// and an identical latency distribution.
func TestFaultedClusterDeterministic(t *testing.T) {
	const reqs = 4000
	m0 := reconFirstMigration(t, reqs)
	win := []fault.Window{
		{Node: fmt.Sprintf("s%dr1", m0.dst), Kind: fault.Crash,
			From: m0.start, To: m0.end + sim.Time(30*sim.Microsecond)},
	}
	run := func() (Stats, string) {
		r := runFaultedSkew(t, win, reqs)
		return r.c.Stats(), r.c.MergedLatency().String()
	}
	st1, h1 := run()
	st2, h2 := run()
	if fmt.Sprintf("%+v", st1) != fmt.Sprintf("%+v", st2) {
		t.Fatalf("same windows, different stats:\n%+v\n%+v", st1, st2)
	}
	if h1 != h2 {
		t.Fatalf("same windows, different latency distribution:\n%s\n%s", h1, h2)
	}
}

// TestFrontendRetriesExhausted pins the degradation contract: a request
// to a shard whose every replica is crashed burns its attempts —
// exponential backoff, counted timeouts — and fails with
// ErrRetriesExhausted instead of wedging; other shards keep serving,
// and once the window passes the next completion's rejoin scan heals
// the chain and the key is readable again.
func TestFrontendRetriesExhausted(t *testing.T) {
	cfg := testClusterConfig()
	cfg.Shards = 2
	cfg.RebalanceEvery = 0
	c := New(cfg)
	const keys = 192 // sequential bench keys cluster: shard 0's first key is i=100
	t0 := preloadN(c, keys)

	// One key on each shard.
	k0, k1 := -1, -1
	var key []byte
	for i := 0; i < keys && (k0 < 0 || k1 < 0); i++ {
		key = appendBenchKey(key[:0], i)
		if s := c.Map().Shard(kvs.Hash64(key)); s == 0 && k0 < 0 {
			k0 = i
		} else if s == 1 && k1 < 0 {
			k1 = i
		}
	}
	if k0 < 0 || k1 < 0 {
		t.Fatal("preload left a shard empty")
	}

	winEnd := t0 + sim.Time(10*sim.Millisecond)
	c.EnableFaults(fault.New(fault.Plan{Nodes: []fault.Window{
		{Node: "s0r0", Kind: fault.Crash, From: t0, To: winEnd},
		{Node: "s0r1", Kind: fault.Crash, From: t0, To: winEnd},
	}}))

	fe := c.NewFrontend()
	issue := t0 + sim.Time(sim.Microsecond)
	_, gaveUp, err := fe.TryGet(issue, appendBenchKey(nil, k0))
	if err != ErrRetriesExhausted {
		t.Fatalf("get against dead shard: err %v, want ErrRetriesExhausted", err)
	}
	if gaveUp <= issue {
		t.Fatalf("gave up at %v, not after issue %v: retries charged no time", gaveUp, issue)
	}
	st := c.Stats()
	if st.Failed != 1 || st.TimeoutRetries != int64(cfg.MaxAttempts) {
		t.Fatalf("failure accounting %+v, want Failed=1 TimeoutRetries=%d", st, cfg.MaxAttempts)
	}
	if st.Failovers != 2 {
		t.Fatalf("both replicas should have been spliced exactly once: %+v", st)
	}

	// The other shard is unaffected.
	if _, _, err := fe.TryGet(gaveUp, appendBenchKey(nil, k1)); err != nil {
		t.Fatalf("healthy shard failed during the window: %v", err)
	}

	// Past the window, a completion on the healthy shard triggers the
	// rejoin scan; the dead shard heals and serves again.
	after := winEnd + sim.Time(sim.Microsecond)
	if _, _, err := fe.TryGet(after, appendBenchKey(nil, k1)); err != nil {
		t.Fatalf("healthy shard failed after the window: %v", err)
	}
	got, _, err := fe.TryGet(after+sim.Time(sim.Millisecond), appendBenchKey(nil, k0))
	if err != nil {
		t.Fatalf("shard never healed: %v", err)
	}
	if v := binary.LittleEndian.Uint64(got); v != uint64(k0) {
		t.Fatalf("healed shard reads %#x, want %#x", v, uint64(k0))
	}
	if st := c.Stats(); st.Rejoins != 2 {
		t.Fatalf("expected both replicas to rejoin once: %+v", st)
	}
}
