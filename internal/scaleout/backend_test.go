package scaleout

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// TestClusterLSMBackendRoundTrip pins the backend selector: an
// lsm-backed cluster serves the same put/get contract as the flat-store
// default — values round-trip through every replica's memtable/sstable
// tiers, updates win over preloads, and requests still cost time.
func TestClusterLSMBackendRoundTrip(t *testing.T) {
	cfg := testClusterConfig()
	cfg.Backend = "lsm"
	cfg.RebalanceEvery = 0
	c := New(cfg)
	const keys = 64
	now := preloadN(c, keys)
	fe := c.NewFrontend()
	var key []byte
	val := make([]byte, 46)
	for i := 0; i < keys; i++ {
		key = appendBenchKey(key[:0], i)
		got, done := fe.Get(now, key)
		if done <= now {
			t.Fatalf("key %d: completion %v not after issue %v", i, done, now)
		}
		if v := binary.LittleEndian.Uint64(got); v != uint64(i) {
			t.Fatalf("key %d: read %d after preload", i, v)
		}
		now = done
	}
	for i := 0; i < keys; i++ {
		key = appendBenchKey(key[:0], i)
		binary.LittleEndian.PutUint64(val, uint64(i+1000))
		now = fe.Put(now, key, val)
	}
	for i := 0; i < keys; i++ {
		key = appendBenchKey(key[:0], i)
		got, done := fe.Get(now, key)
		if v := binary.LittleEndian.Uint64(got); v != uint64(i+1000) {
			t.Fatalf("key %d: read %d after put of %d", i, v, i+1000)
		}
		now = done
	}
}

// TestClusterLSMBackendDeterministic runs the skewed migration workload
// on the lsm backend twice: stats and latency distribution must match
// exactly — flush and compaction timing is part of the simulation, not
// noise.
func TestClusterLSMBackendDeterministic(t *testing.T) {
	run := func() (Stats, string) {
		cfg := testClusterConfig()
		cfg.Backend = "lsm"
		c := New(cfg)
		const keys = 256
		now := preloadN(c, keys)
		fe := c.NewFrontend()
		var key []byte
		val := make([]byte, 46)
		for i := 0; i < 1500; i++ {
			k := i % keys
			if i%10 < 7 {
				k = i % 4
			}
			key = appendBenchKey(key[:0], k)
			if i%2 == 0 {
				binary.LittleEndian.PutUint64(val, uint64(i))
				now = fe.Put(now, key, val)
			} else {
				_, done := fe.Get(now, key)
				now = done
			}
		}
		return c.Stats(), c.MergedLatency().String()
	}
	st1, h1 := run()
	st2, h2 := run()
	if fmt.Sprintf("%+v", st1) != fmt.Sprintf("%+v", st2) {
		t.Fatalf("same workload, different stats:\n%+v\n%+v", st1, st2)
	}
	if h1 != h2 {
		t.Fatalf("same workload, different latency distribution:\n%s\n%s", h1, h2)
	}
}

// TestClusterUnknownBackendPanics pins the config contract loudly.
func TestClusterUnknownBackendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown backend did not panic")
		}
	}()
	cfg := testClusterConfig()
	cfg.Backend = "btree"
	New(cfg)
}
