// Package scaleout models the first genuinely multi-machine scenario:
// a sharded key-value cluster in which every shard is a chain-replicated
// store (internal/chainrep), keys are partitioned by a consistent-hash
// ring with virtual nodes, clients route through versioned shard maps
// with stale-map detection and retry, and per-shard hot-key counters
// (obs.TopK) drive live migration of hot keys — snapshot copy, redo-log
// catch-up, then an atomic map flip.
//
// Everything is deterministic by construction: one cluster is driven
// from one goroutine (a runner sweep point), every stochastic choice
// draws from an explicitly seeded RNG owned by the workload, and all
// internal tie-breaks (ring sort, hot-key ranking, shard selection) are
// by value, never by map iteration order.
package scaleout

import "sort"

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring: each shard owns VNodes points placed
// by a deterministic mix of (seed, shard, vnode), and a key hashes to
// the first point clockwise from it. Virtual nodes smooth the per-shard
// arc share, so the uniform-workload load split is near-even.
type Ring struct {
	points []ringPoint
}

// mix64 is the splitmix64 finalizer — a cheap, well-avalanched mixing
// of the vnode identity into a ring position.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRing places vnodes points per shard from the given seed.
func NewRing(shards, vnodes int, seed uint64) *Ring {
	if shards <= 0 {
		panic("scaleout: ring needs shards >= 1 and vnodes >= 1")
	}
	ids := make([]int, shards)
	for i := range ids {
		ids[i] = i
	}
	return NewRingIDs(ids, vnodes, seed)
}

// NewRingIDs places vnodes points for each listed shard id — the
// elastic-resize form of NewRing, covering an arbitrary live-shard set.
// A shard's points depend only on its own id (and the seed), so
// NewRing(n, v, s) equals NewRingIDs([0..n-1], v, s), and adding or
// removing one shard moves exactly the arcs that change hands — every
// other key keeps its home.
func NewRingIDs(ids []int, vnodes int, seed uint64) *Ring {
	if len(ids) == 0 || vnodes <= 0 {
		panic("scaleout: ring needs at least one shard id and vnodes >= 1")
	}
	r := &Ring{points: make([]ringPoint, 0, len(ids)*vnodes)}
	for _, s := range ids {
		for v := 0; v < vnodes; v++ {
			h := mix64(seed ^ mix64(uint64(s)<<32|uint64(v)))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	// Sort by position; ties (vanishingly rare) break by shard id so the
	// ring is a pure function of (ids, vnodes, seed).
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Lookup returns the shard owning hash h: the first ring point at or
// clockwise after h, wrapping at the top.
func (r *Ring) Lookup(h uint64) int {
	pts := r.points
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pts) {
		lo = 0
	}
	return pts[lo].shard
}

// Points reports the ring size (shards x vnodes).
func (r *Ring) Points() int { return len(r.points) }

// ShardMap is one immutable version of the cluster's routing state: the
// ring plus per-key overrides for hot keys migrated off their ring
// home. The cluster publishes a new map on every migration flip
// (copy-on-write), so client frontends holding an old pointer keep a
// consistent — merely stale — view until they refresh.
type ShardMap struct {
	// Version increments on every flip; frontends compare it against
	// the authoritative map's when a shard rejects their request.
	Version   uint64
	ring      *Ring
	overrides map[uint64]int // key hash -> owning shard
}

// NewShardMap wraps a ring as version-1 routing state with no
// overrides.
func NewShardMap(ring *Ring) *ShardMap {
	return &ShardMap{Version: 1, ring: ring}
}

// Shard routes key hash h: overrides first, ring otherwise.
func (m *ShardMap) Shard(h uint64) int {
	if m.overrides != nil {
		if s, ok := m.overrides[h]; ok {
			return s
		}
	}
	return m.ring.Lookup(h)
}

// Overrides reports the number of hot-key overrides in this version.
func (m *ShardMap) Overrides() int { return len(m.overrides) }

// withOverrides returns the next map version with keys rerouted to
// shard dst. The receiver is never mutated — that is the atomic flip:
// in-flight holders of the old pointer keep the old routing.
func (m *ShardMap) withOverrides(keys []uint64, dst int) *ShardMap {
	next := &ShardMap{
		Version:   m.Version + 1,
		ring:      m.ring,
		overrides: make(map[uint64]int, len(m.overrides)+len(keys)),
	}
	for k, s := range m.overrides {
		next.overrides[k] = s
	}
	for _, k := range keys {
		next.overrides[k] = dst
	}
	return next
}
