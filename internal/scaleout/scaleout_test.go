package scaleout

import (
	"encoding/binary"
	"fmt"
	"testing"

	"rambda/internal/kvs"
	"rambda/internal/sim"
)

func TestRingBalancedAndDeterministic(t *testing.T) {
	r1 := NewRing(8, 64, 7)
	r2 := NewRing(8, 64, 7)
	if r1.Points() != 8*64 {
		t.Fatalf("ring has %d points, want %d", r1.Points(), 8*64)
	}
	const probes = 100000
	counts := make([]int, 8)
	var key []byte
	for i := 0; i < probes; i++ {
		key = appendBenchKey(key[:0], i)
		h := kvs.Hash64(key)
		s1, s2 := r1.Lookup(h), r2.Lookup(h)
		if s1 != s2 {
			t.Fatalf("same seed, different routing for key %d: %d vs %d", i, s1, s2)
		}
		counts[s1]++
	}
	mean := probes / 8
	for s, n := range counts {
		if n < mean/2 || n > mean*2 {
			t.Fatalf("shard %d owns %d of %d keys; ring badly imbalanced: %v", s, n, probes, counts)
		}
	}
}

func TestShardMapFlipIsCopyOnWrite(t *testing.T) {
	m1 := NewShardMap(NewRing(4, 64, 1))
	h := kvs.Hash64([]byte("user00000000000000"))
	home := m1.Shard(h)
	dst := (home + 1) % 4
	m2 := m1.withOverrides([]uint64{h}, dst)
	if m2.Version != m1.Version+1 {
		t.Fatalf("flip version %d, want %d", m2.Version, m1.Version+1)
	}
	if got := m2.Shard(h); got != dst {
		t.Fatalf("override routes to %d, want %d", got, dst)
	}
	if got := m1.Shard(h); got != home {
		t.Fatalf("old map mutated: routes to %d, want %d", got, home)
	}
	if m1.Overrides() != 0 || m2.Overrides() != 1 {
		t.Fatalf("override counts %d/%d, want 0/1", m1.Overrides(), m2.Overrides())
	}
}

// testClusterConfig shrinks the default cluster so unit tests exercise
// migration within a few thousand requests.
func testClusterConfig() Config {
	cfg := DefaultConfig()
	cfg.Shards = 4
	cfg.SlotsPerShard = 2048
	cfg.LogEntries = 512
	cfg.RebalanceEvery = 250
	cfg.ImbalanceThreshold = 1.1
	cfg.HotKeysPerMove = 4
	cfg.CopyChunk = 1 // one key per completion: copies interleave with writes
	return cfg
}

// preloadN serially loads keys 0..n-1 with value payload uint64(i) and
// returns the load's completion time.
func preloadN(c *Cluster, n int) sim.Time {
	var key []byte
	val := make([]byte, 46)
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		key = appendBenchKey(key[:0], i)
		binary.LittleEndian.PutUint64(val, uint64(i))
		now = c.Preload(now, key, val)
	}
	return now
}

func TestClusterPutGetRoundTrip(t *testing.T) {
	cfg := testClusterConfig()
	cfg.RebalanceEvery = 0 // routing only
	c := New(cfg)
	const keys = 64
	now := preloadN(c, keys)
	fe := c.NewFrontend()
	var key []byte
	val := make([]byte, 46)
	for i := 0; i < keys; i++ {
		key = appendBenchKey(key[:0], i)
		got, done := fe.Get(now, key)
		if done <= now {
			t.Fatalf("key %d: completion %v not after issue %v", i, done, now)
		}
		if v := binary.LittleEndian.Uint64(got); v != uint64(i) {
			t.Fatalf("key %d: read %d after preload", i, v)
		}
		now = done
	}
	for i := 0; i < keys; i++ {
		key = appendBenchKey(key[:0], i)
		binary.LittleEndian.PutUint64(val, uint64(i+1000))
		now = fe.Put(now, key, val)
	}
	for i := 0; i < keys; i++ {
		key = appendBenchKey(key[:0], i)
		got, done := fe.Get(now, key)
		if v := binary.LittleEndian.Uint64(got); v != uint64(i+1000) {
			t.Fatalf("key %d: read %d after put of %d", i, v, i+1000)
		}
		now = done
	}
	if st := c.Stats(); st.Requests != 3*keys || st.StaleRetries != 0 {
		t.Fatalf("stats %+v, want %d requests and no stale retries", st, 3*keys)
	}
}

// clusterRunStats drives a fixed skewed workload and returns everything
// observable about the run — the determinism test compares two of
// these, and the migration test asserts on one.
func clusterRunStats(seed uint64) (Stats, string) {
	cfg := testClusterConfig()
	c := New(cfg)
	const keys = 512
	now := preloadN(c, keys)
	fe := c.NewFrontend()
	rng := sim.NewRNG(seed)
	var key []byte
	val := make([]byte, 46)
	seq := uint64(1 << 32)
	for i := 0; i < 3000; i++ {
		k := rng.Intn(keys)
		if rng.Intn(10) < 7 {
			k = rng.Intn(4) // 70% of traffic on 4 hot keys
		}
		key = appendBenchKey(key[:0], k)
		if rng.Intn(2) == 0 {
			seq++
			binary.LittleEndian.PutUint64(val, seq)
			now = fe.Put(now, key, val)
		} else {
			_, done := fe.Get(now, key)
			now = done
		}
	}
	return c.Stats(), c.MergedLatency().String()
}

func TestClusterDeterministic(t *testing.T) {
	st1, h1 := clusterRunStats(99)
	st2, h2 := clusterRunStats(99)
	if fmt.Sprintf("%+v", st1) != fmt.Sprintf("%+v", st2) {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", st1, st2)
	}
	if h1 != h2 {
		t.Fatalf("same seed, different latency distribution:\n%s\n%s", h1, h2)
	}
}

func TestRouteBenchSmoke(t *testing.T) {
	if BenchShardRouteHotPath(1000) == 0 {
		t.Fatal("routing checksum is zero; kernel did no work")
	}
}

func TestRouteBenchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are distorted under the race detector")
	}
	b := NewRouteBench()
	var sink uint64
	sink += b.Step(0) // grow the key scratch once
	i := 0
	n := testing.AllocsPerRun(500, func() {
		sink += b.Step(i)
		i++
	})
	if n != 0 {
		t.Fatalf("routing hot path: %.2f allocs/op in steady state, want 0", n)
	}
	if sink == ^uint64(0) {
		t.Fatal("impossible checksum") // keep sink live
	}
}

func TestMigrationFailoverReplayBenchSmoke(t *testing.T) {
	if BenchMigrationFailoverReplay(1500) == 0 {
		t.Fatal("fault-path kernel did no work")
	}
}
