package scaleout

import (
	"bytes"
	"encoding/binary"
	"testing"

	"rambda/internal/sim"
)

// Shard construction runs as unlinked partitions of the parallel
// engine; a cluster built at any -sim-parallel value must be
// indistinguishable — same stored bytes, same request timing — from
// the sequential build.
func TestNewParallelBuildDeterministic(t *testing.T) {
	run := func(workers int) ([]byte, sim.Time) {
		sim.SetParallel(workers)
		defer sim.SetParallel(1)
		cfg := testClusterConfig()
		cfg.Shards = 4
		c := New(cfg)
		const keys = 96
		now := preloadN(c, keys)
		fe := c.NewFrontend()
		var key []byte
		var blob []byte
		val := make([]byte, 8)
		for i := 0; i < keys; i++ {
			key = appendBenchKey(key[:0], i)
			got, done := fe.Get(now, key)
			blob = append(blob, got...)
			binary.LittleEndian.PutUint64(val, uint64(done))
			blob = append(blob, val...)
			now = done
		}
		return blob, now
	}
	blob1, end1 := run(1)
	for _, w := range []int{2, 4} {
		blobW, endW := run(w)
		if end1 != endW || !bytes.Equal(blob1, blobW) {
			t.Fatalf("workers=%d: cluster diverged from sequential build (end %v vs %v)", w, endW, end1)
		}
	}
}
