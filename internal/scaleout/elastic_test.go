package scaleout

import (
	"encoding/binary"
	"fmt"
	"testing"

	"rambda/internal/chainrep"
	"rambda/internal/fault"
	"rambda/internal/kvs"
	"rambda/internal/sim"
)

// TestRingIDsArcStability pins the consistent-hashing contract the
// elastic resize leans on: growing or shrinking the shard set moves
// only the arcs that change hands — every key not owned by the added
// or removed shard keeps its home.
func TestRingIDsArcStability(t *testing.T) {
	old := NewRing(4, 64, 7)
	shrunk := NewRingIDs([]int{0, 1, 3}, 64, 7)
	grown := NewRingIDs([]int{0, 1, 2, 3, 4}, 64, 7)
	moved := 0
	var key []byte
	for i := 0; i < 20000; i++ {
		key = appendBenchKey(key[:0], i)
		h := kvs.Hash64(key)
		o := old.Lookup(h)
		if o != 2 && shrunk.Lookup(h) != o {
			t.Fatalf("key %d moved between surviving shards on removal: %d -> %d", i, o, shrunk.Lookup(h))
		}
		if g := grown.Lookup(h); g != o {
			if g != 4 {
				t.Fatalf("key %d moved between existing shards on growth: %d -> %d", i, o, g)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("growth moved no keys; the new shard owns nothing")
	}
	if moved > 20000/2 {
		t.Fatalf("growth moved %d of 20000 keys; expected roughly 1/5", moved)
	}
}

// TestElasticAddRemoveRoundTrip grows a 4-shard cluster to 5 mid
// -traffic, then drains and retires shard 0 — both as chunked range
// migrations racing the foreground workload — and checks that no key
// is lost, the drained shard is empty, the override set collapses to
// nothing once the target ring lands, and a frontend that slept
// through the whole reshape refreshes in one deep-stale hop.
func TestElasticAddRemoveRoundTrip(t *testing.T) {
	cfg := testClusterConfig()
	cfg.RebalanceEvery = 0 // isolate elasticity from hot-key moves
	cfg.RangeChunkKeys = 64
	c := New(cfg)
	const keys = 512
	now := preloadN(c, keys)

	model := make([]uint64, keys)
	for i := range model {
		model[i] = uint64(i)
	}

	fe := c.NewFrontend()
	stale := c.NewFrontend() // sleeps through the reshape
	rng := sim.NewRNG(123)
	var key []byte
	val := make([]byte, 46)
	seq := uint64(1 << 40)
	added, removed := false, false
	for i := 0; i < 2400; i++ {
		k := rng.Intn(keys)
		key = appendBenchKey(key[:0], k)
		if rng.Intn(2) == 0 {
			seq++
			binary.LittleEndian.PutUint64(val, seq)
			now = fe.Put(now, key, val)
			model[k] = seq
		} else {
			got, done := fe.Get(now, key)
			if v := binary.LittleEndian.Uint64(got); v != model[k] {
				t.Fatalf("request %d: key %d read %#x, want %#x", i, k, v, model[k])
			}
			now = done
		}
		if i == 400 {
			id, err := c.AddShard(now)
			if err != nil || id != 4 {
				t.Fatalf("AddShard: id %d err %v", id, err)
			}
			added = true
		}
		if i >= 1200 && !removed {
			// The add's chunk sequence may still be draining; keep asking.
			if err := c.RemoveShard(now, 0); err == nil {
				removed = true
			} else if err != ErrResizeActive {
				t.Fatalf("RemoveShard: %v", err)
			}
		}
	}
	if !added || !removed {
		t.Fatalf("reshape never accepted: added=%v removed=%v", added, removed)
	}
	now = c.DrainResize(now)

	st := c.Stats()
	if st.Resizes != 2 {
		t.Fatalf("completed %d resizes, want 2: %+v", st.Resizes, st)
	}
	if st.RangeMigrations == 0 || st.RangeKeys == 0 {
		t.Fatalf("reshape moved nothing: %+v", st)
	}
	if !c.Retired(0) || c.LiveShards() != 4 || c.ResizeActive() {
		t.Fatalf("retire state wrong: retired0=%v live=%d active=%v",
			c.Retired(0), c.LiveShards(), c.ResizeActive())
	}
	if len(c.shards[0].index) != 0 {
		t.Fatalf("drained shard still holds %d keys", len(c.shards[0].index))
	}
	if st.Overrides != 0 {
		t.Fatalf("override set did not collapse after the target ring landed: %+v", st)
	}
	// Every flipped chunk published a version; both finishes published
	// one more.
	if st.MapVersion != 1+uint64(st.RangeMigrations)+uint64(st.Resizes) {
		t.Fatalf("map version %d after %d chunks + %d resizes",
			st.MapVersion, st.RangeMigrations, st.Resizes)
	}

	// Full sweep through a fresh frontend: nothing lost, nothing routed
	// to the retired shard.
	for k := 0; k < keys; k++ {
		key = appendBenchKey(key[:0], k)
		if owner := c.Map().Shard(kvs.Hash64(key)); owner == 0 {
			t.Fatalf("key %d still routes to the retired shard", k)
		}
		got, done := fe.Get(now, key)
		if v := binary.LittleEndian.Uint64(got); v != model[k] {
			t.Fatalf("final sweep: key %d reads %#x, want %#x", k, v, model[k])
		}
		now = done
	}

	// The stale frontend is many versions behind — one reject pays one
	// refresh that jumps all of them.
	before := c.Stats()
	for k := 0; k < keys; k++ {
		key = appendBenchKey(key[:0], k)
		got, done := stale.Get(now, key)
		if v := binary.LittleEndian.Uint64(got); v != model[k] {
			t.Fatalf("stale sweep: key %d reads %#x, want %#x", k, v, model[k])
		}
		now = done
	}
	after := c.Stats()
	if after.DeepStale <= before.DeepStale {
		t.Fatalf("stale frontend crossed %d versions without a deep-stale refresh: %+v",
			after.MapVersion-1, after)
	}
	if stale.MapVersion() != after.MapVersion {
		t.Fatalf("stale frontend at version %d, want %d", stale.MapVersion(), after.MapVersion)
	}

	n := cfg.SlotsPerShard * cfg.SlotBytes
	for i := 0; i < c.Shards(); i++ {
		if c.Retired(i) {
			continue
		}
		ch := c.Chain(i)
		if !chainrep.StateEqual(ch.Nodes[0].Store, ch.Nodes[1].Store, n) {
			t.Fatalf("shard %d: replicas diverged after reshape", i)
		}
	}
}

// TestElasticResizeUnderFaults reruns the add-then-drain reshape with
// crash windows on top: both replicas of the freshly-added shard die
// just as the handoff to it begins (chunks abort, back off, and retry
// once the chain heals), and a mid-drain replica crash exercises
// splice/rejoin inside the range-migration machinery. The reshape must
// still converge to the same end state with no key lost.
func TestElasticResizeUnderFaults(t *testing.T) {
	run := func(windows func(tAdd sim.Time) []fault.Window) (*Cluster, Stats) {
		cfg := testClusterConfig()
		cfg.RebalanceEvery = 0
		cfg.RangeChunkKeys = 64
		c := New(cfg)
		const keys = 512
		now := preloadN(c, keys)

		// Recon determined tAdd == the request-400 completion; windows
		// are placed relative to it, and the run is byte-identical to
		// the fault-free one until the first window opens (at tAdd).
		var planned bool

		model := make([][]uint64, keys)
		for i := range model {
			model[i] = []uint64{uint64(i)}
		}
		fe := c.NewFrontend()
		rng := sim.NewRNG(123)
		var key []byte
		val := make([]byte, 46)
		seq := uint64(1 << 40)
		removed := false
		for i := 0; i < 2400; i++ {
			k := rng.Intn(keys)
			key = appendBenchKey(key[:0], k)
			if rng.Intn(2) == 0 {
				seq++
				binary.LittleEndian.PutUint64(val, seq)
				done, err := fe.TryPut(now, key, val)
				if err != nil {
					model[k] = append(model[k], seq)
				} else {
					model[k] = []uint64{seq}
				}
				now = done
			} else {
				got, done, err := fe.TryGet(now, key)
				if err == nil {
					v := binary.LittleEndian.Uint64(got)
					ok := false
					for _, want := range model[k] {
						if v == want {
							ok = true
						}
					}
					if !ok {
						t.Fatalf("request %d: key %d read %#x, not in %#x", i, k, v, model[k])
					}
					model[k] = []uint64{v}
				}
				now = done
			}
			if i == 400 {
				if !planned && windows != nil {
					c.EnableFaults(fault.New(fault.Plan{Nodes: windows(now)}))
					planned = true
				}
				if id, err := c.AddShard(now); err != nil || id != 4 {
					t.Fatalf("AddShard: id %d err %v", id, err)
				}
			}
			if i >= 1200 && !removed {
				if err := c.RemoveShard(now, 0); err == nil {
					removed = true
				} else if err != ErrResizeActive {
					t.Fatalf("RemoveShard: %v", err)
				}
			}
		}
		if !removed {
			t.Fatal("drain never accepted")
		}
		now = c.DrainResize(now)
		now = c.RejoinAll(now)

		// Converged: sweep every key and check replica agreement.
		for k := 0; k < keys; k++ {
			key = appendBenchKey(key[:0], k)
			got, done := fe.Get(now, key)
			v := binary.LittleEndian.Uint64(got)
			ok := false
			for _, want := range model[k] {
				if v == want {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("final sweep: key %d reads %#x, not in %#x", k, v, model[k])
			}
			now = done
		}
		n := cfg.SlotsPerShard * cfg.SlotBytes
		for i := 0; i < c.Shards(); i++ {
			if c.Retired(i) {
				continue
			}
			ch := c.Chain(i)
			if !chainrep.StateEqual(ch.Nodes[0].Store, ch.Nodes[1].Store, n) {
				t.Fatalf("shard %d: replicas diverged", i)
			}
		}
		return c, c.Stats()
	}

	c, st := run(func(tAdd sim.Time) []fault.Window {
		return []fault.Window{
			// The new shard dies whole just as chunks start landing on it.
			{Node: "s4r0", Kind: fault.Crash, From: tAdd, To: tAdd + sim.Time(150*sim.Microsecond)},
			{Node: "s4r1", Kind: fault.Crash, From: tAdd, To: tAdd + sim.Time(150*sim.Microsecond)},
			// A single-replica crash later in the reshape.
			{Node: "s1r0", Kind: fault.Crash,
				From: tAdd + sim.Time(300*sim.Microsecond), To: tAdd + sim.Time(500*sim.Microsecond)},
		}
	})
	if st.Aborted < 1 {
		t.Fatalf("fully-dead destination aborted no chunk: %+v", st)
	}
	if st.Failovers < 2 || st.Rejoins < 2 {
		t.Fatalf("crashes were not detected or never healed: %+v", st)
	}
	if st.Resizes != 2 || !c.Retired(0) || c.LiveShards() != 4 {
		t.Fatalf("reshape did not converge: %+v retired0=%v live=%d",
			st, c.Retired(0), c.LiveShards())
	}
	if st.Overrides != 0 {
		t.Fatalf("override set did not collapse: %+v", st)
	}

	// Determinism of the faulted reshape.
	_, st2 := run(func(tAdd sim.Time) []fault.Window {
		return []fault.Window{
			{Node: "s4r0", Kind: fault.Crash, From: tAdd, To: tAdd + sim.Time(150*sim.Microsecond)},
			{Node: "s4r1", Kind: fault.Crash, From: tAdd, To: tAdd + sim.Time(150*sim.Microsecond)},
			{Node: "s1r0", Kind: fault.Crash,
				From: tAdd + sim.Time(300*sim.Microsecond), To: tAdd + sim.Time(500*sim.Microsecond)},
		}
	})
	if fmt.Sprintf("%+v", st) != fmt.Sprintf("%+v", st2) {
		t.Fatalf("same windows, different reshape:\n%+v\n%+v", st, st2)
	}
}
