package scaleout

import "rambda/internal/kvs"

// RouteBench is the reusable state of the ShardRouteHotPath micro
// benchmark: an 8-shard ring, a current map with a handful of hot keys
// overridden, and a stale map one version behind, plus the key-format
// scratch. Step is the measured unit; after a warm-up call it performs
// zero allocations (guarded by a testing.AllocsPerRun test).
type RouteBench struct {
	cur   *ShardMap
	stale *ShardMap
	key   []byte
}

// routeBenchKeys is the key universe Step cycles through; a power of
// two so the index mask is free.
const routeBenchKeys = 1024

// NewRouteBench builds the benchmark state.
func NewRouteBench() *RouteBench {
	ring := NewRing(8, 64, 42)
	stale := NewShardMap(ring)
	// Override the first few keys to a fixed shard, so the stale map
	// actually mis-routes part of the key space and the retry branch is
	// exercised, not just predicted away.
	hot := make([]uint64, 0, 8)
	var key []byte
	for i := 0; i < 8; i++ {
		key = appendBenchKey(key[:0], i)
		hot = append(hot, kvs.Hash64(key))
	}
	return &RouteBench{cur: stale.withOverrides(hot, 0), stale: stale}
}

// Step runs one iteration of the routing hot path: format the key,
// hash it, route through the (stale) client map, detect the ownership
// mismatch, and re-route through the current map — the exact client
//-side work of Frontend.do minus the simulated chain.
func (b *RouteBench) Step(i int) uint64 {
	b.key = appendBenchKey(b.key[:0], i%routeBenchKeys)
	h := kvs.Hash64(b.key)
	sid := b.stale.Shard(h)
	if cs := b.cur.Shard(h); cs != sid {
		sid = cs // stale-map retry
	}
	return uint64(sid)
}

// BenchShardRouteHotPath runs the routing hot path n times and returns
// a checksum so the work cannot be optimized away — the micro kernel
// cmd/rambda-bench registers.
func BenchShardRouteHotPath(n int) uint64 {
	b := NewRouteBench()
	var sink uint64
	for i := 0; i < n; i++ {
		sink += b.Step(i)
	}
	return sink
}

// appendBenchKey appends the experiments' key format ("user" + 14-digit
// zero-padded decimal) onto dst without allocating.
func appendBenchKey(dst []byte, i int) []byte {
	dst = append(dst, "user"...)
	var digits [14]byte
	for p := len(digits) - 1; p >= 0; p-- {
		digits[p] = byte('0' + i%10)
		i /= 10
	}
	return append(dst, digits[:]...)
}
