package scaleout

import (
	"encoding/binary"
	"fmt"

	"rambda/internal/fault"
	"rambda/internal/kvs"
	"rambda/internal/sim"
)

// RouteBench is the reusable state of the ShardRouteHotPath micro
// benchmark: an 8-shard ring, a current map with a handful of hot keys
// overridden, and a stale map one version behind, plus the key-format
// scratch. Step is the measured unit; after a warm-up call it performs
// zero allocations (guarded by a testing.AllocsPerRun test).
type RouteBench struct {
	cur   *ShardMap
	stale *ShardMap
	key   []byte
}

// routeBenchKeys is the key universe Step cycles through; a power of
// two so the index mask is free.
const routeBenchKeys = 1024

// NewRouteBench builds the benchmark state.
func NewRouteBench() *RouteBench {
	ring := NewRing(8, 64, 42)
	stale := NewShardMap(ring)
	// Override the first few keys to a fixed shard, so the stale map
	// actually mis-routes part of the key space and the retry branch is
	// exercised, not just predicted away.
	hot := make([]uint64, 0, 8)
	var key []byte
	for i := 0; i < 8; i++ {
		key = appendBenchKey(key[:0], i)
		hot = append(hot, kvs.Hash64(key))
	}
	return &RouteBench{cur: stale.withOverrides(hot, 0), stale: stale}
}

// Step runs one iteration of the routing hot path: format the key,
// hash it, route through the (stale) client map, detect the ownership
// mismatch, and re-route through the current map — the exact client
//-side work of Frontend.do minus the simulated chain.
func (b *RouteBench) Step(i int) uint64 {
	b.key = appendBenchKey(b.key[:0], i%routeBenchKeys)
	h := kvs.Hash64(b.key)
	sid := b.stale.Shard(h)
	if cs := b.cur.Shard(h); cs != sid {
		sid = cs // stale-map retry
	}
	return uint64(sid)
}

// BenchShardRouteHotPath runs the routing hot path n times and returns
// a checksum so the work cannot be optimized away — the micro kernel
// cmd/rambda-bench registers.
func BenchShardRouteHotPath(n int) uint64 {
	b := NewRouteBench()
	var sink uint64
	for i := 0; i < n; i++ {
		sink += b.Step(i)
	}
	return sink
}

// appendBenchKey appends the experiments' key format ("user" + 14-digit
// zero-padded decimal) onto dst without allocating.
func appendBenchKey(dst []byte, i int) []byte {
	dst = append(dst, "user"...)
	var digits [14]byte
	for p := len(digits) - 1; p >= 0; p-- {
		digits[p] = byte('0' + i%10)
		i /= 10
	}
	return append(dst, digits[:]...)
}

// BenchMigrationFailoverReplay is the cluster's fault-path kernel: n
// skewed requests drive hot-key migrations while every shard's second
// replica sits in one long crash window, so the first contact splices
// it out (leaving a torn log entry) and all further commits and
// migration installs accumulate in the catch-up history; the final
// rejoin replays each redo log and re-ships that history. Like a real
// recovery — and like chainrep's ChainFailoverReplay kernel one level
// down — the work scales with n.
func BenchMigrationFailoverReplay(n int) sim.Time {
	cfg := DefaultConfig()
	cfg.SlotsPerShard = 2048
	cfg.LogEntries = 512
	cfg.RebalanceEvery = 250
	cfg.ImbalanceThreshold = 1.1
	cfg.HotKeysPerMove = 4
	cfg.CopyChunk = 1

	c := New(cfg)
	const keys = 512
	var key []byte
	val := make([]byte, 46)
	now := sim.Time(0)
	for i := 0; i < keys; i++ {
		key = appendBenchKey(key[:0], i)
		binary.LittleEndian.PutUint64(val, uint64(i))
		now = c.Preload(now, key, val)
	}
	windowEnd := now + sim.Time(n+1)*sim.Time(10*sim.Microsecond)
	wins := make([]fault.Window, 0, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		wins = append(wins, fault.Window{
			Node: fmt.Sprintf("s%dr1", s), Kind: fault.Crash, From: now, To: windowEnd,
		})
	}
	c.EnableFaults(fault.New(fault.Plan{Nodes: wins}))

	fe := c.NewFrontend()
	rng := sim.NewRNG(7)
	seq := uint64(1 << 32)
	for i := 0; i < n; i++ {
		k := rng.Intn(keys)
		if rng.Intn(10) < 7 {
			k = rng.Intn(4) // the skew that triggers migrations
		}
		key = appendBenchKey(key[:0], k)
		if rng.Intn(2) == 0 {
			seq++
			binary.LittleEndian.PutUint64(val, seq)
			now = fe.Put(now, key, val)
		} else {
			_, done := fe.Get(now, key)
			now = done
		}
	}
	now = c.DrainResize(now)
	return c.RejoinAll(now)
}
