// Package fault is the seeded deterministic fault-injection subsystem:
// a Plan describes what goes wrong on which link (packet drop,
// corruption, duplication, delay spikes) and on which node (crash or
// pause windows in virtual time), and an Injector built from the plan
// hands out per-packet verdicts and per-node liveness answers.
//
// Determinism is the design constraint. Every stochastic choice draws
// from a sim.RNG seeded by an FNV-1a fold of (plan seed, link name), so
// the same plan reproduces the same fault sequence byte-for-byte
// regardless of how many other links exist or in what order they were
// attached. Node windows are pure functions of virtual time and need no
// randomness at all.
//
// The zero-fault fast path is a nil check: consumers hold a
// *LinkInjector that is nil when the plan has no rule for their link,
// and a nil Injector answers "healthy" to every node query. With an
// empty plan no RNG is ever constructed and no allocation happens on
// the packet path, so fault-aware components cost nothing when faults
// are off.
package fault

import "rambda/internal/sim"

// LinkRule describes the fault process of one named link. All four
// probabilities are per packet and independent; a packet can be both
// delayed and corrupted, but a dropped packet consumes no further
// draws (it never arrives, so nothing else about it is observable).
type LinkRule struct {
	// Link is the exact link name to match (the name passed to
	// interconnect.NewNetLink, e.g. "net:a->b").
	Link string
	// Drop is the probability a packet is lost in flight.
	Drop float64
	// Corrupt is the probability a packet arrives with damaged payload
	// (the receiver's ICRC check discards it, so for a reliable
	// transport corruption behaves like loss detected at the far end).
	Corrupt float64
	// Duplicate is the probability a packet is delivered twice; the
	// duplicate burns wire time and is discarded by the receiver's PSN
	// check.
	Duplicate float64
	// DelaySpike is the probability a packet is held by Spike — a
	// congested-switch excursion.
	DelaySpike float64
	// Spike is the extra one-way delay of a DelaySpike packet.
	Spike sim.Duration
}

// zero reports whether the rule can never perturb a packet.
func (r LinkRule) zero() bool {
	return r.Drop <= 0 && r.Corrupt <= 0 && r.Duplicate <= 0 && (r.DelaySpike <= 0 || r.Spike <= 0)
}

// Kind classifies a node fault window.
type Kind int

const (
	// Crash kills the node for the window: it loses its volatile state
	// and must replay its redo log to catch up when it rejoins.
	Crash Kind = iota
	// Pause stalls the node for the window (a GC pause, a hot firmware
	// upgrade): it stops answering but keeps its state.
	Pause
)

// String names the window kind.
func (k Kind) String() string {
	if k == Crash {
		return "crash"
	}
	return "pause"
}

// Window takes one named node down for [From, To) in virtual time.
type Window struct {
	Node     string
	Kind     Kind
	From, To sim.Time
}

// Plan is a complete fault schedule. The zero value is the empty plan:
// nothing is ever dropped and every node is always up.
type Plan struct {
	// Seed drives every per-link RNG (folded with the link name).
	Seed uint64
	// Links lists per-link packet fault rules. At most one rule per
	// link name is honored (the first match wins).
	Links []LinkRule
	// Nodes lists crash/pause windows. Several windows may name the
	// same node.
	Nodes []Window
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	for _, r := range p.Links {
		if !r.zero() {
			return false
		}
	}
	return len(p.Nodes) == 0
}

// Decision is the verdict for one packet. The zero value is clean
// delivery.
type Decision struct {
	Drop      bool
	Corrupt   bool
	Duplicate bool
	// Delay is extra one-way latency (a congestion spike), zero for
	// on-time packets.
	Delay sim.Duration
}

// LinkStats counts what a link's injector actually did.
type LinkStats struct {
	Packets, Drops, Corrupts, Duplicates, Spikes int64
}

// LinkInjector is the per-link fault process. A nil *LinkInjector is
// the always-clean link and is safe to query.
type LinkInjector struct {
	rule  LinkRule
	rng   *sim.RNG
	stats LinkStats
}

// Decide draws the verdict for the next packet.
func (l *LinkInjector) Decide() Decision {
	if l == nil {
		return Decision{}
	}
	l.stats.Packets++
	var d Decision
	if l.rule.Drop > 0 && l.rng.Float64() < l.rule.Drop {
		l.stats.Drops++
		d.Drop = true
		// A dropped packet is unobservable beyond the drop itself;
		// consuming no further draws keeps the stream alignment simple.
		return d
	}
	if l.rule.Corrupt > 0 && l.rng.Float64() < l.rule.Corrupt {
		l.stats.Corrupts++
		d.Corrupt = true
	}
	if l.rule.Duplicate > 0 && l.rng.Float64() < l.rule.Duplicate {
		l.stats.Duplicates++
		d.Duplicate = true
	}
	if l.rule.DelaySpike > 0 && l.rule.Spike > 0 && l.rng.Float64() < l.rule.DelaySpike {
		l.stats.Spikes++
		d.Delay = l.rule.Spike
	}
	return d
}

// CorruptIndex picks which byte of an n-byte payload the corruption
// damaged — deterministic, for functional models that really flip the
// byte. Returns 0 for empty payloads.
func (l *LinkInjector) CorruptIndex(n int) int {
	if l == nil || n <= 0 {
		return 0
	}
	return l.rng.Intn(n)
}

// Stats returns the injector's counters (zero value for nil).
func (l *LinkInjector) Stats() LinkStats {
	if l == nil {
		return LinkStats{}
	}
	return l.stats
}

// Injector is an instantiated Plan: per-link RNG streams plus the node
// window table. A nil *Injector answers every query with "healthy".
type Injector struct {
	links map[string]*LinkInjector
	nodes []Window
}

// New instantiates the plan. Links with all-zero rules get no injector
// (their consumers keep the nil fast path).
func New(p Plan) *Injector {
	inj := &Injector{nodes: p.Nodes}
	for _, r := range p.Links {
		if r.zero() {
			continue
		}
		if inj.links == nil {
			inj.links = make(map[string]*LinkInjector, len(p.Links))
		}
		if _, dup := inj.links[r.Link]; dup {
			continue // first rule per link wins
		}
		inj.links[r.Link] = &LinkInjector{rule: r, rng: sim.NewRNG(foldSeed(p.Seed, r.Link))}
	}
	return inj
}

// Link returns the injector for a named link, or nil when the plan has
// no rule for it — callers keep the nil as their fast-path sentinel.
func (i *Injector) Link(name string) *LinkInjector {
	if i == nil {
		return nil
	}
	return i.links[name]
}

// NodeDown reports whether the node is inside any fault window at the
// given time.
func (i *Injector) NodeDown(node string, at sim.Time) bool {
	down, _ := i.NodeState(node, at)
	return down
}

// NodeState reports whether the node is down at `at`, and if so the
// kind of the covering window. Overlapping windows resolve to Crash if
// any covering window is a crash (losing state dominates stalling).
func (i *Injector) NodeState(node string, at sim.Time) (down bool, kind Kind) {
	if i == nil {
		return false, Pause
	}
	kind = Pause
	for _, w := range i.nodes {
		if w.Node == node && at >= w.From && at < w.To {
			down = true
			if w.Kind == Crash {
				return true, Crash
			}
		}
	}
	return down, kind
}

// NodeUpAt returns the earliest time >= at when the node is outside
// every fault window (chained/overlapping windows are walked until a
// gap is found).
func (i *Injector) NodeUpAt(node string, at sim.Time) sim.Time {
	if i == nil {
		return at
	}
	for {
		advanced := false
		for _, w := range i.nodes {
			if w.Node == node && at >= w.From && at < w.To {
				at = w.To
				advanced = true
			}
		}
		if !advanced {
			return at
		}
	}
}

// foldSeed mixes the plan seed with the link name via FNV-1a so every
// link gets an independent deterministic stream.
func foldSeed(seed uint64, name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ seed
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}
