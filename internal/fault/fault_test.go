package fault

import (
	"testing"

	"rambda/internal/sim"
)

func TestNilInjectorIsHealthy(t *testing.T) {
	var inj *Injector
	if inj.NodeDown("any", 0) {
		t.Fatal("nil injector reported a node down")
	}
	if inj.Link("any") != nil {
		t.Fatal("nil injector returned a link injector")
	}
	if inj.NodeUpAt("any", 7) != 7 {
		t.Fatal("nil injector delayed a node")
	}
	var li *LinkInjector
	if d := li.Decide(); d != (Decision{}) {
		t.Fatalf("nil link injector perturbed a packet: %+v", d)
	}
	if li.Stats() != (LinkStats{}) {
		t.Fatal("nil link injector has stats")
	}
}

func TestEmptyPlan(t *testing.T) {
	if !(&Plan{}).Empty() {
		t.Fatal("zero plan not empty")
	}
	p := Plan{Links: []LinkRule{{Link: "l"}}} // all-zero rule
	if !p.Empty() {
		t.Fatal("all-zero rule should leave the plan empty")
	}
	inj := New(p)
	if inj.Link("l") != nil {
		t.Fatal("all-zero rule must not allocate an injector")
	}
	p.Links[0].Drop = 0.5
	if p.Empty() {
		t.Fatal("drop rule ignored")
	}
}

func TestDecisionRatesRoughlyMatch(t *testing.T) {
	inj := New(Plan{Seed: 1, Links: []LinkRule{{
		Link: "l", Drop: 0.2, Corrupt: 0.1, Duplicate: 0.05,
		DelaySpike: 0.1, Spike: 5 * sim.Microsecond,
	}}})
	li := inj.Link("l")
	if li == nil {
		t.Fatal("no injector for configured link")
	}
	const n = 20000
	for i := 0; i < n; i++ {
		d := li.Decide()
		if d.Drop && (d.Corrupt || d.Duplicate || d.Delay != 0) {
			t.Fatal("dropped packet must carry no other verdicts")
		}
	}
	st := li.Stats()
	if st.Packets != n {
		t.Fatalf("packets=%d", st.Packets)
	}
	frac := func(c int64) float64 { return float64(c) / n }
	if f := frac(st.Drops); f < 0.17 || f > 0.23 {
		t.Fatalf("drop rate %.3f, want ~0.2", f)
	}
	if f := frac(st.Corrupts); f < 0.06 || f > 0.11 {
		t.Fatalf("corrupt rate %.3f, want ~0.1 of survivors", f)
	}
	if st.Duplicates == 0 || st.Spikes == 0 {
		t.Fatalf("stats=%+v, want some duplicates and spikes", st)
	}
}

func TestDeterministicAcrossInstantiations(t *testing.T) {
	plan := Plan{Seed: 99, Links: []LinkRule{
		{Link: "a", Drop: 0.3, Corrupt: 0.1},
		{Link: "b", Drop: 0.3, Corrupt: 0.1},
	}}
	seq := func(link string, extra bool) []Decision {
		p := plan
		if extra {
			// An unrelated extra rule must not shift link streams.
			p.Links = append([]LinkRule{{Link: "z", Drop: 0.5}}, p.Links...)
		}
		li := New(p).Link(link)
		out := make([]Decision, 200)
		for i := range out {
			out[i] = li.Decide()
		}
		return out
	}
	a1, a2 := seq("a", false), seq("a", true)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("link a stream diverged at %d with unrelated rule present", i)
		}
	}
	// Same seed, different link name => different stream.
	b := seq("b", false)
	same := 0
	for i := range a1 {
		if a1[i] == b[i] {
			same++
		}
	}
	if same == len(a1) {
		t.Fatal("links a and b share a stream")
	}
}

func TestNodeWindows(t *testing.T) {
	inj := New(Plan{Nodes: []Window{
		{Node: "r1", Kind: Crash, From: 100, To: 200},
		{Node: "r1", Kind: Pause, From: 150, To: 300},
		{Node: "r2", Kind: Pause, From: 50, To: 60},
	}})
	if inj.NodeDown("r1", 99) || !inj.NodeDown("r1", 100) || !inj.NodeDown("r1", 199) {
		t.Fatal("crash window boundaries wrong")
	}
	if !inj.NodeDown("r1", 250) || inj.NodeDown("r1", 300) {
		t.Fatal("pause window boundaries wrong")
	}
	if inj.NodeDown("r3", 150) {
		t.Fatal("unlisted node down")
	}
	// Overlap: crash dominates.
	if down, kind := inj.NodeState("r1", 175); !down || kind != Crash {
		t.Fatalf("overlap state=(%v,%v), want crash", down, kind)
	}
	if down, kind := inj.NodeState("r1", 250); !down || kind != Pause {
		t.Fatalf("state=(%v,%v), want pause", down, kind)
	}
	// NodeUpAt walks chained windows.
	if up := inj.NodeUpAt("r1", 120); up != 300 {
		t.Fatalf("NodeUpAt=%v, want 300 (chained windows)", up)
	}
	if up := inj.NodeUpAt("r2", 70); up != 70 {
		t.Fatalf("NodeUpAt=%v for healthy node", up)
	}
}

func TestCorruptIndexBounded(t *testing.T) {
	li := New(Plan{Seed: 3, Links: []LinkRule{{Link: "l", Corrupt: 1e-9}}}).Link("l")
	for i := 0; i < 100; i++ {
		if idx := li.CorruptIndex(64); idx < 0 || idx >= 64 {
			t.Fatalf("index %d out of range", idx)
		}
	}
	if li.CorruptIndex(0) != 0 {
		t.Fatal("empty payload index")
	}
}
