package memdev

import (
	"testing"
	"testing/quick"

	"rambda/internal/memspace"
	"rambda/internal/sim"
)

func TestDRAMAccessRoundsToLines(t *testing.T) {
	d := NewDRAM("dram", 1, 64e9, 90*sim.Nanosecond) // 1ns per 64B line
	done := d.Access(0, 1)
	// 64B at 64GB/s = 1ns occupancy + 90ns latency.
	if done != 91*sim.Nanosecond {
		t.Fatalf("done=%v, want 91ns", done)
	}
	if d.Resource().Bytes() != 64 {
		t.Fatalf("charged %d bytes, want 64", d.Resource().Bytes())
	}
}

func TestDRAMChannelsParallel(t *testing.T) {
	d := NewDRAM("dram", 6, 120e9, 0)
	var last sim.Time
	for i := 0; i < 6; i++ {
		last = d.Access(0, 64)
	}
	first := d.Access(0, 64) // 7th access queues behind one channel
	if first <= last {
		t.Fatalf("7th access (%v) should queue behind 6 parallel ones (%v)", first, last)
	}
}

func TestNVMGranularityAndAmplification(t *testing.T) {
	n := NewNVM("nvm", 1, 6e9, 300*sim.Nanosecond, 3)
	n.WriteSequential(0, 100) // rounds to 256
	if got := n.WriteAmplification(); got != 2.56 {
		t.Fatalf("seq amplification=%v, want 2.56", got)
	}

	n2 := NewNVM("nvm", 1, 6e9, 300*sim.Nanosecond, 3)
	n2.WriteRandomLines(0, 256) // 4 lines x 256B media = 1024
	if got := n2.WriteAmplification(); got != 4.0 {
		t.Fatalf("random-line amplification=%v, want 4.0", got)
	}
	// Randomized line evictions must consume more controller time than a
	// sequential write of the same span.
	n3 := NewNVM("nvm", 1, 6e9, 0, 3)
	seqDone := n3.WriteSequential(0, 1024)
	n4 := NewNVM("nvm", 1, 6e9, 0, 3)
	rndDone := n4.WriteRandomLines(0, 1024)
	if rndDone <= seqDone {
		t.Fatalf("random-line write (%v) must be slower than sequential (%v)", rndDone, seqDone)
	}
}

func TestNVMWriteCostSteals(t *testing.T) {
	// Reads behind a big amplified write must be delayed.
	n := NewNVM("nvm", 1, 6e9, 0, 3)
	free := n.Read(0, 256)
	n2 := NewNVM("nvm", 1, 6e9, 0, 3)
	n2.WriteRandomLines(0, 4096)
	busy := n2.Read(0, 256)
	if busy <= free {
		t.Fatal("write amplification must delay subsequent reads")
	}
	if n.WriteAmplification() != 1 {
		t.Fatal("no writes -> amplification 1")
	}
}

func TestLLCSteering(t *testing.T) {
	c := NewLLC("llc", 300e9, 20*sim.Nanosecond)
	c.DDIOEnabled = false
	if c.SteerDMA(false) != DestMemory {
		t.Fatal("DDIO off + TPH off must go to memory")
	}
	if c.SteerDMA(true) != DestLLC {
		t.Fatal("TPH on must go to LLC")
	}
	c.DDIOEnabled = true
	if c.SteerDMA(false) != DestLLC {
		t.Fatal("DDIO on must go to LLC")
	}
}

func newTestSystem(withNVM bool) (*System, *memspace.Region, *memspace.Region) {
	space := memspace.New()
	dreg := space.Alloc("dram-data", 1<<20, memspace.KindDRAM)
	var nreg *memspace.Region
	if withNVM {
		nreg = space.Alloc("nvm-data", 1<<20, memspace.KindNVM)
	}
	sys := &System{
		Space: space,
		DRAM:  NewDRAM("dram", 6, 120e9, 90*sim.Nanosecond),
		NVM:   NewNVM("nvm", 6, 39e9, 300*sim.Nanosecond, 3),
		Local: NewLocalMem("local", 2, 36e9, 120*sim.Nanosecond, 10*sim.Nanosecond),
		LLC:   NewLLC("llc", 300e9, 20*sim.Nanosecond),
	}
	return sys, dreg, nreg
}

func TestSystemDMAWriteSteering(t *testing.T) {
	sys, dreg, nreg := newTestSystem(true)
	sys.LLC.DDIOEnabled = false

	// TPH off, DRAM region: memory bypass.
	_, dest := sys.DMAWrite(0, dreg.Base, 4096, false)
	if dest != DestMemory {
		t.Fatal("expected memory bypass")
	}
	if sys.LLC.MemoryBypassBytes() != 4096 {
		t.Fatalf("bypass bytes=%d", sys.LLC.MemoryBypassBytes())
	}

	// TPH on: LLC injection + small eviction stream.
	_, dest = sys.DMAWrite(0, dreg.Base, 4096, true)
	if dest != DestLLC {
		t.Fatal("expected LLC injection")
	}
	if sys.LLC.LLCBytes() != 4096 {
		t.Fatalf("llc bytes=%d", sys.LLC.LLCBytes())
	}
	if sys.LLC.EvictedBytes() == 0 || sys.LLC.EvictedBytes() >= 4096 {
		t.Fatalf("evictions=%d, want small nonzero fraction", sys.LLC.EvictedBytes())
	}

	// NVM region with TPH off: sequential write, amplification ~1.
	sys.DMAWrite(0, nreg.Base, 4096, false)
	if amp := sys.NVM.WriteAmplification(); amp > 1.1 {
		t.Fatalf("adaptive path amplification=%v, want ~1", amp)
	}
}

func TestSystemNVMDDIOAmplifies(t *testing.T) {
	sys, _, nreg := newTestSystem(true)
	sys.LLC.DDIOEnabled = true     // the "RAMBDA-DDIO" misconfiguration
	sys.LLC.NVMEvictFraction = 1.0 // every dirty line eventually evicts
	sys.DMAWrite(0, nreg.Base, 4096, false)
	if amp := sys.NVM.WriteAmplification(); amp < 3.5 {
		t.Fatalf("DDIO-on NVM amplification=%v, want ~4", amp)
	}
}

func TestSystemReadsRouteByKind(t *testing.T) {
	sys, dreg, nreg := newTestSystem(true)
	sys.MemRead(0, dreg.Base, 64)
	if sys.DRAM.Resource().Ops() != 1 {
		t.Fatal("DRAM read not routed")
	}
	sys.MemRead(0, nreg.Base, 64)
	if sys.NVM.Resource().Ops() != 1 {
		t.Fatal("NVM read not routed")
	}
	sys.MemWrite(0, nreg.Base, 64)
	if sys.NVM.Resource().Ops() != 2 {
		t.Fatal("NVM write not routed")
	}
}

func TestLocalMemBypassesLLC(t *testing.T) {
	space := memspace.New()
	lreg := space.Alloc("accel", 1<<16, memspace.KindAccelLocal)
	sys := &System{
		Space: space,
		DRAM:  NewDRAM("dram", 6, 120e9, 90*sim.Nanosecond),
		Local: NewLocalMem("local", 2, 36e9, 120*sim.Nanosecond, 10*sim.Nanosecond),
		LLC:   NewLLC("llc", 300e9, 20*sim.Nanosecond),
	}
	sys.LLC.DDIOEnabled = true
	_, dest := sys.DMAWrite(0, lreg.Base, 64, true)
	if dest != DestMemory {
		t.Fatal("accel-local DMA must bypass host LLC")
	}
	if sys.LLC.LLCBytes() != 0 {
		t.Fatal("accel-local DMA charged to LLC")
	}
	if sys.Local.Resource().Ops() != 1 {
		t.Fatal("accel-local DMA not charged to local memory")
	}
}

func TestRoundUpProperty(t *testing.T) {
	f := func(n uint16, which bool) bool {
		to := CacheLineSize
		if which {
			to = NVMGranularity
		}
		r := roundUp(int(n), to)
		return r >= int(n) && r%to == 0 && r-int(n) < to
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
