// Package memdev models the server memory devices RAMBDA interacts
// with: CPU-attached DRAM, Optane-like NVM with its 256-byte internal
// access granularity and asymmetric write cost, accelerator-local
// memory (DDR4/HBM2 for the RAMBDA-LD/LH projection), and the CPU's
// last-level cache with DDIO/TPH steering of inbound I/O (paper
// Sec. III-D).
package memdev

import (
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// CacheLineSize is the CPU cacheline size (and DRAM access granularity)
// on the modeled Intel platform.
const CacheLineSize = 64

// NVMGranularity is the internal access granularity of the Optane-like
// NVM device (paper Sec. III-D: 256 bytes vs 64 for DRAM/cache).
const NVMGranularity = 256

func roundUp(n, to int) int { return (n + to - 1) / to * to }

// DRAM models a multi-channel DRAM subsystem as a multi-server queue:
// one server per channel, each providing an equal share of the total
// bandwidth, with a fixed access latency hidden behind the pipelined
// controller (propagation).
type DRAM struct {
	res     *sim.Resource
	name    string
	latency sim.Duration
}

// NewDRAM builds a DRAM device with the given channel count, aggregate
// bandwidth (bytes/sec) and access latency.
func NewDRAM(name string, channels int, totalBW float64, latency sim.Duration) *DRAM {
	return &DRAM{
		name:    name,
		latency: latency,
		res:     sim.NewResource(name, channels, 0, totalBW/float64(channels), latency),
	}
}

// Access schedules a read or write of the given size (rounded up to
// cachelines) and returns its completion time.
func (d *DRAM) Access(now sim.Time, bytes int) sim.Time {
	_, done := d.res.Acquire(now, roundUp(bytes, CacheLineSize))
	return done
}

// AccessOverlapped schedules an access whose latency is hidden by
// interleaving `overlap` independent request streams (batched RPC
// handling, out-of-order cores): bandwidth and queueing are charged in
// full, but only 1/overlap of the device latency is visible to this
// request's critical path.
func (d *DRAM) AccessOverlapped(now sim.Time, bytes int, overlap int) sim.Time {
	if overlap < 1 {
		overlap = 1
	}
	start, done := d.res.Acquire(now, roundUp(bytes, CacheLineSize))
	occupancyEnd := done - d.latency
	_ = start
	return occupancyEnd + d.latency/sim.Duration(overlap)
}

// Resource exposes the underlying queue (for utilization accounting).
func (d *DRAM) Resource() *sim.Resource { return d.res }

// NVM models an Optane-like persistent memory device. A single
// controller resource serves both reads and writes so that
// write amplification steals bandwidth from reads, which is the
// mechanism behind the adaptive-DDIO result (paper Fig. 7, Sec. III-D).
type NVM struct {
	res     *sim.Resource
	latency sim.Duration
	// writeCost is the service-time multiplier for written bytes
	// relative to read bytes (Optane write bandwidth is ~3x lower than
	// read bandwidth).
	writeCost float64

	bytesRequested int64 // application-visible written bytes
	bytesWritten   int64 // internal media writes after amplification
	// openBlocks tracks media blocks with an open write-combining
	// buffer (real DIMM controllers keep several), FIFO-evicted.
	openBlocks []uint64
}

// nvmOpenBlocks is the number of concurrent write-combining buffers.
const nvmOpenBlocks = 16

func (n *NVM) blockOpen(b uint64) bool {
	for _, ob := range n.openBlocks {
		if ob == b {
			return true
		}
	}
	return false
}

func (n *NVM) openBlock(b uint64) {
	if n.blockOpen(b) {
		return
	}
	if len(n.openBlocks) >= nvmOpenBlocks {
		copy(n.openBlocks, n.openBlocks[1:])
		n.openBlocks = n.openBlocks[:len(n.openBlocks)-1]
	}
	n.openBlocks = append(n.openBlocks, b)
}

// NewNVM builds an NVM device with the given DIMM count, aggregate read
// bandwidth, read latency, and write-cost multiplier.
func NewNVM(name string, dimms int, readBW float64, latency sim.Duration, writeCost float64) *NVM {
	return &NVM{
		res:       sim.NewResource(name, dimms, 0, readBW/float64(dimms), latency),
		latency:   latency,
		writeCost: writeCost,
	}
}

// Read schedules a read of the given size, rounded up to the 256 B
// media granularity.
func (n *NVM) Read(now sim.Time, bytes int) sim.Time {
	_, done := n.res.Acquire(now, roundUp(bytes, NVMGranularity))
	return done
}

// ReadOverlapped is Read with latency hidden by `overlap` interleaved
// request streams (see DRAM.AccessOverlapped).
func (n *NVM) ReadOverlapped(now sim.Time, bytes int, overlap int) sim.Time {
	if overlap < 1 {
		overlap = 1
	}
	_, done := n.res.Acquire(now, roundUp(bytes, NVMGranularity))
	return done - n.latency + n.latency/sim.Duration(overlap)
}

// WriteSequential schedules a streaming write of full entries: the
// whole span is written once, rounded up to media granularity. This is
// the path adaptive DDIO (TPH off for NVM regions) achieves.
func (n *NVM) WriteSequential(now sim.Time, bytes int) sim.Time {
	media := roundUp(bytes, NVMGranularity)
	n.bytesRequested += int64(bytes)
	n.bytesWritten += int64(media)
	_, done := n.res.Acquire(now, int(float64(media)*n.writeCost))
	return done
}

// WriteAt schedules a streaming write at a known address, coalescing
// with the previous WriteAt: consecutive small writes (e.g. ring
// entries DMA-ed back to back) that fall into an already-open 256 B
// media block do not pay for it again. This is the device-direct path
// adaptive DDIO enables; the LLC-eviction path (WriteRandomLines)
// cannot coalesce because evictions are randomized.
func (n *NVM) WriteAt(now sim.Time, addr uint64, bytes int) sim.Time {
	if bytes <= 0 {
		return now
	}
	first := addr / NVMGranularity
	last := (addr + uint64(bytes) - 1) / NVMGranularity
	blocks := 0
	for b := first; b <= last; b++ {
		if !n.blockOpen(b) {
			blocks++
			n.openBlock(b)
		}
	}
	media := blocks * NVMGranularity
	n.bytesRequested += int64(bytes)
	n.bytesWritten += int64(media)
	_, done := n.res.Acquire(now, int(float64(media)*n.writeCost))
	return done
}

// WriteRandomLines schedules a write arriving as randomized 64 B
// cacheline evictions (the DDIO-then-evict path): every line touches a
// full 256 B media block, so the media write volume is amplified 4x.
func (n *NVM) WriteRandomLines(now sim.Time, bytes int) sim.Time {
	lines := roundUp(bytes, CacheLineSize) / CacheLineSize
	media := lines * NVMGranularity
	n.bytesRequested += int64(bytes)
	n.bytesWritten += int64(media)
	_, done := n.res.Acquire(now, int(float64(media)*n.writeCost))
	return done
}

// WriteAmplification reports media bytes written per requested byte.
func (n *NVM) WriteAmplification() float64 {
	if n.bytesRequested == 0 {
		return 1
	}
	return float64(n.bytesWritten) / float64(n.bytesRequested)
}

// Resource exposes the controller queue.
func (n *NVM) Resource() *sim.Resource { return n.res }

// LocalMem models accelerator-attached memory (the U280's DDR4 or HBM2
// in the paper's RAMBDA-LD/LH emulation). perOp is the per-access
// controller overhead (row activation, bank scheduling) that dominates
// small random accesses on few-channel DDR4 but amortizes across HBM's
// many channels.
type LocalMem struct {
	res *sim.Resource
}

// NewLocalMem builds accelerator-local memory with the given channel
// count, aggregate bandwidth, access latency and per-access overhead.
func NewLocalMem(name string, channels int, totalBW float64, latency, perOp sim.Duration) *LocalMem {
	return &LocalMem{res: sim.NewResource(name, channels, perOp, totalBW/float64(channels), latency)}
}

// Access schedules a read or write of the given size.
func (m *LocalMem) Access(now sim.Time, bytes int) sim.Time {
	_, done := m.res.Acquire(now, roundUp(bytes, CacheLineSize))
	return done
}

// Resource exposes the underlying queue.
func (m *LocalMem) Resource() *sim.Resource { return m.res }

// Dest says where a DMA write landed.
type Dest int

const (
	// DestLLC means the data was injected into the last-level cache.
	DestLLC Dest = iota
	// DestMemory means the data went straight to the backing device.
	DestMemory
)

// LLC models the CPU last-level cache as seen by inbound I/O. It is a
// steering and accounting model, not a full functional cache: DDIO/TPH
// decide whether DMA data lands in the LLC or in memory, and a
// configurable fraction of LLC-landed lines is charged to the backing
// device as (randomized) evictions.
type LLC struct {
	res *sim.Resource

	// DDIOEnabled is the global CPU-wide DDIO knob. Adaptive DDIO
	// (paper Sec. III-D guideline 1) disables it and relies on
	// per-packet TPH instead.
	DDIOEnabled bool

	// EvictFraction is the fraction of DDIO-landed bytes that are
	// eventually written back to a DRAM backing device while the I/O
	// stream is active (lines overwritten in place before eviction are
	// free). Calibrated so Fig. 5's "little memory bandwidth" outcome
	// holds.
	EvictFraction float64
	// NVMEvictFraction is the same for NVM-backed regions: dirty lines
	// that survive until eviction are written back as randomized 64 B
	// lines — the write-amplification problem adaptive DDIO avoids.
	// Roughly half the lines get overwritten in place first (calibrated
	// to the paper's ~20% adaptive-DDIO gain, Fig. 7).
	NVMEvictFraction float64

	llcBytes  int64
	memBytes  int64
	evictions int64
}

// NewLLC builds the LLC steering model.
func NewLLC(name string, totalBW float64, latency sim.Duration) *LLC {
	return &LLC{
		res:              sim.NewResource(name, 4, 0, totalBW/4, latency),
		EvictFraction:    0.05,
		NVMEvictFraction: 0.5,
	}
}

// SteerDMA decides where a DMA write with the given TPH bit lands,
// following the Fig. 5 experiment: data goes to the LLC iff DDIO is
// enabled globally or the packet carries the TPH hint.
func (c *LLC) SteerDMA(tph bool) Dest {
	if c.DDIOEnabled || tph {
		return DestLLC
	}
	return DestMemory
}

// Inject schedules an LLC write of the given size and returns its
// completion time, recording DDIO statistics.
func (c *LLC) Inject(now sim.Time, bytes int) sim.Time {
	c.llcBytes += int64(bytes)
	_, done := c.res.Acquire(now, roundUp(bytes, CacheLineSize))
	return done
}

// Access schedules an LLC hit (e.g. a core or accelerator consuming
// freshly DDIO-ed data).
func (c *LLC) Access(now sim.Time, bytes int) sim.Time {
	_, done := c.res.Acquire(now, roundUp(bytes, CacheLineSize))
	return done
}

// RecordMemoryBypass accounts a DMA write that bypassed the cache.
func (c *LLC) RecordMemoryBypass(bytes int) { c.memBytes += int64(bytes) }

// RecordEviction accounts bytes written back to a backing device.
func (c *LLC) RecordEviction(bytes int) { c.evictions += int64(bytes) }

// LLCBytes returns bytes injected into the cache by I/O.
func (c *LLC) LLCBytes() int64 { return c.llcBytes }

// MemoryBypassBytes returns bytes that went straight to memory.
func (c *LLC) MemoryBypassBytes() int64 { return c.memBytes }

// EvictedBytes returns bytes written back from the cache.
func (c *LLC) EvictedBytes() int64 { return c.evictions }

// System bundles a machine's memory devices and implements the
// device-to-host data transfer policy: every inbound DMA write is
// steered by DDIO/TPH and charged to the right device, including NVM
// write amplification on the eviction path.
type System struct {
	Space *memspace.Space
	DRAM  *DRAM
	NVM   *NVM // may be nil on DRAM-only machines
	Local *LocalMem
	LLC   *LLC
}

// DMAWrite performs the timing for an inbound I/O write of `bytes`
// bytes at addr, carrying the given TPH hint. It returns the completion
// time and where the data landed.
func (s *System) DMAWrite(now sim.Time, addr memspace.Addr, bytes int, tph bool) (sim.Time, Dest) {
	kind := s.Space.KindOf(addr)
	if kind == memspace.KindAccelLocal {
		// Accelerator-local regions bypass the host cache hierarchy.
		return s.Local.Access(now, bytes), DestMemory
	}
	dest := s.LLC.SteerDMA(tph)
	if dest == DestLLC {
		done := s.LLC.Inject(now, bytes)
		// A fraction of lines is written back to the backing device as
		// randomized cacheline evictions.
		frac := s.LLC.EvictFraction
		if kind == memspace.KindNVM {
			frac = s.LLC.NVMEvictFraction
		}
		evict := int(float64(bytes) * frac)
		if evict > 0 {
			s.LLC.RecordEviction(evict)
			switch kind {
			case memspace.KindNVM:
				s.NVM.WriteRandomLines(now, evict)
			default:
				s.DRAM.Access(now, evict)
			}
		}
		return done, DestLLC
	}
	s.LLC.RecordMemoryBypass(bytes)
	switch kind {
	case memspace.KindNVM:
		return s.NVM.WriteAt(now, uint64(addr), bytes), DestMemory
	default:
		return s.DRAM.Access(now, bytes), DestMemory
	}
}

// MemRead performs the timing for a read of `bytes` at addr from the
// host side (a core or the accelerator's coherence controller once the
// request has crossed the cc-link).
func (s *System) MemRead(now sim.Time, addr memspace.Addr, bytes int) sim.Time {
	switch s.Space.KindOf(addr) {
	case memspace.KindNVM:
		return s.NVM.Read(now, bytes)
	case memspace.KindAccelLocal:
		return s.Local.Access(now, bytes)
	default:
		return s.DRAM.Access(now, bytes)
	}
}

// MemWrite performs the timing for a host-side write of `bytes` at addr.
func (s *System) MemWrite(now sim.Time, addr memspace.Addr, bytes int) sim.Time {
	switch s.Space.KindOf(addr) {
	case memspace.KindNVM:
		return s.NVM.WriteSequential(now, bytes)
	case memspace.KindAccelLocal:
		return s.Local.Access(now, bytes)
	default:
		return s.DRAM.Access(now, bytes)
	}
}
