// Package coherence models the cache-coherence domain shared by the
// CPU, the RNIC (via DDIO), and the cc-accelerator. It implements just
// enough of a MESI-style protocol to support RAMBDA's cpoll mechanism
// (paper Sec. III-B): an agent can *pin* (own) a set of cachelines, and
// any write to a pinned line by another agent delivers an invalidation
// signal to the owner — exactly once per ownership epoch, which is how
// real coherence buses coalesce back-to-back writes to an
// already-invalid line.
//
// Timing is charged by callers (the cc-link and controller models);
// this package is functional.
package coherence

import (
	"fmt"

	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// AgentID identifies a coherence agent (CPU socket, cc-accelerator,
// RNIC/DDIO).
type AgentID int

// Well-known agents in a RAMBDA machine.
const (
	AgentCPU AgentID = iota
	AgentAccel
	AgentNIC
)

// String names the agent.
func (a AgentID) String() string {
	switch a {
	case AgentCPU:
		return "cpu"
	case AgentAccel:
		return "accel"
	case AgentNIC:
		return "nic"
	default:
		return fmt.Sprintf("agent(%d)", int(a))
	}
}

// Signal is an invalidation notice delivered to a line's owner when
// another agent writes it (the Modified→Invalid transition the paper's
// cpoll checker snoops).
type Signal struct {
	Addr   memspace.Addr // first invalidated line address
	Bytes  int           // span of the triggering write
	At     sim.Time
	Writer AgentID
}

// SnoopFunc receives invalidation signals.
type SnoopFunc func(Signal)

// LineSize is the coherence granule.
const LineSize = 64

type lineState struct {
	owner AgentID
	valid bool // owner still holds the line (M/E); false = invalidated
}

// Domain is one machine's coherence domain.
type Domain struct {
	lines    map[memspace.Addr]*lineState // keyed by line-aligned address
	snoopers map[AgentID]SnoopFunc

	signals int64 // delivered invalidations
	writes  int64

	// deliveredTo is Write's reusable once-per-owner scratch (snoopers
	// never re-enter Write; a write spans at most a few owners).
	deliveredTo []AgentID
}

// NewDomain creates an empty coherence domain.
func NewDomain() *Domain {
	return &Domain{
		lines:    make(map[memspace.Addr]*lineState),
		snoopers: make(map[AgentID]SnoopFunc),
	}
}

func lineAlign(a memspace.Addr) memspace.Addr {
	return a &^ (LineSize - 1)
}

// SetSnooper installs the invalidation callback for an agent. The
// callback runs synchronously from Write.
func (d *Domain) SetSnooper(agent AgentID, fn SnoopFunc) {
	d.snoopers[agent] = fn
}

// Pin gives agent ownership (M/E state) of every line in r. This models
// the RAMBDA framework pinning the cpoll region into the
// cc-accelerator's local cache so the coherence controller never evicts
// it (paper Sec. III-E).
func (d *Domain) Pin(agent AgentID, r memspace.Range) {
	for a := lineAlign(r.Base); a < r.End(); a += LineSize {
		d.lines[a] = &lineState{owner: agent, valid: true}
	}
}

// Unpin releases ownership of every line in r.
func (d *Domain) Unpin(r memspace.Range) {
	for a := lineAlign(r.Base); a < r.End(); a += LineSize {
		delete(d.lines, a)
	}
}

// PinnedLines reports how many lines are currently tracked.
func (d *Domain) PinnedLines() int { return len(d.lines) }

// Write records a write by `writer` to [addr, addr+bytes). For every
// covered line owned (and still valid) at another agent, ownership is
// invalidated and a single Signal is delivered to that owner's snooper.
// Lines already invalid deliver nothing — back-to-back writes coalesce
// until the owner reacquires the line.
func (d *Domain) Write(writer AgentID, addr memspace.Addr, bytes int, at sim.Time) {
	d.writes++
	if bytes <= 0 {
		return
	}
	first := lineAlign(addr)
	last := lineAlign(addr + memspace.Addr(bytes) - 1)
	d.deliveredTo = d.deliveredTo[:0]
	for a := first; ; a += LineSize {
		if st, ok := d.lines[a]; ok && st.valid && st.owner != writer {
			st.valid = false
			if fn := d.snoopers[st.owner]; fn != nil {
				// One signal per (owner, write): hardware coalesces the
				// per-line invalidations of a single bus transaction.
				already := false
				for _, id := range d.deliveredTo {
					if id == st.owner {
						already = true
						break
					}
				}
				if !already {
					d.deliveredTo = append(d.deliveredTo, st.owner)
					d.signals++
					fn(Signal{Addr: a, Bytes: bytes, At: at, Writer: writer})
				}
			}
		}
		if a == last {
			break
		}
	}
}

// Reacquire restores agent ownership of the lines in [addr,
// addr+bytes): the owner read the data (and, for cpoll, reset the
// buffer entry), so its cache holds the lines again and the next remote
// write will signal again.
func (d *Domain) Reacquire(agent AgentID, addr memspace.Addr, bytes int) {
	if bytes <= 0 {
		return
	}
	first := lineAlign(addr)
	last := lineAlign(addr + memspace.Addr(bytes) - 1)
	for a := first; ; a += LineSize {
		if st, ok := d.lines[a]; ok && st.owner == agent {
			st.valid = true
		}
		if a == last {
			break
		}
	}
}

// Owned reports whether agent currently holds a valid copy of the line
// containing addr.
func (d *Domain) Owned(agent AgentID, addr memspace.Addr) bool {
	st, ok := d.lines[lineAlign(addr)]
	return ok && st.owner == agent && st.valid
}

// Signals returns the number of invalidations delivered so far.
func (d *Domain) Signals() int64 { return d.signals }

// Writes returns the number of Write calls observed.
func (d *Domain) Writes() int64 { return d.writes }
