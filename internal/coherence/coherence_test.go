package coherence

import (
	"testing"
	"testing/quick"

	"rambda/internal/memspace"
	"rambda/internal/sim"
)

func TestPinWriteSignals(t *testing.T) {
	d := NewDomain()
	var got []Signal
	d.SetSnooper(AgentAccel, func(s Signal) { got = append(got, s) })
	r := memspace.Range{Base: 0x1000, Size: 256}
	d.Pin(AgentAccel, r)
	if d.PinnedLines() != 4 {
		t.Fatalf("pinned lines=%d, want 4", d.PinnedLines())
	}

	d.Write(AgentNIC, 0x1000, 64, 10*sim.Nanosecond)
	if len(got) != 1 {
		t.Fatalf("signals=%d, want 1", len(got))
	}
	if got[0].Writer != AgentNIC || got[0].Addr != 0x1000 {
		t.Fatalf("signal %+v", got[0])
	}
	if d.Owned(AgentAccel, 0x1000) {
		t.Fatal("line must be invalidated after remote write")
	}
}

func TestCoalescingUntilReacquire(t *testing.T) {
	d := NewDomain()
	n := 0
	d.SetSnooper(AgentAccel, func(Signal) { n++ })
	d.Pin(AgentAccel, memspace.Range{Base: 0x1000, Size: 64})

	d.Write(AgentNIC, 0x1000, 64, 0)
	d.Write(AgentNIC, 0x1000, 64, 0) // coalesced: line already invalid
	d.Write(AgentCPU, 0x1000, 64, 0) // still invalid, still coalesced
	if n != 1 {
		t.Fatalf("signals=%d, want 1 (coalescing)", n)
	}

	d.Reacquire(AgentAccel, 0x1000, 64)
	if !d.Owned(AgentAccel, 0x1000) {
		t.Fatal("reacquire failed")
	}
	d.Write(AgentNIC, 0x1000, 64, 0)
	if n != 2 {
		t.Fatalf("signals=%d, want 2 after reacquire", n)
	}
}

func TestOwnWriteDoesNotSelfSignal(t *testing.T) {
	d := NewDomain()
	n := 0
	d.SetSnooper(AgentAccel, func(Signal) { n++ })
	d.Pin(AgentAccel, memspace.Range{Base: 0x2000, Size: 64})
	d.Write(AgentAccel, 0x2000, 64, 0)
	if n != 0 {
		t.Fatal("owner's own write must not signal itself")
	}
	if !d.Owned(AgentAccel, 0x2000) {
		t.Fatal("owner write must not invalidate its own line")
	}
}

func TestMultiLineWriteSignalsOnce(t *testing.T) {
	// A single bus transaction spanning several owned lines delivers one
	// coalesced signal, not one per line.
	d := NewDomain()
	n := 0
	d.SetSnooper(AgentAccel, func(Signal) { n++ })
	d.Pin(AgentAccel, memspace.Range{Base: 0x1000, Size: 1024})
	d.Write(AgentNIC, 0x1000, 512, 0)
	if n != 1 {
		t.Fatalf("signals=%d, want 1 for a multi-line write", n)
	}
	// All covered lines are invalid, the rest still owned.
	if d.Owned(AgentAccel, 0x1000) || d.Owned(AgentAccel, 0x11c0) {
		t.Fatal("covered lines must be invalid")
	}
	if !d.Owned(AgentAccel, 0x1200) {
		t.Fatal("uncovered lines must stay owned")
	}
}

func TestUnalignedWriteCoversItsLines(t *testing.T) {
	d := NewDomain()
	n := 0
	d.SetSnooper(AgentAccel, func(Signal) { n++ })
	d.Pin(AgentAccel, memspace.Range{Base: 0x1000, Size: 192})
	// Write of 4 bytes at 0x103e touches lines 0x1000 and 0x1040.
	d.Write(AgentNIC, 0x103e, 4, 0)
	if d.Owned(AgentAccel, 0x1000) || d.Owned(AgentAccel, 0x1040) {
		t.Fatal("both touched lines must be invalid")
	}
	if !d.Owned(AgentAccel, 0x1080) {
		t.Fatal("untouched line must stay owned")
	}
	if n != 1 {
		t.Fatalf("signals=%d", n)
	}
}

func TestUnpin(t *testing.T) {
	d := NewDomain()
	r := memspace.Range{Base: 0x1000, Size: 128}
	d.Pin(AgentAccel, r)
	d.Unpin(r)
	if d.PinnedLines() != 0 {
		t.Fatal("unpin must drop lines")
	}
	n := 0
	d.SetSnooper(AgentAccel, func(Signal) { n++ })
	d.Write(AgentNIC, 0x1000, 64, 0)
	if n != 0 {
		t.Fatal("writes to unpinned lines must not signal")
	}
}

func TestZeroByteWriteIsNoop(t *testing.T) {
	d := NewDomain()
	d.Pin(AgentAccel, memspace.Range{Base: 0x1000, Size: 64})
	d.SetSnooper(AgentAccel, func(Signal) { t.Fatal("signal on 0-byte write") })
	d.Write(AgentNIC, 0x1000, 0, 0)
	d.Reacquire(AgentAccel, 0x1000, 0)
}

func TestSignalCountProperty(t *testing.T) {
	// Property: the number of delivered signals over any write/reacquire
	// interleaving never exceeds the number of remote writes, and after
	// reacquiring everything a remote write always signals.
	f := func(ops []uint8) bool {
		d := NewDomain()
		n := 0
		d.SetSnooper(AgentAccel, func(Signal) { n++ })
		d.Pin(AgentAccel, memspace.Range{Base: 0x1000, Size: 256})
		remoteWrites := 0
		for _, op := range ops {
			line := memspace.Addr(0x1000 + uint64(op%4)*64)
			if op%3 == 0 {
				d.Reacquire(AgentAccel, line, 64)
			} else {
				d.Write(AgentNIC, line, 64, 0)
				remoteWrites++
			}
		}
		if n > remoteWrites {
			return false
		}
		for i := 0; i < 4; i++ {
			d.Reacquire(AgentAccel, memspace.Addr(0x1000+uint64(i)*64), 64)
		}
		before := n
		d.Write(AgentNIC, 0x1000, 64, 0)
		return n == before+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAgentString(t *testing.T) {
	if AgentCPU.String() != "cpu" || AgentAccel.String() != "accel" ||
		AgentNIC.String() != "nic" || AgentID(9).String() == "" {
		t.Fatal("agent names")
	}
}

func TestStatsCounters(t *testing.T) {
	d := NewDomain()
	d.SetSnooper(AgentAccel, func(Signal) {})
	d.Pin(AgentAccel, memspace.Range{Base: 0x1000, Size: 64})
	d.Write(AgentNIC, 0x1000, 64, 0)
	d.Write(AgentNIC, 0x1000, 64, 0)
	if d.Writes() != 2 || d.Signals() != 1 {
		t.Fatalf("writes=%d signals=%d", d.Writes(), d.Signals())
	}
}
