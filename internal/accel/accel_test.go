package accel

import (
	"testing"

	"rambda/internal/coherence"
	"rambda/internal/interconnect"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

type fixture struct {
	space *memspace.Space
	coh   *coherence.Domain
	host  *memdev.System
	link  *interconnect.CCLink
	dram  *memspace.Region
	local *memspace.Region
}

func newFixture(withLocal bool) (*fixture, *Accel) {
	f := &fixture{
		space: memspace.New(),
		coh:   coherence.NewDomain(),
		link:  interconnect.NewCCLink("upi", 20.8e9, 100*sim.Nanosecond),
	}
	f.dram = f.space.Alloc("dram", 1<<20, memspace.KindDRAM)
	f.host = &memdev.System{
		Space: f.space,
		DRAM:  memdev.NewDRAM("dram", 6, 120e9, 90*sim.Nanosecond),
		LLC:   memdev.NewLLC("llc", 300e9, 20*sim.Nanosecond),
	}
	var local *memdev.LocalMem
	if withLocal {
		f.local = f.space.Alloc("accel-local", 1<<20, memspace.KindAccelLocal)
		local = memdev.NewLocalMem("ld", 2, 36e9, 120*sim.Nanosecond, 10*sim.Nanosecond)
	}
	a := New(DefaultConfig("acc"), f.link, f.host, f.space, f.coh, local)
	return f, a
}

func TestReadDataCrossesCCLink(t *testing.T) {
	f, a := newFixture(false)
	done := a.ReadData(0, f.dram.Base, 64)
	// Must include cc-link hop (100ns) + DRAM latency (90ns) at least.
	if done < 190*sim.Nanosecond {
		t.Fatalf("host read done=%v, must cross UPI + DRAM", done)
	}
	if f.link.Resource().Ops() == 0 {
		t.Fatal("cc-link not charged")
	}
}

func TestLocalMemoryBypassesCCLink(t *testing.T) {
	f, a := newFixture(true)
	if !a.HasLocalMemory() {
		t.Fatal("variant flag")
	}
	before := f.link.Resource().Ops()
	a.ReadData(0, f.local.Base, 64)
	// Only TLB-warming traffic may touch the link; data must not.
	a.ReadData(0, f.local.Base, 64) // warm TLB second access
	after := f.link.Resource().Ops()
	if after != before {
		// First access performs a page walk through host memory; data
		// reads themselves must be local. Verify by byte accounting.
		t.Logf("link ops %d -> %d (page walk)", before, after)
	}
	start := f.link.Resource().Bytes()
	a.ReadData(sim.Second, f.local.Base, 4096)
	if f.link.Resource().Bytes() != start {
		t.Fatal("local data read leaked onto the cc-link")
	}
}

func TestWriteDataIsFunctionalAndCoherent(t *testing.T) {
	f, a := newFixture(false)
	signals := 0
	f.coh.SetSnooper(coherence.AgentCPU, func(coherence.Signal) { signals++ })
	f.coh.Pin(coherence.AgentCPU, memspace.Range{Base: f.dram.Base, Size: 64})

	a.WriteData(0, f.dram.Base, []byte("from apu"))
	got := make([]byte, 8)
	f.space.Read(f.dram.Base, got)
	if string(got) != "from apu" {
		t.Fatalf("memory=%q", got)
	}
	if signals != 1 {
		t.Fatal("accelerator store must raise a coherence signal for CPU-pinned lines")
	}
}

func TestFetchPinnedIsCacheHit(t *testing.T) {
	f, a := newFixture(false)
	r := memspace.Range{Base: f.dram.Base, Size: 4096}
	a.Pin(r)
	// Owned pinned line: one cycle + issue, no cc-link traffic.
	before := f.link.Resource().Ops()
	done := a.Fetch(0, f.dram.Base, 64)
	if f.link.Resource().Ops() != before {
		t.Fatal("pinned fetch must not cross the cc-link")
	}
	if done > 50*sim.Nanosecond {
		t.Fatalf("pinned fetch=%v, want a few fabric cycles", done)
	}
	// After invalidation the fetch must go to the host.
	f.coh.Write(coherence.AgentNIC, f.dram.Base, 64, 0)
	done = a.Fetch(done, f.dram.Base, 64)
	if f.link.Resource().Ops() == before {
		t.Fatal("invalidated fetch must cross the cc-link")
	}
	if done < 190*sim.Nanosecond {
		t.Fatalf("invalidated fetch=%v too fast", done)
	}
}

func TestPinCapacityEnforced(t *testing.T) {
	f, a := newFixture(false)
	a.Pin(memspace.Range{Base: f.dram.Base, Size: 32 << 10})
	defer func() {
		if recover() == nil {
			t.Fatal("pinning beyond the 64KB local cache must panic")
		}
	}()
	a.Pin(memspace.Range{Base: f.dram.Base + 32<<10, Size: 33 << 10})
}

func TestIssueSerialization(t *testing.T) {
	// The controller issues serially: K concurrent reads finish no
	// faster than K * IssueCycles of pipeline occupancy.
	f, a := newFixture(false)
	var last sim.Time
	const k = 100
	for i := 0; i < k; i++ {
		done := a.ReadData(0, f.dram.Base+memspace.Addr(i*64), 64)
		if done > last {
			last = done
		}
	}
	minIssue := sim.Duration(k*a.Config().IssueCycles) * a.CycleTime()
	if last < minIssue {
		t.Fatalf("100 reads done at %v, serial issue floor is %v", last, minIssue)
	}
	// But far less than k * full-memory-latency: MLP must overlap.
	serialMemory := sim.Duration(k) * 190 * sim.Nanosecond
	if last >= serialMemory {
		t.Fatalf("reads did not overlap: %v >= %v", last, serialMemory)
	}
}

func TestComputePool(t *testing.T) {
	_, a := newFixture(false)
	// 400 cycles at 400MHz = 1us on one FU; 4 FUs run 4 ops in parallel.
	var done sim.Time
	for i := 0; i < 4; i++ {
		done = a.Compute(0, 400)
	}
	if done != sim.Microsecond {
		t.Fatalf("parallel compute done=%v, want 1us", done)
	}
	done = a.Compute(0, 400) // fifth op queues
	if done != 2*sim.Microsecond {
		t.Fatalf("queued compute done=%v, want 2us", done)
	}
	if a.Compute(done, 0) != done {
		t.Fatal("zero-cycle compute must be free")
	}
}

func TestTLBWarmup(t *testing.T) {
	f, a := newFixture(false)
	a.ReadData(0, f.dram.Base, 64)
	h0, m0 := a.TLBStats()
	if m0 != 1 || h0 != 0 {
		t.Fatalf("cold access: hits=%d misses=%d", h0, m0)
	}
	a.ReadData(0, f.dram.Base+128, 64) // same 2MB page
	h1, m1 := a.TLBStats()
	if h1 != 1 || m1 != 1 {
		t.Fatalf("warm access: hits=%d misses=%d", h1, m1)
	}
}

func TestBadConfigPanics(t *testing.T) {
	f, _ := newFixture(false)
	cfg := DefaultConfig("bad")
	cfg.ClockHz = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(cfg, f.link, f.host, f.space, f.coh, nil)
}
