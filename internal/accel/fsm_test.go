package accel

import (
	"testing"
	"testing/quick"
)

func TestFSMLifecycle(t *testing.T) {
	f := NewFSMTable(4)
	if !f.TryInsert(1, "walking") {
		t.Fatal("insert failed")
	}
	s, ok := f.Lookup(1)
	if !ok || s != "walking" {
		t.Fatal("lookup")
	}
	f.Update(1, "responding")
	s, _ = f.Lookup(1)
	if s != "responding" {
		t.Fatal("update")
	}
	f.Complete(1)
	if _, ok := f.Lookup(1); ok {
		t.Fatal("completed id still present")
	}
	if f.Inserted() != 1 || f.Completed() != 1 {
		t.Fatal("counters")
	}
}

func TestFSMCapacityBound(t *testing.T) {
	f := NewFSMTable(2)
	if !f.TryInsert(1, nil) || !f.TryInsert(2, nil) {
		t.Fatal("inserts under capacity failed")
	}
	if f.TryInsert(3, nil) {
		t.Fatal("insert over capacity must fail")
	}
	f.Complete(1)
	if !f.TryInsert(3, nil) {
		t.Fatal("slot not released")
	}
	if f.Peak() != 2 {
		t.Fatalf("peak=%d", f.Peak())
	}
}

func TestFSMPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	f := NewFSMTable(4)
	f.TryInsert(1, nil)
	mustPanic("duplicate", func() { f.TryInsert(1, nil) })
	mustPanic("update unknown", func() { f.Update(9, nil) })
	mustPanic("complete unknown", func() { f.Complete(9) })
}

func TestFSMOccupancyInvariant(t *testing.T) {
	// Property: InFlight == Inserted - Completed and never exceeds
	// capacity under any op sequence.
	f := func(ops []uint8) bool {
		tbl := NewFSMTable(8)
		next := uint64(0)
		var live []uint64
		for _, op := range ops {
			if op%2 == 0 {
				next++
				if tbl.TryInsert(next, op) {
					live = append(live, next)
				}
			} else if len(live) > 0 {
				tbl.Complete(live[0])
				live = live[1:]
			}
			if tbl.InFlight() > tbl.Capacity() {
				return false
			}
			if int64(tbl.InFlight()) != tbl.Inserted()-tbl.Completed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTLBEviction(t *testing.T) {
	tlb := NewTLB(2, 1<<20)
	tlb.Lookup(0)
	tlb.Insert(0)
	tlb.Lookup(1 << 20)
	tlb.Insert(1 << 20)
	// Touch page 0 so page 1 is LRU.
	if !tlb.Lookup(100) {
		t.Fatal("page 0 should hit")
	}
	tlb.Lookup(2 << 20)
	tlb.Insert(2 << 20)
	if tlb.Resident() != 2 {
		t.Fatalf("resident=%d", tlb.Resident())
	}
	if tlb.Lookup(1 << 20) {
		t.Fatal("LRU page should have been evicted")
	}
	if !tlb.Lookup(100) {
		t.Fatal("MRU page must survive")
	}
}
