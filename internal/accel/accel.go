// Package accel models the RAMBDA cc-accelerator (paper Sec. III-C,
// Fig. 4): a coherence controller with TLB and pinned local cache
// sitting on the cc-interconnect, a round-robin scheduler fed by cpoll
// signals, a table-based FSM tracking up to 256 outstanding requests
// for memory-level parallelism, an application processing unit (APU)
// plug-in interface, and an RDMA SQ handler that drives the NIC
// directly (WQE assembly + doorbells) without CPU involvement.
//
// The same type models all three hardware variants of the paper's
// evaluation: the prototype with no local memory (all data over UPI),
// RAMBDA-LD (2-channel DDR4) and RAMBDA-LH (32-channel HBM2).
package accel

import (
	"fmt"

	"rambda/internal/coherence"
	"rambda/internal/interconnect"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// Config describes an accelerator instance.
type Config struct {
	Name string
	// ClockHz is the fabric clock (400 MHz on the Arria 10 prototype;
	// the paper notes server-class coherence controllers run ~2 GHz).
	ClockHz float64
	// LocalCacheBytes is the coherence-domain local cache (64 KB on the
	// prototype); the direct-mode cpoll region must fit here.
	LocalCacheBytes int
	// MaxOutstanding is the FSM table capacity (256 in the prototype).
	MaxOutstanding int
	// IssueCycles is the controller occupancy, in fabric cycles, to
	// issue one memory operation onto the cc-link. This is the "memory
	// requests have to be issued serially from the FPGA's wimpy
	// coherence controller" bottleneck of Sec. VI-D.
	IssueCycles int
	// ComputeUnits is the number of parallel APU functional units.
	ComputeUnits int
	// ResponseDoorbellBatch amortizes the MMIO doorbell across this
	// many responses (paper Fig. 10: batching doorbells gives RAMBDA
	// ~2x throughput).
	ResponseDoorbellBatch int
	// TLBEntries and PageBytes configure the controller TLB (2 MB huge
	// pages on the prototype). A miss costs a page-table walk in host
	// memory.
	TLBEntries int
	PageBytes  uint64
}

// DefaultConfig returns the paper's prototype configuration.
func DefaultConfig(name string) Config {
	return Config{
		Name:                  name,
		ClockHz:               400e6,
		LocalCacheBytes:       64 << 10,
		MaxOutstanding:        256,
		IssueCycles:           2,
		ComputeUnits:          4,
		ResponseDoorbellBatch: 1,
		TLBEntries:            512,
		PageBytes:             2 << 20,
	}
}

// Accel is one cc-accelerator.
type Accel struct {
	cfg Config

	// issue is the controller's serialization point: one memory
	// operation enters the cc-link per IssueCycles.
	issue *sim.Resource
	// localPipe is the accelerator-local memory controller pipeline
	// (LD/LH variants): local accesses bypass the wimpy cc-link issue
	// stage entirely, which is where the paper's LD/LH gains come from.
	localPipe *sim.Resource
	// compute is the APU's functional-unit pool.
	compute *sim.Resource

	link  *interconnect.CCLink
	host  *memdev.System
	space *memspace.Space
	coh   *coherence.Domain

	// local is accelerator-attached memory; nil on the prototype.
	local *memdev.LocalMem

	tlb *TLB
	fsm *FSMTable

	pinned []memspace.Range // regions held in the local cache
}

// New builds an accelerator attached to a host memory system via the
// cc-link. local may be nil (prototype variant).
func New(cfg Config, link *interconnect.CCLink, host *memdev.System, space *memspace.Space,
	coh *coherence.Domain, local *memdev.LocalMem) *Accel {
	if cfg.ClockHz <= 0 || cfg.IssueCycles <= 0 {
		panic("accel: bad clock configuration")
	}
	if cfg.ComputeUnits <= 0 {
		cfg.ComputeUnits = 1
	}
	if cfg.ResponseDoorbellBatch <= 0 {
		cfg.ResponseDoorbellBatch = 1
	}
	cyc := sim.Duration(float64(sim.Second) / cfg.ClockHz)
	return &Accel{
		cfg:       cfg,
		issue:     sim.NewResource(cfg.Name+":issue", 1, sim.Duration(cfg.IssueCycles)*cyc, 0, 0),
		localPipe: sim.NewResource(cfg.Name+":local-pipe", 1, 3*cyc/2, 0, 0),
		// The compute pool is calibrated in "bytes" of one cycle each:
		// an op of N cycles occupies one functional unit for N/ClockHz.
		compute: sim.NewResource(cfg.Name+":apu", cfg.ComputeUnits, 0, cfg.ClockHz, 0),
		link:    link,
		host:    host,
		space:   space,
		coh:     coh,
		local:   local,
		tlb:     NewTLB(cfg.TLBEntries, cfg.PageBytes),
		fsm:     NewFSMTable(cfg.MaxOutstanding),
	}
}

// Config returns the accelerator's configuration.
func (a *Accel) Config() Config { return a.cfg }

// FSM returns the outstanding-request table.
func (a *Accel) FSM() *FSMTable { return a.fsm }

// TLBStats exposes translation statistics.
func (a *Accel) TLBStats() (hits, misses int64) { return a.tlb.hits, a.tlb.misses }

// HasLocalMemory reports whether this is an LD/LH-style variant.
func (a *Accel) HasLocalMemory() bool { return a.local != nil }

// CycleTime returns one fabric clock period.
func (a *Accel) CycleTime() sim.Duration {
	return sim.Duration(float64(sim.Second) / a.cfg.ClockHz)
}

// Pin records a region as permanently resident in the local cache (the
// framework pins the cpoll region at registration, Sec. III-E). The
// aggregate pinned size must fit the cache.
func (a *Accel) Pin(r memspace.Range) {
	total := r.Size
	for _, p := range a.pinned {
		total += p.Size
	}
	if total > uint64(a.cfg.LocalCacheBytes) {
		panic(fmt.Sprintf("accel: pinning %d B exceeds local cache %d B", total, a.cfg.LocalCacheBytes))
	}
	a.pinned = append(a.pinned, r)
	a.coh.Pin(coherence.AgentAccel, r)
}

func (a *Accel) isPinned(addr memspace.Addr) bool {
	for _, p := range a.pinned {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// translate charges the TLB; a miss walks the page table in host
// memory (four dependent reads).
func (a *Accel) translate(now sim.Time, addr memspace.Addr) sim.Time {
	if a.tlb.Lookup(addr) {
		return now
	}
	// Page tables live in host DRAM regardless of where the data is.
	at := now
	for i := 0; i < 4; i++ {
		at = a.link.Transfer(at, coherence.LineSize)
		at = a.host.DRAM.Access(at, coherence.LineSize)
	}
	a.tlb.Insert(addr)
	return at
}

// Fetch is the cpoll.FetchFunc: the controller issues a read for
// coherence-state data. Pinned lines that the accelerator still owns
// are local-cache hits; invalidated or unpinned lines cross the
// cc-link to the host.
func (a *Accel) Fetch(now sim.Time, addr memspace.Addr, bytes int) sim.Time {
	_, at := a.issue.Acquire(now, 0)
	if a.isPinned(addr) && a.coh.Owned(coherence.AgentAccel, addr) {
		// Local cache hit: one fabric cycle.
		return at + a.CycleTime()
	}
	at = a.translate(at, addr)
	at = a.link.Transfer(at, bytes)
	return a.host.MemRead(at, addr, bytes)
}

// ReadData performs an application data read: local accesses go
// through the accelerator's own memory controller pipeline; host
// accesses go through the cc-link issue stage and the host device.
func (a *Accel) ReadData(now sim.Time, addr memspace.Addr, bytes int) sim.Time {
	if a.local != nil && a.space.KindOf(addr) == memspace.KindAccelLocal {
		_, at := a.localPipe.Acquire(now, 0)
		at = a.translate(at, addr)
		return a.local.Access(at, bytes)
	}
	_, at := a.issue.Acquire(now, 0)
	at = a.translate(at, addr)
	at = a.link.Transfer(at, bytes)
	return a.host.MemRead(at, addr, bytes)
}

// ReadDataBlocking performs a data read during which the coherence
// controller stays occupied for the whole round trip — no overlap with
// other requests. This is the "memory requests have to be issued
// serially from the FPGA's wimpy coherence controller" behaviour the
// paper observes on dense gather loops (Sec. VI-D, also [42]); the
// DLRM APU on the prototype suffers it, while local-memory variants
// use their own pipelined controllers (ReadData).
func (a *Accel) ReadDataBlocking(now sim.Time, addr memspace.Addr, bytes int) sim.Time {
	// Probe when the controller frees up, walk the access from there,
	// then book the controller for the whole window.
	if a.local != nil && a.space.KindOf(addr) == memspace.KindAccelLocal {
		// Local-memory controllers pipeline; blocking semantics only
		// afflict the cc-link path.
		return a.ReadData(now, addr, bytes)
	}
	start := sim.Max(now, a.issue.NextFree())
	at := a.translate(start, addr)
	at = a.link.Transfer(at, bytes)
	at = a.host.MemRead(at, addr, bytes)
	// The controller frees once the response starts streaming back, so
	// the next request overlaps the tail half of this round trip.
	a.issue.Occupy(start, (at-start)/2)
	return at
}

// ReadDataWave issues a wave of independent reads the way the DLRM APU
// does ("we issue 64 memory requests for each query's iteration so that
// the memory bandwidth can be fully utilized", Sec. IV-C): local-memory
// variants pay one pipeline slot for the whole wave and the per-row
// device costs in parallel; the cc-link path cannot sustain wide issue
// (the Sec. VI-D serial-issue bottleneck) and degenerates to blocking
// reads.
func (a *Accel) ReadDataWave(now sim.Time, addrs []memspace.Addr, bytes int) sim.Time {
	if len(addrs) == 0 {
		return now
	}
	if a.local != nil && a.space.KindOf(addrs[0]) == memspace.KindAccelLocal {
		_, at := a.localPipe.Acquire(now, 0)
		at = a.translate(at, addrs[0])
		var last sim.Time
		for range addrs {
			done := a.local.Access(at, bytes)
			if done > last {
				last = done
			}
		}
		return last
	}
	at := now
	for _, addr := range addrs {
		at = a.ReadDataBlocking(at, addr, bytes)
	}
	return at
}

// WriteData performs an application data write (functional + timed) and
// notifies the coherence domain.
func (a *Accel) WriteData(now sim.Time, addr memspace.Addr, data []byte) sim.Time {
	var at sim.Time
	if a.local != nil && a.space.KindOf(addr) == memspace.KindAccelLocal {
		_, at = a.localPipe.Acquire(now, 0)
		at = a.translate(at, addr)
		at = a.local.Access(at, len(data))
	} else {
		_, at = a.issue.Acquire(now, 0)
		at = a.translate(at, addr)
		at = a.link.Transfer(at, len(data))
		at = a.host.MemWrite(at, addr, len(data))
	}
	a.space.Write(addr, data)
	a.coh.Write(coherence.AgentAccel, addr, len(data), at)
	return at
}

// Compute charges `cycles` fabric cycles on one APU functional unit.
func (a *Accel) Compute(now sim.Time, cycles int) sim.Time {
	if cycles <= 0 {
		return now
	}
	_, done := a.compute.Acquire(now, cycles)
	return done
}

// Space returns the unified address space the accelerator operates in.
func (a *Accel) Space() *memspace.Space { return a.space }

// Link exposes the cc-link (for utilization accounting in experiments).
func (a *Accel) Link() *interconnect.CCLink { return a.link }

// IssueResource exposes the controller pipeline (for tests/stats).
func (a *Accel) IssueResource() *sim.Resource { return a.issue }
