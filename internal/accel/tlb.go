package accel

import "rambda/internal/memspace"

// TLB is the coherence controller's translation lookaside buffer
// (paper Fig. 4). The simulation uses a unified physical space, so
// translation is identity; the TLB exists to charge page-walk costs
// with an LRU over huge pages.
type TLB struct {
	entries   int
	pageBytes uint64

	// LRU as a map + monotonically increasing use stamps; sizes are
	// small (hundreds of entries) so eviction scans are cheap.
	stamp map[memspace.Addr]uint64
	clock uint64

	hits, misses int64
}

// NewTLB builds a TLB with the given capacity and page size.
func NewTLB(entries int, pageBytes uint64) *TLB {
	if entries <= 0 {
		entries = 1
	}
	if pageBytes == 0 {
		pageBytes = 2 << 20
	}
	return &TLB{entries: entries, pageBytes: pageBytes, stamp: make(map[memspace.Addr]uint64)}
}

func (t *TLB) page(addr memspace.Addr) memspace.Addr {
	return addr / memspace.Addr(t.pageBytes)
}

// Lookup reports whether addr's page is resident, refreshing LRU state.
func (t *TLB) Lookup(addr memspace.Addr) bool {
	p := t.page(addr)
	if _, ok := t.stamp[p]; ok {
		t.clock++
		t.stamp[p] = t.clock
		t.hits++
		return true
	}
	t.misses++
	return false
}

// Insert fills addr's page, evicting the least recently used entry if
// full.
func (t *TLB) Insert(addr memspace.Addr) {
	p := t.page(addr)
	if len(t.stamp) >= t.entries {
		var victim memspace.Addr
		oldest := ^uint64(0)
		for page, s := range t.stamp {
			if s < oldest {
				oldest, victim = s, page
			}
		}
		delete(t.stamp, victim)
	}
	t.clock++
	t.stamp[p] = t.clock
}

// Resident reports the number of cached translations.
func (t *TLB) Resident() int { return len(t.stamp) }
