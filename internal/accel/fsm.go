package accel

import (
	"fmt"

	"rambda/internal/cuckoo"
)

// FSMTable is the APU's table-based finite state machine for
// outstanding requests (paper Sec. III-C, inspired by stateful
// network-function accelerators): request state is stored in a cuckoo
// hash table — the hardware structure the paper names — so every
// transition is a constant two-bucket probe while many requests are in
// flight out of order.
type FSMTable struct {
	capacity int
	table    *cuckoo.Table[any]

	inserted, completed int64
	peak                int
}

// NewFSMTable builds a table with the given slot count.
func NewFSMTable(capacity int) *FSMTable {
	if capacity <= 0 {
		capacity = 1
	}
	return &FSMTable{capacity: capacity, table: cuckoo.New[any](capacity)}
}

// Capacity returns the slot count.
func (f *FSMTable) Capacity() int { return f.capacity }

// InFlight returns the number of occupied slots.
func (f *FSMTable) InFlight() int { return f.table.Len() }

// Peak returns the maximum concurrent occupancy observed.
func (f *FSMTable) Peak() int { return f.peak }

// TryInsert claims a slot for request id with the given state. It
// returns false when the table is full — either the configured
// outstanding limit or a failed cuckoo path (both stall the scheduler
// in hardware). It panics on duplicate ids.
func (f *FSMTable) TryInsert(id uint64, state any) bool {
	if _, dup := f.table.Lookup(id); dup {
		panic(fmt.Sprintf("accel: duplicate FSM id %d", id))
	}
	if f.table.Len() >= f.capacity {
		return false
	}
	if !f.table.Insert(id, state) {
		return false
	}
	f.inserted++
	if f.table.Len() > f.peak {
		f.peak = f.table.Len()
	}
	return true
}

// Lookup returns the state for id.
func (f *FSMTable) Lookup(id uint64) (any, bool) {
	return f.table.Lookup(id)
}

// Update replaces the state for an in-flight id; it panics when the id
// is unknown (an FSM transition for a request that was never admitted
// is a hardware bug).
func (f *FSMTable) Update(id uint64, state any) {
	if _, ok := f.table.Lookup(id); !ok {
		panic(fmt.Sprintf("accel: FSM update for unknown id %d", id))
	}
	f.table.Insert(id, state)
}

// Complete releases the slot for id.
func (f *FSMTable) Complete(id uint64) {
	if !f.table.Delete(id) {
		panic(fmt.Sprintf("accel: FSM complete for unknown id %d", id))
	}
	f.completed++
}

// Inserted and Completed report lifetime counters.
func (f *FSMTable) Inserted() int64  { return f.inserted }
func (f *FSMTable) Completed() int64 { return f.completed }
