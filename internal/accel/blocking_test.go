package accel

import (
	"testing"

	"rambda/internal/memspace"
	"rambda/internal/sim"
)

func TestReadDataBlockingSerializes(t *testing.T) {
	f, a := newFixture(false)
	// Warm the TLB so the comparison is about the data path.
	a.ReadData(0, f.dram.Base, 64)

	// Pipelined reads: issue occupancy is a few cycles each, so N reads
	// at t=0 complete far sooner than N serial round trips.
	var pipelined sim.Time
	for i := 0; i < 32; i++ {
		done := a.ReadData(0, f.dram.Base+memspace.Addr(i*64), 64)
		if done > pipelined {
			pipelined = done
		}
	}

	f2, a2 := newFixture(false)
	a2.ReadData(0, f2.dram.Base, 64)
	var blocking sim.Time
	for i := 0; i < 32; i++ {
		done := a2.ReadDataBlocking(0, f2.dram.Base+memspace.Addr(i*64), 64)
		if done > blocking {
			blocking = done
		}
	}
	if blocking < 4*pipelined {
		t.Fatalf("blocking reads (%v) must serialize far worse than pipelined (%v)", blocking, pipelined)
	}
	// Each blocking read holds the controller for half a round trip
	// (~100ns), so 32 of them exceed 3us.
	if blocking < 3*sim.Microsecond {
		t.Fatalf("blocking=%v, want >= 3us for 32 serial round trips", blocking)
	}
}

func TestReadDataBlockingLocalMemoryStillFast(t *testing.T) {
	f, a := newFixture(true)
	a.ReadData(0, f.local.Base, 64) // warm TLB
	done := a.ReadDataBlocking(sim.Microsecond, f.local.Base, 256)
	if done-sim.Microsecond > 400*sim.Nanosecond {
		t.Fatalf("local blocking read=%v, should be one local access", done-sim.Microsecond)
	}
}
