package accel

import (
	"rambda/internal/interconnect"
	"rambda/internal/memspace"
	"rambda/internal/rnic"
	"rambda/internal/sim"
)

// SQHandler is the accelerator block that drives the RNIC directly
// (paper Sec. III-C): it assembles response information from the APU
// into WQE format, writes it into the corresponding RDMA connection's
// work queue in host memory (only the WQ base and length are registered
// in the handler, so per-connection state on the accelerator stays
// tiny), and rings the RNIC's doorbell register via MMIO.
//
// SQHandler implements ringbuf.Transport, so a ringbuf.ServerConn whose
// responses should leave through the NIC can use it directly. Doorbell
// MMIO (and its surrounding sfence) is "relatively expensive" from the
// fabric, so the handler batches: one MMIO per Batch responses
// (Fig. 10's RAMBDA batching effect).
type SQHandler struct {
	accel *Accel
	qp    *rnic.QP
	pcie  *interconnect.PCIe // host->NIC direction for doorbells
	// staging is a host-memory region the response payloads are placed
	// in for the NIC to DMA out of (the response data's home).
	staging *memspace.Region

	// Batch is the number of responses amortizing one doorbell MMIO.
	Batch int

	posted int64
	mmio   int64
	wrid   uint64
	slot   int
}

// wqeBytes is the size of one work queue entry the handler writes;
// fenceCycles is how long the post-doorbell sfence stalls the fabric.
const (
	wqeBytes    = 64
	fenceCycles = 30
)

// NewSQHandler builds the handler for one RDMA connection.
func NewSQHandler(a *Accel, qp *rnic.QP, pcie *interconnect.PCIe, staging *memspace.Region, batch int) *SQHandler {
	if batch <= 0 {
		batch = 1
	}
	return &SQHandler{accel: a, qp: qp, pcie: pcie, staging: staging, Batch: batch}
}

// Posted reports responses pushed through the handler.
func (h *SQHandler) Posted() int64 { return h.posted }

// Doorbells reports MMIO doorbell writes issued.
func (h *SQHandler) Doorbells() int64 { return h.mmio }

// Deliver implements ringbuf.Transport: the APU's response bytes are
// staged in host memory, a WQE is assembled and written to the WQ over
// the cc-link, the doorbell is rung (amortized), and the NIC executes
// the one-sided WRITE toward the client.
func (h *SQHandler) Deliver(now sim.Time, entryAddr memspace.Addr, entry []byte, ptrAddr memspace.Addr, ptrVal uint32) sim.Time {
	// Stage the response payload in host memory (rotating slots so
	// concurrent responses don't share a staging line).
	const stagingSlots = 4
	slotSize := int(h.staging.Size) / stagingSlots
	if len(entry) > slotSize {
		panic("accel: response exceeds staging slot")
	}
	base := h.staging.Base + memspace.Addr(h.slot*slotSize)
	h.slot = (h.slot + 1) % stagingSlots
	at := h.accel.WriteData(now, base, entry)

	// Assemble and write the WQE into the WQ (host memory via cc-link).
	at = h.accel.Link().Transfer(at, wqeBytes)
	at = h.accel.host.LLC.Access(at, wqeBytes)

	h.wrid++
	h.qp.PostSend(rnic.WQE{
		Op: rnic.OpWrite, LocalAddr: base, RemoteAddr: entryAddr,
		Len: len(entry), WRID: h.wrid,
	})
	if ptrAddr != 0 {
		panic("accel: pointer-buffer updates flow client->server, not through the SQ handler")
	}

	// Ring the doorbell: a full MMIO + fence every Batch responses; the
	// RNIC prefetches WQEs promptly otherwise. The store fence stalls
	// the fabric's issue pipeline for its duration — the "relatively
	// expensive" cost doorbell batching amortizes (paper Fig. 10's ~2x
	// RAMBDA batching gain).
	h.posted++
	if h.posted%int64(h.Batch) == 0 {
		h.mmio++
		at = h.pcie.MMIOWrite(at)
		_, at = h.accel.IssueResource().Occupy(at, fenceCycles*h.accel.CycleTime())
	}
	results := h.qp.ExecutePosted(at)
	return results[len(results)-1].RemoteVisible
}
