// Package interconnect models the three link types a RAMBDA server
// spans: the PCIe link between the RNIC and the host (with TLP framing
// and the TPH header bit used by adaptive DDIO), the cache-coherent
// off-chip interconnect (UPI on the paper's prototype, CXL in its
// future-platform projection), and the datacenter Ethernet/RoCE link.
package interconnect

import (
	"fmt"

	"rambda/internal/fault"
	"rambda/internal/obs"
	"rambda/internal/sim"
)

// PCIe models one direction of a PCIe endpoint's link. DMA transfers
// are split into TLPs with per-packet header overhead; MMIO writes
// (doorbells) are small posted writes with high effective latency.
type PCIe struct {
	res *sim.Resource

	// TLPHeader is the per-packet framing overhead in bytes (PCIe
	// TLP header + DLLP/framing, ~24 B for a 3-DW header with ECRC).
	TLPHeader int
	// MaxPayload is the maximum TLP payload (256 B on the modeled
	// platform).
	MaxPayload int
	// MMIOCost is the end-to-end latency of an uncached MMIO register
	// write including the surrounding store fence.
	MMIOCost sim.Duration
}

// NewPCIe builds one PCIe direction with the given bandwidth and
// propagation latency.
func NewPCIe(name string, bytesPerSec float64, propagation sim.Duration, mmioCost sim.Duration) *PCIe {
	return &PCIe{
		res:        sim.NewResource(name, 1, 0, bytesPerSec, propagation),
		TLPHeader:  24,
		MaxPayload: 256,
		MMIOCost:   mmioCost,
	}
}

// packets returns the number of TLPs needed for a payload.
func (p *PCIe) packets(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + p.MaxPayload - 1) / p.MaxPayload
}

// DMA schedules a DMA transfer of `bytes` across the link, returning
// the time the last TLP arrives.
func (p *PCIe) DMA(now sim.Time, bytes int) sim.Time {
	wire := bytes + p.packets(bytes)*p.TLPHeader
	_, done := p.res.Acquire(now, wire)
	return done
}

// MMIOWrite schedules a doorbell/register write (a small posted write
// whose cost is dominated by ordering fences and the non-posted-like
// serialization at the device).
func (p *PCIe) MMIOWrite(now sim.Time) sim.Time {
	_, done := p.res.Acquire(now, p.TLPHeader+8)
	return done + p.MMIOCost
}

// Resource exposes the underlying link queue.
func (p *PCIe) Resource() *sim.Resource { return p.res }

// MinLatency returns the minimum time any transfer spends on the link:
// propagation plus the serialization of the smallest frame (one bare
// TLP header). This is the conservative lookahead a partitioned engine
// may rely on across this link — queueing and payload only push
// arrivals later.
func (p *PCIe) MinLatency() sim.Duration {
	return p.res.Propagation() + p.res.ServiceTime(p.TLPHeader)
}

// TLP is a single PCIe packet as seen by the adaptive-DDIO logic: the
// only field the mechanism reads is the TPH bit (paper Sec. III-D: "the
// 16th bit in the PCIe header").
type TLP struct {
	TPH     bool
	Payload int
}

// CCLink models the cache-coherent interconnect between the CPU and the
// cc-accelerator (one UPI link at 10.4 GT/s ≈ 20.8 GB/s on the
// prototype). Transfers move whole 64 B cachelines; the per-transfer
// propagation is the cross-socket coherence hop latency.
type CCLink struct {
	res *sim.Resource
}

// NewCCLink builds the cc-link with aggregate bandwidth and hop
// latency.
func NewCCLink(name string, bytesPerSec float64, hop sim.Duration) *CCLink {
	return &CCLink{res: sim.NewResource(name, 1, 0, bytesPerSec, hop)}
}

// Transfer schedules a cacheline-granular transfer and returns its
// arrival time.
func (l *CCLink) Transfer(now sim.Time, bytes int) sim.Time {
	lines := (bytes + 63) / 64
	if lines < 1 {
		lines = 1
	}
	_, done := l.res.Acquire(now, lines*64)
	return done
}

// Resource exposes the underlying link queue.
func (l *CCLink) Resource() *sim.Resource { return l.res }

// MinLatency returns the minimum time any transfer spends on the link:
// the coherence hop plus one cacheline's serialization — the
// conservative lookahead across a cc-link partition boundary.
func (l *CCLink) MinLatency() sim.Duration {
	return l.res.Propagation() + l.res.ServiceTime(64)
}

// NetLink models one direction of the datacenter network path between
// two machines: an Ethernet/RoCEv2 link with per-packet header
// overhead and one-way propagation (half the base RTT, including switch
// and NIC pipeline latency).
//
// Failure injection comes in two flavours. The legacy InjectLoss knob
// enables a self-healing loss process inside Send (lost packets are
// retransmitted by the link after a timeout, so delivery stays reliable
// while tail latency inflates). The richer path is a fault.Plan rule
// attached with AttachFaults: Transmit consults the plan per packet and
// reports drops/corruption/duplication to the caller, so a reliability
// layer above (the RC queue pair in internal/rnic) can do real
// timeout-driven retransmission with backoff.
type NetLink struct {
	res  *sim.Resource
	name string

	// HeaderBytes is the per-packet wire overhead (Ethernet + IP + UDP
	// + BTH + ICRC + preamble/IFG ≈ 90 B for RoCEv2).
	HeaderBytes int
	// MTU is the maximum payload per packet.
	MTU int

	lossRate float64
	rto      sim.Duration
	rng      *sim.RNG
	lost     int64

	// fi is the link's fault process; nil (the common case) is the
	// allocation-free clean fast path.
	fi *fault.LinkInjector

	// tr, when attached, records one StageWire span per Transmit; nil
	// (the common case) is the uninstrumented fast path, same pattern
	// as fi.
	tr *obs.Trace
}

// NewNetLink builds one network direction with the given wire bandwidth
// and one-way latency.
func NewNetLink(name string, bytesPerSec float64, oneWay sim.Duration) *NetLink {
	return &NetLink{
		res:         sim.NewResource(name, 1, 0, bytesPerSec, oneWay),
		name:        name,
		HeaderBytes: 90,
		MTU:         4096,
	}
}

// Name returns the link name used for fault-plan matching.
func (n *NetLink) Name() string { return n.name }

// AttachFaults binds the link to its rule in the instantiated plan (a
// no-op when the plan has no rule for this link name).
func (n *NetLink) AttachFaults(inj *fault.Injector) {
	n.fi = inj.Link(n.name)
}

// Faults returns the link's fault injector (nil when clean) so
// transports can report loss statistics.
func (n *NetLink) Faults() *fault.LinkInjector { return n.fi }

// SetTrace attaches (or with nil detaches) a span recorder; each
// Transmit then records a StageWire span named after the link. The
// link name is interned at construction, so recording allocates
// nothing.
func (n *NetLink) SetTrace(tr *obs.Trace) { n.tr = tr }

// InjectLoss enables the loss process: each transmission attempt drops
// with probability rate and is retried after rto.
func (n *NetLink) InjectLoss(rate float64, rto sim.Duration, seed uint64) {
	if rate < 0 || rate >= 1 {
		panic("interconnect: loss rate must be in [0, 1)")
	}
	n.lossRate = rate
	n.rto = rto
	n.rng = sim.NewRNG(seed)
}

// Lost reports dropped transmission attempts.
func (n *NetLink) Lost() int64 { return n.lost }

// Outcome reports the fate of one Transmit: when the last packet's
// wire time ended, and what the fault plan did to the burst. Arrive is
// meaningful even for dropped bursts (the attempt occupied the wire);
// delivery happened only when neither Dropped nor Corrupted is set —
// a corrupted burst reaches the far end but fails the receiver's ICRC
// check, so a reliable transport treats it exactly like a loss.
type Outcome struct {
	Arrive     sim.Time
	Dropped    bool
	Corrupted  bool
	Duplicates int
}

// Transmit schedules a message of `bytes` payload, consulting the fault
// plan once per packet, and reports the outcome to the caller. This is
// the primitive for transports that own their reliability (the RC queue
// pair): a drop is NOT retried here. With no fault rule attached the
// call reduces to exactly one resource acquisition — the clean path
// allocates nothing and draws no randomness.
func (n *NetLink) Transmit(now sim.Time, bytes int) Outcome {
	if bytes < 0 {
		bytes = 0
	}
	pkts := 1
	if bytes > 0 {
		pkts = (bytes + n.MTU - 1) / n.MTU
	}
	wire := bytes + pkts*n.HeaderBytes
	_, done := n.res.Acquire(now, wire)
	out := Outcome{Arrive: done}
	if n.fi != nil {
		var spike sim.Duration
		for p := 0; p < pkts; p++ {
			d := n.fi.Decide()
			if d.Drop {
				out.Dropped = true
				continue
			}
			if d.Corrupt {
				out.Corrupted = true
			}
			if d.Duplicate {
				out.Duplicates++
			}
			if d.Delay > spike {
				spike = d.Delay
			}
		}
		// Duplicated packets burn extra wire occupancy; the receiver's
		// PSN check discards them, so they only cost time.
		for i := 0; i < out.Duplicates; i++ {
			pkt := bytes
			if pkt > n.MTU {
				pkt = n.MTU
			}
			_, done = n.res.Acquire(done, pkt+n.HeaderBytes)
		}
		// The message lands when its slowest packet does.
		out.Arrive = done + spike
	}
	// Legacy InjectLoss process: one draw per transmission attempt
	// (whole-message, matching the original Send semantics).
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		out.Dropped = true
	}
	if n.tr != nil {
		n.tr.Span(n.name, obs.StageWire, now, out.Arrive)
	}
	return out
}

// sendRedeliverCap bounds the link-level redelivery loop for Send
// callers without their own transport; a plan that drops every packet
// on such a link is a configuration error, not a simulation state.
const sendRedeliverCap = 64

// defaultRedeliver is the link-level retransmission timeout used by
// Send when the caller enabled a fault plan but never configured an RTO
// via InjectLoss.
const defaultRedeliver = 20 * sim.Microsecond

// Send schedules a message of `bytes` payload and returns its arrival
// time at the far end. Delivery is reliable at link level: fault-plan
// drops (and corruption, which the receiver's ICRC discards) are
// redelivered after a timeout, as is the legacy InjectLoss process —
// use Transmit to see losses instead of absorbing them.
func (n *NetLink) Send(now sim.Time, bytes int) sim.Time {
	if bytes < 0 {
		bytes = 0
	}
	out := n.Transmit(now, bytes)
	done := out.Arrive
	for attempt := 0; out.Dropped || out.Corrupted; attempt++ {
		if attempt >= sendRedeliverCap {
			panic(fmt.Sprintf("interconnect: link %q dropped %d consecutive redeliveries — fault plan starves Send callers", n.name, attempt))
		}
		n.lost++
		rto := n.rto
		if rto <= 0 {
			rto = defaultRedeliver
		}
		out = n.Transmit(done+rto, bytes)
		done = out.Arrive
	}
	return done
}

// Resource exposes the underlying link queue.
func (n *NetLink) Resource() *sim.Resource { return n.res }

// MinLatency returns the minimum time any message spends on the wire:
// one-way propagation plus the serialization of the smallest packet
// (just the per-packet header). Every Transmit/Send arrival satisfies
// arrive >= now + MinLatency — queueing, payload bytes, fault-plan
// delays, and redelivery only push it later — so this is the
// conservative lookahead for a partition cut along this direction.
func (n *NetLink) MinLatency() sim.Duration {
	return n.res.Propagation() + n.res.ServiceTime(n.HeaderBytes)
}

// Duplex couples the two directions of a point-to-point network path.
type Duplex struct {
	AtoB *NetLink
	BtoA *NetLink
}

// NewDuplex builds a symmetric duplex path.
func NewDuplex(name string, bytesPerSec float64, oneWay sim.Duration) *Duplex {
	return &Duplex{
		AtoB: NewNetLink(name+":a->b", bytesPerSec, oneWay),
		BtoA: NewNetLink(name+":b->a", bytesPerSec, oneWay),
	}
}

// AttachFaults binds both directions to their rules in the plan.
func (d *Duplex) AttachFaults(inj *fault.Injector) {
	d.AtoB.AttachFaults(inj)
	d.BtoA.AttachFaults(inj)
}

// Lookahead returns the conservative cross-partition lookahead of the
// path: the smaller of the two directions' minimum wire latencies.
func (d *Duplex) Lookahead() sim.Duration {
	a, b := d.AtoB.MinLatency(), d.BtoA.MinLatency()
	if b < a {
		return b
	}
	return a
}
