// Package interconnect models the three link types a RAMBDA server
// spans: the PCIe link between the RNIC and the host (with TLP framing
// and the TPH header bit used by adaptive DDIO), the cache-coherent
// off-chip interconnect (UPI on the paper's prototype, CXL in its
// future-platform projection), and the datacenter Ethernet/RoCE link.
package interconnect

import "rambda/internal/sim"

// PCIe models one direction of a PCIe endpoint's link. DMA transfers
// are split into TLPs with per-packet header overhead; MMIO writes
// (doorbells) are small posted writes with high effective latency.
type PCIe struct {
	res *sim.Resource

	// TLPHeader is the per-packet framing overhead in bytes (PCIe
	// TLP header + DLLP/framing, ~24 B for a 3-DW header with ECRC).
	TLPHeader int
	// MaxPayload is the maximum TLP payload (256 B on the modeled
	// platform).
	MaxPayload int
	// MMIOCost is the end-to-end latency of an uncached MMIO register
	// write including the surrounding store fence.
	MMIOCost sim.Duration
}

// NewPCIe builds one PCIe direction with the given bandwidth and
// propagation latency.
func NewPCIe(name string, bytesPerSec float64, propagation sim.Duration, mmioCost sim.Duration) *PCIe {
	return &PCIe{
		res:        sim.NewResource(name, 1, 0, bytesPerSec, propagation),
		TLPHeader:  24,
		MaxPayload: 256,
		MMIOCost:   mmioCost,
	}
}

// packets returns the number of TLPs needed for a payload.
func (p *PCIe) packets(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + p.MaxPayload - 1) / p.MaxPayload
}

// DMA schedules a DMA transfer of `bytes` across the link, returning
// the time the last TLP arrives.
func (p *PCIe) DMA(now sim.Time, bytes int) sim.Time {
	wire := bytes + p.packets(bytes)*p.TLPHeader
	_, done := p.res.Acquire(now, wire)
	return done
}

// MMIOWrite schedules a doorbell/register write (a small posted write
// whose cost is dominated by ordering fences and the non-posted-like
// serialization at the device).
func (p *PCIe) MMIOWrite(now sim.Time) sim.Time {
	_, done := p.res.Acquire(now, p.TLPHeader+8)
	return done + p.MMIOCost
}

// Resource exposes the underlying link queue.
func (p *PCIe) Resource() *sim.Resource { return p.res }

// TLP is a single PCIe packet as seen by the adaptive-DDIO logic: the
// only field the mechanism reads is the TPH bit (paper Sec. III-D: "the
// 16th bit in the PCIe header").
type TLP struct {
	TPH     bool
	Payload int
}

// CCLink models the cache-coherent interconnect between the CPU and the
// cc-accelerator (one UPI link at 10.4 GT/s ≈ 20.8 GB/s on the
// prototype). Transfers move whole 64 B cachelines; the per-transfer
// propagation is the cross-socket coherence hop latency.
type CCLink struct {
	res *sim.Resource
}

// NewCCLink builds the cc-link with aggregate bandwidth and hop
// latency.
func NewCCLink(name string, bytesPerSec float64, hop sim.Duration) *CCLink {
	return &CCLink{res: sim.NewResource(name, 1, 0, bytesPerSec, hop)}
}

// Transfer schedules a cacheline-granular transfer and returns its
// arrival time.
func (l *CCLink) Transfer(now sim.Time, bytes int) sim.Time {
	lines := (bytes + 63) / 64
	if lines < 1 {
		lines = 1
	}
	_, done := l.res.Acquire(now, lines*64)
	return done
}

// Resource exposes the underlying link queue.
func (l *CCLink) Resource() *sim.Resource { return l.res }

// NetLink models one direction of the datacenter network path between
// two machines: an Ethernet/RoCEv2 link with per-packet header
// overhead and one-way propagation (half the base RTT, including switch
// and NIC pipeline latency).
//
// For failure injection, a deterministic loss process can be enabled
// with InjectLoss: lost packets are retransmitted by the RC transport
// after a retransmission timeout, so delivery stays reliable (the RDMA
// guarantee) while tail latency inflates — the behaviour congested or
// lossy RoCE fabrics exhibit.
type NetLink struct {
	res *sim.Resource

	// HeaderBytes is the per-packet wire overhead (Ethernet + IP + UDP
	// + BTH + ICRC + preamble/IFG ≈ 90 B for RoCEv2).
	HeaderBytes int
	// MTU is the maximum payload per packet.
	MTU int

	lossRate float64
	rto      sim.Duration
	rng      *sim.RNG
	lost     int64
}

// NewNetLink builds one network direction with the given wire bandwidth
// and one-way latency.
func NewNetLink(name string, bytesPerSec float64, oneWay sim.Duration) *NetLink {
	return &NetLink{
		res:         sim.NewResource(name, 1, 0, bytesPerSec, oneWay),
		HeaderBytes: 90,
		MTU:         4096,
	}
}

// InjectLoss enables the loss process: each transmission attempt drops
// with probability rate and is retried after rto.
func (n *NetLink) InjectLoss(rate float64, rto sim.Duration, seed uint64) {
	if rate < 0 || rate >= 1 {
		panic("interconnect: loss rate must be in [0, 1)")
	}
	n.lossRate = rate
	n.rto = rto
	n.rng = sim.NewRNG(seed)
}

// Lost reports dropped transmission attempts.
func (n *NetLink) Lost() int64 { return n.lost }

// Send schedules a message of `bytes` payload and returns its arrival
// time at the far end.
func (n *NetLink) Send(now sim.Time, bytes int) sim.Time {
	if bytes < 0 {
		bytes = 0
	}
	pkts := 1
	if bytes > 0 {
		pkts = (bytes + n.MTU - 1) / n.MTU
	}
	wire := bytes + pkts*n.HeaderBytes
	_, done := n.res.Acquire(now, wire)
	for n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		// The attempt burned wire time but never arrived; the RC
		// transport retransmits after the timeout.
		n.lost++
		_, done = n.res.Acquire(done+n.rto, wire)
	}
	return done
}

// Resource exposes the underlying link queue.
func (n *NetLink) Resource() *sim.Resource { return n.res }

// Duplex couples the two directions of a point-to-point network path.
type Duplex struct {
	AtoB *NetLink
	BtoA *NetLink
}

// NewDuplex builds a symmetric duplex path.
func NewDuplex(name string, bytesPerSec float64, oneWay sim.Duration) *Duplex {
	return &Duplex{
		AtoB: NewNetLink(name+":a->b", bytesPerSec, oneWay),
		BtoA: NewNetLink(name+":b->a", bytesPerSec, oneWay),
	}
}
