package interconnect

import (
	"testing"
	"testing/quick"

	"rambda/internal/fault"
	"rambda/internal/sim"
)

func TestPCIeDMAFraming(t *testing.T) {
	// 1 GB/s, no propagation: 256B payload + 24B header = 280 wire bytes
	// = 280ns.
	p := NewPCIe("pcie", 1e9, 0, 0)
	done := p.DMA(0, 256)
	if done != 280*sim.Nanosecond {
		t.Fatalf("done=%v, want 280ns", done)
	}
	// 257B => 2 TLPs => 257 + 48 header bytes.
	p2 := NewPCIe("pcie", 1e9, 0, 0)
	done = p2.DMA(0, 257)
	if done != 305*sim.Nanosecond {
		t.Fatalf("done=%v, want 305ns", done)
	}
}

func TestPCIePropagationAndMMIO(t *testing.T) {
	p := NewPCIe("pcie", 16e9, 300*sim.Nanosecond, 400*sim.Nanosecond)
	done := p.DMA(0, 64)
	if done <= 300*sim.Nanosecond {
		t.Fatalf("DMA must include propagation, got %v", done)
	}
	m := p.MMIOWrite(0)
	if m < 400*sim.Nanosecond {
		t.Fatalf("MMIO must include fence cost, got %v", m)
	}
}

func TestCCLinkCachelineGranularity(t *testing.T) {
	l := NewCCLink("upi", 20.8e9, 100*sim.Nanosecond)
	// A 4-byte pointer-buffer update still moves a whole line.
	l.Transfer(0, 4)
	if l.Resource().Bytes() != 64 {
		t.Fatalf("charged %d bytes, want 64", l.Resource().Bytes())
	}
	l.Transfer(0, 65)
	if l.Resource().Bytes() != 64+128 {
		t.Fatalf("charged %d bytes, want 192 total", l.Resource().Bytes())
	}
}

func TestCCLinkBandwidthCeiling(t *testing.T) {
	l := NewCCLink("upi", 20.8e9, 0)
	var done sim.Time
	const n = 10000
	for i := 0; i < n; i++ {
		done = l.Transfer(done, 64)
	}
	gbps := float64(n*64) / done.Seconds() / 1e9
	if gbps < 20.5 || gbps > 21.1 {
		t.Fatalf("achieved %.2f GB/s, want ~20.8", gbps)
	}
}

func TestNetLinkPacketization(t *testing.T) {
	n := NewNetLink("net", 1e9, 0)
	// 100B payload: 1 packet, 190 wire bytes => 190ns at 1GB/s.
	done := n.Send(0, 100)
	if done != 190*sim.Nanosecond {
		t.Fatalf("done=%v, want 190ns", done)
	}
	// 5000B: 2 packets.
	n2 := NewNetLink("net", 1e9, 0)
	done = n2.Send(0, 5000)
	if done != 5180*sim.Nanosecond {
		t.Fatalf("done=%v, want 5180ns", done)
	}
	// Zero-byte message still costs a header.
	n3 := NewNetLink("net", 1e9, 0)
	if got := n3.Send(0, 0); got != 90*sim.Nanosecond {
		t.Fatalf("empty send=%v, want 90ns", got)
	}
}

func TestNetLinkOneWayLatency(t *testing.T) {
	n := NewNetLink("net", 3.125e9, 2*sim.Microsecond) // 25 Gbps
	done := n.Send(0, 64)
	if done < 2*sim.Microsecond || done > 3*sim.Microsecond {
		t.Fatalf("one-way=%v, want ~2us", done)
	}
}

func TestDuplexIndependentDirections(t *testing.T) {
	d := NewDuplex("net", 1e9, 0)
	// Saturating a->b must not delay b->a.
	var last sim.Time
	for i := 0; i < 100; i++ {
		last = d.AtoB.Send(0, 4096)
	}
	back := d.BtoA.Send(0, 64)
	if back >= last {
		t.Fatal("reverse direction must be independent")
	}
}

func TestPCIeDMAMonotoneInBytes(t *testing.T) {
	f := func(a, b uint16) bool {
		small, big := int(a), int(b)
		if small > big {
			small, big = big, small
		}
		p1 := NewPCIe("p", 16e9, 300*sim.Nanosecond, 0)
		p2 := NewPCIe("p", 16e9, 300*sim.Nanosecond, 0)
		return p1.DMA(0, small) <= p2.DMA(0, big)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLossInjectionRetransmits(t *testing.T) {
	n := NewNetLink("lossy", 3.125e9, 1500*sim.Nanosecond)
	n.InjectLoss(0.3, 10*sim.Microsecond, 1)
	var worst sim.Time
	var clean int
	for i := 0; i < 500; i++ {
		done := n.Send(sim.Time(i)*50*sim.Microsecond, 64)
		lat := done - sim.Time(i)*50*sim.Microsecond
		if lat > worst {
			worst = lat
		}
		if lat < 2*sim.Microsecond {
			clean++
		}
	}
	if n.Lost() == 0 {
		t.Fatal("no losses at 30% rate")
	}
	// Retransmissions must show up as >= RTO tail inflation.
	if worst < 10*sim.Microsecond {
		t.Fatalf("worst=%v, want >= one RTO", worst)
	}
	// Most packets still arrive clean.
	if clean < 250 {
		t.Fatalf("clean=%d of 500, want majority", clean)
	}
}

func TestLossInjectionValidation(t *testing.T) {
	n := NewNetLink("l", 1e9, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("rate 1.0 must panic")
		}
	}()
	n.InjectLoss(1.0, sim.Microsecond, 1)
}

func TestLossFreeLinkUnchanged(t *testing.T) {
	a := NewNetLink("a", 1e9, 0)
	b := NewNetLink("b", 1e9, 0)
	b.InjectLoss(0, sim.Microsecond, 1)
	if a.Send(0, 100) != b.Send(0, 100) {
		t.Fatal("zero loss rate must not change timing")
	}
}

func TestTransmitCleanMatchesSend(t *testing.T) {
	a := NewNetLink("clean-a", 3.125e9, 2*sim.Microsecond)
	b := NewNetLink("clean-b", 3.125e9, 2*sim.Microsecond)
	for _, bytes := range []int{0, 64, 4096, 70000} {
		out := a.Transmit(0, bytes)
		if out.Dropped || out.Corrupted || out.Duplicates != 0 {
			t.Fatalf("clean transmit perturbed: %+v", out)
		}
		if got := b.Send(0, bytes); got != out.Arrive {
			t.Fatalf("Transmit(%d)=%v, Send=%v — clean paths must agree", bytes, out.Arrive, got)
		}
	}
}

func TestTransmitConsultsPlanPerPacket(t *testing.T) {
	inj := fault.New(fault.Plan{Seed: 5, Links: []fault.LinkRule{
		{Link: "faulty", Drop: 0.5},
	}})
	n := NewNetLink("faulty", 1e9, 0)
	n.AttachFaults(inj)
	// 10 MTUs per transmit => 10 per-packet draws each.
	const msgs, pktsPer = 200, 10
	dropped := 0
	for i := 0; i < msgs; i++ {
		if n.Transmit(sim.Time(i)*sim.Millisecond, pktsPer*4096).Dropped {
			dropped++
		}
	}
	st := n.Faults().Stats()
	if st.Packets != msgs*pktsPer {
		t.Fatalf("per-packet draws=%d, want %d", st.Packets, msgs*pktsPer)
	}
	// At 50% per packet essentially every 10-packet burst loses one.
	if dropped < msgs*9/10 {
		t.Fatalf("dropped bursts=%d of %d", dropped, msgs)
	}
}

func TestTransmitDuplicatesAndSpikesCostTime(t *testing.T) {
	mk := func(rule fault.LinkRule) *NetLink {
		rule.Link = "l"
		n := NewNetLink("l", 1e9, 0)
		n.AttachFaults(fault.New(fault.Plan{Seed: 9, Links: []fault.LinkRule{rule}}))
		return n
	}
	clean := NewNetLink("l", 1e9, 0)
	base := clean.Transmit(0, 1000).Arrive

	dup := mk(fault.LinkRule{Duplicate: 1.0})
	if out := dup.Transmit(0, 1000); out.Duplicates != 1 || out.Arrive <= base {
		t.Fatalf("duplicate outcome %+v, base %v", out, base)
	}
	spiky := mk(fault.LinkRule{DelaySpike: 1.0, Spike: 30 * sim.Microsecond})
	if out := spiky.Transmit(0, 1000); out.Arrive < base+30*sim.Microsecond {
		t.Fatalf("spike not applied: %v vs base %v", out.Arrive, base)
	}
}

func TestSendSelfHealsPlanDrops(t *testing.T) {
	n := NewNetLink("heal", 1e9, 0)
	n.AttachFaults(fault.New(fault.Plan{Seed: 2, Links: []fault.LinkRule{
		{Link: "heal", Drop: 0.4},
	}}))
	var worst sim.Time
	for i := 0; i < 300; i++ {
		at := sim.Time(i) * 100 * sim.Microsecond
		lat := n.Send(at, 64) - at
		if lat > worst {
			worst = lat
		}
	}
	if n.Lost() == 0 {
		t.Fatal("no redeliveries at 40% drop")
	}
	if worst < 20*sim.Microsecond {
		t.Fatalf("worst=%v, want >= one redelivery timeout", worst)
	}
}

func TestAttachFaultsNoRuleKeepsNilFastPath(t *testing.T) {
	n := NewNetLink("unlisted", 1e9, 0)
	n.AttachFaults(fault.New(fault.Plan{Seed: 1, Links: []fault.LinkRule{
		{Link: "other", Drop: 0.9},
	}}))
	if n.Faults() != nil {
		t.Fatal("link without a rule must keep the nil injector")
	}
	clean := NewNetLink("unlisted", 1e9, 0)
	if n.Send(0, 5000) != clean.Send(0, 5000) {
		t.Fatal("unlisted link timing changed")
	}
}
