package interconnect

import (
	"testing"
	"testing/quick"

	"rambda/internal/sim"
)

func TestPCIeDMAFraming(t *testing.T) {
	// 1 GB/s, no propagation: 256B payload + 24B header = 280 wire bytes
	// = 280ns.
	p := NewPCIe("pcie", 1e9, 0, 0)
	done := p.DMA(0, 256)
	if done != 280*sim.Nanosecond {
		t.Fatalf("done=%v, want 280ns", done)
	}
	// 257B => 2 TLPs => 257 + 48 header bytes.
	p2 := NewPCIe("pcie", 1e9, 0, 0)
	done = p2.DMA(0, 257)
	if done != 305*sim.Nanosecond {
		t.Fatalf("done=%v, want 305ns", done)
	}
}

func TestPCIePropagationAndMMIO(t *testing.T) {
	p := NewPCIe("pcie", 16e9, 300*sim.Nanosecond, 400*sim.Nanosecond)
	done := p.DMA(0, 64)
	if done <= 300*sim.Nanosecond {
		t.Fatalf("DMA must include propagation, got %v", done)
	}
	m := p.MMIOWrite(0)
	if m < 400*sim.Nanosecond {
		t.Fatalf("MMIO must include fence cost, got %v", m)
	}
}

func TestCCLinkCachelineGranularity(t *testing.T) {
	l := NewCCLink("upi", 20.8e9, 100*sim.Nanosecond)
	// A 4-byte pointer-buffer update still moves a whole line.
	l.Transfer(0, 4)
	if l.Resource().Bytes() != 64 {
		t.Fatalf("charged %d bytes, want 64", l.Resource().Bytes())
	}
	l.Transfer(0, 65)
	if l.Resource().Bytes() != 64+128 {
		t.Fatalf("charged %d bytes, want 192 total", l.Resource().Bytes())
	}
}

func TestCCLinkBandwidthCeiling(t *testing.T) {
	l := NewCCLink("upi", 20.8e9, 0)
	var done sim.Time
	const n = 10000
	for i := 0; i < n; i++ {
		done = l.Transfer(done, 64)
	}
	gbps := float64(n*64) / done.Seconds() / 1e9
	if gbps < 20.5 || gbps > 21.1 {
		t.Fatalf("achieved %.2f GB/s, want ~20.8", gbps)
	}
}

func TestNetLinkPacketization(t *testing.T) {
	n := NewNetLink("net", 1e9, 0)
	// 100B payload: 1 packet, 190 wire bytes => 190ns at 1GB/s.
	done := n.Send(0, 100)
	if done != 190*sim.Nanosecond {
		t.Fatalf("done=%v, want 190ns", done)
	}
	// 5000B: 2 packets.
	n2 := NewNetLink("net", 1e9, 0)
	done = n2.Send(0, 5000)
	if done != 5180*sim.Nanosecond {
		t.Fatalf("done=%v, want 5180ns", done)
	}
	// Zero-byte message still costs a header.
	n3 := NewNetLink("net", 1e9, 0)
	if got := n3.Send(0, 0); got != 90*sim.Nanosecond {
		t.Fatalf("empty send=%v, want 90ns", got)
	}
}

func TestNetLinkOneWayLatency(t *testing.T) {
	n := NewNetLink("net", 3.125e9, 2*sim.Microsecond) // 25 Gbps
	done := n.Send(0, 64)
	if done < 2*sim.Microsecond || done > 3*sim.Microsecond {
		t.Fatalf("one-way=%v, want ~2us", done)
	}
}

func TestDuplexIndependentDirections(t *testing.T) {
	d := NewDuplex("net", 1e9, 0)
	// Saturating a->b must not delay b->a.
	var last sim.Time
	for i := 0; i < 100; i++ {
		last = d.AtoB.Send(0, 4096)
	}
	back := d.BtoA.Send(0, 64)
	if back >= last {
		t.Fatal("reverse direction must be independent")
	}
}

func TestPCIeDMAMonotoneInBytes(t *testing.T) {
	f := func(a, b uint16) bool {
		small, big := int(a), int(b)
		if small > big {
			small, big = big, small
		}
		p1 := NewPCIe("p", 16e9, 300*sim.Nanosecond, 0)
		p2 := NewPCIe("p", 16e9, 300*sim.Nanosecond, 0)
		return p1.DMA(0, small) <= p2.DMA(0, big)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLossInjectionRetransmits(t *testing.T) {
	n := NewNetLink("lossy", 3.125e9, 1500*sim.Nanosecond)
	n.InjectLoss(0.3, 10*sim.Microsecond, 1)
	var worst sim.Time
	var clean int
	for i := 0; i < 500; i++ {
		done := n.Send(sim.Time(i)*50*sim.Microsecond, 64)
		lat := done - sim.Time(i)*50*sim.Microsecond
		if lat > worst {
			worst = lat
		}
		if lat < 2*sim.Microsecond {
			clean++
		}
	}
	if n.Lost() == 0 {
		t.Fatal("no losses at 30% rate")
	}
	// Retransmissions must show up as >= RTO tail inflation.
	if worst < 10*sim.Microsecond {
		t.Fatalf("worst=%v, want >= one RTO", worst)
	}
	// Most packets still arrive clean.
	if clean < 250 {
		t.Fatalf("clean=%d of 500, want majority", clean)
	}
}

func TestLossInjectionValidation(t *testing.T) {
	n := NewNetLink("l", 1e9, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("rate 1.0 must panic")
		}
	}()
	n.InjectLoss(1.0, sim.Microsecond, 1)
}

func TestLossFreeLinkUnchanged(t *testing.T) {
	a := NewNetLink("a", 1e9, 0)
	b := NewNetLink("b", 1e9, 0)
	b.InjectLoss(0, sim.Microsecond, 1)
	if a.Send(0, 100) != b.Send(0, 100) {
		t.Fatal("zero loss rate must not change timing")
	}
}
