package rnic

import (
	"encoding/binary"
	"testing"

	"rambda/internal/sim"
)

func TestFetchAdd(t *testing.T) {
	a, b, qa, _ := newPair(t)
	target := b.dram.Base + 8
	var init [8]byte
	binary.LittleEndian.PutUint64(init[:], 100)
	b.space.Write(target, init[:])

	qa.PostSend(WQE{Op: OpFetchAdd, LocalAddr: a.dram.Base, RemoteAddr: target, Add: 42})
	res := qa.Doorbell(0)
	// Remote word updated.
	got := make([]byte, 8)
	b.space.Read(target, got)
	if binary.LittleEndian.Uint64(got) != 142 {
		t.Fatalf("remote=%d, want 142", binary.LittleEndian.Uint64(got))
	}
	// Original value returned locally.
	a.space.Read(a.dram.Base, got)
	if binary.LittleEndian.Uint64(got) != 100 {
		t.Fatalf("returned=%d, want 100", binary.LittleEndian.Uint64(got))
	}
	// Atomic needs a full network round trip.
	if res[0].RemoteVisible < 4*sim.Microsecond {
		t.Fatalf("atomic done=%v, needs a round trip", res[0].RemoteVisible)
	}
	if qa.Stats().Atomics != 1 {
		t.Fatal("atomic not counted")
	}
}

func TestCompSwap(t *testing.T) {
	a, b, qa, _ := newPair(t)
	target := b.dram.Base + 16
	var init [8]byte
	binary.LittleEndian.PutUint64(init[:], 7)
	b.space.Write(target, init[:])

	// Matching compare: swap happens, original returned.
	qa.PostSend(WQE{Op: OpCompSwap, LocalAddr: a.dram.Base, RemoteAddr: target, Compare: 7, Swap: 99})
	qa.Doorbell(0)
	got := make([]byte, 8)
	b.space.Read(target, got)
	if binary.LittleEndian.Uint64(got) != 99 {
		t.Fatalf("swap failed: %d", binary.LittleEndian.Uint64(got))
	}
	a.space.Read(a.dram.Base, got)
	if binary.LittleEndian.Uint64(got) != 7 {
		t.Fatalf("returned=%d, want 7", binary.LittleEndian.Uint64(got))
	}

	// Mismatching compare: no swap, current value returned.
	qa.PostSend(WQE{Op: OpCompSwap, LocalAddr: a.dram.Base, RemoteAddr: target, Compare: 7, Swap: 123})
	qa.Doorbell(sim.Microsecond)
	b.space.Read(target, got)
	if binary.LittleEndian.Uint64(got) != 99 {
		t.Fatalf("mismatched CAS mutated memory: %d", binary.LittleEndian.Uint64(got))
	}
	a.space.Read(a.dram.Base, got)
	if binary.LittleEndian.Uint64(got) != 99 {
		t.Fatalf("returned=%d, want current 99", binary.LittleEndian.Uint64(got))
	}
}

func TestAtomicsSerializeAtResponder(t *testing.T) {
	a, b, qa, _ := newPair(t)
	_ = a
	target := b.dram.Base + 24
	// Many concurrent fetch-adds: the responder's atomic unit
	// serializes them, and the final value reflects every increment.
	const n = 32
	for i := 0; i < n; i++ {
		qa.PostSend(WQE{Op: OpFetchAdd, LocalAddr: a.dram.Base, RemoteAddr: target, Add: 1})
	}
	results := qa.Doorbell(0)
	got := make([]byte, 8)
	b.space.Read(target, got)
	if binary.LittleEndian.Uint64(got) != n {
		t.Fatalf("final=%d, want %d", binary.LittleEndian.Uint64(got), n)
	}
	// Serialization: the batch must take at least n * 60ns of atomic
	// unit occupancy beyond a single op's latency.
	single := results[0].RemoteVisible
	last := results[n-1].RemoteVisible
	if last < single+sim.Duration(n-1)*60*sim.Nanosecond {
		t.Fatalf("atomics did not serialize: first=%v last=%v", single, last)
	}
}
