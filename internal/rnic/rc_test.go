package rnic

import (
	"bytes"
	"testing"

	"rambda/internal/fault"
	"rambda/internal/interconnect"
	"rambda/internal/sim"
)

// newFaultyPair wires two machines through a duplex whose a->b direction
// follows the given fault rule (the reverse path stays clean unless the
// rule names it).
func newFaultyPair(t *testing.T, plan fault.Plan) (*testMachine, *testMachine, *QP, *QP) {
	t.Helper()
	a, b := newTestMachine("a"), newTestMachine("b")
	d := interconnect.NewDuplex("net", 3.125e9, 2*sim.Microsecond)
	d.AttachFaults(fault.New(plan))
	Connect(a.nic, b.nic, d)
	qa, qb := a.nic.NewQP(), b.nic.NewQP()
	ConnectQP(qa, qb)
	return a, b, qa, qb
}

func TestRetransmitRecoversAndBacksOff(t *testing.T) {
	// 30% per-packet drop on the forward path: the RC transport must
	// retransmit until delivery, inflating the tail by at least one RTO,
	// while the data still lands intact.
	a, b, qa, _ := newFaultyPair(t, fault.Plan{Seed: 41, Links: []fault.LinkRule{
		{Link: "net:a->b", Drop: 0.3},
	}})
	msg := []byte("retransmitted payload")
	a.space.Write(a.dram.Base, msg)

	var worst sim.Duration
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base,
			Len: len(msg), Signaled: true, WRID: uint64(i)})
		res := qa.Doorbell(now)
		if res[0].Status != CQEOK {
			t.Fatalf("write %d failed: %v", i, res[0].Status)
		}
		if lat := sim.Duration(res[0].CQEAt - now); lat > worst {
			worst = lat
		}
		now = res[0].CQEAt
	}
	st := qa.Stats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions at 30% drop")
	}
	if st.Timeouts != 0 {
		t.Fatalf("timeouts=%d, retry budget should absorb 30%% loss", st.Timeouts)
	}
	if worst < qa.rto() {
		t.Fatalf("worst latency %v, want >= one RTO (%v)", worst, qa.rto())
	}
	got := make([]byte, len(msg))
	b.space.Read(b.dram.Base, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("remote memory = %q after lossy writes", got)
	}
}

func TestRetransmitSequenceDeterministic(t *testing.T) {
	// Same plan seed => byte-identical completion timestamps and
	// counters across two independent universes.
	run := func() ([]sim.Time, QPStats) {
		a, b, qa, _ := newFaultyPair(t, fault.Plan{Seed: 7, Links: []fault.LinkRule{
			{Link: "net:a->b", Drop: 0.25, Corrupt: 0.1, Duplicate: 0.05,
				DelaySpike: 0.1, Spike: 8 * sim.Microsecond},
		}})
		var times []sim.Time
		now := sim.Time(0)
		for i := 0; i < 80; i++ {
			qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base,
				Len: 256, Signaled: true})
			res := qa.Doorbell(now)
			times = append(times, res[0].CQEAt)
			now = res[0].CQEAt
		}
		return times, qa.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("completion %d diverged: %v vs %v", i, t1[i], t2[i])
		}
	}
	if s1.Retransmits == 0 {
		t.Fatal("plan injected nothing")
	}
}

func TestCorruptionBehavesLikeLoss(t *testing.T) {
	// Corrupted bursts reach the wire but fail the receiver's ICRC, so
	// the transport retransmits exactly as for drops and the delivered
	// payload is the clean copy.
	a, b, qa, _ := newFaultyPair(t, fault.Plan{Seed: 13, Links: []fault.LinkRule{
		{Link: "net:a->b", Corrupt: 0.4},
	}})
	msg := []byte("icrc-protected")
	a.space.Write(a.dram.Base, msg)
	now := sim.Time(0)
	for i := 0; i < 60; i++ {
		qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base,
			Len: len(msg), Signaled: true})
		res := qa.Doorbell(now)
		if res[0].Status != CQEOK {
			t.Fatalf("write %d: %v", i, res[0].Status)
		}
		now = res[0].CQEAt
	}
	if qa.Stats().Retransmits == 0 {
		t.Fatal("corruption must drive retransmissions")
	}
	got := make([]byte, len(msg))
	b.space.Read(b.dram.Base, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("delivered payload %q must be the clean copy", got)
	}
}

func TestRetryExhaustionFlushOrdering(t *testing.T) {
	// A black-holed forward path exhausts the retry budget on the first
	// WQE; every later WQE in the same batch flushes. All error CQEs
	// appear, in submission order, regardless of the Signaled flag.
	a, b, qa, _ := newFaultyPair(t, fault.Plan{Seed: 3, Links: []fault.LinkRule{
		{Link: "net:a->b", Drop: 1.0},
	}})
	for i := 0; i < 4; i++ {
		qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base,
			Len: 64, WRID: uint64(100 + i)})
	}
	res := qa.Doorbell(0)
	if len(res) != 4 {
		t.Fatalf("results=%d, want 4 (no WQE may be silently lost)", len(res))
	}
	if res[0].Status != CQERetryExceeded {
		t.Fatalf("first WQE status %v, want RETRY_EXC", res[0].Status)
	}
	for i := 1; i < 4; i++ {
		if res[i].Status != CQEFlushErr {
			t.Fatalf("WQE %d status %v, want WR_FLUSH", i, res[i].Status)
		}
	}
	cqes := qa.CQ().Poll(10)
	if len(cqes) != 4 {
		t.Fatalf("CQEs=%d, want 4", len(cqes))
	}
	for i, c := range cqes {
		if c.WRID != uint64(100+i) {
			t.Fatalf("CQE %d carries WRID %d — flush order must match submission order", i, c.WRID)
		}
	}
	if qa.State() != QPError {
		t.Fatal("QP must be in error state")
	}
	if st := qa.Stats(); st.Timeouts != 1 || st.Retransmits != int64(qa.retryLimit()) {
		t.Fatalf("stats=%+v, want %d retransmits and 1 timeout", st, qa.retryLimit())
	}

	// Recover re-arms the QP: the next WQE executes (and fails on the
	// still-dead link with a fresh retry error, not a flush).
	qa.Recover()
	if qa.State() != QPReady {
		t.Fatal("Recover must return the QP to ready")
	}
	qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base, Len: 64, WRID: 200})
	res = qa.Doorbell(res[3].CQEAt)
	if res[0].Status != CQERetryExceeded {
		t.Fatalf("post-recover status %v, want RETRY_EXC (executed, not flushed)", res[0].Status)
	}
}

func TestRNRBackoffRecovery(t *testing.T) {
	// The receive ring's head is replenished late: the SEND draws RNR
	// NAKs, sits out the RNR timer between attempts, and succeeds once
	// the buffer is consumable.
	a, b, qa, qb := newPair(t)
	msg := []byte("rnr-delayed")
	a.space.Write(a.dram.Base, msg)
	const availableAt = 40 * sim.Microsecond
	qb.PostRecvAt(b.dram.Base+512, 64, 77, availableAt)

	qa.PostSend(WQE{Op: OpSend, LocalAddr: a.dram.Base, Len: len(msg), Signaled: true, WRID: 5})
	res := qa.Doorbell(0)
	if res[0].Status != CQEOK {
		t.Fatalf("status %v, want OK after RNR recovery", res[0].Status)
	}
	if res[0].RemoteVisible < availableAt {
		t.Fatalf("delivered at %v, before the buffer existed (%v)", res[0].RemoteVisible, availableAt)
	}
	st := qa.Stats()
	if st.RNRNaks == 0 || st.RNRNaks >= int64(qa.rnrRetryLimit()) {
		t.Fatalf("RNR NAKs=%d, want in (0, %d)", st.RNRNaks, qa.rnrRetryLimit())
	}
	got := make([]byte, len(msg))
	b.space.Read(b.dram.Base+512, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("recv buffer = %q", got)
	}
	cqes := qb.CQ().Poll(10)
	if len(cqes) != 1 || cqes[0].WRID != 77 {
		t.Fatalf("receive completion %+v", cqes)
	}
}

func TestPSNAdvancesPerPacket(t *testing.T) {
	// PSNs advance by the packet count of each first transmission;
	// retransmissions reuse their PSNs. A clean 10000B write with 28B of
	// transport overhead spans 3 MTU-4096 packets.
	a, b, qa, qb := newPair(t)
	qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base, Len: 10000})
	qa.Doorbell(0)
	if qa.PSN() != 3 {
		t.Fatalf("sender PSN=%d, want 3", qa.PSN())
	}
	if qb.EPSN() != 3 {
		t.Fatalf("receiver EPSN=%d, want 3 (delivered packets acknowledged)", qb.EPSN())
	}

	// Under loss the delivered stream stays in lockstep: every leg that
	// lands advances EPSN by exactly its packet count.
	ma, mb, qc, qd := newFaultyPair(t, fault.Plan{Seed: 77, Links: []fault.LinkRule{
		{Link: "net:a->b", Drop: 0.15},
	}})
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		qc.PostSend(WQE{Op: OpWrite, LocalAddr: ma.dram.Base, RemoteAddr: mb.dram.Base,
			Len: 5000, Signaled: true})
		res := qc.Doorbell(now)
		if res[0].Status != CQEOK {
			t.Fatalf("write %d: %v", i, res[0].Status)
		}
		now = res[0].CQEAt
	}
	if qc.Stats().Retransmits == 0 {
		t.Fatal("no loss injected")
	}
	if qc.PSN() != qd.EPSN() {
		t.Fatalf("PSN %d != EPSN %d after lossy run — retransmissions must reuse PSNs", qc.PSN(), qd.EPSN())
	}
}

func TestConfigureRCOverrides(t *testing.T) {
	_, _, qa, _ := newPair(t)
	qa.ConfigureRC(RCConfig{RTO: 5 * sim.Microsecond, RetryLimit: 2,
		RNRTimer: sim.Microsecond, RNRRetryLimit: 3})
	if qa.rto() != 5*sim.Microsecond || qa.retryLimit() != 2 ||
		qa.rnrTimer() != sim.Microsecond || qa.rnrRetryLimit() != 3 {
		t.Fatal("ConfigureRC overrides not applied")
	}
	q2 := qa.nic.NewQP()
	if q2.rto() != defaultRTO || q2.retryLimit() != defaultRetryLimit ||
		q2.rnrTimer() != defaultRNRTimer || q2.rnrRetryLimit() != defaultRNRRetryLimit {
		t.Fatal("zero config must take defaults")
	}
}

func TestCleanPairUnchangedByFaultMachinery(t *testing.T) {
	// The zero-fault universe must be bit-identical whether or not an
	// (empty-ruled) injector was ever attached: nil fast path.
	run := func(attach bool) sim.Time {
		a, b := newTestMachine("a"), newTestMachine("b")
		d := interconnect.NewDuplex("net", 3.125e9, 2*sim.Microsecond)
		if attach {
			d.AttachFaults(fault.New(fault.Plan{Seed: 1, Links: []fault.LinkRule{
				{Link: "elsewhere", Drop: 0.9},
			}}))
		}
		Connect(a.nic, b.nic, d)
		qa, qb := a.nic.NewQP(), b.nic.NewQP()
		ConnectQP(qa, qb)
		var last sim.Time
		for i := 0; i < 20; i++ {
			qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base,
				Len: 512, Signaled: true})
			last = qa.Doorbell(last)[0].CQEAt
		}
		return last
	}
	if plain, attached := run(false), run(true); plain != attached {
		t.Fatalf("empty plan changed timing: %v vs %v", plain, attached)
	}
}
