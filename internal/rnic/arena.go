package rnic

// payloadArena is the NIC's staging-buffer pool for in-flight payload
// bytes (the model's stand-in for the device's internal packet
// buffers). Buffers come out of size classes, are handed to exactly
// one in-flight operation, and return to the pool when the modeled DMA
// engine has landed the data (the buffer's last read). Oversized
// requests fall back to plain make and are dropped on release instead
// of pooled, so the arena's footprint stays bounded by maxPooled ×
// live classes.
//
// Each NIC owns one arena and every sweep point runs its machines on a
// single goroutine, so the arena needs no locking.
type payloadArena struct {
	classes [len(arenaClasses)][][]byte
	// live counts buffers currently checked out to in-flight
	// operations — the occupancy the metrics registry reports.
	live int
}

// arenaClasses are the pooled buffer capacities. The top class covers
// the largest payload the figures move (64 KiB values); anything
// bigger is allocated directly.
var arenaClasses = [...]int{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}

// maxPooled caps free buffers kept per class.
const maxPooled = 64

func arenaClassFor(n int) int {
	for i, c := range arenaClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// get returns a length-n buffer. Pooled buffers may hold stale bytes
// from a previous operation; every call site overwrites the full
// buffer (DMARead fills it) before any read, so no clearing is needed.
func (a *payloadArena) get(n int) []byte {
	a.live++
	ci := arenaClassFor(n)
	if ci < 0 {
		return make([]byte, n)
	}
	free := a.classes[ci]
	if len(free) == 0 {
		return make([]byte, n, arenaClasses[ci])
	}
	buf := free[len(free)-1]
	a.classes[ci] = free[:len(free)-1]
	return buf[:n]
}

// put returns a buffer to its class. Oversized (non-pooled) buffers
// and overflow beyond maxPooled are dropped for the GC.
func (a *payloadArena) put(buf []byte) {
	a.live--
	ci := arenaClassFor(cap(buf))
	if ci < 0 || cap(buf) != arenaClasses[ci] || len(a.classes[ci]) >= maxPooled {
		return
	}
	a.classes[ci] = append(a.classes[ci], buf)
}
