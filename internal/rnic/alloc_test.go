package rnic

import (
	"testing"

	"rambda/internal/fault"
	"rambda/internal/sim"
)

// Steady-state allocation guard for the pooled RC write path: with the
// payload arena, the reusable per-QP result slice, and the ring CQ, a
// signaled write that is polled promptly must not allocate once the
// pools are warm.

func TestRCWriteHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are distorted under the race detector")
	}
	qa, la, ra := benchPair(fault.Plan{})
	now := sim.Time(0)
	write := func() {
		qa.PostSend(WQE{Op: OpWrite, LocalAddr: la, RemoteAddr: ra, Len: 1024, Signaled: true})
		now = qa.Doorbell(now)[0].CQEAt
		if qa.CQ().Discard(1) != 1 {
			panic("missing CQE")
		}
	}
	for i := 0; i < 64; i++ {
		write() // warm the arena, rings, and result buffers
	}
	if n := testing.AllocsPerRun(200, write); n != 0 {
		t.Fatalf("pooled RC write: %.2f allocs/op in steady state, want 0", n)
	}
}
