package rnic

import (
	"bytes"
	"testing"

	"rambda/internal/coherence"
	"rambda/internal/interconnect"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// testMachine is a minimal host for NIC tests.
type testMachine struct {
	space *memspace.Space
	host  *Host
	nic   *NIC
	dram  *memspace.Region
	nvm   *memspace.Region
}

func newTestMachine(name string) *testMachine {
	space := memspace.New()
	dram := space.Alloc(name+"-dram", 1<<20, memspace.KindDRAM)
	nvm := space.Alloc(name+"-nvm", 1<<20, memspace.KindNVM)
	mem := &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM(name+":dram", 6, 120e9, 90*sim.Nanosecond),
		NVM:   memdev.NewNVM(name+":nvm", 6, 39e9, 300*sim.Nanosecond, 3),
		LLC:   memdev.NewLLC(name+":llc", 300e9, 20*sim.Nanosecond),
	}
	host := &Host{
		Space: space,
		Mem:   mem,
		PCIe:  interconnect.NewPCIe(name+":pcie-in", 16e9, 300*sim.Nanosecond, 400*sim.Nanosecond),
		PCIeR: interconnect.NewPCIe(name+":pcie-out", 16e9, 300*sim.Nanosecond, 400*sim.Nanosecond),
		Coh:   coherence.NewDomain(),
		Agent: coherence.AgentNIC,
	}
	return &testMachine{
		space: space,
		host:  host,
		nic:   New(Config{Name: name}, host),
		dram:  dram,
		nvm:   nvm,
	}
}

func newPair(t *testing.T) (*testMachine, *testMachine, *QP, *QP) {
	t.Helper()
	a, b := newTestMachine("a"), newTestMachine("b")
	Connect(a.nic, b.nic, interconnect.NewDuplex("net", 3.125e9, 2*sim.Microsecond))
	qa, qb := a.nic.NewQP(), b.nic.NewQP()
	ConnectQP(qa, qb)
	return a, b, qa, qb
}

func TestOneSidedWriteMovesData(t *testing.T) {
	a, b, qa, _ := newPair(t)
	msg := []byte("rambda one-sided write")
	a.space.Write(a.dram.Base, msg)

	qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base,
		Len: len(msg), Signaled: true, WRID: 7})
	res := qa.Doorbell(0)
	if len(res) != 1 {
		t.Fatalf("results=%d", len(res))
	}
	got := make([]byte, len(msg))
	b.space.Read(b.dram.Base, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("remote memory = %q", got)
	}
	if res[0].RemoteVisible <= 2*sim.Microsecond {
		t.Fatalf("remote visible at %v, must include one-way wire latency", res[0].RemoteVisible)
	}
	if res[0].CQEAt <= res[0].RemoteVisible {
		t.Fatal("signaled CQE must follow remote visibility (ACK round trip)")
	}
	if qa.CQ().Len() != 1 {
		t.Fatal("CQE not delivered")
	}
	cqes := qa.CQ().Poll(10)
	if len(cqes) != 1 || cqes[0].WRID != 7 {
		t.Fatalf("cqes=%v", cqes)
	}
}

func TestUnsignaledSkipsCQE(t *testing.T) {
	a, b, qa, _ := newPair(t)
	_ = b
	qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base, Len: 64})
	res := qa.Doorbell(0)
	if res[0].CQEAt != 0 {
		t.Fatal("unsignaled op must not produce a CQE time")
	}
	if qa.CQ().Len() != 0 {
		t.Fatal("unsignaled op must not write a CQE")
	}
}

func TestOneSidedReadFetchesData(t *testing.T) {
	a, b, qa, _ := newPair(t)
	msg := []byte("remote payload")
	b.space.Write(b.dram.Base+128, msg)
	qa.PostSend(WQE{Op: OpRead, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base + 128,
		Len: len(msg), Signaled: true})
	res := qa.Doorbell(0)
	got := make([]byte, len(msg))
	a.space.Read(a.dram.Base, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("read got %q", got)
	}
	// A READ needs a full network round trip: > 4us.
	if res[0].RemoteVisible < 4*sim.Microsecond {
		t.Fatalf("read completed at %v, needs a round trip", res[0].RemoteVisible)
	}
}

func TestTwoSidedSendRecv(t *testing.T) {
	a, b, qa, qb := newPair(t)
	msg := []byte("two-sided hello")
	a.space.Write(a.dram.Base, msg)
	qb.PostRecv(b.dram.Base+256, 64, 42)
	qa.PostSend(WQE{Op: OpSend, LocalAddr: a.dram.Base, Len: len(msg)})
	qa.Doorbell(0)

	got := make([]byte, len(msg))
	b.space.Read(b.dram.Base+256, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("recv buffer = %q", got)
	}
	cqes := qb.CQ().Poll(10)
	if len(cqes) != 1 || cqes[0].WRID != 42 || cqes[0].Len != len(msg) {
		t.Fatalf("receive completion %v", cqes)
	}
}

func TestSendWithoutRecvRNRExhausts(t *testing.T) {
	// A SEND with no posted receive draws RNR NAKs until the RNR retry
	// budget runs out, then completes with an error CQE — even though
	// the WQE was unsignaled (errors always complete) — and the QP lands
	// in the error state.
	a, _, qa, _ := newPair(t)
	qa.PostSend(WQE{Op: OpSend, LocalAddr: a.dram.Base, Len: 8, WRID: 11})
	res := qa.Doorbell(0)
	if len(res) != 1 || res[0].Status != CQERNRRetryExceeded {
		t.Fatalf("results=%+v, want RNR_RETRY_EXC", res)
	}
	if res[0].RemoteVisible != 0 {
		t.Fatal("failed SEND must not report a remote-visible time")
	}
	if qa.State() != QPError {
		t.Fatal("QP must enter the error state after RNR exhaustion")
	}
	if got := qa.Stats().RNRNaks; got != int64(qa.rnrRetryLimit()) {
		t.Fatalf("RNR NAKs=%d, want %d", got, qa.rnrRetryLimit())
	}
	cqes := qa.CQ().Poll(10)
	if len(cqes) != 1 || cqes[0].WRID != 11 || cqes[0].Status != CQERNRRetryExceeded {
		t.Fatalf("cqes=%+v, want one RNR error CQE", cqes)
	}
}

func TestDoorbellBatchingAmortizesMMIO(t *testing.T) {
	// N writes under one doorbell must complete sooner than N writes
	// with N doorbells.
	run := func(batch bool) sim.Time {
		a, b, qa, _ := newPair(t)
		_ = a
		var last sim.Time
		const n = 16
		if batch {
			for i := 0; i < n; i++ {
				qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base, Len: 64})
			}
			for _, r := range qa.Doorbell(0) {
				last = r.RemoteVisible
			}
			if qa.Doorbells() != 1 {
				t.Fatalf("doorbells=%d", qa.Doorbells())
			}
		} else {
			now := sim.Time(0)
			for i := 0; i < n; i++ {
				qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base, Len: 64})
				res := qa.Doorbell(now)
				last = res[0].RemoteVisible
				now = last
			}
			if qa.Doorbells() != n {
				t.Fatalf("doorbells=%d", qa.Doorbells())
			}
		}
		return last
	}
	if batched, serial := run(true), run(false); batched >= serial {
		t.Fatalf("batched=%v not faster than serial=%v", batched, serial)
	}
}

func TestTPHFollowsMemoryRegion(t *testing.T) {
	a, b, qa, _ := newPair(t)
	// Adaptive DDIO: DRAM region registered with TPH, NVM without.
	b.nic.RegisterMR(b.dram.Range, true)
	b.nic.RegisterMR(b.nvm.Range, false)
	b.host.Mem.LLC.DDIOEnabled = false // guideline 1: DDIO off globally

	qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base, Len: 1024})
	qa.Doorbell(0)
	if b.host.Mem.LLC.LLCBytes() != 1024 {
		t.Fatalf("DRAM-region write should DDIO to LLC, llcBytes=%d", b.host.Mem.LLC.LLCBytes())
	}

	qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.nvm.Base, Len: 1024})
	qa.Doorbell(0)
	if b.host.Mem.LLC.MemoryBypassBytes() != 1024 {
		t.Fatalf("NVM-region write must bypass LLC, bypass=%d", b.host.Mem.LLC.MemoryBypassBytes())
	}
	if amp := b.host.Mem.NVM.WriteAmplification(); amp > 1.1 {
		t.Fatalf("NVM amplification=%v under adaptive DDIO, want ~1", amp)
	}
}

func TestDMAWriteTriggersCoherenceSignal(t *testing.T) {
	a, b, qa, _ := newPair(t)
	fired := 0
	b.host.Coh.SetSnooper(coherence.AgentAccel, func(coherence.Signal) { fired++ })
	b.host.Coh.Pin(coherence.AgentAccel, memspace.Range{Base: b.dram.Base, Size: 64})
	qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base, Len: 64})
	qa.Doorbell(0)
	if fired != 1 {
		t.Fatalf("coherence signals=%d, want 1 (this is the cpoll trigger path)", fired)
	}
}

func TestQPStats(t *testing.T) {
	a, b, qa, _ := newPair(t)
	qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base, Len: 100})
	qa.PostSend(WQE{Op: OpRead, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base, Len: 50})
	qa.Doorbell(0)
	st := qa.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.BytesOut != 100 || st.BytesIn != 50 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestWriteLatencyScalesWithSize(t *testing.T) {
	a, b, qa, _ := newPair(t)
	qa.PostSend(WQE{Op: OpWrite, LocalAddr: a.dram.Base, RemoteAddr: b.dram.Base, Len: 64})
	small := qa.Doorbell(0)[0].RemoteVisible

	a2, b2, qa2, _ := newPair(t)
	_, _ = a2, b2
	qa2.PostSend(WQE{Op: OpWrite, LocalAddr: a2.dram.Base, RemoteAddr: b2.dram.Base, Len: 64 * 1024})
	big := qa2.Doorbell(0)[0].RemoteVisible
	if big <= small {
		t.Fatalf("64KB write (%v) must take longer than 64B (%v)", big, small)
	}
}
