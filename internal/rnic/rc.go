package rnic

import (
	"rambda/internal/interconnect"
	"rambda/internal/sim"
)

// This file is the reliable-connection transport state of a QP: packet
// sequence numbers, ACK/timeout-driven retransmission with exponential
// backoff, RNR NAK handling when the remote receive ring is exhausted,
// and the QP error state that flushes outstanding WQEs as error CQEs.
// With no fault plan attached to the underlying links, every path here
// collapses to exactly one Transmit per wire leg — the zero-fault
// timing is byte-identical to the pre-fault model and allocation-free.

// CQEStatus is the completion status carried in a CQE (a condensed
// ibv_wc_status). The zero value is success, so pre-fault code that
// never set a status keeps meaning "ok".
type CQEStatus int

const (
	// CQEOK is a successful completion.
	CQEOK CQEStatus = iota
	// CQERetryExceeded reports the transport retry counter ran out
	// (IBV_WC_RETRY_EXC_ERR): the fabric dropped every retransmission.
	CQERetryExceeded
	// CQERNRRetryExceeded reports the remote receive ring stayed
	// exhausted through every RNR retry (IBV_WC_RNR_RETRY_EXC_ERR).
	CQERNRRetryExceeded
	// CQEFlushErr reports a WQE flushed because the QP was already in
	// the error state (IBV_WC_WR_FLUSH_ERR).
	CQEFlushErr
)

// String names the status.
func (s CQEStatus) String() string {
	switch s {
	case CQEOK:
		return "OK"
	case CQERetryExceeded:
		return "RETRY_EXC"
	case CQERNRRetryExceeded:
		return "RNR_RETRY_EXC"
	case CQEFlushErr:
		return "WR_FLUSH"
	default:
		return "status(?)"
	}
}

// QPState is the queue pair state machine, reduced to the two states
// the model distinguishes.
type QPState int

const (
	// QPReady is RTS: WQEs execute normally.
	QPReady QPState = iota
	// QPError flushes every posted WQE as an error CQE until Recover.
	QPError
)

// RCConfig tunes the reliable-connection transport. Zero fields take
// the defaults below, so existing NewQP callers need no changes.
type RCConfig struct {
	// RTO is the base retransmission timeout; attempt k waits
	// RTO << min(k, rcBackoffCap).
	RTO sim.Duration
	// RetryLimit is the transport retry budget per wire leg before the
	// QP enters the error state (IB's 3-bit retry_cnt tops out at 7).
	RetryLimit int
	// RNRTimer is the wait after an RNR NAK before re-sending.
	RNRTimer sim.Duration
	// RNRRetryLimit bounds RNR retries before the QP errors out.
	RNRRetryLimit int
}

// Transport defaults: the RTO comfortably covers the modeled ~4us RTT,
// and both retry budgets mirror IB's maximum of 7.
const (
	defaultRTO           = 20 * sim.Microsecond
	defaultRetryLimit    = 7
	defaultRNRTimer      = 10 * sim.Microsecond
	defaultRNRRetryLimit = 7
	rcBackoffCap         = 6
)

// ConfigureRC overrides the QP's transport parameters.
func (q *QP) ConfigureRC(cfg RCConfig) { q.rc = cfg }

// State reports the QP state.
func (q *QP) State() QPState { return q.state }

// Recover returns an errored QP to the ready state (the modify-QP
// RESET→INIT→RTR→RTS dance, after the application drained the flushed
// CQEs).
func (q *QP) Recover() { q.state = QPReady }

// PSN returns the next packet sequence number the sender will use.
func (q *QP) PSN() uint32 { return q.sendPSN }

// EPSN returns the next PSN the receive side expects.
func (q *QP) EPSN() uint32 { return q.recvPSN }

func (q *QP) rto() sim.Duration {
	if q.rc.RTO > 0 {
		return q.rc.RTO
	}
	return defaultRTO
}

func (q *QP) retryLimit() int {
	if q.rc.RetryLimit > 0 {
		return q.rc.RetryLimit
	}
	return defaultRetryLimit
}

func (q *QP) rnrTimer() sim.Duration {
	if q.rc.RNRTimer > 0 {
		return q.rc.RNRTimer
	}
	return defaultRNRTimer
}

func (q *QP) rnrRetryLimit() int {
	if q.rc.RNRRetryLimit > 0 {
		return q.rc.RNRRetryLimit
	}
	return defaultRNRRetryLimit
}

// packetsOn counts the MTU-sized packets of a transfer on a link.
func packetsOn(link *interconnect.NetLink, bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + link.MTU - 1) / link.MTU
}

// sendReliable pushes one wire leg through the link with RC
// retransmission semantics: the sender's transport timer fires when no
// ACK arrives (a dropped burst, or one the receiver's ICRC check threw
// away) and the leg is retransmitted with exponential backoff,
// reusing the original PSNs (go-back-N). Returns the delivery time and
// false when the retry budget is exhausted. Retransmissions do not
// advance the PSN — only first transmissions claim sequence numbers.
func (q *QP) sendReliable(link *interconnect.NetLink, now sim.Time, bytes int) (sim.Time, bool) {
	out := link.Transmit(now, bytes)
	pkts := uint32(packetsOn(link, bytes))
	q.sendPSN += pkts
	if !out.Dropped && !out.Corrupted {
		q.deliverPSN(pkts)
		return out.Arrive, true
	}
	limit := q.retryLimit()
	rto := q.rto()
	for attempt := 0; ; attempt++ {
		if attempt >= limit {
			q.stats.Timeouts++
			return out.Arrive, false
		}
		// The timer is armed at transmission and backs off per retry.
		q.stats.Retransmits++
		shift := attempt
		if shift > rcBackoffCap {
			shift = rcBackoffCap
		}
		out = link.Transmit(out.Arrive+(rto<<uint(shift)), bytes)
		if !out.Dropped && !out.Corrupted {
			q.deliverPSN(pkts)
			return out.Arrive, true
		}
	}
}

// deliverPSN advances the far end's expected PSN once a leg lands.
func (q *QP) deliverPSN(pkts uint32) {
	if q.remote != nil {
		q.remote.recvPSN += pkts
	}
}

// enterError moves the QP to the error state; subsequent WQEs flush.
func (q *QP) enterError() { q.state = QPError }

// failWQE completes a WQE with a transport error: the QP enters the
// error state and the failure surfaces as an error CQE regardless of
// the Signaled flag (errors always complete, standard verbs
// semantics), so no submission is ever silently lost.
func (q *QP) failWQE(now sim.Time, w WQE, status CQEStatus) OpResult {
	q.enterError()
	q.cq.push(CQE{WRID: w.WRID, Op: w.Op, At: now, Len: w.Len, Status: status})
	return OpResult{WRID: w.WRID, Op: w.Op, CQEAt: now, Status: status}
}

// flushWQE completes a WQE that never executed because the QP was
// already in the error state.
func (q *QP) flushWQE(now sim.Time, w WQE) OpResult {
	q.cq.push(CQE{WRID: w.WRID, Op: w.Op, At: now, Len: w.Len, Status: CQEFlushErr})
	return OpResult{WRID: w.WRID, Op: w.Op, CQEAt: now, Status: CQEFlushErr}
}
