// Package rnic models a standard RDMA NIC (the paper's ConnectX-6 /
// BlueField-2 in NIC mode): reliable-connection queue pairs, work queue
// entries, completion queues, MMIO doorbells with batching, unsignaled
// WQEs, one-sided WRITE/READ and two-sided SEND, and memory-region
// registration carrying the per-region TPH attribute that the adaptive
// DDIO design adds to the NIC (paper Sec. III-D guideline 2).
//
// The model is functional — payload bytes really move between the two
// machines' address spaces — and timed: every hop (host PCIe DMA, wire,
// remote PCIe DMA, LLC/memory landing) is charged to the corresponding
// resource.
package rnic

import (
	"encoding/binary"
	"fmt"

	"rambda/internal/coherence"
	"rambda/internal/interconnect"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/sim"
)

// Op is a work-request opcode.
type Op int

const (
	// OpWrite is a one-sided RDMA WRITE.
	OpWrite Op = iota
	// OpRead is a one-sided RDMA READ.
	OpRead
	// OpSend is a two-sided SEND consuming a remote receive buffer.
	OpSend
	// OpFetchAdd is a one-sided atomic fetch-and-add on a remote
	// 64-bit word (paper Sec. II-A lists atomics among the one-sided
	// verbs; one-sided designs pay for them with extra round trips —
	// exactly the cost RAMBDA's combined requests avoid).
	OpFetchAdd
	// OpCompSwap is a one-sided atomic compare-and-swap on a remote
	// 64-bit word.
	OpCompSwap
)

// String names the opcode.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "WRITE"
	case OpRead:
		return "READ"
	case OpSend:
		return "SEND"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpCompSwap:
		return "CMP_SWAP"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// WQE is a work queue entry in the device-specific format the paper's
// SQ handler assembles (Sec. III-C).
type WQE struct {
	Op         Op
	LocalAddr  memspace.Addr // source (WRITE/SEND) or result buffer (READ/atomics)
	RemoteAddr memspace.Addr // destination (WRITE/atomics) or source (READ); ignored for SEND
	Len        int
	Signaled   bool   // write a CQE on completion (paper uses unsignaled WQEs)
	WRID       uint64 // caller cookie returned in the CQE
	// Atomics: Add is the FETCH_ADD operand; Compare/Swap drive
	// CMP_SWAP.
	Add, Compare, Swap uint64
}

// CQE is a completion queue entry.
type CQE struct {
	WRID uint64
	Op   Op
	At   sim.Time
	// Len is the byte count of the completed operation (for RECV-side
	// completions it is the received length).
	Len int
	// Status is CQEOK for successful completions; error completions
	// (retry exhaustion, RNR exhaustion, flushes) carry the cause.
	Status CQEStatus
}

// CQ is a completion queue: a ring in host memory that the NIC DMA-writes
// and the host polls. Consumed entries are tracked by a head index so
// the backing array is reused once the queue drains (steady-state
// push/poll cycles allocate nothing).
type CQ struct {
	entries []CQE
	head    int
}

// Poll removes and returns up to max completions.
func (c *CQ) Poll(max int) []CQE {
	if max <= 0 || c.Len() == 0 {
		return nil
	}
	if max > c.Len() {
		max = c.Len()
	}
	out := make([]CQE, max)
	copy(out, c.entries[c.head:c.head+max])
	c.advance(max)
	return out
}

// Discard consumes up to max completions without copying them out —
// the polling loop of a caller that only needs the completion event,
// not its payload. Returns the number consumed.
func (c *CQ) Discard(max int) int {
	if max > c.Len() {
		max = c.Len()
	}
	if max > 0 {
		c.advance(max)
	}
	return max
}

// Len reports queued completions.
func (c *CQ) Len() int { return len(c.entries) - c.head }

func (c *CQ) advance(n int) {
	c.head += n
	if c.head == len(c.entries) {
		c.entries = c.entries[:0]
		c.head = 0
	}
}

func (c *CQ) push(e CQE) { c.entries = append(c.entries, e) }

// MR is a registered memory region. TPH records whether RDMA writes
// into this region should set the PCIe TPH bit (true for DRAM regions,
// false for NVM regions under adaptive DDIO).
type MR struct {
	Range memspace.Range
	TPH   bool
}

// Host is the NIC's attachment to its machine: the PCIe link, the
// memory system (for DMA landing costs and DDIO steering), the address
// space (for actual data movement), and the coherence domain (so DMA
// writes trigger cpoll signals).
type Host struct {
	Space *memspace.Space
	Mem   *memdev.System
	PCIe  *interconnect.PCIe // NIC->host direction (DMA writes, CQEs)
	PCIeR *interconnect.PCIe // host->NIC direction (DMA reads, doorbells)
	Coh   *coherence.Domain
	Agent coherence.AgentID // how the NIC appears to the coherence domain
}

// DMAWrite moves data into host memory: PCIe transfer, LLC/memory
// landing per the TPH bit, then a coherence-domain write so pinned
// snoopers (cpoll) observe it.
func (h *Host) DMAWrite(now sim.Time, addr memspace.Addr, data []byte, tph bool) sim.Time {
	at := h.PCIe.DMA(now, len(data))
	at, _ = h.Mem.DMAWrite(at, addr, len(data), tph)
	h.Space.Write(addr, data)
	h.Coh.Write(h.Agent, addr, len(data), at)
	return at
}

// DMARead fetches data from host memory into the NIC: memory read then
// PCIe transfer toward the device.
func (h *Host) DMARead(now sim.Time, addr memspace.Addr, buf []byte) sim.Time {
	at := h.Mem.MemRead(now, addr, len(buf))
	at = h.PCIeR.DMA(at, len(buf))
	h.Space.Read(addr, buf)
	return at
}

// NIC is one RDMA NIC. Wire it to a peer with Connect.
type NIC struct {
	Name string
	Host *Host

	// proc models the NIC's packet-processing pipeline (WQE fetch,
	// transport state, DMA engine scheduling).
	proc *sim.Resource
	// atomicUnit serializes one-sided atomics at the responder.
	atomicUnit *sim.Resource

	tx *interconnect.NetLink // toward the peer
	// peer is the NIC at the far end of tx.
	peer *NIC

	mrs []MR

	// arena pools payload staging buffers for this NIC's operations
	// (requester-side WRITE/SEND staging and responder-side READ data).
	arena payloadArena

	// tr, when attached via SetObs, records StageNIC spans for WQE
	// execution legs (DMA reads/writes, doorbells, CQE delivery); nil
	// is the uninstrumented fast path.
	tr *obs.Trace

	qpCounter int
}

// Config sets the NIC pipeline characteristics.
type Config struct {
	Name string
	// PerWQE is the pipeline occupancy per work request.
	PerWQE sim.Duration
	// Pipelines is the number of parallel processing units.
	Pipelines int
}

// New creates a NIC attached to the given host.
func New(cfg Config, host *Host) *NIC {
	if cfg.Pipelines <= 0 {
		cfg.Pipelines = 4
	}
	if cfg.PerWQE <= 0 {
		cfg.PerWQE = 15 * sim.Nanosecond
	}
	return &NIC{
		Name:       cfg.Name,
		Host:       host,
		proc:       sim.NewResource(cfg.Name+":proc", cfg.Pipelines, cfg.PerWQE, 0, 0),
		atomicUnit: sim.NewResource(cfg.Name+":atomic", 1, 60*sim.Nanosecond, 0, 0),
	}
}

// Connect wires two NICs through a duplex network path. a transmits on
// d.AtoB, b on d.BtoA.
func Connect(a, b *NIC, d *interconnect.Duplex) {
	a.tx, b.tx = d.AtoB, d.BtoA
	a.peer, b.peer = b, a
}

// SetObs attaches a span recorder to the NIC and its transmit link:
// WQE execution legs record StageNIC spans and every wire transit
// records a StageWire span. Metrics (per-QP retransmit/RNR counters,
// arena occupancy) are registered by the layer that owns the registry
// via RegisterMetrics. Call after Connect; nil detaches.
func (n *NIC) SetObs(tr *obs.Trace) {
	n.tr = tr
	if n.tx != nil {
		n.tx.SetTrace(tr)
	}
}

// RegisterMetrics registers the NIC's gauges on reg under the given
// name prefix: arena occupancy plus the aggregate retransmit / RNR /
// timeout counts across all of this NIC's queue pairs would need QP
// handles, so QP-level series are registered by callers that own the
// QPs (see core.ConnectClient); here we register what the NIC itself
// owns.
func (n *NIC) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".arena_live", func() float64 { return float64(n.arena.live) })
}

// RegisterMR registers a memory region, recording the TPH attribute for
// inbound RDMA writes (adaptive DDIO: set for DRAM, clear for NVM).
func (n *NIC) RegisterMR(r memspace.Range, tph bool) {
	n.mrs = append(n.mrs, MR{Range: r, TPH: tph})
}

// tphFor looks up the TPH attribute for an inbound write at addr.
// Unregistered addresses default to no hint (legacy devices never set
// TPH, paper Sec. III-D).
func (n *NIC) tphFor(addr memspace.Addr) bool {
	for _, mr := range n.mrs {
		if mr.Range.Contains(addr) {
			return mr.TPH
		}
	}
	return false
}

// QP is a reliable-connection queue pair.
type QP struct {
	ID  int
	nic *NIC
	cq  *CQ

	sq        []WQE // posted, not yet rung
	recvs     []recvBuf
	remote    *QP
	stats     QPStats
	doorbells int64
	acked     int64

	// results is the reusable OpResult backing for Doorbell /
	// ExecutePosted; the returned slice is valid until the next drain of
	// this QP.
	results []OpResult

	// Reliable-connection transport state (rc.go): the QP state
	// machine, per-QP packet sequence numbers, and retry tuning.
	state   QPState
	rc      RCConfig
	sendPSN uint32 // next PSN this side transmits
	recvPSN uint32 // next PSN this side expects (advanced by the peer)
}

type recvBuf struct {
	addr memspace.Addr
	len  int
	wrid uint64
	// availableAt is when the buffer becomes consumable; SENDs arriving
	// earlier hit RNR (the ring slot exists but the host has not
	// replenished it yet). Zero for PostRecv.
	availableAt sim.Time
}

// QPStats counts traffic through a QP.
type QPStats struct {
	Writes, Reads, Sends, Atomics int64
	BytesOut, BytesIn             int64
	// Retransmits counts timeout-driven wire-leg retransmissions,
	// Timeouts counts retry budgets exhausted, RNRNaks counts receiver-
	// not-ready NAKs seen by this QP's sends.
	Retransmits, Timeouts, RNRNaks int64
}

// NewQP creates a queue pair on the NIC with a fresh CQ.
func (n *NIC) NewQP() *QP {
	n.qpCounter++
	return &QP{ID: n.qpCounter, nic: n, cq: &CQ{}}
}

// ConnectQP pairs two queue pairs (RC connection establishment).
func ConnectQP(a, b *QP) {
	a.remote, b.remote = b, a
}

// CQ returns the queue pair's completion queue.
func (q *QP) CQ() *CQ { return q.cq }

// RemoteHost returns the peer NIC's host attachment (nil when the QP is
// not connected) — used by transports that combine writes with
// user-mode memory registration (UMR) and need to place the secondary
// bytes functionally.
func (q *QP) RemoteHost() *Host {
	if q.remote == nil {
		return nil
	}
	return q.remote.nic.Host
}

// Stats returns traffic counters.
func (q *QP) Stats() QPStats { return q.stats }

// RegisterMetrics registers the QP's reliability counters as gauges on
// reg under the given name prefix. Gauges read the live stats at each
// ticker sample, so registration happens once at wiring time and the
// request path stays untouched.
func (q *QP) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".retransmits", func() float64 { return float64(q.stats.Retransmits) })
	reg.Gauge(prefix+".rnr_naks", func() float64 { return float64(q.stats.RNRNaks) })
	reg.Gauge(prefix+".timeouts", func() float64 { return float64(q.stats.Timeouts) })
}

// Doorbells returns the number of doorbell MMIO writes issued.
func (q *QP) Doorbells() int64 { return q.doorbells }

// PostSend appends a WQE to the send queue without ringing the
// doorbell; combine several posts with one Doorbell call to batch
// (paper: "we batch the doorbell signals to the RNIC").
func (q *QP) PostSend(w WQE) {
	q.sq = append(q.sq, w)
}

// PostRecv posts a receive buffer for two-sided SENDs from the peer.
func (q *QP) PostRecv(addr memspace.Addr, length int, wrid uint64) {
	q.recvs = append(q.recvs, recvBuf{addr: addr, len: length, wrid: wrid})
}

// PostRecvAt posts a receive buffer that only becomes consumable at
// `at` — the host replenishes the ring that late. A SEND arriving
// before then draws an RNR NAK and retries, which is how a slow
// receiver exercises the sender's RNR backoff deterministically.
func (q *QP) PostRecvAt(addr memspace.Addr, length int, wrid uint64, at sim.Time) {
	q.recvs = append(q.recvs, recvBuf{addr: addr, len: length, wrid: wrid, availableAt: at})
}

// OpResult reports the timing of one executed work request.
type OpResult struct {
	WRID uint64
	Op   Op
	// RemoteVisible is when the operation's effect is visible at the
	// target (data landed in remote memory for WRITE/SEND, data arrived
	// locally for READ).
	RemoteVisible sim.Time
	// CQEAt is when the local CQE was written (zero for unsignaled).
	CQEAt sim.Time
	// Status is CQEOK when the operation succeeded; transport failures
	// (retry/RNR exhaustion) and error-state flushes carry the cause,
	// and their RemoteVisible is zero — the effect never happened.
	Status CQEStatus
}

// Doorbell rings the NIC once (one MMIO write paid at `now` by the
// caller's link to the NIC) and executes every posted WQE in order.
// It returns per-WQE results. The MMIO cost is paid on the host->NIC
// PCIe direction; batching N WQEs under one doorbell amortizes it.
func (q *QP) Doorbell(now sim.Time) []OpResult {
	if len(q.sq) == 0 {
		return nil
	}
	q.doorbells++
	at := q.nic.Host.PCIeR.MMIOWrite(now)
	if q.nic.tr != nil {
		q.nic.tr.Span("doorbell", obs.StageNIC, now, at)
	}
	return q.ExecutePosted(at)
}

// ExecutePosted drains the send queue starting at `now` without
// charging a doorbell MMIO — for callers that pay the doorbell
// elsewhere (e.g. the accelerator's SQ handler amortizing one MMIO over
// a batch of responses). The RNIC may also "execute the WQE promptly
// before the doorbell is rung" (paper Sec. VI-B), which this models.
// The returned slice reuses per-QP backing storage and is only valid
// until the next Doorbell/ExecutePosted on this QP.
func (q *QP) ExecutePosted(now sim.Time) []OpResult {
	if len(q.sq) == 0 {
		return nil
	}
	q.results = q.results[:0]
	for _, w := range q.sq {
		q.results = append(q.results, q.execute(now, w))
	}
	q.sq = q.sq[:0]
	return q.results
}

func (q *QP) execute(now sim.Time, w WQE) OpResult {
	n := q.nic
	if q.remote == nil {
		panic("rnic: QP not connected")
	}
	if q.state == QPError {
		// An errored QP executes nothing: every posted WQE flushes as
		// an error CQE, in submission order.
		return q.flushWQE(now, w)
	}
	res := OpResult{WRID: w.WRID, Op: w.Op}
	_, t := n.proc.Acquire(now, 0)

	switch w.Op {
	case OpWrite:
		buf := n.arena.get(w.Len)
		dmaStart := t
		t = n.Host.DMARead(t, w.LocalAddr, buf)
		if n.tr != nil {
			n.tr.Span("dma-read", obs.StageNIC, dmaStart, t)
		}
		var ok bool
		if t, ok = q.sendReliable(n.tx, t, w.Len+wqeWireOverhead); !ok {
			n.arena.put(buf)
			return q.failWQE(t, w, CQERetryExceeded)
		}
		rn := q.remote.nic
		_, t = rn.proc.Acquire(t, 0)
		dmaStart = t
		t = rn.Host.DMAWrite(t, w.RemoteAddr, buf, rn.tphFor(w.RemoteAddr))
		if n.tr != nil {
			n.tr.Span("dma-write", obs.StageNIC, dmaStart, t)
		}
		n.arena.put(buf)
		res.RemoteVisible = t
		q.stats.Writes++
		q.stats.BytesOut += int64(w.Len)

	case OpRead:
		// Request travels to the peer, the peer's NIC DMA-reads its
		// host memory, and the response travels back. A lost response
		// is replayed from the responder without re-reading host memory
		// (the read response replay buffer).
		var ok bool
		if t, ok = q.sendReliable(n.tx, t, wqeWireOverhead); !ok {
			return q.failWQE(t, w, CQERetryExceeded)
		}
		rn := q.remote.nic
		_, t = rn.proc.Acquire(t, 0)
		buf := rn.arena.get(w.Len)
		t = rn.Host.DMARead(t, w.RemoteAddr, buf)
		if t, ok = q.sendReliable(rn.tx, t, w.Len+wqeWireOverhead); !ok {
			rn.arena.put(buf)
			return q.failWQE(t, w, CQERetryExceeded)
		}
		_, t = n.proc.Acquire(t, 0)
		t = n.Host.DMAWrite(t, w.LocalAddr, buf, n.tphFor(w.LocalAddr))
		rn.arena.put(buf)
		res.RemoteVisible = t
		q.stats.Reads++
		q.stats.BytesIn += int64(w.Len)

	case OpSend:
		rq := q.remote
		buf := n.arena.get(w.Len)
		dmaStart := t
		t = n.Host.DMARead(t, w.LocalAddr, buf)
		if n.tr != nil {
			n.tr.Span("dma-read", obs.StageNIC, dmaStart, t)
		}
		// Deliver the message, then claim a receive buffer. When the
		// remote ring is exhausted (or its head not yet replenished)
		// the responder NAKs receiver-not-ready; the sender waits the
		// RNR timer and retransmits, up to the RNR retry budget.
		rnrAttempts := 0
		var rb recvBuf
		for {
			var ok bool
			if t, ok = q.sendReliable(n.tx, t, w.Len+wqeWireOverhead); !ok {
				n.arena.put(buf)
				return q.failWQE(t, w, CQERetryExceeded)
			}
			if len(rq.recvs) > 0 && rq.recvs[0].availableAt <= t {
				rb = rq.recvs[0]
				rq.recvs = rq.recvs[1:]
				break
			}
			if rnrAttempts >= q.rnrRetryLimit() {
				n.arena.put(buf)
				return q.failWQE(t, w, CQERNRRetryExceeded)
			}
			rnrAttempts++
			q.stats.RNRNaks++
			// The NAK crosses back, the sender sits out the RNR timer,
			// then the loop retransmits the message.
			t = rq.nic.tx.Send(t, ackWireBytes) + q.rnrTimer()
		}
		if w.Len > rb.len {
			panic(fmt.Sprintf("rnic: SEND len %d exceeds receive buffer %d", w.Len, rb.len))
		}
		rn := rq.nic
		_, t = rn.proc.Acquire(t, 0)
		dmaStart = t
		t = rn.Host.DMAWrite(t, rb.addr, buf, rn.tphFor(rb.addr))
		if n.tr != nil {
			n.tr.Span("dma-write", obs.StageNIC, dmaStart, t)
		}
		n.arena.put(buf)
		// Receive-side completion.
		rq.cq.push(CQE{WRID: rb.wrid, Op: OpSend, At: t, Len: w.Len})
		res.RemoteVisible = t
		q.stats.Sends++
		q.stats.BytesOut += int64(w.Len)

	case OpFetchAdd, OpCompSwap:
		// One-sided atomic: the request travels to the peer, the peer
		// NIC performs a locked read-modify-write on host memory, and
		// the original 64-bit value returns. Atomics serialize at the
		// responder NIC (single atomic unit), which is why they are the
		// slowest one-sided verbs. A lost response is replayed from the
		// responder's atomic response buffer — the RMW itself is never
		// re-executed (standard RC requirement for exactly-once
		// atomics).
		var ok bool
		if t, ok = q.sendReliable(n.tx, t, 8+wqeWireOverhead); !ok {
			return q.failWQE(t, w, CQERetryExceeded)
		}
		rn := q.remote.nic
		_, t = rn.proc.Acquire(t, 0)
		_, t = rn.atomicUnit.Acquire(t, 0)
		var raw [8]byte
		t = rn.Host.DMARead(t, w.RemoteAddr, raw[:])
		orig := binary.LittleEndian.Uint64(raw[:])
		next := orig
		if w.Op == OpFetchAdd {
			next = orig + w.Add
		} else if orig == w.Compare {
			next = w.Swap
		}
		binary.LittleEndian.PutUint64(raw[:], next)
		t = rn.Host.DMAWrite(t, w.RemoteAddr, raw[:], rn.tphFor(w.RemoteAddr))
		// The original value travels back into the local result buffer.
		if t, ok = q.sendReliable(rn.tx, t, 8+wqeWireOverhead); !ok {
			return q.failWQE(t, w, CQERetryExceeded)
		}
		_, t = n.proc.Acquire(t, 0)
		binary.LittleEndian.PutUint64(raw[:], orig)
		t = n.Host.DMAWrite(t, w.LocalAddr, raw[:], n.tphFor(w.LocalAddr))
		res.RemoteVisible = t
		q.stats.Atomics++

	default:
		panic("rnic: unknown opcode")
	}

	if w.Signaled {
		// The ACK returns over the wire, then the CQE is DMA-written to
		// the local CQ. Reliable-connection ACKs coalesce: only every
		// ackCoalesce-th completion sends a standalone ACK packet; the
		// rest piggyback on reverse traffic (standard RoCE behaviour).
		// A lost standalone ACK makes the requester time out and probe;
		// the responder answers from its ACK state without re-executing
		// — modeled as a reliable reverse leg.
		q.acked++
		back := res.RemoteVisible
		if q.acked%ackCoalesce == 0 {
			var ok bool
			if back, ok = q.sendReliable(q.remote.nic.tx, back, ackWireBytes); !ok {
				return q.failWQE(back, w, CQERetryExceeded)
			}
		}
		cqeAt := n.Host.PCIe.DMA(back, cqeBytes)
		if n.tr != nil {
			n.tr.Span("cqe-dma", obs.StageNIC, back, cqeAt)
		}
		q.cq.push(CQE{WRID: w.WRID, Op: w.Op, At: cqeAt, Len: w.Len})
		res.CQEAt = cqeAt
	}
	return res
}

// Wire-format constants: RoCE transport headers for a request beyond
// the payload, ACK size, CQE size, and the RC ACK coalescing factor.
const (
	wqeWireOverhead = 28 // RETH etc. beyond base headers
	ackWireBytes    = 16
	cqeBytes        = 64
	ackCoalesce     = 8
)
