package rnic

import (
	"rambda/internal/coherence"
	"rambda/internal/fault"
	"rambda/internal/interconnect"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// Benchmark kernels for the RC transport, shared between this package's
// testing.B benchmarks and cmd/rambda-bench. BenchWriteHotPath pins the
// cost of the zero-fault fast path (the regression guard for the fault
// machinery: with no injector attached the per-write cost must not
// grow); BenchRetransmitStorm exercises the full loss/retransmit/backoff
// loop.

// benchHost builds a minimal host + NIC at the testbed parameters.
func benchHost(name string) (*memspace.Space, *NIC, *memspace.Region) {
	space := memspace.New()
	dram := space.Alloc(name+"-dram", 1<<20, memspace.KindDRAM)
	mem := &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM(name+":dram", 6, 120e9, 90*sim.Nanosecond),
		NVM:   memdev.NewNVM(name+":nvm", 6, 39e9, 300*sim.Nanosecond, 3),
		LLC:   memdev.NewLLC(name+":llc", 300e9, 20*sim.Nanosecond),
	}
	host := &Host{
		Space: space,
		Mem:   mem,
		PCIe:  interconnect.NewPCIe(name+":pcie-in", 16e9, 300*sim.Nanosecond, 400*sim.Nanosecond),
		PCIeR: interconnect.NewPCIe(name+":pcie-out", 16e9, 300*sim.Nanosecond, 400*sim.Nanosecond),
		Coh:   coherence.NewDomain(),
		Agent: coherence.AgentNIC,
	}
	return space, New(Config{Name: name}, host), dram
}

// benchPair wires two hosts through a duplex carrying the given fault
// plan (empty plan rules keep the nil fast path).
func benchPair(plan fault.Plan) (*QP, memspace.Addr, memspace.Addr) {
	_, aNIC, aDRAM := benchHost("a")
	_, bNIC, bDRAM := benchHost("b")
	d := interconnect.NewDuplex("net", 3.125e9, 2*sim.Microsecond)
	if len(plan.Links) > 0 || len(plan.Nodes) > 0 {
		d.AttachFaults(fault.New(plan))
	}
	Connect(aNIC, bNIC, d)
	qa, qb := aNIC.NewQP(), bNIC.NewQP()
	ConnectQP(qa, qb)
	return qa, aDRAM.Base, bDRAM.Base
}

// BenchWriteHotPath drives n signaled RC writes over a clean fabric —
// the allocation-sensitive fast path every figure rides on.
func BenchWriteHotPath(n int) sim.Time {
	qa, la, ra := benchPair(fault.Plan{})
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		qa.PostSend(WQE{Op: OpWrite, LocalAddr: la, RemoteAddr: ra, Len: 1024, Signaled: true})
		now = qa.Doorbell(now)[0].CQEAt
	}
	return now
}

// BenchRetransmitStorm drives n signaled writes through a 30%-drop
// forward path: every third burst retransmits, exercising the
// per-packet fault draw, the go-back-N resend, and the exponential
// backoff arithmetic. The ~7-in-100k writes that exhaust the retry
// budget recover the QP and continue — the error/flush path is part of
// the storm.
func BenchRetransmitStorm(n int) sim.Time {
	qa, la, ra := benchPair(fault.Plan{Seed: 97, Links: []fault.LinkRule{
		{Link: "net:a->b", Drop: 0.3},
	}})
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		qa.PostSend(WQE{Op: OpWrite, LocalAddr: la, RemoteAddr: ra, Len: 1024, Signaled: true})
		res := qa.Doorbell(now)
		if res[0].Status != CQEOK {
			qa.Recover()
		}
		now = res[0].CQEAt
	}
	return now
}
