// Package hostcpu models the server CPU of the paper's baselines: a
// pool of beefy out-of-order cores sharing the host memory system,
// processing RPC requests in batches (HERD/MICA-style two-sided RDMA
// servers, and the CPU side of the microbenchmark and DLRM
// experiments).
//
// The core model separates the two costs the paper's batching results
// hinge on (Fig. 10): instruction-path work that occupies a core, and
// memory accesses whose *bandwidth* is always charged but whose
// *latency* is hidden in proportion to the batch factor (interleaving B
// request chains on an out-of-order core overlaps their stalls).
package hostcpu

import (
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// Config describes the CPU pool.
type Config struct {
	Name    string
	Cores   int
	ClockHz float64
}

// CPU is a pool of cores attached to a host memory system.
type CPU struct {
	cfg   Config
	cores *sim.Resource
	mem   *memdev.System
}

// New builds the CPU pool. The cores resource is calibrated so one
// "byte" of occupancy equals one core cycle.
func New(cfg Config, mem *memdev.System) *CPU {
	if cfg.Cores <= 0 || cfg.ClockHz <= 0 {
		panic("hostcpu: bad config")
	}
	return &CPU{
		cfg: cfg,
		// One "byte" of occupancy = one cycle on one core.
		cores: sim.NewResource(cfg.Name+":cores", cfg.Cores, 0, cfg.ClockHz, 0),
		mem:   mem,
	}
}

// Config returns the pool configuration.
func (c *CPU) Config() Config { return c.cfg }

// Cores exposes the core pool resource.
func (c *CPU) Cores() *sim.Resource { return c.cores }

// CycleTime returns one core clock period.
func (c *CPU) CycleTime() sim.Duration {
	return sim.Duration(float64(sim.Second) / c.cfg.ClockHz)
}

// Work describes the execution of one request on a core.
type Work struct {
	// Cycles is the instruction-path cost (parsing, hashing, RPC
	// handling) occupying the core.
	Cycles int
	// Accesses is the number of memory accesses the request performs.
	Accesses int
	// AccessBytes is the size of each access.
	AccessBytes int
	// Addr routes the accesses to the right device (DRAM vs NVM).
	Addr memspace.Addr
	// Batch is the latency-hiding factor: how many independent request
	// chains the core interleaves (1 = fully dependent pointer chase).
	Batch int
	// Parallel marks the accesses as independent of each other
	// (gather), so they are all latency-overlapped regardless of Batch.
	Parallel bool
	// MLP caps how many parallel accesses one core keeps in flight
	// (line-fill-buffer limit). Zero means unlimited; gathers larger
	// than MLP proceed in waves.
	MLP int
	// DRAMFactor inflates the DRAM bandwidth charged per access for
	// workloads whose random row-sized gathers waste activation
	// bandwidth (DLRM embedding reduction). 0/1 = no inflation.
	DRAMFactor float64
}

// Process walks one request through a core and the memory system,
// returning its completion time.
//
// The memory phase is charged to the devices first (bandwidth and
// queueing), then the core is occupied for the request's full visible
// duration — instruction path plus memory stalls. A core blocked on a
// dependent miss cannot serve other requests, which is exactly why
// batching (which hides those stalls) multiplies CPU throughput in the
// paper's Fig. 10.
func (c *CPU) Process(now sim.Time, w Work) sim.Time {
	overlap := w.Batch
	if overlap < 1 {
		overlap = 1
	}
	memEnd := now
	if w.Accesses > 0 {
		if w.Parallel {
			// Gather: accesses overlap in waves of MLP (unbounded when
			// MLP is zero); completion is the last wave's max.
			wave := w.MLP
			if wave <= 0 || wave > w.Accesses {
				wave = w.Accesses
			}
			at := now
			for issued := 0; issued < w.Accesses; issued += wave {
				n := wave
				if issued+n > w.Accesses {
					n = w.Accesses - issued
				}
				var waveEnd sim.Time
				for i := 0; i < n; i++ {
					done := c.access(at, w, maxInt(overlap, n))
					if done > waveEnd {
						waveEnd = done
					}
				}
				at = waveEnd
			}
			memEnd = at
		} else {
			// Dependent chain: accesses serialize, stalls overlapped by
			// the batch factor.
			at := now
			for i := 0; i < w.Accesses; i++ {
				at = c.access(at, w, overlap)
			}
			memEnd = at
		}
	}
	stallCycles := int(float64(memEnd-now) / float64(sim.Second) * c.cfg.ClockHz)
	_, done := c.cores.Acquire(now, w.Cycles+stallCycles)
	return done
}

func (c *CPU) access(now sim.Time, w Work, overlap int) sim.Time {
	if c.mem.Space.KindOf(w.Addr) == memspace.KindNVM {
		return c.mem.NVM.ReadOverlapped(now, w.AccessBytes, overlap)
	}
	bytes := w.AccessBytes
	if w.DRAMFactor > 1 {
		bytes = int(float64(bytes) * w.DRAMFactor)
	}
	return c.mem.DRAM.AccessOverlapped(now, bytes, overlap)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
