package hostcpu

import (
	"testing"

	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

func newMem() (*memdev.System, *memspace.Region, *memspace.Region) {
	space := memspace.New()
	dram := space.Alloc("data", 1<<20, memspace.KindDRAM)
	nvm := space.Alloc("pmem", 1<<20, memspace.KindNVM)
	return &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM("dram", 6, 120e9, 90*sim.Nanosecond),
		NVM:   memdev.NewNVM("nvm", 6, 39e9, 300*sim.Nanosecond, 3),
		LLC:   memdev.NewLLC("llc", 300e9, 20*sim.Nanosecond),
	}, dram, nvm
}

func TestProcessPureCompute(t *testing.T) {
	mem, _, _ := newMem()
	c := New(Config{Name: "cpu", Cores: 2, ClockHz: 2e9}, mem)
	// 2000 cycles at 2GHz = 1us.
	if done := c.Process(0, Work{Cycles: 2000}); done != sim.Microsecond {
		t.Fatalf("done=%v, want 1us", done)
	}
	if c.CycleTime() != 500*sim.Picosecond {
		t.Fatalf("cycle=%v", c.CycleTime())
	}
}

func TestCorePoolSaturates(t *testing.T) {
	mem, _, _ := newMem()
	c := New(Config{Name: "cpu", Cores: 2, ClockHz: 2e9}, mem)
	var done sim.Time
	for i := 0; i < 4; i++ {
		done = c.Process(0, Work{Cycles: 2000})
	}
	// 4 ops on 2 cores: 2us.
	if done != 2*sim.Microsecond {
		t.Fatalf("done=%v, want 2us", done)
	}
}

func TestDependentChainVsBatched(t *testing.T) {
	mem, dram, _ := newMem()
	c := New(Config{Name: "cpu", Cores: 1, ClockHz: 2e9}, mem)
	w := Work{Cycles: 100, Accesses: 3, AccessBytes: 64, Addr: dram.Base, Batch: 1}
	serial := c.Process(0, w)

	mem2, dram2, _ := newMem()
	c2 := New(Config{Name: "cpu", Cores: 1, ClockHz: 2e9}, mem2)
	w2 := Work{Cycles: 100, Accesses: 3, AccessBytes: 64, Addr: dram2.Base, Batch: 16}
	batched := c2.Process(0, w2)

	if batched >= serial {
		t.Fatalf("batched (%v) must beat the dependent chain (%v)", batched, serial)
	}
	// Serial chain is dominated by 3 x 90ns latency.
	if serial < 270*sim.Nanosecond {
		t.Fatalf("serial=%v, want >= 270ns", serial)
	}
}

func TestParallelGatherOverlaps(t *testing.T) {
	mem, dram, _ := newMem()
	c := New(Config{Name: "cpu", Cores: 1, ClockHz: 2e9}, mem)
	gather := c.Process(0, Work{Accesses: 32, AccessBytes: 64, Addr: dram.Base, Parallel: true})

	mem2, dram2, _ := newMem()
	c2 := New(Config{Name: "cpu", Cores: 1, ClockHz: 2e9}, mem2)
	chain := c2.Process(0, Work{Accesses: 32, AccessBytes: 64, Addr: dram2.Base, Batch: 1})
	if gather >= chain {
		t.Fatalf("gather (%v) must beat pointer chase (%v)", gather, chain)
	}
}

func TestNVMRouting(t *testing.T) {
	mem, _, nvm := newMem()
	c := New(Config{Name: "cpu", Cores: 1, ClockHz: 2e9}, mem)
	c.Process(0, Work{Accesses: 1, AccessBytes: 64, Addr: nvm.Base, Batch: 1})
	if mem.NVM.Resource().Ops() != 1 {
		t.Fatal("NVM access not routed")
	}
	if mem.DRAM.Resource().Ops() != 0 {
		t.Fatal("DRAM charged for an NVM access")
	}
}

func TestMemoryBandwidthSharedAcrossCores(t *testing.T) {
	// Many cores hammering memory must be limited by DRAM bandwidth,
	// not core count: compare 8 vs 16 cores under a bandwidth-bound
	// gather workload sized to saturate 120GB/s.
	run := func(cores int) float64 {
		mem, dram, _ := newMem()
		c := New(Config{Name: "cpu", Cores: cores, ClockHz: 2e9}, mem)
		res := sim.ClosedLoop{Clients: cores * 4, PerClient: 300}.Run(
			func(_ int, issue sim.Time) sim.Time {
				return c.Process(issue, Work{
					Cycles: 50, Accesses: 64, AccessBytes: 512,
					Addr: dram.Base, Parallel: true,
				})
			})
		return res.Throughput
	}
	t8, t16 := run(8), run(16)
	if t16 > 1.3*t8 {
		t.Fatalf("16 cores (%.0f) should not scale past memory bandwidth (8 cores: %.0f)", t16, t8)
	}
}

func TestComputeScalesLinearly(t *testing.T) {
	run := func(cores int) float64 {
		mem, _, _ := newMem()
		c := New(Config{Name: "cpu", Cores: cores, ClockHz: 2e9}, mem)
		res := sim.ClosedLoop{Clients: cores, PerClient: 200}.Run(
			func(_ int, issue sim.Time) sim.Time {
				return c.Process(issue, Work{Cycles: 1000})
			})
		return res.Throughput
	}
	t1, t8 := run(1), run(8)
	if t8 < 7.5*t1 {
		t.Fatalf("8 cores = %.0f, want ~8x of %.0f", t8, t1)
	}
}

func TestBadConfigPanics(t *testing.T) {
	mem, _, _ := newMem()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Cores: 0, ClockHz: 1}, mem)
}
