// Package obs is the deterministic observability layer: virtual-time
// request spans and a metrics registry, with exporters for Chrome
// trace_event JSON and per-stage latency breakdowns.
//
// Everything here runs in *virtual* time (sim.Time picoseconds) and is
// driven synchronously by the simulation, so the same seed always
// produces byte-identical exports — no wall clocks, no goroutine
// interleaving, no map-order dependence.
//
// # The nil fast path
//
// Every instrumentation site in the protocol layers is guarded by a
// nil check (`if tr != nil`), mirroring the fault-injection pattern:
// a nil *Trace or *Registry costs one predictable branch and touches
// no memory, so figures run byte-identical to an uninstrumented build
// and the steady-state zero-allocation guards keep holding.
//
// # Spans
//
// A Trace records spans with Push/Pop (nested regions) or Span
// (leaves). The simulation walks each request synchronously on one
// goroutine, so the open-span structure is a genuine stack: Push
// links the new span to the current stack top, Pop closes it and
// credits its duration to the parent's child time. Per-stage totals
// are *self time* (duration minus child time), so nested layers —
// a ring span containing NIC spans containing wire spans — never
// double-count.
//
// Span storage is pooled: Reset keeps capacity, and once the backing
// slices have grown to the workload's high-water mark, recording is
// allocation-free. Span names must be constant or pre-built strings;
// formatting a name at a record site would defeat the pooling. Past
// the storage cap, new spans stop being stored (the Chrome export is
// a representative prefix) but stage totals keep accumulating, so a
// breakdown still covers every request.
//
// A Trace is single-goroutine by design (one per runner job / sweep
// point), exactly like the rest of the per-job simulation state.
package obs

import "rambda/internal/sim"

// Stage tags a span with the layer that owns its self time. The
// taxonomy matches the paper's latency decomposition: NIC engine,
// wire, ring buffer, notification, compute, memory.
type Stage uint8

const (
	// StageNIC is RNIC engine work: WQE execution, doorbells, DMA
	// legs, CQE delivery.
	StageNIC Stage = iota
	// StageWire is time on a network link (serialization + flight).
	StageWire
	// StageRing is ring-buffer framing: staging an entry, pointer
	// publication, response writes.
	StageRing
	// StageNotify is notification latency: cache-coherence signal to
	// harvest, or poll-loop discovery.
	StageNotify
	// StageCompute is accelerator/CPU instruction-path work.
	StageCompute
	// StageMemory is data-access time (DRAM/NVM/HBM reads and writes).
	StageMemory
	// StageScan is range-scan merge work: walking the storage engine's
	// sorted structures and materializing multi-pair results.
	StageScan
	// StageCompaction is storage background work — LSM flush and
	// compaction streaming into NVM — the write-amplification time that
	// queues in front of foreground reads.
	StageCompaction
	// StageOther tags envelope spans (the per-request root) whose self
	// time is whatever the attributed stages did not cover: client-side
	// think time, queueing gaps, scheduling slack.
	StageOther

	// NumStages is the number of stage tags.
	NumStages = int(StageOther) + 1
)

// String names the stage for tables and trace categories.
func (s Stage) String() string {
	switch s {
	case StageNIC:
		return "nic"
	case StageWire:
		return "wire"
	case StageRing:
		return "ring"
	case StageNotify:
		return "notify"
	case StageCompute:
		return "compute"
	case StageMemory:
		return "memory"
	case StageScan:
		return "scan"
	case StageCompaction:
		return "compaction"
	case StageOther:
		return "other"
	}
	return "unknown"
}

// Stages lists all stage tags in display order.
func Stages() [NumStages]Stage {
	return [NumStages]Stage{StageNIC, StageWire, StageRing, StageNotify,
		StageCompute, StageMemory, StageScan, StageCompaction, StageOther}
}

// span is one stored region. parent is an index into the trace's
// span slice (-1 for roots).
type span struct {
	name   string
	stage  Stage
	parent int32
	start  sim.Time
	end    sim.Time
}

// openSpan is a stack frame for an in-progress region. Child time is
// accumulated here rather than on the stored span, so self-time math
// stays exact even for spans dropped past the storage cap.
type openSpan struct {
	id    int32 // stored-span index, or -1 if dropped
	stage Stage
	start sim.Time
	child sim.Duration
}

// SpanID identifies an open span returned by Push.
type SpanID int32

// DefaultMaxSpans bounds the per-trace span storage. Past the cap new
// spans are dropped (and counted) while stage totals keep
// accumulating.
const DefaultMaxSpans = 1 << 16

// Trace is a pooled, virtual-time span recorder. The zero value is
// NOT ready; use NewTrace. A nil *Trace is the documented "tracing
// off" state: accessors are nil-safe, but instrumentation sites guard
// record calls with `if tr != nil` so the off path never even makes
// the call.
type Trace struct {
	spans   []span
	stack   []openSpan
	totals  [NumStages]sim.Duration
	counts  [NumStages]int64
	dropped int64
	max     int
}

// NewTrace returns an empty trace capped at DefaultMaxSpans stored
// spans.
func NewTrace() *Trace { return NewTraceCap(DefaultMaxSpans) }

// NewTraceCap returns an empty trace storing at most maxSpans spans
// (0 means DefaultMaxSpans).
func NewTraceCap(maxSpans int) *Trace {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Trace{max: maxSpans}
}

// Reset clears recorded spans and totals while keeping capacity, so a
// warmed trace records without allocating.
func (t *Trace) Reset() {
	t.spans = t.spans[:0]
	t.stack = t.stack[:0]
	t.totals = [NumStages]sim.Duration{}
	t.counts = [NumStages]int64{}
	t.dropped = 0
}

// parentID returns the innermost *stored* open span's index, skipping
// frames dropped past the cap (-1 when none).
func (t *Trace) parentID() int32 {
	for i := len(t.stack) - 1; i >= 0; i-- {
		if p := t.stack[i].id; p >= 0 {
			return p
		}
	}
	return -1
}

// Push opens a span at start, parented to the innermost open span.
// name must be a constant or pre-built string. The returned id must
// be closed with Pop in LIFO order.
func (t *Trace) Push(name string, stage Stage, start sim.Time) SpanID {
	id := int32(-1)
	if len(t.spans) < t.max {
		id = int32(len(t.spans))
		t.spans = append(t.spans, span{name: name, stage: stage, parent: t.parentID(), start: start})
	} else {
		t.dropped++
	}
	t.stack = append(t.stack, openSpan{id: id, stage: stage, start: start})
	return SpanID(id)
}

// Pop closes the innermost open span at end, accumulating its self
// time into the stage totals and its duration into the parent's child
// time. id must match the innermost Push (it is accepted for
// call-site clarity; the stack is authoritative).
func (t *Trace) Pop(id SpanID, end sim.Time) {
	n := len(t.stack)
	if n == 0 {
		return
	}
	f := t.stack[n-1]
	t.stack = t.stack[:n-1]
	d := end - f.start
	t.totals[f.stage] += d - f.child
	t.counts[f.stage]++
	if f.id >= 0 {
		t.spans[f.id].end = end
	}
	if n >= 2 {
		t.stack[n-2].child += d
	}
	_ = id
}

// Span records a closed leaf span in one call: Push+Pop without the
// stack round trip, for sites that know both endpoints.
func (t *Trace) Span(name string, stage Stage, start, end sim.Time) {
	d := end - start
	t.totals[stage] += d
	t.counts[stage]++
	if len(t.spans) < t.max {
		t.spans = append(t.spans, span{name: name, stage: stage, parent: t.parentID(), start: start, end: end})
	} else {
		t.dropped++
	}
	if n := len(t.stack); n > 0 {
		t.stack[n-1].child += d
	}
}

// Len reports the number of stored spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Dropped reports how many spans were discarded past the storage cap.
// Their stage totals were still accumulated.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// StageTotal reports the accumulated self time for one stage.
func (t *Trace) StageTotal(s Stage) sim.Duration {
	if t == nil {
		return 0
	}
	return t.totals[s]
}

// StageCount reports the number of closed spans tagged with s.
func (t *Trace) StageCount(s Stage) int64 {
	if t == nil {
		return 0
	}
	return t.counts[s]
}

// TotalSelf sums self time across all stages — the denominator for
// per-stage shares.
func (t *Trace) TotalSelf() sim.Duration {
	if t == nil {
		return 0
	}
	var sum sim.Duration
	for _, d := range t.totals {
		sum += d
	}
	return sum
}
