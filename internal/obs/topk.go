package obs

import "sort"

// TopK is a deterministic space-saving (Metwally et al.) heavy-hitter
// sketch over uint64 keys: it tracks at most k candidate keys with
// approximate counts, guaranteeing that any key whose true frequency
// exceeds observations/k is present. The scale-out cluster registers
// one per shard to detect hot keys worth migrating.
//
// Like Counter and Gauge it is single-goroutine per job: Observe is
// called from the request loop, Top/Reset from the same goroutine at
// window boundaries. All tie-breaks are by key value, so the sketch's
// contents — and everything decided from them — are independent of
// scheduling and map iteration order.
type TopK struct {
	k       int
	entries []TopKEntry
	pos     map[uint64]int // key -> index in entries
	seen    int64
}

// TopKEntry is one tracked key with its (over-)estimated count.
type TopKEntry struct {
	Key   uint64
	Count int64
}

// NewTopK returns a sketch tracking at most k keys (k >= 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("obs: TopK needs k >= 1")
	}
	return &TopK{k: k, pos: make(map[uint64]int, k)}
}

// Observe records one occurrence of key. Amortized O(1) for tracked
// keys; replacing the coldest candidate is an O(k) scan (k is small).
func (t *TopK) Observe(key uint64) {
	t.seen++
	if i, ok := t.pos[key]; ok {
		t.entries[i].Count++
		return
	}
	if len(t.entries) < t.k {
		t.pos[key] = len(t.entries)
		t.entries = append(t.entries, TopKEntry{Key: key, Count: 1})
		return
	}
	// Space-saving replacement: the new key inherits the minimum count
	// plus one (an upper bound on its true frequency). The victim is
	// the minimum-count entry with the largest key, a deterministic
	// choice.
	mi := 0
	for i := 1; i < len(t.entries); i++ {
		e, m := t.entries[i], t.entries[mi]
		if e.Count < m.Count || (e.Count == m.Count && e.Key > m.Key) {
			mi = i
		}
	}
	delete(t.pos, t.entries[mi].Key)
	t.entries[mi] = TopKEntry{Key: key, Count: t.entries[mi].Count + 1}
	t.pos[key] = mi
}

// Observed reports the total number of observations.
func (t *TopK) Observed() int64 { return t.seen }

// Top appends the tracked entries, hottest first (count descending,
// key ascending on ties), onto dst and returns the grown slice. It is
// a window-boundary query, not a request-path one.
func (t *TopK) Top(dst []TopKEntry) []TopKEntry {
	base := len(dst)
	dst = append(dst, t.entries...)
	view := dst[base:]
	sort.Slice(view, func(i, j int) bool {
		if view[i].Count != view[j].Count {
			return view[i].Count > view[j].Count
		}
		return view[i].Key < view[j].Key
	})
	return dst
}

// Reset clears the sketch for the next detection window, keeping its
// capacity.
func (t *TopK) Reset() {
	t.entries = t.entries[:0]
	t.seen = 0
	for k := range t.pos {
		delete(t.pos, k)
	}
}
