package obs

import (
	"bytes"
	"strings"
	"testing"

	"rambda/internal/sim"
)

func TestSpanNestingSelfTime(t *testing.T) {
	tr := NewTrace()
	// ring [0,100] containing nic [10,40] containing wire [20,30],
	// plus a leaf memory span [50,60] inside ring.
	ring := tr.Push("ring", StageRing, 0)
	nic := tr.Push("nic", StageNIC, 10)
	tr.Span("wire", StageWire, 20, 30)
	tr.Pop(nic, 40)
	tr.Span("mem", StageMemory, 50, 60)
	tr.Pop(ring, 100)

	if got := tr.StageTotal(StageWire); got != 10 {
		t.Fatalf("wire self = %v, want 10", got)
	}
	if got := tr.StageTotal(StageNIC); got != 20 {
		t.Fatalf("nic self = %v, want 20 (30 total - 10 wire child)", got)
	}
	if got := tr.StageTotal(StageMemory); got != 10 {
		t.Fatalf("memory self = %v, want 10", got)
	}
	if got := tr.StageTotal(StageRing); got != 60 {
		t.Fatalf("ring self = %v, want 60 (100 total - 30 nic - 10 mem)", got)
	}
	if got := tr.TotalSelf(); got != 100 {
		t.Fatalf("total self = %v, want 100 (== root duration)", got)
	}
	if tr.Len() != 4 {
		t.Fatalf("stored spans = %d, want 4", tr.Len())
	}
}

func TestSpanCapKeepsTotals(t *testing.T) {
	tr := NewTraceCap(2)
	tr.Span("a", StageCompute, 0, 10)
	tr.Span("b", StageCompute, 10, 20)
	tr.Span("c", StageCompute, 20, 30)  // dropped from storage
	id := tr.Push("d", StageMemory, 30) // dropped from storage
	tr.Pop(id, 40)
	if tr.Len() != 2 {
		t.Fatalf("stored = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	if got := tr.StageTotal(StageCompute); got != 30 {
		t.Fatalf("compute self past cap = %v, want 30", got)
	}
	if got := tr.StageTotal(StageMemory); got != 10 {
		t.Fatalf("memory self past cap = %v, want 10", got)
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 100; i++ {
		tr.Span("s", StageNIC, sim.Time(i), sim.Time(i+1))
	}
	tr.Reset()
	if tr.Len() != 0 || tr.TotalSelf() != 0 || tr.StageCount(StageNIC) != 0 {
		t.Fatal("Reset did not clear state")
	}
	if cap(tr.spans) < 100 {
		t.Fatal("Reset dropped capacity")
	}
}

func TestRegistryTicker(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops")
	depth := 0
	reg.Gauge("depth", func() float64 { return float64(depth) })
	reg.SetInterval(100)

	c.Add(5)
	depth = 3
	reg.Tick(50) // before first boundary: no sample
	if len(reg.Samples()) != 0 {
		t.Fatal("sampled before first boundary")
	}
	reg.Tick(100)
	c.Add(5)
	depth = 7
	reg.Tick(350) // crosses 200 and 300: coalesced burst emits both
	s := reg.Samples()
	if len(s) != 3 {
		t.Fatalf("samples = %d, want 3", len(s))
	}
	if s[0].At != 100 || s[1].At != 200 || s[2].At != 300 {
		t.Fatalf("sample times = %v %v %v, want 100 200 300", s[0].At, s[1].At, s[2].At)
	}
	if s[0].Counters[0] != 5 || s[2].Counters[0] != 10 {
		t.Fatalf("counter samples = %d %d, want 5 10", s[0].Counters[0], s[2].Counters[0])
	}
	if s[0].Gauges[0] != 3 || s[2].Gauges[0] != 7 {
		t.Fatalf("gauge samples = %v %v, want 3 7", s[0].Gauges[0], s[2].Gauges[0])
	}
}

func TestCounterIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x")
	b := reg.Counter("x")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
}

func TestChromeTraceDeterministicBytes(t *testing.T) {
	mk := func() *Trace {
		tr := NewTrace()
		id := tr.Push("req", StageRing, 1_500_000) // 1.5 µs
		tr.Span("dma", StageNIC, 1_600_000, 1_900_000)
		tr.Pop(id, 2_500_000)
		return tr
	}
	var b1, b2 bytes.Buffer
	if err := WriteChromeTrace(&b1, []TraceJSON{{Name: "job", Trace: mk(), PID: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b2, []TraceJSON{{Name: "job", Trace: mk(), PID: 0}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same spans produced different bytes")
	}
	out := b1.String()
	// Integer-math µs timestamps: 1_500_000 ps = 1.500000 µs.
	if !strings.Contains(out, "\"ts\":1.500000") {
		t.Fatalf("missing integer-math timestamp in %q", out)
	}
	if !strings.Contains(out, "\"cat\":\"nic\"") {
		t.Fatalf("missing stage category in %q", out)
	}
}

func TestMetricsExportSortedAndDeterministic(t *testing.T) {
	mk := func() *Registry {
		reg := NewRegistry()
		reg.Counter("zeta").Add(2)
		reg.Counter("alpha").Add(1)
		reg.Gauge("mid", func() float64 { return 1.5 })
		return reg
	}
	var b1, b2 bytes.Buffer
	if err := WriteMetrics(&b1, []MetricsJSON{{Name: "r", Registry: mk()}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetrics(&b2, []MetricsJSON{{Name: "r", Registry: mk()}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same registry produced different bytes")
	}
	out := b1.String()
	if strings.Index(out, "\"alpha\"") > strings.Index(out, "\"zeta\"") {
		t.Fatalf("final values not sorted by name: %q", out)
	}
	if !strings.Contains(out, "\"mid\":1.500000") {
		t.Fatalf("missing fixed-width gauge value: %q", out)
	}
}

func TestBreakdownRows(t *testing.T) {
	tr := NewTrace()
	tr.Span("a", StageCompute, 0, 75)
	tr.Span("b", StageMemory, 75, 100)
	rows := BreakdownRows(tr)
	if len(rows) != NumStages {
		t.Fatalf("rows = %d, want %d", len(rows), NumStages)
	}
	var compute, memory BreakdownRow
	for _, r := range rows {
		switch r.Stage {
		case StageCompute:
			compute = r
		case StageMemory:
			memory = r
		}
	}
	if compute.Share != 0.75 || memory.Share != 0.25 {
		t.Fatalf("shares = %v %v, want 0.75 0.25", compute.Share, memory.Share)
	}
}

func TestNilTraceAccessors(t *testing.T) {
	var tr *Trace
	if tr.Len() != 0 || tr.TotalSelf() != 0 || tr.Dropped() != 0 || tr.StageTotal(StageNIC) != 0 || tr.StageCount(StageNIC) != 0 {
		t.Fatal("nil trace accessors must read zero")
	}
	var reg *Registry
	if reg.Samples() != nil || reg.CounterNames() != nil || reg.GaugeNames() != nil {
		t.Fatal("nil registry accessors must read empty")
	}
}
