package obs

import (
	"sort"

	"rambda/internal/sim"
)

// Counter is a monotonically increasing metric. Instrumentation sites
// hold the *Counter directly (registered once at wiring time), so the
// hot-path cost is one integer add — no map lookup, no allocation.
type Counter struct {
	name string
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v }

// Name reports the registered name.
func (c *Counter) Name() string { return c.name }

// gauge is a named read-on-sample metric: fn is evaluated at each
// ticker sample (and at export), so the gauge closure allocates only
// at registration time, never per request.
type gauge struct {
	name string
	fn   func() float64
}

// Sample is one virtual-time snapshot of every registered series.
type Sample struct {
	At       sim.Time
	Counters []int64   // registration order
	Gauges   []float64 // registration order
}

// Registry holds counters and gauges and samples them on a
// virtual-time ticker. Like Trace it is single-goroutine per job and
// nil-safe at instrumentation sites (`if reg != nil`).
type Registry struct {
	counters []*Counter
	gauges   []gauge

	interval sim.Duration
	next     sim.Time
	samples  []Sample
}

// NewRegistry returns an empty registry with no ticker armed.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers (or returns the existing) counter with the given
// name. Registration order is export order; register everything at
// wiring time, before the run.
func (r *Registry) Counter(name string) *Counter {
	for _, c := range r.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers a polled gauge. fn is called at each ticker sample
// and at export; it must be cheap and deterministic.
func (r *Registry) Gauge(name string, fn func() float64) {
	for i := range r.gauges {
		if r.gauges[i].name == name {
			r.gauges[i].fn = fn
			return
		}
	}
	r.gauges = append(r.gauges, gauge{name: name, fn: fn})
}

// SetInterval arms the virtual-time ticker: Tick(now) snapshots all
// series whenever now crosses the next interval boundary. A zero
// interval disarms it.
func (r *Registry) SetInterval(d sim.Duration) {
	r.interval = d
	r.next = 0
	if d > 0 {
		r.next = d
	}
}

// Tick advances the ticker to now, emitting one sample per crossed
// interval boundary (coalesced bursts emit one sample stamped at the
// boundary they crossed, keeping sample times deterministic).
func (r *Registry) Tick(now sim.Time) {
	if r.interval <= 0 || now < r.next {
		return
	}
	for now >= r.next {
		r.snapshot(r.next)
		r.next += r.interval
	}
}

// snapshot appends one sample stamped at t.
func (r *Registry) snapshot(t sim.Time) {
	s := Sample{At: t}
	if len(r.counters) > 0 {
		s.Counters = make([]int64, len(r.counters))
		for i, c := range r.counters {
			s.Counters[i] = c.v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make([]float64, len(r.gauges))
		for i, g := range r.gauges {
			s.Gauges[i] = g.fn()
		}
	}
	r.samples = append(r.samples, s)
}

// SnapshotNow forces a sample stamped at now, independent of the
// ticker — used for a final end-of-run sample.
func (r *Registry) SnapshotNow(now sim.Time) { r.snapshot(now) }

// Samples returns the recorded ticker samples.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	return r.samples
}

// Reset clears samples and zeroes counters while keeping the
// registered series and ticker interval.
func (r *Registry) Reset() {
	r.samples = r.samples[:0]
	for _, c := range r.counters {
		c.v = 0
	}
	if r.interval > 0 {
		r.next = r.interval
	}
}

// CounterNames lists registered counter names in registration order.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.counters))
	for i, c := range r.counters {
		names[i] = c.name
	}
	return names
}

// GaugeNames lists registered gauge names in registration order.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.gauges))
	for i, g := range r.gauges {
		names[i] = g.name
	}
	return names
}

// Final reads every series once (counters at their current value,
// gauges evaluated now) and returns name→value pairs sorted by name —
// the deterministic order the JSON exporter writes.
func (r *Registry) Final() ([]string, []float64) {
	if r == nil {
		return nil, nil
	}
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	vals := make(map[string]float64, len(r.counters)+len(r.gauges))
	for _, c := range r.counters {
		names = append(names, c.name)
		vals[c.name] = float64(c.v)
	}
	for _, g := range r.gauges {
		names = append(names, g.name)
		vals[g.name] = g.fn()
	}
	sort.Strings(names)
	out := make([]float64, len(names))
	for i, n := range names {
		out[i] = vals[n]
	}
	return names, out
}
