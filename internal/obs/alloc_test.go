package obs

import "testing"

// Steady-state allocation guard for the recording hot path: once a
// trace's span and stack slices have grown to the workload's
// high-water mark, Push/Pop/Span and counter updates must not
// allocate. This is what lets the instrumented request path keep the
// PR 4 zero-allocation invariant with a collector attached.

func TestRecordingZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are distorted under the race detector")
	}
	tr := NewTrace()
	reg := NewRegistry()
	c := reg.Counter("ops")
	cycle := func() {
		tr.Reset()
		req := tr.Push("req", StageRing, 0)
		nic := tr.Push("nic", StageNIC, 10)
		tr.Span("wire", StageWire, 20, 30)
		tr.Pop(nic, 40)
		tr.Span("mem", StageMemory, 50, 60)
		tr.Pop(req, 100)
		c.Inc()
		reg.Tick(100)
	}
	for i := 0; i < 16; i++ {
		cycle() // grow span/stack backing to the high-water mark
	}
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Fatalf("record cycle: %.2f allocs/op in steady state, want 0", n)
	}
}
