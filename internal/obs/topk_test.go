package obs

import "testing"

func TestTopKTracksHeavyHitters(t *testing.T) {
	tk := NewTopK(4)
	for i := 0; i < 100; i++ {
		tk.Observe(1)
	}
	for i := 0; i < 50; i++ {
		tk.Observe(2)
	}
	for i := 0; i < 10; i++ {
		tk.Observe(3)
	}
	// A long tail of singletons churns the low slots but must never
	// evict the heavy hitters (space-saving guarantee: any key with
	// frequency > observed/k stays tracked; here 100 and 50 both clear
	// the 180/4 = 45 threshold).
	for i := 0; i < 20; i++ {
		tk.Observe(uint64(1000 + i))
	}
	if tk.Observed() != 180 {
		t.Fatalf("observed %d, want 180", tk.Observed())
	}
	top := tk.Top(nil)
	if len(top) != 4 {
		t.Fatalf("tracking %d keys, want 4", len(top))
	}
	if top[0].Key != 1 || top[0].Count < 100 {
		t.Fatalf("hottest entry %+v, want key 1 with count >= 100", top[0])
	}
	if top[1].Key != 2 || top[1].Count < 50 {
		t.Fatalf("second entry %+v, want key 2 with count >= 50", top[1])
	}
}

func TestTopKDeterministicTieBreaks(t *testing.T) {
	// Two independent sketches fed the same stream agree exactly,
	// including which singleton survives the final replacement churn.
	feed := func() []TopKEntry {
		tk := NewTopK(2)
		seq := []uint64{5, 5, 9, 7, 3, 7, 11, 3}
		for _, k := range seq {
			tk.Observe(k)
		}
		return tk.Top(nil)
	}
	a, b := feed(), feed()
	if len(a) != len(b) {
		t.Fatalf("sketch sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Ties sort by key ascending.
	for i := 1; i < len(a); i++ {
		if a[i-1].Count < a[i].Count ||
			(a[i-1].Count == a[i].Count && a[i-1].Key > a[i].Key) {
			t.Fatalf("entries out of order: %+v", a)
		}
	}
}

func TestTopKReset(t *testing.T) {
	tk := NewTopK(3)
	tk.Observe(1)
	tk.Observe(1)
	tk.Observe(2)
	tk.Reset()
	if tk.Observed() != 0 || len(tk.Top(nil)) != 0 {
		t.Fatalf("reset left state: observed=%d top=%v", tk.Observed(), tk.Top(nil))
	}
	tk.Observe(7)
	top := tk.Top(nil)
	if len(top) != 1 || top[0] != (TopKEntry{Key: 7, Count: 1}) {
		t.Fatalf("post-reset observe: %+v", top)
	}
}

func TestTopKEvictionTieEvictsLargestKey(t *testing.T) {
	// When a new key must displace an existing entry and several
	// candidates share the minimum count, the victim is the one with the
	// largest key — the deterministic tie-break migration planning leans
	// on. Here keys 7, 9, 8 all sit at count 1; admitting 100 must evict
	// 9 and credit the newcomer with min+1.
	tk := NewTopK(3)
	for _, k := range []uint64{7, 9, 8} {
		tk.Observe(k)
	}
	tk.Observe(100)
	top := tk.Top(nil)
	if len(top) != 3 {
		t.Fatalf("sketch holds %d entries, want 3", len(top))
	}
	if top[0].Key != 100 || top[0].Count != 2 {
		t.Fatalf("newcomer %+v, want key 100 inheriting min count + 1 = 2", top[0])
	}
	for _, e := range top {
		if e.Key == 9 {
			t.Fatalf("victim should be the largest min-count key (9), still present: %+v", top)
		}
	}
	// Survivors keep their counts and sort key-ascending on the tie.
	if top[1].Key != 7 || top[1].Count != 1 || top[2].Key != 8 || top[2].Count != 1 {
		t.Fatalf("survivors %+v, want 7 then 8 at count 1", top[1:])
	}
}
