//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in; alloc
// guards skip under it because instrumentation distorts the counts.
const raceEnabled = true
