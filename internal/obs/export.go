package obs

import (
	"fmt"
	"io"
	"os"
	"strings"

	"rambda/internal/sim"
)

// Exporters. Determinism rules:
//
//   - No wall clocks: every timestamp is virtual (sim.Time).
//   - No float formatting of times: Chrome trace_event wants
//     microseconds, so picosecond values are rendered with integer
//     math as "<µs>.<6-digit remainder>" — the same bytes every run.
//   - No map iteration: series are written in sorted or registration
//     order.
//
// Together these make "same seed → byte-identical export" hold by
// construction; the golden test enforces it end to end.

// usTS appends a picosecond time as a Chrome trace_event microsecond
// timestamp using only integer math.
func usTS(b *strings.Builder, t sim.Time) {
	fmt.Fprintf(b, "%d.%06d", int64(t)/int64(sim.Microsecond), int64(t)%int64(sim.Microsecond))
}

// TraceJSON is a named trace plus its process/thread ids in a Chrome
// trace_event export — one per job when several jobs share a file.
type TraceJSON struct {
	Name  string
	Trace *Trace
	PID   int
}

// WriteChromeTrace writes traces in Chrome trace_event JSON ("Trace
// Event Format", ph "X" complete events) to w. Load the file at
// chrome://tracing or https://ui.perfetto.dev. Nested spans share a
// thread track; the viewer reconstructs nesting from timestamps.
func WriteChromeTrace(w io.Writer, traces []TraceJSON) error {
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	for _, tj := range traces {
		if tj.Trace == nil {
			continue
		}
		// Process-name metadata event names the track in the viewer.
		if !first {
			b.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&b, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%q}}", tj.PID, tj.Name)
		for i := range tj.Trace.spans {
			s := &tj.Trace.spans[i]
			b.WriteString(",\n")
			fmt.Fprintf(&b, "{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":", s.name, s.stage.String())
			usTS(&b, s.start)
			b.WriteString(",\"dur\":")
			usTS(&b, s.end-s.start)
			fmt.Fprintf(&b, ",\"pid\":%d,\"tid\":0}", tj.PID)
		}
		if d := tj.Trace.Dropped(); d > 0 {
			b.WriteString(",\n")
			fmt.Fprintf(&b, "{\"name\":\"dropped_spans\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"count\":%d}}", tj.PID, d)
		}
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteChromeTraceFile writes a Chrome trace_event file at path.
func WriteChromeTraceFile(path string, traces []TraceJSON) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, traces); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// MetricsJSON is a named registry in a metrics export.
type MetricsJSON struct {
	Name     string
	Registry *Registry
}

// WriteMetrics writes registries as deterministic JSON: final values
// sorted by series name, then the ticker samples in record order with
// series in registration order.
func WriteMetrics(w io.Writer, regs []MetricsJSON) error {
	var b strings.Builder
	b.WriteString("{\"schema\":\"rambda-metrics/1\",\"registries\":[\n")
	for ri, mj := range regs {
		if ri > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "{\"name\":%q,\"final\":{", mj.Name)
		names, vals := mj.Registry.Final()
		for i, n := range names {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%q:%s", n, formatVal(vals[i]))
		}
		b.WriteString("},\"samples\":[")
		cn := mj.Registry.CounterNames()
		gn := mj.Registry.GaugeNames()
		for si, s := range mj.Registry.Samples() {
			if si > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "\n{\"at_ps\":%d", int64(s.At))
			for i, n := range cn {
				fmt.Fprintf(&b, ",%q:%d", n, s.Counters[i])
			}
			for i, n := range gn {
				fmt.Fprintf(&b, ",%q:%s", n, formatVal(s.Gauges[i]))
			}
			b.WriteString("}")
		}
		b.WriteString("]}")
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMetricsFile writes a metrics JSON file at path.
func WriteMetricsFile(path string, regs []MetricsJSON) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMetrics(f, regs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// formatVal renders a gauge/final value deterministically: integers
// (the overwhelmingly common case — counters, depths, byte counts)
// print without a fraction; everything else gets a fixed 6-decimal
// form. strconv's shortest-float form is deterministic too, but a
// fixed width keeps diffs readable.
func formatVal(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6f", v)
}

// BreakdownRow is one stage of a per-stage latency breakdown.
type BreakdownRow struct {
	Stage Stage
	Self  sim.Duration
	Count int64
	Share float64 // fraction of total self time
}

// BreakdownRows summarizes a trace's per-stage self time in stage
// display order, with each stage's share of the total.
func BreakdownRows(t *Trace) []BreakdownRow {
	total := t.TotalSelf()
	rows := make([]BreakdownRow, 0, NumStages)
	for _, s := range Stages() {
		r := BreakdownRow{Stage: s, Self: t.StageTotal(s), Count: t.StageCount(s)}
		if total > 0 {
			r.Share = float64(r.Self) / float64(total)
		}
		rows = append(rows, r)
	}
	return rows
}
