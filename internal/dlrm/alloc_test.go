package dlrm

import (
	"testing"
)

// Steady-state allocation guards for the DLRM gather path: a query
// stream driven through NextQueryInto + InferInto with caller scratch
// must not allocate once the scratch reaches its high-water mark. This
// path was fig13's allocation bill (~6.9M allocs/run from Table.Row,
// the per-query dedup map, and the per-request accumulator).

func TestGatherPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are distorted under the race detector")
	}
	for _, withMemo := range []bool{false, true} {
		model, ds := buildModel(t, withMemo)
		var q Query
		var sc InferScratch
		// Warm the scratch to its high-water mark.
		for i := 0; i < 32; i++ {
			ds.NextQueryInto(&q)
			model.InferInto(q, AggSum, &sc)
		}
		n := testing.AllocsPerRun(200, func() {
			ds.NextQueryInto(&q)
			model.InferInto(q, AggSum, &sc)
		})
		if n != 0 {
			t.Fatalf("memo=%v: %.2f allocs/op in steady state, want 0", withMemo, n)
		}
	}
}

// The Into forms must be observationally identical to the allocating
// forms: same query stream, bit-identical scores and accumulators, same
// traces and stats.
func TestInferIntoMatchesInfer(t *testing.T) {
	modelA, dsA := buildModel(t, true)
	modelB, dsB := buildModel(t, true)
	var q Query
	var sc InferScratch
	for i := 0; i < 200; i++ {
		qa := dsA.NextQuery()
		dsB.NextQueryInto(&q)
		scoreA, accA, stA := modelA.Infer(qa, AggSum)
		scoreB, accB, stB := modelB.InferInto(q, AggSum, &sc)
		if scoreA != scoreB {
			t.Fatalf("query %d: score %v vs %v", i, scoreA, scoreB)
		}
		if len(accA) != len(accB) {
			t.Fatalf("query %d: acc lengths differ", i)
		}
		for j := range accA {
			if accA[j] != accB[j] {
				t.Fatalf("query %d: acc[%d] %v vs %v", i, j, accA[j], accB[j])
			}
		}
		if stA.MemoHits != stB.MemoHits || stA.ReducedVectors != stB.ReducedVectors ||
			stA.FLOPs != stB.FLOPs || len(stA.Trace) != len(stB.Trace) {
			t.Fatalf("query %d: stats diverged: %+v vs %+v", i, stA, stB)
		}
		for j := range stA.Trace {
			if stA.Trace[j] != stB.Trace[j] {
				t.Fatalf("query %d: trace[%d] %+v vs %+v", i, j, stA.Trace[j], stB.Trace[j])
			}
		}
	}
}

// ReduceRowInto must be bit-identical to decode-then-Reduce for every
// operator, including the first-fold overwrite semantics of max/min.
func TestReduceRowIntoMatchesReduce(t *testing.T) {
	model, _ := buildModel(t, false)
	tb := model.Table
	for _, op := range []AggOp{AggSum, AggMax, AggMin, AggDot} {
		ref := make([]float32, tb.Dim)
		got := make([]float32, tb.Dim)
		for i, row := range []int{3, 0, 77, 4095, 77} {
			first := i == 0
			Reduce(op, ref, tb.Row(row), 0.5, first)
			tb.ReduceRowInto(op, got, row, 0.5, first)
			for j := range ref {
				if ref[j] != got[j] {
					t.Fatalf("op=%v fold %d: [%d] %v vs %v", op, i, j, ref[j], got[j])
				}
			}
		}
	}
}
