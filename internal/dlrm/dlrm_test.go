package dlrm

import (
	"math"
	"testing"
	"testing/quick"

	"rambda/internal/memspace"
	"rambda/internal/sim"
)

func smallCategory() Category {
	return Category{
		Name: "Test", Rows: 4096, BundleSize: 4,
		BundlesPerQuery: 3, SinglesPerQuery: 5, BundleSkew: 0.9,
	}
}

func buildModel(t *testing.T, withMemo bool) (*Model, *Dataset) {
	t.Helper()
	space := memspace.New()
	rng := sim.NewRNG(11)
	ds := NewDataset(smallCategory(), 7)
	table := NewTable(space, "emb", ds.Cat.Rows, 64, memspace.KindDRAM, rng)
	var memo *Memo
	if withMemo {
		memo = BuildMemo(space, "memo", table, ds.Bundles, table.Rows/4, memspace.KindDRAM, rng)
	}
	mlp := NewMLP(64, 32, rng)
	return NewModel(table, memo, mlp, ds.Bundles), ds
}

func TestTableRowRoundTrip(t *testing.T) {
	space := memspace.New()
	table := NewTable(space, "t", 16, 8, memspace.KindDRAM, sim.NewRNG(1))
	v := []float32{1, -2, 3.5, 0, 8, -0.25, 6, 7}
	table.SetRow(3, v)
	got := table.Row(3)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("row[%d]=%v, want %v", i, got[i], v[i])
		}
	}
	if table.RowBytes() != 32 {
		t.Fatal("row bytes")
	}
	if table.RowAddr(1)-table.RowAddr(0) != 32 {
		t.Fatal("row stride")
	}
}

func TestTableBounds(t *testing.T) {
	space := memspace.New()
	table := NewTable(space, "t", 4, 8, memspace.KindDRAM, sim.NewRNG(1))
	for _, f := range []func(){
		func() { table.RowAddr(4) },
		func() { table.RowAddr(-1) },
		func() { table.SetRow(0, []float32{1}) },
	} {
		func() {
			defer func() { recover() }()
			f()
			t.Fatal("expected panic")
		}()
	}
}

func TestReduceOperators(t *testing.T) {
	a := []float32{1, 5, -2}
	b := []float32{3, 2, -7}

	sum := make([]float32, 3)
	Reduce(AggSum, sum, a, 1, true)
	Reduce(AggSum, sum, b, 1, false)
	if sum[0] != 4 || sum[1] != 7 || sum[2] != -9 {
		t.Fatalf("sum=%v", sum)
	}

	max := make([]float32, 3)
	Reduce(AggMax, max, a, 1, true)
	Reduce(AggMax, max, b, 1, false)
	if max[0] != 3 || max[1] != 5 || max[2] != -2 {
		t.Fatalf("max=%v", max)
	}

	min := make([]float32, 3)
	Reduce(AggMin, min, a, 1, true)
	Reduce(AggMin, min, b, 1, false)
	if min[0] != 1 || min[1] != 2 || min[2] != -7 {
		t.Fatalf("min=%v", min)
	}

	dot := make([]float32, 3)
	Reduce(AggDot, dot, a, 2, true)
	Reduce(AggDot, dot, b, -1, false)
	if dot[0] != -1 || dot[1] != 8 || dot[2] != 3 {
		t.Fatalf("dot=%v", dot)
	}
}

func TestMemoizedEqualsNative(t *testing.T) {
	// The load-bearing MERCI property: memoized reduction returns
	// exactly the native result.
	mMemo, ds := buildModel(t, true)
	mNative := NewModel(mMemo.Table, nil, mMemo.MLP, ds.Bundles)
	for i := 0; i < 50; i++ {
		q := ds.NextQuery()
		_, accA, stA := mMemo.Infer(q, AggSum)
		_, accB, stB := mNative.Infer(q, AggSum)
		for j := range accA {
			if math.Abs(float64(accA[j]-accB[j])) > 1e-3 {
				t.Fatalf("query %d dim %d: memo %v vs native %v", i, j, accA[j], accB[j])
			}
		}
		if stA.MemoHits == 0 {
			t.Fatalf("query %d: no memo hits with full-budget memo", i)
		}
		if len(stA.Trace) >= len(stB.Trace) {
			t.Fatalf("memoized trace (%d) not smaller than native (%d)", len(stA.Trace), len(stB.Trace))
		}
	}
}

func TestMemoBudgetLimitsHits(t *testing.T) {
	space := memspace.New()
	rng := sim.NewRNG(3)
	ds := NewDataset(smallCategory(), 7)
	table := NewTable(space, "emb", ds.Cat.Rows, 64, memspace.KindDRAM, rng)
	// Tiny budget: only the first 8 bundles are memoized.
	memo := BuildMemo(space, "memo", table, ds.Bundles, 8, memspace.KindDRAM, rng)
	if memo.Memoized() != 8 {
		t.Fatalf("memoized=%d", memo.Memoized())
	}
	if _, ok := memo.Lookup(7); !ok {
		t.Fatal("hot bundle missing")
	}
	if _, ok := memo.Lookup(9); ok {
		t.Fatal("cold bundle memoized past budget")
	}
}

func TestMemoOverheadRatio(t *testing.T) {
	m, _ := buildModel(t, true)
	ratio := m.Memo.OverheadRatio(m.Table)
	if ratio > 0.26 || ratio <= 0 {
		t.Fatalf("overhead=%v, want <= 0.25 (paper's memo budget)", ratio)
	}
}

func TestMemoBypassedForNonSumOps(t *testing.T) {
	m, ds := buildModel(t, true)
	q := ds.NextQuery()
	_, _, st := m.Infer(q, AggMax)
	if st.MemoHits != 0 {
		t.Fatal("memoized partial sums must not serve max reductions")
	}
	if st.ReducedVectors != q.NumItems(ds.Cat.BundleSize) {
		t.Fatalf("reduced=%d, want %d", st.ReducedVectors, q.NumItems(ds.Cat.BundleSize))
	}
}

func TestInferTraceMatchesQueryShape(t *testing.T) {
	m, ds := buildModel(t, false)
	q := ds.NextQuery()
	_, _, st := m.Infer(q, AggSum)
	want := q.NumItems(ds.Cat.BundleSize)
	if len(st.Trace) != want || st.ReducedVectors != want {
		t.Fatalf("trace=%d reduced=%d, want %d", len(st.Trace), st.ReducedVectors, want)
	}
	for _, a := range st.Trace {
		if a.Bytes != 256 { // dim 64 x 4B
			t.Fatalf("access bytes=%d", a.Bytes)
		}
	}
	if st.FLOPs <= 0 {
		t.Fatal("FLOPs not counted")
	}
}

func TestMLPDeterministicAndBounded(t *testing.T) {
	rng := sim.NewRNG(5)
	mlp := NewMLP(8, 4, rng)
	x := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	s1, fl := mlp.Forward(x)
	s2, _ := mlp.Forward(x)
	if s1 != s2 {
		t.Fatal("MLP must be deterministic")
	}
	if s1 <= 0 || s1 >= 1 {
		t.Fatalf("sigmoid output %v out of (0,1)", s1)
	}
	if fl != 4*(2*8+2)+4 {
		t.Fatalf("flops=%d", fl)
	}
}

func TestDatasetQueriesInRange(t *testing.T) {
	for _, cat := range AmazonCategories {
		cat := cat
		cat.Rows /= 100 // shrink for test speed
		ds := NewDataset(cat, 42)
		for i := 0; i < 20; i++ {
			q := ds.NextQuery()
			if len(q.Bundles) != cat.BundlesPerQuery || len(q.Singles) != cat.SinglesPerQuery {
				t.Fatalf("%s: query shape %d/%d", cat.Name, len(q.Bundles), len(q.Singles))
			}
			for _, b := range q.Bundles {
				if b < 0 || b >= len(ds.Bundles) {
					t.Fatalf("%s: bundle %d out of range", cat.Name, b)
				}
			}
			for _, s := range q.Singles {
				if s < 0 || s >= cat.Rows {
					t.Fatalf("%s: single %d out of range", cat.Name, s)
				}
			}
		}
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a := NewDataset(smallCategory(), 9)
	b := NewDataset(smallCategory(), 9)
	for i := 0; i < 10; i++ {
		qa, qb := a.NextQuery(), b.NextQuery()
		for j := range qa.Bundles {
			if qa.Bundles[j] != qb.Bundles[j] {
				t.Fatal("same seed, different queries")
			}
		}
	}
}

func TestReducePropertySumCommutes(t *testing.T) {
	// Sum reduction must be order-independent (up to float tolerance).
	f := func(perm uint8) bool {
		space := memspace.New()
		table := NewTable(space, "t", 32, 16, memspace.KindDRAM, sim.NewRNG(2))
		items := []int{1, 5, 9, 13, 21}
		rot := int(perm) % len(items)
		rotated := append(append([]int{}, items[rot:]...), items[:rot]...)

		sum := func(order []int) []float32 {
			acc := make([]float32, 16)
			for i, it := range order {
				Reduce(AggSum, acc, table.Row(it), 1, i == 0)
			}
			return acc
		}
		a, b := sum(items), sum(rotated)
		for i := range a {
			if math.Abs(float64(a[i]-b[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMultiModelConcatAndScore(t *testing.T) {
	space := memspace.New()
	cat := smallCategory()
	cat.Rows = 1024
	m, datasets := BuildMultiModel(space, memspace.KindDRAM, cat, 3, 16, 99)
	if len(m.Tables) != 3 || m.MLP.Dim != 48 {
		t.Fatalf("shape: tables=%d mlpDim=%d", len(m.Tables), m.MLP.Dim)
	}
	q := MultiQuery{}
	for _, ds := range datasets {
		q.PerTable = append(q.PerTable, ds.NextQuery())
	}
	score, st := m.Infer(q, AggSum)
	if score <= 0 || score >= 1 {
		t.Fatalf("score=%v", score)
	}
	if st.MemoHits == 0 {
		t.Fatal("multi-table memoization never hit")
	}
	// Trace spans all three tables' address ranges.
	inRange := make([]bool, 3)
	for _, a := range st.Trace {
		for i, table := range m.Tables {
			if table.Range().Contains(a.Addr) || m.Memos[i].Table().Range().Contains(a.Addr) {
				inRange[i] = true
			}
		}
	}
	for i, ok := range inRange {
		if !ok {
			t.Fatalf("table %d contributed no accesses", i)
		}
	}
	// Determinism.
	score2, _ := m.Infer(q, AggSum)
	if score2 != score {
		t.Fatal("multi-table inference must be deterministic")
	}
}

func TestMultiModelValidation(t *testing.T) {
	space := memspace.New()
	rng := sim.NewRNG(1)
	tbl := NewTable(space, "t", 64, 8, memspace.KindDRAM, rng)
	mlp := NewMLP(8, 4, rng)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("no tables", func() { NewMultiModel(nil, nil, mlp, nil) })
	mustPanic("arity", func() {
		NewMultiModel([]*Table{tbl}, []*Memo{nil, nil}, mlp, [][][]int{nil})
	})
	wrongMLP := NewMLP(16, 4, rng)
	mustPanic("mlp dim", func() {
		NewMultiModel([]*Table{tbl}, []*Memo{nil}, wrongMLP, [][][]int{nil})
	})
	m := NewMultiModel([]*Table{tbl}, []*Memo{nil}, mlp, [][][]int{{{1, 2}}})
	mustPanic("query arity", func() { m.Infer(MultiQuery{}, AggSum) })
}
