package dlrm

import (
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// MultiModel is the full DLRM shape (Naumov et al.): one embedding
// table per sparse feature group, each reduced independently, the
// pooled vectors concatenated with the dense features and fed to the
// top MLP. The paper's evaluation exercises the single-table MERCI
// configuration; MultiModel covers the general deployment the
// introduction motivates.
type MultiModel struct {
	Tables []*Table
	Memos  []*Memo // parallel to Tables; entries may be nil
	MLP    *MLP

	bundles [][][]int // per-table bundle definitions
}

// NewMultiModel assembles a model over per-table data. memos[i] and
// bundles[i] may be nil/empty for tables without memoization.
func NewMultiModel(tables []*Table, memos []*Memo, mlp *MLP, bundles [][][]int) *MultiModel {
	if len(tables) == 0 {
		panic("dlrm: no embedding tables")
	}
	if len(memos) != len(tables) || len(bundles) != len(tables) {
		panic("dlrm: memos/bundles must parallel tables")
	}
	dim := tables[0].Dim
	for _, t := range tables {
		if t.Dim != dim {
			panic("dlrm: mixed embedding dimensions")
		}
	}
	if mlp.Dim != dim*len(tables) {
		panic("dlrm: top MLP input must be tables*dim")
	}
	return &MultiModel{Tables: tables, Memos: memos, MLP: mlp, bundles: bundles}
}

// MultiQuery is one inference request: a Query per table.
type MultiQuery struct {
	PerTable []Query
}

// Infer reduces every table and scores the concatenation, returning the
// combined access trace.
func (m *MultiModel) Infer(q MultiQuery, op AggOp) (float32, InferStats) {
	if len(q.PerTable) != len(m.Tables) {
		panic("dlrm: query arity mismatch")
	}
	concat := make([]float32, 0, m.MLP.Dim)
	var st InferStats
	for ti, table := range m.Tables {
		sub := NewModel(table, m.Memos[ti], nil, m.bundles[ti])
		acc := make([]float32, table.Dim)
		first := true
		tq := q.PerTable[ti]
		useMemo := sub.Memo != nil && op == AggSum
		for _, b := range tq.Bundles {
			if useMemo {
				if row, ok := sub.Memo.Lookup(b); ok {
					mt := sub.Memo.Table()
					st.Trace = append(st.Trace, Access{Addr: mt.RowAddr(row), Bytes: mt.RowBytes()})
					Reduce(AggSum, acc, mt.Row(row), 1, first)
					first = false
					st.MemoHits++
					st.ReducedVectors++
					continue
				}
			}
			for _, item := range m.bundles[ti][b] {
				st.Trace = append(st.Trace, Access{Addr: table.RowAddr(item), Bytes: table.RowBytes()})
				Reduce(op, acc, table.Row(item), 1, first)
				first = false
				st.ReducedVectors++
			}
		}
		for _, item := range tq.Singles {
			st.Trace = append(st.Trace, Access{Addr: table.RowAddr(item), Bytes: table.RowBytes()})
			Reduce(op, acc, table.Row(item), 1, first)
			first = false
			st.ReducedVectors++
		}
		concat = append(concat, acc...)
	}
	score, flops := m.MLP.Forward(concat)
	st.FLOPs = flops
	return score, st
}

// BuildMultiModel materializes n tables of the given category shape in
// one space, memoizing each with the 0.25x budget.
func BuildMultiModel(space *memspace.Space, kind memspace.Kind, cat Category, nTables, dim int, seed uint64) (*MultiModel, []*Dataset) {
	rng := sim.NewRNG(seed)
	tables := make([]*Table, nTables)
	memos := make([]*Memo, nTables)
	bundles := make([][][]int, nTables)
	datasets := make([]*Dataset, nTables)
	for i := 0; i < nTables; i++ {
		ds := NewDataset(cat, seed+uint64(i)*7)
		datasets[i] = ds
		tables[i] = NewTable(space, nameN("emb", i), cat.Rows, dim, kind, rng)
		memos[i] = BuildMemo(space, nameN("memo", i), tables[i], ds.Bundles, cat.Rows/4, kind, rng)
		bundles[i] = ds.Bundles
	}
	mlp := NewMLP(dim*nTables, 32, rng)
	return NewMultiModel(tables, memos, mlp, bundles), datasets
}

func nameN(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i))
}
