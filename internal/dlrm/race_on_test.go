//go:build race

package dlrm

// raceEnabled skips steady-state allocation guards when the race
// detector's instrumentation would distort the counts.
const raceEnabled = true
