package dlrm

import (
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// Memo is a MERCI-style memoization table: the precomputed sums of
// frequently co-occurring item groups ("bundles"). A query's sub-query
// that matches a memoized bundle costs one memory access instead of
// one per item. The memo budget follows the paper's configuration:
// memoization tables sized at 0.25x the original embedding table.
type Memo struct {
	table *Table
	// rowFor maps bundle id -> memo row; only the hottest bundles fit
	// the budget.
	rowFor map[int]int
}

// BuildMemo precomputes bundle sums from src into a memo table of at
// most budgetRows rows, memoizing bundles in the given order (callers
// pass bundles hottest-first, as MERCI's clustering does). The memo
// lives in the same memory kind as the source table.
func BuildMemo(space *memspace.Space, name string, src *Table, bundles [][]int,
	budgetRows int, kind memspace.Kind, rng *sim.RNG) *Memo {
	if budgetRows <= 0 {
		panic("dlrm: memo budget must be positive")
	}
	n := len(bundles)
	if n > budgetRows {
		n = budgetRows
	}
	if n == 0 {
		panic("dlrm: no bundles to memoize")
	}
	memoTable := NewTable(space, name, n, src.Dim, kind, rng)
	m := &Memo{table: memoTable, rowFor: make(map[int]int, n)}
	for b := 0; b < n; b++ {
		sum := make([]float32, src.Dim)
		for i, item := range bundles[b] {
			Reduce(AggSum, sum, src.Row(item), 1, i == 0)
		}
		memoTable.SetRow(b, sum)
		m.rowFor[b] = b
	}
	return m
}

// Lookup returns the memo row for a bundle, if memoized.
func (m *Memo) Lookup(bundle int) (int, bool) {
	r, ok := m.rowFor[bundle]
	return r, ok
}

// Table exposes the memo's backing table (for access traces).
func (m *Memo) Table() *Table { return m.table }

// Memoized reports how many bundles fit the budget.
func (m *Memo) Memoized() int { return len(m.rowFor) }

// OverheadRatio reports memo bytes relative to the source table.
func (m *Memo) OverheadRatio(src *Table) float64 {
	return float64(m.table.Rows*m.table.RowBytes()) / float64(src.Rows*src.RowBytes())
}
