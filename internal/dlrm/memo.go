package dlrm

import (
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// Memo is a MERCI-style memoization table: the precomputed sums of
// frequently co-occurring item groups ("bundles"). A query's sub-query
// that matches a memoized bundle costs one memory access instead of
// one per item. The memo budget follows the paper's configuration:
// memoization tables sized at 0.25x the original embedding table.
type Memo struct {
	table *Table
	// memoized is the number of bundles that fit the budget. Bundles
	// arrive hottest-first and memo row b holds bundle b's sum, so the
	// id -> row map is the identity over [0, memoized) — a bound check,
	// not a map lookup, on the per-request gather path.
	memoized int
}

// BuildMemo precomputes bundle sums from src into a memo table of at
// most budgetRows rows, memoizing bundles in the given order (callers
// pass bundles hottest-first, as MERCI's clustering does). The memo
// lives in the same memory kind as the source table.
func BuildMemo(space *memspace.Space, name string, src *Table, bundles [][]int,
	budgetRows int, kind memspace.Kind, rng *sim.RNG) *Memo {
	if budgetRows <= 0 {
		panic("dlrm: memo budget must be positive")
	}
	n := len(bundles)
	if n > budgetRows {
		n = budgetRows
	}
	if n == 0 {
		panic("dlrm: no bundles to memoize")
	}
	memoTable := NewTable(space, name, n, src.Dim, kind, rng)
	m := &Memo{table: memoTable, memoized: n}
	// One scratch row for the whole build: AggSum starts every bundle
	// from zero either way, so zeroing + ReduceRowInto is bit-identical
	// to the old fresh-slice + Row + Reduce per bundle — without the
	// per-item row materialization that dominated build allocations.
	sum := make([]float32, src.Dim)
	for b := 0; b < n; b++ {
		for j := range sum {
			sum[j] = 0
		}
		for i, item := range bundles[b] {
			src.ReduceRowInto(AggSum, sum, item, 1, i == 0)
		}
		memoTable.SetRow(b, sum)
	}
	return m
}

// Lookup returns the memo row for a bundle, if memoized.
func (m *Memo) Lookup(bundle int) (int, bool) {
	if bundle >= 0 && bundle < m.memoized {
		return bundle, true
	}
	return 0, false
}

// Table exposes the memo's backing table (for access traces).
func (m *Memo) Table() *Table { return m.table }

// Memoized reports how many bundles fit the budget.
func (m *Memo) Memoized() int { return m.memoized }

// OverheadRatio reports memo bytes relative to the source table.
func (m *Memo) OverheadRatio(src *Table) float64 {
	return float64(m.table.Rows*m.table.RowBytes()) / float64(src.Rows*src.RowBytes())
}
