package dlrm

import "rambda/internal/sim"

// Category parameterizes a synthetic dataset modeled after one Amazon
// Review category (the paper evaluates electronics, clothing-shoe-
// jewelry, home-kitchen, books, sports-outdoors, office-products with
// MERCI's clustering). Rows and query shapes follow the relative sizes
// reported by the MERCI paper; co-occurrence is expressed as bundles —
// groups of items that appear together — with Zipf-distributed bundle
// popularity so that a 0.25x memo budget captures most sub-queries.
type Category struct {
	Name string
	// Rows is the embedding table height.
	Rows int
	// BundleSize is the number of items per correlated bundle.
	BundleSize int
	// BundlesPerQuery and SinglesPerQuery shape query lengths.
	BundlesPerQuery int
	SinglesPerQuery int
	// BundleSkew is the Zipf theta of bundle popularity.
	BundleSkew float64
}

// AmazonCategories are the six evaluation datasets (scaled to simulator
// size; see DESIGN.md on scaling).
var AmazonCategories = []Category{
	{Name: "Electronics", Rows: 160_000, BundleSize: 4, BundlesPerQuery: 6, SinglesPerQuery: 8, BundleSkew: 0.9},
	{Name: "Clothing", Rows: 240_000, BundleSize: 3, BundlesPerQuery: 5, SinglesPerQuery: 6, BundleSkew: 0.9},
	{Name: "Home", Rows: 180_000, BundleSize: 4, BundlesPerQuery: 5, SinglesPerQuery: 10, BundleSkew: 0.85},
	{Name: "Books", Rows: 360_000, BundleSize: 5, BundlesPerQuery: 8, SinglesPerQuery: 12, BundleSkew: 0.95},
	{Name: "Sports", Rows: 140_000, BundleSize: 3, BundlesPerQuery: 4, SinglesPerQuery: 7, BundleSkew: 0.9},
	{Name: "Office", Rows: 100_000, BundleSize: 4, BundlesPerQuery: 4, SinglesPerQuery: 5, BundleSkew: 0.85},
}

// Query is one inference request: correlated bundles plus independent
// single items. Weights apply under AggDot.
type Query struct {
	Bundles []int
	Singles []int
}

// NumItems returns the total embedding rows the query touches
// un-memoized.
func (q Query) NumItems(bundleSize int) int {
	return len(q.Bundles)*bundleSize + len(q.Singles)
}

// Dataset is an instantiated category: its bundle definitions and a
// deterministic query stream.
type Dataset struct {
	Cat     Category
	Bundles [][]int

	rng        *sim.RNG
	bundleZipf *sim.Zipf
}

// NewDataset materializes a category with a deterministic seed.
// Bundles partition the front half of the table (hottest-first, as
// MERCI's clustering reorders items); singles draw from the whole
// table.
func NewDataset(cat Category, seed uint64) *Dataset {
	nBundles := cat.Rows / (2 * cat.BundleSize)
	if nBundles < 1 {
		panic("dlrm: table too small for bundles")
	}
	bundles := make([][]int, nBundles)
	for b := range bundles {
		items := make([]int, cat.BundleSize)
		for i := range items {
			items[i] = b*cat.BundleSize + i
		}
		bundles[b] = items
	}
	rng := sim.NewRNG(seed)
	return &Dataset{
		Cat:        cat,
		Bundles:    bundles,
		rng:        rng,
		bundleZipf: sim.NewZipf(rng, uint64(nBundles), cat.BundleSkew),
	}
}

// NextQuery draws the next query into fresh slices; hot paths use
// NextQueryInto.
func (d *Dataset) NextQuery() Query {
	var q Query
	d.NextQueryInto(&q)
	return q
}

// NextQueryInto refills q from the stream, reusing its backing slices.
// The RNG draw and rejection sequence is identical to the allocating
// form: bundle dedup is a linear scan over the (at most a handful of)
// bundles drawn so far, replacing the per-query map that dominated the
// fig13 allocation profile together with Table.Row.
func (d *Dataset) NextQueryInto(q *Query) {
	q.Bundles = q.Bundles[:0]
	q.Singles = q.Singles[:0]
drawing:
	for len(q.Bundles) < d.Cat.BundlesPerQuery {
		b := int(d.bundleZipf.Next())
		for _, prev := range q.Bundles {
			if prev == b {
				continue drawing
			}
		}
		q.Bundles = append(q.Bundles, b)
	}
	for i := 0; i < d.Cat.SinglesPerQuery; i++ {
		q.Singles = append(q.Singles, d.rng.Intn(d.Cat.Rows))
	}
}
