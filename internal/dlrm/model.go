package dlrm

import (
	"math"

	"rambda/internal/sim"
)

// MLP is the dense part of the recommendation model: one hidden layer
// with ReLU and a sigmoid output producing the click-through score. The
// paper notes this compute is "relatively lightweight in the model",
// which is why pure accelerator FLOPs don't rescue RAMBDA's DLRM
// throughput (Sec. VI-D).
type MLP struct {
	Dim, Hidden int
	w1          []float32 // row-major [hidden][dim], flat for locality
	b1          []float32
	w2          []float32 // [hidden]
	b2          float32
}

// NewMLP builds a deterministic MLP.
func NewMLP(dim, hidden int, rng *sim.RNG) *MLP {
	if dim <= 0 || hidden <= 0 {
		panic("dlrm: bad MLP shape")
	}
	m := &MLP{Dim: dim, Hidden: hidden}
	m.w1 = make([]float32, hidden*dim)
	for i := range m.w1 {
		m.w1[i] = float32(rng.Float64()*0.2 - 0.1)
	}
	m.b1 = make([]float32, hidden)
	m.w2 = make([]float32, hidden)
	for i := range m.w2 {
		m.w2[i] = float32(rng.Float64()*0.2 - 0.1)
	}
	return m
}

// Forward computes the score for a reduced embedding vector and returns
// the FLOP count. The accumulation order matches the original nested
// row-by-row loop exactly, so scores are bit-stable.
func (m *MLP) Forward(x []float32) (float32, int) {
	if len(x) != m.Dim {
		panic("dlrm: MLP input dimension mismatch")
	}
	var out float32
	for i := 0; i < m.Hidden; i++ {
		acc := m.b1[i]
		row := m.w1[i*m.Dim : (i+1)*m.Dim]
		xr := x[:len(row)]
		for j, v := range xr {
			acc += row[j] * v
		}
		if acc > 0 { // ReLU
			out += acc * m.w2[i]
		}
	}
	out += m.b2
	score := float32(1 / (1 + math.Exp(-float64(out))))
	flops := m.Hidden*(2*m.Dim+2) + 4
	return score, flops
}

// Model couples an embedding table, an optional MERCI memo, and the
// dense layers.
type Model struct {
	Table *Table
	Memo  *Memo // nil = native reduction
	MLP   *MLP

	bundles [][]int
}

// NewModel assembles a model over a dataset's table and bundles.
func NewModel(table *Table, memo *Memo, mlp *MLP, bundles [][]int) *Model {
	return &Model{Table: table, Memo: memo, MLP: mlp, bundles: bundles}
}

// InferStats describes one inference for the timing models.
type InferStats struct {
	// Trace is the embedding/memo gather (one entry per memory access).
	Trace []Access
	// MemoHits counts bundles served from the memo.
	MemoHits int
	// ReducedVectors is the number of vectors folded.
	ReducedVectors int
	// FLOPs is the dense-layer work.
	FLOPs int
}

// InferScratch is caller-owned reuse storage for InferInto, following
// the §8 ownership discipline: the caller keeps one per request stream
// and the steady state allocates nothing once both buffers reach their
// high-water marks.
type InferScratch struct {
	Acc   []float32
	Trace []Access
}

// Infer runs the embedding reduction (memoized when possible and when
// the operator is a sum — memoized partial results only compose under
// addition) followed by the MLP, returning the score. The returned
// slices are freshly allocated; hot paths use InferInto.
func (m *Model) Infer(q Query, op AggOp) (float32, []float32, InferStats) {
	var sc InferScratch
	return m.InferInto(q, op, &sc)
}

// InferInto is Infer against caller scratch: the accumulator and trace
// live in sc and are overwritten on the next call. The arithmetic
// (decode order, fold order, zero initialization) is bit-identical to
// the allocating form.
func (m *Model) InferInto(q Query, op AggOp, sc *InferScratch) (float32, []float32, InferStats) {
	if cap(sc.Acc) < m.Table.Dim {
		sc.Acc = make([]float32, m.Table.Dim)
	}
	acc := sc.Acc[:m.Table.Dim]
	for i := range acc {
		acc[i] = 0
	}
	var st InferStats
	st.Trace = sc.Trace[:0]
	first := true

	useMemo := m.Memo != nil && op == AggSum
	for _, b := range q.Bundles {
		if useMemo {
			if row, ok := m.Memo.Lookup(b); ok {
				mt := m.Memo.Table()
				st.Trace = append(st.Trace, Access{Addr: mt.RowAddr(row), Bytes: mt.RowBytes()})
				mt.ReduceRowInto(AggSum, acc, row, 1, first)
				first = false
				st.MemoHits++
				st.ReducedVectors++
				continue
			}
		}
		for _, item := range m.bundles[b] {
			st.Trace = append(st.Trace, Access{Addr: m.Table.RowAddr(item), Bytes: m.Table.RowBytes()})
			m.Table.ReduceRowInto(op, acc, item, 1, first)
			first = false
			st.ReducedVectors++
		}
	}
	for _, item := range q.Singles {
		st.Trace = append(st.Trace, Access{Addr: m.Table.RowAddr(item), Bytes: m.Table.RowBytes()})
		m.Table.ReduceRowInto(op, acc, item, 1, first)
		first = false
		st.ReducedVectors++
	}

	score, flops := m.MLP.Forward(acc)
	st.FLOPs = flops
	sc.Acc, sc.Trace = acc, st.Trace
	return score, acc, st
}
