// Package dlrm implements the deep learning recommendation model
// inference application of paper Sec. IV-C: embedding tables with
// gather-reduce ("embedding reduction") under configurable aggregation
// operators, MERCI sub-query memoization (Lee et al., ASPLOS'21) with
// 0.25x-sized memoization tables, small MLP layers, and a synthetic
// query generator parameterized per Amazon Review category.
//
// Embedding rows live in the simulated address space so every inference
// yields the memory access trace the CPU and accelerator models charge;
// the arithmetic is real (memoized and native reductions must agree
// bit-for-bit).
package dlrm

import (
	"encoding/binary"
	"fmt"
	"math"

	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// Access is one memory access of an inference trace.
type Access struct {
	Addr  memspace.Addr
	Bytes int
}

// Table is an embedding table of Rows x Dim float32 values backed by
// the simulated address space.
type Table struct {
	Rows int
	Dim  int

	space  *memspace.Space
	region *memspace.Region
}

// NewTable allocates and deterministically initializes a table.
func NewTable(space *memspace.Space, name string, rows, dim int, kind memspace.Kind, rng *sim.RNG) *Table {
	if rows <= 0 || dim <= 0 {
		panic("dlrm: bad table shape")
	}
	t := &Table{
		Rows:   rows,
		Dim:    dim,
		space:  space,
		region: space.Alloc(name, uint64(rows*dim*4), kind),
	}
	buf := t.region.Bytes()
	for i := 0; i < rows*dim; i++ {
		// Small deterministic values keep sums well-conditioned.
		v := float32(rng.Float64()*2 - 1)
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return t
}

// RowBytes is the size of one embedding vector.
func (t *Table) RowBytes() int { return t.Dim * 4 }

// RowAddr returns the address of row i.
func (t *Table) RowAddr(i int) memspace.Addr {
	if i < 0 || i >= t.Rows {
		panic(fmt.Sprintf("dlrm: row %d out of range [0,%d)", i, t.Rows))
	}
	return t.region.Base + memspace.Addr(i*t.RowBytes())
}

// Row decodes row i.
func (t *Table) Row(i int) []float32 {
	raw := t.space.Slice(t.RowAddr(i), t.RowBytes())
	out := make([]float32, t.Dim)
	for j := range out {
		out[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:]))
	}
	return out
}

// SetRow overwrites row i (used by the memo builder).
func (t *Table) SetRow(i int, v []float32) {
	if len(v) != t.Dim {
		panic("dlrm: dimension mismatch")
	}
	raw := t.space.Slice(t.RowAddr(i), t.RowBytes())
	for j, x := range v {
		binary.LittleEndian.PutUint32(raw[j*4:], math.Float32bits(x))
	}
}

// Range returns the table's memory region.
func (t *Table) Range() memspace.Range { return t.region.Range }

// AggOp selects the reduction operator; the APU's ALU supports several
// (paper: "the ALU is enhanced to support various aggregation
// operators (e.g., max/min/inner product)").
type AggOp int

const (
	// AggSum is the standard embedding-bag sum.
	AggSum AggOp = iota
	// AggMax is elementwise max.
	AggMax
	// AggMin is elementwise min.
	AggMin
	// AggDot is a weighted sum (inner product with per-item weights).
	AggDot
)

// String names the operator.
func (o AggOp) String() string {
	switch o {
	case AggSum:
		return "sum"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggDot:
		return "dot"
	default:
		return fmt.Sprintf("agg(%d)", int(o))
	}
}

// ReduceRowInto folds row i of the table into acc under op without
// materializing the row: values decode straight from the backing bytes
// in index order, so the arithmetic is bit-identical to
// Reduce(op, acc, t.Row(i), weight, first) while allocating nothing.
// This is the gather hot path — Row's per-call []float32 was the bulk
// of fig13's ~6.9M allocations per run.
func (t *Table) ReduceRowInto(op AggOp, acc []float32, i int, weight float32, first bool) {
	raw := t.space.Slice(t.RowAddr(i), t.RowBytes())
	// Reslicing acc to the decoded width lets the compiler drop the
	// per-element bounds checks in the hot loops below.
	acc = acc[:len(raw)/4]
	switch op {
	case AggSum:
		for j := range acc {
			acc[j] += math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:]))
		}
	case AggDot:
		for j := range acc {
			acc[j] += math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:])) * weight
		}
	case AggMax:
		for j := range acc {
			v := math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:]))
			if first || v > acc[j] {
				acc[j] = v
			}
		}
	case AggMin:
		for j := range acc {
			v := math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:]))
			if first || v < acc[j] {
				acc[j] = v
			}
		}
	default:
		panic("dlrm: unknown aggregation operator")
	}
}

// Reduce folds vec into acc under op. weight applies to AggDot (and is
// ignored elsewhere). first marks the initial fold.
func Reduce(op AggOp, acc, vec []float32, weight float32, first bool) {
	switch op {
	case AggSum:
		for i, v := range vec {
			acc[i] += v
		}
	case AggDot:
		for i, v := range vec {
			acc[i] += v * weight
		}
	case AggMax:
		for i, v := range vec {
			if first || v > acc[i] {
				acc[i] = v
			}
		}
	case AggMin:
		for i, v := range vec {
			if first || v < acc[i] {
				acc[i] = v
			}
		}
	default:
		panic("dlrm: unknown aggregation operator")
	}
}
