// Package cuckoo implements the 4-way, two-choice cuckoo hash table
// the RAMBDA APU uses for its outstanding-request state machine (paper
// Sec. III-C: "the outstanding request status is stored in a TCAM or
// cuckoo hash table for fast lookup"). Hardware implementations bound
// every lookup to two bucket reads, which is what makes the FSM's
// per-transition latency constant; this software model preserves that
// structure: lookups probe exactly two buckets, inserts displace
// entries along a bounded cuckoo path.
package cuckoo

import "fmt"

const (
	// SlotsPerBucket matches typical hardware cuckoo designs.
	SlotsPerBucket = 4
	// maxKicks bounds the displacement chain before the insert is
	// declared failed (hardware would raise a table-full condition).
	maxKicks = 64
)

// Table is a cuckoo hash table from uint64 keys to values of type V.
type Table[V any] struct {
	buckets [][]slot[V]
	mask    uint64
	n       int

	kicks int64 // lifetime displacements (for tests/telemetry)
}

type slot[V any] struct {
	occupied bool
	key      uint64
	val      V
}

// New creates a table with capacity for roughly `capacity` entries at a
// practical load factor. Bucket count is rounded to a power of two.
func New[V any](capacity int) *Table[V] {
	if capacity < 1 {
		capacity = 1
	}
	// Target ~80% max load: buckets = capacity / (slots * 0.8).
	nb := 1
	for nb*SlotsPerBucket*4/5 < capacity {
		nb <<= 1
	}
	b := make([][]slot[V], nb)
	for i := range b {
		b[i] = make([]slot[V], SlotsPerBucket)
	}
	return &Table[V]{buckets: b, mask: uint64(nb - 1)}
}

// The two hash functions: splitmix64 finalizers with distinct tweaks.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Table[V]) h1(key uint64) uint64 { return mix(key) & t.mask }
func (t *Table[V]) h2(key uint64) uint64 { return mix(key^0x9e3779b97f4a7c15) & t.mask }

// Len returns the number of stored entries.
func (t *Table[V]) Len() int { return t.n }

// Kicks reports lifetime cuckoo displacements.
func (t *Table[V]) Kicks() int64 { return t.kicks }

// Lookup probes the key's two candidate buckets.
func (t *Table[V]) Lookup(key uint64) (V, bool) {
	for _, bi := range [2]uint64{t.h1(key), t.h2(key)} {
		for i := range t.buckets[bi] {
			if s := &t.buckets[bi][i]; s.occupied && s.key == key {
				return s.val, true
			}
		}
	}
	var zero V
	return zero, false
}

// Insert adds or replaces key. It returns false when the table is full
// (the bounded displacement chain failed to find a home).
func (t *Table[V]) Insert(key uint64, val V) bool {
	// Replace in place if present.
	for _, bi := range [2]uint64{t.h1(key), t.h2(key)} {
		for i := range t.buckets[bi] {
			if s := &t.buckets[bi][i]; s.occupied && s.key == key {
				s.val = val
				return true
			}
		}
	}
	// Try an empty slot in either bucket.
	for _, bi := range [2]uint64{t.h1(key), t.h2(key)} {
		if t.placeInBucket(bi, key, val) {
			t.n++
			return true
		}
	}
	// Displace along a cuckoo path, recording it so a failed insert can
	// be rolled back without losing any resident entry.
	type step struct {
		bi uint64
		si int
	}
	var path []step
	curKey, curVal := key, val
	bi := t.h1(key)
	for kick := 0; kick < maxKicks; kick++ {
		// Rotate victim slots so repeated kicks don't thrash one slot.
		si := kick % SlotsPerBucket
		s := &t.buckets[bi][si]
		s.key, curKey = curKey, s.key
		s.val, curVal = curVal, s.val
		path = append(path, step{bi: bi, si: si})
		t.kicks++
		// Re-home the displaced entry in its alternate bucket.
		alt := t.h1(curKey)
		if alt == bi {
			alt = t.h2(curKey)
		}
		if t.placeInBucket(alt, curKey, curVal) {
			t.n++
			return true
		}
		bi = alt
	}
	// Table full: undo the displacement chain in reverse, restoring the
	// original contents exactly.
	for i := len(path) - 1; i >= 0; i-- {
		s := &t.buckets[path[i].bi][path[i].si]
		s.key, curKey = curKey, s.key
		s.val, curVal = curVal, s.val
	}
	if curKey != key {
		panic(fmt.Sprintf("cuckoo: undo corrupted, recovered key %d != %d", curKey, key))
	}
	return false
}

func (t *Table[V]) placeInBucket(bi uint64, key uint64, val V) bool {
	for i := range t.buckets[bi] {
		if !t.buckets[bi][i].occupied {
			t.buckets[bi][i] = slot[V]{occupied: true, key: key, val: val}
			return true
		}
	}
	return false
}

// Delete removes key, reporting whether it was present.
func (t *Table[V]) Delete(key uint64) bool {
	for _, bi := range [2]uint64{t.h1(key), t.h2(key)} {
		for i := range t.buckets[bi] {
			if s := &t.buckets[bi][i]; s.occupied && s.key == key {
				var zero slot[V]
				t.buckets[bi][i] = zero
				t.n--
				return true
			}
		}
	}
	return false
}

// Range calls fn for every entry until fn returns false.
func (t *Table[V]) Range(fn func(key uint64, val V) bool) {
	for bi := range t.buckets {
		for i := range t.buckets[bi] {
			if s := &t.buckets[bi][i]; s.occupied {
				if !fn(s.key, s.val) {
					return
				}
			}
		}
	}
}
