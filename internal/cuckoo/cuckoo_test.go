package cuckoo

import (
	"testing"
	"testing/quick"
)

func TestInsertLookupDelete(t *testing.T) {
	tb := New[string](64)
	if !tb.Insert(1, "one") || !tb.Insert(2, "two") {
		t.Fatal("insert")
	}
	v, ok := tb.Lookup(1)
	if !ok || v != "one" {
		t.Fatalf("lookup: %q %v", v, ok)
	}
	if _, ok := tb.Lookup(99); ok {
		t.Fatal("phantom key")
	}
	tb.Insert(1, "uno")
	v, _ = tb.Lookup(1)
	if v != "uno" {
		t.Fatal("replace failed")
	}
	if tb.Len() != 2 {
		t.Fatalf("len=%d", tb.Len())
	}
	if !tb.Delete(1) || tb.Delete(1) {
		t.Fatal("delete semantics")
	}
	if tb.Len() != 1 {
		t.Fatalf("len=%d after delete", tb.Len())
	}
}

func TestHighLoadTriggersKicks(t *testing.T) {
	tb := New[int](256)
	inserted := 0
	for i := uint64(0); i < 256; i++ {
		if tb.Insert(i, int(i)) {
			inserted++
		}
	}
	if inserted < 250 {
		t.Fatalf("inserted=%d of 256 at design load", inserted)
	}
	if tb.Kicks() == 0 {
		t.Fatal("expected displacement activity at high load")
	}
	for i := uint64(0); i < uint64(inserted); i++ {
		if v, ok := tb.Lookup(i); ok && v != int(i) {
			t.Fatalf("key %d corrupted: %d", i, v)
		}
	}
}

func TestFullTableInsertFailsWithoutLoss(t *testing.T) {
	tb := New[int](8) // tiny: buckets saturate quickly
	var held []uint64
	for i := uint64(0); i < 1000; i++ {
		if tb.Insert(i, int(i)) {
			held = append(held, i)
		}
	}
	if len(held) == 1000 {
		t.Skip("table never filled (hash spread too good at this size)")
	}
	// Every accepted key must still be present with its value.
	for _, k := range held {
		v, ok := tb.Lookup(k)
		if !ok || v != int(k) {
			t.Fatalf("accepted key %d lost or corrupted after failed inserts", k)
		}
	}
	if tb.Len() != len(held) {
		t.Fatalf("len=%d, held=%d", tb.Len(), len(held))
	}
}

func TestRange(t *testing.T) {
	tb := New[int](32)
	for i := uint64(10); i < 20; i++ {
		tb.Insert(i, int(i*2))
	}
	seen := map[uint64]int{}
	tb.Range(func(k uint64, v int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 10 || seen[15] != 30 {
		t.Fatalf("range saw %v", seen)
	}
	// Early termination.
	n := 0
	tb.Range(func(uint64, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop at %d", n)
	}
}

func TestModelEquivalenceProperty(t *testing.T) {
	// The table must behave like a map under random ops (when inserts
	// are accepted).
	f := func(ops []uint16) bool {
		tb := New[uint16](128)
		model := map[uint64]uint16{}
		for _, op := range ops {
			key := uint64(op % 200)
			switch op % 3 {
			case 0:
				if tb.Insert(key, op) {
					model[key] = op
				} else if _, inModel := model[key]; inModel {
					return false // replace must never fail
				}
			case 1:
				v, ok := tb.Lookup(key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 2:
				_, mok := model[key]
				if tb.Delete(key) != mok {
					return false
				}
				delete(model, key)
			}
			if tb.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLookupProbesTwoBucketsOnly(t *testing.T) {
	// Structural property of the hardware design: a key lives in one of
	// exactly two buckets.
	tb := New[int](512)
	for i := uint64(0); i < 400; i++ {
		tb.Insert(i, 1)
	}
	tb.Range(func(k uint64, _ int) bool {
		found := false
		for _, bi := range [2]uint64{tb.h1(k), tb.h2(k)} {
			for i := range tb.buckets[bi] {
				if tb.buckets[bi][i].occupied && tb.buckets[bi][i].key == k {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("key %d outside its two candidate buckets", k)
		}
		return true
	})
}
