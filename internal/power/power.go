// Package power models the power accounting behind the paper's energy
// results (Sec. VI-B, Tab. III). The wattages are the paper's measured
// values (RAPL for CPU/DIMMs, IPMI for the server box, FPGA firmware
// for the fabric); efficiency is computed from simulated throughput
// against those constants.
package power

// Measured component power draws from the paper, in watts.
const (
	// CPUFullLoad is the Intel Xeon package fully loaded on the KVS
	// workload.
	CPUFullLoad = 90.0
	// SmartNICARMs is the BlueField-2 ARM complex fully loaded.
	SmartNICARMs = 15.0
	// RambdaFPGAMin/Max bound the Arria 10 fabric at peak throughput
	// ("in the range of 24-27W").
	RambdaFPGAMin = 24.0
	RambdaFPGAMax = 27.0
	// ServerBoxCPU and ServerBoxRambda are whole-box IPMI readings; the
	// paper reports ~38% box-level reduction with RAMBDA.
	ServerBoxCPU    = 385.0
	ServerBoxRambda = 240.0
)

// RambdaFPGA is the midpoint fabric power used for efficiency math.
const RambdaFPGA = (RambdaFPGAMin + RambdaFPGAMax) / 2

// KopsPerWatt converts a throughput (ops/sec) and a power draw into
// the paper's Kop/W metric.
func KopsPerWatt(opsPerSec, watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return opsPerSec / 1e3 / watts
}

// BoxReduction reports the fractional whole-server power reduction of
// RAMBDA over the CPU baseline.
func BoxReduction() float64 {
	return 1 - ServerBoxRambda/ServerBoxCPU
}
