package power

import (
	"math"
	"testing"
)

func TestKopsPerWatt(t *testing.T) {
	if got := KopsPerWatt(11.7e6, 90); math.Abs(got-130) > 0.1 {
		t.Fatalf("got %v, want 130 Kop/W", got)
	}
	if KopsPerWatt(1e6, 0) != 0 {
		t.Fatal("zero watts must not divide")
	}
}

func TestBoxReduction(t *testing.T) {
	r := BoxReduction()
	// The paper reports ~38% whole-box reduction.
	if r < 0.3 || r > 0.45 {
		t.Fatalf("box reduction=%v, want ~0.38", r)
	}
}

func TestFPGAMidpoint(t *testing.T) {
	if RambdaFPGA <= RambdaFPGAMin || RambdaFPGA >= RambdaFPGAMax {
		t.Fatal("midpoint out of range")
	}
}
