package kvs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"rambda/internal/memspace"
)

func newStore(buckets int, pool uint64) *Store {
	return New(memspace.New(), Config{Buckets: buckets, PoolBytes: pool, Kind: memspace.KindDRAM})
}

func TestPutGetDelete(t *testing.T) {
	s := newStore(1024, 1<<20)
	if _, err := s.Put([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	val, _, ok := s.Get([]byte("alpha"))
	if !ok || string(val) != "one" {
		t.Fatalf("get=%q ok=%v", val, ok)
	}
	if _, _, ok := s.Get([]byte("beta")); ok {
		t.Fatal("phantom key")
	}
	if _, ok := s.Delete([]byte("alpha")); !ok {
		t.Fatal("delete failed")
	}
	if _, _, ok := s.Get([]byte("alpha")); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok := s.Delete([]byte("alpha")); ok {
		t.Fatal("double delete")
	}
	st := s.Stats()
	if st.Gets != 3 || st.Puts != 1 || st.Deletes != 2 || st.LiveItems != 0 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestUpdateInPlace(t *testing.T) {
	s := newStore(64, 1<<20)
	s.Put([]byte("k"), []byte("v1"))
	s.Put([]byte("k"), []byte("v2"))
	val, _, _ := s.Get([]byte("k"))
	if string(val) != "v2" {
		t.Fatalf("val=%q", val)
	}
	if s.Stats().LiveItems != 1 {
		t.Fatalf("live=%d, duplicate insert?", s.Stats().LiveItems)
	}
	// Growing past the size class reallocates but stays one item.
	s.Put([]byte("k"), make([]byte, 300))
	if s.Stats().LiveItems != 1 {
		t.Fatalf("live=%d after class change", s.Stats().LiveItems)
	}
	val, _, _ = s.Get([]byte("k"))
	if len(val) != 300 {
		t.Fatalf("len=%d", len(val))
	}
}

func TestAccessTraceCounts(t *testing.T) {
	// The paper's cost model: ~3 accesses per GET, ~4 per PUT (without
	// collisions).
	s := newStore(1<<16, 1<<20)
	key, val := []byte("key-000001"), make([]byte, 40)
	trace, err := s.Put(key, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 {
		t.Fatalf("PUT trace=%d accesses, want 4: %+v", len(trace), trace)
	}
	v, trace, ok := s.Get(key)
	if !ok || len(v) != 40 {
		t.Fatal("get")
	}
	if len(trace) != 3 {
		t.Fatalf("GET trace=%d accesses, want 3: %+v", len(trace), trace)
	}
	// First access is the bucket (read), last is the value (read).
	if trace[0].Write || trace[0].Bytes != 64 {
		t.Fatalf("bucket access %+v", trace[0])
	}
}

func TestChainingUnderCollisions(t *testing.T) {
	// One bucket: every key collides; >7 keys must chain.
	s := newStore(1, 1<<20)
	for i := 0; i < 30; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key-%02d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().ChainedBuckets < 3 {
		t.Fatalf("chained=%d, want >= 3", s.Stats().ChainedBuckets)
	}
	for i := 0; i < 30; i++ {
		v, _, ok := s.Get([]byte(fmt.Sprintf("key-%02d", i)))
		if !ok || v[0] != byte(i) {
			t.Fatalf("key %d lost in chain", i)
		}
	}
	// Update through the chain must not duplicate.
	live := s.Stats().LiveItems
	s.Put([]byte("key-29"), []byte{99})
	if s.Stats().LiveItems != live {
		t.Fatal("chained update created a duplicate")
	}
}

func TestPoolExhaustion(t *testing.T) {
	s := newStore(16, 1024)
	var failed bool
	for i := 0; i < 100; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key-%03d", i)), make([]byte, 64)); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("pool exhaustion not reported")
	}
}

func TestSlabReuse(t *testing.T) {
	s := newStore(64, 4096)
	// Fill, delete, refill repeatedly: free-list reuse must prevent
	// exhaustion.
	for round := 0; round < 50; round++ {
		for i := 0; i < 8; i++ {
			if _, err := s.Put([]byte(fmt.Sprintf("k%d", i)), make([]byte, 40)); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		for i := 0; i < 8; i++ {
			s.Delete([]byte(fmt.Sprintf("k%d", i)))
		}
	}
	if s.Stats().LiveItems != 0 {
		t.Fatal("leak")
	}
}

func TestStoreModelProperty(t *testing.T) {
	// The store must behave exactly like a map under random ops.
	type op struct {
		Op  uint8
		Key uint8
		Val uint16
	}
	f := func(ops []op) bool {
		s := newStore(16, 1<<20)
		model := map[string]string{}
		for _, o := range ops {
			key := []byte(fmt.Sprintf("key-%d", o.Key%32))
			switch o.Op % 3 {
			case 0:
				val := []byte(fmt.Sprintf("val-%d", o.Val))
				if _, err := s.Put(key, val); err != nil {
					return false
				}
				model[string(key)] = string(val)
			case 1:
				got, _, ok := s.Get(key)
				want, wantOK := model[string(key)]
				if ok != wantOK || (ok && string(got) != want) {
					return false
				}
			case 2:
				_, ok := s.Delete(key)
				_, wantOK := model[string(key)]
				if ok != wantOK {
					return false
				}
				delete(model, string(key))
			}
		}
		if int64(len(model)) != s.Stats().LiveItems {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWireRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: []byte("k")},
		{Op: OpPut, Key: []byte("key"), Val: []byte("value")},
		{Op: OpDelete, Key: []byte("gone")},
	}
	for _, r := range reqs {
		got, err := DecodeRequest(EncodeRequest(r))
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != r.Op || !bytes.Equal(got.Key, r.Key) || !bytes.Equal(got.Val, r.Val) {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
	}
	resp := Response{Status: StatusOK, Val: []byte("data")}
	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil || got.Status != StatusOK || !bytes.Equal(got.Val, resp.Val) {
		t.Fatalf("response round trip: %+v %v", got, err)
	}
}

func TestWireErrors(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2}); err == nil {
		t.Fatal("short request accepted")
	}
	if _, err := DecodeRequest([]byte{99, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad opcode accepted")
	}
	bad := EncodeRequest(Request{Op: OpPut, Key: []byte("k"), Val: []byte("v")})
	if _, err := DecodeRequest(bad[:8]); err == nil {
		t.Fatal("truncated request accepted")
	}
	if _, err := DecodeResponse([]byte{1}); err == nil {
		t.Fatal("short response accepted")
	}
}

func TestApply(t *testing.T) {
	s := newStore(64, 1<<20)
	resp, trace := Apply(s, Request{Op: OpPut, Key: []byte("k"), Val: []byte("v")})
	if resp.Status != StatusOK || len(trace) == 0 {
		t.Fatal("put via Apply")
	}
	resp, _ = Apply(s, Request{Op: OpGet, Key: []byte("k")})
	if resp.Status != StatusOK || string(resp.Val) != "v" {
		t.Fatalf("get via Apply: %+v", resp)
	}
	resp, _ = Apply(s, Request{Op: OpGet, Key: []byte("nope")})
	if resp.Status != StatusNotFound {
		t.Fatal("missing key status")
	}
	resp, _ = Apply(s, Request{Op: Op(77)})
	if resp.Status != StatusError {
		t.Fatal("bad op status")
	}
}

func TestClassFor(t *testing.T) {
	cases := map[int]int{1: 64, 64: 64, 65: 128, 1000: 1024, 64 << 10: 64 << 10}
	for in, want := range cases {
		got, err := classFor(in)
		if err != nil || got != want {
			t.Fatalf("classFor(%d)=%d,%v want %d", in, got, err, want)
		}
	}
	if _, err := classFor(0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := classFor(maxClass + 1); err == nil {
		t.Fatal("oversize accepted")
	}
}
