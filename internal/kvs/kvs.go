// Package kvs implements the in-memory key-value store of paper
// Sec. IV-A: a MICA-style set-associative, chained hash index over a
// slab-allocated item pool, living entirely inside the simulated
// physical address space so every operation yields the exact memory
// access trace (addresses, sizes, read/write) that the CPU, SmartNIC,
// and RAMBDA accelerator models charge to their respective datapaths.
// Matching MICA and KV-Direct, a GET costs three memory accesses on
// average and a PUT four.
//
// # API forms and buffer ownership
//
// The PRIMARY request-path API is the append/Into family —
// [Store.GetInto], [Store.PutInto], [Store.DeleteInto], [ApplyScratch],
// [AppendRequest], [AppendResponse]. Each takes caller-owned
// destination buffers (value bytes, access trace, wire frames), appends
// into them, and returns the grown slices; pass the returned slice back
// re-sliced to [:0] and the steady state allocates nothing once
// capacities reach the workload's high-water mark.
//
// Ownership and validity rules:
//
//   - Returned slices alias the buffers the caller passed in (or the
//     [Scratch]); they are valid only until the next call that reuses
//     those buffers. Retention sites (caches, dedup stores, history
//     logs) must copy.
//   - The store never retains caller buffers: key/value bytes are
//     copied into the simulated address space before the call returns,
//     so request buffers may be reused immediately.
//
// The allocating forms ([Store.Get], [Store.Put], [Store.Delete],
// [Apply], [EncodeRequest], [EncodeResponse]) are thin deprecated
// wrappers that pass nil buffers; they remain for one-shot callers and
// tests.
package kvs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"rambda/internal/memspace"
	"rambda/internal/obs"
)

// Access is one memory access of an operation's trace.
type Access struct {
	Addr  memspace.Addr
	Bytes int
	Write bool
}

const (
	// bucketBytes is one index bucket: 7 slots + 1 chain pointer, 8 B
	// each — a single cacheline, as in MICA.
	bucketBytes  = 64
	slotsPerBkt  = 7
	slotBytes    = 8
	itemHdrBytes = 8 // 2B keyLen, 4B valLen, 2B reserved
)

// Config sizes the store.
type Config struct {
	// Buckets is the number of index buckets (rounded up to a power of
	// two).
	Buckets int
	// PoolBytes is the item pool capacity.
	PoolBytes uint64
	// Kind places the store's regions (DRAM for Fig. 8, accel-local for
	// RAMBDA-LD/LH).
	Kind memspace.Kind
}

// Store is the key-value store.
type Store struct {
	space *memspace.Space
	index *memspace.Region
	pool  *memspace.Region
	slab  *slabAllocator

	mask uint64

	gets, puts, deletes, misses int64
	chained                     int64 // overflow buckets allocated
}

// New allocates and initializes a store inside the given space.
func New(space *memspace.Space, cfg Config) *Store {
	if cfg.Buckets <= 0 || cfg.PoolBytes == 0 {
		panic("kvs: bad config")
	}
	n := 1
	for n < cfg.Buckets {
		n <<= 1
	}
	index := space.Alloc("kvs-index", uint64(n)*bucketBytes, cfg.Kind)
	pool := space.Alloc("kvs-pool", cfg.PoolBytes, cfg.Kind)
	return &Store{
		space: space,
		index: index,
		pool:  pool,
		slab:  newSlabAllocator(pool.Range),
		mask:  uint64(n - 1),
	}
}

// IndexRange and PoolRange expose the store's memory layout (for MR
// registration and region-kind experiments).
func (s *Store) IndexRange() memspace.Range { return s.index.Range }
func (s *Store) PoolRange() memspace.Range  { return s.pool.Range }

// hashKey returns the 64-bit FNV-1a hash of key.
func hashKey(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64()
}

// Hash64 exposes the store's 64-bit FNV-1a key hash. Cluster-level
// routing (internal/scaleout's consistent-hash ring and hot-key
// counters) shards on exactly the hash the index uses, so a key's
// placement decision and its bucket choice never disagree.
func Hash64(key []byte) uint64 { return hashKey(key) }

func (s *Store) bucketAddr(h uint64) memspace.Addr {
	return s.index.Base + memspace.Addr((h&s.mask)*bucketBytes)
}

// tag is the in-slot partial hash; 0 means empty, chainTag marks the
// chain pointer slot.
func tagOf(h uint64) uint16 {
	t := uint16(h >> 48)
	if t == 0 || t == chainTag {
		t = 1
	}
	return t
}

const chainTag = 0xFFFF

// zeroBucket is the shared zero-fill source for freshly chained
// buckets; memspace.Write copies from it, so sharing is safe.
var zeroBucket [bucketBytes]byte

// slot helpers: a slot is [2B tag][6B item address].
func (s *Store) readSlot(bkt memspace.Addr, i int) (uint16, memspace.Addr) {
	raw := s.space.Slice(bkt+memspace.Addr(i*slotBytes), slotBytes)
	tag := binary.LittleEndian.Uint16(raw[0:2])
	var a [8]byte
	copy(a[:6], raw[2:8])
	addr := memspace.Addr(binary.LittleEndian.Uint64(a[:]))
	return tag, addr
}

func (s *Store) writeSlot(bkt memspace.Addr, i int, tag uint16, addr memspace.Addr) {
	raw := s.space.Slice(bkt+memspace.Addr(i*slotBytes), slotBytes)
	binary.LittleEndian.PutUint16(raw[0:2], tag)
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], uint64(addr))
	copy(raw[2:8], a[:6])
}

// writeItem serializes a key-value pair at addr.
func (s *Store) writeItem(addr memspace.Addr, key, val []byte) {
	buf := s.space.Slice(addr, itemHdrBytes+len(key)+len(val))
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[2:6], uint32(len(val)))
	copy(buf[itemHdrBytes:], key)
	copy(buf[itemHdrBytes+len(key):], val)
}

// readItem deserializes the item at addr.
func (s *Store) readItem(addr memspace.Addr) (key, val []byte) {
	hdr := s.space.Slice(addr, itemHdrBytes)
	kl := int(binary.LittleEndian.Uint16(hdr[0:2]))
	vl := int(binary.LittleEndian.Uint32(hdr[2:6]))
	body := s.space.Slice(addr+itemHdrBytes, kl+vl)
	return body[:kl], body[kl : kl+vl]
}

func itemBytes(key, val []byte) int { return itemHdrBytes + len(key) + len(val) }

// Get looks up key and returns the value (freshly allocated) plus the
// access trace.
//
// Deprecated: use GetInto with reusable buffers; Get allocates fresh
// value and trace slices per call.
func (s *Store) Get(key []byte) (val []byte, trace []Access, ok bool) {
	return s.GetInto(nil, nil, key)
}

// GetInto looks up key, appending the value bytes to dst and the
// memory accesses to trace. Both returned slices retain their grown
// capacity, so passing back dst[:0]/trace[:0] from the previous call
// makes the steady state allocation-free. On a miss the returned value
// slice is dst unextended.
func (s *Store) GetInto(dst []byte, trace []Access, key []byte) ([]byte, []Access, bool) {
	s.gets++
	h := hashKey(key)
	tag := tagOf(h)
	bkt := s.bucketAddr(h)
	for {
		trace = append(trace, Access{Addr: bkt, Bytes: bucketBytes})
		for i := 0; i < slotsPerBkt; i++ {
			t, addr := s.readSlot(bkt, i)
			if t != tag {
				continue
			}
			k, v := s.readItem(addr)
			trace = append(trace, Access{Addr: addr, Bytes: itemHdrBytes + len(k)})
			if !bytes.Equal(k, key) {
				continue // tag collision
			}
			trace = append(trace, Access{Addr: addr + memspace.Addr(itemHdrBytes+len(k)), Bytes: len(v)})
			return append(dst, v...), trace, true
		}
		ct, next := s.readSlot(bkt, slotsPerBkt)
		if ct != chainTag {
			s.misses++
			return dst, trace, false
		}
		bkt = next
	}
}

// Put inserts or updates key, returning the access trace.
//
// Deprecated: use PutInto with a reusable trace buffer.
func (s *Store) Put(key, val []byte) ([]Access, error) {
	return s.PutInto(nil, key, val)
}

// PutInto inserts or updates key, appending the memory accesses to the
// caller-provided trace (capacity retained across calls). The whole
// chain is searched for the key before inserting so a key never appears
// twice.
func (s *Store) PutInto(trace []Access, key, val []byte) ([]Access, error) {
	s.puts++
	h := hashKey(key)
	tag := tagOf(h)
	bkt := s.bucketAddr(h)

	var freeBkt memspace.Addr
	freeSlot := -1
	lastBkt := bkt
	for {
		trace = append(trace, Access{Addr: bkt, Bytes: bucketBytes})
		for i := 0; i < slotsPerBkt; i++ {
			t, addr := s.readSlot(bkt, i)
			if t == 0 {
				if freeSlot < 0 {
					freeBkt, freeSlot = bkt, i
				}
				continue
			}
			if t != tag {
				continue
			}
			k, v := s.readItem(addr)
			trace = append(trace, Access{Addr: addr, Bytes: itemHdrBytes + len(k)})
			if !bytes.Equal(k, key) {
				continue // tag collision
			}
			// Update in place when the size class matches; reallocate
			// otherwise.
			oldClass, _ := classFor(itemBytes(k, v))
			newClass, err := classFor(itemBytes(key, val))
			if err != nil {
				return trace, err
			}
			if oldClass != newClass {
				s.slab.release(addr, itemBytes(k, v))
				addr, err = s.slab.alloc(itemBytes(key, val))
				if err != nil {
					return trace, err
				}
				s.writeSlot(bkt, i, tag, addr)
				trace = append(trace, Access{Addr: bkt, Bytes: slotBytes, Write: true})
			}
			s.writeItem(addr, key, val)
			trace = append(trace, Access{Addr: addr, Bytes: itemBytes(key, val), Write: true})
			return trace, nil
		}
		ct, next := s.readSlot(bkt, slotsPerBkt)
		if ct != chainTag {
			lastBkt = bkt
			break
		}
		bkt = next
	}

	// Not present: insert into the first free slot, growing the chain
	// if every bucket is full (paper: "another bucket with the same
	// format will be allocated and linked by a pointer").
	if freeSlot < 0 {
		nb, err := s.slab.alloc(bucketBytes)
		if err != nil {
			return trace, fmt.Errorf("kvs: chain allocation failed: %w", err)
		}
		s.space.Write(nb, zeroBucket[:])
		s.writeSlot(lastBkt, slotsPerBkt, chainTag, nb)
		trace = append(trace, Access{Addr: lastBkt, Bytes: slotBytes, Write: true})
		s.chained++
		freeBkt, freeSlot = nb, 0
	}
	addr, err := s.slab.alloc(itemBytes(key, val))
	if err != nil {
		return trace, err
	}
	trace = append(trace, Access{Addr: addr, Bytes: slotBytes, Write: true}) // allocator metadata
	s.writeItem(addr, key, val)
	trace = append(trace, Access{Addr: addr, Bytes: itemBytes(key, val), Write: true})
	s.writeSlot(freeBkt, freeSlot, tag, addr)
	trace = append(trace, Access{Addr: freeBkt, Bytes: slotBytes, Write: true})
	return trace, nil
}

// Delete removes key, returning whether it was present.
//
// Deprecated: use DeleteInto with a reusable trace buffer.
func (s *Store) Delete(key []byte) ([]Access, bool) {
	return s.DeleteInto(nil, key)
}

// DeleteInto removes key, appending the memory accesses to the
// caller-provided trace (capacity retained across calls); ok reports
// whether the key was present.
func (s *Store) DeleteInto(trace []Access, key []byte) ([]Access, bool) {
	s.deletes++
	h := hashKey(key)
	tag := tagOf(h)
	bkt := s.bucketAddr(h)
	for {
		trace = append(trace, Access{Addr: bkt, Bytes: bucketBytes})
		for i := 0; i < slotsPerBkt; i++ {
			t, addr := s.readSlot(bkt, i)
			if t != tag {
				continue
			}
			k, v := s.readItem(addr)
			trace = append(trace, Access{Addr: addr, Bytes: itemHdrBytes + len(k)})
			if !bytes.Equal(k, key) {
				continue
			}
			s.slab.release(addr, itemBytes(k, v))
			s.writeSlot(bkt, i, 0, 0)
			trace = append(trace, Access{Addr: bkt, Bytes: slotBytes, Write: true})
			return trace, true
		}
		ct, next := s.readSlot(bkt, slotsPerBkt)
		if ct != chainTag {
			return trace, false
		}
		bkt = next
	}
}

// Stats summarizes store activity.
type Stats struct {
	Gets, Puts, Deletes, Misses int64
	ChainedBuckets              int64
	LiveItems                   int64
}

// Stats returns activity counters.
func (s *Store) Stats() Stats {
	return Stats{
		Gets: s.gets, Puts: s.puts, Deletes: s.deletes, Misses: s.misses,
		ChainedBuckets: s.chained, LiveItems: s.slab.liveBlocks(),
	}
}

// RegisterMetrics exposes the store's activity counters as gauges under
// prefix, including the derived GET hit rate.
func (s *Store) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".gets", func() float64 { return float64(s.gets) })
	reg.Gauge(prefix+".puts", func() float64 { return float64(s.puts) })
	reg.Gauge(prefix+".misses", func() float64 { return float64(s.misses) })
	reg.Gauge(prefix+".live_items", func() float64 { return float64(s.slab.liveBlocks()) })
	reg.Gauge(prefix+".hit_rate", func() float64 {
		if s.gets == 0 {
			return 0
		}
		return float64(s.gets-s.misses) / float64(s.gets)
	})
}
