package kvs

import (
	"encoding/binary"
	"fmt"
)

// Op is a KVS request opcode on the wire (HERD-style RPC, paper
// Sec. V).
type Op byte

const (
	// OpGet reads a key.
	OpGet Op = iota + 1
	// OpPut inserts or updates a key.
	OpPut
	// OpDelete removes a key.
	OpDelete
)

// Status is a response status code.
type Status byte

const (
	// StatusOK indicates success.
	StatusOK Status = iota + 1
	// StatusNotFound indicates a missing key.
	StatusNotFound
	// StatusError indicates a server-side failure (e.g. pool
	// exhaustion).
	StatusError
)

// Request is a client request.
type Request struct {
	Op  Op
	Key []byte
	Val []byte // PUT only
}

// AppendRequest serializes a request onto dst and returns the extended
// slice: [1B op][2B keyLen][4B valLen][key][val]. Passing a buffer with
// retained capacity (dst[:0] of the previous call's result) makes the
// steady-state encode allocation-free.
func AppendRequest(dst []byte, r Request) []byte {
	var hdr [7]byte
	hdr[0] = byte(r.Op)
	binary.LittleEndian.PutUint16(hdr[1:3], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[3:7], uint32(len(r.Val)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Key...)
	return append(dst, r.Val...)
}

// EncodeRequest serializes a request into a fresh buffer.
//
// Deprecated: use AppendRequest with a reused buffer; EncodeRequest
// allocates a fresh frame per call.
func EncodeRequest(r Request) []byte {
	return AppendRequest(make([]byte, 0, 7+len(r.Key)+len(r.Val)), r)
}

// DecodeRequest parses a request.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 7 {
		return Request{}, fmt.Errorf("kvs: short request (%d bytes)", len(b))
	}
	kl := int(binary.LittleEndian.Uint16(b[1:3]))
	vl := int(binary.LittleEndian.Uint32(b[3:7]))
	if len(b) < 7+kl+vl {
		return Request{}, fmt.Errorf("kvs: truncated request: have %d, want %d", len(b), 7+kl+vl)
	}
	r := Request{Op: Op(b[0]), Key: b[7 : 7+kl], Val: b[7+kl : 7+kl+vl]}
	switch r.Op {
	case OpGet, OpPut, OpDelete:
		return r, nil
	default:
		return Request{}, fmt.Errorf("kvs: unknown opcode %d", b[0])
	}
}

// Response is a server response.
type Response struct {
	Status Status
	Val    []byte
}

// AppendResponse serializes a response onto dst and returns the
// extended slice: [1B status][4B valLen][val].
func AppendResponse(dst []byte, r Response) []byte {
	var hdr [5]byte
	hdr[0] = byte(r.Status)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(r.Val)))
	dst = append(dst, hdr[:]...)
	return append(dst, r.Val...)
}

// EncodeResponse serializes a response into a fresh buffer.
//
// Deprecated: use AppendResponse with a reused buffer; EncodeResponse
// allocates a fresh frame per call.
func EncodeResponse(r Response) []byte {
	return AppendResponse(make([]byte, 0, 5+len(r.Val)), r)
}

// DecodeResponse parses a response.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < 5 {
		return Response{}, fmt.Errorf("kvs: short response (%d bytes)", len(b))
	}
	vl := int(binary.LittleEndian.Uint32(b[1:5]))
	if len(b) < 5+vl {
		return Response{}, fmt.Errorf("kvs: truncated response")
	}
	return Response{Status: Status(b[0]), Val: b[5 : 5+vl]}, nil
}

// Apply executes a decoded request against a store, returning the
// response and the access trace for timing. Every call allocates fresh
// value and trace buffers.
//
// Deprecated: use ApplyScratch with a per-worker Scratch; Apply
// allocates fresh value and trace buffers per call.
func Apply(s *Store, r Request) (Response, []Access) {
	var sc Scratch
	return ApplyScratch(s, r, &sc)
}

// Scratch is one worker's reusable buffer set for the request path:
// the value destination for GETs and the access-trace backing array.
// Both grow to the workload's high-water mark once and are then reused
// by every subsequent ApplyScratch/GetInto call, making the steady
// state allocation-free.
//
// Aliasing: the Response.Val and trace returned by ApplyScratch point
// into the scratch and are only valid until the next call that reuses
// it. Callers that retain a value (caches, history logs) must copy.
type Scratch struct {
	Val   []byte
	Trace []Access
}

// ApplyScratch is Apply with caller-owned buffers: the GET value is
// appended into sc.Val and the trace into sc.Trace (both re-sliced to
// zero length first, capacity retained).
func ApplyScratch(s *Store, r Request, sc *Scratch) (Response, []Access) {
	switch r.Op {
	case OpGet:
		val, trace, ok := s.GetInto(sc.Val[:0], sc.Trace[:0], r.Key)
		sc.Val, sc.Trace = val, trace
		if !ok {
			return Response{Status: StatusNotFound}, trace
		}
		return Response{Status: StatusOK, Val: val}, trace
	case OpPut:
		trace, err := s.PutInto(sc.Trace[:0], r.Key, r.Val)
		sc.Trace = trace
		if err != nil {
			return Response{Status: StatusError}, trace
		}
		return Response{Status: StatusOK}, trace
	case OpDelete:
		trace, ok := s.DeleteInto(sc.Trace[:0], r.Key)
		sc.Trace = trace
		if !ok {
			return Response{Status: StatusNotFound}, trace
		}
		return Response{Status: StatusOK}, trace
	default:
		return Response{Status: StatusError}, nil
	}
}
