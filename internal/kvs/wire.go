package kvs

import (
	"encoding/binary"
	"fmt"
)

// Op is a KVS request opcode on the wire (HERD-style RPC, paper
// Sec. V).
type Op byte

const (
	// OpGet reads a key.
	OpGet Op = iota + 1
	// OpPut inserts or updates a key.
	OpPut
	// OpDelete removes a key.
	OpDelete
	// OpScan visits up to ScanLimit pairs from Key (inclusive; reverse
	// order when the flag is set). Its request frame is
	// [1B op][2B keyLen][2B limit][1B flags][key] and its response uses
	// the multi-pair codec (AppendScanResponse/DecodeScanResponse).
	OpScan
)

// MaxScanLimit bounds one scan request; decode rejects larger frames
// (a server-side allocation guard, like the value-length caps).
const MaxScanLimit = 4096

// scanFlagReverse marks a descending scan in the request flags byte.
const scanFlagReverse = 0x01

// Status is a response status code.
type Status byte

const (
	// StatusOK indicates success.
	StatusOK Status = iota + 1
	// StatusNotFound indicates a missing key.
	StatusNotFound
	// StatusError indicates a server-side failure (e.g. pool
	// exhaustion).
	StatusError
)

// Request is a client request.
type Request struct {
	Op  Op
	Key []byte
	Val []byte // PUT only
	// ScanLimit and Reverse apply to OpScan only: the pair budget and
	// scan direction from Key.
	ScanLimit int
	Reverse   bool
}

// AppendRequest serializes a request onto dst and returns the extended
// slice: [1B op][2B keyLen][4B valLen][key][val], except OpScan which
// frames as [1B op][2B keyLen][2B limit][1B flags][key] (same 6-byte
// fixed part + key, no value). Passing a buffer with retained capacity
// (dst[:0] of the previous call's result) makes the steady-state encode
// allocation-free.
func AppendRequest(dst []byte, r Request) []byte {
	if r.Op == OpScan {
		var hdr [6]byte
		hdr[0] = byte(OpScan)
		binary.LittleEndian.PutUint16(hdr[1:3], uint16(len(r.Key)))
		binary.LittleEndian.PutUint16(hdr[3:5], uint16(r.ScanLimit))
		if r.Reverse {
			hdr[5] |= scanFlagReverse
		}
		dst = append(dst, hdr[:]...)
		return append(dst, r.Key...)
	}
	var hdr [7]byte
	hdr[0] = byte(r.Op)
	binary.LittleEndian.PutUint16(hdr[1:3], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[3:7], uint32(len(r.Val)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Key...)
	return append(dst, r.Val...)
}

// EncodeRequest serializes a request into a fresh buffer.
//
// Deprecated: use AppendRequest with a reused buffer; EncodeRequest
// allocates a fresh frame per call.
func EncodeRequest(r Request) []byte {
	return AppendRequest(make([]byte, 0, 7+len(r.Key)+len(r.Val)), r)
}

// DecodeRequest parses a request, validating opcode, truncation, and
// (for scans) the limit bound.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 1 {
		return Request{}, fmt.Errorf("kvs: empty request")
	}
	if Op(b[0]) == OpScan {
		if len(b) < 6 {
			return Request{}, fmt.Errorf("kvs: short scan request (%d bytes)", len(b))
		}
		kl := int(binary.LittleEndian.Uint16(b[1:3]))
		limit := int(binary.LittleEndian.Uint16(b[3:5]))
		if len(b) < 6+kl {
			return Request{}, fmt.Errorf("kvs: truncated scan request: have %d, want %d", len(b), 6+kl)
		}
		if limit == 0 || limit > MaxScanLimit {
			return Request{}, fmt.Errorf("kvs: scan limit %d out of range (1..%d)", limit, MaxScanLimit)
		}
		if b[5]&^byte(scanFlagReverse) != 0 {
			return Request{}, fmt.Errorf("kvs: unknown scan flags 0x%02x", b[5])
		}
		return Request{
			Op: OpScan, Key: b[6 : 6+kl],
			ScanLimit: limit, Reverse: b[5]&scanFlagReverse != 0,
		}, nil
	}
	if len(b) < 7 {
		return Request{}, fmt.Errorf("kvs: short request (%d bytes)", len(b))
	}
	kl := int(binary.LittleEndian.Uint16(b[1:3]))
	vl := int(binary.LittleEndian.Uint32(b[3:7]))
	if len(b) < 7+kl+vl {
		return Request{}, fmt.Errorf("kvs: truncated request: have %d, want %d", len(b), 7+kl+vl)
	}
	r := Request{Op: Op(b[0]), Key: b[7 : 7+kl], Val: b[7+kl : 7+kl+vl]}
	switch r.Op {
	case OpGet, OpPut, OpDelete:
		return r, nil
	default:
		return Request{}, fmt.Errorf("kvs: unknown opcode %d", b[0])
	}
}

// Response is a server response.
type Response struct {
	Status Status
	Val    []byte
}

// AppendResponse serializes a response onto dst and returns the
// extended slice: [1B status][4B valLen][val].
func AppendResponse(dst []byte, r Response) []byte {
	var hdr [5]byte
	hdr[0] = byte(r.Status)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(r.Val)))
	dst = append(dst, hdr[:]...)
	return append(dst, r.Val...)
}

// EncodeResponse serializes a response into a fresh buffer.
//
// Deprecated: use AppendResponse with a reused buffer; EncodeResponse
// allocates a fresh frame per call.
func EncodeResponse(r Response) []byte {
	return AppendResponse(make([]byte, 0, 5+len(r.Val)), r)
}

// DecodeResponse parses a response.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < 5 {
		return Response{}, fmt.Errorf("kvs: short response (%d bytes)", len(b))
	}
	vl := int(binary.LittleEndian.Uint32(b[1:5]))
	if len(b) < 5+vl {
		return Response{}, fmt.Errorf("kvs: truncated response")
	}
	return Response{Status: Status(b[0]), Val: b[5 : 5+vl]}, nil
}

// AppendScanResponse serializes a scan response onto dst and returns
// the extended slice: [1B status][4B count] followed by count pairs of
// [2B klen][4B vlen][key][val]. buf/pairs use the ScanPair layout
// (ApplyScratch leaves them in the Scratch). The frame is what the wire
// charges for serialization, so scans with more pairs genuinely cost
// more link time.
func AppendScanResponse(dst []byte, status Status, buf []byte, pairs []ScanPair) []byte {
	var hdr [5]byte
	hdr[0] = byte(status)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(pairs)))
	dst = append(dst, hdr[:]...)
	for _, p := range pairs {
		var ph [6]byte
		binary.LittleEndian.PutUint16(ph[0:2], uint16(p.KeyLen))
		binary.LittleEndian.PutUint32(ph[2:6], uint32(p.ValLen))
		dst = append(dst, ph[:]...)
		dst = append(dst, buf[p.KeyOff:p.KeyOff+p.KeyLen+p.ValLen]...)
	}
	return dst
}

// DecodeScanResponse parses a scan response, appending one ScanPair per
// decoded pair to pairs. The returned flat buffer aliases b (pairs
// index into it); validation rejects short frames, truncated pairs,
// oversized counts, and trailing garbage.
func DecodeScanResponse(b []byte, pairs []ScanPair) (Status, []byte, []ScanPair, error) {
	if len(b) < 5 {
		return 0, nil, pairs, fmt.Errorf("kvs: short scan response (%d bytes)", len(b))
	}
	count := int(binary.LittleEndian.Uint32(b[1:5]))
	if count > MaxScanLimit {
		return 0, nil, pairs, fmt.Errorf("kvs: scan response count %d exceeds limit %d", count, MaxScanLimit)
	}
	payload := b[5:]
	off := 0
	for i := 0; i < count; i++ {
		if off+6 > len(payload) {
			return 0, nil, pairs, fmt.Errorf("kvs: truncated scan response pair %d", i)
		}
		kl := int(binary.LittleEndian.Uint16(payload[off : off+2]))
		vl := int(binary.LittleEndian.Uint32(payload[off+2 : off+6]))
		if off+6+kl+vl > len(payload) {
			return 0, nil, pairs, fmt.Errorf("kvs: truncated scan response pair %d body", i)
		}
		pairs = append(pairs, ScanPair{KeyOff: off + 6, KeyLen: kl, ValLen: vl})
		off += 6 + kl + vl
	}
	if off != len(payload) {
		return 0, nil, pairs, fmt.Errorf("kvs: %d trailing bytes after scan response", len(payload)-off)
	}
	return Status(b[0]), payload, pairs, nil
}

// Apply executes a decoded request against a store, returning the
// response and the access trace for timing. Every call allocates fresh
// value and trace buffers.
//
// Deprecated: use ApplyScratch with a per-worker Scratch; Apply
// allocates fresh value and trace buffers per call.
func Apply(s *Store, r Request) (Response, []Access) {
	var sc Scratch
	return ApplyScratch(s, r, &sc)
}

// Scratch is one worker's reusable buffer set for the request path:
// the value destination for GETs, the access-trace backing array, and
// the flat pair buffer for scans. All grow to the workload's high-water
// mark once and are then reused by every subsequent
// ApplyScratch/GetInto call, making the steady state allocation-free.
//
// Aliasing: the Response.Val, trace, and scan buffers returned by
// ApplyScratch point into the scratch and are only valid until the next
// call that reuses it. Callers that retain a value (caches, history
// logs) must copy.
type Scratch struct {
	Val   []byte
	Trace []Access
	// ScanBuf and ScanPairs hold an OpScan's result in the ScanPair
	// layout; encode them with AppendScanResponse.
	ScanBuf   []byte
	ScanPairs []ScanPair
}

// ApplyScratch is Apply with caller-owned buffers, dispatching over any
// storage Backend: the GET value is appended into sc.Val, the trace
// into sc.Trace, and scan results into sc.ScanBuf/sc.ScanPairs (all
// re-sliced to zero length first, capacity retained). OpScan responses
// travel in the scratch — encode with AppendScanResponse — because the
// single-value Response frame cannot carry multiple pairs.
func ApplyScratch(b Backend, r Request, sc *Scratch) (Response, []Access) {
	switch r.Op {
	case OpGet:
		val, trace, ok := b.GetInto(sc.Val[:0], sc.Trace[:0], r.Key)
		sc.Val, sc.Trace = val, trace
		if !ok {
			return Response{Status: StatusNotFound}, trace
		}
		return Response{Status: StatusOK, Val: val}, trace
	case OpPut:
		trace, err := b.PutInto(sc.Trace[:0], r.Key, r.Val)
		sc.Trace = trace
		if err != nil {
			return Response{Status: StatusError}, trace
		}
		return Response{Status: StatusOK}, trace
	case OpDelete:
		trace, ok := b.DeleteInto(sc.Trace[:0], r.Key)
		sc.Trace = trace
		if !ok {
			return Response{Status: StatusNotFound}, trace
		}
		return Response{Status: StatusOK}, trace
	case OpScan:
		limit := r.ScanLimit
		if limit > MaxScanLimit {
			return Response{Status: StatusError}, nil
		}
		buf, pairs, trace := b.ScanInto(sc.ScanBuf[:0], sc.ScanPairs[:0], sc.Trace[:0],
			r.Key, limit, r.Reverse)
		sc.ScanBuf, sc.ScanPairs, sc.Trace = buf, pairs, trace
		return Response{Status: StatusOK}, trace
	default:
		return Response{Status: StatusError}, nil
	}
}
