package kvs

import (
	"encoding/binary"
	"fmt"
)

// Op is a KVS request opcode on the wire (HERD-style RPC, paper
// Sec. V).
type Op byte

const (
	// OpGet reads a key.
	OpGet Op = iota + 1
	// OpPut inserts or updates a key.
	OpPut
	// OpDelete removes a key.
	OpDelete
)

// Status is a response status code.
type Status byte

const (
	// StatusOK indicates success.
	StatusOK Status = iota + 1
	// StatusNotFound indicates a missing key.
	StatusNotFound
	// StatusError indicates a server-side failure (e.g. pool
	// exhaustion).
	StatusError
)

// Request is a client request.
type Request struct {
	Op  Op
	Key []byte
	Val []byte // PUT only
}

// EncodeRequest serializes a request: [1B op][2B keyLen][4B valLen][key][val].
func EncodeRequest(r Request) []byte {
	buf := make([]byte, 7+len(r.Key)+len(r.Val))
	buf[0] = byte(r.Op)
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(buf[3:7], uint32(len(r.Val)))
	copy(buf[7:], r.Key)
	copy(buf[7+len(r.Key):], r.Val)
	return buf
}

// DecodeRequest parses a request.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 7 {
		return Request{}, fmt.Errorf("kvs: short request (%d bytes)", len(b))
	}
	kl := int(binary.LittleEndian.Uint16(b[1:3]))
	vl := int(binary.LittleEndian.Uint32(b[3:7]))
	if len(b) < 7+kl+vl {
		return Request{}, fmt.Errorf("kvs: truncated request: have %d, want %d", len(b), 7+kl+vl)
	}
	r := Request{Op: Op(b[0]), Key: b[7 : 7+kl], Val: b[7+kl : 7+kl+vl]}
	switch r.Op {
	case OpGet, OpPut, OpDelete:
		return r, nil
	default:
		return Request{}, fmt.Errorf("kvs: unknown opcode %d", b[0])
	}
}

// Response is a server response.
type Response struct {
	Status Status
	Val    []byte
}

// EncodeResponse serializes a response: [1B status][4B valLen][val].
func EncodeResponse(r Response) []byte {
	buf := make([]byte, 5+len(r.Val))
	buf[0] = byte(r.Status)
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(r.Val)))
	copy(buf[5:], r.Val)
	return buf
}

// DecodeResponse parses a response.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < 5 {
		return Response{}, fmt.Errorf("kvs: short response (%d bytes)", len(b))
	}
	vl := int(binary.LittleEndian.Uint32(b[1:5]))
	if len(b) < 5+vl {
		return Response{}, fmt.Errorf("kvs: truncated response")
	}
	return Response{Status: Status(b[0]), Val: b[5 : 5+vl]}, nil
}

// Apply executes a decoded request against a store, returning the
// response and the access trace for timing.
func Apply(s *Store, r Request) (Response, []Access) {
	switch r.Op {
	case OpGet:
		val, trace, ok := s.Get(r.Key)
		if !ok {
			return Response{Status: StatusNotFound}, trace
		}
		return Response{Status: StatusOK, Val: val}, trace
	case OpPut:
		trace, err := s.Put(r.Key, r.Val)
		if err != nil {
			return Response{Status: StatusError}, trace
		}
		return Response{Status: StatusOK}, trace
	case OpDelete:
		trace, ok := s.Delete(r.Key)
		if !ok {
			return Response{Status: StatusNotFound}, trace
		}
		return Response{Status: StatusOK}, trace
	default:
		return Response{Status: StatusError}, nil
	}
}
