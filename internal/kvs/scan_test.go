package kvs

import (
	"bytes"
	"fmt"
	"testing"
)

// TestScanRequestRoundTrip pins the OpScan request frame: limit,
// reverse flag, and key survive encode/decode, and the validation
// rejects the malformed shapes a faulty fabric could deliver.
func TestScanRequestRoundTrip(t *testing.T) {
	for _, r := range []Request{
		{Op: OpScan, Key: []byte("user00000000000042"), ScanLimit: 16},
		{Op: OpScan, Key: []byte("z"), ScanLimit: MaxScanLimit, Reverse: true},
		{Op: OpScan, Key: nil, ScanLimit: 1},
	} {
		b := AppendRequest(nil, r)
		got, err := DecodeRequest(b)
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		if got.Op != OpScan || !bytes.Equal(got.Key, r.Key) ||
			got.ScanLimit != r.ScanLimit || got.Reverse != r.Reverse {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
	}
}

// TestScanRequestValidation pins the decode rejections.
func TestScanRequestValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"short header", []byte{byte(OpScan), 1, 0, 1}},
		{"truncated key", []byte{byte(OpScan), 5, 0, 1, 0, 0, 'k'}},
		{"zero limit", AppendRequest(nil, Request{Op: OpScan, Key: []byte("k"), ScanLimit: 0})},
		{"limit over max", AppendRequest(nil, Request{Op: OpScan, Key: []byte("k"), ScanLimit: MaxScanLimit + 1})},
	} {
		if _, err := DecodeRequest(tc.b); err == nil {
			t.Fatalf("%s: accepted %x", tc.name, tc.b)
		}
	}
}

// TestScanResponseRoundTrip pins the multi-pair codec both ways,
// including empty results, empty values, and the validation of
// truncated and oversized frames.
func TestScanResponseRoundTrip(t *testing.T) {
	var buf []byte
	var pairs []ScanPair
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v := fmt.Sprintf("value-%d", i*i)
		if i == 3 {
			v = "" // empty value must survive
		}
		off := len(buf)
		buf = append(buf, k...)
		buf = append(buf, v...)
		pairs = append(pairs, ScanPair{KeyOff: off, KeyLen: len(k), ValLen: len(v)})
	}
	frame := AppendScanResponse(nil, StatusOK, buf, pairs)
	status, payload, got, err := DecodeScanResponse(frame, nil)
	if err != nil || status != StatusOK {
		t.Fatalf("decode: status %d err %v", status, err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("decoded %d pairs, want %d", len(got), len(pairs))
	}
	for i, p := range got {
		if !bytes.Equal(p.Key(payload), pairs[i].Key(buf)) ||
			!bytes.Equal(p.Val(payload), pairs[i].Val(buf)) {
			t.Fatalf("pair %d: %q=%q, want %q=%q", i,
				p.Key(payload), p.Val(payload), pairs[i].Key(buf), pairs[i].Val(buf))
		}
	}

	empty := AppendScanResponse(nil, StatusOK, nil, nil)
	if _, _, got, err := DecodeScanResponse(empty, nil); err != nil || len(got) != 0 {
		t.Fatalf("empty frame: pairs %d err %v", len(got), err)
	}

	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"short", frame[:3]},
		{"truncated pair", frame[:len(frame)-1]},
		{"trailing garbage", append(append([]byte{}, frame...), 0xAA)},
		{"oversized count", []byte{byte(StatusOK), 0xFF, 0xFF, 0xFF, 0xFF}},
	} {
		if _, _, _, err := DecodeScanResponse(tc.b, nil); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// TestStoreScanInto pins the hash backend's bucket-order cursor: every
// live pair is reachable in one full-table walk, limits cut the walk
// short, deleted keys never appear, and identical state yields an
// identical visit order (forward and reverse).
func TestStoreScanInto(t *testing.T) {
	s := newStore(64, 1<<20)
	const n = 200
	want := map[string]string{}
	for i := 0; i < n; i++ {
		k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i)
		if _, err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < n; i += 4 {
		k := fmt.Sprintf("key-%03d", i)
		s.Delete([]byte(k))
		delete(want, k)
	}

	// A full-table walk (limit >= live count) visits every live pair
	// exactly once.
	buf, pairs, trace := s.ScanInto(nil, nil, nil, nil, n, false)
	if len(trace) == 0 {
		t.Fatal("scan charged no accesses")
	}
	got := map[string]string{}
	for _, p := range pairs {
		got[string(p.Key(buf))] = string(p.Val(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("scan visited %d pairs, want %d live", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q: scanned %q, want %q", k, got[k], v)
		}
	}

	// Limits bound the result; same start key, same prefix.
	b1, p1, _ := s.ScanInto(nil, nil, nil, []byte("key-050"), 10, false)
	if len(p1) != 10 {
		t.Fatalf("limit 10 emitted %d pairs", len(p1))
	}
	b2, p2, _ := s.ScanInto(nil, nil, nil, []byte("key-050"), 20, false)
	for i := range p1 {
		if !bytes.Equal(p1[i].Key(b1), p2[i].Key(b2)) {
			t.Fatalf("cursor order unstable at pair %d", i)
		}
	}

	// Reverse walks a different bucket order but the same live set.
	bufR, pairsR, _ := s.ScanInto(nil, nil, nil, nil, n, true)
	gotR := map[string]string{}
	for _, p := range pairsR {
		gotR[string(p.Key(bufR))] = string(p.Val(bufR))
	}
	if len(gotR) != len(want) {
		t.Fatalf("reverse scan visited %d pairs, want %d", len(gotR), len(want))
	}
}

// TestApplyScratchScanOverStore pins the wire-to-backend dispatch for
// scans on the hash engine: a decoded OpScan lands in the scratch's
// ScanBuf/ScanPairs and round-trips through the scan response codec.
func TestApplyScratchScanOverStore(t *testing.T) {
	s := newStore(32, 1<<20)
	for i := 0; i < 40; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var sc Scratch
	req, err := DecodeRequest(AppendRequest(nil, Request{Op: OpScan, Key: []byte("k00"), ScanLimit: 8}))
	if err != nil {
		t.Fatal(err)
	}
	resp, trace := ApplyScratch(s, req, &sc)
	if resp.Status != StatusOK || len(sc.ScanPairs) != 8 || len(trace) == 0 {
		t.Fatalf("status %d, %d pairs, %d accesses", resp.Status, len(sc.ScanPairs), len(trace))
	}
	frame := AppendScanResponse(nil, resp.Status, sc.ScanBuf, sc.ScanPairs)
	_, payload, pairs, err := DecodeScanResponse(frame, nil)
	if err != nil || len(pairs) != 8 {
		t.Fatalf("wire round trip: %d pairs err %v", len(pairs), err)
	}
	for i, p := range pairs {
		if !bytes.Equal(p.Key(payload), sc.ScanPairs[i].Key(sc.ScanBuf)) {
			t.Fatalf("pair %d key mismatch over the wire", i)
		}
	}
}
