package kvs

import (
	"fmt"

	"rambda/internal/memspace"
)

// slabAllocator carves key-value items out of a pre-allocated memory
// pool (paper Sec. IV-A: "the slab allocator will simply put it in the
// pre-defined memory pool", so the accelerator can allocate objects
// without CPU calls). Size classes are powers of two; freed items go to
// per-class free lists.
type slabAllocator struct {
	region memspace.Range
	next   memspace.Addr
	free   map[int][]memspace.Addr // class size -> free addrs

	allocated int64
	freed     int64
}

const (
	minClass = 64
	maxClass = 64 << 10
)

func newSlabAllocator(region memspace.Range) *slabAllocator {
	return &slabAllocator{
		region: region,
		next:   region.Base,
		free:   make(map[int][]memspace.Addr),
	}
}

// classFor rounds a byte count up to its size class.
func classFor(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("kvs: invalid allocation size %d", n)
	}
	c := minClass
	for c < n {
		c <<= 1
	}
	if c > maxClass {
		return 0, fmt.Errorf("kvs: allocation %d exceeds max item size %d", n, maxClass)
	}
	return c, nil
}

// alloc returns the address of a block able to hold n bytes.
func (s *slabAllocator) alloc(n int) (memspace.Addr, error) {
	c, err := classFor(n)
	if err != nil {
		return 0, err
	}
	if list := s.free[c]; len(list) > 0 {
		addr := list[len(list)-1]
		s.free[c] = list[:len(list)-1]
		s.allocated++
		return addr, nil
	}
	if uint64(s.next-s.region.Base)+uint64(c) > s.region.Size {
		return 0, fmt.Errorf("kvs: memory pool exhausted (%d B)", s.region.Size)
	}
	addr := s.next
	s.next += memspace.Addr(c)
	s.allocated++
	return addr, nil
}

// release returns a block of the class holding n bytes to the free
// list.
func (s *slabAllocator) release(addr memspace.Addr, n int) {
	c, err := classFor(n)
	if err != nil {
		panic(err)
	}
	s.free[c] = append(s.free[c], addr)
	s.freed++
}

// liveBlocks reports allocations minus frees.
func (s *slabAllocator) liveBlocks() int64 { return s.allocated - s.freed }
