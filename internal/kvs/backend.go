package kvs

import "rambda/internal/memspace"

// Backend is the pluggable storage engine behind the KVS serving path:
// the MICA-style hash [Store] and the tiered LSM tree (internal/lsm)
// both implement it, and [ApplyScratch] dispatches decoded wire
// requests over it, so every serving scenario — the shared experiment
// driver, scale-out shard chains, user applications — can swap engines
// without touching the wire or timing layers.
//
// # The access-trace contract
//
// Backends are functional state machines over the simulated address
// space: each operation performs its real byte movement immediately and
// appends one [Access] per memory touch (address, size, read/write) to
// the caller's trace. The serving handler replays the trace through its
// coherent datapath (AppCtx.Read/Write), which dispatches on the
// address's region kind — DRAM, NVM, accelerator-local — so an engine
// whose structures live in NVM regions charges NVM bandwidth without
// the handler knowing which engine it is. Traces must be deterministic
// for identical state and arguments.
//
// # Ownership and validity (the §8 discipline)
//
// Follows the package rules: every method appends into caller-owned
// buffers and returns the grown slices; the returned slices alias those
// buffers and are valid only until the caller reuses them; the backend
// never retains caller memory (keys/values are copied into the
// simulated space before returning). Passing back the previous result
// re-sliced to [:0] makes the steady state allocation-free where the
// engine supports it (the hash Store's guards enforce zero allocations;
// the LSM tree allocates on version inserts by design).
type Backend interface {
	// GetInto looks up key, appending the value to dst and the accesses
	// to trace; ok reports presence.
	GetInto(dst []byte, trace []Access, key []byte) ([]byte, []Access, bool)
	// PutInto inserts or updates key, appending the accesses to trace.
	PutInto(trace []Access, key, val []byte) ([]Access, error)
	// DeleteInto removes key, appending the accesses to trace; ok
	// reports whether it was present.
	DeleteInto(trace []Access, key []byte) ([]Access, bool)
	// ScanInto visits up to limit live pairs starting at start
	// (inclusive; descending key order when reverse). Each visited
	// pair's key and value bytes are appended back-to-back onto buf and
	// located by a ScanPair appended to pairs; accesses go to trace.
	// Hash engines scan in bucket order (see Store.ScanInto), ordered
	// engines in key order.
	ScanInto(buf []byte, pairs []ScanPair, trace []Access,
		start []byte, limit int, reverse bool) ([]byte, []ScanPair, []Access)
}

// Backend conformance of the hash store (the LSM tree asserts its own
// in internal/lsm, which imports this package).
var _ Backend = (*Store)(nil)

// ScanPair locates one key-value pair inside a flat scan buffer: the
// key's KeyLen bytes start at KeyOff and the value's ValLen bytes
// follow immediately. Offsets (rather than sub-slices) survive the
// buffer reallocating as it grows.
type ScanPair struct {
	KeyOff int
	KeyLen int
	ValLen int
}

// Key returns the pair's key bytes within buf.
func (p ScanPair) Key(buf []byte) []byte { return buf[p.KeyOff : p.KeyOff+p.KeyLen] }

// Val returns the pair's value bytes within buf.
func (p ScanPair) Val(buf []byte) []byte {
	return buf[p.KeyOff+p.KeyLen : p.KeyOff+p.KeyLen+p.ValLen]
}

// ScanInto implements Backend for the hash store. A hash index has no
// key order, so the scan is a deterministic bucket-order cursor (the
// same shape as Redis SCAN): buckets are visited from the start key's
// bucket onward (backward when reverse), wrapping at the table edge,
// and every live item in a visited bucket — chained buckets included —
// is emitted until limit pairs are gathered or the whole table has been
// walked. Each visited bucket charges one bucket read and each emitted
// item one item read. Key-ordered scans are what the LSM backend is
// for; this exists so the wire op is total over backends.
func (s *Store) ScanInto(buf []byte, pairs []ScanPair, trace []Access,
	start []byte, limit int, reverse bool) ([]byte, []ScanPair, []Access) {
	if limit <= 0 {
		return buf, pairs, trace
	}
	nBuckets := int(s.mask) + 1
	first := 0
	if len(start) > 0 {
		first = int(hashKey(start) & s.mask)
	}
	emitted := 0
	for step := 0; step < nBuckets && emitted < limit; step++ {
		bi := first + step
		if reverse {
			bi = first - step
		}
		bkt := s.index.Base + memspace.Addr(((uint64(bi)+uint64(nBuckets))%uint64(nBuckets))*bucketBytes)
		for {
			trace = append(trace, Access{Addr: bkt, Bytes: bucketBytes})
			for i := 0; i < slotsPerBkt && emitted < limit; i++ {
				tag, addr := s.readSlot(bkt, i)
				if tag == 0 {
					continue
				}
				k, v := s.readItem(addr)
				trace = append(trace, Access{Addr: addr, Bytes: itemHdrBytes + len(k) + len(v)})
				keyOff := len(buf)
				buf = append(buf, k...)
				buf = append(buf, v...)
				pairs = append(pairs, ScanPair{KeyOff: keyOff, KeyLen: len(k), ValLen: len(v)})
				emitted++
			}
			ct, next := s.readSlot(bkt, slotsPerBkt)
			if ct != chainTag || emitted >= limit {
				break
			}
			bkt = next
		}
	}
	return buf, pairs, trace
}
