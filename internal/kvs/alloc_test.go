package kvs

import (
	"fmt"
	"testing"

	"rambda/internal/memspace"
)

// Steady-state allocation guards for the hot request path: once scratch
// buffers have grown to the workload's high-water mark, the append
// codecs and the scratch-based store operations must not allocate at
// all. These lock in the zero-allocation invariant cmd/rambda-bench
// measures end to end.

func TestAppendCodecsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are distorted under the race detector")
	}
	req := Request{Op: OpPut, Key: []byte("user00000000000001"), Val: make([]byte, 46)}
	resp := Response{Status: StatusOK, Val: make([]byte, 46)}
	var reqBuf, respBuf []byte
	reqBuf = AppendRequest(reqBuf, req) // grow once
	respBuf = AppendResponse(respBuf, resp)
	n := testing.AllocsPerRun(200, func() {
		reqBuf = AppendRequest(reqBuf[:0], req)
		respBuf = AppendResponse(respBuf[:0], resp)
	})
	if n != 0 {
		t.Fatalf("append codecs: %.2f allocs/op in steady state, want 0", n)
	}
}

func TestScratchOpsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are distorted under the race detector")
	}
	space := memspace.New()
	s := New(space, Config{Buckets: 64, PoolBytes: 1 << 16, Kind: memspace.KindDRAM})
	val := make([]byte, 46)
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%014d", i))
		if _, err := s.Put(keys[i], val); err != nil {
			t.Fatal(err)
		}
	}
	var sc Scratch
	steady := func() {
		for _, k := range keys {
			resp, _ := ApplyScratch(s, Request{Op: OpGet, Key: k}, &sc)
			if resp.Status != StatusOK {
				panic("missing key")
			}
		}
		// Same-size overwrite: the steady-state PUT of the mixed workload.
		if resp, _ := ApplyScratch(s, Request{Op: OpPut, Key: keys[0], Val: val}, &sc); resp.Status != StatusOK {
			panic("put failed")
		}
	}
	steady() // grow sc to the high-water mark
	if n := testing.AllocsPerRun(100, steady); n != 0 {
		t.Fatalf("scratch Get/Put: %.2f allocs/op in steady state, want 0", n)
	}
}
