package kvs

import (
	"bytes"
	"testing"

	"rambda/internal/memspace"
)

// FuzzDecodeRequest hammers the request parser with arbitrary frames —
// the bytes a faulty fabric could deliver. The parser must reject or
// return a request whose fields round-trip; it must never panic, and an
// accepted frame must survive Apply against a live store.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(Request{Op: OpGet, Key: []byte("k")}))
	f.Add(EncodeRequest(Request{Op: OpPut, Key: []byte("key"), Val: []byte("value")}))
	f.Add(EncodeRequest(Request{Op: OpDelete, Key: bytes.Repeat([]byte{7}, 300)}))
	f.Add(EncodeRequest(Request{Op: OpScan, Key: []byte("user"), ScanLimit: 16}))
	f.Add(EncodeRequest(Request{Op: OpScan, Key: []byte("z"), ScanLimit: MaxScanLimit, Reverse: true}))
	f.Add([]byte{})
	f.Add([]byte{byte(OpPut), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // huge claimed lengths
	f.Add([]byte{99, 0, 0, 0, 0, 0, 0})                            // unknown opcode
	f.Add([]byte{byte(OpScan), 1, 0, 0, 0, 0, 'k'})                // zero scan limit
	f.Add([]byte{byte(OpScan), 1, 0, 0xFF, 0xFF, 0, 'k'})          // limit over MaxScanLimit
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeRequest(b)
		if err != nil {
			return
		}
		switch r.Op {
		case OpGet, OpPut, OpDelete:
		case OpScan:
			if r.ScanLimit <= 0 || r.ScanLimit > MaxScanLimit {
				t.Fatalf("accepted out-of-range scan limit %d", r.ScanLimit)
			}
		default:
			t.Fatalf("accepted unknown opcode %d", r.Op)
		}
		if re := EncodeRequest(r); !bytes.Equal(re, b[:len(re)]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, b[:len(re)])
		}
		// An accepted frame must execute without panicking, whatever the
		// key/value shapes are.
		s := New(memspace.New(), Config{Buckets: 16, PoolBytes: 1 << 16, Kind: memspace.KindDRAM})
		resp, _ := Apply(s, r)
		if resp.Status != StatusOK && resp.Status != StatusNotFound && resp.Status != StatusError {
			t.Fatalf("invalid response status %d", resp.Status)
		}
	})
}

// FuzzDecodeResponse does the same for the response parser.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(Response{Status: StatusOK, Val: []byte("v")}))
	f.Add(EncodeResponse(Response{Status: StatusNotFound}))
	f.Add([]byte{})
	f.Add([]byte{byte(StatusOK), 0xFF, 0xFF, 0xFF, 0xFF}) // claims 4 GiB value
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeResponse(b)
		if err != nil {
			return
		}
		if re := EncodeResponse(r); !bytes.Equal(re, b[:len(re)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

// scanFrame builds a well-formed scan response for the fuzz corpus.
func scanFrame(status Status, kvs ...string) []byte {
	var buf []byte
	var pairs []ScanPair
	for i := 0; i+1 < len(kvs); i += 2 {
		off := len(buf)
		buf = append(buf, kvs[i]...)
		buf = append(buf, kvs[i+1]...)
		pairs = append(pairs, ScanPair{KeyOff: off, KeyLen: len(kvs[i]), ValLen: len(kvs[i+1])})
	}
	return AppendScanResponse(nil, status, buf, pairs)
}

// FuzzDecodeScanResponse hammers the multi-pair parser: it must reject
// truncated pairs, oversized counts, and trailing garbage without
// panicking, and an accepted frame must re-encode byte-identically
// through AppendScanResponse (proving the pair offsets are exact).
func FuzzDecodeScanResponse(f *testing.F) {
	f.Add(scanFrame(StatusOK))
	f.Add(scanFrame(StatusOK, "k1", "v1"))
	f.Add(scanFrame(StatusOK, "k1", "v1", "key-two", "value-two", "k3", ""))
	f.Add(scanFrame(StatusNotFound, "", "v"))
	f.Add([]byte{})
	f.Add([]byte{byte(StatusOK), 0xFF, 0xFF, 0xFF, 0xFF})       // count 4 G pairs
	f.Add([]byte{byte(StatusOK), 1, 0, 0, 0, 0, 0, 0xFF, 0xFF}) // truncated pair body
	f.Add(append(scanFrame(StatusOK, "k", "v"), 0))             // trailing garbage
	f.Fuzz(func(t *testing.T, b []byte) {
		status, payload, pairs, err := DecodeScanResponse(b, nil)
		if err != nil {
			return
		}
		if len(pairs) > MaxScanLimit {
			t.Fatalf("accepted %d pairs over the limit", len(pairs))
		}
		// Rebuild the flat key/val buffer from the decoded pairs and
		// re-encode: byte-identity proves offsets and lengths are exact.
		var buf []byte
		re := make([]ScanPair, 0, len(pairs))
		for _, p := range pairs {
			off := len(buf)
			buf = append(buf, p.Key(payload)...)
			buf = append(buf, p.Val(payload)...)
			re = append(re, ScanPair{KeyOff: off, KeyLen: p.KeyLen, ValLen: p.ValLen})
		}
		if enc := AppendScanResponse(nil, status, buf, re); !bytes.Equal(enc, b) {
			t.Fatalf("re-encode mismatch: %x vs %x", enc, b)
		}
	})
}
