package kvs

import (
	"bytes"
	"testing"

	"rambda/internal/memspace"
)

// FuzzDecodeRequest hammers the request parser with arbitrary frames —
// the bytes a faulty fabric could deliver. The parser must reject or
// return a request whose fields round-trip; it must never panic, and an
// accepted frame must survive Apply against a live store.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(Request{Op: OpGet, Key: []byte("k")}))
	f.Add(EncodeRequest(Request{Op: OpPut, Key: []byte("key"), Val: []byte("value")}))
	f.Add(EncodeRequest(Request{Op: OpDelete, Key: bytes.Repeat([]byte{7}, 300)}))
	f.Add([]byte{})
	f.Add([]byte{byte(OpPut), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // huge claimed lengths
	f.Add([]byte{99, 0, 0, 0, 0, 0, 0})                            // unknown opcode
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeRequest(b)
		if err != nil {
			return
		}
		switch r.Op {
		case OpGet, OpPut, OpDelete:
		default:
			t.Fatalf("accepted unknown opcode %d", r.Op)
		}
		if re := EncodeRequest(r); !bytes.Equal(re, b[:len(re)]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, b[:len(re)])
		}
		// An accepted frame must execute without panicking, whatever the
		// key/value shapes are.
		s := New(memspace.New(), Config{Buckets: 16, PoolBytes: 1 << 16, Kind: memspace.KindDRAM})
		resp, _ := Apply(s, r)
		if resp.Status != StatusOK && resp.Status != StatusNotFound && resp.Status != StatusError {
			t.Fatalf("invalid response status %d", resp.Status)
		}
	})
}

// FuzzDecodeResponse does the same for the response parser.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(Response{Status: StatusOK, Val: []byte("v")}))
	f.Add(EncodeResponse(Response{Status: StatusNotFound}))
	f.Add([]byte{})
	f.Add([]byte{byte(StatusOK), 0xFF, 0xFF, 0xFF, 0xFF}) // claims 4 GiB value
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeResponse(b)
		if err != nil {
			return
		}
		if re := EncodeResponse(r); !bytes.Equal(re, b[:len(re)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}
