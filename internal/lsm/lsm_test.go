package lsm

import (
	"fmt"
	"testing"
	"testing/quick"

	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

func newDB(t *testing.T, cfg Config) (*DB, *memspace.Space, *memdev.System) {
	t.Helper()
	space := memspace.New()
	mem := &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM("dram", 6, 120e9, 90*sim.Nanosecond),
		NVM:   memdev.NewNVM("nvm", 6, 39e9, 300*sim.Nanosecond, 2),
		LLC:   memdev.NewLLC("llc", 300e9, 20*sim.Nanosecond),
	}
	return Open(space, mem, cfg), space, mem
}

func smallConfig() Config {
	return Config{
		MemtableBytes: 1 << 10,
		L0Runs:        2,
		SSTableBytes:  8 << 10,
		WALBytes:      4 << 10,
		MaxLevels:     3,
	}
}

func TestPutGetDelete(t *testing.T) {
	db, _, _ := newDB(t, smallConfig())
	at, err := db.Put(0, "alpha", []byte("1"))
	if err != nil || at <= 0 {
		t.Fatalf("put: %v at=%v (WAL write must take time)", err, at)
	}
	v, _, ok := db.Get(at, "alpha")
	if !ok || string(v) != "1" {
		t.Fatalf("get=%q ok=%v", v, ok)
	}
	if _, _, ok := db.Get(at, "missing"); ok {
		t.Fatal("phantom key")
	}
	if _, err := db.Delete(at, "alpha"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := db.Get(at, "alpha"); ok {
		t.Fatal("deleted key visible")
	}
}

func TestFlushAndReadFromRuns(t *testing.T) {
	db, _, _ := newDB(t, smallConfig())
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		at, err := db.Put(now, fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("val-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		now = at
	}
	st := db.Stats()
	if st.Flushes == 0 {
		t.Fatalf("expected flushes: %+v", st)
	}
	// Every key readable regardless of which structure holds it.
	for i := 0; i < 100; i++ {
		v, _, ok := db.Get(now, fmt.Sprintf("key-%03d", i))
		if !ok || string(v) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("key %d lost after flush (got %q ok=%v)", i, v, ok)
		}
	}
}

func TestCompactionMergesLevels(t *testing.T) {
	db, _, _ := newDB(t, smallConfig())
	now := sim.Time(0)
	// Eight generations of the same 50 keys, each flushed as its own
	// run: L0 (bounded at 2 runs) must compact repeatedly, and the
	// newest generation must win everywhere.
	for gen := 0; gen < 8; gen++ {
		for i := 0; i < 50; i++ {
			at, err := db.Put(now, fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("gen-%d", gen)))
			if err != nil {
				t.Fatal(err)
			}
			now = at
		}
		now = db.Flush(now)
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatalf("expected compactions: %+v", st)
	}
	if st.Runs[0] > smallConfig().L0Runs+1 {
		t.Fatalf("L0 runs=%d not bounded", st.Runs[0])
	}
	for i := 0; i < 50; i++ {
		v, _, ok := db.Get(now, fmt.Sprintf("k%04d", i))
		if !ok {
			t.Fatalf("key %d lost in compaction", i)
		}
		if string(v) != "gen-7" {
			t.Fatalf("key %d = %q, want gen-7", i, v)
		}
	}
}

func TestTombstonesSurviveCompaction(t *testing.T) {
	db, _, _ := newDB(t, smallConfig())
	now := sim.Time(0)
	now, _ = db.Put(now, "victim", []byte("x"))
	now = db.Flush(now)
	now, _ = db.Delete(now, "victim")
	now = db.Flush(now) // tombstone now in its own run above the value
	if _, _, ok := db.Get(now, "victim"); ok {
		t.Fatal("tombstone must shadow the older run")
	}
	// Force merges; the key must stay dead.
	for i := 0; i < 300; i++ {
		now, _ = db.Put(now, fmt.Sprintf("fill-%04d", i), []byte("f"))
	}
	if _, _, ok := db.Get(now, "victim"); ok {
		t.Fatal("deleted key resurrected by compaction")
	}
}

func TestCrashRecoveryFromWALAndRuns(t *testing.T) {
	db, space, mem := newDB(t, smallConfig())
	now := sim.Time(0)
	for i := 0; i < 60; i++ { // enough for a flush plus a WAL tail
		now, _ = db.Put(now, fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete(now, "key-010")

	wal, walValid := db.WAL()
	runs := db.Runs()

	// "Crash": reopen purely from the persistent regions.
	re, err := Recover(space, mem, smallConfig(), wal, walValid, runs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("key-%03d", i)
		v, _, ok := re.Get(0, key)
		if i == 10 {
			if ok {
				t.Fatal("tombstoned key survived recovery")
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s lost in recovery (got %q ok=%v)", key, v, ok)
		}
	}
}

func TestRecoveryDiscardsTornTail(t *testing.T) {
	db, space, mem := newDB(t, smallConfig())
	db.Put(0, "whole", []byte("record"))
	db.Put(0, "torn", []byte("half-written-record"))
	wal, walValid := db.WAL()
	// The crash happened mid-way through the second record.
	re, err := Recover(space, mem, smallConfig(), wal, walValid-5, db.Runs())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := re.Get(0, "whole"); !ok {
		t.Fatal("intact record lost")
	}
	if _, _, ok := re.Get(0, "torn"); ok {
		t.Fatal("torn record must be discarded")
	}
}

func TestWALWrapForcesFlush(t *testing.T) {
	cfg := smallConfig()
	cfg.MemtableBytes = 1 << 20 // never flush by size
	cfg.WALBytes = 512          // wrap quickly
	db, _, _ := newDB(t, cfg)
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		at, err := db.Put(now, fmt.Sprintf("key-%04d", i), make([]byte, 40))
		if err != nil {
			t.Fatal(err)
		}
		now = at
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("WAL wrap must force a flush (otherwise durability breaks)")
	}
	for i := 0; i < 50; i++ {
		if _, _, ok := db.Get(now, fmt.Sprintf("key-%04d", i)); !ok {
			t.Fatalf("key %d lost across WAL wrap", i)
		}
	}
}

func TestRangeSortedAndLive(t *testing.T) {
	db, _, _ := newDB(t, smallConfig())
	now := sim.Time(0)
	for _, k := range []string{"cherry", "apple", "banana", "date"} {
		now, _ = db.Put(now, k, []byte(k))
	}
	db.Delete(now, "banana")
	var got []string
	db.Range(func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []string{"apple", "cherry", "date"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("range=%v", got)
	}
	// Early stop.
	n := 0
	db.Range(func(string, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatal("early stop")
	}
}

func TestInvalidInputs(t *testing.T) {
	db, _, _ := newDB(t, smallConfig())
	if _, err := db.Put(0, "", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
	cfg := smallConfig()
	cfg.WALBytes = 64
	db2, _, _ := newDB(t, cfg)
	if _, err := db2.Put(0, "k", make([]byte, 128)); err == nil {
		t.Fatal("record larger than WAL accepted")
	}
}

func TestModelEquivalenceProperty(t *testing.T) {
	// Under any op sequence, the DB matches a plain map (including
	// across flush/compaction boundaries).
	type op struct {
		Op  uint8
		Key uint8
		Val uint8
	}
	f := func(ops []op) bool {
		db, _, _ := newDB(t, smallConfig())
		model := map[string]string{}
		now := sim.Time(0)
		for _, o := range ops {
			key := fmt.Sprintf("key-%d", o.Key%40)
			switch o.Op % 4 {
			case 0, 1:
				val := fmt.Sprintf("val-%d", o.Val)
				at, err := db.Put(now, key, []byte(val))
				if err != nil {
					return false
				}
				model[key] = val
				now = at
			case 2:
				v, _, ok := db.Get(now, key)
				mv, mok := model[key]
				if ok != mok || (ok && string(v) != mv) {
					return false
				}
			case 3:
				at, err := db.Delete(now, key)
				if err != nil {
					return false
				}
				delete(model, key)
				now = at
			}
		}
		// Final full audit.
		for k, mv := range model {
			v, _, ok := db.Get(now, k)
			if !ok || string(v) != mv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDurabilityCostsTime(t *testing.T) {
	db, _, mem := newDB(t, smallConfig())
	at, _ := db.Put(0, "k", []byte("v"))
	if at <= 0 {
		t.Fatal("WAL append must charge NVM time")
	}
	if mem.NVM.Resource().Ops() == 0 {
		t.Fatal("NVM not charged")
	}
}
