package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"rambda/internal/kvs"
	"rambda/internal/sim"
)

// oracleState is a deep copy of the model at snapshot time: what a
// pinned Snapshot must keep answering forever, whatever the tree does
// afterwards.
type oracleState struct {
	data map[string]string
	keys []string // live keys, sorted
}

func captureOracle(model map[string]string) oracleState {
	st := oracleState{data: make(map[string]string, len(model))}
	for k, v := range model {
		st.data[k] = v
		st.keys = append(st.keys, k)
	}
	sort.Strings(st.keys)
	return st
}

// checkSnapshot asserts a pinned snapshot still answers exactly its
// frozen oracle: every live key reads its frozen value, a full forward
// scan yields the frozen sorted key set, and a reverse scan mirrors it.
func checkSnapshot(t *testing.T, tag string, snap *Snapshot, st oracleState) {
	t.Helper()
	for k, v := range st.data {
		got, ok := snap.Get(k)
		if !ok || string(got) != v {
			t.Fatalf("%s: key %q: snapshot reads %q ok=%v, frozen oracle has %q",
				tag, k, got, ok, v)
		}
	}
	var fwd []string
	snap.Scan("", 0, false, func(key string, val []byte) bool {
		fwd = append(fwd, key)
		if string(val) != st.data[key] {
			t.Fatalf("%s: scan key %q: %q, oracle %q", tag, key, val, st.data[key])
		}
		return true
	})
	if len(fwd) != len(st.keys) {
		t.Fatalf("%s: scan saw %d keys, oracle froze %d", tag, len(fwd), len(st.keys))
	}
	for i, k := range fwd {
		if k != st.keys[i] {
			t.Fatalf("%s: scan position %d is %q, want %q", tag, i, k, st.keys[i])
		}
	}
	var rev []string
	snap.Scan("", 0, true, func(key string, _ []byte) bool {
		rev = append(rev, key)
		return true
	})
	for i, k := range rev {
		if k != st.keys[len(st.keys)-1-i] {
			t.Fatalf("%s: reverse scan position %d is %q, want %q",
				tag, i, k, st.keys[len(st.keys)-1-i])
		}
	}
}

// TestSnapshotsFrozenUnderFlushAndCompaction is the MVCC property test:
// random puts and deletes run against a map oracle; snapshots pinned
// along the way — including immediately before forced flushes — must
// keep answering their frozen state exactly while later mutations drive
// flushes, L0 overflow, and multi-level compaction cascades underneath
// them.
func TestSnapshotsFrozenUnderFlushAndCompaction(t *testing.T) {
	db, _, _ := newDB(t, smallConfig())
	rng := sim.NewRNG(1234)
	model := map[string]string{}
	now := sim.Time(0)

	type pinned struct {
		tag  string
		snap *Snapshot
		st   oracleState
	}
	var pins []pinned
	pin := func(tag string) {
		pins = append(pins, pinned{tag, db.Snapshot(), captureOracle(model)})
	}

	const keys = 96
	for step := 0; step < 2200; step++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(keys))
		switch rng.Intn(10) {
		case 0: // delete
			at, err := db.Delete(now, k)
			if err != nil {
				t.Fatal(err)
			}
			now = at
			delete(model, k)
		default:
			v := fmt.Sprintf("v-%05d", step)
			at, err := db.Put(now, k, []byte(v))
			if err != nil {
				t.Fatal(err)
			}
			now = at
			model[k] = v
		}
		if step%400 == 199 {
			pin(fmt.Sprintf("pin@%d", step))
			now = db.Flush(now) // flush immediately after pinning
		}
		if step%700 == 650 {
			pin(fmt.Sprintf("pin@%d", step))
		}
		// Every pinned snapshot must stay frozen at every step where the
		// tree just flushed or compacted.
		if step%500 == 499 {
			for _, p := range pins {
				checkSnapshot(t, p.tag, p.snap, p.st)
			}
		}
	}
	st := db.Stats()
	if st.Flushes == 0 || st.Compactions == 0 {
		t.Fatalf("workload too gentle: %d flushes, %d compactions — the property was not exercised",
			st.Flushes, st.Compactions)
	}
	for _, p := range pins {
		checkSnapshot(t, p.tag+"/final", p.snap, p.st)
	}
	// The live view must match the final oracle (sanity that snapshots
	// are not frozen because the whole tree is).
	checkSnapshot(t, "live", db.Snapshot(), captureOracle(model))
}

// TestSnapshotIgnoresLaterWrites pins the visibility rule directly: a
// write after the snapshot — to an existing key or a new one — is
// invisible, even after it is flushed into the runs the snapshot pinned
// a view over.
func TestSnapshotIgnoresLaterWrites(t *testing.T) {
	db, _, _ := newDB(t, smallConfig())
	now, err := db.Put(0, "a", []byte("old"))
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if now, err = db.Put(now, "a", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if now, err = db.Put(now, "b", []byte("born-later")); err != nil {
		t.Fatal(err)
	}
	now = db.Flush(now)
	if _, err = db.Delete(now, "a"); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Get("a"); !ok || string(v) != "old" {
		t.Fatalf("snapshot reads %q ok=%v, want frozen \"old\"", v, ok)
	}
	if _, ok := snap.Get("b"); ok {
		t.Fatal("snapshot sees a key born after it")
	}
	n := snap.Scan("", 0, false, func(key string, val []byte) bool {
		if key != "a" || string(val) != "old" {
			t.Fatalf("snapshot scan yields %q=%q", key, val)
		}
		return true
	})
	if n != 1 {
		t.Fatalf("snapshot scan visited %d keys, want 1", n)
	}
}

// TestScanIntoMergedAcrossTiers drives the Backend range scan while
// versions of the same keys sit in the memtable, L0, and deeper levels
// at once: key order, newest-wins, tombstone hiding, start-key
// inclusivity, limits, and reverse order all hold, and the probes are
// charged to the access trace.
func TestScanIntoMergedAcrossTiers(t *testing.T) {
	db, _, _ := newDB(t, smallConfig())
	now := sim.Time(0)
	put := func(k, v string) {
		at, err := db.Put(now, k, []byte(v))
		if err != nil {
			t.Fatal(err)
		}
		now = at
	}
	const n = 40
	// Three generations: the oldest lands in deep runs, the middle in
	// L0, the newest stays in the memtable. Generation g overwrites
	// every g-th key, so each tier holds the newest version of some keys.
	for g := 1; g <= 3; g++ {
		for i := 0; i < n; i++ {
			if i%g == 0 {
				put(fmt.Sprintf("key-%03d", i), fmt.Sprintf("gen%d-%03d", g, i))
			}
		}
		if g < 3 {
			now = db.Flush(now)
		}
	}
	// Tombstone a few keys from the memtable generation.
	for _, i := range []int{0, 6, 12} {
		at, err := db.Delete(now, fmt.Sprintf("key-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		now = at
	}
	want := map[string]string{}
	for i := 0; i < n; i++ {
		g := 1
		if i%2 == 0 {
			g = 2
		}
		if i%3 == 0 {
			g = 3
		}
		if i == 0 || i == 6 || i == 12 {
			continue
		}
		want[fmt.Sprintf("key-%03d", i)] = fmt.Sprintf("gen%d-%03d", g, i)
	}

	buf, pairs, trace := db.ScanInto(nil, nil, nil, nil, len(want)+10, false)
	if len(trace) == 0 {
		t.Fatal("merged scan charged no accesses")
	}
	if len(pairs) != len(want) {
		t.Fatalf("scan yielded %d pairs, want %d", len(pairs), len(want))
	}
	prev := ""
	for _, p := range pairs {
		k, v := string(p.Key(buf)), string(p.Val(buf))
		if k <= prev {
			t.Fatalf("keys out of order: %q after %q", k, prev)
		}
		if want[k] != v {
			t.Fatalf("key %q: %q, want %q (newest version must win)", k, v, want[k])
		}
		prev = k
	}

	// Start key inclusive + limit.
	buf2, pairs2, _ := db.ScanInto(nil, nil, nil, []byte("key-010"), 5, false)
	if len(pairs2) != 5 || string(pairs2[0].Key(buf2)) != "key-010" {
		t.Fatalf("bounded scan starts at %q with %d pairs", pairs2[0].Key(buf2), len(pairs2))
	}
	// Reverse from the same start walks downward.
	buf3, pairs3, _ := db.ScanInto(nil, nil, nil, []byte("key-010"), 5, true)
	if string(pairs3[0].Key(buf3)) != "key-010" {
		t.Fatalf("reverse scan starts at %q", pairs3[0].Key(buf3))
	}
	for i := 1; i < len(pairs3); i++ {
		if string(pairs3[i].Key(buf3)) >= string(pairs3[i-1].Key(buf3)) {
			t.Fatal("reverse scan not descending")
		}
	}
}

// TestRecoveryMidFlushCut crashes the DB at the worst moment the WAL
// discipline allows: new writes have landed in the WAL after a flush,
// and the crash cuts the durable prefix mid-record. Recovery must keep
// the flushed runs, replay the intact tail records, discard the torn
// one, and resume the sequence counter so post-recovery writes still
// win over every recovered version.
func TestRecoveryMidFlushCut(t *testing.T) {
	db, space, mem := newDB(t, smallConfig())
	now := sim.Time(0)
	for i := 0; i < 30; i++ {
		at, err := db.Put(now, fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("flushed-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		now = at
	}
	now = db.Flush(now)
	// Post-flush writes: these exist only in the WAL.
	for i := 0; i < 8; i++ {
		at, err := db.Put(now, fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("walonly-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		now = at
	}
	wal, walValid := db.WAL()
	preSeq := db.Stats().Seq

	// Cut mid-record: the last record loses its tail.
	re, err := Recover(space, mem, smallConfig(), wal, walValid-3, db.Runs())
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Stats().Seq; got < preSeq-1 || got > preSeq {
		t.Fatalf("recovered seq %d, want %d or %d", got, preSeq-1, preSeq)
	}
	snap := re.Snapshot()
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("key-%03d", i)
		want := fmt.Sprintf("flushed-%03d", i)
		if i < 7 { // 8 WAL records, last one torn off
			want = fmt.Sprintf("walonly-%03d", i)
		}
		v, ok := snap.Get(k)
		if !ok || string(v) != want {
			t.Fatalf("key %q after recovery: %q ok=%v, want %q", k, v, ok, want)
		}
	}
	// The sequence counter resumed: a new write beats its recovered
	// version even for the key whose record was torn.
	if _, err := re.Put(0, "key-007", []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	if v, _, ok := re.Get(0, "key-007"); !ok || string(v) != "post-recovery" {
		t.Fatalf("post-recovery write lost: read %q ok=%v", v, ok)
	}
}

// TestMaintainStallsOnWALWrap pins the write-stall accounting on the
// Backend path: filling the WAL forces a synchronous flush whose NVM
// drain Maintain reports as a stall, and the stall counter moves.
func TestMaintainStallsOnWALWrap(t *testing.T) {
	// WAL smaller than the memtable: the log wraps (and forces a
	// synchronous flush) before the memtable fills on its own.
	db, _, _ := newDB(t, Config{
		MemtableBytes: 8 << 10,
		L0Runs:        2,
		SSTableBytes:  8 << 10,
		WALBytes:      1 << 10,
		MaxLevels:     3,
	})
	val := bytes.Repeat([]byte{'v'}, 64)
	var trace []kvs.Access
	var key []byte
	sawStall := false
	for i := 0; i < 200; i++ {
		key = append(key[:0], fmt.Sprintf("key-%03d", i%32)...)
		tr, err := db.PutInto(trace[:0], key, val)
		if err != nil {
			t.Fatal(err)
		}
		trace = tr
		if len(trace) == 0 {
			t.Fatal("PutInto charged no accesses")
		}
		if at, stalled := db.Maintain(sim.Time(i)); stalled {
			sawStall = true
			if at <= sim.Time(i) {
				t.Fatalf("stall resolved at %v, not after now %v", at, sim.Time(i))
			}
		}
	}
	if !sawStall {
		t.Fatal("WAL never wrapped: stall path not exercised")
	}
	if db.Stats().Stalls == 0 {
		t.Fatal("stall counter did not move")
	}
}

// TestApplyScratchOverLSM drives decoded wire requests over the LSM
// backend through the same dispatch the serving handler uses — the
// api_redesign contract that hash and LSM are interchangeable behind
// kvs.Backend — including an OpScan answered in key order.
func TestApplyScratchOverLSM(t *testing.T) {
	db, _, _ := newDB(t, Config{
		MemtableBytes: 8 << 10,
		L0Runs:        2,
		SSTableBytes:  64 << 10,
		WALBytes:      32 << 10,
		MaxLevels:     3,
	})
	var sc kvs.Scratch
	do := func(r kvs.Request) kvs.Response {
		req, err := kvs.DecodeRequest(kvs.AppendRequest(nil, r))
		if err != nil {
			t.Fatal(err)
		}
		resp, trace := kvs.ApplyScratch(db, req, &sc)
		if resp.Status == kvs.StatusOK && len(trace) == 0 {
			t.Fatalf("op %d: no accesses charged", r.Op)
		}
		return resp
	}
	for i := 0; i < 50; i++ {
		resp := do(kvs.Request{Op: kvs.OpPut,
			Key: []byte(fmt.Sprintf("key-%03d", i)), Val: []byte(fmt.Sprintf("val-%03d", i))})
		if resp.Status != kvs.StatusOK {
			t.Fatalf("put %d: status %d", i, resp.Status)
		}
	}
	db.Flush(0)
	if resp := do(kvs.Request{Op: kvs.OpGet, Key: []byte("key-017")}); resp.Status != kvs.StatusOK ||
		string(resp.Val) != "val-017" {
		t.Fatalf("get: %d %q", resp.Status, resp.Val)
	}
	if resp := do(kvs.Request{Op: kvs.OpDelete, Key: []byte("key-017")}); resp.Status != kvs.StatusOK {
		t.Fatalf("delete: %d", resp.Status)
	}
	if resp := do(kvs.Request{Op: kvs.OpGet, Key: []byte("key-017")}); resp.Status != kvs.StatusNotFound {
		t.Fatalf("get after delete: %d", resp.Status)
	}
	if resp := do(kvs.Request{Op: kvs.OpScan, Key: []byte("key-015"), ScanLimit: 4}); resp.Status != kvs.StatusOK {
		t.Fatalf("scan: %d", resp.Status)
	}
	wantKeys := []string{"key-015", "key-016", "key-018", "key-019"} // 017 deleted
	if len(sc.ScanPairs) != len(wantKeys) {
		t.Fatalf("scan yielded %d pairs, want %d", len(sc.ScanPairs), len(wantKeys))
	}
	for i, p := range sc.ScanPairs {
		if got := string(p.Key(sc.ScanBuf)); got != wantKeys[i] {
			t.Fatalf("scan pair %d: %q, want %q", i, got, wantKeys[i])
		}
	}
}
