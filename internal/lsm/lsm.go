// Package lsm implements a log-structured merge-tree key-value store on
// NVM — the stand-in for RocksDB, which the paper's transaction
// evaluation uses as the persistent storage medium (Sec. VI-C:
// "we adopt RocksDB, a persistent key-value database, to use the
// emulated NVM as a persistent storage medium").
//
// The structure is the classic one: a write-ahead log and the sorted
// string tables live in NVM regions of the simulated address space
// (real bytes, so recovery is testable by re-opening from the same
// regions), the memtable lives in DRAM, and flush/compaction charge
// streaming NVM writes while reads charge per-run probes.
//
// # MVCC
//
// Every record carries a sequence number from a global counter.
// [DB.Snapshot] pins a view — the sequence high-water mark, the live
// memtable map, and the run list — and reads or range scans through it
// see exactly the versions at pin time: newer memtable versions are
// filtered by sequence, a flush swaps in a fresh memtable map (the
// snapshot keeps the old one), and compaction builds new sstables
// while the pinned ones stay readable (simulation regions are never
// freed). Snapshots therefore never block behind flush or compaction
// and cost nothing to take.
//
// # Serving path
//
// DB implements kvs.Backend: [DB.GetInto], [DB.PutInto],
// [DB.DeleteInto], and [DB.ScanInto] run the operation functionally and
// append the memory-access trace (WAL appends and run probes at their
// real NVM addresses, memtable touches in the DRAM arena) for the
// serving handler to charge through its coherent datapath. Flush and
// compaction triggered by those writes only mutate state; their NVM
// streaming cost accumulates as pending background work that
// [DB.Maintain] charges to the write-bandwidth model — occupying the
// NVM channels so subsequent reads queue behind compaction, which is
// how compaction pressure surfaces in tail latency. A WAL wrap is the
// exception: the triggering write must stall until the forced flush is
// durable (Maintain reports it; [Stats].Stalls counts them).
package lsm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"rambda/internal/kvs"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/sim"
)

// DB implements the pluggable KVS backend contract.
var _ kvs.Backend = (*DB)(nil)

// Config sizes the tree.
type Config struct {
	// MemtableBytes is the flush threshold.
	MemtableBytes int
	// L0Runs triggers compaction of level 0 into level 1.
	L0Runs int
	// SSTableBytes caps one run region (flushes larger than this fail —
	// size the memtable below it).
	SSTableBytes uint64
	// WALBytes sizes the write-ahead log ring.
	WALBytes uint64
	// MaxLevels bounds the tree depth.
	MaxLevels int
}

// DefaultConfig returns a small tree suitable for simulation scale.
func DefaultConfig() Config {
	return Config{
		MemtableBytes: 64 << 10,
		L0Runs:        4,
		SSTableBytes:  4 << 20,
		WALBytes:      1 << 20,
		MaxLevels:     4,
	}
}

// DB is the store.
type DB struct {
	cfg   Config
	space *memspace.Space
	mem   *memdev.System

	wal      *memspace.Region
	memArena *memspace.Region // DRAM stand-in for the memtable's working set
	walOff   uint64

	// seq is the global MVCC sequence counter: every write gets the
	// next value, snapshots pin the current one.
	seq uint64

	// memtable maps key -> versions in ascending sequence order. A
	// flush swaps in a fresh map; pinned snapshots keep the old one.
	memtable map[string][]entry
	memBytes int

	// levels[0] holds newest-first overlapping runs; deeper levels hold
	// one sorted run each.
	levels [][]*sstable

	// pending is background NVM work (flush/compaction run writes)
	// built but not yet charged to the write-bandwidth model;
	// pendingStall marks a WAL-wrap flush whose charge is synchronous.
	pending      []pendingIO
	pendingStall bool

	tr *obs.Trace // optional flush/compaction span collector

	puts, gets, deletes, scans int64
	flushes, compactions       int64
	walRecords, walReplays     int64
	stalls                     int64
}

type entry struct {
	seq       uint64
	val       []byte
	tombstone bool
}

// pendingIO is one deferred background NVM write.
type pendingIO struct {
	name  string // "flush" or "compact"
	addr  uint64
	bytes int
}

// Open creates an empty store inside the given space.
func Open(space *memspace.Space, mem *memdev.System, cfg Config) *DB {
	if cfg.MemtableBytes <= 0 || cfg.WALBytes == 0 || cfg.MaxLevels < 1 {
		panic("lsm: bad config")
	}
	return &DB{
		cfg:      cfg,
		space:    space,
		mem:      mem,
		wal:      space.Alloc("lsm-wal", cfg.WALBytes, memspace.KindNVM),
		memArena: space.Alloc("lsm-mem", uint64(cfg.MemtableBytes), memspace.KindDRAM),
		memtable: make(map[string][]entry),
		levels:   make([][]*sstable, cfg.MaxLevels),
	}
}

// SetTrace attaches an optional span collector: Maintain records one
// StageCompaction span per drained flush/compaction write. Nil (the
// default) is the fast path.
func (db *DB) SetTrace(tr *obs.Trace) { db.tr = tr }

// Stats summarizes activity.
type Stats struct {
	Puts, Gets, Deletes, Scans int64
	Flushes, Compactions       int64
	// Stalls counts writes that blocked synchronously on a WAL-wrap
	// flush (the write-stall analog of RocksDB's L0 stalls).
	Stalls          int64
	Runs            []int // runs per level
	MemtableEntries int
	MemtableBytes   int
	Seq             uint64
}

// Stats returns activity counters.
func (db *DB) Stats() Stats {
	s := Stats{
		Puts: db.puts, Gets: db.gets, Deletes: db.deletes, Scans: db.scans,
		Flushes: db.flushes, Compactions: db.compactions, Stalls: db.stalls,
		MemtableEntries: len(db.memtable),
		MemtableBytes:   db.memBytes,
		Seq:             db.seq,
	}
	for _, l := range db.levels {
		s.Runs = append(s.Runs, len(l))
	}
	return s
}

// RegisterMetrics exposes the tree's health as gauges under prefix:
// memtable occupancy, run counts, flush/compaction/stall totals, and
// the MVCC sequence high-water mark.
func (db *DB) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".memtable_bytes", func() float64 { return float64(db.memBytes) })
	reg.Gauge(prefix+".memtable_entries", func() float64 { return float64(len(db.memtable)) })
	reg.Gauge(prefix+".flushes", func() float64 { return float64(db.flushes) })
	reg.Gauge(prefix+".compactions", func() float64 { return float64(db.compactions) })
	reg.Gauge(prefix+".stalls", func() float64 { return float64(db.stalls) })
	reg.Gauge(prefix+".seq", func() float64 { return float64(db.seq) })
	reg.Gauge(prefix+".runs", func() float64 {
		n := 0
		for _, l := range db.levels {
			n += len(l)
		}
		return float64(n)
	})
}

// recordBytes is the record framing shared by the WAL and sstables:
// [2B klen][4B vlen|tomb][8B seq][key][val].
func recordBytes(key string, val []byte) int { return recordHdr + len(key) + len(val) }

const (
	recordHdr = 14
	tombBit   = 1 << 31
)

// Put inserts or updates a key: WAL append (persistence point), then
// the memtable, flushing and compacting as needed. It returns the time
// the write is durable.
func (db *DB) Put(now sim.Time, key string, val []byte) (sim.Time, error) {
	return db.write(now, key, val, false)
}

// Delete writes a tombstone.
func (db *DB) Delete(now sim.Time, key string) (sim.Time, error) {
	return db.write(now, key, nil, true)
}

// write is the timed write path: the WAL charge lands inline and any
// triggered background work drains synchronously before returning (the
// pre-MVCC behavior chainrep's replicas depend on).
func (db *DB) write(now sim.Time, key string, val []byte, tomb bool) (sim.Time, error) {
	walAddr, err := db.writeState(key, val, tomb)
	if err != nil {
		return now, err
	}
	at := db.mem.NVM.WriteAt(now, uint64(walAddr), recordBytes(key, val))
	at, _ = db.Maintain(at)
	return at, nil
}

// writeState performs the functional write — WAL append, memtable
// version insert, flush/compaction state transitions — and returns the
// WAL address of the appended record. NVM time for the WAL record is
// the caller's to charge (inline on the timed path, via the access
// trace on the serving path); flush/compaction cost lands in pending.
func (db *DB) writeState(key string, val []byte, tomb bool) (memspace.Addr, error) {
	if len(key) == 0 || len(key) > 0xFFFF || len(val) >= tombBit {
		return 0, fmt.Errorf("lsm: invalid key/value size (%d/%d)", len(key), len(val))
	}
	rec := recordBytes(key, val)
	if uint64(rec) > db.wal.Size {
		return 0, fmt.Errorf("lsm: record %d exceeds WAL", rec)
	}
	if db.walOff+uint64(rec) > db.wal.Size {
		// The log is full of records that may still be unflushed: flush
		// the memtable (persisting them as a run) before reclaiming the
		// ring. The triggering write must wait for it — a write stall.
		db.flushState()
		db.pendingStall = true
		db.stalls++
	}
	db.seq++
	walAddr := db.wal.Base + memspace.Addr(db.walOff)
	db.encodeRecord(walAddr, key, val, db.seq, tomb)
	db.walOff += uint64(rec)
	db.walRecords++

	db.memtable[key] = append(db.memtable[key],
		entry{seq: db.seq, val: append([]byte(nil), val...), tombstone: tomb})
	db.memBytes += rec
	if tomb {
		db.deletes++
	} else {
		db.puts++
	}
	if db.memBytes >= db.cfg.MemtableBytes {
		db.flushState()
	}
	return walAddr, nil
}

func (db *DB) encodeRecord(addr memspace.Addr, key string, val []byte, seq uint64, tomb bool) {
	buf := db.space.Slice(addr, recordBytes(key, val))
	putRecordHdr(buf, len(key), len(val), seq, tomb)
	copy(buf[recordHdr:], key)
	copy(buf[recordHdr+len(key):], val)
}

func putRecordHdr(buf []byte, klen, vlen int, seq uint64, tomb bool) {
	binary.LittleEndian.PutUint16(buf[0:2], uint16(klen))
	vl := uint32(vlen)
	if tomb {
		vl |= tombBit
	}
	binary.LittleEndian.PutUint32(buf[2:6], vl)
	binary.LittleEndian.PutUint64(buf[6:14], seq)
}

func parseRecordHdr(buf []byte) (klen, vlen int, seq uint64, tomb bool) {
	klen = int(binary.LittleEndian.Uint16(buf[0:2]))
	raw := binary.LittleEndian.Uint32(buf[2:6])
	return klen, int(raw &^ uint32(tombBit)), binary.LittleEndian.Uint64(buf[6:14]), raw&tombBit != 0
}

// Get looks up a key: memtable, then L0 runs newest-first, then one run
// per deeper level, charging an NVM probe per run consulted.
func (db *DB) Get(now sim.Time, key string) ([]byte, sim.Time, bool) {
	db.gets++
	if e, ok := newestVisible(db.memtable[key], db.seq); ok {
		if e.tombstone {
			return nil, now, false
		}
		return append([]byte(nil), e.val...), now, true
	}
	at := now
	tomb, found := false, false
	var out []byte
	db.probeRuns(key, db.seq, func(_ memspace.Addr, bytes int) {
		at = db.mem.NVM.Read(at, bytes)
	}, func(v []byte, t bool) {
		out, tomb, found = append([]byte(nil), v...), t, true
	})
	if !found || tomb {
		return nil, at, false
	}
	return out, at, true
}

// newestVisible returns the newest version with seq <= maxSeq.
func newestVisible(versions []entry, maxSeq uint64) (entry, bool) {
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i].seq <= maxSeq {
			return versions[i], true
		}
	}
	return entry{}, false
}

// probeRuns walks the run hierarchy for key — L0 newest-first, one run
// per deeper level — invoking charge per NVM probe (with the record's
// real address, or the run base on a miss) and hit (at most once) with
// the winning record. Records above maxSeq are invisible.
func (db *DB) probeRuns(key string, maxSeq uint64,
	charge func(addr memspace.Addr, bytes int), hit func(val []byte, tomb bool)) {
	for li, runs := range db.levels {
		for ri := len(runs) - 1; ri >= 0; ri-- { // newest first within L0
			run := runs[ri]
			val, seq, tomb, addr, probed, found := run.get(key)
			charge(addr, probed)
			if found && seq <= maxSeq {
				hit(val, tomb)
				return
			}
			if li > 0 {
				break // one run per deeper level
			}
		}
	}
}

// flushState sorts the memtable's newest versions into a new L0 run,
// swaps in a fresh memtable (pinned snapshots keep the old map), and
// truncates the WAL. The run's streaming NVM write lands in pending.
func (db *DB) flushState() {
	if len(db.memtable) == 0 {
		return
	}
	flat := make(map[string]entry, len(db.memtable))
	for k, versions := range db.memtable {
		flat[k] = versions[len(versions)-1]
	}
	run, bytes := buildSSTable(db.space, fmt.Sprintf("lsm-l0-%d", db.flushes), db.cfg.SSTableBytes, flat)
	db.pending = append(db.pending, pendingIO{name: "lsm.flush", addr: uint64(run.region.Base), bytes: bytes})
	db.levels[0] = append(db.levels[0], run)
	db.memtable = make(map[string][]entry)
	db.memBytes = 0
	db.walOff = 0
	db.flushes++
	if len(db.levels[0]) > db.cfg.L0Runs {
		db.compactState(0)
	}
}

// Flush exposes flushing for tests and shutdown, charging the run write
// before returning.
func (db *DB) Flush(now sim.Time) sim.Time {
	db.flushState()
	at, _ := db.Maintain(now)
	return at
}

// compactState merges every run of level li plus the run at li+1 into a
// new single run at li+1, deferring the streaming write to pending.
// Pinned snapshots keep reading the replaced runs: their regions stay
// valid forever.
func (db *DB) compactState(li int) {
	if li+1 >= db.cfg.MaxLevels {
		return // bottom level absorbs runs without further merging
	}
	merged := make(map[string]entry)
	// Oldest first so newer (higher-sequence) records overwrite.
	if len(db.levels[li+1]) > 0 {
		db.levels[li+1][0].scanInto(merged)
	}
	for _, run := range db.levels[li] {
		run.scanInto(merged)
	}
	bottom := li+1 == db.cfg.MaxLevels-1
	if bottom {
		// Tombstones die at the bottom.
		for k, e := range merged {
			if e.tombstone {
				delete(merged, k)
			}
		}
	}
	db.compactions++
	db.levels[li] = nil
	if len(merged) == 0 {
		db.levels[li+1] = nil
		return
	}
	run, bytes := buildSSTable(db.space, fmt.Sprintf("lsm-l%d-%d", li+1, db.compactions),
		db.cfg.SSTableBytes*uint64(li+2), merged)
	db.pending = append(db.pending, pendingIO{name: "lsm.compact", addr: uint64(run.region.Base), bytes: bytes})
	db.levels[li+1] = []*sstable{run}
	// Cascade if the merged level has grown too large.
	if uint64(bytes) > db.cfg.SSTableBytes*uint64(1<<uint(li+1)) && li+2 < db.cfg.MaxLevels {
		db.compactState(li + 1)
	}
}

// Maintain drains pending background work — flush and compaction run
// writes — into the NVM write-bandwidth model starting at now. It
// returns the time the device finishes and whether the caller's write
// stalled on a WAL-wrap flush (in which case the triggering request is
// not durable before the returned time). Charging occupies the NVM
// channel resource, so reads issued afterward queue behind the
// background stream: compaction pressure becomes tail latency.
func (db *DB) Maintain(now sim.Time) (sim.Time, bool) {
	at := now
	for _, p := range db.pending {
		end := db.mem.NVM.WriteAt(at, p.addr, p.bytes)
		if db.tr != nil {
			db.tr.Span(p.name, obs.StageCompaction, at, end)
		}
		at = end
	}
	db.pending = db.pending[:0]
	stalled := db.pendingStall
	db.pendingStall = false
	return at, stalled
}

// PendingBytes reports the backlog Maintain would charge.
func (db *DB) PendingBytes() int {
	n := 0
	for _, p := range db.pending {
		n += p.bytes
	}
	return n
}

// --- kvs.Backend: the trace-emitting serving path ---

// memAccess maps a memtable touch for key into the DRAM arena: a
// deterministic cacheline-aligned slot keyed by the key's hash, the
// address the serving handler charges through its coherent datapath.
func (db *DB) memAccess(key []byte, write bool) kvs.Access {
	slots := db.memArena.Size / 64
	off := (kvs.Hash64(key) % slots) * 64
	return kvs.Access{Addr: db.memArena.Base + memspace.Addr(off), Bytes: 64, Write: write}
}

// GetInto implements kvs.Backend: the value is appended to dst and the
// memory accesses — memtable arena touch, then one NVM probe per run
// consulted — to trace. Ownership follows the kvs §8 discipline: the
// returned slices alias the caller's buffers and stay valid until the
// caller reuses them; the DB retains nothing.
func (db *DB) GetInto(dst []byte, trace []kvs.Access, key []byte) ([]byte, []kvs.Access, bool) {
	db.gets++
	trace = append(trace, db.memAccess(key, false))
	if e, ok := newestVisible(db.memtable[string(key)], db.seq); ok {
		if e.tombstone {
			return dst, trace, false
		}
		return append(dst, e.val...), trace, true
	}
	found, tomb := false, false
	db.probeRuns(string(key), db.seq, func(addr memspace.Addr, bytes int) {
		trace = append(trace, kvs.Access{Addr: addr, Bytes: bytes})
	}, func(v []byte, t bool) {
		tomb = t
		if !t {
			dst = append(dst, v...)
		}
		found = true
	})
	return dst, trace, found && !tomb
}

// PutInto implements kvs.Backend: WAL append (the durability point, an
// NVM write at the record's log address) plus the memtable arena
// touch. Flush/compaction triggered here only mutate state — call
// Maintain afterward to charge the background stream.
func (db *DB) PutInto(trace []kvs.Access, key, val []byte) ([]kvs.Access, error) {
	walAddr, err := db.writeState(string(key), val, false)
	if err != nil {
		return trace, err
	}
	trace = append(trace, kvs.Access{Addr: walAddr, Bytes: recordBytes(string(key), val), Write: true})
	trace = append(trace, db.memAccess(key, true))
	return trace, nil
}

// DeleteInto implements kvs.Backend: a tombstone write. ok reports
// whether the key was visible before the delete.
func (db *DB) DeleteInto(trace []kvs.Access, key []byte) ([]kvs.Access, bool) {
	visible := db.liveKey(string(key))
	walAddr, err := db.writeState(string(key), nil, true)
	if err != nil {
		return trace, false
	}
	trace = append(trace, kvs.Access{Addr: walAddr, Bytes: recordBytes(string(key), nil), Write: true})
	trace = append(trace, db.memAccess(key, true))
	return trace, visible
}

// liveKey reports whether key currently resolves to a non-tombstone
// version (functional visibility check, no charging).
func (db *DB) liveKey(key string) bool {
	if e, ok := newestVisible(db.memtable[key], db.seq); ok {
		return !e.tombstone
	}
	live := false
	db.probeRuns(key, db.seq, func(memspace.Addr, int) {}, func(_ []byte, tomb bool) {
		live = !tomb
	})
	return live
}

// ScanInto implements kvs.Backend: a merged-iterator range scan from
// start (inclusive) over memtable + all runs, newest version wins,
// tombstones suppress. Pairs are appended to buf/pairs per the
// kvs.ScanPair layout and every consulted source appends its access to
// trace.
func (db *DB) ScanInto(buf []byte, pairs []kvs.ScanPair, trace []kvs.Access,
	start []byte, limit int, reverse bool) ([]byte, []kvs.ScanPair, []kvs.Access) {
	db.scans++
	it := newMergeIter(db.memtable, db.levels, db.seq, string(start), reverse)
	emitted := 0
	for emitted < limit && it.next() {
		trace = append(trace, it.probes...)
		it.probes = it.probes[:0]
		if it.tomb {
			continue
		}
		trace = append(trace, db.memAccess([]byte(it.key), false))
		keyOff := len(buf)
		buf = append(buf, it.key...)
		buf = append(buf, it.val...)
		pairs = append(pairs, kvs.ScanPair{KeyOff: keyOff, KeyLen: len(it.key), ValLen: len(it.val)})
		emitted++
	}
	trace = append(trace, it.probes...)
	return buf, pairs, trace
}

// --- MVCC snapshots ---

// Snapshot is a pinned read view: sequence high-water mark, memtable
// map, and run list as of Snapshot(). It stays valid forever (regions
// are never freed) and costs nothing to take or hold.
type Snapshot struct {
	seq  uint64
	mem  map[string][]entry
	runs [][]*sstable
}

// Snapshot pins the current view.
func (db *DB) Snapshot() *Snapshot {
	runs := make([][]*sstable, len(db.levels))
	for li, level := range db.levels {
		runs[li] = append([]*sstable(nil), level...)
	}
	return &Snapshot{seq: db.seq, mem: db.memtable, runs: runs}
}

// Seq reports the snapshot's pinned sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Get reads a key as of the snapshot.
func (s *Snapshot) Get(key string) ([]byte, bool) {
	if e, ok := newestVisible(s.mem[key], s.seq); ok {
		if e.tombstone {
			return nil, false
		}
		return append([]byte(nil), e.val...), true
	}
	var out []byte
	found, tomb := false, false
	for li, runs := range s.runs {
		for ri := len(runs) - 1; ri >= 0 && !found; ri-- {
			val, seq, t, _, _, ok := runs[ri].get(key)
			if ok && seq <= s.seq {
				out, tomb, found = append([]byte(nil), val...), t, true
			}
			if li > 0 {
				break
			}
		}
		if found {
			break
		}
	}
	if !found || tomb {
		return nil, false
	}
	return out, true
}

// Scan iterates live pairs from start (inclusive) in key order
// (descending when reverse), calling fn until it returns false or limit
// pairs have been visited (limit <= 0 is unbounded). It returns the
// number of pairs visited.
func (s *Snapshot) Scan(start string, limit int, reverse bool, fn func(key string, val []byte) bool) int {
	it := newMergeIter(s.mem, s.runs, s.seq, start, reverse)
	n := 0
	for it.next() {
		if it.tomb {
			continue
		}
		n++
		if !fn(it.key, it.val) {
			break
		}
		if limit > 0 && n >= limit {
			break
		}
	}
	return n
}

// --- merged iterator ---

// mergeIter walks memtable + runs in key order, resolving each key to
// its newest visible version. One source per structure: the memtable's
// sorted key list and each sstable's index.
type mergeIter struct {
	sources []*iterSource
	reverse bool
	maxSeq  uint64

	// Current resolved record after next():
	key  string
	val  []byte
	tomb bool
	// probes accumulates the NVM accesses of the records consulted for
	// the current key (serving-path charging).
	probes []kvs.Access
}

// iterSource is one sorted structure's cursor.
type iterSource struct {
	keys []string
	pos  int // index into keys; -1 / len(keys) = exhausted
	mem  map[string][]entry
	run  *sstable
}

func (src *iterSource) done(reverse bool) bool {
	if reverse {
		return src.pos < 0
	}
	return src.pos >= len(src.keys)
}

func (src *iterSource) advance(reverse bool) {
	if reverse {
		src.pos--
	} else {
		src.pos++
	}
}

func newMergeIter(mem map[string][]entry, levels [][]*sstable, maxSeq uint64,
	start string, reverse bool) *mergeIter {
	it := &mergeIter{reverse: reverse, maxSeq: maxSeq}
	memKeys := make([]string, 0, len(mem))
	for k := range mem {
		memKeys = append(memKeys, k)
	}
	sort.Strings(memKeys)
	it.sources = append(it.sources, &iterSource{keys: memKeys, pos: seekPos(memKeys, start, reverse), mem: mem})
	for _, level := range levels {
		for _, run := range level {
			it.sources = append(it.sources, &iterSource{keys: run.keys, pos: seekPos(run.keys, start, reverse), run: run})
		}
	}
	return it
}

// seekPos places a cursor at the first key of the scan: the smallest
// key >= start going forward, the largest key <= start in reverse (an
// empty start means the last key in reverse, the first otherwise).
func seekPos(keys []string, start string, reverse bool) int {
	if !reverse {
		if start == "" {
			return 0
		}
		return sort.SearchStrings(keys, start)
	}
	if start == "" {
		return len(keys) - 1
	}
	i := sort.SearchStrings(keys, start)
	if i < len(keys) && keys[i] == start {
		return i
	}
	return i - 1
}

// next advances to the following key in scan order, resolving its
// newest visible version into key/val/tomb. It returns false when every
// source is exhausted.
func (it *mergeIter) next() bool {
	for {
		best := ""
		found := false
		for _, src := range it.sources {
			if src.done(it.reverse) {
				continue
			}
			k := src.keys[src.pos]
			if !found || (!it.reverse && k < best) || (it.reverse && k > best) {
				best, found = k, true
			}
		}
		if !found {
			return false
		}
		// Resolve the newest visible version among the sources at best,
		// then advance them all past it.
		var bestSeq uint64
		resolved := false
		var val []byte
		var tomb bool
		for _, src := range it.sources {
			if src.done(it.reverse) || src.keys[src.pos] != best {
				continue
			}
			if src.mem != nil {
				if e, ok := newestVisible(src.mem[best], it.maxSeq); ok && (!resolved || e.seq > bestSeq) {
					bestSeq, val, tomb, resolved = e.seq, e.val, e.tombstone, true
				}
			} else {
				v, seq, t, addr, probed, ok := src.run.get(best)
				it.probes = append(it.probes, kvs.Access{Addr: addr, Bytes: probed})
				if ok && seq <= it.maxSeq && (!resolved || seq > bestSeq) {
					bestSeq, val, tomb, resolved = seq, v, t, true
				}
			}
			src.advance(it.reverse)
		}
		if !resolved {
			continue // every version is newer than the pinned sequence
		}
		it.key, it.val, it.tomb = best, val, tomb
		return true
	}
}

// --- sstables ---

// sstable is one sorted run in NVM.
type sstable struct {
	region *memspace.Region
	space  *memspace.Space
	// index holds the sorted keys with their record offsets and
	// sequence numbers (rebuilt by scanning the region on recovery,
	// held in DRAM at runtime).
	keys    []string
	offsets []uint32
	seqs    []uint64
}

// buildSSTable serializes entries (sorted) into a fresh NVM region.
func buildSSTable(space *memspace.Space, name string, capBytes uint64, entries map[string]entry) (*sstable, int) {
	keys := make([]string, 0, len(entries))
	total := 8 // [4B magic][4B count]
	for k, e := range entries {
		keys = append(keys, k)
		total += recordBytes(k, e.val)
	}
	sort.Strings(keys)
	if uint64(total) > capBytes {
		capBytes = uint64(total) // grow: simulation regions are cheap
	}
	region := space.Alloc(name, capBytes, memspace.KindNVM)
	buf := region.Bytes()
	binary.LittleEndian.PutUint32(buf[0:4], sstMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(keys)))
	t := &sstable{region: region, space: space}
	off := 8
	for _, k := range keys {
		e := entries[k]
		t.keys = append(t.keys, k)
		t.offsets = append(t.offsets, uint32(off))
		t.seqs = append(t.seqs, e.seq)
		putRecordHdr(buf[off:], len(k), len(e.val), e.seq, e.tombstone)
		copy(buf[off+recordHdr:], k)
		copy(buf[off+recordHdr+len(k):], e.val)
		off += recordBytes(k, e.val)
	}
	return t, off
}

const sstMagic = 0x4C534D32 // "LSM2"

// get binary-searches the run. probed is the byte count of NVM touched
// (index is in DRAM; one record read per hit/miss probe) and addr the
// probed NVM address (the record on a hit, the run base on a miss).
func (t *sstable) get(key string) (val []byte, seq uint64, tomb bool, addr memspace.Addr, probed int, found bool) {
	i := sort.SearchStrings(t.keys, key)
	if i >= len(t.keys) || t.keys[i] != key {
		return nil, 0, false, t.region.Base, memdev.NVMGranularity, false
	}
	off := int(t.offsets[i])
	kl, n, seq, tomb := parseRecordHdr(t.region.Bytes()[off : off+recordHdr])
	val = t.region.Bytes()[off+recordHdr+kl : off+recordHdr+kl+n]
	return val, seq, tomb, t.region.Base + memspace.Addr(off), recordHdr + kl + n, true
}

// scanInto replays the run's records into dst; a record overwrites only
// an older (lower-sequence) one.
func (t *sstable) scanInto(dst map[string]entry) {
	for i, k := range t.keys {
		off := int(t.offsets[i])
		kl, n, seq, tomb := parseRecordHdr(t.region.Bytes()[off : off+recordHdr])
		if old, ok := dst[k]; ok && old.seq > seq {
			continue
		}
		dst[k] = entry{
			seq:       seq,
			val:       append([]byte(nil), t.region.Bytes()[off+recordHdr+kl:off+recordHdr+kl+n]...),
			tombstone: tomb,
		}
	}
}

// openSSTable rebuilds a run's index by scanning its region bytes.
func openSSTable(space *memspace.Space, region *memspace.Region) (*sstable, error) {
	buf := region.Bytes()
	if len(buf) < 8 || binary.LittleEndian.Uint32(buf[0:4]) != sstMagic {
		return nil, fmt.Errorf("lsm: region %q is not an sstable", region.Name)
	}
	count := int(binary.LittleEndian.Uint32(buf[4:8]))
	t := &sstable{region: region, space: space}
	off := 8
	for i := 0; i < count; i++ {
		if off+recordHdr > len(buf) {
			return nil, fmt.Errorf("lsm: truncated sstable %q", region.Name)
		}
		kl, vl, seq, _ := parseRecordHdr(buf[off : off+recordHdr])
		if off+recordHdr+kl+vl > len(buf) {
			return nil, fmt.Errorf("lsm: truncated record in %q", region.Name)
		}
		t.keys = append(t.keys, string(buf[off+recordHdr:off+recordHdr+kl]))
		t.offsets = append(t.offsets, uint32(off))
		t.seqs = append(t.seqs, seq)
		off += recordHdr + kl + vl
	}
	return t, nil
}

// Recover rebuilds a DB after a crash from the persistent regions: the
// sstable runs (oldest-to-newest per level, levels deep-to-shallow
// handled by scan order) and the WAL records not yet flushed. walValid
// is the number of durable WAL bytes (a real system reads until the
// checksum breaks; the simulation tracks it in the test). The MVCC
// sequence counter resumes from the highest sequence seen anywhere.
func Recover(space *memspace.Space, mem *memdev.System, cfg Config,
	wal *memspace.Region, walValid uint64, runs [][]*memspace.Region) (*DB, error) {
	db := &DB{
		cfg:      cfg,
		space:    space,
		mem:      mem,
		wal:      wal,
		memArena: space.Alloc("lsm-mem", uint64(cfg.MemtableBytes), memspace.KindDRAM),
		memtable: make(map[string][]entry),
		levels:   make([][]*sstable, cfg.MaxLevels),
	}
	for li, level := range runs {
		if li >= cfg.MaxLevels {
			return nil, fmt.Errorf("lsm: %d levels exceed MaxLevels %d", len(runs), cfg.MaxLevels)
		}
		for _, region := range level {
			t, err := openSSTable(space, region)
			if err != nil {
				return nil, err
			}
			for _, seq := range t.seqs {
				if seq > db.seq {
					db.seq = seq
				}
			}
			db.levels[li] = append(db.levels[li], t)
		}
	}
	// Replay the WAL tail into the memtable.
	buf := wal.Bytes()
	off := uint64(0)
	for off+recordHdr <= walValid {
		kl, vl, seq, tomb := parseRecordHdr(buf[off : off+recordHdr])
		if off+uint64(recordHdr+kl+vl) > walValid {
			break // torn tail record: discarded, like a failed checksum
		}
		key := string(buf[off+recordHdr : off+recordHdr+uint64(kl)])
		val := append([]byte(nil), buf[off+recordHdr+uint64(kl):off+recordHdr+uint64(kl+vl)]...)
		db.memtable[key] = append(db.memtable[key], entry{seq: seq, val: val, tombstone: tomb})
		db.memBytes += recordHdr + kl + vl
		if seq > db.seq {
			db.seq = seq
		}
		db.walReplays++
		off += uint64(recordHdr + kl + vl)
	}
	db.walOff = off
	return db, nil
}

// WAL exposes the log region and its valid length (for Recover).
func (db *DB) WAL() (*memspace.Region, uint64) { return db.wal, db.walOff }

// Runs exposes the current run regions per level (the manifest a real
// system would persist).
func (db *DB) Runs() [][]*memspace.Region {
	out := make([][]*memspace.Region, len(db.levels))
	for li, level := range db.levels {
		for _, t := range level {
			out[li] = append(out[li], t.region)
		}
	}
	return out
}

// Range iterates the live keys in sorted order (merging all levels and
// the memtable), calling fn until it returns false.
func (db *DB) Range(fn func(key string, val []byte) bool) {
	db.Snapshot().Scan("", 0, false, fn)
}

// ScanAt is the timed range scan: a merged-iterator walk from start
// charging one NVM probe per run record consulted, with a StageScan
// span when a trace collector is attached. It returns the completion
// time and the number of live pairs visited.
func (db *DB) ScanAt(now sim.Time, start string, limit int, reverse bool,
	fn func(key string, val []byte) bool) (sim.Time, int) {
	db.scans++
	it := newMergeIter(db.memtable, db.levels, db.seq, start, reverse)
	at := now
	n := 0
	for it.next() {
		for _, p := range it.probes {
			at = db.mem.NVM.Read(at, p.Bytes)
		}
		it.probes = it.probes[:0]
		if it.tomb {
			continue
		}
		n++
		if !fn(it.key, it.val) {
			break
		}
		if limit > 0 && n >= limit {
			break
		}
	}
	for _, p := range it.probes {
		at = db.mem.NVM.Read(at, p.Bytes)
	}
	if db.tr != nil {
		db.tr.Span("lsm.scan", obs.StageScan, now, at)
	}
	return at, n
}
