// Package lsm implements a log-structured merge-tree key-value store on
// NVM — the stand-in for RocksDB, which the paper's transaction
// evaluation uses as the persistent storage medium (Sec. VI-C:
// "we adopt RocksDB, a persistent key-value database, to use the
// emulated NVM as a persistent storage medium").
//
// The structure is the classic one: a write-ahead log and the sorted
// string tables live in NVM regions of the simulated address space
// (real bytes, so recovery is testable by re-opening from the same
// regions), the memtable lives in DRAM, and flush/compaction charge
// streaming NVM writes while reads charge per-run probes.
package lsm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// Config sizes the tree.
type Config struct {
	// MemtableBytes is the flush threshold.
	MemtableBytes int
	// L0Runs triggers compaction of level 0 into level 1.
	L0Runs int
	// SSTableBytes caps one run region (flushes larger than this fail —
	// size the memtable below it).
	SSTableBytes uint64
	// WALBytes sizes the write-ahead log ring.
	WALBytes uint64
	// MaxLevels bounds the tree depth.
	MaxLevels int
}

// DefaultConfig returns a small tree suitable for simulation scale.
func DefaultConfig() Config {
	return Config{
		MemtableBytes: 64 << 10,
		L0Runs:        4,
		SSTableBytes:  4 << 20,
		WALBytes:      1 << 20,
		MaxLevels:     4,
	}
}

// DB is the store.
type DB struct {
	cfg   Config
	space *memspace.Space
	mem   *memdev.System

	wal      *memspace.Region
	walOff   uint64
	memtable map[string]entry
	memBytes int

	// levels[0] holds newest-first overlapping runs; deeper levels hold
	// one sorted run each.
	levels [][]*sstable

	puts, gets, deletes    int64
	flushes, compactions   int64
	walRecords, walReplays int64
}

type entry struct {
	val       []byte
	tombstone bool
}

// Open creates an empty store inside the given space.
func Open(space *memspace.Space, mem *memdev.System, cfg Config) *DB {
	if cfg.MemtableBytes <= 0 || cfg.WALBytes == 0 || cfg.MaxLevels < 1 {
		panic("lsm: bad config")
	}
	return &DB{
		cfg:      cfg,
		space:    space,
		mem:      mem,
		wal:      space.Alloc("lsm-wal", cfg.WALBytes, memspace.KindNVM),
		memtable: make(map[string]entry),
		levels:   make([][]*sstable, cfg.MaxLevels),
	}
}

// Stats summarizes activity.
type Stats struct {
	Puts, Gets, Deletes  int64
	Flushes, Compactions int64
	Runs                 []int // runs per level
	MemtableEntries      int
}

// Stats returns activity counters.
func (db *DB) Stats() Stats {
	s := Stats{
		Puts: db.puts, Gets: db.gets, Deletes: db.deletes,
		Flushes: db.flushes, Compactions: db.compactions,
		MemtableEntries: len(db.memtable),
	}
	for _, l := range db.levels {
		s.Runs = append(s.Runs, len(l))
	}
	return s
}

// recordBytes is the WAL record framing: [2B klen][4B vlen|tomb][key][val].
func recordBytes(key string, val []byte) int { return 6 + len(key) + len(val) }

const tombBit = 1 << 31

// Put inserts or updates a key: WAL append (persistence point), then
// the memtable, flushing and compacting as needed. It returns the time
// the write is durable.
func (db *DB) Put(now sim.Time, key string, val []byte) (sim.Time, error) {
	return db.write(now, key, val, false)
}

// Delete writes a tombstone.
func (db *DB) Delete(now sim.Time, key string) (sim.Time, error) {
	return db.write(now, key, nil, true)
}

func (db *DB) write(now sim.Time, key string, val []byte, tomb bool) (sim.Time, error) {
	if len(key) == 0 || len(key) > 0xFFFF || len(val) >= tombBit {
		return now, fmt.Errorf("lsm: invalid key/value size (%d/%d)", len(key), len(val))
	}
	rec := recordBytes(key, val)
	if uint64(rec) > db.wal.Size {
		return now, fmt.Errorf("lsm: record %d exceeds WAL", rec)
	}
	at := now
	if db.walOff+uint64(rec) > db.wal.Size {
		// The log is full of records that may still be unflushed: flush
		// the memtable (persisting them as a run) before reclaiming the
		// ring.
		at = db.flush(at)
	}
	// Durability point: the WAL append reaches NVM.
	at = db.mem.NVM.WriteAt(at, uint64(db.wal.Base)+db.walOff, rec)
	db.encodeRecord(db.wal.Base+memspace.Addr(db.walOff), key, val, tomb)
	db.walOff += uint64(rec)
	db.walRecords++

	old, existed := db.memtable[key]
	db.memtable[key] = entry{val: append([]byte(nil), val...), tombstone: tomb}
	if existed {
		db.memBytes -= recordBytes(key, old.val)
	}
	db.memBytes += rec
	if tomb {
		db.deletes++
	} else {
		db.puts++
	}
	if db.memBytes >= db.cfg.MemtableBytes {
		at = db.flush(at)
	}
	return at, nil
}

func (db *DB) encodeRecord(addr memspace.Addr, key string, val []byte, tomb bool) {
	buf := db.space.Slice(addr, recordBytes(key, val))
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(key)))
	vl := uint32(len(val))
	if tomb {
		vl |= tombBit
	}
	binary.LittleEndian.PutUint32(buf[2:6], vl)
	copy(buf[6:], key)
	copy(buf[6+len(key):], val)
}

// Get looks up a key: memtable, then L0 runs newest-first, then one run
// per deeper level, charging an NVM probe per run consulted.
func (db *DB) Get(now sim.Time, key string) ([]byte, sim.Time, bool) {
	db.gets++
	if e, ok := db.memtable[key]; ok {
		if e.tombstone {
			return nil, now, false
		}
		return append([]byte(nil), e.val...), now, true
	}
	at := now
	for li, runs := range db.levels {
		for ri := len(runs) - 1; ri >= 0; ri-- { // newest first within L0
			run := runs[ri]
			val, tomb, probed, found := run.get(key)
			at = db.mem.NVM.Read(at, probed)
			if found {
				if tomb {
					return nil, at, false
				}
				return val, at, true
			}
			if li > 0 {
				break // one run per deeper level
			}
		}
	}
	return nil, at, false
}

// flush sorts the memtable into a new L0 run and truncates the WAL.
func (db *DB) flush(now sim.Time) sim.Time {
	if len(db.memtable) == 0 {
		return now
	}
	run, bytes := buildSSTable(db.space, fmt.Sprintf("lsm-l0-%d", db.flushes), db.cfg.SSTableBytes, db.memtable)
	at := db.mem.NVM.WriteAt(now, uint64(run.region.Base), bytes)
	db.levels[0] = append(db.levels[0], run)
	db.memtable = make(map[string]entry)
	db.memBytes = 0
	db.walOff = 0
	db.flushes++
	if len(db.levels[0]) > db.cfg.L0Runs {
		at = db.compact(at, 0)
	}
	return at
}

// Flush exposes flushing for tests and shutdown.
func (db *DB) Flush(now sim.Time) sim.Time { return db.flush(now) }

// compact merges every run of level li plus the run at li+1 into a new
// single run at li+1.
func (db *DB) compact(now sim.Time, li int) sim.Time {
	if li+1 >= db.cfg.MaxLevels {
		return now // bottom level absorbs runs without further merging
	}
	merged := make(map[string]entry)
	// Oldest first so newer runs overwrite.
	if len(db.levels[li+1]) > 0 {
		db.levels[li+1][0].scanInto(merged)
	}
	for _, run := range db.levels[li] {
		run.scanInto(merged)
	}
	bottom := li+1 == db.cfg.MaxLevels-1
	if bottom {
		// Tombstones die at the bottom.
		for k, e := range merged {
			if e.tombstone {
				delete(merged, k)
			}
		}
	}
	db.compactions++
	db.levels[li] = nil
	if len(merged) == 0 {
		db.levels[li+1] = nil
		return now
	}
	run, bytes := buildSSTable(db.space, fmt.Sprintf("lsm-l%d-%d", li+1, db.compactions),
		db.cfg.SSTableBytes*uint64(li+2), merged)
	at := db.mem.NVM.WriteAt(now, uint64(run.region.Base), bytes)
	db.levels[li+1] = []*sstable{run}
	// Cascade if the merged level has grown too large.
	if uint64(bytes) > db.cfg.SSTableBytes*uint64(1<<uint(li+1)) && li+2 < db.cfg.MaxLevels {
		at = db.compact(at, li+1)
	}
	return at
}

// sstable is one sorted run in NVM.
type sstable struct {
	region *memspace.Region
	space  *memspace.Space
	// index holds the sorted keys with their record offsets (rebuilt by
	// scanning the region on recovery, held in DRAM at runtime).
	keys    []string
	offsets []uint32
}

// buildSSTable serializes entries (sorted) into a fresh NVM region.
func buildSSTable(space *memspace.Space, name string, capBytes uint64, entries map[string]entry) (*sstable, int) {
	keys := make([]string, 0, len(entries))
	total := 8 // [4B magic][4B count]
	for k, e := range entries {
		keys = append(keys, k)
		total += recordBytes(k, e.val)
	}
	sort.Strings(keys)
	if uint64(total) > capBytes {
		capBytes = uint64(total) // grow: simulation regions are cheap
	}
	region := space.Alloc(name, capBytes, memspace.KindNVM)
	buf := region.Bytes()
	binary.LittleEndian.PutUint32(buf[0:4], sstMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(keys)))
	t := &sstable{region: region, space: space}
	off := 8
	for _, k := range keys {
		e := entries[k]
		t.keys = append(t.keys, k)
		t.offsets = append(t.offsets, uint32(off))
		binary.LittleEndian.PutUint16(buf[off:off+2], uint16(len(k)))
		vl := uint32(len(e.val))
		if e.tombstone {
			vl |= tombBit
		}
		binary.LittleEndian.PutUint32(buf[off+2:off+6], vl)
		copy(buf[off+6:], k)
		copy(buf[off+6+len(k):], e.val)
		off += recordBytes(k, e.val)
	}
	return t, off
}

const sstMagic = 0x4C534D31 // "LSM1"

// get binary-searches the run. probed is the byte count of NVM touched
// (index is in DRAM; one record read per hit/miss probe).
func (t *sstable) get(key string) (val []byte, tomb bool, probed int, found bool) {
	i := sort.SearchStrings(t.keys, key)
	if i >= len(t.keys) || t.keys[i] != key {
		return nil, false, memdev.NVMGranularity, false
	}
	off := int(t.offsets[i])
	hdr := t.region.Bytes()[off : off+6]
	vl := binary.LittleEndian.Uint32(hdr[2:6])
	tomb = vl&tombBit != 0
	n := int(vl &^ uint32(tombBit))
	kl := int(binary.LittleEndian.Uint16(hdr[0:2]))
	val = append([]byte(nil), t.region.Bytes()[off+6+kl:off+6+kl+n]...)
	return val, tomb, 6 + kl + n, true
}

// scanInto replays the run's records into dst (later calls overwrite).
func (t *sstable) scanInto(dst map[string]entry) {
	for i, k := range t.keys {
		off := int(t.offsets[i])
		hdr := t.region.Bytes()[off : off+6]
		vl := binary.LittleEndian.Uint32(hdr[2:6])
		tomb := vl&tombBit != 0
		n := int(vl &^ uint32(tombBit))
		kl := int(binary.LittleEndian.Uint16(hdr[0:2]))
		dst[k] = entry{
			val:       append([]byte(nil), t.region.Bytes()[off+6+kl:off+6+kl+n]...),
			tombstone: tomb,
		}
	}
}

// openSSTable rebuilds a run's index by scanning its region bytes.
func openSSTable(space *memspace.Space, region *memspace.Region) (*sstable, error) {
	buf := region.Bytes()
	if len(buf) < 8 || binary.LittleEndian.Uint32(buf[0:4]) != sstMagic {
		return nil, fmt.Errorf("lsm: region %q is not an sstable", region.Name)
	}
	count := int(binary.LittleEndian.Uint32(buf[4:8]))
	t := &sstable{region: region, space: space}
	off := 8
	for i := 0; i < count; i++ {
		if off+6 > len(buf) {
			return nil, fmt.Errorf("lsm: truncated sstable %q", region.Name)
		}
		kl := int(binary.LittleEndian.Uint16(buf[off : off+2]))
		vl := int(binary.LittleEndian.Uint32(buf[off+2:off+6]) &^ uint32(tombBit))
		if off+6+kl+vl > len(buf) {
			return nil, fmt.Errorf("lsm: truncated record in %q", region.Name)
		}
		t.keys = append(t.keys, string(buf[off+6:off+6+kl]))
		t.offsets = append(t.offsets, uint32(off))
		off += 6 + kl + vl
	}
	return t, nil
}

// Recover rebuilds a DB after a crash from the persistent regions: the
// sstable runs (oldest-to-newest per level, levels deep-to-shallow
// handled by scan order) and the WAL records not yet flushed. walValid
// is the number of durable WAL bytes (a real system reads until the
// checksum breaks; the simulation tracks it in the test).
func Recover(space *memspace.Space, mem *memdev.System, cfg Config,
	wal *memspace.Region, walValid uint64, runs [][]*memspace.Region) (*DB, error) {
	db := &DB{
		cfg:      cfg,
		space:    space,
		mem:      mem,
		wal:      wal,
		memtable: make(map[string]entry),
		levels:   make([][]*sstable, cfg.MaxLevels),
	}
	for li, level := range runs {
		if li >= cfg.MaxLevels {
			return nil, fmt.Errorf("lsm: %d levels exceed MaxLevels %d", len(runs), cfg.MaxLevels)
		}
		for _, region := range level {
			t, err := openSSTable(space, region)
			if err != nil {
				return nil, err
			}
			db.levels[li] = append(db.levels[li], t)
		}
	}
	// Replay the WAL tail into the memtable.
	buf := wal.Bytes()
	off := uint64(0)
	for off+6 <= walValid {
		kl := int(binary.LittleEndian.Uint16(buf[off : off+2]))
		raw := binary.LittleEndian.Uint32(buf[off+2 : off+6])
		tomb := raw&tombBit != 0
		vl := int(raw &^ uint32(tombBit))
		if off+uint64(6+kl+vl) > walValid {
			break // torn tail record: discarded, like a failed checksum
		}
		key := string(buf[off+6 : off+6+uint64(kl)])
		val := append([]byte(nil), buf[off+6+uint64(kl):off+6+uint64(kl+vl)]...)
		db.memtable[key] = entry{val: val, tombstone: tomb}
		db.memBytes += 6 + kl + vl
		db.walReplays++
		off += uint64(6 + kl + vl)
	}
	db.walOff = off
	return db, nil
}

// WAL exposes the log region and its valid length (for Recover).
func (db *DB) WAL() (*memspace.Region, uint64) { return db.wal, db.walOff }

// Runs exposes the current run regions per level (the manifest a real
// system would persist).
func (db *DB) Runs() [][]*memspace.Region {
	out := make([][]*memspace.Region, len(db.levels))
	for li, level := range db.levels {
		for _, t := range level {
			out[li] = append(out[li], t.region)
		}
	}
	return out
}

// Range iterates the live keys in sorted order (merging all levels and
// the memtable), calling fn until it returns false.
func (db *DB) Range(fn func(key string, val []byte) bool) {
	merged := make(map[string]entry)
	for li := len(db.levels) - 1; li >= 0; li-- {
		for _, run := range db.levels[li] {
			run.scanInto(merged)
		}
	}
	for k, e := range db.memtable {
		merged[k] = e
	}
	keys := make([]string, 0, len(merged))
	for k, e := range merged {
		if !e.tombstone {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn(k, merged[k].val) {
			return
		}
	}
}
