package lsm

import (
	"encoding/binary"

	"rambda/internal/kvs"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// This file holds the storage-engine micro kernels cmd/rambda-bench
// times: the point-read hot path across the memtable and sstable tiers,
// and the merged-iterator range scan. Both run on a prebuilt tree with
// several flushed runs, so the measured work is the real multi-level
// probe/merge, not memtable-only shortcuts.

// benchKeys is the key universe of the kernel tree; enough to force
// multiple flushes and one compaction cascade under benchLSMConfig.
const benchKeys = 4096

// benchLSMConfig keeps sstables small so the prebuilt tree has both L0
// runs and deeper levels.
func benchLSMConfig() Config {
	return Config{
		MemtableBytes: 16 << 10,
		L0Runs:        4,
		SSTableBytes:  256 << 10,
		WALBytes:      64 << 10,
		MaxLevels:     4,
	}
}

// benchDB builds the shared kernel tree: benchKeys keys loaded twice
// (so deeper runs hold stale versions the probe must skip) with all
// background work drained.
func benchDB() *DB {
	space := memspace.New()
	mem := &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM("bench:dram", 6, 120e9, 90*sim.Nanosecond),
		NVM:   memdev.NewNVM("bench:nvm", 6, 39e9, 300*sim.Nanosecond, 3),
		LLC:   memdev.NewLLC("bench:llc", 300e9, 20*sim.Nanosecond),
	}
	db := Open(space, mem, benchLSMConfig())
	val := make([]byte, 46)
	var key []byte
	var trace []kvs.Access
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < benchKeys; i++ {
			key = appendBenchKey(key[:0], i)
			binary.LittleEndian.PutUint64(val, uint64(pass<<32|i))
			t, err := db.PutInto(trace[:0], key, val)
			if err != nil {
				panic(err)
			}
			trace = t
		}
	}
	db.Maintain(0)
	return db
}

// ReadBench is the reusable state of the LSMReadHotPath kernel. Step is
// the measured unit: format a key, probe the memtable versions and
// every run tier, and append the access trace — the exact storage work
// of one served GET.
type ReadBench struct {
	db    *DB
	key   []byte
	dst   []byte
	trace []kvs.Access
}

// NewReadBench builds the benchmark state.
func NewReadBench() *ReadBench { return &ReadBench{db: benchDB()} }

// Step runs one point read.
func (b *ReadBench) Step(i int) uint64 {
	b.key = appendBenchKey(b.key[:0], i%benchKeys)
	dst, trace, ok := b.db.GetInto(b.dst[:0], b.trace[:0], b.key)
	b.dst, b.trace = dst, trace
	if !ok {
		panic("lsm bench: preloaded key missing")
	}
	return uint64(len(dst)) + uint64(len(trace))
}

// BenchReadHotPath runs the point-read hot path n times and returns a
// checksum so the work cannot be optimized away.
func BenchReadHotPath(n int) uint64 {
	b := NewReadBench()
	var sink uint64
	for i := 0; i < n; i++ {
		sink += b.Step(i)
	}
	return sink
}

// scanBenchLimit is the pair budget per kernel scan, matching the ycsb
// experiment's scan length.
const scanBenchLimit = 16

// ScanBench is the reusable state of the ScanMerge kernel. Step runs
// one merged-iterator range scan (memtable + every run, newest version
// wins) from a rotating start key.
type ScanBench struct {
	db    *DB
	key   []byte
	buf   []byte
	pairs []kvs.ScanPair
	trace []kvs.Access
}

// NewScanBench builds the benchmark state.
func NewScanBench() *ScanBench { return &ScanBench{db: benchDB()} }

// Step runs one limit-16 forward scan.
func (b *ScanBench) Step(i int) uint64 {
	b.key = appendBenchKey(b.key[:0], i%benchKeys)
	buf, pairs, trace := b.db.ScanInto(b.buf[:0], b.pairs[:0], b.trace[:0],
		b.key, scanBenchLimit, i%8 == 0)
	b.buf, b.pairs, b.trace = buf, pairs, trace
	return uint64(len(pairs)) + uint64(len(buf))
}

// BenchScanMerge runs the merged range scan n times and returns a
// checksum so the work cannot be optimized away.
func BenchScanMerge(n int) uint64 {
	b := NewScanBench()
	var sink uint64
	for i := 0; i < n; i++ {
		sink += b.Step(i)
	}
	return sink
}

// appendBenchKey appends the experiments' key format ("user" + 14-digit
// zero-padded decimal) onto dst without allocating.
func appendBenchKey(dst []byte, i int) []byte {
	dst = append(dst, "user"...)
	var digits [14]byte
	for p := len(digits) - 1; p >= 0; p-- {
		digits[p] = byte('0' + i%10)
		i /= 10
	}
	return append(dst, digits[:]...)
}
