package rpc

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary frames to the header parser. Whatever the
// fabric delivers — truncated, corrupted, duplicated fragments — Decode
// must either reject with an error or return a message that re-encodes
// to the bytes it claimed to parse.
func FuzzDecode(f *testing.F) {
	f.Add(MustEncode(Message{ReqID: 1, Method: 2, Status: 3, Payload: []byte("seed")}))
	f.Add(MustEncode(Message{ReqID: 0xFFFFFFFF, Method: 0xFF, Status: 0, Payload: nil}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xFF, 0xFF}) // header claims 64 KiB payload
	long := MustEncode(Message{ReqID: 9, Payload: bytes.Repeat([]byte{0xAB}, 300)})
	f.Add(long[:len(long)-7]) // truncated mid-payload
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		if len(m.Payload) > 0xFFFF {
			t.Fatalf("decoded payload %d exceeds the wire limit", len(m.Payload))
		}
		re, eerr := Encode(m)
		if eerr != nil {
			t.Fatalf("decoded message failed to re-encode: %v", eerr)
		}
		if !bytes.Equal(re, b[:HeaderBytes+len(m.Payload)]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, b[:HeaderBytes+len(m.Payload)])
		}
	})
}

// FuzzReader drives the field deserializer with arbitrary payloads and a
// fixed read script; it must never panic or read out of bounds, and
// post-error reads must be zero-valued.
func FuzzReader(f *testing.F) {
	w := &Writer{}
	w.U32(7).U64(1 << 40).String("seed").Blob([]byte{1, 2, 3})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := NewReader(b)
		r.U32()
		r.U64()
		_ = r.String()
		r.Blob()
		if r.Err() != nil {
			if r.Blob() != nil || r.U64() != 0 {
				t.Fatal("post-error reads must be zero-valued")
			}
		}
		if r.Remaining() < 0 {
			t.Fatal("reader overran the payload")
		}
	})
}
