package rpc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	m := Message{ReqID: 7, Method: 3, Status: 1, Payload: []byte("payload")}
	got, err := Decode(MustEncode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.ReqID != 7 || got.Method != 3 || got.Status != 1 || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header accepted")
	}
	full := MustEncode(Message{ReqID: 1, Payload: []byte("abcdef")})
	if _, err := Decode(full[:HeaderBytes+2]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestEncodeRejectsHugePayload(t *testing.T) {
	if _, err := Encode(Message{Payload: make([]byte, 1<<17)}); err == nil {
		t.Fatal("oversized payload must return an error")
	}
	// The boundary itself is fine.
	if _, err := Encode(Message{Payload: make([]byte, 0xFFFF)}); err != nil {
		t.Fatalf("64 KiB-1 payload rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustEncode must panic where Encode errors")
		}
	}()
	MustEncode(Message{Payload: make([]byte, 1<<17)})
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(id uint32, method, status uint8, payload []byte) bool {
		if len(payload) > 0xFFFF {
			payload = payload[:0xFFFF]
		}
		m := Message{ReqID: id, Method: method, Status: status, Payload: payload}
		got, err := Decode(MustEncode(m))
		return err == nil && got.ReqID == id && got.Method == method &&
			got.Status == status && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldSerializerRoundTrip(t *testing.T) {
	w := &Writer{}
	w.U32(42).U64(1 << 40).String("hello").Blob([]byte{1, 2, 3})
	r := NewReader(w.Bytes())
	if r.U32() != 42 || r.U64() != 1<<40 || r.String() != "hello" {
		t.Fatal("fields")
	}
	if !bytes.Equal(r.Blob(), []byte{1, 2, 3}) {
		t.Fatal("blob")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestReaderOverrunSetsError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if r.U32() != 0 || r.Err() == nil {
		t.Fatal("overrun must error")
	}
	// Subsequent reads stay safe.
	if r.U64() != 0 || r.Blob() != nil || r.String() != "" {
		t.Fatal("post-error reads must be zero-valued")
	}
}

func TestDeserializeCyclesMonotone(t *testing.T) {
	if DeserializeCycles(0) <= 0 {
		t.Fatal("header parse must cost cycles")
	}
	if DeserializeCycles(1024) <= DeserializeCycles(64) {
		t.Fatal("larger payloads must cost more")
	}
}

func TestFieldsCorruptionDetected(t *testing.T) {
	w := &Writer{}
	w.String("abc")
	raw := w.Bytes()
	raw[0] = 0xFF // corrupt the length prefix upward
	raw[1] = 0xFF
	r := NewReader(raw)
	if r.Blob() != nil || r.Err() == nil {
		t.Fatal("oversized length prefix must be rejected")
	}
}
