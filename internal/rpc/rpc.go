// Package rpc implements the HERD-style RPC protocol the prototype
// adopts (paper Sec. V: "We adopt HERD's RPC protocol for its
// simplicity, but any advanced RPC stack could be applied") and the
// optional APU (de)serializer of Sec. III-C: a compact fixed header
// carrying request identity and method, a field-oriented serializer for
// structured payloads, and a cycle-cost model so the accelerator can
// charge (de)serialization work.
//
// # Encoding forms and buffer ownership
//
// [AppendEncode] is the PRIMARY framing API: it appends the frame onto
// a caller-owned buffer and returns the grown slice, so a worker that
// re-slices the returned buffer to [:0] between calls encodes with zero
// steady-state allocations. The returned frame aliases that buffer and
// is valid only until its next reuse.
//
// [Encode] is the retention-safe convenience: it frames into a fresh
// buffer each call. Use it where the frame outlives the call site —
// e.g. Server.Handle responses, which the dedup table retains for
// replay.
package rpc

import (
	"encoding/binary"
	"fmt"
)

// HeaderBytes is the fixed RPC header: [4B request id][1B method]
// [1B status][2B payload length].
const HeaderBytes = 8

// Message is a parsed RPC message.
type Message struct {
	ReqID   uint32
	Method  uint8
	Status  uint8
	Payload []byte
}

// Encode frames a message into a fresh buffer. Payloads beyond the
// 16-bit length field are a caller error reported as an error, not a
// panic — a malformed request must degrade gracefully, not kill the
// server.
//
// Encode is deliberately NOT deprecated: it is the correct form when
// the frame is retained past the call (the dedup table keeps response
// frames for replay). Hot paths that reuse buffers should prefer
// AppendEncode.
func Encode(m Message) ([]byte, error) {
	buf, err := AppendEncode(make([]byte, 0, HeaderBytes+len(m.Payload)), m)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// AppendEncode frames a message onto dst and returns the extended
// slice; reusing the returned buffer (re-sliced to [:0]) makes
// steady-state encoding allocation-free. On error dst is returned
// unextended.
func AppendEncode(dst []byte, m Message) ([]byte, error) {
	if len(m.Payload) > 0xFFFF {
		return dst, fmt.Errorf("rpc: payload %d exceeds 64 KiB", len(m.Payload))
	}
	var hdr [HeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], m.ReqID)
	hdr[4] = m.Method
	hdr[5] = m.Status
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(len(m.Payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, m.Payload...), nil
}

// MustEncode frames a message whose payload the caller already bounded;
// it panics on oversize and exists for tests and compile-time-sized
// payloads.
func MustEncode(m Message) []byte {
	buf, err := Encode(m)
	if err != nil {
		panic(err)
	}
	return buf
}

// Decode parses a framed message. The returned payload aliases b.
func Decode(b []byte) (Message, error) {
	if len(b) < HeaderBytes {
		return Message{}, fmt.Errorf("rpc: short message (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[6:8]))
	if len(b) < HeaderBytes+n {
		return Message{}, fmt.Errorf("rpc: truncated payload: have %d, want %d", len(b)-HeaderBytes, n)
	}
	return Message{
		ReqID:   binary.LittleEndian.Uint32(b[0:4]),
		Method:  b[4],
		Status:  b[5],
		Payload: b[HeaderBytes : HeaderBytes+n],
	}, nil
}

// DeserializeCycles models the APU's (de)serializer cost: a fixed
// header-parse cost plus a per-16-byte streaming cost, matching a
// pipelined hardware deserializer.
func DeserializeCycles(payloadBytes int) int {
	return 4 + (payloadBytes+15)/16
}

// Writer serializes structured fields into a payload.
type Writer struct {
	buf []byte
}

// Bytes returns the serialized payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer for reuse, retaining the grown backing
// array so a per-worker Writer serializes without allocating.
func (w *Writer) Reset() *Writer {
	w.buf = w.buf[:0]
	return w
}

// U32 and U64 append fixed-width integers.
func (w *Writer) U32(v uint32) *Writer {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
	return w
}

// U64 appends a fixed-width 64-bit integer.
func (w *Writer) U64(v uint64) *Writer {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
	return w
}

// Blob appends a length-prefixed byte field.
func (w *Writer) Blob(b []byte) *Writer {
	if len(b) > 0xFFFF {
		panic("rpc: blob exceeds 64 KiB")
	}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(b)))
	w.buf = append(w.buf, l[:]...)
	w.buf = append(w.buf, b...)
	return w
}

// String appends a length-prefixed string field.
func (w *Writer) String(s string) *Writer { return w.Blob([]byte(s)) }

// Reader deserializes fields written by Writer, in order.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Reset points an existing Reader at a new payload, clearing its state
// — the reusable counterpart of NewReader.
func (r *Reader) Reset(b []byte) *Reader {
	r.buf, r.off, r.err = b, 0, nil
	return r
}

// Err returns the first decoding error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("rpc: field overruns payload at offset %d", r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U32 reads a fixed-width 32-bit integer.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width 64-bit integer.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Blob reads a length-prefixed byte field (aliasing the payload).
func (r *Reader) Blob() []byte {
	l := r.take(2)
	if l == nil {
		return nil
	}
	return r.take(int(binary.LittleEndian.Uint16(l)))
}

// String reads a length-prefixed string field.
func (r *Reader) String() string { return string(r.Blob()) }

// Remaining reports unread payload bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }
