package rpc

import (
	"errors"

	"rambda/internal/obs"
	"rambda/internal/sim"
)

// This file is the RPC reliability layer above the fabric: a client-side
// timeout/retry wrapper and a server-side idempotent-execution guard.
// Under fault injection a request (or its response) can vanish or arrive
// twice; the client retransmits with the SAME request id, and the server
// deduplicates by that id, answering replays from a bounded cache of
// encoded responses so the handler executes at most once per request.

// ErrTimeout reports that every attempt of a Call timed out or returned
// garbage.
var ErrTimeout = errors.New("rpc: request timed out after all retries")

// Transport is one request/response exchange attempt over the fabric.
// Implementations are simulation components (a QP pair, a chain head);
// ok=false means the attempt produced no response (lost request, lost
// response, crashed server) and `done` is when the transport gave up —
// the client still waits out its own timer before retrying.
type Transport interface {
	Exchange(now sim.Time, req []byte) (resp []byte, done sim.Time, ok bool)
}

// ClientConfig tunes the retry wrapper. Zero fields take defaults.
type ClientConfig struct {
	// Timeout is the per-attempt response timer.
	Timeout sim.Duration
	// MaxAttempts bounds total attempts (first try + retries).
	MaxAttempts int
	// Backoff is the extra wait added before retry k, scaled by 2^(k-1)
	// (exponential). Zero means retry right at the timeout.
	Backoff sim.Duration
}

const (
	defaultCallTimeout = 100 * sim.Microsecond
	defaultMaxAttempts = 4
	clientBackoffCap   = 6
)

// ClientStats counts the retry wrapper's work.
type ClientStats struct {
	Calls, Attempts, Retries int64
	// Garbled counts responses that arrived but failed to decode or
	// carried a stale request id.
	Garbled int64
	// Failures counts calls that exhausted every attempt.
	Failures int64
}

// Client wraps a transport with timeout/retry and monotonic request ids.
type Client struct {
	cfg   ClientConfig
	tr    Transport
	next  uint32
	stats ClientStats

	// reqBuf backs the framed request across a Call's attempts; reused
	// between Calls (transports copy the bytes into rings/staging before
	// Exchange returns, so nothing aliases it afterwards).
	reqBuf []byte

	// trace, when non-nil, records one envelope span per attempt (the
	// transport's own spans nest inside it). Nil is the fast path.
	trace *obs.Trace
}

// NewClient builds a retry client over the transport.
func NewClient(tr Transport, cfg ClientConfig) *Client {
	return &Client{cfg: cfg, tr: tr}
}

// Stats returns retry counters.
func (c *Client) Stats() ClientStats { return c.stats }

// SetTrace attaches a span recorder (nil detaches).
func (c *Client) SetTrace(tr *obs.Trace) { c.trace = tr }

// RegisterMetrics exposes the retry counters as gauges under prefix.
func (c *Client) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".calls", func() float64 { return float64(c.stats.Calls) })
	reg.Gauge(prefix+".retries", func() float64 { return float64(c.stats.Retries) })
	reg.Gauge(prefix+".garbled", func() float64 { return float64(c.stats.Garbled) })
	reg.Gauge(prefix+".failures", func() float64 { return float64(c.stats.Failures) })
}

func (c *Client) timeout() sim.Duration {
	if c.cfg.Timeout > 0 {
		return c.cfg.Timeout
	}
	return defaultCallTimeout
}

func (c *Client) maxAttempts() int {
	if c.cfg.MaxAttempts > 0 {
		return c.cfg.MaxAttempts
	}
	return defaultMaxAttempts
}

func (c *Client) backoff(attempt int) sim.Duration {
	if c.cfg.Backoff <= 0 || attempt <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > clientBackoffCap {
		shift = clientBackoffCap
	}
	return c.cfg.Backoff << uint(shift)
}

// Call issues one logical request: it frames the payload under a fresh
// request id, then retries the SAME framed bytes (same id, so the server
// can deduplicate) until a matching response arrives or the attempt
// budget runs out. It returns the decoded response and the virtual time
// the caller learned the outcome.
func (c *Client) Call(now sim.Time, method uint8, payload []byte) (Message, sim.Time, error) {
	c.next++
	id := c.next
	req, err := AppendEncode(c.reqBuf[:0], Message{ReqID: id, Method: method, Payload: payload})
	if err != nil {
		return Message{}, now, err
	}
	c.reqBuf = req
	c.stats.Calls++
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			c.stats.Retries++
		}
		c.stats.Attempts++
		var sp obs.SpanID
		if c.trace != nil {
			sp = c.trace.Push("rpc-attempt", obs.StageOther, now)
		}
		resp, done, ok := c.tr.Exchange(now, req)
		if ok {
			m, derr := Decode(resp)
			if derr == nil && m.ReqID == id {
				if c.trace != nil {
					c.trace.Pop(sp, done)
				}
				return m, done, nil
			}
			// A response arrived but it is not ours (corrupted frame or
			// a stale replay): retry as soon as we saw it.
			c.stats.Garbled++
			now = done + c.backoff(attempt+1)
			if c.trace != nil {
				c.trace.Pop(sp, now)
			}
			continue
		}
		// Nothing came back: the client's timer fires a full timeout
		// after the attempt started.
		now += sim.Time(c.timeout() + c.backoff(attempt+1))
		if c.trace != nil {
			c.trace.Pop(sp, now)
		}
	}
	c.stats.Failures++
	return Message{}, now, ErrTimeout
}

// Dedup is the server-side idempotency guard: a bounded FIFO cache of
// encoded responses keyed by request id. A retransmitted request hits
// the cache and is answered without re-executing the handler.
type Dedup struct {
	capacity int
	seen     map[uint32][]byte
	order    []uint32
}

// DefaultDedupCapacity bounds the response cache when the caller passes
// no capacity.
const DefaultDedupCapacity = 1024

// NewDedup builds the guard with the given capacity (<=0 takes the
// default).
func NewDedup(capacity int) *Dedup {
	if capacity <= 0 {
		capacity = DefaultDedupCapacity
	}
	return &Dedup{capacity: capacity, seen: make(map[uint32][]byte, capacity)}
}

// Lookup returns the cached response for a request id.
func (d *Dedup) Lookup(id uint32) ([]byte, bool) {
	resp, ok := d.seen[id]
	return resp, ok
}

// Store caches a response, evicting the oldest entry when full.
func (d *Dedup) Store(id uint32, resp []byte) {
	if _, dup := d.seen[id]; dup {
		return
	}
	if len(d.order) >= d.capacity {
		delete(d.seen, d.order[0])
		d.order = d.order[1:]
	}
	d.seen[id] = resp
	d.order = append(d.order, id)
}

// Len reports cached responses.
func (d *Dedup) Len() int { return len(d.seen) }

// Handler executes one decoded request and produces the response
// message (the server stamps the request id).
type Handler func(m Message) Message

// ServerStats counts the dedup wrapper's work.
type ServerStats struct {
	// Executed counts handler invocations; Duplicates counts replays
	// answered from the cache; Malformed counts undecodable requests.
	Executed, Duplicates, Malformed int64
}

// Server wraps an application handler with decode validation and
// request-id deduplication.
type Server struct {
	h     Handler
	dedup *Dedup
	stats ServerStats
}

// NewServer builds the wrapper; dedupCapacity <= 0 takes the default.
func NewServer(h Handler, dedupCapacity int) *Server {
	return &Server{h: h, dedup: NewDedup(dedupCapacity)}
}

// Stats returns server counters.
func (s *Server) Stats() ServerStats { return s.stats }

// Handle processes one framed request: malformed frames are rejected
// with an error (never a panic), replayed ids are answered from the
// cache, and fresh requests run the handler exactly once.
func (s *Server) Handle(req []byte) ([]byte, error) {
	m, err := Decode(req)
	if err != nil {
		s.stats.Malformed++
		return nil, err
	}
	if resp, hit := s.dedup.Lookup(m.ReqID); hit {
		s.stats.Duplicates++
		return resp, nil
	}
	out := s.h(m)
	out.ReqID = m.ReqID
	// Fresh buffer on purpose: the dedup table retains this frame for
	// replay, so it must not alias a reused scratch buffer.
	buf, err := Encode(out)
	if err != nil {
		return nil, err
	}
	s.stats.Executed++
	s.dedup.Store(m.ReqID, buf)
	return buf, nil
}
