package rpc

import (
	"bytes"
	"errors"
	"testing"

	"rambda/internal/sim"
)

// scriptedTransport drives the retry wrapper: each entry describes one
// attempt's fate. A nil server means the attempt is lost; otherwise the
// request is delivered to the server (possibly `deliveries` times, to
// model duplication) and the response optionally dropped on the way
// back.
type scriptedTransport struct {
	server       *Server
	loseRequest  []bool // per attempt; missing entries deliver
	loseResponse []bool
	deliveries   int // copies of each delivered request (>=1)
	attempts     int
	rtt          sim.Duration
}

func (s *scriptedTransport) Exchange(now sim.Time, req []byte) ([]byte, sim.Time, bool) {
	i := s.attempts
	s.attempts++
	done := now + sim.Time(s.rtt)
	if i < len(s.loseRequest) && s.loseRequest[i] {
		return nil, done, false
	}
	n := s.deliveries
	if n < 1 {
		n = 1
	}
	var resp []byte
	var err error
	for c := 0; c < n; c++ {
		resp, err = s.server.Handle(req)
	}
	if err != nil {
		return nil, done, false
	}
	if i < len(s.loseResponse) && s.loseResponse[i] {
		return nil, done, false
	}
	return resp, done, true
}

func echoServer(executed *int) *Server {
	return NewServer(func(m Message) Message {
		*executed++
		return Message{Method: m.Method, Payload: m.Payload}
	}, 0)
}

func TestClientRetriesUntilSuccess(t *testing.T) {
	var executed int
	tr := &scriptedTransport{
		server:      echoServer(&executed),
		loseRequest: []bool{true, true, false},
		rtt:         5 * sim.Microsecond,
	}
	c := NewClient(tr, ClientConfig{Timeout: 50 * sim.Microsecond, MaxAttempts: 4})
	m, done, err := c.Call(0, 3, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Payload, []byte("hello")) || m.Method != 3 {
		t.Fatalf("response %+v", m)
	}
	// Two timeouts elapsed before the successful attempt.
	if done < 100*sim.Microsecond {
		t.Fatalf("done=%v, must include two 50us timeouts", done)
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Failures != 0 {
		t.Fatalf("stats=%+v", st)
	}
	if executed != 1 {
		t.Fatalf("handler executed %d times", executed)
	}
}

func TestClientExhaustsAndFails(t *testing.T) {
	var executed int
	tr := &scriptedTransport{
		server:      echoServer(&executed),
		loseRequest: []bool{true, true, true},
		rtt:         sim.Microsecond,
	}
	c := NewClient(tr, ClientConfig{Timeout: 10 * sim.Microsecond, MaxAttempts: 3,
		Backoff: 5 * sim.Microsecond})
	_, done, err := c.Call(0, 1, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err=%v, want ErrTimeout", err)
	}
	// 3 attempts x 10us timeout + backoff 5+10+20.
	if want := sim.Time(65 * sim.Microsecond); done != want {
		t.Fatalf("done=%v, want %v (timeouts plus exponential backoff)", done, want)
	}
	if st := c.Stats(); st.Failures != 1 || st.Attempts != 3 {
		t.Fatalf("stats=%+v", st)
	}
	if executed != 0 {
		t.Fatal("handler must not run when every request is lost")
	}
}

func TestLostResponseDoesNotReexecute(t *testing.T) {
	// The request lands but the response vanishes: the retry carries the
	// same request id, the server answers from the dedup cache, and the
	// handler runs exactly once.
	var executed int
	tr := &scriptedTransport{
		server:       echoServer(&executed),
		loseResponse: []bool{true, false},
		rtt:          sim.Microsecond,
	}
	c := NewClient(tr, ClientConfig{Timeout: 20 * sim.Microsecond, MaxAttempts: 4})
	m, _, err := c.Call(0, 2, []byte("once"))
	if err != nil || !bytes.Equal(m.Payload, []byte("once")) {
		t.Fatalf("m=%+v err=%v", m, err)
	}
	if executed != 1 {
		t.Fatalf("handler executed %d times, want 1 (idempotent replay)", executed)
	}
	st := tr.server.Stats()
	if st.Executed != 1 || st.Duplicates != 1 {
		t.Fatalf("server stats=%+v", st)
	}
}

func TestDuplicatedDeliveryDedups(t *testing.T) {
	// The fabric duplicates the request in flight: both copies reach the
	// server, one executes, the other hits the cache with an identical
	// response.
	var executed int
	srv := echoServer(&executed)
	tr := &scriptedTransport{server: srv, deliveries: 2, rtt: sim.Microsecond}
	c := NewClient(tr, ClientConfig{})
	if _, _, err := c.Call(0, 1, []byte("dup")); err != nil {
		t.Fatal(err)
	}
	if executed != 1 {
		t.Fatalf("handler executed %d times under duplication", executed)
	}
	if st := srv.Stats(); st.Duplicates != 1 {
		t.Fatalf("server stats=%+v", st)
	}
}

func TestDedupCacheBoundedFIFO(t *testing.T) {
	d := NewDedup(3)
	for id := uint32(1); id <= 5; id++ {
		d.Store(id, []byte{byte(id)})
	}
	if d.Len() != 3 {
		t.Fatalf("len=%d, want capacity 3", d.Len())
	}
	if _, ok := d.Lookup(1); ok {
		t.Fatal("oldest entry must be evicted")
	}
	if resp, ok := d.Lookup(5); !ok || resp[0] != 5 {
		t.Fatal("newest entry missing")
	}
	// Re-storing an existing id must not duplicate the FIFO slot.
	d.Store(5, []byte{99})
	if resp, _ := d.Lookup(5); resp[0] != 5 {
		t.Fatal("re-store must keep the first response (idempotency)")
	}
}

func TestServerRejectsMalformedWithoutPanic(t *testing.T) {
	var executed int
	srv := echoServer(&executed)
	if _, err := srv.Handle([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	if srv.Stats().Malformed != 1 || executed != 0 {
		t.Fatalf("stats=%+v executed=%d", srv.Stats(), executed)
	}
}

func TestClientDistinctCallsGetDistinctIDs(t *testing.T) {
	var executed int
	tr := &scriptedTransport{server: echoServer(&executed), rtt: sim.Microsecond}
	c := NewClient(tr, ClientConfig{})
	now := sim.Time(0)
	for i := 0; i < 5; i++ {
		_, done, err := c.Call(now, 1, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if executed != 5 {
		t.Fatalf("executed=%d, want 5 — fresh calls must not dedup against each other", executed)
	}
}

func TestClientOversizedPayloadSurfacesError(t *testing.T) {
	tr := &scriptedTransport{server: echoServer(new(int))}
	c := NewClient(tr, ClientConfig{})
	if _, _, err := c.Call(0, 1, make([]byte, 1<<17)); err == nil {
		t.Fatal("oversized payload must fail the call, not panic")
	}
	if tr.attempts != 0 {
		t.Fatal("oversized payload must never reach the wire")
	}
}
