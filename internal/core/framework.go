package core

import (
	"fmt"

	"rambda/internal/accel"
	"rambda/internal/coherence"
	"rambda/internal/cpoll"
	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/ringbuf"
	"rambda/internal/rnic"
	"rambda/internal/sim"
)

// App is the application processing unit plug-in (paper Sec. III-C:
// "the APU is the only application-specific part in the entire RAMBDA
// architecture"). Handle processes one request at virtual time `now`
// using ctx for coherent data access and compute, returning the
// response payload and the time processing finished.
type App interface {
	Handle(ctx *AppCtx, now sim.Time, req []byte) ([]byte, sim.Time)
}

// AppFunc adapts a function to the App interface.
type AppFunc func(ctx *AppCtx, now sim.Time, req []byte) ([]byte, sim.Time)

// Handle implements App.
func (f AppFunc) Handle(ctx *AppCtx, now sim.Time, req []byte) ([]byte, sim.Time) {
	return f(ctx, now, req)
}

// AppCtx gives the APU its standard interfaces: cpoll reception is
// handled by the framework; data read/write and compute are charged to
// the accelerator's datapath.
type AppCtx struct {
	M *Machine
	A *accel.Accel

	// tr, when the server has a collector attached, records the APU's
	// data accesses as StageMemory spans and its cycles as
	// StageCompute spans; nil is the uninstrumented fast path.
	tr *obs.Trace
}

// Read charges an APU data read.
func (c *AppCtx) Read(now sim.Time, addr memspace.Addr, bytes int) sim.Time {
	t := c.A.ReadData(now, addr, bytes)
	if c.tr != nil {
		c.tr.Span("app-read", obs.StageMemory, now, t)
	}
	return t
}

// Write charges an APU data write (functional).
func (c *AppCtx) Write(now sim.Time, addr memspace.Addr, data []byte) sim.Time {
	t := c.A.WriteData(now, addr, data)
	if c.tr != nil {
		c.tr.Span("app-write", obs.StageMemory, now, t)
	}
	return t
}

// Compute charges APU cycles.
func (c *AppCtx) Compute(now sim.Time, cycles int) sim.Time {
	t := c.A.Compute(now, cycles)
	if c.tr != nil {
		c.tr.Span("app-compute", obs.StageCompute, now, t)
	}
	return t
}

// InvokeCPU passes work to the server CPU over the intra-machine ring
// pair and back (paper Sec. III-C's CPU-invocation scenarios; the DLRM
// preprocessing path). It charges both ring crossings and the CPU-side
// cycles.
func (c *AppCtx) InvokeCPU(now sim.Time, bytes int, cpuCycles int) sim.Time {
	t := c.invokeCPU(now, bytes, cpuCycles)
	if c.tr != nil {
		c.tr.Span("cpu-invoke", obs.StageCompute, now, t)
	}
	return t
}

func (c *AppCtx) invokeCPU(now sim.Time, bytes int, cpuCycles int) sim.Time {
	// Accelerator -> CPU: coherent store into the CPU-visible ring.
	at := c.A.Link().Transfer(now, bytes)
	at = c.M.Mem.LLC.Access(at, bytes)
	// CPU processes.
	_, at = c.M.CPU.Cores().Acquire(at, cpuCycles)
	// CPU -> accelerator: store visible over the cc-link.
	at = c.M.Mem.LLC.Access(at, bytes)
	return c.A.Link().Transfer(at, bytes)
}

// NotifyMode selects how the accelerator learns of new requests.
type NotifyMode int

const (
	// NotifyCpoll is RAMBDA's coherence-assisted notification.
	NotifyCpoll NotifyMode = iota
	// NotifyPolling is the conventional spin-polling ablation
	// ("RAMBDA-polling").
	NotifyPolling
)

// ServerOptions sizes a RAMBDA server.
type ServerOptions struct {
	// Connections is the number of client rings to allocate.
	Connections int
	// RingEntries and EntryBytes define each request ring (1024 x 1 KB
	// in the prototype; tests use smaller rings).
	RingEntries int
	EntryBytes  int
	// Mode selects direct-pinned vs pointer-buffer cpoll regions.
	Mode cpoll.Mode
	// Notify selects cpoll vs spin-polling.
	Notify NotifyMode
	// PollInterval is the spin-polling period (30 fabric cycles in the
	// paper's experiment).
	PollInterval sim.Duration
	// PollFetchesPerRequest is the calibrated per-request cc-link tax
	// of spin polling at load (own-ring read plus the amortized share
	// of empty sweeps; see DESIGN.md calibration notes).
	PollFetchesPerRequest int
	// ResponseBatch amortizes the SQ handler's doorbell MMIO.
	ResponseBatch int
	// RingKind places the request rings (DRAM normally; NVM for the
	// transaction system where the rings double as the redo log, which
	// is what makes adaptive DDIO matter — paper Sec. IV-B, VI-A).
	RingKind memspace.Kind

	// Trace, when non-nil, attaches the observability collector: every
	// layer the request crosses (NIC, wire, ring, notification,
	// compute, memory) records virtual-time spans into it. Nil — the
	// default — is the fast path: figures are byte-identical to an
	// uninstrumented build and the request path stays allocation-free.
	Trace *obs.Trace
	// Metrics, when non-nil, receives the server's counter/gauge
	// series (ring depth, cpoll signal drops, QP retransmits, arena
	// occupancy) and is ticked on virtual time as requests complete.
	Metrics *obs.Registry
}

// DefaultServerOptions mirrors the prototype configuration.
func DefaultServerOptions() ServerOptions {
	return ServerOptions{
		Connections:           16,
		RingEntries:           64,
		EntryBytes:            128,
		Mode:                  cpoll.PointerBuffer,
		Notify:                NotifyCpoll,
		PollInterval:          75 * sim.Nanosecond, // 30 cycles at 400 MHz
		PollFetchesPerRequest: 2,
		ResponseBatch:         1,
	}
}

// Server is a RAMBDA server: rings + cpoll + accelerator + SQ handlers.
type Server struct {
	M    *Machine
	App  App
	Opts ServerOptions

	rings   []*ringbuf.Ring
	conns   []*ringbuf.ServerConn
	checker *cpoll.Checker
	poller  *cpoll.SpinPoller
	ptrBuf  *ringbuf.PointerBuffer
	ctx     *AppCtx

	served        int64
	lastBreakdown Breakdown
}

// NewServer allocates the server's communication state per paper
// Sec. III-E: request rings in a contiguous region, the cpoll region
// registered and pinned, and the rings' layouts ready to hand to
// clients.
func NewServer(m *Machine, app App, opts ServerOptions) *Server {
	if m.Accel == nil {
		panic("core: RAMBDA server requires an accelerator")
	}
	if opts.Connections <= 0 || opts.RingEntries <= 0 || opts.EntryBytes <= 0 {
		panic("core: bad server options")
	}
	ringBytes := uint64(opts.RingEntries * opts.EntryBytes)
	all := m.Space.Alloc(m.Name+":req-rings", ringBytes*uint64(opts.Connections), opts.RingKind)
	s := &Server{M: m, App: app, Opts: opts, ctx: &AppCtx{M: m, A: m.Accel, tr: opts.Trace}}
	for i := 0; i < opts.Connections; i++ {
		r := memspace.Range{Base: all.Base + memspace.Addr(uint64(i)*ringBytes), Size: ringBytes}
		s.rings = append(s.rings, ringbuf.NewRing(m.Space, ringbuf.NewLayout(r, opts.RingEntries)))
	}

	switch opts.Notify {
	case NotifyPolling:
		s.poller = cpoll.NewSpinPoller(s.rings, opts.PollInterval)
	default:
		switch opts.Mode {
		case cpoll.Direct:
			m.Accel.Pin(all.Range)
			s.checker = cpoll.NewDirect(m.Coh, coherence.AgentAccel, s.rings, m.Accel.Config().LocalCacheBytes)
		default:
			preg := m.Space.Alloc(m.Name+":ptr-buf", uint64(opts.Connections*ringbuf.PtrEntryBytes), memspace.KindDRAM)
			s.ptrBuf = ringbuf.NewPointerBuffer(m.Space, preg.Range, opts.Connections)
			m.Accel.Pin(preg.Range)
			s.checker = cpoll.NewPointer(m.Coh, coherence.AgentAccel, s.ptrBuf, s.rings)
		}
	}
	s.conns = make([]*ringbuf.ServerConn, opts.Connections)

	if opts.Trace != nil {
		if s.checker != nil {
			s.checker.SetTrace(opts.Trace)
		}
		m.NIC.SetObs(opts.Trace)
	}
	if opts.Metrics != nil {
		if s.checker != nil {
			s.checker.RegisterMetrics(opts.Metrics, "cpoll")
		}
		m.NIC.RegisterMetrics(opts.Metrics, "nic.server")
		opts.Metrics.Gauge("server.served", func() float64 { return float64(s.served) })
	}
	return s
}

// Served reports completed requests.
func (s *Server) Served() int64 { return s.served }

// Checker exposes cpoll statistics (nil under polling).
func (s *Server) Checker() *cpoll.Checker { return s.checker }

// Ring returns connection idx's request ring.
func (s *Server) Ring(idx int) *ringbuf.Ring { return s.rings[idx] }

// PtrAddr returns the pointer-buffer slot address for a connection (0
// in direct/polling modes).
func (s *Server) PtrAddr(idx int) memspace.Addr {
	if s.ptrBuf == nil {
		return 0
	}
	return s.ptrBuf.Addr(idx)
}

// bindConn installs the response transport for a connection.
func (s *Server) bindConn(idx int, respLayout ringbuf.Layout, t ringbuf.Transport) {
	sc := ringbuf.NewServerConn(s.rings[idx], respLayout, t)
	if s.Opts.Trace != nil {
		sc.SetTrace(s.Opts.Trace)
	}
	s.conns[idx] = sc
}

// Serve walks one request on connection idx that became visible in
// server memory at `arrive`, through notification, the APU, and the
// response path. It returns the response payload and the time it is
// visible at the client.
func (s *Server) Serve(arrive sim.Time, idx int) ([]byte, sim.Time) {
	a := s.M.Accel
	var t sim.Time

	switch s.Opts.Notify {
	case NotifyPolling:
		// Discovery waits for the next sweep; each request pays the
		// calibrated share of polling fetch traffic on the cc-link.
		t = arrive + s.Opts.PollInterval/2
		ringHead := s.rings[idx].EntryAddr(0)
		for i := 0; i < s.Opts.PollFetchesPerRequest; i++ {
			t = a.Fetch(t, ringHead, coherence.LineSize)
		}
		s.poller.Advance(idx, 1)
		if s.Opts.Trace != nil {
			s.Opts.Trace.Span("poll-discover", obs.StageNotify, arrive, t)
		}
	default:
		// The invalidation reaches the accelerator over the cc-link;
		// the scheduler pops dirty rings FIFO and harvests.
		t = arrive + UPIHop
		if s.Opts.Trace != nil {
			s.Opts.Trace.Span("cpoll-signal", obs.StageNotify, arrive, t)
		}
		found := false
		for !found {
			di, ok := s.checker.NextDirty()
			if !ok {
				// Coalesced with an earlier signal that was already
				// harvested together with this entry's arrival; the
				// request is present in the ring regardless.
				break
			}
			var n int
			n, t = s.checker.Harvest(t, di, a.Fetch)
			found = di == idx && n > 0
		}
	}

	notified := t
	conn := s.conns[idx]
	payload, eidx, ok := conn.NextRequest()
	if !ok {
		panic(fmt.Sprintf("core: serve on connection %d with empty ring", idx))
	}
	// The APU fetches the request entry itself — the abstraction's
	// "fetch application data directly" property (Sec. III-A).
	entryAddr := s.rings[idx].EntryAddr(eidx)
	t = a.ReadData(t, entryAddr, ringbuf.HeaderBytes+len(payload))
	if s.Opts.Trace != nil {
		s.Opts.Trace.Span("entry-read", obs.StageRing, notified, t)
	}

	resp, t := s.App.Handle(s.ctx, t, payload)
	processed := t

	conn.Complete(eidx)
	s.M.Coh.Reacquire(coherence.AgentAccel, entryAddr, s.Opts.EntryBytes)
	done := conn.Respond(t, resp)
	s.served++
	s.lastBreakdown = Breakdown{
		Notify:  notified - arrive,
		Process: processed - notified,
		Respond: done - processed,
	}
	if s.Opts.Metrics != nil {
		s.Opts.Metrics.Tick(done)
	}
	return resp, done
}

// Client is a remote RAMBDA client: one connection (ring pair + QP) to
// a server.
type Client struct {
	M      *Machine
	Server *Server
	Idx    int

	conn *ringbuf.Conn
	qp   *rnic.QP
}

// ConnectClient establishes connection idx from machine cm to the
// server: QPs are paired, memory regions registered with their TPH
// attributes (DRAM rings with the hint, NVM without — adaptive DDIO),
// and the response ring allocated in client memory.
func ConnectClient(cm *Machine, s *Server, idx int) *Client {
	if idx < 0 || idx >= len(s.rings) {
		panic("core: connection index out of range")
	}
	// Client-side response ring + staging.
	respReg := cm.Space.Alloc(fmt.Sprintf("%s:resp-ring-%d", cm.Name, idx),
		uint64(s.Opts.RingEntries*s.Opts.EntryBytes), memspace.KindDRAM)
	respLayout := ringbuf.NewLayout(respReg.Range, s.Opts.RingEntries)
	staging := cm.Space.Alloc(fmt.Sprintf("%s:staging-%d", cm.Name, idx),
		uint64(s.Opts.EntryBytes+ringbuf.PtrEntryBytes), memspace.KindDRAM)

	// QP pair.
	cq, sq := cm.NIC.NewQP(), s.M.NIC.NewQP()
	rnic.ConnectQP(cq, sq)

	// Adaptive DDIO MR registration (server side, paper Sec. III-D
	// guideline 2): DRAM regions get the TPH hint, NVM regions do not,
	// so DMA into the (NVM-resident) transaction rings bypasses the
	// cache and avoids write amplification.
	ringTPH := s.M.Space.KindOf(s.rings[idx].Range.Base) == memspace.KindDRAM
	s.M.NIC.RegisterMR(s.rings[idx].Range, ringTPH)
	if s.ptrBuf != nil {
		s.M.NIC.RegisterMR(s.ptrBuf.Range(), true)
	}
	cm.NIC.RegisterMR(respReg.Range, true)

	// Client -> server transport.
	ct := ringbuf.NewRDMATransport(cq, cm.Space, staging)
	conn := ringbuf.NewConn(s.rings[idx].Layout, ringbuf.NewRing(cm.Space, respLayout), ct, s.PtrAddr(idx))

	// Observability wiring: the client NIC executes the requester-side
	// WQEs (its spans cover both DMA legs), and the connection wraps
	// deliveries in ring spans. Metrics get per-connection ring depth
	// and the client QP's reliability counters.
	if tr := s.Opts.Trace; tr != nil {
		cm.NIC.SetObs(tr)
		conn.SetTrace(tr)
	}
	if reg := s.Opts.Metrics; reg != nil {
		conn.RegisterMetrics(reg, fmt.Sprintf("conn.%d", idx))
		cq.RegisterMetrics(reg, fmt.Sprintf("qp.%d", idx))
		cm.NIC.RegisterMetrics(reg, "nic.client")
	}

	// Server -> client transport: the accelerator's SQ handler.
	srvStaging := s.M.Space.Alloc(fmt.Sprintf("%s:sq-staging-%d", s.M.Name, idx),
		uint64(4*s.Opts.EntryBytes), memspace.KindDRAM)
	handler := accel.NewSQHandler(s.M.Accel, sq, s.M.PCIeOut, srvStaging, s.Opts.ResponseBatch)
	s.bindConn(idx, respLayout, handler)

	return &Client{M: cm, Server: s, Idx: idx, conn: conn, qp: cq}
}

// CanSend reports whether the connection has a credit.
func (c *Client) CanSend() bool { return c.conn.CanSend() }

// Call sends a request at `now` and walks it end to end, returning the
// response and the time it became visible in client memory.
func (c *Client) Call(now sim.Time, payload []byte) ([]byte, sim.Time) {
	tr := c.Server.Opts.Trace
	var sp obs.SpanID
	if tr != nil {
		sp = tr.Push("request", obs.StageOther, now)
	}
	arrive := c.conn.Send(now, payload)
	resp, done := c.Server.Serve(arrive, c.Idx)
	got, ok := c.conn.PollResponse()
	if !ok {
		panic("core: response ring empty after serve")
	}
	_ = got
	if tr != nil {
		tr.Pop(sp, done)
	}
	return resp, done
}
