package core

import (
	"fmt"

	"rambda/internal/hostcpu"
	"rambda/internal/memspace"
	"rambda/internal/ringbuf"
	"rambda/internal/rnic"
	"rambda/internal/sim"
)

// CPUHandler is the request handler of the CPU baseline: it computes
// the response functionally and describes the core/memory work to
// charge (a HERD/MICA-style server thread).
type CPUHandler func(req []byte) (resp []byte, work hostcpu.Work)

// CPUServerOptions sizes the baseline server.
type CPUServerOptions struct {
	Connections int
	RingEntries int
	EntryBytes  int
	// Batch is the request batch size: it hides memory latency inside
	// request processing and amortizes the RPC/doorbell overheads
	// (Fig. 10's dominant CPU effect).
	Batch int
	// PollCycles is the per-request share of ring-polling work on the
	// core.
	PollCycles int
	// DispatchCycles is the per-request RPC dispatch/response-post
	// instruction path, amortized by Batch.
	DispatchCycles int
	// BatchWaitUnit is the average per-slot delay a request spends
	// waiting for its batch to fill before processing starts (RAMBDA
	// "does not need to wait for the batch size of arrived requests",
	// Fig. 10; the CPU and SmartNIC baselines do).
	BatchWaitUnit sim.Duration
	// JitterProb/JitterCycles model OS-scheduling and cache-contention
	// hiccups on server cores — the reason the paper's CPU tail latency
	// exceeds RAMBDA's ("more stable behavior than the CPU core, whose
	// performance is affected by factors like OS scheduling and CPU
	// resource contention", Sec. VI-B). A JitterProb fraction of
	// requests takes an extra JitterCycles on its core.
	JitterProb   float64
	JitterCycles int
	// JitterSeed makes the hiccup stream deterministic.
	JitterSeed uint64
}

// DefaultCPUServerOptions mirrors the evaluation configuration.
func DefaultCPUServerOptions() CPUServerOptions {
	return CPUServerOptions{
		Connections:    16,
		RingEntries:    64,
		EntryBytes:     128,
		Batch:          32,
		PollCycles:     60,
		DispatchCycles: 600,
		BatchWaitUnit:  0, // under load, queueing supplies the batch
	}
}

// CPUServer is the two-sided-RDMA CPU baseline: server cores poll the
// request rings, process requests in batches, and post responses
// through the NIC with batched doorbells.
type CPUServer struct {
	M       *Machine
	Handler CPUHandler
	Opts    CPUServerOptions

	rings  []*ringbuf.Ring
	conns  []*ringbuf.ServerConn
	jitter *sim.RNG

	served int64
}

// NewCPUServer allocates the baseline server's rings.
func NewCPUServer(m *Machine, h CPUHandler, opts CPUServerOptions) *CPUServer {
	if opts.Connections <= 0 || opts.RingEntries <= 0 || opts.EntryBytes <= 0 {
		panic("core: bad CPU server options")
	}
	if opts.Batch < 1 {
		opts.Batch = 1
	}
	ringBytes := uint64(opts.RingEntries * opts.EntryBytes)
	all := m.Space.Alloc(m.Name+":cpu-req-rings", ringBytes*uint64(opts.Connections), memspace.KindDRAM)
	s := &CPUServer{M: m, Handler: h, Opts: opts, jitter: sim.NewRNG(opts.JitterSeed + 0xC0DE)}
	for i := 0; i < opts.Connections; i++ {
		r := memspace.Range{Base: all.Base + memspace.Addr(uint64(i)*ringBytes), Size: ringBytes}
		s.rings = append(s.rings, ringbuf.NewRing(m.Space, ringbuf.NewLayout(r, opts.RingEntries)))
	}
	s.conns = make([]*ringbuf.ServerConn, opts.Connections)
	return s
}

// Served reports completed requests.
func (s *CPUServer) Served() int64 { return s.served }

// Ring returns connection idx's request ring.
func (s *CPUServer) Ring(idx int) *ringbuf.Ring { return s.rings[idx] }

// cpuResponder posts responses through the server NIC from a CPU core,
// amortizing the doorbell MMIO over the batch size.
type cpuResponder struct {
	s       *CPUServer
	qp      *rnic.QP
	staging *memspace.Region
	posted  int64
}

// Deliver implements ringbuf.Transport.
func (r *cpuResponder) Deliver(now sim.Time, entryAddr memspace.Addr, entry []byte,
	ptrAddr memspace.Addr, ptrVal uint32) sim.Time {
	if ptrAddr != 0 {
		panic("core: CPU responses do not update pointer buffers")
	}
	if len(entry) > int(r.staging.Size) {
		panic("core: response exceeds staging")
	}
	r.s.M.Space.Write(r.staging.Base, entry)
	// Store to the send buffer (LLC) before the NIC DMA-reads it.
	at := r.s.M.Mem.LLC.Access(now, len(entry))
	r.qp.PostSend(rnic.WQE{Op: rnic.OpWrite, LocalAddr: r.staging.Base, RemoteAddr: entryAddr, Len: len(entry)})
	r.posted++
	if r.posted%int64(r.s.Opts.Batch) == 0 {
		at = r.s.M.PCIeOut.MMIOWrite(at)
	}
	results := r.qp.ExecutePosted(at)
	return results[len(results)-1].RemoteVisible
}

// CPUClient is a remote client of the CPU baseline.
type CPUClient struct {
	M      *Machine
	Server *CPUServer
	Idx    int
	conn   *ringbuf.Conn
	qp     *rnic.QP
}

// ConnectCPUClient establishes connection idx from cm to the baseline
// server.
func ConnectCPUClient(cm *Machine, s *CPUServer, idx int) *CPUClient {
	if idx < 0 || idx >= len(s.rings) {
		panic("core: connection index out of range")
	}
	respReg := cm.Space.Alloc(fmt.Sprintf("%s:cpu-resp-%d", cm.Name, idx),
		uint64(s.Opts.RingEntries*s.Opts.EntryBytes), memspace.KindDRAM)
	respLayout := ringbuf.NewLayout(respReg.Range, s.Opts.RingEntries)
	staging := cm.Space.Alloc(fmt.Sprintf("%s:cpu-staging-%d", cm.Name, idx),
		uint64(s.Opts.EntryBytes+ringbuf.PtrEntryBytes), memspace.KindDRAM)

	cq, sq := cm.NIC.NewQP(), s.M.NIC.NewQP()
	rnic.ConnectQP(cq, sq)
	s.M.NIC.RegisterMR(s.rings[idx].Range, true)
	cm.NIC.RegisterMR(respReg.Range, true)

	// Two-sided semantics: the client needs completion notifications,
	// so its requests are signaled (CQE + wire ACK), one of the
	// overheads RAMBDA's unsignaled one-sided writes avoid.
	tr := ringbuf.NewRDMATransport(cq, cm.Space, staging)
	tr.Signaled = true
	conn := ringbuf.NewConn(s.rings[idx].Layout, ringbuf.NewRing(cm.Space, respLayout), tr, 0)

	srvStaging := s.M.Space.Alloc(fmt.Sprintf("%s:cpu-sq-staging-%d", s.M.Name, idx),
		uint64(s.Opts.EntryBytes), memspace.KindDRAM)
	s.conns[idx] = ringbuf.NewServerConn(s.rings[idx], respLayout, &cpuResponder{s: s, qp: sq, staging: srvStaging})
	return &CPUClient{M: cm, Server: s, Idx: idx, conn: conn, qp: cq}
}

// CanSend reports flow-control credit.
func (c *CPUClient) CanSend() bool { return c.conn.CanSend() }

// Serve walks one request through a server core.
func (s *CPUServer) Serve(arrive sim.Time, idx int) ([]byte, sim.Time) {
	conn := s.conns[idx]
	payload, eidx, ok := conn.NextRequest()
	if !ok {
		panic(fmt.Sprintf("core: CPU serve on empty ring %d", idx))
	}
	resp, work := s.Handler(payload)
	// Wait for the batch to fill, then pay the polling + dispatch
	// instruction path (amortized by batching) plus the
	// handler-declared work with the batch's latency hiding.
	t := arrive + sim.Duration(s.Opts.Batch-1)*s.Opts.BatchWaitUnit
	work.Cycles += s.Opts.PollCycles + s.Opts.DispatchCycles/s.Opts.Batch
	if s.Opts.JitterProb > 0 && s.jitter.Float64() < s.Opts.JitterProb {
		work.Cycles += s.Opts.JitterCycles
	}
	if work.Batch == 0 {
		work.Batch = s.Opts.Batch
	}
	t = s.M.CPU.Process(t, work)
	conn.Complete(eidx)
	done := conn.Respond(t, resp)
	s.served++
	return resp, done
}

// Call sends one request end to end.
func (c *CPUClient) Call(now sim.Time, payload []byte) ([]byte, sim.Time) {
	arrive := c.conn.Send(now, payload)
	resp, done := c.Server.Serve(arrive, c.Idx)
	if _, ok := c.conn.PollResponse(); !ok {
		panic("core: CPU response missing")
	}
	c.qp.CQ().Discard(4) // drain request completions
	return resp, done
}

// ConnSend exposes the raw request-send step (for experiment
// diagnostics that need per-stage timing).
func (c *CPUClient) ConnSend(now sim.Time, payload []byte) sim.Time {
	return c.conn.Send(now, payload)
}

// ConnPoll consumes the pending response and drains completions.
func (c *CPUClient) ConnPoll() {
	if _, ok := c.conn.PollResponse(); !ok {
		panic("core: CPU response missing")
	}
	c.qp.CQ().Discard(4)
}
