package core

import (
	"fmt"

	"rambda/internal/sim"
)

// Breakdown decomposes one request's end-to-end latency into the
// framework's pipeline stages — the decomposition the paper's latency
// discussions reason about (network vs notification vs UPI data access
// vs response path).
type Breakdown struct {
	// Send is client issue -> request visible in server memory (client
	// doorbell, wire, DMA landing).
	Send sim.Duration
	// Notify is arrival -> the accelerator holding the request (cpoll
	// signal delivery + harvest, or the polling interval).
	Notify sim.Duration
	// Process is the APU's handling time (entry fetch, data accesses,
	// compute).
	Process sim.Duration
	// Respond is APU completion -> response visible in client memory
	// (SQ handler, doorbell, wire, DMA landing).
	Respond sim.Duration
}

// Total sums the stages.
func (b Breakdown) Total() sim.Duration {
	return b.Send + b.Notify + b.Process + b.Respond
}

// String renders the stages compactly.
func (b Breakdown) String() string {
	return fmt.Sprintf("send=%v notify=%v process=%v respond=%v (total %v)",
		b.Send, b.Notify, b.Process, b.Respond, b.Total())
}

// LastBreakdown returns the stage decomposition of the most recently
// served request. The simulation is single-threaded, so "last" is
// well-defined; use it immediately after a Call.
func (s *Server) LastBreakdown() Breakdown { return s.lastBreakdown }

// sansSend clears the client-side stage (the server only sees the
// other three).
func (b Breakdown) sansSend() Breakdown {
	b.Send = 0
	return b
}

// CallTraced is Call plus the server-side stage breakdown.
func (c *Client) CallTraced(now sim.Time, payload []byte) ([]byte, sim.Time, Breakdown) {
	arrive := c.conn.Send(now, payload)
	resp, done := c.Server.Serve(arrive, c.Idx)
	if _, ok := c.conn.PollResponse(); !ok {
		panic("core: response ring empty after serve")
	}
	b := c.Server.lastBreakdown
	b.Send = arrive - now
	return resp, done, b
}
