package core

import (
	"encoding/binary"
	"testing"

	"rambda/internal/hostcpu"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// TestManyClientsInterleaved drives every connection concurrently and
// checks functional integrity under timing interleaving: each response
// must carry its own request's payload.
func TestManyClientsInterleaved(t *testing.T) {
	sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase})
	cm := NewMachine(MachineConfig{Name: "cli"})
	ConnectMachines(sm, cm)
	opts := smallOpts()
	opts.Connections = 8
	s := NewServer(sm, echoApp(), opts)
	clients := make([]*Client, 8)
	for i := range clients {
		clients[i] = ConnectClient(cm, s, i)
	}
	var mismatches int
	res := sim.ClosedLoop{Clients: 32, PerClient: 40, Stagger: 30 * sim.Nanosecond}.Run(
		func(id int, issue sim.Time) sim.Time {
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(id)<<32|uint64(issue)&0xFFFFFFFF)
			resp, done := clients[id%8].Call(issue, payload)
			if string(resp[:5]) != "echo:" || binary.LittleEndian.Uint64(resp[5:]) != binary.LittleEndian.Uint64(payload) {
				mismatches++
			}
			return done
		})
	if mismatches != 0 {
		t.Fatalf("%d responses carried wrong payloads", mismatches)
	}
	if res.Requests != 32*40 {
		t.Fatalf("requests=%d", res.Requests)
	}
	if s.Served() != 32*40 {
		t.Fatalf("served=%d", s.Served())
	}
}

// TestNVMRingsEndToEnd runs the server with NVM-resident rings under
// adaptive DDIO and checks that the DMA path kept the write
// amplification down.
func TestNVMRingsEndToEnd(t *testing.T) {
	sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase, WithNVM: true})
	cm := NewMachine(MachineConfig{Name: "cli"})
	ConnectMachines(sm, cm)
	opts := smallOpts()
	opts.RingKind = memspace.KindNVM
	s := NewServer(sm, echoApp(), opts)
	c := ConnectClient(cm, s, 0)
	now := sim.Time(0)
	for i := 0; i < 20; i++ {
		resp, done := c.Call(now, []byte{byte(i)})
		if resp[5] != byte(i) {
			t.Fatalf("payload %d corrupted", i)
		}
		now = done
	}
	if amp := sm.Mem.NVM.WriteAmplification(); amp > 8 {
		t.Fatalf("adaptive DDIO amplification=%v, want small", amp)
	}
	if sm.Mem.LLC.MemoryBypassBytes() == 0 {
		t.Fatal("NVM ring writes must bypass the cache (TPH clear)")
	}
	if s.Served() != 20 {
		t.Fatalf("served=%d", s.Served())
	}
}

// TestAlwaysOnDDIOAmplifiesNVMRings is the inverse: DDIO forced on
// makes ring writes amplify.
func TestAlwaysOnDDIOAmplifiesNVMRings(t *testing.T) {
	run := func(ddio bool) float64 {
		sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase, WithNVM: true, DDIOEnabled: ddio})
		cm := NewMachine(MachineConfig{Name: "cli"})
		ConnectMachines(sm, cm)
		opts := smallOpts()
		opts.RingKind = memspace.KindNVM
		s := NewServer(sm, echoApp(), opts)
		c := ConnectClient(cm, s, 0)
		now := sim.Time(0)
		for i := 0; i < 20; i++ {
			_, now = c.Call(now, []byte{byte(i)})
		}
		return sm.Mem.NVM.WriteAmplification()
	}
	adaptive, always := run(false), run(true)
	if always <= adaptive {
		t.Fatalf("DDIO-on amplification (%v) must exceed adaptive (%v)", always, adaptive)
	}
}

// TestServeWithoutRequestPanics guards the framework invariant.
func TestServeWithoutRequestPanics(t *testing.T) {
	sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase})
	s := NewServer(sm, echoApp(), smallOpts())
	ConnectLocalClient(s, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Serve(0, 0)
}

// TestConnectionIndexBounds guards dial-time validation.
func TestConnectionIndexBounds(t *testing.T) {
	sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase})
	cm := NewMachine(MachineConfig{Name: "cli"})
	ConnectMachines(sm, cm)
	s := NewServer(sm, echoApp(), smallOpts())
	for _, idx := range []int{-1, smallOpts().Connections} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("index %d accepted", idx)
				}
			}()
			ConnectClient(cm, s, idx)
		}()
	}
}

// TestServerRequiresAccelerator guards construction.
func TestServerRequiresAccelerator(t *testing.T) {
	m := NewMachine(MachineConfig{Name: "plain"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewServer(m, echoApp(), smallOpts())
}

// TestCpollSignalsPerRequest confirms the notification accounting: one
// coherence signal (pointer-line write) per request once harvests
// re-arm the line.
func TestCpollSignalsPerRequest(t *testing.T) {
	sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase})
	cm := NewMachine(MachineConfig{Name: "cli"})
	ConnectMachines(sm, cm)
	s := NewServer(sm, echoApp(), smallOpts())
	c := ConnectClient(cm, s, 0)
	now := sim.Time(0)
	const n = 25
	for i := 0; i < n; i++ {
		_, now = c.Call(now, []byte{1})
	}
	if got := s.Checker().Signals(); got != n {
		t.Fatalf("signals=%d for %d serial requests", got, n)
	}
	if got := s.Checker().Harvested(); got != n {
		t.Fatalf("harvested=%d", got)
	}
}

// TestThroughputOrdering checks the saturation behaviour the paper
// reports: on a trivial compute-free echo the many-core CPU baseline
// out-runs the 400 MHz fabric (RAMBDA is not magic), while the
// accelerator still sustains multi-Mops with the full cpoll + SQ
// handler path engaged.
func TestThroughputOrdering(t *testing.T) {
	// RAMBDA echo.
	sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase})
	cm := NewMachine(MachineConfig{Name: "cli"})
	ConnectMachines(sm, cm)
	opts := smallOpts()
	opts.Connections = 8
	opts.RingEntries = 64
	s := NewServer(sm, echoApp(), opts)
	clients := make([]*Client, 8)
	for i := range clients {
		clients[i] = ConnectClient(cm, s, i)
	}
	r1 := sim.ClosedLoop{Clients: 8 * 32, PerClient: 30, Stagger: 40 * sim.Nanosecond}.Run(
		func(id int, issue sim.Time) sim.Time {
			_, done := clients[id%8].Call(issue, []byte("abcd"))
			return done
		})

	// CPU echo.
	sm2 := NewMachine(MachineConfig{Name: "srv2"})
	cm2 := NewMachine(MachineConfig{Name: "cli2"})
	ConnectMachines(sm2, cm2)
	copts := DefaultCPUServerOptions()
	copts.Connections = 8
	s2 := NewCPUServer(sm2, func(req []byte) ([]byte, hostcpu.Work) {
		return append([]byte("echo:"), req...), hostcpu.Work{Cycles: 300}
	}, copts)
	clients2 := make([]*CPUClient, 8)
	for i := range clients2 {
		clients2[i] = ConnectCPUClient(cm2, s2, i)
	}
	r2 := sim.ClosedLoop{Clients: 8 * 32, PerClient: 30, Stagger: 40 * sim.Nanosecond}.Run(
		func(id int, issue sim.Time) sim.Time {
			_, done := clients2[id%8].Call(issue, []byte("abcd"))
			return done
		})

	if r1.Throughput < 5e6 {
		t.Fatalf("RAMBDA echo only %.1f Mops — the accelerator pipeline regressed", r1.Throughput/1e6)
	}
	if r2.Throughput < r1.Throughput {
		t.Fatalf("a 20-core CPU (%v) should beat the 400MHz fabric (%v) on compute-free echo",
			r2.Throughput, r1.Throughput)
	}
}

// TestLossyFabricKeepsCorrectnessInflatesTail injects RoCE packet loss
// between the machines: every request still completes with the right
// payload (RC retransmission), while tail latency grows by RTOs.
func TestLossyFabricKeepsCorrectnessInflatesTail(t *testing.T) {
	run := func(loss float64) (*sim.Histogram, bool) {
		sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase})
		cm := NewMachine(MachineConfig{Name: "cli"})
		d := ConnectMachines(sm, cm)
		if loss > 0 {
			d.AtoB.InjectLoss(loss, 20*sim.Microsecond, 9)
			d.BtoA.InjectLoss(loss, 20*sim.Microsecond, 10)
		}
		s := NewServer(sm, echoApp(), smallOpts())
		c := ConnectClient(cm, s, 0)
		h := sim.NewHistogram(0)
		now := sim.Time(0)
		okAll := true
		for i := 0; i < 200; i++ {
			resp, done := c.Call(now, []byte{byte(i)})
			if len(resp) != 6 || resp[5] != byte(i) {
				okAll = false
			}
			h.Record(done - now)
			now = done
		}
		return h, okAll
	}
	clean, okClean := run(0)
	lossy, okLossy := run(0.05)
	if !okClean || !okLossy {
		t.Fatal("payload corruption — reliability broken")
	}
	if lossy.P99() < clean.P99()+15*sim.Microsecond {
		t.Fatalf("loss must inflate p99: clean=%v lossy=%v", clean.P99(), lossy.P99())
	}
	if lossy.P50() > clean.P50()*3 {
		t.Fatalf("median should stay near clean: %v vs %v", lossy.P50(), clean.P50())
	}
}

// TestCallTracedBreakdown verifies the stage decomposition sums to the
// end-to-end latency and every stage is populated.
func TestCallTracedBreakdown(t *testing.T) {
	sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase})
	cm := NewMachine(MachineConfig{Name: "cli"})
	ConnectMachines(sm, cm)
	data := sm.Space.Alloc("data", 4096, memspace.KindDRAM)
	app := AppFunc(func(ctx *AppCtx, now sim.Time, req []byte) ([]byte, sim.Time) {
		t2 := ctx.Read(now, data.Base, 64)
		return req, ctx.Compute(t2, 16)
	})
	s := NewServer(sm, app, smallOpts())
	c := ConnectClient(cm, s, 0)

	_, done, b := c.CallTraced(0, []byte("trace-me"))
	if b.Total() != done {
		t.Fatalf("breakdown total %v != end-to-end %v", b.Total(), done)
	}
	if b.Send <= 0 || b.Notify <= 0 || b.Process <= 0 || b.Respond <= 0 {
		t.Fatalf("stage missing: %v", b)
	}
	// Send and Respond both cross the wire: each beyond one-way latency.
	if b.Send < NetOneWay || b.Respond < NetOneWay {
		t.Fatalf("network stages too fast: %v", b)
	}
	if b.String() == "" {
		t.Fatal("breakdown must render")
	}
	if s.LastBreakdown() != b.sansSend() {
		t.Fatalf("server breakdown mismatch: %v vs %v", s.LastBreakdown(), b)
	}
}
