package core

import (
	"bytes"
	"testing"

	"rambda/internal/cpoll"
	"rambda/internal/hostcpu"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// echoApp is a trivial APU: one data read + a few compute cycles, then
// echo the payload back.
func echoApp() App {
	return AppFunc(func(ctx *AppCtx, now sim.Time, req []byte) ([]byte, sim.Time) {
		t := ctx.Compute(now, 10)
		return append([]byte("echo:"), req...), t
	})
}

func newServerClient(t *testing.T, opts ServerOptions) (*Server, *Client) {
	t.Helper()
	sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase})
	cm := NewMachine(MachineConfig{Name: "cli"})
	ConnectMachines(sm, cm)
	s := NewServer(sm, echoApp(), opts)
	return s, ConnectClient(cm, s, 0)
}

func smallOpts() ServerOptions {
	o := DefaultServerOptions()
	o.Connections = 4
	o.RingEntries = 8
	o.EntryBytes = 128
	return o
}

func TestEndToEndRemoteCall(t *testing.T) {
	s, c := newServerClient(t, smallOpts())
	resp, done := c.Call(0, []byte("hello"))
	if string(resp) != "echo:hello" {
		t.Fatalf("resp=%q", resp)
	}
	// End-to-end must include two network one-ways (~3us) plus
	// processing; and stay in the paper's µs range.
	if done < 2*NetOneWay {
		t.Fatalf("done=%v, faster than the wire", done)
	}
	if done > 100*sim.Microsecond {
		t.Fatalf("done=%v, implausibly slow", done)
	}
	if s.Served() != 1 {
		t.Fatal("served counter")
	}
	if s.Checker().Signals() == 0 {
		t.Fatal("request did not travel through cpoll")
	}
}

func TestSequentialCallsReuseRing(t *testing.T) {
	_, c := newServerClient(t, smallOpts())
	now := sim.Time(0)
	for i := 0; i < 30; i++ { // > RingEntries: wraps several times
		payload := []byte{byte(i), byte(i >> 8)}
		resp, done := c.Call(now, payload)
		if !bytes.Equal(resp[5:], payload) {
			t.Fatalf("call %d: resp=%q", i, resp)
		}
		if done <= now {
			t.Fatalf("call %d: time went backwards", i)
		}
		now = done
	}
}

func TestDirectModeEndToEnd(t *testing.T) {
	o := smallOpts()
	o.Mode = cpoll.Direct
	o.Connections = 2
	o.RingEntries = 8
	o.EntryBytes = 128 // 2*8*128 = 2KB <= 64KB cache
	s, c := newServerClient(t, o)
	resp, _ := c.Call(0, []byte("direct"))
	if string(resp) != "echo:direct" {
		t.Fatalf("resp=%q", resp)
	}
	if s.Checker().Mode() != cpoll.Direct {
		t.Fatal("mode")
	}
}

func TestPollingVariantSlowerThanCpoll(t *testing.T) {
	run := func(notify NotifyMode) sim.Time {
		o := smallOpts()
		o.Notify = notify
		_, c := newServerClient(t, o)
		var last sim.Time
		now := sim.Time(0)
		for i := 0; i < 20; i++ {
			_, last = c.Call(now, []byte("x"))
			now = last
		}
		return last
	}
	cpollDone := run(NotifyCpoll)
	pollDone := run(NotifyPolling)
	if pollDone <= cpollDone {
		t.Fatalf("polling (%v) must be slower than cpoll (%v)", pollDone, cpollDone)
	}
}

func TestLocalClientCall(t *testing.T) {
	sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase})
	s := NewServer(sm, echoApp(), smallOpts())
	c := ConnectLocalClient(s, 1)
	resp, done := c.Call(0, []byte("numa"))
	if string(resp) != "echo:numa" {
		t.Fatalf("resp=%q", resp)
	}
	// Intra-machine: far below network latency.
	if done >= 2*NetOneWay {
		t.Fatalf("local call=%v, should not pay network costs", done)
	}
	if !c.CanSend() {
		t.Fatal("credit not returned")
	}
}

func TestAccelVariantsDataPlacement(t *testing.T) {
	ld := NewMachine(MachineConfig{Name: "ld", Variant: AccelLD, AccelLocalBytes: 1 << 20})
	if ld.DataKind().String() != "accel-local" {
		t.Fatal("LD data must be accel-local")
	}
	if ld.LocalRegion() == nil {
		t.Fatal("LD local region missing")
	}
	base := NewMachine(MachineConfig{Name: "b", Variant: AccelBase})
	if base.DataKind().String() != "dram" {
		t.Fatal("base data must be DRAM")
	}
	if base.LocalRegion() != nil {
		t.Fatal("base must have no local region")
	}
	none := NewMachine(MachineConfig{Name: "n"})
	if none.Accel != nil {
		t.Fatal("NoAccel machine has an accelerator")
	}
}

func TestLDFasterThanBaseForDataHeavyApp(t *testing.T) {
	// An app doing many data reads: LD (local memory) must beat base
	// (all reads over UPI).
	run := func(variant AccelVariant) sim.Time {
		sm := NewMachine(MachineConfig{Name: "srv", Variant: variant, AccelLocalBytes: 1 << 20})
		dataKind := sm.DataKind()
		reg := sm.Space.Alloc("data", 1<<20, dataKind)
		app := AppFunc(func(ctx *AppCtx, now sim.Time, req []byte) ([]byte, sim.Time) {
			t := now
			for i := 0; i < 16; i++ {
				t = ctx.Read(t, reg.Base+memAddr(i*4096), 64)
			}
			return []byte("ok"), t
		})
		s := NewServer(sm, app, smallOpts())
		c := ConnectLocalClient(s, 0)
		var done sim.Time
		now := sim.Time(0)
		for i := 0; i < 10; i++ {
			_, done = c.Call(now, []byte("r"))
			now = done
		}
		return done
	}
	base, ldv := run(AccelBase), run(AccelLD)
	if ldv >= base {
		t.Fatalf("LD (%v) must beat base (%v) on data-heavy apps", ldv, base)
	}
}

func TestCPUBaselineEndToEnd(t *testing.T) {
	sm := NewMachine(MachineConfig{Name: "srv"})
	cm := NewMachine(MachineConfig{Name: "cli"})
	ConnectMachines(sm, cm)
	dataReg := sm.Space.Alloc("data", 1<<20, sm.DataKind())
	h := CPUHandler(func(req []byte) ([]byte, hostcpu.Work) {
		return append([]byte("cpu:"), req...), hostcpu.Work{
			Cycles: 200, Accesses: 3, AccessBytes: 64, Addr: dataReg.Base,
		}
	})
	o := DefaultCPUServerOptions()
	o.Connections = 2
	o.RingEntries = 8
	s := NewCPUServer(sm, h, o)
	c := ConnectCPUClient(cm, s, 0)
	resp, done := c.Call(0, []byte("req"))
	if string(resp) != "cpu:req" {
		t.Fatalf("resp=%q", resp)
	}
	if done < 2*NetOneWay || done > 100*sim.Microsecond {
		t.Fatalf("done=%v out of plausible range", done)
	}
	if s.Served() != 1 {
		t.Fatal("served")
	}
}

func TestCPUBatchTradeoff(t *testing.T) {
	// At an offered load that saturates the cores, bigger batches give
	// higher throughput (cores stop stalling on dependent misses) at
	// the cost of higher latency (batch formation).
	run := func(batch int) (sim.Time, float64) {
		sm := NewMachine(MachineConfig{Name: "srv"})
		cm := NewMachine(MachineConfig{Name: "cli"})
		ConnectMachines(sm, cm)
		dataReg := sm.Space.Alloc("data", 1<<20, sm.DataKind())
		h := CPUHandler(func(req []byte) ([]byte, hostcpu.Work) {
			return []byte("ok"), hostcpu.Work{Cycles: 400, Accesses: 3, AccessBytes: 64, Addr: dataReg.Base}
		})
		o := DefaultCPUServerOptions()
		o.Connections = 16
		o.RingEntries = 64
		o.Batch = batch
		s := NewCPUServer(sm, h, o)
		clients := make([]*CPUClient, o.Connections)
		for i := range clients {
			clients[i] = ConnectCPUClient(cm, s, i)
		}
		// HERD-style clients keep `batch` requests outstanding per
		// connection — the batch size is the pipelining window.
		res := sim.ClosedLoop{Clients: o.Connections * batch, PerClient: 30}.Run(
			func(id int, issue sim.Time) sim.Time {
				_, done := clients[id%o.Connections].Call(issue, []byte("q"))
				return done
			})
		return res.Latency.Mean(), res.Throughput
	}
	lat1, tp1 := run(1)
	lat32, tp32 := run(32)
	if tp32 <= tp1 {
		t.Fatalf("batching must raise throughput at saturation: %v vs %v", tp32, tp1)
	}
	if lat32 <= lat1 {
		t.Fatalf("batching must raise latency: %v vs %v", lat32, lat1)
	}
}

func TestInvokeCPURoundTrip(t *testing.T) {
	sm := NewMachine(MachineConfig{Name: "srv", Variant: AccelBase})
	ctx := &AppCtx{M: sm, A: sm.Accel}
	done := ctx.InvokeCPU(0, 128, 1000)
	// Two cc-link crossings + 1000 CPU cycles (500ns) minimum.
	if done < 500*sim.Nanosecond+2*UPIHop {
		t.Fatalf("InvokeCPU=%v too fast", done)
	}
}

func TestVariantString(t *testing.T) {
	if NoAccel.String() != "none" || AccelBase.String() != "rambda" ||
		AccelLD.String() != "rambda-ld" || AccelLH.String() != "rambda-lh" {
		t.Fatal("variant names")
	}
}

// memAddr is a tiny helper to keep address arithmetic readable.
func memAddr(off int) memspace.Addr { return memspace.Addr(off) }
