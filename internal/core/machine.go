package core

import (
	"rambda/internal/accel"
	"rambda/internal/coherence"
	"rambda/internal/hostcpu"
	"rambda/internal/interconnect"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/rnic"
	"rambda/internal/sim"
)

// MachineConfig selects a machine's hardware.
type MachineConfig struct {
	Name string
	// WithNVM adds the emulated Optane DIMMs.
	WithNVM bool
	// Variant selects the cc-accelerator build.
	Variant AccelVariant
	// DDIOEnabled is the global DDIO knob. Adaptive DDIO (the RAMBDA
	// default) turns it off and uses per-MR TPH instead.
	DDIOEnabled bool
	// AccelLocalBytes sizes the accelerator-local data region for
	// LD/LH variants (application data is mapped there).
	AccelLocalBytes uint64
	// Cores overrides the CPU core count (0 = testbed default); the
	// microbenchmark and DLRM experiments sweep it.
	Cores int
}

// Machine is one server or client box.
type Machine struct {
	Name  string
	Space *memspace.Space
	Mem   *memdev.System
	Coh   *coherence.Domain
	CPU   *hostcpu.CPU
	NIC   *rnic.NIC

	CCLink *interconnect.CCLink
	Accel  *accel.Accel // nil for NoAccel

	// PCIe directions between the NIC and the host.
	PCIeIn  *interconnect.PCIe // NIC -> host
	PCIeOut *interconnect.PCIe // host -> NIC
}

// NewMachine builds a machine per the testbed constants.
func NewMachine(cfg MachineConfig) *Machine {
	space := memspace.New()
	mem := &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM(cfg.Name+":dram", DRAMChannels, DRAMBW, DRAMLatency),
		LLC:   memdev.NewLLC(cfg.Name+":llc", LLCBW, LLCLatency),
	}
	mem.LLC.DDIOEnabled = cfg.DDIOEnabled
	if cfg.WithNVM {
		mem.NVM = memdev.NewNVM(cfg.Name+":nvm", NVMDimms, NVMReadBW, NVMLatency, NVMWriteCost)
	}

	cores := cfg.Cores
	if cores <= 0 {
		cores = CPUCores
	}
	coh := coherence.NewDomain()
	m := &Machine{
		Name:    cfg.Name,
		Space:   space,
		Mem:     mem,
		Coh:     coh,
		CPU:     hostcpu.New(hostcpu.Config{Name: cfg.Name + ":cpu", Cores: cores, ClockHz: CPUClockHz}, mem),
		CCLink:  interconnect.NewCCLink(cfg.Name+":upi", UPIBW, UPIHop),
		PCIeIn:  interconnect.NewPCIe(cfg.Name+":pcie-in", PCIeBW, PCIeProp, PCIeMMIOCost),
		PCIeOut: interconnect.NewPCIe(cfg.Name+":pcie-out", PCIeBW, PCIeProp, PCIeMMIOCost),
	}

	host := &rnic.Host{
		Space: space,
		Mem:   mem,
		PCIe:  m.PCIeIn,
		PCIeR: m.PCIeOut,
		Coh:   coh,
		Agent: coherence.AgentNIC,
	}
	m.NIC = rnic.New(rnic.Config{Name: cfg.Name + ":rnic"}, host)

	if cfg.Variant != NoAccel {
		var local *memdev.LocalMem
		switch cfg.Variant {
		case AccelLD:
			local = memdev.NewLocalMem(cfg.Name+":ld", LDChannels, LDBW, LDLatency, LDPerOp)
		case AccelLH:
			local = memdev.NewLocalMem(cfg.Name+":lh", LHChannels, LHBW, LHLatency, LHPerOp)
		}
		mem.Local = local
		if local != nil && cfg.AccelLocalBytes > 0 {
			space.Alloc(cfg.Name+":accel-local", cfg.AccelLocalBytes, memspace.KindAccelLocal)
		}
		m.Accel = accel.New(accel.DefaultConfig(cfg.Name+":accel"), m.CCLink, mem, space, coh, local)
	}
	return m
}

// LocalRegion returns the accelerator-local data region allocated at
// construction (LD/LH variants), or nil.
func (m *Machine) LocalRegion() *memspace.Region {
	for _, r := range m.Space.Regions() {
		if r.Kind == memspace.KindAccelLocal {
			return r
		}
	}
	return nil
}

// ConnectMachines wires two machines' NICs with a duplex network path
// at the testbed's 25 GbE characteristics.
func ConnectMachines(a, b *Machine) *interconnect.Duplex {
	d := interconnect.NewDuplex(a.Name+"<->"+b.Name, NetBW, NetOneWay)
	rnic.Connect(a.NIC, b.NIC, d)
	return d
}

// DataKind returns where application data should live on this machine:
// accel-local for LD/LH variants, DRAM otherwise.
func (m *Machine) DataKind() memspace.Kind {
	if m.Accel != nil && m.Accel.HasLocalMemory() {
		return memspace.KindAccelLocal
	}
	return memspace.KindDRAM
}

// Zero is the machine's virtual time origin (a helper for tests).
const Zero = sim.Time(0)
