package core

import (
	"testing"

	"rambda/internal/hostcpu"
	"rambda/internal/sim"
)

// machinePairRun partitions a client and server machine across the
// network cut and runs n request/response round trips through the
// parallel engine, each side owning its outbound NetLink direction.
// Returns a fold of every completion the client observed plus the
// server's core-busy accumulator, so any divergence in timing, RNG
// streams, or message order across worker counts shows up.
func machinePairRun(t *testing.T, workers, n int) (uint64, sim.Duration) {
	t.Helper()
	sim.SetParallel(workers)
	defer sim.SetParallel(1)

	sm := NewMachine(MachineConfig{Name: "srv"})
	cm := NewMachine(MachineConfig{Name: "cli"})
	d := ConnectMachines(sm, cm)
	la := CrossLookahead(d)
	if la <= 0 {
		t.Fatalf("CrossLookahead = %v, want positive", la)
	}
	// The derived bound must be what the wire actually enforces: an
	// empty send from t=0 arrives no earlier than the lookahead.
	if arrive := d.AtoB.Send(0, 0); arrive < la {
		t.Fatalf("Send(0) arrived at %v, before the derived lookahead %v", arrive, la)
	}

	eng := sim.NewEngine(0xC0DE)
	var fold uint64
	sent, recvd := 0, 0
	var toSrv, toCli *sim.Link
	cli := eng.AddPartition(cm.Name, 0, func(p *sim.Partition, _ sim.Time) {
		for _, m := range p.Recv() {
			fold = fold*1099511628211 ^ uint64(m.At) ^ m.Payload
			recvd++
		}
		// Keep one request in flight; think time comes from the
		// partition's own stream.
		for sent < n && sent-recvd < 1 {
			at := sim.Time(0)
			if len(p.Recv()) > 0 {
				at = p.Recv()[len(p.Recv())-1].At
			}
			think := sim.Duration(p.RNG().Uint64n(uint64(sim.Microsecond)))
			bytes := 64 + p.RNG().Intn(1024)
			arrive := d.AtoB.Send(at+think, bytes)
			p.Post(toSrv, sim.Msg{At: arrive, Payload: uint64(bytes)})
			sent++
		}
		p.SetNext(sim.MaxTime)
	})
	srv := eng.AddPartition(sm.Name, sim.MaxTime, func(p *sim.Partition, _ sim.Time) {
		for _, m := range p.Recv() {
			done := sm.CPU.Process(m.At, hostcpu.Work{Cycles: 800})
			arrive := d.BtoA.Send(done, int(m.Payload))
			p.Post(toCli, sim.Msg{At: arrive, Payload: m.Payload ^ p.RNG().Uint64()})
		}
	})
	toSrv = eng.Connect(cli, srv, la)
	toCli = eng.Connect(srv, cli, la)
	eng.Run()

	if recvd != n {
		t.Fatalf("client completed %d of %d round trips", recvd, n)
	}
	return fold, sm.CPU.Cores().NextFree()
}

func TestMachinePairPartitionedDeterministic(t *testing.T) {
	f1, b1 := machinePairRun(t, 1, 120)
	for _, w := range []int{2, 4} {
		fw, bw := machinePairRun(t, w, 120)
		if fw != f1 || bw != b1 {
			t.Fatalf("workers=%d diverged: fold %#x busy %v, want %#x %v", w, fw, bw, f1, b1)
		}
	}
}

func TestCrossLookaheadMatchesLinkMinimum(t *testing.T) {
	a := NewMachine(MachineConfig{Name: "a"})
	b := NewMachine(MachineConfig{Name: "b"})
	d := ConnectMachines(a, b)
	want := d.AtoB.MinLatency()
	if o := d.BtoA.MinLatency(); o < want {
		want = o
	}
	if got := CrossLookahead(d); got != want {
		t.Fatalf("CrossLookahead = %v, want min direction %v", got, want)
	}
	if CrossLookahead(d, d) != want {
		t.Fatal("CrossLookahead over a repeated link changed the bound")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CrossLookahead over an empty cut did not panic")
		}
	}()
	CrossLookahead()
}
