package core

import (
	"rambda/internal/interconnect"
	"rambda/internal/sim"
)

// CrossLookahead derives the conservative lookahead for a partition cut
// of the machine graph from the duplex paths that cross it: the minimum
// over all crossing links of the minimum one-way wire latency
// (propagation plus the serialization of the smallest frame — see
// NetLink.MinLatency). A partitioned engine may advance either side of
// the cut this far past the other's clock without waiting, because no
// message can cross the cut faster (DESIGN.md §12).
//
// Machines connected via ConnectMachines interact only through these
// duplexes, so the cut's lookahead is exactly this bound; at the
// testbed's 25 GbE characteristics it is NetOneWay plus one header
// serialization, comfortably in the µs range the epochs batch against.
func CrossLookahead(links ...*interconnect.Duplex) sim.Duration {
	if len(links) == 0 {
		panic("core: CrossLookahead over an empty cut — the partitions are not connected")
	}
	la := sim.Duration(sim.MaxTime)
	for _, d := range links {
		if l := d.Lookahead(); l < la {
			la = l
		}
	}
	return la
}
