// Package core assembles the RAMBDA system (paper Sec. III, Fig. 2):
// machines composed of CPU, memory devices, coherence domain, RNIC and
// optional cc-accelerator; the framework runtime that allocates ring
// buffers, registers the cpoll region, and walks requests end to end;
// and the CPU and SmartNIC baseline servers the evaluation compares
// against.
package core

import "rambda/internal/sim"

// Testbed constants from Tab. II and the calibration notes in
// DESIGN.md. All experiments read their hardware parameters from here.
const (
	// Server CPU: 2x Intel Xeon Gold 6138P (one socket modeled; the
	// second socket's cores act as clients in the microbenchmark).
	CPUCores   = 20
	CPUClockHz = 2.0e9

	// Six DDR4-2666 channels.
	DRAMChannels = 6
	DRAMBW       = 128e9
	DRAMLatency  = 90 * sim.Nanosecond

	// Shared LLC (27.5 MB).
	LLCBW      = 300e9
	LLCLatency = 20 * sim.Nanosecond

	// Emulated Optane NVM (Sec. VI-A: latency added and bandwidth
	// throttled per recent Optane studies).
	NVMDimms   = 6
	NVMReadBW  = 39e9
	NVMLatency = 300 * sim.Nanosecond
	// Writes land in the DIMM controller's buffer, so their visible
	// service cost is below the 3x steady-state bandwidth gap;
	// calibrated against the paper's ~20% adaptive-DDIO gain.
	NVMWriteCost = 2.0

	// UPI link to the in-package FPGA: 10.4 GT/s = 20.8 GB/s.
	UPIBW  = 20.8e9
	UPIHop = 100 * sim.Nanosecond

	// PCIe path between the RNIC and the host.
	PCIeBW       = 16e9
	PCIeProp     = 300 * sim.Nanosecond
	PCIeMMIOCost = 400 * sim.Nanosecond

	// 25 GbE RoCEv2 network.
	NetBW     = 3.125e9
	NetOneWay = 1500 * sim.Nanosecond

	// cc-accelerator local-memory variants (Sec. V: U280 DDR4 ~36 GB/s,
	// HBM2 ~425 GB/s; HBM trades bandwidth for higher access latency,
	// which is why RAMBDA-LH's KVS latency exceeds RAMBDA-LD's in
	// Fig. 9).
	LDChannels = 2
	LDBW       = 36e9
	LDLatency  = 120 * sim.Nanosecond
	LDPerOp    = 6 * sim.Nanosecond // random-access row/bank overhead
	LHChannels = 32
	LHBW       = 425e9
	LHLatency  = 180 * sim.Nanosecond
	LHPerOp    = 6 * sim.Nanosecond
)

// AccelVariant selects the accelerator configuration of a machine.
type AccelVariant int

const (
	// NoAccel builds a plain server (CPU baseline or client machine).
	NoAccel AccelVariant = iota
	// AccelBase is the prototype: no local memory, all data over UPI.
	AccelBase
	// AccelLD adds U280-style local DDR4.
	AccelLD
	// AccelLH adds U280-style local HBM2.
	AccelLH
)

// String names the variant.
func (v AccelVariant) String() string {
	switch v {
	case NoAccel:
		return "none"
	case AccelBase:
		return "rambda"
	case AccelLD:
		return "rambda-ld"
	case AccelLH:
		return "rambda-lh"
	default:
		return "variant?"
	}
}
