package core

import (
	"fmt"

	"rambda/internal/coherence"
	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/ringbuf"
	"rambda/internal/sim"
)

// accelRespTransport delivers responses from the accelerator to a
// response ring in the same machine's memory (the intra-machine half of
// the unified abstraction): a coherent store over the cc-link instead
// of an RDMA write.
type accelRespTransport struct {
	s *Server
}

// Deliver implements ringbuf.Transport.
func (t accelRespTransport) Deliver(now sim.Time, entryAddr memspace.Addr, entry []byte,
	ptrAddr memspace.Addr, ptrVal uint32) sim.Time {
	if ptrAddr != 0 {
		panic("core: local responses do not update pointer buffers")
	}
	return t.s.M.Accel.WriteData(now, entryAddr, entry)
}

// LocalClient feeds the server's rings from the same machine (the
// microbenchmark's "CPU cores on the other NUMA node ... via shared
// memory buffer", Sec. VI-A). Requests are coherent stores; responses
// come back through a response ring in host memory.
type LocalClient struct {
	S    *Server
	Idx  int
	conn *ringbuf.Conn
}

// ConnectLocalClient establishes intra-machine connection idx.
func ConnectLocalClient(s *Server, idx int) *LocalClient {
	if idx < 0 || idx >= len(s.rings) {
		panic("core: connection index out of range")
	}
	respReg := s.M.Space.Alloc(fmt.Sprintf("%s:local-resp-%d", s.M.Name, idx),
		uint64(s.Opts.RingEntries*s.Opts.EntryBytes), memspace.KindDRAM)
	respLayout := ringbuf.NewLayout(respReg.Range, s.Opts.RingEntries)

	reqT := &ringbuf.LocalTransport{
		Space: s.M.Space,
		Mem:   s.M.Mem,
		Coh:   s.M.Coh,
		Agent: coherence.AgentCPU,
	}
	conn := ringbuf.NewConn(s.rings[idx].Layout, ringbuf.NewRing(s.M.Space, respLayout), reqT, s.PtrAddr(idx))
	if tr := s.Opts.Trace; tr != nil {
		conn.SetTrace(tr)
	}
	if reg := s.Opts.Metrics; reg != nil {
		conn.RegisterMetrics(reg, fmt.Sprintf("conn.%d", idx))
	}
	s.bindConn(idx, respLayout, accelRespTransport{s: s})
	return &LocalClient{S: s, Idx: idx, conn: conn}
}

// CanSend reports flow-control credit.
func (c *LocalClient) CanSend() bool { return c.conn.CanSend() }

// Call sends one request at `now` and returns the response and its
// visibility time in the response ring.
func (c *LocalClient) Call(now sim.Time, payload []byte) ([]byte, sim.Time) {
	tr := c.S.Opts.Trace
	var sp obs.SpanID
	if tr != nil {
		sp = tr.Push("request", obs.StageOther, now)
	}
	arrive := c.conn.Send(now, payload)
	resp, done := c.S.Serve(arrive, c.Idx)
	if _, ok := c.conn.PollResponse(); !ok {
		panic("core: local response missing")
	}
	if tr != nil {
		tr.Pop(sp, done)
	}
	return resp, done
}
