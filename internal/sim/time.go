// Package sim provides the deterministic virtual-time simulation engine
// underlying every hardware model in this repository: a picosecond clock,
// multi-server FCFS resources, open- and closed-loop load drivers,
// deterministic random number generation, and latency statistics.
//
// The engine is intentionally not a general discrete-event simulator.
// Requests are walked through resources in issue order and each resource
// hands out (start, done) windows with Acquire; this keeps the model
// allocation-light and deterministic while still reproducing queueing
// effects (saturation, crossover points, tail latency). See DESIGN.md
// for the approximation this implies.
package sim

import "fmt"

// Time is a point in virtual time, measured in integer picoseconds from
// the start of the simulation. Picosecond resolution lets bandwidth
// models express sub-nanosecond per-byte costs without floating-point
// drift while still covering ~106 days of simulated time in an int64.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration = Time

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns the time as floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}

// FromSeconds converts floating-point seconds into a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromNanoseconds converts floating-point nanoseconds into a Time.
func FromNanoseconds(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// MaxTime is the largest representable virtual time.
const MaxTime Time = 1<<63 - 1

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two times.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
