package sim

import (
	"testing"
)

// pipelineRun streams n items from a stateful generator through a
// pipeline and folds (index, value, observed order) into a hash.
func pipelineRun(workers, n, window, batch int) uint64 {
	SetParallel(workers)
	defer SetParallel(1)
	rng := NewRNG(0x919)
	type item struct {
		k   int
		v   uint64
		pad [6]uint64 // force distinct cache lines between hot slots
	}
	p := NewPipeline(n, window, batch, func(k int, s *item) {
		s.k = k
		s.v = rng.Uint64() // stateful: call order IS the contract
	})
	defer p.Close()
	var fold uint64
	for i := 0; i < n; i++ {
		it := p.Next()
		fold = fold*1099511628211 ^ uint64(it.k) ^ it.v
		if it.k != i {
			panic("pipeline delivered out of order")
		}
	}
	return fold
}

func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	for _, shape := range [][3]int{{500, 64, 16}, {500, 8, 1}, {3, 64, 16}, {17, 4, 2}} {
		n, w, b := shape[0], shape[1], shape[2]
		base := pipelineRun(1, n, w, b)
		for _, workers := range []int{2, 4} {
			if got := pipelineRun(workers, n, w, b); got != base {
				t.Fatalf("n=%d window=%d batch=%d workers=%d: fold %#x, want %#x",
					n, w, b, workers, got, base)
			}
		}
	}
}

func TestPipelineSlotValidUntilNextCall(t *testing.T) {
	withParallel(t, 4, func() {
		p := NewPipeline(200, 8, 4, func(k int, s *int) { *s = k })
		defer p.Close()
		var prev *int
		for i := 0; i < 200; i++ {
			cur := p.Next()
			if prev != nil && *prev != i-1 {
				t.Fatalf("previous slot overwritten while held: got %d, want %d", *prev, i-1)
			}
			prev = cur
		}
	})
}

func TestPipelineCloseReleasesEarly(t *testing.T) {
	// Closing after a partial drain must not leak a blocked producer;
	// run enough of these that a leak would trip -race or deadlock.
	withParallel(t, 4, func() {
		for trial := 0; trial < 50; trial++ {
			p := NewPipeline(10000, 16, 4, func(k int, s *uint64) { *s = uint64(k) })
			for i := 0; i < trial%7; i++ {
				p.Next()
			}
			p.Close()
			p.Close() // idempotent
		}
	})
}

func TestPipelineOverdrainPanics(t *testing.T) {
	p := NewPipeline(2, 4, 1, func(k int, s *int) { *s = k })
	defer p.Close()
	p.Next()
	p.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("Next past item count did not panic")
		}
	}()
	p.Next()
}
