package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Record(Time(i) * Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	if h.Min() != Microsecond || h.Max() != 100*Microsecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if got := h.Mean(); got != Time(50.5*float64(Microsecond)) {
		t.Fatalf("mean=%v", got)
	}
	if got := h.P50(); got != 50*Microsecond {
		t.Fatalf("p50=%v", got)
	}
	if got := h.P99(); got != 99*Microsecond {
		t.Fatalf("p99=%v", got)
	}
	if got := h.Percentile(100); got != 100*Microsecond {
		t.Fatalf("p100=%v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.P99() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramThinningPreservesShape(t *testing.T) {
	h := NewHistogram(1024)
	// 1M uniformly distributed samples; p50 should remain near 500us.
	r := NewRNG(3)
	for i := 0; i < 1000000; i++ {
		h.Record(Time(r.Intn(1000)) * Microsecond)
	}
	if h.Count() != 1000000 {
		t.Fatalf("count=%d", h.Count())
	}
	p50 := h.P50()
	if p50 < 400*Microsecond || p50 > 600*Microsecond {
		t.Fatalf("thinned p50=%v drifted too far from 500us", p50)
	}
}

func TestHistogramPercentileMatchesSort(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(1 << 20)
		vals := make([]Time, len(raw))
		for i, v := range raw {
			vals[i] = Time(v) * Nanosecond
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		idx := int(float64(len(vals))*0.5+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		return h.P50() == vals[idx]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0)
	h.Record(Microsecond)
	if h.String() == "" {
		t.Fatal("empty string")
	}
}
