package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Record(Time(i) * Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	if h.Min() != Microsecond || h.Max() != 100*Microsecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if got := h.Mean(); got != Time(50.5*float64(Microsecond)) {
		t.Fatalf("mean=%v", got)
	}
	if got := h.P50(); got != 50*Microsecond {
		t.Fatalf("p50=%v", got)
	}
	if got := h.P99(); got != 99*Microsecond {
		t.Fatalf("p99=%v", got)
	}
	if got := h.Percentile(100); got != 100*Microsecond {
		t.Fatalf("p100=%v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.P99() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramThinningPreservesShape(t *testing.T) {
	h := NewHistogram(1024)
	// 1M uniformly distributed samples; p50 should remain near 500us.
	r := NewRNG(3)
	for i := 0; i < 1000000; i++ {
		h.Record(Time(r.Intn(1000)) * Microsecond)
	}
	if h.Count() != 1000000 {
		t.Fatalf("count=%d", h.Count())
	}
	p50 := h.P50()
	if p50 < 400*Microsecond || p50 > 600*Microsecond {
		t.Fatalf("thinned p50=%v drifted too far from 500us", p50)
	}
}

func TestHistogramPercentileMatchesSort(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(1 << 20)
		vals := make([]Time, len(raw))
		for i, v := range raw {
			vals[i] = Time(v) * Nanosecond
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		idx := int(float64(len(vals))*0.5+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		return h.P50() == vals[idx]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMergePreservesExactStats(t *testing.T) {
	// Record one stream into a single histogram and the same stream
	// split across four shards; exact statistics must agree after Merge.
	whole := NewHistogram(0)
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = NewHistogram(0)
	}
	r := NewRNG(17)
	for i := 0; i < 40000; i++ {
		v := Time(r.Intn(5000)+1) * Nanosecond
		whole.Record(v)
		shards[i%4].Record(v)
	}
	merged := NewHistogram(0)
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("count %d != %d", merged.Count(), whole.Count())
	}
	if merged.Mean() != whole.Mean() {
		t.Fatalf("mean %v != %v", merged.Mean(), whole.Mean())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("min/max %v/%v != %v/%v", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	// Under the retention cap nothing is thinned, so percentiles over
	// the merged sample set are exact too.
	if merged.P99() != whole.P99() {
		t.Fatalf("p99 %v != %v", merged.P99(), whole.P99())
	}
}

func TestHistogramMergeRespectsCap(t *testing.T) {
	a := NewHistogram(256)
	b := NewHistogram(256)
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		a.Record(Time(r.Intn(100)+1) * Microsecond)
		b.Record(Time(r.Intn(100)+900) * Microsecond)
	}
	a.Merge(b)
	if len(a.samples) > 256 {
		t.Fatalf("retained %d samples, cap 256", len(a.samples))
	}
	if a.Count() != 2000 {
		t.Fatalf("count=%d", a.Count())
	}
	// The merged distribution spans both shards.
	if a.P50() < 90*Microsecond || a.P50() > 950*Microsecond {
		t.Fatalf("p50=%v outside merged span", a.P50())
	}
	if a.Max() < 900*Microsecond {
		t.Fatalf("max=%v lost b's tail", a.Max())
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram(0)
	h.Record(Microsecond)
	h.Merge(nil)
	h.Merge(NewHistogram(0))
	if h.Count() != 1 || h.Mean() != Microsecond {
		t.Fatalf("merge of empty changed stats: %v", h)
	}
	// Merging into an empty histogram adopts the source's stats.
	dst := NewHistogram(0)
	dst.Merge(h)
	if dst.Count() != 1 || dst.Min() != Microsecond || dst.Max() != Microsecond {
		t.Fatalf("empty-dst merge: %v", dst)
	}
}

func TestHistogramMergeStrideBias(t *testing.T) {
	// A coarse histogram (stride 4: 1/4 of samples retained) merged with
	// a fine one (stride 1: all retained) must not let the fine side
	// dominate the percentile set. Give the fine side a low-valued
	// distribution 1/4 the size of the coarse side's high-valued one: by
	// sample count the split is 4:1 high:low, so P50 must land in the
	// high region. Before the re-thinning fix, both sides retained
	// ~equal sample counts and P50 collapsed into the low region.
	coarse := NewHistogram(256)
	for i := 0; i < 1024; i++ { // forces stride 4 (two thins)
		coarse.Record(Time(900+i%100) * Microsecond)
	}
	if coarse.stride != 4 {
		t.Fatalf("coarse stride=%d, want 4", coarse.stride)
	}
	fine := NewHistogram(256)
	for i := 0; i < 256; i++ {
		fine.Record(Time(1+i%100) * Microsecond)
	}
	if fine.stride != 1 {
		t.Fatalf("fine stride=%d, want 1", fine.stride)
	}

	merged := NewHistogram(256)
	merged.Merge(coarse)
	merged.Merge(fine)
	if merged.Count() != 1280 {
		t.Fatalf("count=%d", merged.Count())
	}
	if merged.stride != 8 { // 320 retained > cap 256 forces one more thin
		t.Fatalf("merged stride=%d, want 8", merged.stride)
	}
	// 4:1 high:low by recorded count: P50 and P99 in the high region,
	// only the bottom ~20% low.
	if p := merged.P50(); p < 900*Microsecond {
		t.Fatalf("p50=%v fell into the over-represented fine side", p)
	}
	if p := merged.Percentile(10); p >= 900*Microsecond {
		t.Fatalf("p10=%v lost the fine side entirely", p)
	}

	// Merging in the other order must agree on the retained multiset.
	other := NewHistogram(256)
	other.Merge(fine)
	other.Merge(coarse)
	if other.P50() != merged.P50() || other.stride != merged.stride {
		t.Fatalf("merge order changed p50: %v vs %v", other.P50(), merged.P50())
	}
}

func TestHistogramPercentileCacheInvalidation(t *testing.T) {
	// Percentile caches a sorted view; Record and Merge must invalidate
	// it.
	h := NewHistogram(0)
	for i := 100; i >= 1; i-- {
		h.Record(Time(i) * Microsecond)
	}
	if got := h.P99(); got != 99*Microsecond {
		t.Fatalf("p99=%v", got)
	}
	h.Record(1000 * Microsecond) // new max, must show up
	if got := h.Percentile(100); got != 1000*Microsecond {
		t.Fatalf("p100 after Record=%v, cache not invalidated", got)
	}
	src := NewHistogram(0)
	src.Record(2000 * Microsecond)
	h.Merge(src)
	if got := h.Percentile(100); got != 2000*Microsecond {
		t.Fatalf("p100 after Merge=%v, cache not invalidated", got)
	}
	// Repeated queries on an unchanged histogram stay consistent.
	if h.P50() != h.P50() || h.P999() < h.P50() {
		t.Fatal("cached percentile inconsistent")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0)
	h.Record(Microsecond)
	if h.String() == "" {
		t.Fatal("empty string")
	}
}
