package sim

import "fmt"

// Resource models a hardware component as a multi-server FCFS queue:
// `capacity` parallel servers (memory channels, CPU cores, link lanes,
// DMA engines), a fixed per-operation overhead that occupies a server,
// a bytes/second service rate, and a propagation delay that is added to
// the completion time but does not occupy the server (wire latency,
// DRAM access time behind a pipelined controller).
type Resource struct {
	name        string
	capacity    int
	overhead    Duration // occupies a server per operation
	psPerByte   float64  // server occupancy per byte (1e12 / bytesPerSec)
	propagation Duration // added to completion, does not occupy a server

	free serverHeap // min-heap of per-server next-free times
	gaps *gapTable  // backfillable idle windows, oldest first

	// Accumulated statistics.
	ops      int64
	bytes    int64
	busy     Duration // total server-occupied time
	lastDone Time
}

// gap is an idle window left on a server when an operation started past
// the server's previous frontier. Because requests are walked in issue
// order (see package comment), an operation belonging to a *later*
// request can reach a resource at an *earlier* virtual time than one
// already scheduled; backfilling gaps keeps the resource
// work-conserving under that reordering instead of serializing
// unrelated requests behind idle time.
type gap struct {
	start, end Time
}

// maxGaps bounds the remembered idle windows per resource.
const maxGaps = 4096

// NewResource creates a resource. bytesPerSec <= 0 means the resource
// has no bandwidth component (occupancy is overhead only).
func NewResource(name string, capacity int, overhead Duration, bytesPerSec float64, propagation Duration) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	r := &Resource{
		name:        name,
		capacity:    capacity,
		overhead:    overhead,
		propagation: propagation,
		gaps:        newGapTable(),
	}
	if bytesPerSec > 0 {
		r.psPerByte = float64(Second) / bytesPerSec
	}
	r.free = make(serverHeap, capacity)
	return r
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of parallel servers.
func (r *Resource) Capacity() int { return r.capacity }

// Propagation returns the fixed completion delay added to every
// operation. Together with ServiceTime of the smallest frame it bounds
// how early anything sent through the resource can complete — the
// lookahead the parallel engine derives at partition boundaries.
func (r *Resource) Propagation() Duration { return r.propagation }

// ServiceTime returns the server occupancy for an operation moving the
// given number of bytes, excluding queueing and propagation.
func (r *Resource) ServiceTime(bytes int) Duration {
	return r.overhead + Duration(float64(bytes)*r.psPerByte)
}

// Acquire schedules an operation arriving at `now` that moves `bytes`
// bytes. It returns the time service began (after any queueing) and the
// time the operation completes (including propagation). The byte count
// may be zero for pure-overhead operations (which do not occupy a
// server at all).
func (r *Resource) Acquire(now Time, bytes int) (start, done Time) {
	occupy := r.ServiceTime(bytes)
	r.ops++
	r.bytes += int64(bytes)
	r.busy += occupy
	if occupy == 0 {
		done = now + r.propagation
		if done > r.lastDone {
			r.lastDone = done
		}
		return now, done
	}

	start = r.place(now, occupy)
	done = start + occupy + r.propagation
	if done > r.lastDone {
		r.lastDone = done
	}
	return start, done
}

// place finds the earliest service slot of length occupy at or after
// now: first by backfilling a remembered idle gap, then at the earliest
// server frontier (recording any idle window this opens). The gap
// lookup is indexed (see gapTable) but chooses the same slot the
// original linear scan over the age-ordered gap list would have.
func (r *Resource) place(now Time, occupy Duration) Time {
	if slot, s := r.gaps.search(now, occupy); slot >= 0 {
		g := r.gaps.take(slot)
		// Replace the consumed gap with its (up to two) remainders.
		if s > g.start {
			r.recordGap(g.start, s)
		}
		if s+occupy < g.end {
			r.recordGap(s+occupy, g.end)
		}
		return s
	}
	frontier := r.free[0]
	start := Max(now, frontier)
	if start > frontier {
		r.recordGap(frontier, start)
	}
	r.free[0] = start + occupy
	r.free.fixRoot()
	return start
}

func (r *Resource) recordGap(start, end Time) {
	if end <= start {
		return
	}
	// gapTable.add drops the oldest window when full; old gaps are the
	// least likely to be backfillable by future arrivals.
	r.gaps.add(gap{start: start, end: end})
}

// Occupy books a server for `dur` starting at or after `now`,
// independent of the resource's byte-rate calibration — used to model
// units that stall for externally computed durations (e.g. a coherence
// controller blocked for a full memory round trip). It returns the
// service window.
func (r *Resource) Occupy(now Time, dur Duration) (start, end Time) {
	if dur <= 0 {
		return now, now
	}
	r.ops++
	r.busy += dur
	start = r.place(now, dur)
	end = start + dur
	if end+r.propagation > r.lastDone {
		r.lastDone = end + r.propagation
	}
	return start, end
}

// Delay is a convenience wrapper for pure-latency operations: it behaves
// like Acquire with zero bytes and returns only the completion time.
func (r *Resource) Delay(now Time) Time {
	_, done := r.Acquire(now, 0)
	return done
}

// NextFree reports the earliest time at which a server is available.
func (r *Resource) NextFree() Time { return r.free[0] }

// Ops returns the number of operations serviced so far.
func (r *Resource) Ops() int64 { return r.ops }

// Bytes returns the number of bytes serviced so far.
func (r *Resource) Bytes() int64 { return r.bytes }

// BusyTime returns the total accumulated server occupancy.
func (r *Resource) BusyTime() Duration { return r.busy }

// Utilization reports the fraction of aggregate server time occupied
// over the window [0, horizon].
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.busy) / (float64(horizon) * float64(r.capacity))
}

// Reset clears queue state and statistics, keeping the configuration.
func (r *Resource) Reset() {
	for i := range r.free {
		r.free[i] = 0
	}
	r.gaps.reset()
	r.ops, r.bytes, r.busy, r.lastDone = 0, 0, 0, 0
}

// serverHeap is a min-heap over per-server next-free times. It inlines
// the one operation Resource needs — restoring the invariant after the
// root's frontier advances — instead of going through container/heap's
// interface, which boxed every element access. The sift order is the
// same as container/heap's down(), so the heap layout (and therefore
// placement under frontier ties) is unchanged.
type serverHeap []Time

// fixRoot is heap.Fix(h, 0) for a root-only mutation.
func (h serverHeap) fixRoot() {
	i := 0
	n := len(h)
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2] < h[j] {
			j = j2
		}
		if h[i] <= h[j] {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
