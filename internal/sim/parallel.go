package sim

// Conservative, time-windowed parallel DES engine (DESIGN.md §12).
//
// A simulation is partitioned into goroutine-owned Partitions that
// interact only through unidirectional Links. Every link carries a
// lookahead: a lower bound on how far in the future any message sent
// over it must land (wire propagation plus the serialization of the
// smallest frame — see interconnect's MinLatency methods). That bound
// is exactly what lets one partition advance past another's local clock
// without waiting for it: if every neighbour's next event is at time t
// or later, nothing can arrive before t + lookahead.
//
// Execution proceeds in epochs. At each epoch the engine computes, on
// one goroutine, a per-partition horizon
//
//	H_i = min over in-links (j -> i) of next_j + lookahead(j->i)
//
// (MaxTime for partitions with no in-links, optionally capped at
// global-min + Window to bound run-ahead buffering). Each partition
// then steps concurrently, processing its local events and delivered
// messages with time < H_i and posting messages on its out-links. At
// the epoch barrier the engine drains every outbox into the destination
// pending queues in fixed link-creation order — never map order — and
// merges by timestamp with a stable sort, so ties resolve by (link
// creation order, FIFO position) no matter how many workers ran.
//
// Determinism: partitions share no simulation state, each owns an RNG
// seeded by an FNV-1a fold of the engine seed and the partition index
// (FoldSeed, the runner.Seed/SubSeed discipline), and the merge order
// at barriers is a pure function of the topology. The worker count
// (SetParallel) therefore cannot influence any simulation outcome; with
// one worker the partitions step sequentially in index order on the
// calling goroutine.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// simParallel holds the process-wide intra-simulation worker bound;
// zero means the sequential default of one.
var simParallel atomic.Int64

// SetParallel sets the process-wide worker bound for Engine.Run and
// Pipeline — the -sim-parallel flag threads through this, mirroring
// runner.SetDefault one level down (workers inside one simulation
// rather than across sweep points). n < 1 resets to the sequential
// default. Output is byte-identical for every value.
func SetParallel(n int) {
	if n < 1 {
		n = 0
	}
	simParallel.Store(int64(n))
}

// Parallel returns the current intra-simulation worker bound (>= 1).
func Parallel() int {
	if n := int(simParallel.Load()); n > 0 {
		return n
	}
	return 1
}

// FoldSeed derives an independent child seed from a parent seed with
// the same FNV-1a fold as runner.SubSeed — one stream per partition,
// disjoint by construction, so event outcomes are independent of the
// partition count and of scheduling order.
func FoldSeed(seed uint64, sub int) uint64 {
	const prime64 = 1099511628211
	h := seed
	for i := 0; i < 8; i++ {
		h ^= uint64(sub>>(8*i)) & 0xff
		h *= prime64
	}
	return h
}

// Msg is one cross-partition message: a delivery time and two opaque
// payload words. Messages are fixed-size so mailboxes never allocate
// per field; anything larger rides in partition-owned slot arrays
// indexed by a payload word (see Pipeline).
type Msg struct {
	At      Time
	Payload uint64
	Aux     uint64
}

// Link is a unidirectional cross-partition mailbox with conservative
// lookahead. Only the source partition may Post to it, and only during
// its own step, so the outbox needs no locking.
type Link struct {
	id        int
	from, to  *Partition
	lookahead Duration
	out       []Msg
}

// Lookahead returns the link's conservative delivery bound.
func (l *Link) Lookahead() Duration { return l.lookahead }

// StepFunc advances one partition: process local events and the
// delivered messages (Recv) with time strictly below horizon, post any
// cross-partition messages, and leave the next local event time via
// SetNext (MaxTime when drained). It must touch only partition-owned
// state.
type StepFunc func(p *Partition, horizon Time)

// Partition is one goroutine-owned slice of the simulation.
type Partition struct {
	id   int
	name string
	rng  *RNG
	step StepFunc

	next    Time
	horizon Time
	guard   Time // effNext at epoch start; lower-bounds Post times

	pending []Msg // delivered, sorted by At (stable: link order, FIFO)
	inbox   []Msg // pending prefix with At < horizon, valid during step
	in      []*Link
}

// ID returns the partition's index in creation order.
func (p *Partition) ID() int { return p.id }

// Name returns the partition's label.
func (p *Partition) Name() string { return p.name }

// RNG returns the partition's private stream, seeded
// FoldSeed(engineSeed, partitionID).
func (p *Partition) RNG() *RNG { return p.rng }

// Recv returns the messages delivered for this epoch (At < horizon) in
// deterministic merge order. Valid only during the step call.
func (p *Partition) Recv() []Msg { return p.inbox }

// SetNext records the partition's next local event time; MaxTime means
// the partition is drained and will only wake for messages.
func (p *Partition) SetNext(t Time) { p.next = t }

// Post sends m on l. The link must originate at this partition and the
// delivery time must respect the lookahead contract: no message may
// land earlier than the partition's epoch-start clock plus the link's
// lookahead. Violations panic — a too-early message is a determinism
// bug, not a runtime condition.
func (p *Partition) Post(l *Link, m Msg) {
	if l.from != p {
		panic(fmt.Sprintf("sim: partition %q posting on link it does not own", p.name))
	}
	if m.At < addSat(p.guard, l.lookahead) {
		panic(fmt.Sprintf("sim: partition %q posted message at %v < clock %v + lookahead %v",
			p.name, m.At, p.guard, l.lookahead))
	}
	l.out = append(l.out, m)
}

// effNext is the earliest thing the partition could process: its next
// local event or the head of its delivered-message queue.
func (p *Partition) effNext() Time {
	if len(p.pending) > 0 && p.pending[0].At < p.next {
		return p.pending[0].At
	}
	return p.next
}

// runStep delivers the epoch's inbox slice and invokes the step.
func (p *Partition) runStep() {
	n := sort.Search(len(p.pending), func(i int) bool { return p.pending[i].At >= p.horizon })
	p.inbox = p.pending[:n:n]
	p.step(p, p.horizon)
	if n > 0 {
		m := copy(p.pending, p.pending[n:])
		p.pending = p.pending[:m]
	}
	p.inbox = nil
}

// Engine runs a partitioned simulation to completion.
type Engine struct {
	seed   uint64
	window Duration
	parts  []*Partition
	links  []*Link
	epochs int64
}

// NewEngine creates an empty engine. seed roots every partition's RNG
// stream via FoldSeed.
func NewEngine(seed uint64) *Engine {
	return &Engine{seed: seed}
}

// SetWindow caps every horizon at the global minimum next-event time
// plus w, bounding how far a source partition (no in-links) may run
// ahead of its consumers — a memory bound, not a correctness one.
// Zero (the default) means unbounded.
func (e *Engine) SetWindow(w Duration) {
	if w < 0 {
		w = 0
	}
	e.window = w
}

// AddPartition registers a partition with its first local event time
// (MaxTime for purely message-driven partitions) and step function.
func (e *Engine) AddPartition(name string, next Time, step StepFunc) *Partition {
	p := &Partition{
		id:   len(e.parts),
		name: name,
		rng:  NewRNG(FoldSeed(e.seed, len(e.parts))),
		next: next,
		step: step,
	}
	e.parts = append(e.parts, p)
	return p
}

// Connect creates a link from one partition to another with the given
// lookahead, which must be positive: a zero-lookahead cycle cannot make
// conservative progress.
func (e *Engine) Connect(from, to *Partition, lookahead Duration) *Link {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: link %q -> %q needs positive lookahead, got %v",
			from.name, to.name, lookahead))
	}
	l := &Link{id: len(e.links), from: from, to: to, lookahead: lookahead}
	e.links = append(e.links, l)
	to.in = append(to.in, l)
	return l
}

// Epochs reports how many barrier rounds Run executed.
func (e *Engine) Epochs() int64 { return e.epochs }

// addSat is MaxTime-saturating addition (d >= 0).
func addSat(t Time, d Duration) Time {
	if t >= MaxTime-d {
		return MaxTime
	}
	return t + d
}

// Run executes epochs until every partition is drained and no messages
// are in flight. The worker count is min(SetParallel, partitions);
// with one worker, partitions step sequentially in index order on the
// calling goroutine.
func (e *Engine) Run() {
	workers := Parallel()
	if workers > len(e.parts) {
		workers = len(e.parts)
	}
	active := make([]*Partition, 0, len(e.parts))
	for {
		globalMin := MaxTime
		for _, p := range e.parts {
			if en := p.effNext(); en < globalMin {
				globalMin = en
			}
		}
		if globalMin == MaxTime {
			return // drained: pending queues are empty by effNext
		}
		active = active[:0]
		for _, p := range e.parts {
			h := MaxTime
			for _, l := range p.in {
				if b := addSat(l.from.effNext(), l.lookahead); b < h {
					h = b
				}
			}
			if e.window > 0 {
				if w := addSat(globalMin, e.window); w < h {
					h = w
				}
			}
			p.horizon = h
			p.guard = p.effNext()
			if p.guard < h {
				active = append(active, p)
			}
		}
		if len(active) == 0 {
			panic("sim: parallel engine cannot progress — a lookahead cycle collapsed to zero")
		}
		e.stepAll(workers, active)
		// Barrier: drain outboxes in link-creation order, then restore
		// each touched pending queue's time order with a stable sort so
		// ties keep (link order, FIFO) — never map or scheduling order.
		for _, l := range e.links {
			if len(l.out) == 0 {
				continue
			}
			dst := l.to
			dst.pending = append(dst.pending, l.out...)
			l.out = l.out[:0]
			sort.SliceStable(dst.pending, func(i, j int) bool {
				return dst.pending[i].At < dst.pending[j].At
			})
		}
		e.epochs++
	}
}

// stepAll runs the epoch's active partitions. A panic inside a worker
// is captured and re-raised for the lowest-indexed failing partition,
// the same deterministic choice the runner makes for jobs.
func (e *Engine) stepAll(workers int, active []*Partition) {
	if workers <= 1 || len(active) == 1 {
		for _, p := range active {
			p.runStep()
		}
		return
	}
	if workers > len(active) {
		workers = len(active)
	}
	panics := make([]any, len(active))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(active) {
					return
				}
				func() {
					defer func() {
						if v := recover(); v != nil {
							panics[i] = v
						}
					}()
					active[i].runStep()
				}()
			}
		}()
	}
	wg.Wait()
	for i, v := range panics {
		if v != nil {
			panic(fmt.Sprintf("sim: partition %q panicked: %v", active[i].name, v))
		}
	}
}
