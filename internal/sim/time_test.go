package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond ||
		Microsecond != 1000*Nanosecond || Nanosecond != 1000*Picosecond {
		t.Fatal("unit ladder broken")
	}
	if got := (2 * Microsecond).Nanoseconds(); got != 2000 {
		t.Errorf("2us = %v ns, want 2000", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := FromNanoseconds(90); got != 90*Nanosecond {
		t.Errorf("FromNanoseconds(90) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{90 * Nanosecond, "90.00ns"},
		{2500 * Nanosecond, "2.50us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.0000s"},
		{-90 * Nanosecond, "-90.00ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 || Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Max/Min broken")
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	f := func(ms int32) bool {
		tm := Time(ms) * Millisecond
		return math.Abs(tm.Seconds()-float64(ms)/1000) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
