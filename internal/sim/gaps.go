package sim

import "math/bits"

// gapTable indexes a resource's backfillable idle windows so that
// Resource.place no longer pays O(gaps) per Acquire. It is the indexed
// replacement for the original flat `[]gap` slice, and its contract is
// bit-exact equivalence with the original linear scan (see
// placement_equiv_test.go):
//
//   - the winning gap for (now, occupy) is the age-earliest gap that
//     achieves the minimal feasible start s = max(now, g.start) subject
//     to s+occupy <= g.end;
//   - when the table is full, recording a new gap evicts the oldest
//     live gap.
//
// Both rules are age-sensitive: two gaps can tie on feasible start (the
// common case is several gaps straddling `now`, all feasible at s ==
// now), and the original scan breaks that tie toward the gap recorded
// first. A start-ordered structure cannot reproduce that order, so the
// table keeps gaps in age order — a sliding window over a flat buffer —
// and gets its speedup from three exact prunes layered on top:
//
//  1. a tracked max-gap-length upper bound: occupy > maxLen means no
//     gap can fit and the scan is skipped entirely;
//  2. per-block summaries (min start, max end, max length over 64-gap
//     blocks): a block is scanned only if it can hold a gap covering
//     [now, now+occupy] or a future gap that fits and could still beat
//     the best candidate so far. Summaries are maintained as
//     over-approximations (removal rescans a block only when the
//     removed gap defined an extreme — see maybeRescan): a too-generous
//     summary can only cause a fruitless block scan, never a different
//     winner, so the bit-exact contract is unaffected;
//  3. early exit on the first gap feasible at s == now: no later gap
//     can strictly beat it, and the original scan would also have kept
//     it (replacement there requires a strictly earlier start).
//
// Consumed gaps become tombstones (start=MaxTime, end=0 — a window no
// request can fit) instead of being spliced out, and eviction advances
// the window head, so both are O(1) in buffer traffic where the slice
// paid an O(n) memmove. Appends slide the tail forward; when the tail
// reaches the end of the buffer the live gaps are compacted back to the
// front. The buffer is 2x maxGaps, so each compaction is separated by
// at least maxGaps appends and amortizes to O(1) per append.
type gapTable struct {
	buf    []gap      // fixed 2*maxGaps slots; live window is [head, tail)
	blocks []gapBlock // per-block summaries over the full buffer
	occ    []uint64   // per-block live-slot bitmaps; scans visit only set bits
	head   int        // oldest slot (may be a tombstone)
	tail   int        // one past the newest slot
	live   int        // live (non-tombstone) gaps in [head, tail)
	maxLen Duration   // upper bound on live gap length; exact after compact
	maxEnd Time       // upper bound on live gap end; exact after compact
}

// gapBlock summarizes one gapBlockSize-aligned run of buffer slots.
// Tombstones are neutral: they cannot lower minStart, raise maxEnd, or
// raise maxLen, so a summary over the full physical block stays valid.
type gapBlock struct {
	minStart Time
	maxEnd   Time
	maxLen   Duration
}

const (
	gapBlockShift = 6 // 64 gaps per summary block
	gapBlockSize  = 1 << gapBlockShift
)

// deadGap marks a consumed or evicted slot. max(now, MaxTime)+occupy
// can never sit inside [MaxTime, 0), so tombstones fail every
// feasibility test without a dedicated branch (the fit check is written
// end-s >= occupy, which cannot overflow for any slot state).
var deadGap = gap{start: MaxTime, end: 0}

func newGapTable() *gapTable {
	t := &gapTable{
		buf:    make([]gap, 2*maxGaps),
		blocks: make([]gapBlock, (2*maxGaps)/gapBlockSize),
		occ:    make([]uint64, (2*maxGaps)/gapBlockSize),
	}
	for i := range t.buf {
		t.buf[i] = deadGap
	}
	for i := range t.blocks {
		t.blocks[i] = deadBlock()
	}
	return t
}

func deadBlock() gapBlock {
	return gapBlock{minStart: MaxTime, maxEnd: 0, maxLen: 0}
}

// len reports the number of live gaps.
func (t *gapTable) len() int { return t.live }

// add appends a gap as the newest entry, evicting the oldest live gap
// first when the table is at capacity — the same drop-oldest policy the
// flat slice used, but O(1) instead of an O(n) memmove.
func (t *gapTable) add(g gap) {
	if t.live >= maxGaps {
		t.evictOldest()
	}
	if t.tail == len(t.buf) {
		t.compact()
	}
	slot := t.tail
	t.tail++
	t.live++
	t.buf[slot] = g
	t.occ[slot>>gapBlockShift] |= 1 << (slot & (gapBlockSize - 1))
	blk := &t.blocks[slot>>gapBlockShift]
	if g.start < blk.minStart {
		blk.minStart = g.start
	}
	if g.end > blk.maxEnd {
		blk.maxEnd = g.end
	}
	if l := g.end - g.start; l > blk.maxLen {
		blk.maxLen = l
		if l > t.maxLen {
			t.maxLen = l
		}
	}
	if g.end > t.maxEnd {
		t.maxEnd = g.end
	}
}

// evictOldest tombstones the oldest live gap.
func (t *gapTable) evictOldest() {
	for t.buf[t.head] == deadGap {
		t.head++
	}
	g := t.buf[t.head]
	t.buf[t.head] = deadGap
	t.occ[t.head>>gapBlockShift] &^= 1 << (t.head & (gapBlockSize - 1))
	t.head++
	t.live--
	t.maybeRescan((t.head-1)>>gapBlockShift, g)
}

// take removes and returns the gap at slot (previously returned by
// search).
func (t *gapTable) take(slot int) gap {
	g := t.buf[slot]
	t.buf[slot] = deadGap
	t.occ[slot>>gapBlockShift] &^= 1 << (slot & (gapBlockSize - 1))
	t.live--
	t.maybeRescan(slot>>gapBlockShift, g)
	return g
}

// maybeRescan rebuilds block b's summary only when the gap just removed
// from it defined one of the summary's extremes. A gap strictly inside
// all three bounds cannot change them, so the summary stays exact
// without touching the other 63 slots — and even when a rescan is
// skipped wrongly-pessimistically (removed gap tied an extreme another
// gap also achieves), the summary merely over-approximates, which the
// search prunes tolerate by construction: a too-generous summary scans
// a block that yields nothing, it never changes the winner.
func (t *gapTable) maybeRescan(b int, g gap) {
	blk := &t.blocks[b]
	if g.start > blk.minStart && g.end < blk.maxEnd && g.end-g.start < blk.maxLen {
		return
	}
	t.rescanBlock(b)
}

// rescanBlock rebuilds one block's summary from its slots. Tombstones
// are summary-neutral, so the straight sequential sweep (which the
// hardware prefetches) beats iterating the occupancy bits when blocks
// run dense — and blocks are dense by construction, since appends fill
// them front to back.
func (t *gapTable) rescanBlock(b int) {
	lo := b << gapBlockShift
	blk := deadBlock()
	for _, g := range t.buf[lo : lo+gapBlockSize] {
		if g.start < blk.minStart {
			blk.minStart = g.start
		}
		if g.end > blk.maxEnd {
			blk.maxEnd = g.end
		}
		if l := g.end - g.start; l > blk.maxLen {
			blk.maxLen = l
		}
	}
	t.blocks[b] = blk
}

// compact slides the live gaps back to the front of the buffer in age
// order and rebuilds the summaries and the exact max length.
func (t *gapTable) compact() {
	n := 0
	for i := t.head; i < t.tail; i++ {
		if g := t.buf[i]; g != deadGap {
			t.buf[n] = g
			n++
		}
	}
	for i := n; i < t.tail; i++ {
		t.buf[i] = deadGap
	}
	for i := range t.occ {
		t.occ[i] = 0
	}
	for i := 0; i < n; i++ {
		t.occ[i>>gapBlockShift] |= 1 << (i & (gapBlockSize - 1))
	}
	t.head, t.tail = 0, n
	t.maxLen = 0
	t.maxEnd = 0
	for b := range t.blocks {
		t.rescanBlock(b)
		if t.blocks[b].maxLen > t.maxLen {
			t.maxLen = t.blocks[b].maxLen
		}
		if t.blocks[b].maxEnd > t.maxEnd {
			t.maxEnd = t.blocks[b].maxEnd
		}
	}
}

// search returns the slot of the gap the original linear scan would
// have chosen for an operation of length occupy arriving at now, and
// the feasible start within it, or slot -1 if no gap fits.
func (t *gapTable) search(now Time, occupy Duration) (slot int, start Time) {
	if t.live == 0 || occupy > t.maxLen {
		return -1, 0
	}
	target := now + occupy
	// A feasible gap needs end >= max(now, start) + occupy >= target, so
	// when even the newest remembered window ends before target the scan
	// cannot succeed. This is the steady-state fast path: most windows
	// are wholly in the past, and the table-level bound answers in O(1)
	// what the per-block maxEnd prunes would answer in O(blocks).
	if t.maxEnd < target {
		return -1, 0
	}
	best := -1
	var bestStart Time
	var tightMax Duration
	var tightEnd Time
	lastBlock := (t.tail - 1) >> gapBlockShift
	for b := t.head >> gapBlockShift; b <= lastBlock; b++ {
		if t.occ[b] == 0 {
			continue
		}
		blk := &t.blocks[b]
		if blk.maxLen > tightMax {
			tightMax = blk.maxLen
		}
		if blk.maxEnd > tightEnd {
			tightEnd = blk.maxEnd
		}
		// Any feasible gap ends at or after now+occupy (s >= now always),
		// so maxEnd < target prunes a block outright — in steady state
		// most remembered windows are wholly in the past and this is the
		// prune that carries the load. A surviving block is scanned if it
		// can hold a covering gap (start <= now, feasible at s == now) or
		// a future gap at least occupy long starting strictly before the
		// best candidate so far (the original scan's strict-< replacement
		// rule).
		if blk.maxEnd < target {
			continue
		}
		scanCovering := blk.minStart <= now
		scanFuture := blk.maxLen >= occupy && (best < 0 || blk.minStart < bestStart)
		if !scanCovering && !scanFuture {
			continue
		}
		lo := b << gapBlockShift
		// Only live slots carry a set bit (slots before head, past tail,
		// and tombstones are all clear), and ascending bit order is age
		// order, so the scan touches exactly the live gaps the original
		// slot walk would have tested.
		for mask := t.occ[b]; mask != 0; mask &= mask - 1 {
			i := lo + bits.TrailingZeros64(mask)
			g := t.buf[i]
			s := now
			if g.start > now {
				s = g.start
			}
			if g.end-s < occupy {
				continue
			}
			if s == now {
				// Age-earliest covering gap: nothing later can strictly
				// improve on it, exactly as in the linear scan.
				return i, s
			}
			if best < 0 || s < bestStart {
				best, bestStart = i, s
			}
		}
	}
	if best < 0 {
		// Full miss: every block summary was consulted, so tightMax and
		// tightEnd bound the live population — re-tighten the skip
		// bounds (block summaries may themselves over-approximate, so
		// these stay upper bounds, which is all the fast paths need).
		t.maxLen = tightMax
		t.maxEnd = tightEnd
	}
	return best, bestStart
}

// reset clears the table, keeping the allocation.
func (t *gapTable) reset() {
	for i := t.head; i < t.tail; i++ {
		t.buf[i] = deadGap
	}
	t.head, t.tail, t.live, t.maxLen, t.maxEnd = 0, 0, 0, 0, 0
	for i := range t.blocks {
		t.blocks[i] = deadBlock()
	}
	for i := range t.occ {
		t.occ[i] = 0
	}
}
