package sim

import (
	"fmt"
	"slices"
)

// Histogram collects latency samples and reports order statistics.
// Samples are stored exactly up to a cap, after which a deterministic
// every-kth thinning keeps memory bounded while preserving the
// distribution's shape for large runs.
type Histogram struct {
	samples []Time
	sorted  []Time // cached sorted view of samples; valid when !dirty
	dirty   bool   // samples changed since sorted was built
	stride  int64  // record every stride-th sample once past cap
	seen    int64
	sum     Time
	min     Time
	max     Time
	cap     int
}

// DefaultHistogramCap bounds the number of retained samples.
const DefaultHistogramCap = 1 << 20

// NewHistogram creates a histogram retaining at most cap samples
// (DefaultHistogramCap if cap <= 0).
func NewHistogram(cap int) *Histogram {
	if cap <= 0 {
		cap = DefaultHistogramCap
	}
	return &Histogram{stride: 1, min: MaxTime, cap: cap}
}

// thin keeps every other retained sample in place and doubles the
// stride.
func (h *Histogram) thin() {
	n := len(h.samples)
	for j := 1; 2*j < n; j++ {
		h.samples[j] = h.samples[2*j]
	}
	h.samples = h.samples[:(n+1)/2]
	h.stride *= 2
}

// Record adds one sample.
func (h *Histogram) Record(v Time) {
	h.seen++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if h.seen%h.stride != 0 {
		return
	}
	if len(h.samples) >= h.cap {
		h.thin()
		if h.seen%h.stride != 0 {
			return
		}
	}
	h.samples = append(h.samples, v)
	h.dirty = true
}

// Merge folds other's samples into h, preserving exact count/sum/min/
// max. Retained samples are concatenated and re-thinned under h's cap;
// h adopts the coarser of the two strides, and when the strides differ
// the finer side is first re-thinned to the adopted stride — appending
// it raw would over-represent it, since each of its retained samples
// stands for fewer recorded ones. Sweep points in internal/runner each
// own a private histogram, so merging happens (if at all) after the
// parallel phase, on one goroutine, in sweep order — Merge is
// deliberately not safe for concurrent use, like Record.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.seen == 0 {
		return
	}
	h.seen += other.seen
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	// Strides are powers of two (they only ever double), so the
	// re-thinning factors below are exact.
	for h.stride < other.stride {
		h.thin()
	}
	if k := int(h.stride / other.stride); k > 1 {
		for i := 0; i < len(other.samples); i += k {
			h.samples = append(h.samples, other.samples[i])
		}
	} else {
		h.samples = append(h.samples, other.samples...)
	}
	for len(h.samples) > h.cap {
		h.thin()
	}
	h.dirty = true
}

// Count returns the number of recorded samples (including thinned ones).
func (h *Histogram) Count() int64 { return h.seen }

// Mean returns the exact mean over all recorded samples.
func (h *Histogram) Mean() Time {
	if h.seen == 0 {
		return 0
	}
	return Time(int64(h.sum) / h.seen)
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() Time {
	if h.seen == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() Time { return h.max }

// Percentile returns the p-th percentile (0 < p <= 100) over retained
// samples. The retained set is exact for runs under the cap. The sorted
// view is cached, so a P50/P99/P999 triple after a run sorts once
// instead of copying and sorting per call.
func (h *Histogram) Percentile(p float64) Time {
	if len(h.samples) == 0 {
		return 0
	}
	if h.dirty || len(h.sorted) != len(h.samples) {
		h.sorted = append(h.sorted[:0], h.samples...)
		slices.Sort(h.sorted)
		h.dirty = false
	}
	s := h.sorted
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := int(float64(len(s))*p/100+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// P50, P99, P999 are common percentile shorthands.
func (h *Histogram) P50() Time  { return h.Percentile(50) }
func (h *Histogram) P99() Time  { return h.Percentile(99) }
func (h *Histogram) P999() Time { return h.Percentile(99.9) }

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.seen, h.Mean(), h.P50(), h.P99(), h.Max())
}
