package sim

import "testing"

// testing.B wrappers over the shared kernels in benchkernels.go.
// cmd/rambda-bench times the same kernels and records them in
// BENCH_*.json; run these directly with
//
//	go test -bench 'Resource|Histogram|ClosedLoop|Zipf' -benchmem ./internal/sim
var benchSink Time

func BenchmarkResourceAcquireGapFree(b *testing.B) {
	b.ReportAllocs()
	benchSink = BenchAcquireGapFree(b.N)
}

func BenchmarkResourceAcquireGapHeavy(b *testing.B) {
	b.ReportAllocs()
	benchSink = BenchAcquireGapHeavy(b.N)
}

func BenchmarkResourceAcquireGapSaturated(b *testing.B) {
	b.ReportAllocs()
	benchSink = BenchAcquireGapSaturated(b.N)
}

func BenchmarkClosedLoopRun(b *testing.B) {
	b.ReportAllocs()
	_ = BenchClosedLoop(b.N)
}

func BenchmarkHistogramRecord(b *testing.B) {
	b.ReportAllocs()
	benchSink = BenchHistogramRecord(b.N)
}

func BenchmarkHistogramPercentile(b *testing.B) {
	b.ReportAllocs()
	benchSink = BenchHistogramPercentile(b.N)
}

func BenchmarkRNGUint64(b *testing.B) {
	b.ReportAllocs()
	_ = BenchRNG(b.N)
}

func BenchmarkZipfNext(b *testing.B) {
	b.ReportAllocs()
	_ = BenchZipf(b.N)
}
