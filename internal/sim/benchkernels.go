package sim

// Benchmark kernels for the engine's hot paths, shared between the
// package's testing.B benchmarks (sim_bench_test.go) and the
// cmd/rambda-bench harness, which times the same work via
// testing.Benchmark and records it in BENCH_*.json. Each kernel runs n
// operations and returns a value derived from the simulation so the
// compiler cannot elide the work.

// BenchAcquireGapFree drives n Acquires that never open or backfill an
// idle window: every arrival is at t=0, which never leads the server
// frontier. This isolates the frontier/heap path.
func BenchAcquireGapFree(n int) Time {
	r := NewResource("bench:gapfree", 4, 20*Nanosecond, 16e9, 100*Nanosecond)
	var done Time
	for i := 0; i < n; i++ {
		_, done = r.Acquire(0, 64)
	}
	return done
}

// BenchAcquireGapHeavy drives n Acquires through a churning gap
// population: periodic leaps past the frontier open idle windows,
// backdated arrivals backfill and split them. This is the regime the
// indexed gap structure exists for.
func BenchAcquireGapHeavy(n int) Time {
	r := NewResource("bench:gapheavy", 2, 0, 16e9, 0)
	rng := NewRNG(42)
	now := Time(0)
	var done Time
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			// Leap ahead, opening an idle window behind the new op.
			now += Duration(rng.Intn(int(4*Microsecond)) + int(Microsecond))
			_, done = r.Acquire(now, 4096)
			continue
		}
		// Backdated arrival: lands inside or before recent windows.
		back := now - Duration(rng.Intn(int(8*Microsecond)))
		if back < 0 {
			back = 0
		}
		_, done = r.Acquire(back, rng.Intn(2048)+1)
	}
	return done
}

// BenchAcquireGapSaturated holds the gap table at its maxGaps capacity:
// every op records a fresh window (evicting the oldest) and no window
// is ever large enough to backfill, so every lookup is a miss. This was
// the flat slice's worst case — a full O(gaps) scan plus a 64 KiB
// memmove per op — and is the regression kernel for the O(1)
// oldest-drop.
func BenchAcquireGapSaturated(n int) Time {
	r := NewResource("bench:gapsat", 1, 0, 1e9, 0) // 1 byte = 1ns
	now := Time(0)
	var done Time
	for i := 0; i < n; i++ {
		// Occupancy 1us per op, arrivals 1.5us apart: each op opens an
		// unfillable 0.5us window behind itself.
		now += 1500 * Nanosecond
		_, done = r.Acquire(now, 1000)
	}
	return done
}

// BenchClosedLoop runs one closed loop of ~n requests (32 clients over
// a capacity-4 resource with jittered think time), exercising the
// event-heap push/pop per request alongside placement.
func BenchClosedLoop(n int) float64 {
	per := n / 32
	if per < 1 {
		per = 1
	}
	r := NewResource("bench:srv", 4, 2*Microsecond, 0, 0)
	res := ClosedLoop{
		Clients:   32,
		PerClient: per,
		Think:     Microsecond,
		Jitter:    Microsecond,
		Stagger:   100 * Nanosecond,
	}.Run(func(_ int, issue Time) Time {
		_, done := r.Acquire(issue, 0)
		return done
	})
	return res.Throughput
}

// BenchHistogramRecord records n samples through the thinning path
// (cap 1<<16, so large n exercises several stride doublings).
func BenchHistogramRecord(n int) Time {
	h := NewHistogram(1 << 16)
	rng := NewRNG(7)
	for i := 0; i < n; i++ {
		h.Record(Duration(rng.Intn(int(Millisecond))))
	}
	return h.Max()
}

// BenchHistogramPercentile queries P50/P99/P999 n times on a 32k-sample
// histogram — the per-sweep-point reporting pattern, which the cached
// sorted view turns from three sorts into one.
func BenchHistogramPercentile(n int) Time {
	h := NewHistogram(0)
	rng := NewRNG(11)
	for i := 0; i < 1<<15; i++ {
		h.Record(Duration(rng.Intn(int(Millisecond))))
	}
	var acc Time
	for i := 0; i < n; i++ {
		acc += h.P50() + h.P99() + h.P999()
	}
	return acc
}

// BenchRNG draws n raw values from the xoshiro core. Besides covering
// the innermost stochastic primitive, rambda-bench uses this kernel as
// the machine-speed calibration reference: regression checks compare
// each microbenchmark's ns/op normalized by this kernel's, so a
// committed baseline stays meaningful on faster or slower hardware.
func BenchRNG(n int) uint64 {
	rng := NewRNG(1)
	var acc uint64
	for i := 0; i < n; i++ {
		acc += rng.Uint64()
	}
	return acc
}

// BenchParallelEpochBarrier measures the fixed cost of one epoch of the
// partitioned engine — horizon computation, worker dispatch, and the
// ordered mailbox merge — by circulating n messages around a 4-stop
// ring, one ring injection per epoch (every link shares one lookahead,
// so the horizon advances exactly one message spacing per barrier).
// This bounds how fine-grained a partition cut can afford to be: a cut
// only pays off when the work inside an epoch exceeds this overhead.
// The kernel pins the worker count to 2 for the duration so the number
// it reports is comparable across -sim-parallel settings and machines
// with different core counts.
func BenchParallelEpochBarrier(n int) uint64 {
	prev := Parallel()
	SetParallel(2)
	defer SetParallel(prev)

	const parts = 4
	const la = Microsecond
	eng := NewEngine(0xE90C)
	eng.SetWindow(la) // one message spacing per barrier: n epochs for n messages
	ps := make([]*Partition, parts)
	rings := make([]*Link, parts)
	var acc [parts]uint64
	sent := 0
	clock := Time(0)
	ps[0] = eng.AddPartition("ring0", 0, func(p *Partition, horizon Time) {
		for _, m := range p.Recv() {
			acc[0] = acc[0]*1099511628211 ^ m.Payload
		}
		for ; clock < horizon && sent < n; sent++ {
			p.Post(rings[0], Msg{At: clock + la, Payload: p.RNG().Uint64(), Aux: 1})
			clock += la
		}
		if sent == n {
			p.SetNext(MaxTime)
		} else {
			p.SetNext(clock)
		}
	})
	for i := 1; i < parts; i++ {
		i := i
		ps[i] = eng.AddPartition("ring", MaxTime, func(p *Partition, _ Time) {
			for _, m := range p.Recv() {
				acc[i] = acc[i]*1099511628211 ^ m.Payload
				if m.Aux < parts {
					p.Post(rings[i], Msg{At: m.At + la, Payload: m.Payload, Aux: m.Aux + 1})
				}
			}
		})
	}
	for i := 0; i < parts; i++ {
		rings[i] = eng.Connect(ps[i], ps[(i+1)%parts], la)
	}
	eng.Run()
	out := uint64(eng.Epochs())
	for _, a := range acc {
		out = out*1099511628211 ^ a
	}
	return out
}

// BenchZipf draws n values from the paper's YCSB-style skewed key
// distribution.
func BenchZipf(n int) uint64 {
	z := NewZipf(NewRNG(3), 1<<16, 0.99)
	var acc uint64
	for i := 0; i < n; i++ {
		acc += z.Next()
	}
	return acc
}
