package sim

import "container/heap"

// RequestFunc executes one simulated request issued by client at the
// given virtual time and returns its completion time. Implementations
// walk the request through the modeled resources.
type RequestFunc func(client int, issue Time) (done Time)

// Result summarizes a load-driver run.
type Result struct {
	Requests   int64
	Start      Time // first issue
	End        Time // last completion
	Latency    *Histogram
	ThinkTime  Duration
	Clients    int
	PerClient  int
	Throughput float64 // requests per (virtual) second
}

// ops/sec over the span from first issue to last completion.
func throughput(requests int64, start, end Time) float64 {
	span := end - start
	if span <= 0 {
		return 0
	}
	return float64(requests) / span.Seconds()
}

// clientHeap orders clients by next issue time (ties by id for
// determinism).
type clientEvent struct {
	next Time
	id   int
}

type clientHeap []clientEvent

func (h clientHeap) Len() int { return len(h) }
func (h clientHeap) Less(i, j int) bool {
	if h[i].next != h[j].next {
		return h[i].next < h[j].next
	}
	return h[i].id < h[j].id
}
func (h clientHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *clientHeap) Push(x any)   { *h = append(*h, x.(clientEvent)) }
func (h *clientHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ClosedLoop drives `clients` concurrent closed-loop clients, each
// issuing `perClient` back-to-back requests (a new request is issued
// the moment the previous one completes, plus think time). Requests
// are walked in global issue order.
type ClosedLoop struct {
	Clients   int
	PerClient int
	Think     Duration // per-client delay between completion and next issue
	Warmup    int      // per-client requests excluded from latency stats
	// Stagger offsets client i's first issue by i*Stagger, breaking the
	// synchronized-burst artifact of all clients starting at t=0 (real
	// load generators never phase-align hundreds of connections).
	Stagger Duration
	// Jitter adds a uniform random [0, Jitter) think delay per request,
	// preventing deterministic-latency lockstep between clients. The
	// stream is seeded deterministically (JitterSeed).
	Jitter     Duration
	JitterSeed uint64
}

// Run executes the closed loop over fn and returns aggregate results.
func (c ClosedLoop) Run(fn RequestFunc) *Result {
	if c.Clients <= 0 || c.PerClient <= 0 {
		return &Result{Latency: NewHistogram(0)}
	}
	res := &Result{
		Latency:   NewHistogram(0),
		Clients:   c.Clients,
		PerClient: c.PerClient,
		ThinkTime: c.Think,
		Start:     MaxTime,
	}
	issued := make([]int, c.Clients)
	var rng *RNG
	if c.Jitter > 0 {
		rng = NewRNG(c.JitterSeed + 0x5EED)
	}
	h := make(clientHeap, 0, c.Clients)
	for i := 0; i < c.Clients; i++ {
		h = append(h, clientEvent{next: Time(i) * c.Stagger, id: i})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		ev := heap.Pop(&h).(clientEvent)
		issue := ev.next
		done := fn(ev.id, issue)
		if done < issue {
			done = issue
		}
		issued[ev.id]++
		res.Requests++
		if issue < res.Start {
			res.Start = issue
		}
		if done > res.End {
			res.End = done
		}
		if issued[ev.id] > c.Warmup {
			res.Latency.Record(done - issue)
		}
		if issued[ev.id] < c.PerClient {
			next := done + c.Think
			if rng != nil {
				next += Time(rng.Uint64n(uint64(c.Jitter)))
			}
			heap.Push(&h, clientEvent{next: next, id: ev.id})
		}
	}
	res.Throughput = throughput(res.Requests, res.Start, res.End)
	return res
}

// OpenLoop issues requests at a fixed rate from `clients` independent
// sources, regardless of completions — useful for offered-load
// experiments such as a DMA engine streaming at a constant rate.
type OpenLoop struct {
	Clients  int
	PerCli   int
	Interval Duration // inter-arrival time per client
}

// Run executes the open loop over fn.
func (o OpenLoop) Run(fn RequestFunc) *Result {
	if o.Clients <= 0 || o.PerCli <= 0 {
		return &Result{Latency: NewHistogram(0)}
	}
	res := &Result{
		Latency:   NewHistogram(0),
		Clients:   o.Clients,
		PerClient: o.PerCli,
		Start:     MaxTime,
	}
	h := make(clientHeap, 0, o.Clients)
	for i := 0; i < o.Clients; i++ {
		h = append(h, clientEvent{next: 0, id: i})
	}
	heap.Init(&h)
	issued := make([]int, o.Clients)
	for h.Len() > 0 {
		ev := heap.Pop(&h).(clientEvent)
		done := fn(ev.id, ev.next)
		if done < ev.next {
			done = ev.next
		}
		issued[ev.id]++
		res.Requests++
		if ev.next < res.Start {
			res.Start = ev.next
		}
		if done > res.End {
			res.End = done
		}
		res.Latency.Record(done - ev.next)
		if issued[ev.id] < o.PerCli {
			heap.Push(&h, clientEvent{next: ev.next + o.Interval, id: ev.id})
		}
	}
	res.Throughput = throughput(res.Requests, res.Start, res.End)
	return res
}
