package sim

// RequestFunc executes one simulated request issued by client at the
// given virtual time and returns its completion time. Implementations
// walk the request through the modeled resources.
type RequestFunc func(client int, issue Time) (done Time)

// Result summarizes a load-driver run.
type Result struct {
	Requests   int64
	Start      Time // first issue
	End        Time // last completion
	Latency    *Histogram
	ThinkTime  Duration
	Clients    int
	PerClient  int
	Throughput float64 // requests per (virtual) second
}

// ops/sec over the span from first issue to last completion.
func throughput(requests int64, start, end Time) float64 {
	span := end - start
	if span <= 0 {
		return 0
	}
	return float64(requests) / span.Seconds()
}

// clientEvent orders clients by next issue time (ties by id for
// determinism).
type clientEvent struct {
	next Time
	id   int
}

// clientHeap is a typed min-heap over clientEvents. The load drivers
// pop and push one event per simulated request, so the container/heap
// version boxed (allocated) every request; the typed heap is
// allocation-free. init/push/pop perform the same sifts in the same
// order as container/heap, so the event order — and therefore every
// downstream placement decision — is unchanged.
type clientHeap []clientEvent

func (h clientHeap) less(i, j int) bool {
	if h[i].next != h[j].next {
		return h[i].next < h[j].next
	}
	return h[i].id < h[j].id
}

// init establishes the heap invariant (heap.Init).
func (h clientHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

// push appends ev and sifts it up (heap.Push).
func (h *clientHeap) push(ev clientEvent) {
	*h = append(*h, ev)
	j := len(*h) - 1
	s := *h
	for {
		i := (j - 1) / 2
		if i == j || !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

// pop removes and returns the minimum event (heap.Pop).
func (h *clientHeap) pop() clientEvent {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	s.down(0, n)
	ev := s[n]
	*h = s[:n]
	return ev
}

func (h clientHeap) down(i, n int) {
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h.less(j2, j) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// ClosedLoop drives `clients` concurrent closed-loop clients, each
// issuing `perClient` back-to-back requests (a new request is issued
// the moment the previous one completes, plus think time). Requests
// are walked in global issue order.
type ClosedLoop struct {
	Clients   int
	PerClient int
	Think     Duration // per-client delay between completion and next issue
	Warmup    int      // per-client requests excluded from latency stats
	// Stagger offsets client i's first issue by i*Stagger, breaking the
	// synchronized-burst artifact of all clients starting at t=0 (real
	// load generators never phase-align hundreds of connections).
	Stagger Duration
	// Jitter adds a uniform random [0, Jitter) think delay per request,
	// preventing deterministic-latency lockstep between clients. The
	// stream is seeded deterministically (JitterSeed).
	Jitter     Duration
	JitterSeed uint64
}

// Run executes the closed loop over fn and returns aggregate results.
func (c ClosedLoop) Run(fn RequestFunc) *Result {
	if c.Clients <= 0 || c.PerClient <= 0 {
		return &Result{Latency: NewHistogram(0)}
	}
	res := &Result{
		Latency:   NewHistogram(0),
		Clients:   c.Clients,
		PerClient: c.PerClient,
		ThinkTime: c.Think,
		Start:     MaxTime,
	}
	issued := make([]int, c.Clients)
	var rng *RNG
	if c.Jitter > 0 {
		rng = NewRNG(c.JitterSeed + 0x5EED)
	}
	h := make(clientHeap, 0, c.Clients)
	for i := 0; i < c.Clients; i++ {
		h = append(h, clientEvent{next: Time(i) * c.Stagger, id: i})
	}
	h.init()
	for len(h) > 0 {
		ev := h.pop()
		issue := ev.next
		done := fn(ev.id, issue)
		if done < issue {
			done = issue
		}
		issued[ev.id]++
		res.Requests++
		if issue < res.Start {
			res.Start = issue
		}
		if done > res.End {
			res.End = done
		}
		if issued[ev.id] > c.Warmup {
			res.Latency.Record(done - issue)
		}
		if issued[ev.id] < c.PerClient {
			next := done + c.Think
			if rng != nil {
				next += Time(rng.Uint64n(uint64(c.Jitter)))
			}
			h.push(clientEvent{next: next, id: ev.id})
		}
	}
	res.Throughput = throughput(res.Requests, res.Start, res.End)
	return res
}

// OpenLoop issues requests at a fixed rate from `clients` independent
// sources, regardless of completions — useful for offered-load
// experiments such as a DMA engine streaming at a constant rate.
type OpenLoop struct {
	Clients  int
	PerCli   int
	Interval Duration // inter-arrival time per client
	Warmup   int      // per-client requests excluded from latency stats
}

// Run executes the open loop over fn.
func (o OpenLoop) Run(fn RequestFunc) *Result {
	if o.Clients <= 0 || o.PerCli <= 0 {
		return &Result{Latency: NewHistogram(0)}
	}
	res := &Result{
		Latency:   NewHistogram(0),
		Clients:   o.Clients,
		PerClient: o.PerCli,
		Start:     MaxTime,
	}
	h := make(clientHeap, 0, o.Clients)
	for i := 0; i < o.Clients; i++ {
		h = append(h, clientEvent{next: 0, id: i})
	}
	h.init()
	issued := make([]int, o.Clients)
	for len(h) > 0 {
		ev := h.pop()
		done := fn(ev.id, ev.next)
		if done < ev.next {
			done = ev.next
		}
		issued[ev.id]++
		res.Requests++
		if ev.next < res.Start {
			res.Start = ev.next
		}
		if done > res.End {
			res.End = done
		}
		if issued[ev.id] > o.Warmup {
			res.Latency.Record(done - ev.next)
		}
		if issued[ev.id] < o.PerCli {
			h.push(clientEvent{next: ev.next + o.Interval, id: ev.id})
		}
	}
	res.Throughput = throughput(res.Requests, res.Start, res.End)
	return res
}
