package sim

import (
	"container/heap"
	"testing"
)

// linearResource is the pre-index placement algorithm, kept verbatim as
// the reference implementation: a flat age-ordered gap slice with an
// O(gaps) scan, O(n) slice-delete, O(n) copy on oldest-drop, and a
// container/heap server heap. gapTable must reproduce its (start, done)
// stream bit-for-bit on any input — equivalence is the invariant that
// keeps every figure byte-identical across the optimization.
type linearResource struct {
	overhead    Duration
	psPerByte   float64
	propagation Duration
	free        linearServerHeap
	gaps        []gap
}

type linearServerHeap []Time

func (h linearServerHeap) Len() int           { return len(h) }
func (h linearServerHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h linearServerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *linearServerHeap) Push(x any)        { *h = append(*h, x.(Time)) }
func (h *linearServerHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func newLinearResource(capacity int, overhead Duration, bytesPerSec float64, propagation Duration) *linearResource {
	r := &linearResource{overhead: overhead, propagation: propagation}
	if bytesPerSec > 0 {
		r.psPerByte = float64(Second) / bytesPerSec
	}
	r.free = make(linearServerHeap, capacity)
	heap.Init(&r.free)
	return r
}

func (r *linearResource) serviceTime(bytes int) Duration {
	return r.overhead + Duration(float64(bytes)*r.psPerByte)
}

func (r *linearResource) acquire(now Time, bytes int) (start, done Time) {
	occupy := r.serviceTime(bytes)
	if occupy == 0 {
		return now, now + r.propagation
	}
	start = r.place(now, occupy)
	return start, start + occupy + r.propagation
}

func (r *linearResource) occupy(now Time, dur Duration) (start, end Time) {
	if dur <= 0 {
		return now, now
	}
	start = r.place(now, dur)
	return start, start + dur
}

func (r *linearResource) place(now Time, occupy Duration) Time {
	best := -1
	var bestStart Time
	for i, g := range r.gaps {
		s := Max(now, g.start)
		if s+occupy <= g.end && (best < 0 || s < bestStart) {
			best, bestStart = i, s
		}
	}
	if best >= 0 {
		g := r.gaps[best]
		r.gaps = append(r.gaps[:best], r.gaps[best+1:]...)
		if bestStart > g.start {
			r.recordGap(g.start, bestStart)
		}
		if bestStart+occupy < g.end {
			r.recordGap(bestStart+occupy, g.end)
		}
		return bestStart
	}
	frontier := r.free[0]
	start := Max(now, frontier)
	if start > frontier {
		r.recordGap(frontier, start)
	}
	r.free[0] = start + occupy
	heap.Fix(&r.free, 0)
	return start
}

func (r *linearResource) recordGap(start, end Time) {
	if end <= start {
		return
	}
	if len(r.gaps) >= maxGaps {
		copy(r.gaps, r.gaps[1:])
		r.gaps = r.gaps[:len(r.gaps)-1]
	}
	r.gaps = append(r.gaps, gap{start: start, end: end})
}

// equivOp is one step of a generated workload.
type equivOp struct {
	now    Time
	bytes  int
	occupy Duration // > 0 selects Occupy instead of Acquire
}

// runEquivalence drives the indexed and the linear placement through
// the same op stream and fails on the first diverging (start, done)
// pair.
func runEquivalence(t *testing.T, capacity int, overhead Duration, bytesPerSec float64, propagation Duration, ops []equivOp) {
	t.Helper()
	indexed := NewResource("equiv", capacity, overhead, bytesPerSec, propagation)
	linear := newLinearResource(capacity, overhead, bytesPerSec, propagation)
	for i, op := range ops {
		var s1, d1, s2, d2 Time
		if op.occupy > 0 {
			s1, d1 = indexed.Occupy(op.now, op.occupy)
			s2, d2 = linear.occupy(op.now, op.occupy)
		} else {
			s1, d1 = indexed.Acquire(op.now, op.bytes)
			s2, d2 = linear.acquire(op.now, op.bytes)
		}
		if s1 != s2 || d1 != d2 {
			t.Fatalf("op %d (now=%v bytes=%d occupy=%v): indexed (%v,%v) != linear (%v,%v); live gaps=%d",
				i, op.now, op.bytes, op.occupy, s1, d1, s2, d2, indexed.gaps.len())
		}
	}
	if got, want := indexed.gaps.len(), len(linear.gaps); got != want {
		t.Fatalf("live gap count diverged: indexed %d, linear %d", got, want)
	}
}

// equivStressOps generates a seeded op stream whose arrival times jump
// forward (opening gaps), linger (backfilling them), and occasionally
// jump backward (an op of a later request reaching the resource at an
// earlier virtual time, the case backfilling exists for).
func equivStressOps(seed uint64, n int, jumpEvery, backEvery int) []equivOp {
	rng := NewRNG(seed)
	ops := make([]equivOp, n)
	now := Time(0)
	for i := range ops {
		switch {
		case jumpEvery > 0 && rng.Intn(jumpEvery) == 0:
			now += Duration(rng.Intn(int(20 * Microsecond)))
		case backEvery > 0 && rng.Intn(backEvery) == 0:
			now -= Duration(rng.Intn(int(5 * Microsecond)))
			if now < 0 {
				now = 0
			}
		default:
			now += Duration(rng.Intn(int(100 * Nanosecond)))
		}
		if rng.Intn(10) == 0 {
			ops[i] = equivOp{now: now, occupy: Duration(rng.Intn(int(2*Microsecond)) + 1)}
		} else {
			ops[i] = equivOp{now: now, bytes: rng.Intn(4096)}
		}
	}
	return ops
}

// TestPlacementEquivalenceStress is the randomized 1M-op equivalence
// run (scaled down under -race, where the linear reference's O(gaps)
// scans are ~15x slower).
func TestPlacementEquivalenceStress(t *testing.T) {
	n := 1_000_000
	if raceEnabled || testing.Short() {
		n = 120_000
	}
	for _, tc := range []struct {
		name        string
		capacity    int
		overhead    Duration
		bytesPerSec float64
		propagation Duration
		seed        uint64
	}{
		{"single-server-bw", 1, 0, 16e9, 300 * Nanosecond, 1},
		{"multi-server", 7, 30 * Nanosecond, 4e9, 0, 2},
		{"overhead-only", 3, 50 * Nanosecond, 0, 100 * Nanosecond, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ops := equivStressOps(tc.seed, n, 40, 200)
			runEquivalence(t, tc.capacity, tc.overhead, tc.bytesPerSec, tc.propagation, ops)
		})
	}
}

// TestPlacementEquivalenceGapSaturated pins the regime the gap cap was
// added for: the table sits at maxGaps live windows, every record
// evicts the oldest, and most lookups miss — the linear reference's
// worst case (full scan plus 64 KiB memmove per record).
func TestPlacementEquivalenceGapSaturated(t *testing.T) {
	n := 120_000
	if raceEnabled || testing.Short() {
		n = 20_000
	}
	rng := NewRNG(99)
	ops := make([]equivOp, 0, n)
	now := Time(0)
	for i := 0; i < n; i++ {
		// Long forward leaps open a gap on almost every op; tiny
		// occasional backfills keep the consume path exercised.
		now += Duration(rng.Intn(int(Microsecond)) + int(100*Nanosecond))
		if rng.Intn(20) == 0 {
			back := now - Duration(rng.Intn(int(50*Microsecond)))
			if back < 0 {
				back = 0
			}
			ops = append(ops, equivOp{now: back, bytes: rng.Intn(64)})
		} else {
			ops = append(ops, equivOp{now: now, bytes: rng.Intn(256) + 1})
		}
	}
	runEquivalence(t, 1, 0, 64e9, 0, ops)
}

// TestPlacementEquivalenceBoundaryPatterns hits the structural edges of
// gapTable: exact-fit consumes, zero-length remainders, eviction while
// splitting, and repeated Reset.
func TestPlacementEquivalenceBoundaryPatterns(t *testing.T) {
	// Exact fits: every backfill consumes a whole gap (no remainders).
	ops := []equivOp{
		{now: Microsecond, bytes: 1000},  // gap [0, 1us)
		{now: 0, bytes: 1000},            // consumes it exactly
		{now: 3 * Microsecond, bytes: 0}, // overhead-free
		{now: 2 * Microsecond, occupy: Microsecond},
	}
	runEquivalence(t, 1, 0, 1e9, 0, ops)

	// Eviction pressure with splits: fill past maxGaps, then split many.
	rng := NewRNG(7)
	long := make([]equivOp, 0, 3*maxGaps)
	now := Time(0)
	for i := 0; i < 2*maxGaps; i++ {
		now += 2 * Microsecond
		long = append(long, equivOp{now: now, bytes: 64})
	}
	for i := 0; i < maxGaps; i++ {
		long = append(long, equivOp{now: Duration(rng.Intn(int(now))), bytes: rng.Intn(512) + 1})
	}
	runEquivalence(t, 2, 10*Nanosecond, 8e9, 50*Nanosecond, long)
}

func TestResourceResetClearsGapTable(t *testing.T) {
	r := NewResource("x", 1, 0, 1e9, 0)
	r.Acquire(Microsecond, 100) // opens gap [0, 1us)
	if r.gaps.len() != 1 {
		t.Fatalf("live gaps=%d, want 1", r.gaps.len())
	}
	r.Reset()
	if r.gaps.len() != 0 {
		t.Fatalf("Reset left %d gaps", r.gaps.len())
	}
	// Post-reset behaviour matches a fresh resource.
	s, _ := r.Acquire(0, 100)
	if s != 0 {
		t.Fatalf("post-reset start=%v", s)
	}
}
