package sim

import (
	"testing"
)

// withParallel runs f at the given worker bound and restores the
// sequential default afterwards.
func withParallel(t *testing.T, n int, f func()) {
	t.Helper()
	SetParallel(n)
	defer SetParallel(1)
	f()
}

func TestFoldSeedMatchesFNVDiscipline(t *testing.T) {
	// Distinct subs from the same seed must give distinct streams, and
	// the fold must be stable (goldens depend on it).
	a, b := FoldSeed(0xABCD, 0), FoldSeed(0xABCD, 1)
	if a == b {
		t.Fatalf("FoldSeed collided: sub 0 and 1 both %#x", a)
	}
	if got := FoldSeed(0xABCD, 0); got != a {
		t.Fatalf("FoldSeed not stable: %#x vs %#x", got, a)
	}
	const prime64 = 1099511628211
	want := uint64(0xABCD)
	for i := 0; i < 8; i++ {
		want ^= (7 >> (8 * i)) & 0xff
		want *= prime64
	}
	if got := FoldSeed(0xABCD, 7); got != want {
		t.Fatalf("FoldSeed(0xABCD, 7) = %#x, want FNV-1a fold %#x", got, want)
	}
}

func TestEngineConnectRejectsZeroLookahead(t *testing.T) {
	eng := NewEngine(1)
	a := eng.AddPartition("a", 0, func(p *Partition, _ Time) { p.SetNext(MaxTime) })
	b := eng.AddPartition("b", MaxTime, func(*Partition, Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Connect accepted a zero lookahead")
		}
	}()
	eng.Connect(a, b, 0)
}

func TestEnginePostRejectsEarlyMessage(t *testing.T) {
	eng := NewEngine(1)
	var wire *Link
	a := eng.AddPartition("a", 0, func(p *Partition, _ Time) {
		// Delivery at t=5 violates guard(0) + lookahead(10).
		p.Post(wire, Msg{At: 5})
		p.SetNext(MaxTime)
	})
	b := eng.AddPartition("b", MaxTime, func(*Partition, Time) {})
	wire = eng.Connect(a, b, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("Post accepted a message earlier than clock+lookahead")
		}
	}()
	eng.Run()
}

// pingRun drives a two-partition ping-pong for n rounds and returns a
// fold of every delivery the pong side observed plus the epoch count.
func pingRun(workers, n int) (fold uint64, epochs int64) {
	SetParallel(workers)
	defer SetParallel(1)
	const la = Duration(100)
	eng := NewEngine(0x9106)
	var ab, ba *Link
	sent := 0
	clock := Time(0)
	a := eng.AddPartition("ping", 0, func(p *Partition, horizon Time) {
		for _, m := range p.Recv() {
			fold = fold*1099511628211 ^ uint64(m.At) ^ m.Payload
		}
		for ; clock < horizon && sent < n; sent++ {
			jitter := Duration(p.RNG().Uint64n(50))
			p.Post(ab, Msg{At: clock + la + jitter, Payload: uint64(sent)})
			clock += la
		}
		if sent == n {
			p.SetNext(MaxTime)
		} else {
			p.SetNext(clock)
		}
	})
	b := eng.AddPartition("pong", MaxTime, func(p *Partition, _ Time) {
		for _, m := range p.Recv() {
			p.Post(ba, Msg{At: m.At + la, Payload: m.Payload ^ p.RNG().Uint64()})
		}
	})
	ab = eng.Connect(a, b, la)
	ba = eng.Connect(b, a, la)
	eng.Run()
	return fold, eng.Epochs()
}

func TestEnginePingPongDeterministic(t *testing.T) {
	f1, e1 := pingRun(1, 400)
	if f1 == 0 {
		t.Fatal("ping-pong folded to zero — no messages observed")
	}
	for _, w := range []int{2, 4} {
		fw, ew := pingRun(w, 400)
		if fw != f1 || ew != e1 {
			t.Fatalf("workers=%d diverged: fold %#x/%d epochs vs %#x/%d", w, fw, ew, f1, e1)
		}
	}
}

func TestEngineWindowBoundsRunAhead(t *testing.T) {
	// A source with no in-links would otherwise run to completion in one
	// epoch; a window forces it to pace with its consumer.
	run := func(window Duration) int64 {
		eng := NewEngine(7)
		var wire *Link
		sent := 0
		t0 := Time(0)
		src := eng.AddPartition("src", 0, func(p *Partition, horizon Time) {
			for ; t0 < horizon && sent < 1000; sent++ {
				p.Post(wire, Msg{At: t0 + 10, Payload: uint64(sent)})
				t0 += 10
			}
			if sent == 1000 {
				t0 = MaxTime
			}
			p.SetNext(t0)
		})
		sink := eng.AddPartition("sink", MaxTime, func(p *Partition, _ Time) {
			_ = p.Recv()
		})
		wire = eng.Connect(src, sink, 10)
		eng.SetWindow(window)
		eng.Run()
		return eng.Epochs()
	}
	if unbounded := run(0); unbounded > 3 {
		t.Fatalf("unbounded run took %d epochs, expected source to finish in one burst", unbounded)
	}
	if windowed := run(100); windowed < 50 {
		t.Fatalf("windowed run took only %d epochs — window not limiting run-ahead", windowed)
	}
}

// stressRun builds a seeded 6-partition graph (ring plus chords, mixed
// lookaheads) where every partition generates jittered local events,
// forwards messages up to a hop budget, and folds every delivery it
// sees into a per-partition hash. Any ordering difference between
// worker counts — merge order at barriers, RNG stream mixing,
// run-ahead differences — changes the fold.
func stressRun(workers int) [6]uint64 {
	SetParallel(workers)
	defer SetParallel(1)
	const (
		parts  = 6
		events = 300
	)
	las := []Duration{70, 110, 90, 130, 50, 170, 60, 140}
	eng := NewEngine(0x57E55)
	var hashes [6]uint64
	ps := make([]*Partition, parts)
	outs := make([][]*Link, parts)
	for i := 0; i < parts; i++ {
		i := i
		sent := 0
		t0 := Time(0)
		ps[i] = eng.AddPartition("p", 0, func(p *Partition, horizon Time) {
			for _, m := range p.Recv() {
				hashes[i] = hashes[i]*1099511628211 ^ uint64(m.At)<<8 ^ m.Payload ^ m.Aux
				if m.Aux < 3 { // forward up to 3 hops
					l := outs[i][int(m.Payload%uint64(len(outs[i])))]
					p.Post(l, Msg{At: addSat(m.At, l.lookahead), Payload: m.Payload, Aux: m.Aux + 1})
				}
			}
			for ; t0 < horizon && sent < events; sent++ {
				l := outs[i][p.RNG().Intn(len(outs[i]))]
				jit := Duration(p.RNG().Uint64n(40))
				p.Post(l, Msg{At: t0 + l.lookahead + jit, Payload: p.RNG().Uint64()})
				t0 += Duration(20 + p.RNG().Uint64n(30))
			}
			if sent == events {
				t0 = MaxTime
			}
			p.SetNext(t0)
		})
	}
	k := 0
	for i := 0; i < parts; i++ {
		outs[i] = append(outs[i], eng.Connect(ps[i], ps[(i+1)%parts], las[k%len(las)]))
		k++
		outs[i] = append(outs[i], eng.Connect(ps[i], ps[(i+2)%parts], las[k%len(las)]))
		k++
	}
	eng.SetWindow(500)
	eng.Run()
	return hashes
}

func TestEngineMessageOrderingStress(t *testing.T) {
	base := stressRun(1)
	zero := true
	for _, h := range base {
		if h != 0 {
			zero = false
		}
	}
	if zero {
		t.Fatal("stress graph delivered no messages")
	}
	for _, w := range []int{2, 3, 4, 8} {
		if got := stressRun(w); got != base {
			t.Fatalf("workers=%d diverged from sequential:\n got %v\nwant %v", w, got, base)
		}
	}
}

func TestEnginePartitionRNGIndependentOfTopology(t *testing.T) {
	// The stream a partition sees depends only on (engine seed, id) —
	// adding links or partitions after it must not shift it.
	eng1 := NewEngine(42)
	p1 := eng1.AddPartition("x", 0, func(*Partition, Time) {})
	eng2 := NewEngine(42)
	p2a := eng2.AddPartition("x", 0, func(*Partition, Time) {})
	eng2.AddPartition("y", 0, func(*Partition, Time) {})
	if a, b := p1.RNG().Uint64(), p2a.RNG().Uint64(); a != b {
		t.Fatalf("partition 0 stream shifted by topology: %#x vs %#x", a, b)
	}
	if p1.ID() != 0 || p2a.Name() != "x" {
		t.Fatalf("partition identity accessors wrong: id=%d name=%q", p1.ID(), p2a.Name())
	}
}

func TestBenchParallelEpochBarrierDeterministic(t *testing.T) {
	base := BenchParallelEpochBarrier(200)
	withParallel(t, 4, func() {
		if got := BenchParallelEpochBarrier(200); got != base {
			t.Fatalf("barrier kernel diverged across worker counts: %#x vs %#x", got, base)
		}
	})
}
