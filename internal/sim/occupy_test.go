package sim

import "testing"

func TestOccupyBooksServer(t *testing.T) {
	r := NewResource("ctrl", 1, 5*Nanosecond, 0, 0)
	s, e := r.Occupy(0, 200*Nanosecond)
	if s != 0 || e != 200*Nanosecond {
		t.Fatalf("window [%v,%v)", s, e)
	}
	// A subsequent op queues behind the occupied window.
	start, _ := r.Acquire(0, 0)
	if start != 200*Nanosecond {
		t.Fatalf("start=%v, want 200ns", start)
	}
	if r.BusyTime() != 205*Nanosecond {
		t.Fatalf("busy=%v", r.BusyTime())
	}
}

func TestOccupyZeroIsFree(t *testing.T) {
	r := NewResource("ctrl", 1, 5*Nanosecond, 0, 0)
	s, e := r.Occupy(10*Nanosecond, 0)
	if s != 10*Nanosecond || e != 10*Nanosecond {
		t.Fatal("zero occupy must be a no-op")
	}
	if r.Ops() != 0 {
		t.Fatal("zero occupy counted")
	}
}

func TestBackfillUsesIdleGaps(t *testing.T) {
	// An op walked later but arriving earlier must slot into idle time
	// rather than queueing behind the frontier.
	r := NewResource("link", 1, 0, 1e9, 0)
	// Op A arrives late: creates an idle gap [0, 1us).
	r.Acquire(Microsecond, 100) // busy [1us, 1.1us)
	// Op B arrives at t=0 with 100ns of work: must backfill.
	start, done := r.Acquire(0, 100)
	if start != 0 || done != 100*Nanosecond {
		t.Fatalf("backfill start=%v done=%v", start, done)
	}
	// Op C arrives at t=0 needing 2us: cannot fit the gap, queues at
	// the frontier.
	start, _ = r.Acquire(0, 2000)
	if start != Microsecond+100*Nanosecond {
		t.Fatalf("oversized op start=%v", start)
	}
}

func TestBackfillSplitsGaps(t *testing.T) {
	r := NewResource("link", 1, 0, 1e9, 0)
	r.Acquire(Microsecond, 100) // gap [0, 1us)
	// Fill the middle of the gap.
	s, _ := r.Acquire(400*Nanosecond, 100) // busy [400,500)ns
	if s != 400*Nanosecond {
		t.Fatalf("mid-gap start=%v", s)
	}
	// Both remainders usable.
	s, _ = r.Acquire(0, 100)
	if s != 0 {
		t.Fatalf("left remainder start=%v", s)
	}
	s, _ = r.Acquire(500*Nanosecond, 100)
	if s != 500*Nanosecond {
		t.Fatalf("right remainder start=%v", s)
	}
}

func TestPipelinedStagesDoNotSerialize(t *testing.T) {
	// The regression behind the backfill change: a two-stage pipeline
	// sharing one link must sustain throughput set by occupancy, not by
	// stage-to-stage latency.
	link := NewResource("link", 1, 0, 16e9, 300*Nanosecond)
	var last Time
	const n = 1000
	for i := 0; i < n; i++ {
		// Stage 1 at t=0-ish, stage 2 chained 300ns later on the same
		// link.
		_, mid := link.Acquire(0, 64)
		_, done := link.Acquire(mid, 64)
		if done > last {
			last = done
		}
	}
	// 2000 ops x 4ns = 8us of occupancy; without backfill this would be
	// ~n x 300ns = 300us.
	if last > 20*Microsecond {
		t.Fatalf("pipeline serialized: last=%v", last)
	}
}
