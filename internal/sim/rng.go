package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64 seeding a xoshiro256** core). Every stochastic choice in
// the simulator draws from an explicitly seeded RNG so experiments are
// bit-for-bit reproducible.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf generates Zipf-distributed values in [0, n) with skew parameter
// theta in (0, 1) — the paper's KVS workloads use theta = 0.9/0.99
// YCSB-style skew. The implementation is the standard YCSB zipfian
// generator (Gray et al., "Quickly Generating Billion-Record Synthetic
// Databases"). Construction is O(n) to compute the harmonic
// normalization constant; Next is O(1).
type Zipf struct {
	rng    *RNG
	n      float64
	theta  float64
	alpha  float64
	zetaN  float64
	eta    float64
	thresh float64 // 1 + 0.5^theta
}

// NewZipf creates a Zipf generator over [0, n) with exponent theta in
// (0, 1). n must be >= 1. Item 0 is the hottest.
func NewZipf(rng *RNG, n uint64, theta float64) *Zipf {
	if n < 1 {
		panic("sim: Zipf with n < 1")
	}
	if theta <= 0 || theta >= 1 {
		panic("sim: Zipf theta must be in (0, 1)")
	}
	z := &Zipf{rng: rng, n: float64(n), theta: theta}
	zeta2 := zeta(2, theta)
	z.zetaN = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/z.n, 1-theta)) / (1 - zeta2/z.zetaN)
	z.thresh = 1 + math.Pow(0.5, theta)
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} i^-theta.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += math.Pow(1/float64(i), theta)
	}
	return sum
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 0
	}
	if uz < z.thresh {
		return 1
	}
	v := uint64(z.n * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= uint64(z.n) {
		v = uint64(z.n) - 1
	}
	return v
}
