package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceSingleServerSerialization(t *testing.T) {
	r := NewResource("link", 1, 10*Nanosecond, 0, 0)
	_, d1 := r.Acquire(0, 0)
	if d1 != 10*Nanosecond {
		t.Fatalf("first op done at %v, want 10ns", d1)
	}
	// Second op arriving at t=0 must queue behind the first.
	s2, d2 := r.Acquire(0, 0)
	if s2 != 10*Nanosecond || d2 != 20*Nanosecond {
		t.Fatalf("second op start=%v done=%v, want 10ns/20ns", s2, d2)
	}
	// An op arriving after the queue drains starts immediately.
	s3, _ := r.Acquire(100*Nanosecond, 0)
	if s3 != 100*Nanosecond {
		t.Fatalf("third op start=%v, want 100ns", s3)
	}
}

func TestResourceBandwidth(t *testing.T) {
	// 1 GB/s => 1000 bytes take 1us.
	r := NewResource("mem", 1, 0, 1e9, 0)
	_, done := r.Acquire(0, 1000)
	if done != Microsecond {
		t.Fatalf("1000B @1GB/s done at %v, want 1us", done)
	}
	if got := r.ServiceTime(500); got != 500*Nanosecond {
		t.Fatalf("ServiceTime(500) = %v, want 500ns", got)
	}
}

func TestResourcePropagationDoesNotOccupy(t *testing.T) {
	r := NewResource("wire", 1, 10*Nanosecond, 0, 500*Nanosecond)
	_, d1 := r.Acquire(0, 0)
	if d1 != 510*Nanosecond {
		t.Fatalf("done=%v, want 510ns", d1)
	}
	// The server frees at 10ns, not 510ns.
	s2, _ := r.Acquire(0, 0)
	if s2 != 10*Nanosecond {
		t.Fatalf("second start=%v, want 10ns (propagation must not occupy)", s2)
	}
}

func TestResourceMultiServerParallelism(t *testing.T) {
	r := NewResource("cores", 4, 100*Nanosecond, 0, 0)
	for i := 0; i < 4; i++ {
		_, done := r.Acquire(0, 0)
		if done != 100*Nanosecond {
			t.Fatalf("op %d done at %v, want 100ns (4 servers)", i, done)
		}
	}
	// Fifth op queues.
	s, _ := r.Acquire(0, 0)
	if s != 100*Nanosecond {
		t.Fatalf("fifth op start=%v, want 100ns", s)
	}
}

func TestResourceStats(t *testing.T) {
	r := NewResource("x", 2, 10*Nanosecond, 0, 0)
	r.Acquire(0, 100)
	r.Acquire(0, 200)
	if r.Ops() != 2 || r.Bytes() != 300 {
		t.Fatalf("ops=%d bytes=%d", r.Ops(), r.Bytes())
	}
	if r.BusyTime() != 20*Nanosecond {
		t.Fatalf("busy=%v", r.BusyTime())
	}
	if u := r.Utilization(10 * Nanosecond); u != 1.0 {
		t.Fatalf("utilization=%v, want 1.0", u)
	}
	r.Reset()
	if r.Ops() != 0 || r.BusyTime() != 0 || r.NextFree() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestResourceThroughputMatchesBandwidth(t *testing.T) {
	// Saturating a 10 GB/s resource with 64B ops must yield ~10 GB/s.
	r := NewResource("bw", 1, 0, 10e9, 0)
	var done Time
	n := 100000
	for i := 0; i < n; i++ {
		_, done = r.Acquire(0, 64)
	}
	gbps := float64(n*64) / done.Seconds() / 1e9
	if gbps < 9.99 || gbps > 10.01 {
		t.Fatalf("achieved %v GB/s, want ~10", gbps)
	}
}

func TestResourceMonotonicity(t *testing.T) {
	// Property: with a single server and a FIFO stream of arrivals with
	// non-decreasing times, completion times are non-decreasing and never
	// precede arrival. (With capacity > 1 a later small op may finish
	// before an earlier large one, which is correct behaviour.)
	f := func(gaps []uint8, sizes []uint8) bool {
		r := NewResource("p", 1, 5*Nanosecond, 1e9, 3*Nanosecond)
		now := Time(0)
		last := Time(0)
		for i := range gaps {
			now += Time(gaps[i]) * Nanosecond
			size := 0
			if i < len(sizes) {
				size = int(sizes[i])
			}
			start, done := r.Acquire(now, size)
			if start < now || done < start || done < last {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResourcePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewResource("bad", 0, 0, 0, 0)
}
