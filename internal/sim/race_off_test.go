//go:build !race

package sim

// raceEnabled scales down stress-test sizes when the race detector
// multiplies per-op cost.
const raceEnabled = false
