package sim

import (
	"testing"
)

func TestClosedLoopSingleClientSerial(t *testing.T) {
	// One client, fixed 10us service: throughput = 100k/s, latency 10us.
	res := ClosedLoop{Clients: 1, PerClient: 100}.Run(func(_ int, issue Time) Time {
		return issue + 10*Microsecond
	})
	if res.Requests != 100 {
		t.Fatalf("requests=%d", res.Requests)
	}
	if res.Latency.Mean() != 10*Microsecond {
		t.Fatalf("mean=%v", res.Latency.Mean())
	}
	if got := res.Throughput; got < 99000 || got > 101000 {
		t.Fatalf("throughput=%v, want ~100k", got)
	}
}

func TestClosedLoopScalesWithClients(t *testing.T) {
	// A resource with capacity 4 and 10us service: 1 client gets 100k/s,
	// 4+ clients saturate at 400k/s.
	run := func(clients int) float64 {
		r := NewResource("srv", 4, 10*Microsecond, 0, 0)
		res := ClosedLoop{Clients: clients, PerClient: 200}.Run(
			func(_ int, issue Time) Time {
				_, done := r.Acquire(issue, 0)
				return done
			})
		return res.Throughput
	}
	t1, t4, t8 := run(1), run(4), run(8)
	if t4 < 3.8*t1 {
		t.Fatalf("4 clients = %.0f, want ~4x of %.0f", t4, t1)
	}
	if t8 > 1.1*t4 {
		t.Fatalf("8 clients = %.0f should saturate near 4-client %.0f", t8, t4)
	}
}

func TestClosedLoopThinkTime(t *testing.T) {
	res := ClosedLoop{Clients: 1, PerClient: 10, Think: 90 * Microsecond}.Run(
		func(_ int, issue Time) Time { return issue + 10*Microsecond })
	// Period per request = 100us except no think after the last one.
	wantEnd := Time(9*100+10) * Microsecond
	if res.End != wantEnd {
		t.Fatalf("end=%v, want %v", res.End, wantEnd)
	}
}

func TestClosedLoopWarmupExcluded(t *testing.T) {
	res := ClosedLoop{Clients: 2, PerClient: 10, Warmup: 5}.Run(
		func(_ int, issue Time) Time { return issue + Microsecond })
	if res.Latency.Count() != 10 { // (10-5) per client x 2
		t.Fatalf("recorded=%d, want 10", res.Latency.Count())
	}
	if res.Requests != 20 {
		t.Fatalf("requests=%d, want 20", res.Requests)
	}
}

func TestClosedLoopDeterminism(t *testing.T) {
	run := func() (float64, Time) {
		r := NewResource("x", 2, 3*Microsecond, 0, 0)
		res := ClosedLoop{Clients: 5, PerClient: 50}.Run(
			func(_ int, issue Time) Time {
				_, done := r.Acquire(issue, 0)
				return done
			})
		return res.Throughput, res.Latency.P99()
	}
	tp1, p1 := run()
	tp2, p2 := run()
	if tp1 != tp2 || p1 != p2 {
		t.Fatal("closed loop must be deterministic")
	}
}

func TestClosedLoopEmpty(t *testing.T) {
	res := ClosedLoop{}.Run(func(_ int, issue Time) Time { return issue })
	if res.Requests != 0 {
		t.Fatal("zero-config run should do nothing")
	}
}

func TestOpenLoopFixedRate(t *testing.T) {
	// One source at 1us interval; service 10us: arrivals do not wait for
	// completions, so queueing builds at the resource.
	r := NewResource("srv", 1, 10*Microsecond, 0, 0)
	res := OpenLoop{Clients: 1, PerCli: 100, Interval: Microsecond}.Run(
		func(_ int, issue Time) Time {
			_, done := r.Acquire(issue, 0)
			return done
		})
	// Last arrival at 99us; all 100 services take 1000us.
	if res.End != 1000*Microsecond {
		t.Fatalf("end=%v, want 1000us", res.End)
	}
	// Latency must grow over time: p99 >> mean of earliest requests.
	if res.Latency.Max() <= res.Latency.Min() {
		t.Fatal("open loop overload should grow queueing latency")
	}
}

func TestOpenLoopWarmupExcluded(t *testing.T) {
	// Mirror of TestClosedLoopWarmupExcluded: the first Warmup requests
	// per client carry cold-start latency and must not pollute the
	// distribution, while Requests still counts them.
	cold := 0
	res := OpenLoop{Clients: 2, PerCli: 10, Interval: Microsecond, Warmup: 3}.Run(
		func(_ int, issue Time) Time {
			cold++
			if cold <= 6 { // both clients' first 3 requests
				return issue + 100*Microsecond
			}
			return issue + Microsecond
		})
	if res.Latency.Count() != 14 { // (10-3) per client x 2
		t.Fatalf("recorded=%d, want 14", res.Latency.Count())
	}
	if res.Requests != 20 {
		t.Fatalf("requests=%d, want 20", res.Requests)
	}
	if res.Latency.Max() != Microsecond {
		t.Fatalf("max=%v, cold-start samples leaked past warmup", res.Latency.Max())
	}
}

func TestOpenLoopWarmupDefaultUnchanged(t *testing.T) {
	// Zero value keeps the pre-Warmup behaviour: every sample recorded.
	res := OpenLoop{Clients: 1, PerCli: 5, Interval: Microsecond}.Run(
		func(_ int, issue Time) Time { return issue + Microsecond })
	if res.Latency.Count() != 5 {
		t.Fatalf("recorded=%d, want 5", res.Latency.Count())
	}
}

func TestOpenLoopCompletionClamped(t *testing.T) {
	res := OpenLoop{Clients: 1, PerCli: 3, Interval: Microsecond}.Run(
		func(_ int, issue Time) Time { return issue - Microsecond }) // buggy fn
	if res.Latency.Min() < 0 {
		t.Fatal("negative latency must be clamped")
	}
	_ = res
}
