package sim

// Pipeline is the engine's index-domain mode (DESIGN.md §12): some
// partitions of a simulation are not separated by wire latency but by
// *data flow* — a workload generator whose k-th item is consumed by the
// k-th request in walk order regardless of simulated time. For those,
// sequence position is the clock and the window is the lookahead: the
// producer may run at most W items ahead of the consumer, so producing
// item k needs no knowledge the consumer hasn't already published.
//
// Items live in a fixed ring of W slots reused in sequence order, which
// keeps the §8 scratch-ownership discipline: produce(k, slot) refills a
// slot in place, and the pointer returned by Next is valid until the
// next call to Next. Progress is exchanged as batched watermarks over
// buffered channels (one channel op per B items, not per item), since a
// per-item handoff would cost more than the work it overlaps.
//
// Determinism: a single producer invokes produce(0), produce(1), ... in
// order, exactly the sequence the consumer would have run inline, so
// any stateful generator behind produce (RNG streams, zipf draws) sees
// the same call sequence at every worker count. With Parallel() == 1
// there is no producer goroutine at all: Next produces on demand on the
// calling goroutine — byte-for-byte today's sequential loop.
type Pipeline[T any] struct {
	slots   []T
	produce func(k int, slot *T)
	n       int
	window  int
	batch   int
	inline  bool

	next    int // next sequence index the consumer will take
	readyWm int // items [0, readyWm) are produced and published
	ready   chan int
	free    chan int
	stop    chan struct{}
	closed  bool
}

// NewPipeline streams n items through produce with a ring of window
// slots and watermark batches of batch items. window is clamped to at
// least 2*batch so the producer is never stalled by the slot the
// consumer is still reading. Close must be called (defer it) unless the
// pipeline is fully drained.
func NewPipeline[T any](n, window, batch int, produce func(k int, slot *T)) *Pipeline[T] {
	if batch < 1 {
		batch = 1
	}
	if window < 2*batch {
		window = 2 * batch
	}
	p := &Pipeline[T]{
		slots:   make([]T, window),
		produce: produce,
		n:       n,
		window:  window,
		batch:   batch,
	}
	// A parallel producer only pays off when there is enough stream to
	// amortize the goroutine and its channel traffic.
	if Parallel() <= 1 || n <= 2*batch {
		p.inline = true
		return p
	}
	p.ready = make(chan int, window/batch+2)
	p.free = make(chan int, n/batch+2)
	p.stop = make(chan struct{})
	go p.run()
	return p
}

// run is the producer: fill slots in sequence order, never more than
// window ahead of the consumer's published free watermark, publishing a
// ready watermark every batch items. Channel sends synchronize slot
// memory: a slot is only rewritten after the consumer's free watermark
// proves it has moved past it.
func (p *Pipeline[T]) run() {
	freeWm := 0 // items [0, freeWm) are consumed; slots reusable up to freeWm+window
	for k := 0; k < p.n; k++ {
		for k >= freeWm+p.window {
			select {
			case freeWm = <-p.free:
			case <-p.stop:
				return
			}
		}
		p.produce(k, &p.slots[k%p.window])
		if (k+1)%p.batch == 0 || k+1 == p.n {
			select {
			case p.ready <- k + 1:
			case <-p.stop:
				return
			}
		}
	}
}

// Next returns item `next` of the stream. The pointer stays valid until
// the following Next call returns its successor (the free watermark
// always trails the held slot by one, so the ring cannot reuse it
// earlier). Panics when the stream is over-drained — the caller sized n
// to the exact request count.
func (p *Pipeline[T]) Next() *T {
	idx := p.next
	if idx >= p.n {
		panic("sim: pipeline drained past its item count")
	}
	p.next++
	slot := &p.slots[idx%p.window]
	if p.inline {
		p.produce(idx, slot)
		return slot
	}
	if idx > 0 && idx%p.batch == 0 {
		// Publish idx-1, not idx: the pointer handed out for item idx-1
		// remains valid until this call returns its successor, so its
		// slot is not yet reusable.
		p.free <- idx - 1
	}
	for p.readyWm <= idx {
		p.readyWm = <-p.ready
	}
	return slot
}

// Close releases the producer goroutine. Safe to call multiple times
// and after a full drain; required when the consumer stops early (a
// panic unwinding through the measurement loop must not leak a blocked
// producer).
func (p *Pipeline[T]) Close() {
	if p.inline || p.closed {
		return
	}
	p.closed = true
	close(p.stop)
}
