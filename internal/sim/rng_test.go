package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(99)
	const buckets, n = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(1000)
	seen := make([]bool, 1000)
	for _, v := range p {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(5)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatal("shuffle lost elements")
	}
	_ = orig
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRNG(123)
	const n = 10000
	z := NewZipf(r, n, 0.99)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= n {
			t.Fatalf("zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 must be far hotter than the median item, and the top-1%
	// of items must absorb a large share of accesses for theta=0.99.
	if counts[0] < draws/100 {
		t.Errorf("hottest item got %d draws, expected heavy skew", counts[0])
	}
	topShare := 0
	for k, c := range counts {
		if k < n/100 {
			topShare += c
		}
	}
	if float64(topShare)/draws < 0.5 {
		t.Errorf("top 1%% of keys got %.2f of draws, want > 0.5 under theta=0.99",
			float64(topShare)/draws)
	}
}

func TestZipfUniformLikeTail(t *testing.T) {
	// Low theta approaches uniform: top 1% should receive close to ~1-10%.
	r := NewRNG(77)
	z := NewZipf(r, 10000, 0.01)
	const draws = 100000
	top := 0
	for i := 0; i < draws; i++ {
		if z.Next() < 100 {
			top++
		}
	}
	if float64(top)/draws > 0.1 {
		t.Errorf("theta=0.01 top-1%% share %.3f, want near uniform", float64(top)/draws)
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(1)
	for _, bad := range []float64{0, 1, 1.5, -0.2} {
		func() {
			defer func() { recover() }()
			NewZipf(r, 10, bad)
			t.Errorf("NewZipf(theta=%v) did not panic", bad)
		}()
	}
}
