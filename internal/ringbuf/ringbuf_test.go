package ringbuf

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"rambda/internal/coherence"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/sim"
)

// memTransport is a zero-latency functional transport for unit tests.
type memTransport struct {
	space *memspace.Space
	last  sim.Time
}

func (m *memTransport) Deliver(now sim.Time, entryAddr memspace.Addr, entry []byte, ptrAddr memspace.Addr, ptrVal uint32) sim.Time {
	m.space.Write(entryAddr, entry)
	if ptrAddr != 0 {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], ptrVal)
		m.space.Write(ptrAddr, b[:])
	}
	m.last = now + sim.Microsecond
	return m.last
}

func TestLayoutGeometry(t *testing.T) {
	l := NewLayout(memspace.Range{Base: 0x1000, Size: 1024}, 8)
	if l.EntrySize != 128 || l.MaxPayload() != 123 {
		t.Fatalf("entrySize=%d maxPayload=%d", l.EntrySize, l.MaxPayload())
	}
	if l.EntryAddr(0) != 0x1000 || l.EntryAddr(1) != 0x1080 {
		t.Fatal("entry addressing")
	}
	if l.EntryAddr(8) != l.EntryAddr(0) {
		t.Fatal("entry addressing must wrap")
	}
}

func TestLayoutPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero entries", func() { NewLayout(memspace.Range{Size: 64}, 0) })
	mustPanic("tiny entries", func() { NewLayout(memspace.Range{Size: 16}, 4) })
	l := NewLayout(memspace.Range{Base: 0x1000, Size: 1024}, 8)
	mustPanic("oversize payload", func() { l.Encode(make([]byte, 124)) })
}

func TestRingReadResetCycle(t *testing.T) {
	space := memspace.New()
	reg := space.Alloc("ring", 1024, memspace.KindDRAM)
	ring := NewRing(space, NewLayout(reg.Range, 8))
	if _, ok := ring.ReadEntry(0); ok {
		t.Fatal("fresh ring must be empty")
	}
	space.Write(ring.EntryAddr(3), ring.Encode([]byte("msg")))
	got, ok := ring.ReadEntry(3)
	if !ok || string(got) != "msg" {
		t.Fatalf("got %q ok=%v", got, ok)
	}
	ring.ResetEntry(3)
	if _, ok := ring.ReadEntry(3); ok {
		t.Fatal("reset entry must be invalid")
	}
}

func newConnPair(t *testing.T, entries int, usePtr bool) (*Conn, *ServerConn, *PointerBuffer, *memspace.Space) {
	t.Helper()
	space := memspace.New() // single space standing in for both machines
	reqReg := space.Alloc("req", uint64(entries*128), memspace.KindDRAM)
	respReg := space.Alloc("resp", uint64(entries*128), memspace.KindDRAM)
	tr := &memTransport{space: space}

	var pb *PointerBuffer
	var ptrAddr memspace.Addr
	if usePtr {
		preg := space.Alloc("ptr", 64, memspace.KindDRAM)
		pb = NewPointerBuffer(space, preg.Range, 16)
		ptrAddr = pb.Addr(0)
	}
	reqLayout := NewLayout(reqReg.Range, entries)
	respLayout := NewLayout(respReg.Range, entries)
	client := NewConn(reqLayout, NewRing(space, respLayout), tr, ptrAddr)
	server := NewServerConn(NewRing(space, reqLayout), respLayout, tr)
	return client, server, pb, space
}

func TestRequestResponseRoundTrip(t *testing.T) {
	client, server, _, _ := newConnPair(t, 8, false)

	at := client.Send(0, []byte("get k1"))
	if at <= 0 {
		t.Fatal("send must advance time")
	}
	payload, idx, ok := server.NextRequest()
	if !ok || string(payload) != "get k1" {
		t.Fatalf("server saw %q ok=%v", payload, ok)
	}
	server.Complete(idx)
	server.Respond(at, []byte("v1"))

	resp, ok := client.PollResponse()
	if !ok || string(resp) != "v1" {
		t.Fatalf("client saw %q ok=%v", resp, ok)
	}
	if client.Outstanding() != 0 {
		t.Fatal("credit not returned")
	}
	if client.Sent() != 1 || client.Received() != 1 || server.Served() != 1 {
		t.Fatal("counters")
	}
}

func TestCreditFlowControl(t *testing.T) {
	client, server, _, _ := newConnPair(t, 4, false)
	for i := 0; i < 4; i++ {
		if !client.CanSend() {
			t.Fatalf("credit exhausted at %d", i)
		}
		client.Send(0, []byte{byte(i)})
	}
	if client.CanSend() {
		t.Fatal("ring full: CanSend must be false")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Send past credit must panic")
			}
		}()
		client.Send(0, []byte("x"))
	}()
	// Drain one and the credit returns.
	_, idx, _ := server.NextRequest()
	server.Complete(idx)
	server.Respond(0, []byte("r"))
	if _, ok := client.PollResponse(); !ok {
		t.Fatal("response missing")
	}
	if !client.CanSend() {
		t.Fatal("credit must return after response")
	}
}

func TestOrderPreservedAcrossWrap(t *testing.T) {
	client, server, _, _ := newConnPair(t, 4, false)
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			client.Send(0, []byte{byte(round), byte(i)})
		}
		for i := 0; i < 4; i++ {
			payload, idx, ok := server.NextRequest()
			if !ok {
				t.Fatalf("round %d missing request %d", round, i)
			}
			if payload[0] != byte(round) || payload[1] != byte(i) {
				t.Fatalf("out of order: %v", payload)
			}
			server.Complete(idx)
			server.Respond(0, payload)
		}
		for i := 0; i < 4; i++ {
			resp, ok := client.PollResponse()
			if !ok || resp[1] != byte(i) {
				t.Fatalf("response order: %v ok=%v", resp, ok)
			}
		}
	}
}

func TestOutOfOrderCompletePanics(t *testing.T) {
	client, server, _, _ := newConnPair(t, 4, false)
	client.Send(0, []byte("a"))
	client.Send(0, []byte("b"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	server.Complete(1) // head is 0
}

func TestPointerBufferIncrements(t *testing.T) {
	client, _, pb, _ := newConnPair(t, 8, true)
	for i := 1; i <= 5; i++ {
		client.Send(0, []byte("x"))
		if got := pb.Read(0); got != uint32(i) {
			t.Fatalf("pointer slot = %d after %d sends", got, i)
		}
	}
	if slot, ok := pb.SlotFor(pb.Addr(3)); !ok || slot != 3 {
		t.Fatal("SlotFor")
	}
	if _, ok := pb.SlotFor(0x1); ok {
		t.Fatal("SlotFor outside range")
	}
}

func TestPointerBufferBounds(t *testing.T) {
	space := memspace.New()
	reg := space.Alloc("ptr", 64, memspace.KindDRAM)
	mustPanic := func(f func()) {
		defer func() { recover() }()
		f()
		t.Fatal("expected panic")
	}
	mustPanic(func() { NewPointerBuffer(space, reg.Range, 17) })
	pb := NewPointerBuffer(space, reg.Range, 16)
	mustPanic(func() { pb.Addr(16) })
	if pb.Slots() != 16 {
		t.Fatal("slots")
	}
}

func TestLocalTransportTriggersCoherence(t *testing.T) {
	space := memspace.New()
	reg := space.Alloc("req", 1024, memspace.KindDRAM)
	mem := &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM("dram", 6, 120e9, 90*sim.Nanosecond),
		LLC:   memdev.NewLLC("llc", 300e9, 20*sim.Nanosecond),
	}
	coh := coherence.NewDomain()
	signals := 0
	coh.SetSnooper(coherence.AgentAccel, func(coherence.Signal) { signals++ })
	coh.Pin(coherence.AgentAccel, reg.Range)

	tr := &LocalTransport{Space: space, Mem: mem, Coh: coh, Agent: coherence.AgentCPU}
	l := NewLayout(reg.Range, 8)
	done := tr.Deliver(0, l.EntryAddr(0), l.Encode([]byte("intra")), 0, 0)
	if done <= 0 {
		t.Fatal("local delivery must charge LLC time")
	}
	if signals != 1 {
		t.Fatalf("coherence signals=%d, want 1", signals)
	}
	ring := NewRing(space, l)
	payload, ok := ring.ReadEntry(0)
	if !ok || string(payload) != "intra" {
		t.Fatalf("payload=%q", payload)
	}
}

func TestConnPropertySendPollConservation(t *testing.T) {
	// Property: for any interleaving of sends (when credit allows) and
	// full server drains, outstanding == sent - received and never
	// exceeds ring size.
	f := func(ops []bool) bool {
		client, server, _, _ := newConnPair(t, 4, false)
		for _, send := range ops {
			if send && client.CanSend() {
				client.Send(0, []byte("m"))
			} else {
				if payload, idx, ok := server.NextRequest(); ok {
					server.Complete(idx)
					server.Respond(0, payload)
					if _, ok := client.PollResponse(); !ok {
						return false
					}
				}
			}
			if client.Outstanding() < 0 || client.Outstanding() > 4 {
				return false
			}
			if int64(client.Outstanding()) != client.Sent()-client.Received() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	l := NewLayout(memspace.Range{Base: 0x1000, Size: 8192}, 8)
	f := func(payload []byte) bool {
		if len(payload) > l.MaxPayload() {
			payload = payload[:l.MaxPayload()]
		}
		e := l.Encode(payload)
		if e[0] != 1 {
			return false
		}
		n := binary.LittleEndian.Uint32(e[1:5])
		return int(n) == len(payload) && bytes.Equal(e[HeaderBytes:], payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
