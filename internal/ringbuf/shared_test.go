package ringbuf

import (
	"testing"

	"rambda/internal/sim"
)

func newShared(t *testing.T) (*SharedConn, *ServerConn) {
	t.Helper()
	client, server, _, _ := newConnPair(t, 8, false)
	return NewSharedConn(client, 50*sim.Nanosecond), server
}

func TestSharedConnRoutesResponsesToThreads(t *testing.T) {
	sc, server := newShared(t)
	// Three threads interleave sends.
	for i, tid := range []int{7, 3, 9} {
		sc.Send(0, tid, []byte{byte(i)})
	}
	if sc.Outstanding() != 3 {
		t.Fatalf("outstanding=%d", sc.Outstanding())
	}
	// Server drains in order.
	for i := 0; i < 3; i++ {
		payload, idx, ok := server.NextRequest()
		if !ok || payload[0] != byte(i) {
			t.Fatalf("server order broken at %d", i)
		}
		server.Complete(idx)
		server.Respond(0, payload)
	}
	// Responses come back to the right threads, FIFO.
	for i, want := range []int{7, 3, 9} {
		tid, payload, ok := sc.PollResponse()
		if !ok || tid != want || payload[0] != byte(i) {
			t.Fatalf("response %d routed to %d (payload %v)", i, tid, payload)
		}
	}
	if sc.Outstanding() != 0 {
		t.Fatal("outstanding after drain")
	}
}

func TestSharedConnDispatcherSerializes(t *testing.T) {
	sc, _ := newShared(t)
	// Two sends at t=0: the second must queue behind the 50ns handoff.
	d1 := sc.Send(0, 1, []byte("a"))
	d2 := sc.Send(0, 2, []byte("b"))
	if d2 < d1+50*sim.Nanosecond {
		t.Fatalf("dispatcher must serialize: %v then %v", d1, d2)
	}
}

func TestSharedConnRespectsCredits(t *testing.T) {
	sc, server := newShared(t)
	for i := 0; i < 8; i++ {
		if !sc.CanSend() {
			t.Fatalf("credit exhausted at %d", i)
		}
		sc.Send(0, i, []byte("x"))
	}
	if sc.CanSend() {
		t.Fatal("full shared ring must refuse sends")
	}
	payload, idx, _ := server.NextRequest()
	server.Complete(idx)
	server.Respond(0, payload)
	if _, _, ok := sc.PollResponse(); !ok {
		t.Fatal("response missing")
	}
	if !sc.CanSend() {
		t.Fatal("credit must return")
	}
}

func TestSharedConnPollOnEmpty(t *testing.T) {
	sc, _ := newShared(t)
	if _, _, ok := sc.PollResponse(); ok {
		t.Fatal("empty poll must report nothing")
	}
	if sc.Stats() == "" {
		t.Fatal("stats")
	}
}
