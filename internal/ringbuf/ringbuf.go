// Package ringbuf implements RAMBDA's unified communication abstraction
// (paper Sec. III-A): lockless request/response ring buffer pairs used
// identically for inter-machine communication (filled by one-sided RDMA
// writes) and intra-machine CPU↔accelerator communication (filled by
// coherent loads/stores). Flow control is credit-based: the producer
// tracks the request ring's tail and the response ring's head locally
// and never overruns in-flight entries, so every message needs exactly
// one network trip and no atomics.
//
// The package also provides the pointer buffer (paper Fig. 3c): a dense
// array of 4-byte monotonically increasing counters, one per ring, that
// serves as a compact cpoll region when rings are too large to pin.
package ringbuf

import (
	"encoding/binary"
	"fmt"

	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/sim"
)

// HeaderBytes is the per-entry framing: 1 valid byte + 4 length bytes.
const HeaderBytes = 5

// Transport delivers a message (and optionally a pointer-buffer update)
// into a target machine's memory. The RDMA implementation posts the two
// writes as contiguous WQEs under one batched doorbell (paper
// Sec. III-B); the local implementation is a coherent store.
type Transport interface {
	// Deliver writes entry at entryAddr and, when ptrAddr is nonzero,
	// the 4-byte little-endian ptrVal at ptrAddr. It returns the time
	// at which the writes are visible at the destination.
	Deliver(now sim.Time, entryAddr memspace.Addr, entry []byte, ptrAddr memspace.Addr, ptrVal uint32) sim.Time
}

// Layout describes a ring's placement so a remote producer can compute
// entry addresses without touching the owner's memory (the descriptors
// are exchanged at connection setup, like rkeys).
type Layout struct {
	Range      memspace.Range
	NumEntries int
	EntrySize  int
}

// NewLayout divides a region into fixed-size entries.
func NewLayout(r memspace.Range, entries int) Layout {
	if entries <= 0 {
		panic("ringbuf: entries must be positive")
	}
	es := int(r.Size) / entries
	if es <= HeaderBytes {
		panic(fmt.Sprintf("ringbuf: entry size %d too small for header", es))
	}
	return Layout{Range: r, NumEntries: entries, EntrySize: es}
}

// EntryAddr returns the address of entry i.
func (l Layout) EntryAddr(i int) memspace.Addr {
	return l.Range.Base + memspace.Addr(i%l.NumEntries*l.EntrySize)
}

// MaxPayload is the largest message an entry can carry.
func (l Layout) MaxPayload() int { return l.EntrySize - HeaderBytes }

// Encode frames a payload into entry wire format in a fresh buffer.
func (l Layout) Encode(payload []byte) []byte {
	return l.AppendEncode(nil, payload)
}

// AppendEncode frames a payload onto dst and returns the extended
// slice; reusing the returned buffer (re-sliced to [:0]) makes
// steady-state framing allocation-free.
func (l Layout) AppendEncode(dst, payload []byte) []byte {
	if len(payload) > l.MaxPayload() {
		panic(fmt.Sprintf("ringbuf: payload %d exceeds max %d", len(payload), l.MaxPayload()))
	}
	var hdr [HeaderBytes]byte
	hdr[0] = 1
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Ring is the owner-side accessor for a ring living in local memory.
type Ring struct {
	Layout
	space *memspace.Space
}

// NewRing builds the owner-side view of a ring.
func NewRing(space *memspace.Space, l Layout) *Ring {
	return &Ring{Layout: l, space: space}
}

// ReadEntry returns the payload at index i (freshly allocated) if the
// entry is valid.
//
// Deprecated: use ReadEntryAppend with a reusable buffer (the primary
// consume API), or EntryValid when only the valid bit matters.
func (r *Ring) ReadEntry(i int) ([]byte, bool) {
	return r.ReadEntryAppend(nil, i)
}

// EntryValid reports whether entry i holds an unconsumed message,
// without touching the payload — the allocation-free validity probe
// notification paths use.
func (r *Ring) EntryValid(i int) bool {
	return r.space.Slice(r.EntryAddr(i), 1)[0] != 0
}

// ReadEntryAppend appends the payload at index i onto dst, returning
// the extended slice. Reusing the returned buffer across polls makes
// the steady-state consume path allocation-free.
func (r *Ring) ReadEntryAppend(dst []byte, i int) ([]byte, bool) {
	addr := r.EntryAddr(i)
	hdr := r.space.Slice(addr, HeaderBytes)
	if hdr[0] == 0 {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint32(hdr[1:5]))
	if n > r.MaxPayload() {
		panic(fmt.Sprintf("ringbuf: corrupt entry %d length %d", i, n))
	}
	return append(dst, r.space.Slice(addr+HeaderBytes, n)...), true
}

// ResetEntry clears entry i's valid byte (paper: the consumer "reset[s]
// the buffer entry to 0" after processing, which also reacquires the
// cacheline for cpoll).
func (r *Ring) ResetEntry(i int) {
	r.space.Slice(r.EntryAddr(i), 1)[0] = 0
}

// PointerBuffer is the dense cpoll region for large-scale setups: entry
// i holds a little-endian uint32 counter of messages ever written to
// ring i (paper Fig. 3c). Producers increment it alongside each message
// write; the cpoll checker snoops only this compact array.
type PointerBuffer struct {
	space *memspace.Space
	r     memspace.Range
	n     int
}

// PtrEntryBytes is the size of one pointer-buffer slot.
const PtrEntryBytes = 4

// NewPointerBuffer wraps a region as a pointer buffer with n slots.
func NewPointerBuffer(space *memspace.Space, r memspace.Range, n int) *PointerBuffer {
	if uint64(n*PtrEntryBytes) > r.Size {
		panic("ringbuf: pointer buffer region too small")
	}
	return &PointerBuffer{space: space, r: r, n: n}
}

// Range returns the region to register as the cpoll region.
func (p *PointerBuffer) Range() memspace.Range { return p.r }

// Slots returns the number of slots.
func (p *PointerBuffer) Slots() int { return p.n }

// Addr returns the address of slot i.
func (p *PointerBuffer) Addr(i int) memspace.Addr {
	if i < 0 || i >= p.n {
		panic("ringbuf: pointer buffer slot out of range")
	}
	return p.r.Base + memspace.Addr(i*PtrEntryBytes)
}

// Read returns slot i's counter.
func (p *PointerBuffer) Read(i int) uint32 {
	return binary.LittleEndian.Uint32(p.space.Slice(p.Addr(i), PtrEntryBytes))
}

// SlotFor maps an address inside the buffer back to its slot index.
func (p *PointerBuffer) SlotFor(addr memspace.Addr) (int, bool) {
	if !p.r.Contains(addr) {
		return 0, false
	}
	return int(addr-p.r.Base) / PtrEntryBytes, true
}

// Conn is the producer (client) side of a request/response pair: it
// writes requests into the server-side request ring through a Transport
// and consumes responses from its local response ring.
type Conn struct {
	Req  Layout // request ring in the server's memory
	Resp *Ring  // response ring in local memory

	t Transport

	// Pointer-buffer coupling (nil ptr means direct-pinned cpoll mode).
	ptrAddr memspace.Addr
	ptrVal  uint32

	tail        int // next request entry to write
	head        int // next response entry to consume
	outstanding int

	sent, received int64

	// Reusable framing/consume buffers: entryBuf backs Send's framed
	// entry (the Transport copies it into the destination space before
	// returning), respBuf backs the payload PollResponse returns — that
	// slice is only valid until the next PollResponse on this Conn.
	entryBuf, respBuf []byte

	// tr, when attached, wraps each Send in a StageRing span (the NIC
	// and wire spans the transport emits nest inside it); nil is the
	// uninstrumented fast path.
	tr *obs.Trace
}

// NewConn builds a client connection. ptrAddr is the server-side
// pointer-buffer slot for this connection's request ring, or 0 when the
// ring itself is the cpoll region.
func NewConn(req Layout, resp *Ring, t Transport, ptrAddr memspace.Addr) *Conn {
	return &Conn{Req: req, Resp: resp, t: t, ptrAddr: ptrAddr}
}

// SetTrace attaches (or with nil detaches) a span recorder; Send then
// records a StageRing span around each delivery.
func (c *Conn) SetTrace(tr *obs.Trace) { c.tr = tr }

// RegisterMetrics registers the connection's ring-depth gauge on reg
// under the given name prefix.
func (c *Conn) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".outstanding", func() float64 { return float64(c.outstanding) })
}

// CanSend reports whether a credit is available (paper: "Only if the
// request buffer's tail is behind the response buffer's head can the
// client issue a request").
func (c *Conn) CanSend() bool { return c.outstanding < c.Req.NumEntries }

// Outstanding returns in-flight request count.
func (c *Conn) Outstanding() int { return c.outstanding }

// Send writes a request into the server's request ring, returning the
// time the message is visible at the server. It panics when flow
// control would be violated — callers must check CanSend.
func (c *Conn) Send(now sim.Time, payload []byte) sim.Time {
	if !c.CanSend() {
		panic("ringbuf: send without credit")
	}
	if c.ptrAddr != 0 && len(payload) > c.Req.MaxPayload()-PtrEntryBytes {
		// The UMR-combined write needs headroom in the entry slot for
		// the interleaved pointer bytes.
		panic("ringbuf: payload too large for pointer-buffer mode")
	}
	c.entryBuf = c.Req.AppendEncode(c.entryBuf[:0], payload)
	entry := c.entryBuf
	addr := c.Req.EntryAddr(c.tail)
	var pa memspace.Addr
	if c.ptrAddr != 0 {
		c.ptrVal++
		pa = c.ptrAddr
	}
	var sp obs.SpanID
	if c.tr != nil {
		sp = c.tr.Push("ring-send", obs.StageRing, now)
	}
	done := c.t.Deliver(now, addr, entry, pa, c.ptrVal)
	if c.tr != nil {
		c.tr.Pop(sp, done)
	}
	c.tail = (c.tail + 1) % c.Req.NumEntries
	c.outstanding++
	c.sent++
	return done
}

// PollResponse consumes the next response if present, resetting the
// entry and returning a credit. The returned payload reuses the
// connection's scratch buffer and is only valid until the next
// PollResponse; callers that retain it must copy.
func (c *Conn) PollResponse() ([]byte, bool) {
	payload, ok := c.Resp.ReadEntryAppend(c.respBuf[:0], c.head)
	if !ok {
		return nil, false
	}
	c.respBuf = payload
	c.Resp.ResetEntry(c.head)
	c.head = (c.head + 1) % c.Resp.NumEntries
	c.outstanding--
	c.received++
	return payload, true
}

// Sent and Received report message counters.
func (c *Conn) Sent() int64     { return c.sent }
func (c *Conn) Received() int64 { return c.received }

// ServerConn is the consumer (server) side: it reads requests from the
// local request ring and writes responses into the client's response
// ring through a Transport.
type ServerConn struct {
	Req  *Ring  // request ring in local memory
	Resp Layout // response ring in the client's memory

	t Transport

	head     int // next request entry to consume
	respTail int

	served int64

	// Reusable buffers: reqBuf backs NextRequest's payload (valid until
	// the next NextRequest on this connection), entryBuf backs Respond's
	// framed entry (copied out by the Transport before it returns).
	reqBuf, entryBuf []byte

	// tr, when attached, wraps each Respond in a StageRing span.
	tr *obs.Trace
}

// NewServerConn builds the server side of a connection.
func NewServerConn(req *Ring, resp Layout, t Transport) *ServerConn {
	return &ServerConn{Req: req, Resp: resp, t: t}
}

// SetTrace attaches (or with nil detaches) a span recorder; Respond
// then records a StageRing span around each delivery.
func (s *ServerConn) SetTrace(tr *obs.Trace) { s.tr = tr }

// NextRequest returns the next pending request payload without
// consuming it. idx identifies the entry for Complete. The payload
// reuses the connection's scratch buffer and is only valid until the
// next NextRequest; callers that retain it must copy.
func (s *ServerConn) NextRequest() (payload []byte, idx int, ok bool) {
	payload, ok = s.Req.ReadEntryAppend(s.reqBuf[:0], s.head)
	if ok {
		s.reqBuf = payload
	}
	return payload, s.head, ok
}

// Complete resets the consumed entry and advances the head. idx must be
// the value returned by NextRequest (entries complete in order — the
// ring semantics cpoll relies on).
func (s *ServerConn) Complete(idx int) {
	if idx != s.head {
		panic(fmt.Sprintf("ringbuf: out-of-order complete %d, head %d", idx, s.head))
	}
	s.Req.ResetEntry(idx)
	s.head = (s.head + 1) % s.Req.NumEntries
	s.served++
}

// Respond writes a response into the client's response ring, returning
// its visibility time at the client.
func (s *ServerConn) Respond(now sim.Time, payload []byte) sim.Time {
	s.entryBuf = s.Resp.AppendEncode(s.entryBuf[:0], payload)
	entry := s.entryBuf
	addr := s.Resp.EntryAddr(s.respTail)
	var sp obs.SpanID
	if s.tr != nil {
		sp = s.tr.Push("ring-respond", obs.StageRing, now)
	}
	done := s.t.Deliver(now, addr, entry, 0, 0)
	if s.tr != nil {
		s.tr.Pop(sp, done)
	}
	s.respTail = (s.respTail + 1) % s.Resp.NumEntries
	return done
}

// Served reports completed requests.
func (s *ServerConn) Served() int64 { return s.served }
