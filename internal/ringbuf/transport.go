package ringbuf

import (
	"rambda/internal/coherence"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/rnic"
	"rambda/internal/sim"
)

// RDMATransport delivers messages with one-sided RDMA WRITEs. The
// optional pointer-buffer update travels with the entry in a single
// WQE via user-mode memory registration, the UMR variant of paper
// Sec. III-B ("remapping/interleaving the two buffers with UMR and only
// posting one WQE"): one wire message carries entry+4 bytes, and the
// remote NIC scatters the pointer update, raising the cpoll signal.
type RDMATransport struct {
	qp      *rnic.QP
	space   *memspace.Space // producer-side space holding the staging buffer
	staging *memspace.Region
	wrid    uint64

	// Signaled requests a CQE per message — the two-sided baselines
	// need completions; RAMBDA's one-sided writes run unsignaled.
	Signaled bool
}

// NewRDMATransport creates a transport over a connected QP. staging is
// a producer-local region the NIC DMA-reads message bytes from (the
// equivalent of the client's registered send buffer).
func NewRDMATransport(qp *rnic.QP, space *memspace.Space, staging *memspace.Region) *RDMATransport {
	return &RDMATransport{qp: qp, space: space, staging: staging}
}

// Deliver implements Transport.
func (t *RDMATransport) Deliver(now sim.Time, entryAddr memspace.Addr, entry []byte, ptrAddr memspace.Addr, ptrVal uint32) sim.Time {
	if len(entry) > int(t.staging.Size)-PtrEntryBytes {
		panic("ringbuf: staging region too small for entry")
	}
	t.space.Write(t.staging.Base, entry)
	wire := len(entry)
	if ptrAddr != 0 {
		wire += PtrEntryBytes // UMR-interleaved pointer update
	}
	t.wrid++
	t.qp.PostSend(rnic.WQE{
		Op: rnic.OpWrite, LocalAddr: t.staging.Base, RemoteAddr: entryAddr,
		Len: wire, Signaled: t.Signaled, WRID: t.wrid,
	})
	results := t.qp.Doorbell(now)
	visible := results[len(results)-1].RemoteVisible
	if ptrAddr != 0 {
		// The remote NIC scatters the UMR-mapped pointer bytes; timing
		// is covered by the combined WQE, placement is functional.
		host := t.qp.RemoteHost()
		buf := host.Space.Slice(ptrAddr, PtrEntryBytes)
		buf[0] = byte(ptrVal)
		buf[1] = byte(ptrVal >> 8)
		buf[2] = byte(ptrVal >> 16)
		buf[3] = byte(ptrVal >> 24)
		host.Coh.Write(host.Agent, ptrAddr, PtrEntryBytes, visible)
	}
	return visible
}

// LocalTransport delivers messages inside one machine, emulating
// one-sided RDMA behaviour the way the paper's microbenchmark does
// (Sec. VI-A: CPU cores on the other NUMA node feed requests "via
// shared memory buffer (to emulate the one-sided RDMA behavior)"): the
// write is steered like a DMA — into the LLC for DRAM-backed rings,
// directly to the device for NVM-backed rings under adaptive DDIO — and
// the coherence domain is notified so a pinned snooper (the cpoll
// checker) sees it.
type LocalTransport struct {
	Space *memspace.Space
	Mem   *memdev.System
	Coh   *coherence.Domain
	Agent coherence.AgentID
	// Link, when non-nil, is crossed before the store becomes visible
	// (an accelerator storing into CPU-attached memory pays the
	// cc-link; a CPU storing into its own LLC does not).
	Link interface {
		Transfer(now sim.Time, bytes int) sim.Time
	}
}

// Deliver implements Transport.
func (t *LocalTransport) Deliver(now sim.Time, entryAddr memspace.Addr, entry []byte, ptrAddr memspace.Addr, ptrVal uint32) sim.Time {
	at := now
	if t.Link != nil {
		bytes := len(entry)
		if ptrAddr != 0 {
			bytes += PtrEntryBytes
		}
		at = t.Link.Transfer(at, bytes)
	}
	// Adaptive DDIO steering: DRAM rings carry the TPH hint, NVM rings
	// do not (paper Sec. III-D).
	tph := t.Space.KindOf(entryAddr) == memspace.KindDRAM
	at, _ = t.Mem.DMAWrite(at, entryAddr, len(entry), tph)
	t.Space.Write(entryAddr, entry)
	t.Coh.Write(t.Agent, entryAddr, len(entry), at)
	if ptrAddr != 0 {
		buf := t.Space.Slice(ptrAddr, PtrEntryBytes)
		buf[0] = byte(ptrVal)
		buf[1] = byte(ptrVal >> 8)
		buf[2] = byte(ptrVal >> 16)
		buf[3] = byte(ptrVal >> 24)
		t.Coh.Write(t.Agent, ptrAddr, PtrEntryBytes, at)
	}
	return at
}
