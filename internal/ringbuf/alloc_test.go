package ringbuf

import (
	"testing"
)

// Steady-state allocation guard for the connection request/response
// cycle: framing into the connection's scratch entry buffer, consuming
// via ReadEntryAppend, and responding must all reuse their backing
// once warm.

func TestConnCycleZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are distorted under the race detector")
	}
	client, server, _, _ := newConnPair(t, 8, false)
	req := []byte("get user00000000000001")
	resp := []byte("value-bytes-0123456789012345678901234567890123")
	cycle := func() {
		at := client.Send(0, req)
		payload, idx, ok := server.NextRequest()
		if !ok || len(payload) != len(req) {
			panic("lost request")
		}
		server.Complete(idx)
		server.Respond(at, resp)
		if _, ok := client.PollResponse(); !ok {
			panic("lost response")
		}
	}
	for i := 0; i < 16; i++ {
		cycle() // warm the per-connection scratch buffers
	}
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Fatalf("conn cycle: %.2f allocs/op in steady state, want 0", n)
	}
}
