package ringbuf

import (
	"fmt"

	"rambda/internal/sim"
)

// SharedConn multiplexes many application threads onto one
// request/response ring pair (and its underlying QP), the Flock-style
// sharing of paper Sec. III-A: "we do allow sharing the ring buffers
// (and the RDMA QPs) across threads on the same machine ... one
// dedicated thread on the client for request synchronization and
// dispatch". The dispatcher serializes sends (a small per-request
// synchronization cost) and routes responses back to their issuing
// thread in FIFO order — the property the underlying single-trip
// protocol guarantees.
type SharedConn struct {
	conn *Conn
	// dispatch is the dedicated synchronization thread: capacity 1,
	// with the cross-thread handoff cost per message.
	dispatch *sim.Resource

	// inFlight maps completion order back to issuing threads.
	inFlight []int

	sent, received int64
}

// NewSharedConn wraps a connection with a dispatcher whose per-message
// synchronization overhead is `handoff` (the paper observes "no
// performance loss compared to native RDMA primitives" because this
// cost stays off the network critical path).
func NewSharedConn(conn *Conn, handoff sim.Duration) *SharedConn {
	return &SharedConn{
		conn:     conn,
		dispatch: sim.NewResource("flock-dispatch", 1, handoff, 0, 0),
	}
}

// CanSend reports whether the shared ring has a credit.
func (s *SharedConn) CanSend() bool { return s.conn.CanSend() }

// Send issues a request on behalf of thread `tid`, returning its
// server-visibility time. The dispatcher hop is charged before the
// RDMA write.
func (s *SharedConn) Send(now sim.Time, tid int, payload []byte) sim.Time {
	_, at := s.dispatch.Acquire(now, 0)
	done := s.conn.Send(at, payload)
	s.inFlight = append(s.inFlight, tid)
	s.sent++
	return done
}

// PollResponse consumes the next response and reports which thread it
// belongs to.
func (s *SharedConn) PollResponse() (tid int, payload []byte, ok bool) {
	payload, ok = s.conn.PollResponse()
	if !ok {
		return 0, nil, false
	}
	if len(s.inFlight) == 0 {
		panic("ringbuf: response without an in-flight sender")
	}
	tid = s.inFlight[0]
	s.inFlight = s.inFlight[1:]
	s.received++
	return tid, payload, true
}

// Outstanding reports requests awaiting responses.
func (s *SharedConn) Outstanding() int { return len(s.inFlight) }

// Stats summarizes dispatcher activity.
func (s *SharedConn) Stats() string {
	return fmt.Sprintf("sent=%d received=%d outstanding=%d", s.sent, s.received, len(s.inFlight))
}
