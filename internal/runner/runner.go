// Package runner is the experiment harness that fans independent
// simulation runs across a pool of worker goroutines while guaranteeing
// bit-identical output to the sequential path.
//
// The contract that makes this safe is isolation: every Job is one
// self-contained sweep point that builds its own core.Machine, seeds
// its own sim.RNG (see Seed), and writes its result into a slot indexed
// by its sweep position. Workers never share simulation state, so the
// order in which jobs *complete* cannot affect the order or content of
// the results; only the order in which they were *enumerated* does.
// `Run(1, jobs)` executes the jobs strictly sequentially in enumeration
// order, reproducing the pre-harness behaviour exactly.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one independent sweep point of an experiment.
type Job struct {
	Experiment string // experiment id, e.g. "fig7"
	Point      int    // sweep position (the result slot index)
	Name       string // human-readable label, used in errors
	Fn         func() // runs the point and stores its result
}

// PanicError reports a job that panicked; the whole run fails with the
// job's identity attached so a crash inside a 48-point sweep is
// attributable without re-running.
type PanicError struct {
	Experiment string
	Point      int
	Name       string
	Value      any
	Stack      []byte
}

// Error formats the job identity and the recovered value.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s[%d] %q panicked: %v", e.Experiment, e.Point, e.Name, e.Value)
}

// defaultParallel holds the process-wide worker count used when a call
// passes parallel <= 0. Zero means runtime.NumCPU().
var defaultParallel atomic.Int64

// SetDefault sets the process-wide default worker count (n <= 0 resets
// to runtime.NumCPU()). cmd/rambda-figures and the benchmark harness
// thread their -parallel flag through this.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultParallel.Store(int64(n))
}

// Default returns the worker count used when parallel <= 0 is passed.
func Default() int {
	if n := int(defaultParallel.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Run executes the jobs on `parallel` workers (parallel <= 0 uses
// Default()) and blocks until all have finished. With parallel == 1 the
// jobs run sequentially in slice order on the calling goroutine. If any
// job panics, the remaining unstarted jobs are skipped and the error
// for the lowest-indexed panicking job is returned — the choice is
// deterministic even when several jobs fail in the same run.
func Run(parallel int, jobs []Job) error {
	if parallel <= 0 {
		parallel = Default()
	}
	if len(jobs) == 0 {
		return nil
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}
	errs := make([]*PanicError, len(jobs))
	if parallel == 1 {
		for i := range jobs {
			if runJob(&jobs[i], &errs[i]); errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	}

	var (
		next   atomic.Int64 // index of the next unclaimed job
		failed atomic.Bool  // stop claiming new jobs after a panic
		wg     sync.WaitGroup
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || failed.Load() {
					return
				}
				if runJob(&jobs[i], &errs[i]); errs[i] != nil {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// runJob executes one job, converting a panic into a PanicError.
func runJob(j *Job, slot **PanicError) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			*slot = &PanicError{
				Experiment: j.Experiment, Point: j.Point, Name: j.Name,
				Value: v, Stack: buf,
			}
		}
	}()
	j.Fn()
}

// MustRun is Run for callers without an error path (the experiment
// functions historically panic on internal failures); a job panic is
// re-raised with the job identity attached.
func MustRun(parallel int, jobs []Job) {
	if err := Run(parallel, jobs); err != nil {
		panic(err)
	}
}

// Jobs builds the job list for one experiment's n-point sweep: point i
// gets label name(i) and body fn(i). name may be nil.
func Jobs(experiment string, n int, name func(int) string, fn func(int)) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		label := ""
		if name != nil {
			label = name(i)
		}
		i := i
		jobs[i] = Job{Experiment: experiment, Point: i, Name: label, Fn: func() { fn(i) }}
	}
	return jobs
}

// ForEach runs fn for every point of an n-point sweep and panics with
// the failing point's identity if one panics.
func ForEach(parallel int, experiment string, n int, fn func(point int)) {
	MustRun(parallel, Jobs(experiment, n, nil, fn))
}

// Seed derives a deterministic sim.RNG seed from an (experiment, point)
// key via an FNV-1a fold, so concurrently executing sweep points that
// need fresh randomness never share a stream and never depend on
// scheduling order.
func Seed(experiment string, point int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(experiment); i++ {
		h ^= uint64(experiment[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(point>>(8*i)) & 0xff
		h *= prime64
	}
	return h
}

// SubSeed derives an independent stream seed below a point-level seed
// with the same FNV-1a fold — one per simulated entity *inside* a sweep
// point (the scale-out cluster seeds one RNG per shard this way). The
// fold keeps sibling streams disjoint by construction, so adding or
// removing entities never perturbs the others' draws.
func SubSeed(seed uint64, sub int) uint64 {
	const prime64 = 1099511628211
	h := seed
	for i := 0; i < 8; i++ {
		h ^= uint64(sub>>(8*i)) & 0xff
		h *= prime64
	}
	return h
}
