package runner

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunFillsEverySlotInOrder(t *testing.T) {
	for _, parallel := range []int{1, 2, 8, 64} {
		const n = 200
		out := make([]int, n)
		err := Run(parallel, Jobs("exp", n, nil, func(i int) { out[i] = i * i }))
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("parallel=%d: slot %d = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

func TestRunEmptyAndOversizedPool(t *testing.T) {
	if err := Run(8, nil); err != nil {
		t.Fatalf("empty job list: %v", err)
	}
	done := false
	if err := Run(16, Jobs("exp", 1, nil, func(int) { done = true })); err != nil || !done {
		t.Fatalf("single job on 16 workers: err=%v done=%v", err, done)
	}
}

func TestSequentialRunsInEnumerationOrder(t *testing.T) {
	var order []int
	MustRun(1, Jobs("exp", 50, nil, func(i int) { order = append(order, i) }))
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken at %d: %v", i, order[:i+1])
		}
	}
}

func TestPanicCarriesJobIdentity(t *testing.T) {
	jobs := Jobs("fig7", 8, func(i int) string {
		return []string{"a", "b", "c", "d", "e", "f", "g", "h"}[i]
	}, func(i int) {
		if i == 5 {
			panic("nvm model exploded")
		}
	})
	for _, parallel := range []int{1, 4} {
		err := Run(parallel, jobs)
		if err == nil {
			t.Fatalf("parallel=%d: want error", parallel)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("parallel=%d: error type %T", parallel, err)
		}
		if pe.Experiment != "fig7" || pe.Point != 5 || pe.Name != "f" {
			t.Fatalf("parallel=%d: wrong identity: %+v", parallel, pe)
		}
		for _, want := range []string{"fig7", "[5]", `"f"`, "nvm model exploded"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("parallel=%d: error %q missing %q", parallel, err, want)
			}
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("parallel=%d: missing stack", parallel)
		}
	}
}

func TestPanicReturnsLowestIndexDeterministically(t *testing.T) {
	// Every job panics; the reported one must always be the first
	// claimed-and-failed with the lowest index, which for Run's ordered
	// claim counter is job 0 in every schedule.
	jobs := Jobs("exp", 32, nil, func(i int) { panic(i) })
	for trial := 0; trial < 20; trial++ {
		err := Run(8, jobs)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("error type %T", err)
		}
		if pe.Point != 0 {
			t.Fatalf("trial %d: reported point %d, want 0", trial, pe.Point)
		}
	}
}

func TestPanicSkipsUnstartedJobs(t *testing.T) {
	var ran atomic.Int64
	jobs := Jobs("exp", 1000, nil, func(i int) {
		ran.Add(1)
		if i == 0 {
			panic("early")
		}
	})
	if err := Run(2, jobs); err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("ran all %d jobs despite early panic", n)
	}
}

func TestMustRunPanicsWithIdentity(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("MustRun must re-panic")
		}
		pe, ok := v.(*PanicError)
		if !ok || pe.Experiment != "tab3" {
			t.Fatalf("recovered %#v", v)
		}
	}()
	MustRun(4, Jobs("tab3", 3, nil, func(i int) {
		if i == 2 {
			panic("boom")
		}
	}))
}

func TestForEach(t *testing.T) {
	out := make([]int, 16)
	ForEach(4, "exp", 16, func(i int) { out[i] = 1 })
	for i, v := range out {
		if v != 1 {
			t.Fatalf("point %d not run", i)
		}
	}
}

func TestDefaultParallelism(t *testing.T) {
	old := Default()
	defer SetDefault(0)
	SetDefault(3)
	if Default() != 3 {
		t.Fatalf("Default()=%d after SetDefault(3)", Default())
	}
	SetDefault(0)
	if Default() < 1 {
		t.Fatalf("Default()=%d, want >= 1", Default())
	}
	_ = old
}

func TestSeedIsDeterministicAndDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, exp := range []string{"fig7", "fig8", "fig13"} {
		for p := 0; p < 64; p++ {
			s := Seed(exp, p)
			if s != Seed(exp, p) {
				t.Fatalf("Seed(%q,%d) unstable", exp, p)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("Seed collision: %q[%d] vs %s", exp, p, prev)
			}
			seen[s] = exp
		}
	}
}

// TestRaceStress hammers the pool with many tiny jobs writing adjacent
// slots; under `go test -race` this polices the harness's memory
// discipline (slot-indexed writes, no shared mutable state).
func TestRaceStress(t *testing.T) {
	const n = 5000
	out := make([]uint64, n)
	for round := 0; round < 4; round++ {
		MustRun(16, Jobs("stress", n, nil, func(i int) {
			out[i] = Seed("stress", i)
		}))
	}
	for i, v := range out {
		if v != Seed("stress", i) {
			t.Fatalf("slot %d corrupted", i)
		}
	}
}
