package experiments

import (
	"fmt"

	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/runner"
	"rambda/internal/sim"
)

// Fig5Row is one bar group of Fig. 5: host memory bandwidth consumed by
// a 3.5 GB/s DMA write stream under a DDIO x TPH configuration.
type Fig5Row struct {
	DDIO, TPH         bool
	ReadGBs, WriteGBs float64
}

// Fig5 reproduces the PCIe-bench experiment of Sec. III-D: an FPGA
// DMA-writes random 256 B packets to a 1 GB host DRAM buffer at a
// constant 3.5 GB/s; host memory read/write bandwidth is observed for
// the four DDIO/TPH combinations. Only DDIO-off + TPH-off should show
// ~3.5 GB/s on both channels (write-allocate reads plus the writes);
// any cache-steered configuration leaves only the eviction trickle.
func Fig5() []Fig5Row {
	rows, jobs := fig5Plan()
	runner.MustRun(0, jobs)
	return rows
}

// fig5Point streams the DMA writes against one DDIO/TPH configuration
// on a private memory system: a two-partition engine cut along the
// PCIe link, with the FPGA packet generator on one side and the host
// memory system on the other. The link lookahead is one packet's
// serialization quantum at the stream rate — the generator cannot land
// a packet earlier than one interval after issuing it — and the window
// batches ~256 packets of run-ahead per epoch barrier.
//
// The 1 GB DMA target is a phantom region: steering reads only the
// region kind, never the bytes, so the buffer carries no backing
// storage (the old backed buffer was 99% of this figure's wall clock in
// page-zeroing and all of its 2.1 GB peak RSS across the four sweep
// points).
func fig5Point(ddio, tph bool) Fig5Row {
	const (
		rate     = 3.5e9
		pkt      = 256
		duration = 2 * sim.Millisecond
	)
	pktSec := float64(pkt) / rate
	interval := sim.Duration(pktSec * float64(sim.Second))
	packets := int(duration / interval)

	space := memspace.New()
	buf := space.AllocPhantom("dma-buf", 1<<30, memspace.KindDRAM)
	sys := &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM("dram", 6, 128e9, 90*sim.Nanosecond),
		LLC:   memdev.NewLLC("llc", 300e9, 20*sim.Nanosecond),
	}
	sys.LLC.DDIOEnabled = ddio
	rng := sim.NewRNG(0xF165)

	eng := sim.NewEngine(0xF165)
	eng.SetWindow(256 * interval)
	var wire *sim.Link
	issued := 0
	clock := sim.Time(0)
	gen := eng.AddPartition("fpga-dma", 0, func(p *sim.Partition, horizon sim.Time) {
		for ; clock < horizon && issued < packets; issued++ {
			off := memspace.Addr(rng.Uint64n(uint64(buf.Size/pkt))) * pkt
			p.Post(wire, sim.Msg{At: clock + interval, Payload: uint64(buf.Base + off)})
			clock += interval
		}
		if issued == packets {
			p.SetNext(sim.MaxTime)
		} else {
			p.SetNext(clock)
		}
	})
	host := eng.AddPartition("host-mem", sim.MaxTime, func(p *sim.Partition, _ sim.Time) {
		for _, m := range p.Recv() {
			sys.DMAWrite(m.At, memspace.Addr(m.Payload), pkt, tph)
		}
	})
	wire = eng.Connect(gen, host, interval)
	eng.Run()

	secs := (sim.Time(packets) * interval).Seconds()
	bypass := float64(sys.LLC.MemoryBypassBytes())
	evicted := float64(sys.LLC.EvictedBytes())
	return Fig5Row{
		DDIO: ddio,
		TPH:  tph,
		// Memory-bypass DMA performs write-allocate reads plus the data
		// writes; cache-steered DMA only trickles evictions.
		ReadGBs:  bypass / secs / 1e9,
		WriteGBs: (bypass + evicted) / secs / 1e9,
	}
}

// fig5Plan enumerates the four DDIO x TPH combinations as runner jobs.
func fig5Plan() ([]Fig5Row, []runner.Job) {
	combos := []struct{ ddio, tph bool }{
		{false, false}, {false, true}, {true, false}, {true, true},
	}
	rows := make([]Fig5Row, len(combos))
	jobs := runner.Jobs("fig5", len(combos),
		func(i int) string { return fmt.Sprintf("ddio=%v/tph=%v", combos[i].ddio, combos[i].tph) },
		func(i int) { rows[i] = fig5Point(combos[i].ddio, combos[i].tph) })
	return rows, jobs
}

// Fig5Spec exposes the sweep for a shared pool.
func Fig5Spec() Spec {
	rows, jobs := fig5Plan()
	return Spec{ID: "fig5", Jobs: jobs, Table: func() *Table { return fig5Render(rows) }}
}

// Fig5Table renders Fig. 5.
func Fig5Table() *Table {
	return RunSpec(0, Fig5Spec())
}

func fig5Render(rows []Fig5Row) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "Host memory bandwidth under 3.5 GB/s DMA writes (DDIO x TPH)",
		Columns: []string{"DDIO", "TPH", "mem read GB/s", "mem write GB/s"},
		Notes: []string{
			"paper: ~3.5 GB/s read+write only when both DDIO and TPH are off; otherwise little memory traffic",
		},
	}
	onoff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	for _, r := range rows {
		t.AddRow(onoff(r.DDIO), onoff(r.TPH), fmt.Sprintf("%.2f", r.ReadGBs), fmt.Sprintf("%.2f", r.WriteGBs))
	}
	return t
}
