package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallYCSB returns a fast sweep with the metrics export under dir.
func smallYCSB(dir, tag string) YCSBConfig {
	cfg := DefaultYCSBConfig()
	cfg.Keys = 1 << 11
	cfg.Requests = 2400
	cfg.Parallel = 2
	cfg.MetricsOut = filepath.Join(dir, "ycsb-metrics-"+tag+".json")
	return cfg
}

// TestYCSBDeterministicExports pins the ycsb sweep's determinism: the
// rendered table and the per-point metrics export must be
// byte-identical across runs and across worker counts — compaction
// schedules, WAL-wrap stalls, and scan results are functions of the
// seed alone, never of scheduling.
func TestYCSBDeterministicExports(t *testing.T) {
	dir := t.TempDir()
	a := smallYCSB(dir, "a")
	b := smallYCSB(dir, "b")
	ta := YCSBTable(a).String()
	b.Parallel = 1 // scheduling must not matter either
	tb := YCSBTable(b).String()
	if ta != tb {
		t.Fatalf("same seed, different tables:\n%s\n---\n%s", ta, tb)
	}

	x, err := os.ReadFile(a.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	y, err := os.ReadFile(b.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) == 0 {
		t.Fatalf("%s: empty export", a.MetricsOut)
	}
	if !bytes.Equal(x, y) {
		t.Fatalf("metrics exports differ: same seed must export byte-identical files")
	}
	if !strings.Contains(string(x), "ycsb.lsm") {
		t.Fatalf("metrics export missing lsm registry gauges")
	}
}

// TestYCSBBackendsBehave pins the sweep's storage claims on single
// points: the update-heavy mix drives real LSM background work, and the
// scan-heavy mix answers through the merged iterator on the LSM while
// the hash backend still completes it via the bucket cursor.
func TestYCSBBackendsBehave(t *testing.T) {
	cfg := DefaultYCSBConfig()
	cfg.Keys = 1 << 12
	cfg.Requests = 3200
	mixA, mixE := ycsbMixes[0], ycsbMixes[3]

	lsmA := ycsbPoint(cfg, mixA, "lsm", 0, nil)
	if lsmA.Flushes == 0 {
		t.Fatalf("workload A on lsm never flushed: %+v", lsmA)
	}
	if lsmA.Goodput <= 0 || lsmA.P99 < lsmA.P50 {
		t.Fatalf("implausible row %+v", lsmA)
	}

	lsmE := ycsbPoint(cfg, mixE, "lsm", 1, nil)
	if lsmE.Goodput <= 0 {
		t.Fatalf("workload E on lsm produced no goodput: %+v", lsmE)
	}

	hashE := ycsbPoint(cfg, mixE, "hash", 2, nil)
	if hashE.Goodput <= 0 {
		t.Fatalf("workload E on hash produced no goodput: %+v", hashE)
	}
	if hashE.Flushes != 0 || hashE.Stalls != 0 {
		t.Fatalf("hash backend reported LSM counters: %+v", hashE)
	}
}
