// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. VI) on the simulated testbed. Each FigN/TabN
// function builds the full system from internal/core and the
// application packages, drives the paper's workload, and returns both
// structured rows (consumed by tests and benchmarks) and a rendered
// text table (printed by cmd/rambda-figures). Paper-vs-measured
// comparisons live in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"rambda/internal/core"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/runner"
)

// Spec is one figure's parallel execution plan: the sweep enumerated as
// independent runner jobs (each builds its own machines and RNGs and
// writes a result slot indexed by sweep position) plus the rendering
// step that runs after every job has completed. Exposing the jobs
// instead of running them lets cmd/rambda-figures flatten all figures
// into a single pool, so whole figures overlap with each other as well
// as their own points — while the slot discipline keeps the rendered
// output byte-identical to a sequential run.
type Spec struct {
	ID    string
	Jobs  []runner.Job
	Table func() *Table // render; call only after Jobs have all run
}

// StandardSpecs enumerates every paper figure in print order, at full
// or quick scale — the single source of the sweep configuration shared
// by cmd/rambda-figures, cmd/rambda-bench, and the output-pinning
// tests.
func StandardSpecs(quick bool) []Spec {
	return StandardSpecsObs(quick, "", "")
}

// StandardSpecsObs is StandardSpecs with observability export paths for
// the breakdown experiment: non-empty traceOut/metricsOut make the
// breakdown spec write its Chrome trace / metrics JSON files after its
// jobs have run. Empty strings (the StandardSpecs default) export
// nothing; either way the collector only ever attaches to the breakdown
// spec's own machines, so the paper figures stay on the nil fast path.
func StandardSpecsObs(quick bool, traceOut, metricsOut string) []Spec {
	return StandardSpecsPaths(quick, ObsPaths{TraceOut: traceOut, MetricsOut: metricsOut})
}

// ObsPaths carries the export destinations of the non-paper specs:
// breakdown's Chrome trace and metrics registry, and the scaleout
// sweep's per-point metrics registries. Empty fields export nothing.
type ObsPaths struct {
	TraceOut                string
	MetricsOut              string
	ScaleoutMetricsOut      string
	ChaosScaleoutMetricsOut string
	YCSBMetricsOut          string
}

// StandardSpecsPaths is the full enumeration with every export path.
func StandardSpecsPaths(quick bool, paths ObsPaths) []Spec {
	f7 := DefaultFig7Config()
	kvs := DefaultKVSConfig()
	f12 := DefaultFig12Config()
	f13 := DefaultFig13Config()
	chaos := DefaultChaosConfig()
	bd := DefaultBreakdownConfig()
	sc := DefaultScaleoutConfig()
	cso := DefaultChaosScaleoutConfig()
	yc := DefaultYCSBConfig()
	fig1Requests := 20000
	if quick {
		fig1Requests = 4000
		f7.Nodes = 1 << 18
		f7.Requests = 20000
		kvs.Keys = 1 << 18
		kvs.Requests = 15000
		f12.Transactions = 4000
		f13.Queries = 6000
		f13.RowScale = 0.1
		chaos.Writes = 1200
		chaos.Txs = 600
		bd.Requests = 3000
		sc.Keys = 1 << 13
		sc.Requests = 4800
		cso.Keys = 1 << 12
		cso.Requests = 4000
		yc.Keys = 1 << 13
		yc.Requests = 4000
	}
	bd.TraceOut, bd.MetricsOut = paths.TraceOut, paths.MetricsOut
	sc.MetricsOut = paths.ScaleoutMetricsOut
	cso.MetricsOut = paths.ChaosScaleoutMetricsOut
	yc.MetricsOut = paths.YCSBMetricsOut
	// The chaos spec stays after the paper figures: figure goldens pin
	// their print order, and non-paper experiments (chaos, breakdown,
	// scaleout) append after them.
	return []Spec{
		Fig1Spec(fig1Requests, 1),
		Fig5Spec(),
		Fig7Spec(f7),
		Fig8Spec(kvs),
		Fig9Spec(kvs),
		Fig10Spec(kvs),
		Tab3Spec(kvs),
		Fig12Spec(f12),
		Fig13Spec(f13),
		ScalabilitySpec(DefaultScalabilityConfig()),
		ChaosSpec(chaos),
		BreakdownSpec(bd),
		ScaleoutSpec(sc),
		ChaosScaleoutSpec(cso),
		YCSBSpec(yc),
	}
}

// RunSpec executes a figure's jobs on `parallel` workers (<= 0 uses the
// runner default) and renders its table.
func RunSpec(parallel int, s Spec) *Table {
	runner.MustRun(parallel, s.Jobs)
	return s.Table()
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d cells, table %q has %d columns",
			len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f2, f1 and mops format numbers consistently across experiment tables.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func mops(v float64) string { return fmt.Sprintf("%.2f Mops", v/1e6) }

// newHostMem builds a standalone host memory system at testbed
// parameters (for models that sit outside a full core.Machine, like the
// SmartNIC's host).
func newHostMem(space *memspace.Space) *memdev.System {
	return &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM("host:dram", core.DRAMChannels, core.DRAMBW, core.DRAMLatency),
		NVM:   memdev.NewNVM("host:nvm", core.NVMDimms, core.NVMReadBW, core.NVMLatency, core.NVMWriteCost),
		LLC:   memdev.NewLLC("host:llc", core.LLCBW, core.LLCLatency),
	}
}
