package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// smallBreakdown returns a fast configuration with exports under dir.
func smallBreakdown(dir, tag string) BreakdownConfig {
	cfg := DefaultBreakdownConfig()
	cfg.Requests = 400
	cfg.Parallel = 2
	cfg.TraceOut = filepath.Join(dir, "trace-"+tag+".json")
	cfg.MetricsOut = filepath.Join(dir, "metrics-"+tag+".json")
	return cfg
}

// TestBreakdownDeterministicExports is the golden determinism check of
// the observability layer: two runs with the same seed must produce
// byte-identical trace and metrics files — virtual-time spans, integer
// timestamp math, and sorted metric names leave no room for run-to-run
// noise.
func TestBreakdownDeterministicExports(t *testing.T) {
	dir := t.TempDir()
	a := smallBreakdown(dir, "a")
	b := smallBreakdown(dir, "b")
	Breakdown(a)
	b.Parallel = 1 // scheduling must not matter either
	Breakdown(b)

	for _, pair := range [][2]string{
		{a.TraceOut, b.TraceOut},
		{a.MetricsOut, b.MetricsOut},
	} {
		x, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		y, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(x) == 0 {
			t.Fatalf("%s: empty export", pair[0])
		}
		if !bytes.Equal(x, y) {
			t.Fatalf("%s and %s differ: same seed must export byte-identical files", pair[0], pair[1])
		}
	}
}

// TestBreakdownTable smoke-tests the per-stage latency table: every
// instrumented path must report rows, each path's shares must sum to
// ~100%, and the fig7 KVS-style path must attribute time to the core
// pipeline stages.
func TestBreakdownTable(t *testing.T) {
	cfg := DefaultBreakdownConfig()
	cfg.Requests = 400
	cfg.Parallel = 2
	tab := Breakdown(cfg)
	if tab.ID != "breakdown" {
		t.Fatalf("table ID = %q", tab.ID)
	}
	shares := map[string]float64{}
	stages := map[string]map[string]bool{}
	for _, row := range tab.Rows {
		path, stage := row[0], row[1]
		pct, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "%"), 64)
		if err != nil {
			t.Fatalf("share %q: %v", row[4], err)
		}
		shares[path] += pct
		if stages[path] == nil {
			stages[path] = map[string]bool{}
		}
		stages[path][stage] = true
	}
	for _, p := range []string{"fig7/RAMBDA", "fig8/RAMBDA"} {
		if _, ok := shares[p]; !ok {
			t.Fatalf("no rows for path %q", p)
		}
		if s := shares[p]; s < 99 || s > 101 {
			t.Fatalf("%s: stage shares sum to %.1f%%, want ~100%%", p, s)
		}
		for _, st := range []string{"nic", "ring", "memory"} {
			if !stages[p][st] {
				t.Fatalf("%s: no %q stage rows (got %v)", p, st, stages[p])
			}
		}
	}
}
