package experiments

import (
	"fmt"

	"rambda/internal/chainrep"
	"rambda/internal/coherence"
	"rambda/internal/fault"
	"rambda/internal/interconnect"
	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/rnic"
	"rambda/internal/runner"
	"rambda/internal/sim"
)

// The chaos experiment is not a paper figure: it characterizes the
// simulated fabric under the deterministic fault plans of internal/fault.
// Part one sweeps packet-loss rates over an RC QP pair and reports how
// retransmission inflates the tail and erodes goodput; part two crashes
// one replica of a 3-node RAMBDA chain mid-workload, rejoins it, and
// verifies the redo-log replay plus catch-up leave it state-equal with
// the survivors. Both halves run from fixed seeds: a given config
// renders byte-identical tables on every run.

// ChaosConfig scales the robustness experiment.
type ChaosConfig struct {
	// LossRates is the per-packet drop sweep of the QP half.
	LossRates []float64
	// Writes is the number of signaled RDMA writes per loss point.
	Writes int
	// WriteBytes is the payload per write.
	WriteBytes int
	// Txs is the number of chain transactions in the crash half.
	Txs  int
	Seed uint64
	// Parallel is the sweep-point worker count; 0 = runner default.
	Parallel int
}

// DefaultChaosConfig returns the full-size sweep.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		LossRates:  []float64{0, 0.001, 0.01, 0.05},
		Writes:     4000,
		WriteBytes: 1024,
		Txs:        2000,
		Seed:       23,
	}
}

// ChaosLossRow is one point of the loss sweep.
type ChaosLossRow struct {
	LossRate    float64
	AvgLatency  sim.Time
	P99Latency  sim.Time
	Goodput     float64 // payload bytes/sec over the run
	Retransmits int64
}

// ChaosChainRow summarizes the crash/rejoin scenario.
type ChaosChainRow struct {
	Committed  int
	Failovers  int64
	MissedAcks int64
	Rejoins    int64
	ReplayedTx int64
	CaughtUpTx int64
	StateEqual bool
}

// chaosHost builds a minimal RNIC host (the chaos sweep needs the
// transport, not a full core.Machine).
func chaosHost(name string) (*memspace.Space, *rnic.NIC, *memspace.Region) {
	space := memspace.New()
	dram := space.Alloc(name+"-dram", 1<<20, memspace.KindDRAM)
	mem := &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM(name+":dram", 6, 120e9, 90*sim.Nanosecond),
		NVM:   memdev.NewNVM(name+":nvm", 6, 39e9, 300*sim.Nanosecond, 3),
		LLC:   memdev.NewLLC(name+":llc", 300e9, 20*sim.Nanosecond),
	}
	host := &rnic.Host{
		Space: space,
		Mem:   mem,
		PCIe:  interconnect.NewPCIe(name+":pcie-in", 16e9, 300*sim.Nanosecond, 400*sim.Nanosecond),
		PCIeR: interconnect.NewPCIe(name+":pcie-out", 16e9, 300*sim.Nanosecond, 400*sim.Nanosecond),
		Coh:   coherence.NewDomain(),
		Agent: coherence.AgentNIC,
	}
	return space, rnic.New(rnic.Config{Name: name}, host), dram
}

// chaosLossPoint drives `cfg.Writes` signaled RC writes across a duplex
// whose forward path drops packets at `loss`, and reports the latency
// distribution, goodput, and retransmission count.
func chaosLossPoint(cfg ChaosConfig, loss float64) ChaosLossRow {
	aSpace, aNIC, aDRAM := chaosHost("a")
	_, bNIC, bDRAM := chaosHost("b")
	d := interconnect.NewDuplex("net", 3.125e9, 2*sim.Microsecond)
	if loss > 0 {
		d.AttachFaults(fault.New(fault.Plan{Seed: cfg.Seed, Links: []fault.LinkRule{
			{Link: "net:a->b", Drop: loss},
		}}))
	}
	rnic.Connect(aNIC, bNIC, d)
	qa, qb := aNIC.NewQP(), bNIC.NewQP()
	rnic.ConnectQP(qa, qb)

	payload := make([]byte, cfg.WriteBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	aSpace.Write(aDRAM.Base, payload)

	hist := sim.NewHistogram(cfg.Writes)
	now := sim.Time(0)
	for i := 0; i < cfg.Writes; i++ {
		qa.PostSend(rnic.WQE{Op: rnic.OpWrite, LocalAddr: aDRAM.Base,
			RemoteAddr: bDRAM.Base, Len: cfg.WriteBytes, Signaled: true, WRID: uint64(i)})
		res := qa.Doorbell(now)
		if res[0].Status != rnic.CQEOK {
			panic(fmt.Sprintf("chaos: write %d at loss %.3f failed: %v", i, loss, res[0].Status))
		}
		hist.Record(res[0].CQEAt - now)
		now = res[0].CQEAt
	}
	goodput := 0.0
	if now > 0 {
		goodput = float64(cfg.Writes*cfg.WriteBytes) / (float64(now) / float64(sim.Second))
	}
	return ChaosLossRow{
		LossRate:    loss,
		AvgLatency:  hist.Mean(),
		P99Latency:  hist.P99(),
		Goodput:     goodput,
		Retransmits: qa.Stats().Retransmits,
	}
}

// chaosChain builds the 3-replica RAMBDA chain at the testbed parameters
// used throughout the chainrep tests.
func chaosChain() *chainrep.Chain {
	c := &chainrep.Chain{
		ClientOneWay: 2 * sim.Microsecond,
		HopDelay:     2500 * sim.Nanosecond,
		WireBPS:      3.125e9,
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		space := memspace.New()
		mem := &memdev.System{
			Space: space,
			DRAM:  memdev.NewDRAM(name+":dram", 6, 120e9, 90*sim.Nanosecond),
			NVM:   memdev.NewNVM(name+":nvm", 6, 39e9, 300*sim.Nanosecond, 3),
			LLC:   memdev.NewLLC(name+":llc", 300e9, 20*sim.Nanosecond),
		}
		c.Nodes = append(c.Nodes, chainrep.NewNode(space, mem, chainrep.NodeConfig{
			Name: name, ProcDelay: 500 * sim.Nanosecond, PerTupleDelay: 100 * sim.Nanosecond,
		}, 1<<20, 4096, 4096))
	}
	return c
}

// chaosCrashScenario commits cfg.Txs transactions through a chain whose
// middle replica crashes partway in, rejoins it afterwards, and checks
// the replica replayed and caught up to a store state-equal with the
// head.
func chaosCrashScenario(cfg ChaosConfig) ChaosChainRow {
	c := chaosChain()
	// The crash window opens a quarter of the way into the expected run
	// (each tx costs roughly 10 us on this testbed) and outlives it; the
	// rejoin below waits the window out.
	window := fault.Window{
		Node: "r1", Kind: fault.Crash,
		From: sim.Time(cfg.Txs/4) * sim.Time(10*sim.Microsecond),
		To:   sim.Time(cfg.Txs) * sim.Time(100*sim.Microsecond),
	}
	c.EnableFaultDetection(fault.New(fault.Plan{Seed: cfg.Seed, Nodes: []fault.Window{window}}), 25*sim.Microsecond)

	rng := sim.NewRNG(cfg.Seed + 1)
	data := []byte("chaos-tx-payload")
	now := sim.Time(0)
	committed := 0
	for i := 0; i < cfg.Txs; i++ {
		off := uint32(rng.Intn(1<<18)) &^ 63
		_, done, err := c.RambdaTxInto(now, chainrep.Tx{
			Writes: []chainrep.Tuple{{Offset: off, Data: data}},
		}, nil)
		if err != nil {
			panic(fmt.Sprintf("chaos: tx %d: %v", i, err))
		}
		committed++
		now = done
	}
	if now < window.To {
		now = window.To
	}
	back, err := c.Rejoin(now, 1)
	if err != nil {
		panic(fmt.Sprintf("chaos: rejoin: %v", err))
	}
	_ = back
	st := c.FailoverStats()
	return ChaosChainRow{
		Committed:  committed,
		Failovers:  st.Failovers,
		MissedAcks: st.MissedAcks,
		Rejoins:    st.Rejoins,
		ReplayedTx: st.ReplayedTx,
		CaughtUpTx: st.CaughtUpTx,
		StateEqual: chainrep.StateEqual(c.Nodes[0].Store, c.Nodes[1].Store, 1<<18),
	}
}

// chaosPlan enumerates the sweep: one job per loss point plus the crash
// scenario, each independent.
func chaosPlan(cfg ChaosConfig) (func() ([]ChaosLossRow, ChaosChainRow), []runner.Job) {
	lossRows := make([]ChaosLossRow, len(cfg.LossRates))
	var chainRow ChaosChainRow
	n := len(cfg.LossRates) + 1
	jobs := runner.Jobs("chaos", n,
		func(i int) string {
			if i < len(cfg.LossRates) {
				return fmt.Sprintf("loss=%.3f", cfg.LossRates[i])
			}
			return "chain-crash"
		},
		func(i int) {
			if i < len(cfg.LossRates) {
				lossRows[i] = chaosLossPoint(cfg, cfg.LossRates[i])
			} else {
				chainRow = chaosCrashScenario(cfg)
			}
		})
	return func() ([]ChaosLossRow, ChaosChainRow) { return lossRows, chainRow }, jobs
}

func usStr(t sim.Time) string { return fmt.Sprintf("%.2f us", float64(t)/float64(sim.Microsecond)) }

func chaosRender(lossRows []ChaosLossRow, chainRow ChaosChainRow) *Table {
	t := &Table{
		ID:      "chaos",
		Title:   "Fault injection: RC transport under loss + chain crash/rejoin",
		Columns: []string{"scenario", "avg", "p99", "goodput", "retransmits"},
		Notes: []string{
			fmt.Sprintf("chain: %d committed, failovers=%d missed-acks=%d rejoins=%d replayed=%d caught-up=%d state-equal=%v",
				chainRow.Committed, chainRow.Failovers, chainRow.MissedAcks,
				chainRow.Rejoins, chainRow.ReplayedTx, chainRow.CaughtUpTx, chainRow.StateEqual),
		},
	}
	for _, r := range lossRows {
		t.AddRow(
			fmt.Sprintf("loss=%.3f", r.LossRate),
			usStr(r.AvgLatency),
			usStr(r.P99Latency),
			fmt.Sprintf("%.2f Gbps", r.Goodput*8/1e9),
			fmt.Sprintf("%d", r.Retransmits),
		)
	}
	return t
}

// ChaosSpec exposes the sweep for a shared pool.
func ChaosSpec(cfg ChaosConfig) Spec {
	rows, jobs := chaosPlan(cfg)
	return Spec{ID: "chaos", Jobs: jobs, Table: func() *Table {
		loss, chain := rows()
		return chaosRender(loss, chain)
	}}
}

// ChaosTable runs the whole robustness sweep and renders it.
func ChaosTable(cfg ChaosConfig) *Table {
	return RunSpec(cfg.Parallel, ChaosSpec(cfg))
}
