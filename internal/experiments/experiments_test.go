package experiments

import (
	"testing"

	"rambda/internal/dlrm"
)

// The experiment tests assert the paper's qualitative shapes at reduced
// scale; EXPERIMENTS.md records the full-scale quantitative comparison.

func testFig7Config() Fig7Config {
	return Fig7Config{Nodes: 1 << 16, Requests: 12000, Window: 16, Seed: 7}
}

func testKVSConfig() KVSConfig {
	cfg := DefaultKVSConfig()
	cfg.Keys = 1 << 16
	cfg.Requests = 8000
	return cfg
}

func fig7Map(t *testing.T, rows []Fig7Row) map[string]float64 {
	t.Helper()
	m := map[string]float64{}
	for _, r := range rows {
		m[r.Mem+"/"+r.Config] = r.Throughput
	}
	return m
}

func TestFig1LatencyGrowsLinearly(t *testing.T) {
	rows := Fig1(2000, 1)
	if len(rows) != 6 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Avg <= rows[i-1].Avg {
			t.Fatalf("avg latency must increase with host%%: %+v", rows)
		}
		if rows[i].P99 < rows[i].Avg {
			t.Fatalf("p99 below avg at %d%%", rows[i].HostPct)
		}
	}
	// All-host is many times all-local (Fig. 1's ~15x span).
	if ratio := float64(rows[5].Avg) / float64(rows[0].Avg); ratio < 8 {
		t.Fatalf("100%%/0%% ratio=%.1f, want >= 8", ratio)
	}
	// Linearity: the midpoint is near the endpoint average.
	mid := (rows[0].Avg + rows[5].Avg) / 2
	if rows[2].Avg < mid*7/10 || rows[3].Avg > mid*14/10 {
		t.Fatalf("latency not linear: %+v", rows)
	}
}

func TestFig5OnlyDoubleOffHitsMemory(t *testing.T) {
	rows := Fig5()
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if !r.DDIO && !r.TPH {
			if r.WriteGBs < 3.0 || r.ReadGBs < 3.0 {
				t.Fatalf("off/off must consume ~3.5 GB/s: %+v", r)
			}
			continue
		}
		if r.WriteGBs > 0.5 || r.ReadGBs > 0.5 {
			t.Fatalf("cache-steered config leaks memory bandwidth: %+v", r)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	m := fig7Map(t, Fig7(testFig7Config()))

	cpu1, cpu8, cpu16 := m["dram/CPU-1"], m["dram/CPU-8"], m["dram/CPU-16"]
	if cpu8 < 6*cpu1 || cpu8 > 10*cpu1 {
		t.Fatalf("CPU-8/CPU-1 = %.2f, want ~8 (linear scaling)", cpu8/cpu1)
	}
	if cpu16 < 13*cpu1 {
		t.Fatalf("CPU-16/CPU-1 = %.2f, want ~16", cpu16/cpu1)
	}

	polling, cpoll := m["dram/RAMBDA-polling"], m["dram/RAMBDA"]
	if cpoll <= polling {
		t.Fatal("cpoll must beat spin-polling (Fig. 7's +21.6%)")
	}
	if g := cpoll / polling; g > 1.5 {
		t.Fatalf("cpoll gain %.2f implausibly high", g)
	}
	// RAMBDA-polling lands in the multi-core CPU range (paper: ~8 cores).
	if polling < 5*cpu1 || polling > 13*cpu1 {
		t.Fatalf("polling = %.1f cores-equivalent, want ~8", polling/cpu1)
	}

	ld, lh := m["dram/RAMBDA-LD"], m["dram/RAMBDA-LH"]
	if ld <= cpoll || lh <= ld {
		t.Fatalf("want LH (%v) > LD (%v) > cpoll (%v)", lh, ld, cpoll)
	}
	if lh > 4*cpoll {
		t.Fatalf("LH gain %.2f implausibly high", lh/cpoll)
	}

	// NVM: adaptive DDIO beats always-on DDIO by a modest margin.
	ddio, adaptive := m["nvm/RAMBDA-DDIO"], m["nvm/RAMBDA"]
	if adaptive <= ddio {
		t.Fatal("adaptive DDIO must beat DDIO-on for NVM rings")
	}
	if g := adaptive / ddio; g > 1.5 {
		t.Fatalf("adaptive gain %.2f implausibly high", g)
	}
}

func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	cfg := testKVSConfig()
	rows := Fig8(cfg)
	m := map[string]float64{}
	for _, r := range rows {
		m[r.System+"/"+r.Dist+"/"+r.Workload] = r.Throughput
	}

	cpu, rambda := m["CPU/uniform/get"], m["RAMBDA/uniform/get"]
	if rambda <= cpu {
		t.Fatalf("RAMBDA (%v) must edge out CPU (%v) at the network bound", rambda, cpu)
	}
	if rambda > 1.25*cpu {
		t.Fatalf("RAMBDA/CPU = %.2f, want a small gap (paper 2.3-8.3%%)", rambda/cpu)
	}
	// Distribution must not matter for CPU and RAMBDA.
	if z := m["RAMBDA/zipf/get"]; z < 0.9*rambda || z > 1.1*rambda {
		t.Fatal("RAMBDA must be distribution-insensitive")
	}
	// SmartNIC: uniform far below zipf, both far below CPU.
	su, sz := m["SmartNIC/uniform/get"], m["SmartNIC/zipf/get"]
	if su >= 0.75*sz {
		t.Fatalf("SmartNIC uniform (%v) must trail zipf (%v)", su, sz)
	}
	if sz >= cpu {
		t.Fatal("SmartNIC must trail CPU")
	}
	// LD/LH match base RAMBDA (all network-bound).
	if ld := m["RAMBDA-LD/uniform/get"]; ld < 0.9*rambda || ld > 1.1*rambda {
		t.Fatal("RAMBDA-LD should match base at the network bound")
	}
}

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	rows := Fig9(testKVSConfig())
	m := map[string]Fig9Row{}
	for _, r := range rows {
		m[r.System+"/"+r.Dist] = r
	}
	cpu, rambda, snic := m["CPU/uniform"], m["RAMBDA/uniform"], m["SmartNIC/uniform"]
	if rambda.P99 >= cpu.P99 {
		t.Fatalf("RAMBDA p99 (%v) must undercut CPU (%v)", rambda.P99, cpu.P99)
	}
	if rambda.P99 >= snic.P99 {
		t.Fatalf("RAMBDA p99 (%v) must undercut SmartNIC (%v)", rambda.P99, snic.P99)
	}
	// LD average sits below base RAMBDA (no UPI on the data path); its
	// tail is inapplicable.
	ld := m["RAMBDA-LD/uniform"]
	if ld.Avg >= rambda.Avg {
		t.Fatalf("LD avg (%v) must undercut base (%v)", ld.Avg, rambda.Avg)
	}
	if ld.P99 != 0 {
		t.Fatal("LD tail must be inapplicable")
	}
}

func TestFig10BatchSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	cfg := testKVSConfig()
	cfg.Requests = 6000
	rows := Fig10(cfg)
	first := map[string]Fig10Row{}
	last := map[string]Fig10Row{}
	for _, r := range rows {
		if r.Batch == 1 {
			first[r.System] = r
		}
		if r.Batch == 32 {
			last[r.System] = r
		}
	}
	for _, sys := range []string{"CPU", "SmartNIC", "RAMBDA"} {
		if last[sys].Throughput <= first[sys].Throughput {
			t.Fatalf("%s: batching must raise throughput", sys)
		}
	}
	cpuGain := last["CPU"].Throughput / first["CPU"].Throughput
	rambdaGain := last["RAMBDA"].Throughput / first["RAMBDA"].Throughput
	if rambdaGain >= cpuGain {
		t.Fatalf("RAMBDA gains less from batching than CPU (paper ~2x vs ~12x): %.1f vs %.1f",
			rambdaGain, cpuGain)
	}
	// RAMBDA latency grows sub-linearly with batch.
	if last["RAMBDA"].Avg >= 16*first["RAMBDA"].Avg {
		t.Fatal("RAMBDA latency must grow sub-linearly with batch")
	}
}

func TestTab3PowerEfficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	rows := Tab3(testKVSConfig())
	m := map[string]float64{}
	for _, r := range rows {
		m[r.System] = r.KopPerW
	}
	if m["RAMBDA"] <= m["CPU"] {
		t.Fatal("RAMBDA must beat CPU on Kop/W")
	}
	if m["SmartNIC"] >= m["CPU"] {
		t.Fatal("SmartNIC trails CPU on Kop/W in the uniform workload")
	}
}

func TestFig12Shapes(t *testing.T) {
	rows := Fig12(Fig12Config{Pairs: 4000, Transactions: 3000, Seed: 12})
	m := map[string]Fig12Row{}
	for _, r := range rows {
		m[r.System+"/"+r.Shape+"/"+string(rune('0'+r.ValueBytes/1024))] = r
	}
	get := func(sys, shape string, val int) Fig12Row {
		return m[sys+"/"+shape+"/"+string(rune('0'+val/1024))]
	}
	for _, val := range []int{64, 1024} {
		hl, rb := get("HyperLoop", "(0,1)", val), get("RAMBDA", "(0,1)", val)
		diff := float64(rb.Avg)/float64(hl.Avg) - 1
		if diff < -0.05 || diff > 0.08 {
			t.Fatalf("(0,1)@%dB parity broken: %.1f%%", val, diff*100)
		}
		hl, rb = get("HyperLoop", "(4,2)", val), get("RAMBDA", "(4,2)", val)
		red := 1 - float64(rb.Avg)/float64(hl.Avg)
		if red < 0.5 || red > 0.75 {
			t.Fatalf("(4,2)@%dB reduction=%.1f%%, want ~63-67%%", val, red*100)
		}
		redP99 := 1 - float64(rb.P99)/float64(hl.P99)
		if redP99 < 0.5 || redP99 > 0.78 {
			t.Fatalf("(4,2)@%dB p99 reduction=%.1f%%", val, redP99*100)
		}
	}
}

func TestFig13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	cfg := Fig13Config{Queries: 5000, Dim: 64, RowScale: 0.05, Seed: 13}
	cat := dlrm.AmazonCategories[0]

	cpu1 := fig13CPU(cat, cfg, 1)
	cpu8 := fig13CPU(cat, cfg, 8)
	if cpu8 < 3*cpu1 {
		t.Fatalf("CPU-8 (%v) must scale well past CPU-1 (%v)", cpu8, cpu1)
	}
	base := fig13Rambda(cat, cfg, coreVariantBase())
	if base >= 0.5*cpu1 {
		t.Fatalf("base RAMBDA (%v) must fall far below CPU-1 (%v) — paper 19.7-31.3%%", base, cpu1)
	}
	if base < 0.1*cpu1 {
		t.Fatalf("base RAMBDA (%v) implausibly slow vs CPU-1 (%v)", base, cpu1)
	}
	ld := fig13Rambda(cat, cfg, coreVariantLD())
	lh := fig13Rambda(cat, cfg, coreVariantLH())
	if !(lh > ld && ld > base) {
		t.Fatalf("want LH (%v) > LD (%v) > base (%v)", lh, ld, base)
	}
	if lh <= cpu8 {
		t.Fatalf("LH (%v) must exceed CPU-8 (%v)", lh, cpu8)
	}
}

func TestTablesRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "n")
	s := tab.String()
	if s == "" || len(s) < 20 {
		t.Fatal("render")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad row width must panic")
		}
	}()
	tab.AddRow("only-one")
}

// TestParallelMatchesSequentialFig7 asserts the harness's core
// guarantee: the same seeds produce byte-identical rendered tables
// whether the sweep runs on one worker or eight.
func TestParallelMatchesSequentialFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	cfg := testFig7Config()
	cfg.Requests = 6000
	cfg.Parallel = 1
	seq := Fig7Table(cfg).String()
	cfg.Parallel = 8
	par := Fig7Table(cfg).String()
	if seq != par {
		t.Fatalf("fig7 output differs between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestParallelMatchesSequentialFig8 covers the KVS path, whose points
// build full client/server machines, SmartNIC caches, and Zipf streams.
func TestParallelMatchesSequentialFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	cfg := testKVSConfig()
	cfg.Requests = 5000
	cfg.Parallel = 1
	seq := Fig8Table(cfg).String()
	cfg.Parallel = 8
	par := Fig8Table(cfg).String()
	if seq != par {
		t.Fatalf("fig8 output differs between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestSpecJobsCoverAllSlots asserts every figure Spec enumerates at
// least one job and renders without running into an unfilled slot
// (small scales keep this fast; the render itself would panic on a
// malformed table).
func TestSpecJobsCoverAllSlots(t *testing.T) {
	kcfg := testKVSConfig()
	kcfg.Requests = 500
	specs := []Spec{
		Fig1Spec(300, 1),
		Fig5Spec(),
		Tab3Spec(kcfg),
		Fig12Spec(Fig12Config{Pairs: 500, Transactions: 200, Seed: 12}),
		ScalabilitySpec(ScalabilityConfig{Sweep: []int{4, 8}, RingEntries: 8, EntryBytes: 64, Requests: 400, Seed: 31}),
	}
	for _, s := range specs {
		if len(s.Jobs) == 0 {
			t.Fatalf("%s: no jobs", s.ID)
		}
		for i, j := range s.Jobs {
			if j.Experiment != s.ID || j.Point != i {
				t.Fatalf("%s: job %d misidentified as %s[%d]", s.ID, i, j.Experiment, j.Point)
			}
		}
		tab := RunSpec(4, s)
		if tab.ID != s.ID {
			t.Fatalf("%s: rendered table carries ID %q", s.ID, tab.ID)
		}
		if len(tab.Rows) != len(s.Jobs) {
			t.Fatalf("%s: rendered %d rows from %d jobs", s.ID, len(tab.Rows), len(s.Jobs))
		}
	}
}

func TestZipfWorkloadSkew(t *testing.T) {
	cfg := testKVSConfig()
	w := newKVSWorkload(cfg, true, false)
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[string(w.next().Key)]++
	}
	if counts[string(kvsKey(0))] < 50 {
		t.Fatal("zipf workload must hammer the hottest key")
	}
}

func TestScalabilitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	cfg := ScalabilityConfig{
		Sweep: []int{8, 64, 256}, RingEntries: 16, EntryBytes: 64,
		Requests: 6000, Seed: 31,
	}
	rows := Scalability(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i, r := range rows {
		// The pinned cpoll region stays at ~4 B per connection.
		if r.CpollRegionB > uint64(r.Connections*8) {
			t.Fatalf("cpoll region %d B for %d conns", r.CpollRegionB, r.Connections)
		}
		if i > 0 && r.Throughput < rows[i-1].Throughput*8/10 {
			t.Fatalf("throughput collapsed at %d connections: %v -> %v",
				r.Connections, rows[i-1].Throughput, r.Throughput)
		}
	}
}
