package experiments

import (
	"testing"

	"rambda/internal/runner"
)

// testChaosConfig is small enough to run under -race in CI.
func testChaosConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Writes = 800
	cfg.Txs = 400
	return cfg
}

func TestChaosLossInflatesTailAndErodesGoodput(t *testing.T) {
	cfg := testChaosConfig()
	rows, chain := runChaos(t, cfg)
	if len(rows) != len(cfg.LossRates) {
		t.Fatalf("rows=%d", len(rows))
	}
	clean := rows[0]
	if clean.Retransmits != 0 {
		t.Fatalf("clean point retransmitted %d times", clean.Retransmits)
	}
	worst := rows[len(rows)-1]
	if worst.Retransmits == 0 {
		t.Fatal("5% loss must drive retransmissions")
	}
	if worst.P99Latency <= clean.P99Latency {
		t.Fatalf("loss must inflate p99: clean=%v lossy=%v", clean.P99Latency, worst.P99Latency)
	}
	if worst.Goodput >= clean.Goodput {
		t.Fatalf("loss must erode goodput: clean=%.0f lossy=%.0f", clean.Goodput, worst.Goodput)
	}

	// The crash half: the chain committed every transaction, spliced the
	// victim out once, and the rejoined replica is state-equal.
	if chain.Committed != cfg.Txs {
		t.Fatalf("committed %d/%d", chain.Committed, cfg.Txs)
	}
	if chain.Failovers != 1 || chain.Rejoins != 1 {
		t.Fatalf("chain row %+v, want one failover and one rejoin", chain)
	}
	if chain.ReplayedTx == 0 || chain.CaughtUpTx == 0 {
		t.Fatalf("rejoin must replay and catch up: %+v", chain)
	}
	if !chain.StateEqual {
		t.Fatal("rejoined replica not state-equal with the head")
	}
}

func TestChaosDeterministicAcrossRuns(t *testing.T) {
	// Fixed seed => byte-identical rendered table on every run.
	cfg := testChaosConfig()
	r1 := ChaosTable(cfg).String()
	r2 := ChaosTable(cfg).String()
	if r1 != r2 {
		t.Fatalf("chaos table diverged across runs:\n--- run1 ---\n%s--- run2 ---\n%s", r1, r2)
	}
}

func runChaos(t *testing.T, cfg ChaosConfig) ([]ChaosLossRow, ChaosChainRow) {
	t.Helper()
	rows, jobs := chaosPlan(cfg)
	runner.MustRun(0, jobs)
	return rows()
}
