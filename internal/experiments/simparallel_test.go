package experiments

import (
	"testing"

	"rambda/internal/runner"
	"rambda/internal/sim"
)

// TestSimParallelEquivalence is the partition-count analog of the
// golden tests: the rendered -quick tables for a figure driven by the
// partitioned engine and its pipelined streams must be byte-identical
// at every -sim-parallel value. fig7/fig8 cover the KVS request
// pipeline, scaleout covers partitioned shard construction on top of
// it; fig5 (the two-partition engine cut) rides in the same sweep.
func TestSimParallelEquivalence(t *testing.T) {
	if goldenRaceEnabled {
		t.Skip("quick figure sweeps are too slow under -race; the engine's race coverage lives in internal/sim and internal/scaleout")
	}
	if testing.Short() {
		t.Skip("quick figure sweeps take minutes; skipped with -short")
	}
	render := func(id string, workers int) string {
		sim.SetParallel(workers)
		defer sim.SetParallel(1)
		specs := StandardSpecs(true)
		for i := range specs {
			if specs[i].ID == id {
				runner.MustRun(0, specs[i].Jobs)
				return specs[i].Table().String()
			}
		}
		t.Fatalf("StandardSpecs lost %s", id)
		return ""
	}
	for _, id := range []string{"fig5", "fig7", "fig8", "scaleout"} {
		id := id
		t.Run(id, func(t *testing.T) {
			base := render(id, 1)
			for _, w := range []int{2, 4} {
				if got := render(id, w); got != base {
					t.Errorf("%s diverged at -sim-parallel %d.\n--- sim-parallel %d ---\n%s--- sim-parallel 1 ---\n%s", id, w, w, got, base)
				}
			}
		})
	}
}
