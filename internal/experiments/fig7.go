package experiments

import (
	"encoding/binary"

	"rambda/internal/core"
	"rambda/internal/hostcpu"
	"rambda/internal/memspace"
	"rambda/internal/runner"
	"rambda/internal/sim"
)

// Fig7Row is one bar of Fig. 7: microbenchmark throughput of one
// configuration, normalized within its memory type (DRAM results to
// 1-core CPU, NVM results to RAMBDA-DDIO, as in the paper).
type Fig7Row struct {
	Mem        string // "dram" | "nvm"
	Config     string
	Throughput float64 // requests/sec
	Normalized float64
}

// Fig7Config scales the experiment (the paper uses a 10M-node list and
// 1M requests; defaults here are scaled for simulation turnaround —
// see DESIGN.md on scaling).
type Fig7Config struct {
	Nodes    int
	Requests int // per configuration
	Window   int // outstanding requests per connection
	Seed     uint64
	Parallel int // sweep-point workers; 0 = runner default
}

// DefaultFig7Config returns the scaled experiment size.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{Nodes: 1 << 20, Requests: 60000, Window: 16, Seed: 7}
}

// linkedList is the microbenchmark data structure: a permuted cycle of
// 64 B nodes ([8B next index][8B value][48B padding]).
type linkedList struct {
	region *memspace.Region
	space  *memspace.Space
	nodes  int
}

const nodeBytes = 64

func buildLinkedList(space *memspace.Space, kind memspace.Kind, nodes int, rng *sim.RNG) *linkedList {
	region := space.Alloc("microbench-list", uint64(nodes*nodeBytes), kind)
	perm := rng.Perm(nodes)
	buf := region.Bytes()
	for i := 0; i < nodes; i++ {
		binary.LittleEndian.PutUint64(buf[i*nodeBytes:], uint64(perm[i]))
		binary.LittleEndian.PutUint64(buf[i*nodeBytes+8:], uint64(i)*3+1)
	}
	return &linkedList{region: region, space: space, nodes: nodes}
}

func (l *linkedList) addr(i int) memspace.Addr {
	return l.region.Base + memspace.Addr(i%l.nodes*nodeBytes)
}

func (l *linkedList) next(i int) int {
	return int(binary.LittleEndian.Uint64(l.space.Slice(l.addr(i), 8)))
}

func (l *linkedList) value(i int) uint64 {
	return binary.LittleEndian.Uint64(l.space.Slice(l.addr(i)+8, 8))
}

// traverse walks three nodes starting at idx and returns the final
// node's value plus the visited node indices (paper: "randomly pick a
// node ... traverse the two succeeding nodes, and return the value in
// the second node").
func (l *linkedList) traverse(idx int) (uint64, [3]int) {
	a := idx % l.nodes
	b := l.next(a)
	c := l.next(b)
	return l.value(c), [3]int{a, b, c}
}

// cpuMicrobenchCycles is the per-request instruction path of the CPU
// implementation (request parse, pointer chase bookkeeping, response),
// calibrated so a single Skylake core lands near the paper's
// single-core baseline.
const cpuMicrobenchCycles = 600

// fig7CPU measures k CPU cores fed from the other NUMA node via shared
// memory, batch size 16 (the paper's throughput-optimal setting).
func fig7CPU(cfg Fig7Config, cores int, nvm bool) float64 {
	m := core.NewMachine(core.MachineConfig{Name: "srv", Cores: cores, WithNVM: nvm})
	kind := memspace.KindDRAM
	if nvm {
		kind = memspace.KindNVM
	}
	rng := sim.NewRNG(cfg.Seed)
	list := buildLinkedList(m.Space, kind, cfg.Nodes, rng)

	const batch = 16
	clients := cores * batch
	perClient := cfg.Requests / clients
	if perClient < 1 {
		perClient = 1
	}
	wrng := sim.NewRNG(cfg.Seed + 1)
	res := sim.ClosedLoop{Clients: clients, PerClient: perClient, Warmup: 2}.Run(
		func(_ int, issue sim.Time) sim.Time {
			start := wrng.Intn(cfg.Nodes)
			_, visited := list.traverse(start)
			return m.CPU.Process(issue, hostcpu.Work{
				Cycles:      cpuMicrobenchCycles,
				Accesses:    3,
				AccessBytes: nodeBytes,
				Addr:        list.addr(visited[0]),
				Batch:       batch,
			})
		})
	return res.Throughput
}

// walkerApp is the RAMBDA APU for the microbenchmark: three dependent
// coherent reads plus a little ALU work.
func walkerApp(list *linkedList) core.App {
	return core.AppFunc(func(ctx *core.AppCtx, now sim.Time, req []byte) ([]byte, sim.Time) {
		idx := int(binary.LittleEndian.Uint64(req))
		t := now
		cur := idx % list.nodes
		var val uint64
		for hop := 0; hop < 3; hop++ {
			t = ctx.Read(t, list.addr(cur), nodeBytes)
			val = list.value(cur)
			cur = list.next(cur)
		}
		t = ctx.Compute(t, 12)
		resp := make([]byte, 8)
		binary.LittleEndian.PutUint64(resp, val)
		return resp, t
	})
}

// fig7Rambda measures the prototype accelerator (optionally with
// spin-polling instead of cpoll), fed intra-machine like the paper's
// microbenchmark.
func fig7Rambda(cfg Fig7Config, notify core.NotifyMode) float64 {
	m := core.NewMachine(core.MachineConfig{Name: "srv", Variant: core.AccelBase})
	rng := sim.NewRNG(cfg.Seed)
	list := buildLinkedList(m.Space, memspace.KindDRAM, cfg.Nodes, rng)

	opts := core.DefaultServerOptions()
	opts.Connections = 16
	opts.RingEntries = cfg.Window * 2
	opts.EntryBytes = 64
	opts.Notify = notify
	s := core.NewServer(m, walkerApp(list), opts)
	clients := make([]*core.LocalClient, opts.Connections)
	for i := range clients {
		clients[i] = core.ConnectLocalClient(s, i)
	}

	total := opts.Connections * cfg.Window
	perClient := cfg.Requests / total
	if perClient < 1 {
		perClient = 1
	}
	wrng := sim.NewRNG(cfg.Seed + 2)
	req := make([]byte, 8)
	res := sim.ClosedLoop{Clients: total, PerClient: perClient, Warmup: 2}.Run(
		func(id int, issue sim.Time) sim.Time {
			binary.LittleEndian.PutUint64(req, uint64(wrng.Intn(cfg.Nodes)))
			_, done := clients[id%opts.Connections].Call(issue, req)
			return done
		})
	return res.Throughput
}

// fig7LocalMem measures the RAMBDA-LD/LH projection: application data
// in accelerator-local memory and requests generated inside the FPGA
// (the paper's U280 emulation methodology, Sec. V).
func fig7LocalMem(cfg Fig7Config, variant core.AccelVariant) float64 {
	m := core.NewMachine(core.MachineConfig{
		Name: "srv", Variant: variant,
		AccelLocalBytes: uint64(cfg.Nodes * nodeBytes),
	})
	rng := sim.NewRNG(cfg.Seed)
	list := buildLinkedList(m.Space, memspace.KindAccelLocal, cfg.Nodes, rng)
	app := walkerApp(list)
	ctx := &core.AppCtx{M: m, A: m.Accel}

	total := 16 * cfg.Window
	perClient := cfg.Requests / total
	if perClient < 1 {
		perClient = 1
	}
	wrng := sim.NewRNG(cfg.Seed + 3)
	req := make([]byte, 8)
	res := sim.ClosedLoop{Clients: total, PerClient: perClient, Warmup: 2}.Run(
		func(_ int, issue sim.Time) sim.Time {
			binary.LittleEndian.PutUint64(req, uint64(wrng.Intn(cfg.Nodes)))
			// In-FPGA request generation: a couple of fabric cycles.
			t := m.Accel.Compute(issue, 2)
			_, done := app.Handle(ctx, t, req)
			return done
		})
	return res.Throughput
}

// fig7NVM measures the NVM side: list and request rings in NVM (the
// rings double as the persistence log, as in RAMBDA-TX), fed
// intra-machine with RDMA-emulating writes per the paper's methodology,
// comparing adaptive DDIO (the RAMBDA default) against DDIO always-on
// ("RAMBDA-DDIO").
func fig7NVM(cfg Fig7Config, alwaysDDIO bool) float64 {
	m := core.NewMachine(core.MachineConfig{
		Name: "srv", Variant: core.AccelBase, WithNVM: true, DDIOEnabled: alwaysDDIO,
	})
	rng := sim.NewRNG(cfg.Seed)
	list := buildLinkedList(m.Space, memspace.KindNVM, cfg.Nodes, rng)

	window := cfg.Window * 4 // deep pipelining so NVM, not latency, binds
	opts := core.DefaultServerOptions()
	opts.Connections = 16
	opts.RingEntries = window * 2
	opts.EntryBytes = 64
	opts.RingKind = memspace.KindNVM
	s := core.NewServer(m, walkerApp(list), opts)
	clients := make([]*core.LocalClient, opts.Connections)
	for i := range clients {
		clients[i] = core.ConnectLocalClient(s, i)
	}

	total := opts.Connections * window
	perClient := cfg.Requests / total
	if perClient < 1 {
		perClient = 1
	}
	wrng := sim.NewRNG(cfg.Seed + 4)
	req := make([]byte, 8)
	res := sim.ClosedLoop{Clients: total, PerClient: perClient, Warmup: 2}.Run(
		func(id int, issue sim.Time) sim.Time {
			binary.LittleEndian.PutUint64(req, uint64(wrng.Intn(cfg.Nodes)))
			_, done := clients[id%opts.Connections].Call(issue, req)
			return done
		})
	return res.Throughput
}

// fig7Plan enumerates the sweep: eleven independent configurations,
// each building its own machine and RNGs. Normalization bases (DRAM
// results to CPU-1, NVM results to RAMBDA-DDIO) are applied by rows()
// after every point has run, so the points stay order-independent.
func fig7Plan(cfg Fig7Config) (func() []Fig7Row, []runner.Job) {
	points := []struct {
		mem, name string
		fn        func() float64
	}{
		{"dram", "CPU-1", func() float64 { return fig7CPU(cfg, 1, false) }},
		{"dram", "CPU-8", func() float64 { return fig7CPU(cfg, 8, false) }},
		{"dram", "CPU-16", func() float64 { return fig7CPU(cfg, 16, false) }},
		{"dram", "RAMBDA-polling", func() float64 { return fig7Rambda(cfg, core.NotifyPolling) }},
		{"dram", "RAMBDA", func() float64 { return fig7Rambda(cfg, core.NotifyCpoll) }},
		{"dram", "RAMBDA-LD", func() float64 { return fig7LocalMem(cfg, core.AccelLD) }},
		{"dram", "RAMBDA-LH", func() float64 { return fig7LocalMem(cfg, core.AccelLH) }},
		{"nvm", "CPU-1", func() float64 { return fig7CPU(cfg, 1, true) }},
		{"nvm", "CPU-8", func() float64 { return fig7CPU(cfg, 8, true) }},
		{"nvm", "RAMBDA-DDIO", func() float64 { return fig7NVM(cfg, true) }},
		{"nvm", "RAMBDA", func() float64 { return fig7NVM(cfg, false) }},
	}
	tputs := make([]float64, len(points))
	jobs := runner.Jobs("fig7", len(points),
		func(i int) string { return points[i].mem + "/" + points[i].name },
		func(i int) { tputs[i] = points[i].fn() })
	rows := func() []Fig7Row {
		base := map[string]float64{}
		for i, p := range points {
			if (p.mem == "dram" && p.name == "CPU-1") || (p.mem == "nvm" && p.name == "RAMBDA-DDIO") {
				base[p.mem] = tputs[i]
			}
		}
		out := make([]Fig7Row, len(points))
		for i, p := range points {
			out[i] = Fig7Row{Mem: p.mem, Config: p.name, Throughput: tputs[i], Normalized: tputs[i] / base[p.mem]}
		}
		return out
	}
	return rows, jobs
}

// Fig7 runs the whole microbenchmark sweep.
func Fig7(cfg Fig7Config) []Fig7Row {
	rows, jobs := fig7Plan(cfg)
	runner.MustRun(cfg.Parallel, jobs)
	return rows()
}

func fig7Render(rows []Fig7Row) *Table {
	t := &Table{
		ID:      "fig7",
		Title:   "Microbenchmark throughput (10M-node list walk, scaled)",
		Columns: []string{"mem", "config", "throughput", "normalized"},
		Notes: []string{
			"paper: CPU scales ~linearly; RAMBDA-polling ~= 8 cores; cpoll +~21.6%;",
			"LD/LH +114%~166% over cpoll; NVM: adaptive DDIO ~+20% over DDIO-on",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Mem, r.Config, mops(r.Throughput), f2(r.Normalized))
	}
	return t
}

// Fig7Spec exposes the sweep for a shared pool.
func Fig7Spec(cfg Fig7Config) Spec {
	rows, jobs := fig7Plan(cfg)
	return Spec{ID: "fig7", Jobs: jobs, Table: func() *Table { return fig7Render(rows()) }}
}

// Fig7Table renders Fig. 7.
func Fig7Table(cfg Fig7Config) *Table {
	return RunSpec(cfg.Parallel, Fig7Spec(cfg))
}
