package experiments

import (
	"fmt"

	"rambda/internal/chainrep"
	"rambda/internal/core"
	"rambda/internal/memspace"
	"rambda/internal/runner"
	"rambda/internal/sim"
)

// Fig12Row is one bar group of Fig. 12: end-to-end transaction latency
// for one (system, value size, transaction shape).
type Fig12Row struct {
	System     string
	ValueBytes int
	Shape      string // "(0,1)" or "(4,2)"
	Avg, P99   sim.Time
}

// Fig12Config sizes the chain-replication experiment.
type Fig12Config struct {
	Pairs        int // preloaded key-value pairs
	Transactions int
	Seed         uint64
	Parallel     int // sweep-point workers; 0 = runner default
}

// DefaultFig12Config mirrors the paper's 100K pairs / 100K transactions
// at simulation scale.
func DefaultFig12Config() Fig12Config {
	return Fig12Config{Pairs: 20000, Transactions: 20000, Seed: 12}
}

// fig12NodeConfigs calibrates per-replica processing: the RAMBDA
// accelerator executes concurrency control and the combined log entry
// (with a UPI crossing), the emulated HyperLoop RNIC firmware applies a
// single group-write.
var (
	rambdaNode = chainrep.NodeConfig{
		Name: "rambda", ProcDelay: 320 * sim.Nanosecond, PerTupleDelay: 50 * sim.Nanosecond,
	}
	hyperloopNode = chainrep.NodeConfig{
		Name: "hyperloop", ProcDelay: 250 * sim.Nanosecond,
	}
)

// newFig12Chain builds the emulated two-replica topology of Fig. 11:
// client<->chain over the datacenter link, replicas bridged by the
// client SmartNIC's ARM routing (the paper measures 2-3 us per hop).
func newFig12Chain(cfg Fig12Config, node chainrep.NodeConfig, valueBytes int) *chainrep.Chain {
	c := &chainrep.Chain{
		ClientOneWay: core.NetOneWay + core.PCIeProp,
		HopDelay:     2500 * sim.Nanosecond,
		WireBPS:      core.NetBW,
	}
	logEntry := chainrep.EntrySize(6, valueBytes)
	for i := 0; i < 2; i++ {
		space := memspace.New()
		mem := newHostMem(space)
		mem.LLC.DDIOEnabled = false // adaptive DDIO: NVM log written directly
		n := chainrep.NewNode(space, mem, node,
			uint64(cfg.Pairs)*uint64(valueBytes), 1024, logEntry)
		c.Nodes = append(c.Nodes, n)
	}
	// Preload the data area on every replica.
	val := make([]byte, valueBytes)
	for i := 0; i < cfg.Pairs; i++ {
		for _, n := range c.Nodes {
			n.Store.Write(0, uint32(i)*uint32(valueBytes), val)
		}
	}
	return c
}

// fig12TxScratch builds transactions of one shape into reusable backing
// (one per sweep point; the chain consumes a tx before the next build,
// and the shared zero data buffer is never written by the chain).
type fig12TxScratch struct {
	tx   chainrep.Tx
	used map[uint32]bool
	data []byte
}

func newFig12TxScratch(valueBytes int) *fig12TxScratch {
	return &fig12TxScratch{
		used: make(map[uint32]bool, 8),
		data: make([]byte, valueBytes),
	}
}

// build draws one transaction of the given shape over distinct random
// keys. The returned Tx aliases the scratch and is valid until the next
// build.
func (s *fig12TxScratch) build(rng *sim.RNG, pairs, reads, writes, valueBytes int) chainrep.Tx {
	s.tx.Reads = s.tx.Reads[:0]
	s.tx.Writes = s.tx.Writes[:0]
	clear(s.used)
	pick := func() uint32 {
		for {
			o := uint32(rng.Intn(pairs)) * uint32(valueBytes)
			if !s.used[o] {
				s.used[o] = true
				return o
			}
		}
	}
	for i := 0; i < reads; i++ {
		s.tx.Reads = append(s.tx.Reads, chainrep.ReadOp{Offset: pick(), Len: valueBytes})
	}
	for i := 0; i < writes; i++ {
		s.tx.Writes = append(s.tx.Writes, chainrep.Tuple{Offset: pick(), Data: s.data})
	}
	return s.tx
}

// fig12Point runs one (value size, shape, system) cell: a fresh chain
// and private RNG streams, transactions issued serially from one client
// as the paper does. Routing jitter (the 2-3 us ARM hop) provides the
// tail.
func fig12Point(cfg Fig12Config, node chainrep.NodeConfig, sysName string, reads, writes, valueBytes int) (avg, p99 sim.Time) {
	chain := newFig12Chain(cfg, node, valueBytes)
	rng := sim.NewRNG(cfg.Seed)
	jrng := sim.NewRNG(cfg.Seed + 1)
	hist := sim.NewHistogram(0)
	scratch := newFig12TxScratch(valueBytes)
	rsc := &chainrep.TxScratch{} // reused read buffers: steady-state reads don't allocate
	now := sim.Time(0)
	for i := 0; i < cfg.Transactions; i++ {
		// ARM routing wanders between 2 and 3 us (Sec. VI-C).
		chain.HopDelay = 2*sim.Microsecond + sim.Duration(jrng.Intn(1000))*sim.Nanosecond
		tx := scratch.build(rng, cfg.Pairs, reads, writes, valueBytes)
		var done sim.Time
		if sysName == "RAMBDA" {
			_, d, err := chain.RambdaTxInto(now, tx, rsc)
			if err != nil {
				panic(err)
			}
			done = d
		} else {
			_, done = chain.HyperLoopTxInto(now, tx, rsc)
		}
		hist.Record(done - now)
		now = done // serial client
	}
	return hist.Mean(), hist.P99()
}

// fig12Plan enumerates (value size x shape x system) as runner jobs.
func fig12Plan(cfg Fig12Config) ([]Fig12Row, []runner.Job) {
	shapes := []struct {
		name          string
		reads, writes int
	}{{"(0,1)", 0, 1}, {"(4,2)", 4, 2}}
	systems := []struct {
		name string
		node chainrep.NodeConfig
	}{{"HyperLoop", hyperloopNode}, {"RAMBDA", rambdaNode}}

	type point struct {
		valueBytes    int
		shape         string
		reads, writes int
		system        string
		node          chainrep.NodeConfig
	}
	var points []point
	for _, valueBytes := range []int{64, 1024} {
		for _, shape := range shapes {
			for _, sys := range systems {
				points = append(points, point{valueBytes, shape.name, shape.reads, shape.writes, sys.name, sys.node})
			}
		}
	}
	rows := make([]Fig12Row, len(points))
	jobs := runner.Jobs("fig12", len(points),
		func(i int) string {
			return fmt.Sprintf("%s/%dB/%s", points[i].system, points[i].valueBytes, points[i].shape)
		},
		func(i int) {
			p := points[i]
			avg, p99 := fig12Point(cfg, p.node, p.system, p.reads, p.writes, p.valueBytes)
			rows[i] = Fig12Row{System: p.system, ValueBytes: p.valueBytes, Shape: p.shape, Avg: avg, P99: p99}
		})
	return rows, jobs
}

// Fig12 measures both systems on 64 B and 1024 B values for the
// representative (0,1) and (4,2) transaction shapes.
func Fig12(cfg Fig12Config) []Fig12Row {
	rows, jobs := fig12Plan(cfg)
	runner.MustRun(cfg.Parallel, jobs)
	return rows
}

func fig12Render(rows []Fig12Row) *Table {
	t := &Table{
		ID:      "fig12",
		Title:   "Chain-replicated transaction latency (2 replicas, NVM log)",
		Columns: []string{"system", "value", "tx(r,w)", "avg", "p99"},
		Notes: []string{
			"paper: (0,1) parity within ~3%; (4,2): RAMBDA 63.2-66.8% lower avg, 64.5-69.1% lower p99",
		},
	}
	for _, r := range rows {
		t.AddRow(r.System, fmt.Sprintf("%dB", r.ValueBytes), r.Shape, r.Avg.String(), r.P99.String())
	}
	return t
}

// Fig12Spec exposes the sweep for a shared pool.
func Fig12Spec(cfg Fig12Config) Spec {
	rows, jobs := fig12Plan(cfg)
	return Spec{ID: "fig12", Jobs: jobs, Table: func() *Table { return fig12Render(rows) }}
}

// Fig12Table renders Fig. 12.
func Fig12Table(cfg Fig12Config) *Table {
	return RunSpec(cfg.Parallel, Fig12Spec(cfg))
}
