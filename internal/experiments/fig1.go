package experiments

import (
	"fmt"

	"rambda/internal/memdev"
	"rambda/internal/memspace"
	"rambda/internal/runner"
	"rambda/internal/sim"
	"rambda/internal/smartnic"
)

// Fig1Row is one point of Fig. 1: SmartNIC request latency vs the
// percentage of accesses that go to host memory.
type Fig1Row struct {
	HostPct int
	Avg     sim.Time
	P99     sim.Time
}

// fig1Point measures one host-access percentage on a private SmartNIC
// and memory system.
func fig1Point(requests int, seed uint64, pct int) Fig1Row {
	space := memspace.New()
	space.Alloc("host-buf", 1<<20, memspace.KindDRAM)
	host := &memdev.System{
		Space: space,
		DRAM:  memdev.NewDRAM("host:dram", 6, 128e9, 90*sim.Nanosecond),
		LLC:   memdev.NewLLC("host:llc", 300e9, 20*sim.Nanosecond),
	}
	nic := smartnic.New(smartnic.DefaultConfig("bf2"), host)
	rng := sim.NewRNG(seed + uint64(pct))
	hist := sim.NewHistogram(0)

	at := sim.Time(0)
	for r := 0; r < requests; r++ {
		start := at
		for i := 0; i < 100; i++ {
			if rng.Intn(100) < pct {
				at = nic.HostAccess(at, 64, 1)
			} else {
				at = nic.LocalAccess(at, 64)
			}
		}
		hist.Record(at - start)
	}
	return Fig1Row{HostPct: pct, Avg: hist.Mean(), P99: hist.P99()}
}

// fig1Plan enumerates the host-percentage sweep as runner jobs filling
// slot-indexed rows.
func fig1Plan(requests int, seed uint64) ([]Fig1Row, []runner.Job) {
	if requests <= 0 {
		requests = 20000
	}
	pcts := []int{0, 20, 40, 60, 80, 100}
	rows := make([]Fig1Row, len(pcts))
	jobs := runner.Jobs("fig1", len(pcts),
		func(i int) string { return fmt.Sprintf("host%%=%d", pcts[i]) },
		func(i int) { rows[i] = fig1Point(requests, seed, pcts[i]) })
	return rows, jobs
}

// Fig1 reproduces Fig. 1: requests of 100 back-to-back 64 B accesses on
// the BlueField-2's ARM cores, mixing on-board DRAM (load/store) and
// host DRAM (one-sided RDMA read over PCIe) at varying ratios.
func Fig1(requests int, seed uint64) []Fig1Row {
	rows, jobs := fig1Plan(requests, seed)
	runner.MustRun(0, jobs)
	return rows
}

func fig1Render(rows []Fig1Row) *Table {
	t := &Table{
		ID:      "fig1",
		Title:   "SmartNIC request latency vs host-memory access ratio (100x64B accesses/request)",
		Columns: []string{"host%", "avg", "p99"},
		Notes: []string{
			"paper: both average and p99 grow linearly with the host-access percentage",
		},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d%%", r.HostPct), r.Avg.String(), r.P99.String())
	}
	return t
}

// Fig1Spec exposes the sweep for a shared pool.
func Fig1Spec(requests int, seed uint64) Spec {
	rows, jobs := fig1Plan(requests, seed)
	return Spec{ID: "fig1", Jobs: jobs, Table: func() *Table { return fig1Render(rows) }}
}

// Fig1Table renders Fig. 1.
func Fig1Table(requests int, seed uint64) *Table {
	return RunSpec(0, Fig1Spec(requests, seed))
}
