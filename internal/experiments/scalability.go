package experiments

import (
	"fmt"

	"rambda/internal/core"
	"rambda/internal/runner"
	"rambda/internal/sim"
)

// ScalabilityRow is one point of the connection-count sweep backing the
// paper's Sec. III-F scalability argument: the dedicated buffer pair
// per connection costs little memory (1 GB serves 1K clients on the
// paper's 1 MB rings), the pointer-buffer cpoll region stays tiny, and
// throughput holds as connections grow.
type ScalabilityRow struct {
	Connections   int
	ServerRingsMB float64
	CpollRegionB  uint64
	PaperScaleGB  float64 // the paper's 1 MB-per-ring arithmetic
	Throughput    float64
}

// ScalabilityConfig sizes the sweep.
type ScalabilityConfig struct {
	Sweep       []int
	RingEntries int
	EntryBytes  int
	Requests    int
	Seed        uint64
	Parallel    int // sweep-point workers; 0 = runner default
}

// DefaultScalabilityConfig sweeps 16..1024 connections with scaled
// rings.
func DefaultScalabilityConfig() ScalabilityConfig {
	return ScalabilityConfig{
		Sweep:       []int{16, 64, 256, 1024},
		RingEntries: 32,
		EntryBytes:  64,
		Requests:    30000,
		Seed:        31,
	}
}

// scalabilityPoint measures the echo workload at one connection count
// on a private machine pair.
func scalabilityPoint(cfg ScalabilityConfig, conns int) ScalabilityRow {
	sm := core.NewMachine(core.MachineConfig{Name: "srv", Variant: core.AccelBase})
	cm := core.NewMachine(core.MachineConfig{Name: "cli"})
	core.ConnectMachines(sm, cm)

	app := core.AppFunc(func(ctx *core.AppCtx, now sim.Time, req []byte) ([]byte, sim.Time) {
		return req, ctx.Compute(now, 8)
	})
	opts := core.DefaultServerOptions()
	opts.Connections = conns
	opts.RingEntries = cfg.RingEntries
	opts.EntryBytes = cfg.EntryBytes
	s := core.NewServer(sm, app, opts)
	clients := make([]*core.Client, conns)
	for i := range clients {
		clients[i] = core.ConnectClient(cm, s, i)
	}

	perClient := cfg.Requests / conns
	if perClient < 2 {
		perClient = 2
	}
	res := sim.ClosedLoop{Clients: conns, PerClient: perClient, Warmup: 1,
		Stagger: 40 * sim.Nanosecond}.Run(
		func(id int, issue sim.Time) sim.Time {
			_, done := clients[id%conns].Call(issue, []byte{byte(id), byte(id >> 8)})
			return done
		})

	ringBytes := float64(conns*cfg.RingEntries*cfg.EntryBytes) / (1 << 20)
	return ScalabilityRow{
		Connections:   conns,
		ServerRingsMB: ringBytes,
		CpollRegionB:  s.Checker().Region().Size,
		PaperScaleGB:  float64(conns) / 1024, // 1 MB per 1K-entry ring
		Throughput:    res.Throughput,
	}
}

// scalabilityPlan enumerates the connection sweep as runner jobs.
func scalabilityPlan(cfg ScalabilityConfig) ([]ScalabilityRow, []runner.Job) {
	rows := make([]ScalabilityRow, len(cfg.Sweep))
	jobs := runner.Jobs("scalability", len(cfg.Sweep),
		func(i int) string { return fmt.Sprintf("conns=%d", cfg.Sweep[i]) },
		func(i int) { rows[i] = scalabilityPoint(cfg, cfg.Sweep[i]) })
	return rows, jobs
}

// Scalability measures an echo workload across the sweep.
func Scalability(cfg ScalabilityConfig) []ScalabilityRow {
	rows, jobs := scalabilityPlan(cfg)
	runner.MustRun(cfg.Parallel, jobs)
	return rows
}

func scalabilityRender(rows []ScalabilityRow) *Table {
	t := &Table{
		ID:      "scalability",
		Title:   "Connection scaling (Sec. III-F): dedicated rings + pointer-buffer cpoll",
		Columns: []string{"connections", "server rings", "cpoll region", "paper-scale rings", "throughput"},
		Notes: []string{
			"paper: 1K clients need ~1 GB of rings (1 MB each) and sharing does not limit scalability;",
			"the pointer buffer keeps the pinned cpoll region at 4 B per connection",
		},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Connections),
			fmt.Sprintf("%.2f MB", r.ServerRingsMB),
			fmt.Sprintf("%d B", r.CpollRegionB),
			fmt.Sprintf("%.2f GB", r.PaperScaleGB),
			mops(r.Throughput),
		)
	}
	return t
}

// ScalabilitySpec exposes the sweep for a shared pool.
func ScalabilitySpec(cfg ScalabilityConfig) Spec {
	rows, jobs := scalabilityPlan(cfg)
	return Spec{ID: "scalability", Jobs: jobs, Table: func() *Table { return scalabilityRender(rows) }}
}

// ScalabilityTable renders the sweep.
func ScalabilityTable(cfg ScalabilityConfig) *Table {
	return RunSpec(cfg.Parallel, ScalabilitySpec(cfg))
}
