package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"rambda/internal/runner"
)

// TestQuickFigureGoldenOutput pins the rendered -quick fig7 and fig8
// tables byte-for-byte against goldens captured before the sim hot-path
// optimization (indexed gap placement, typed heaps, cached
// percentiles). The optimization's contract is that placement decisions
// — and therefore every figure — are unchanged; any diff here means the
// engine's virtual-time behaviour drifted, not just a formatting nit.
// If a future PR changes the *model* deliberately, regenerate with:
//
//	go run ./cmd/rambda-figures -quick -only fig7   (resp. fig8)
//
// and update testdata/.
func TestQuickFigureGoldenOutput(t *testing.T) {
	if goldenRaceEnabled {
		t.Skip("quick figure sweeps are too slow under -race; determinism is covered unraced")
	}
	if testing.Short() {
		t.Skip("quick figure sweeps take minutes; skipped with -short")
	}
	specs := StandardSpecs(true)
	for _, id := range []string{"fig7", "fig8"} {
		var spec *Spec
		for i := range specs {
			if specs[i].ID == id {
				spec = &specs[i]
				break
			}
		}
		if spec == nil {
			t.Fatalf("StandardSpecs lost %s", id)
		}
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", id+"_quick.golden"))
			if err != nil {
				t.Fatal(err)
			}
			runner.MustRun(0, spec.Jobs)
			if got := spec.Table().String(); got != string(want) {
				t.Errorf("%s -quick output diverged from pre-optimization golden.\n--- got ---\n%s--- want ---\n%s", id, got, want)
			}
		})
	}
}
