//go:build !race

package experiments

// goldenRaceEnabled mirrors internal/sim's raceEnabled: the golden
// figure regeneration is minutes of pure compute and is skipped under
// the race detector (determinism is single-goroutine per job anyway).
const goldenRaceEnabled = false
