package experiments

import (
	"encoding/binary"
	"fmt"

	"rambda/internal/core"
	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/runner"
	"rambda/internal/sim"
)

// BreakdownConfig sizes the per-stage latency-breakdown experiment: it
// re-runs the fig7 microbenchmark path and the fig8 KVS path with the
// observability collector attached and reports where each request's
// virtual time goes (NIC / wire / ring / notify / compute / memory).
type BreakdownConfig struct {
	Requests int
	Seed     uint64
	Parallel int // sweep-point workers; 0 = runner default

	// TraceOut and MetricsOut, when non-empty, export the collected
	// spans as Chrome trace_event JSON and the metrics registry as JSON
	// after the jobs have run. Same seed, same files, byte for byte.
	TraceOut   string
	MetricsOut string
}

// DefaultBreakdownConfig returns the standalone experiment size.
func DefaultBreakdownConfig() BreakdownConfig {
	return BreakdownConfig{Requests: 8000, Seed: 21}
}

// breakdownMetricsInterval is the virtual-time ticker period for
// registry samples.
const breakdownMetricsInterval = 50 * sim.Microsecond

// breakdownMicrobench drives the fig7 RAMBDA-cpoll configuration (the
// intra-machine list walk) serially with the collector attached.
func breakdownMicrobench(cfg BreakdownConfig, tr *obs.Trace, reg *obs.Registry) {
	m := core.NewMachine(core.MachineConfig{Name: "srv", Variant: core.AccelBase})
	rng := sim.NewRNG(cfg.Seed)
	const nodes = 1 << 18
	list := buildLinkedList(m.Space, memspace.KindDRAM, nodes, rng)

	opts := core.DefaultServerOptions()
	opts.Connections = 16
	opts.RingEntries = 32
	opts.EntryBytes = 64
	opts.Trace = tr
	opts.Metrics = reg
	s := core.NewServer(m, walkerApp(list), opts)
	clients := make([]*core.LocalClient, opts.Connections)
	for i := range clients {
		clients[i] = core.ConnectLocalClient(s, i)
	}
	reg.SetInterval(breakdownMetricsInterval)

	wrng := sim.NewRNG(cfg.Seed + 2)
	req := make([]byte, 8)
	now := sim.Time(0)
	for i := 0; i < cfg.Requests; i++ {
		binary.LittleEndian.PutUint64(req, uint64(wrng.Intn(nodes)))
		_, done := clients[i%opts.Connections].Call(now, req)
		now = done
	}
	reg.SnapshotNow(now)
}

// breakdownKVS drives the fig8 RAMBDA KVS (remote clients over RDMA)
// serially with the collector attached, GET-only uniform keys.
func breakdownKVS(cfg BreakdownConfig, tr *obs.Trace, reg *obs.Registry) {
	k := DefaultKVSConfig()
	k.Keys = 1 << 18
	k.Requests = cfg.Requests
	k.Seed = cfg.Seed
	r := newRambdaKVSObs(k, core.AccelBase, 1, tr, reg)
	reg.SetInterval(breakdownMetricsInterval)

	w := newKVSWorkload(k, false, false)
	now := sim.Time(0)
	for i := 0; i < cfg.Requests; i++ {
		_, done := r.callOn(i, now, w.next())
		now = done
	}
	reg.SnapshotNow(now)
}

// breakdownPaths enumerates the instrumented request paths.
var breakdownPaths = []struct {
	name string
	run  func(BreakdownConfig, *obs.Trace, *obs.Registry)
}{
	{"fig7/RAMBDA", breakdownMicrobench},
	{"fig8/RAMBDA", breakdownKVS},
}

func breakdownRender(cfg BreakdownConfig, traces []*obs.Trace, regs []*obs.Registry) *Table {
	t := &Table{
		ID:      "breakdown",
		Title:   "Per-stage latency breakdown (virtual-time self time, collector attached)",
		Columns: []string{"path", "stage", "spans", "self", "share"},
		Notes: []string{
			"self time = span duration minus nested spans; other = envelope slack (client think/queueing)",
		},
	}
	for i, p := range breakdownPaths {
		for _, r := range obs.BreakdownRows(traces[i]) {
			t.AddRow(p.name, r.Stage.String(), fmt.Sprintf("%d", r.Count),
				r.Self.String(), fmt.Sprintf("%.1f%%", r.Share*100))
		}
	}
	if cfg.TraceOut != "" {
		tj := make([]obs.TraceJSON, len(breakdownPaths))
		for i, p := range breakdownPaths {
			tj[i] = obs.TraceJSON{Name: p.name, Trace: traces[i], PID: i + 1}
		}
		if err := obs.WriteChromeTraceFile(cfg.TraceOut, tj); err != nil {
			panic(fmt.Sprintf("breakdown: write trace: %v", err))
		}
		// Constant note (no path): the rendered table must stay
		// byte-identical across runs that export to different files.
		t.Notes = append(t.Notes, "chrome trace exported (-trace-out)")
	}
	if cfg.MetricsOut != "" {
		mj := make([]obs.MetricsJSON, len(breakdownPaths))
		for i, p := range breakdownPaths {
			mj[i] = obs.MetricsJSON{Name: p.name, Registry: regs[i]}
		}
		if err := obs.WriteMetricsFile(cfg.MetricsOut, mj); err != nil {
			panic(fmt.Sprintf("breakdown: write metrics: %v", err))
		}
		t.Notes = append(t.Notes, "metrics exported (-metrics-out)")
	}
	return t
}

// breakdownPlan enumerates the paths as runner jobs, each with its own
// slot-indexed collector.
func breakdownPlan(cfg BreakdownConfig) (func() *Table, []runner.Job) {
	traces := make([]*obs.Trace, len(breakdownPaths))
	regs := make([]*obs.Registry, len(breakdownPaths))
	jobs := runner.Jobs("breakdown", len(breakdownPaths),
		func(i int) string { return breakdownPaths[i].name },
		func(i int) {
			traces[i] = obs.NewTrace()
			regs[i] = obs.NewRegistry()
			breakdownPaths[i].run(cfg, traces[i], regs[i])
		})
	return func() *Table { return breakdownRender(cfg, traces, regs) }, jobs
}

// BreakdownSpec exposes the experiment for a shared pool.
func BreakdownSpec(cfg BreakdownConfig) Spec {
	table, jobs := breakdownPlan(cfg)
	return Spec{ID: "breakdown", Jobs: jobs, Table: table}
}

// Breakdown runs the experiment and renders its table.
func Breakdown(cfg BreakdownConfig) *Table {
	return RunSpec(cfg.Parallel, BreakdownSpec(cfg))
}
