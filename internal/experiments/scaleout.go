package experiments

import (
	"encoding/binary"
	"fmt"

	"rambda/internal/obs"
	"rambda/internal/runner"
	"rambda/internal/scaleout"
	"rambda/internal/sim"
)

// The scaleout experiment is not a paper figure: it takes the chainrep
// building block multi-machine, the way Sec. VII sketches RAMBDA pods
// composing into a cluster. A consistent-hash ring partitions the key
// space across N shard chains, clients route through possibly-stale
// shard maps, and per-shard hot-key sketches drive live migrations
// (snapshot copy + catch-up log + atomic map flip) when the Zipf skew
// concentrates load. The sweep reports goodput and tail latency per
// (shards x skew) point alongside the migration counters and the
// per-window load-imbalance ratio before and after rebalancing.

// ScaleoutConfig sizes the sharded-cluster sweep.
type ScaleoutConfig struct {
	// Shards and Thetas span the sweep grid; theta 0 is the uniform
	// distribution, larger is more skewed (YCSB Zipf, item 0 hottest).
	Shards []int
	Thetas []float64
	// Keys is the preloaded key universe; ValueBytes the payload per
	// pair; Requests the measured request count per point; PutPercent
	// the write share of the mix; Frontends the number of client-side
	// routers cycling through the workload.
	Keys       int
	ValueBytes int
	Requests   int
	PutPercent int
	Frontends  int
	Seed       uint64
	Parallel   int // sweep-point workers; 0 = runner default

	// OpenLoopInterval, when > 0, switches the workload from the
	// closed loop (each frontend issues its next request when the
	// previous one completes — the load self-throttles under slowdown)
	// to an open-loop arrival process: every frontend issues a request
	// each interval regardless of completions, the way real datacenter
	// load arrives. Under overload or fault windows the open loop keeps
	// pushing and response times grow with the backlog — the queueing
	// collapse a closed loop structurally cannot show. 0 (the default)
	// keeps the closed loop and its byte-identical output.
	OpenLoopInterval sim.Duration

	// MetricsOut, when non-empty, exports every point's metrics
	// registry (imbalance gauge, migration counters, per-shard served
	// counts over virtual time) as one JSON file after the jobs have
	// run. Same seed, same file, byte for byte.
	MetricsOut string
}

// DefaultScaleoutConfig returns the full-size sweep.
func DefaultScaleoutConfig() ScaleoutConfig {
	return ScaleoutConfig{
		Shards:     []int{2, 4, 8},
		Thetas:     []float64{0, 0.90, 0.99},
		Keys:       1 << 16,
		ValueBytes: 46,
		Requests:   24000,
		PutPercent: 10,
		Frontends:  8,
		Seed:       29,
	}
}

// scaleoutMetricsInterval is the virtual-time ticker period for
// registry samples.
const scaleoutMetricsInterval = 5 * sim.Millisecond

// ScaleoutRow is one (shards, skew) point of the sweep.
type ScaleoutRow struct {
	Shards       int
	Theta        float64
	Goodput      float64 // successful requests/sec of virtual time
	Avg, P99     sim.Time
	Migrations   int64
	MovedKeys    int64
	StaleRetries int64
	ImbFirst     float64 // max/mean shard load, first detection window
	ImbLast      float64 // max/mean shard load, final detection window
}

// scaleoutDist renders a theta as a distribution label.
func scaleoutDist(theta float64) string {
	if theta == 0 {
		return "uniform"
	}
	return fmt.Sprintf("zipf%.2f", theta)
}

// scaleoutCluster maps an experiment point onto a cluster config: the
// chainrep testbed parameters, stores sized for the point's share of
// the key universe (double headroom for ring imbalance plus migrated
// hot keys), and a detection policy of ~12 windows per run.
func scaleoutCluster(cfg ScaleoutConfig, shards int, seed uint64) scaleout.Config {
	ccfg := scaleout.DefaultConfig()
	ccfg.Shards = shards
	ccfg.Seed = seed
	ccfg.SlotsPerShard = 2*cfg.Keys/shards + 1024
	ccfg.RebalanceEvery = cfg.Requests / 12
	ccfg.ImbalanceThreshold = 1.15
	ccfg.HotKeysPerMove = 8
	ccfg.MaxMigrations = 16
	return ccfg
}

// scaleoutPoint preloads one cluster and drives the skewed closed-loop
// workload through rotating frontends. reg may be nil (the fast path);
// when set, the cluster's gauges are sampled on the virtual-time ticker
// so the export shows the imbalance dropping as migrations land.
func scaleoutPoint(cfg ScaleoutConfig, shards int, theta float64, point int,
	reg *obs.Registry) ScaleoutRow {
	seed := runner.Seed("scaleout", point)
	c := scaleout.New(scaleoutCluster(cfg, shards, seed))
	if reg != nil {
		c.RegisterMetrics(reg, "scaleout")
		reg.SetInterval(scaleoutMetricsInterval)
	}

	var key []byte
	val := make([]byte, cfg.ValueBytes)
	now := sim.Time(0)
	for i := 0; i < cfg.Keys; i++ {
		key = appendKVSKey(key[:0], i)
		binary.LittleEndian.PutUint64(val, uint64(i))
		now = c.Preload(now, key, val)
	}
	t0 := now

	wrng := sim.NewRNG(runner.SubSeed(seed, 1))
	var zipf *sim.Zipf
	if theta > 0 {
		zipf = sim.NewZipf(wrng, uint64(cfg.Keys), theta)
	}
	fes := make([]*scaleout.Frontend, cfg.Frontends)
	for i := range fes {
		fes[i] = c.NewFrontend()
	}
	nextKey := func() int {
		if zipf != nil {
			return int(zipf.Next())
		}
		return wrng.Intn(cfg.Keys)
	}
	if cfg.OpenLoopInterval > 0 {
		// Open loop: issue times are fixed by the arrival process (the
		// driver's clock is relative, so completions are rebased to t0);
		// the request sequence still draws from wrng in driver event
		// order, which is deterministic.
		reqIdx := 0
		drv := sim.OpenLoop{
			Clients:  cfg.Frontends,
			PerCli:   cfg.Requests / cfg.Frontends,
			Interval: cfg.OpenLoopInterval,
		}
		res := drv.Run(func(cli int, issue sim.Time) sim.Time {
			i := reqIdx
			reqIdx++
			key = appendKVSKey(key[:0], nextKey())
			fe := fes[cli]
			if wrng.Intn(100) < cfg.PutPercent {
				binary.LittleEndian.PutUint64(val, uint64(i))
				return fe.Put(t0+issue, key, val) - t0
			}
			_, done := fe.Get(t0+issue, key)
			return done - t0
		})
		now = t0 + res.End
	} else {
		for i := 0; i < cfg.Requests; i++ {
			key = appendKVSKey(key[:0], nextKey())
			fe := fes[i%len(fes)]
			if wrng.Intn(100) < cfg.PutPercent {
				binary.LittleEndian.PutUint64(val, uint64(i))
				now = fe.Put(now, key, val)
			} else {
				_, done := fe.Get(now, key)
				now = done
			}
		}
	}
	if reg != nil {
		reg.SnapshotNow(now)
	}

	st := c.Stats()
	hist := c.MergedLatency()
	executed := cfg.Requests
	if cfg.OpenLoopInterval > 0 {
		executed = (cfg.Requests / cfg.Frontends) * cfg.Frontends
	}
	goodput := 0.0
	if now > t0 {
		goodput = float64(executed) / (float64(now-t0) / float64(sim.Second))
	}
	return ScaleoutRow{
		Shards:       shards,
		Theta:        theta,
		Goodput:      goodput,
		Avg:          hist.Mean(),
		P99:          hist.P99(),
		Migrations:   st.Migrations,
		MovedKeys:    st.MovedKeys,
		StaleRetries: st.StaleRetries,
		ImbFirst:     st.FirstImbalance,
		ImbLast:      st.LastImbalance,
	}
}

// scaleoutPlan enumerates the (shards x theta) grid as runner jobs.
// Registries are slot-indexed like the rows, so the export is identical
// for every worker count.
func scaleoutPlan(cfg ScaleoutConfig) (func() *Table, []runner.Job) {
	type point struct {
		shards int
		theta  float64
	}
	var points []point
	for _, s := range cfg.Shards {
		for _, th := range cfg.Thetas {
			points = append(points, point{s, th})
		}
	}
	rows := make([]ScaleoutRow, len(points))
	var regs []*obs.Registry
	if cfg.MetricsOut != "" {
		regs = make([]*obs.Registry, len(points))
	}
	jobs := runner.Jobs("scaleout", len(points),
		func(i int) string {
			return fmt.Sprintf("shards=%d/%s", points[i].shards, scaleoutDist(points[i].theta))
		},
		func(i int) {
			var reg *obs.Registry
			if regs != nil {
				regs[i] = obs.NewRegistry()
				reg = regs[i]
			}
			rows[i] = scaleoutPoint(cfg, points[i].shards, points[i].theta, i, reg)
		})
	return func() *Table { return scaleoutRender(cfg, rows, regs) }, jobs
}

func scaleoutRender(cfg ScaleoutConfig, rows []ScaleoutRow, regs []*obs.Registry) *Table {
	t := &Table{
		ID:    "scaleout",
		Title: "Sharded scale-out KVS: consistent hashing + hot-key migration",
		Columns: []string{"shards", "dist", "goodput", "avg", "p99",
			"migrations", "moved", "stale-retries", "imb-first", "imb-last"},
		Notes: []string{
			"imbalance = max/mean requests per shard within a detection window; migration triggers above 1.15",
			"stale retries: requests re-routed after a map refresh; each executes exactly once",
		},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Shards),
			scaleoutDist(r.Theta),
			fmt.Sprintf("%.1f Kops", r.Goodput/1e3),
			usStr(r.Avg),
			usStr(r.P99),
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%d", r.MovedKeys),
			fmt.Sprintf("%d", r.StaleRetries),
			f2(r.ImbFirst),
			f2(r.ImbLast),
		)
	}
	if cfg.MetricsOut != "" {
		mj := make([]obs.MetricsJSON, len(regs))
		for i, reg := range regs {
			mj[i] = obs.MetricsJSON{Name: fmt.Sprintf("shards=%d/%s",
				rows[i].Shards, scaleoutDist(rows[i].Theta)), Registry: reg}
		}
		if err := obs.WriteMetricsFile(cfg.MetricsOut, mj); err != nil {
			panic(fmt.Sprintf("scaleout: write metrics: %v", err))
		}
		// Constant note (no path): the rendered table must stay
		// byte-identical across runs that export to different files.
		t.Notes = append(t.Notes, "metrics exported (-scaleout-metrics-out)")
	}
	return t
}

// ScaleoutSpec exposes the sweep for a shared pool.
func ScaleoutSpec(cfg ScaleoutConfig) Spec {
	table, jobs := scaleoutPlan(cfg)
	return Spec{ID: "scaleout", Jobs: jobs, Table: table}
}

// ScaleoutTable runs the whole sweep and renders it.
func ScaleoutTable(cfg ScaleoutConfig) *Table {
	return RunSpec(cfg.Parallel, ScaleoutSpec(cfg))
}
