package experiments

import (
	"encoding/binary"
	"fmt"

	"rambda/internal/core"
	"rambda/internal/hostcpu"
	"rambda/internal/kvs"
	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/power"
	"rambda/internal/runner"
	"rambda/internal/sim"
	"rambda/internal/smartnic"
)

// KVSConfig sizes the Figs. 8-10 key-value store experiments. The
// paper preloads 100M 64 B pairs (~7 GB); the simulated store is scaled
// down with the SmartNIC cache held at the same cache:data ratio
// (512 MB : 7 GB).
type KVSConfig struct {
	Keys        int
	ValueBytes  int
	Connections int
	Batch       int
	Requests    int
	ZipfTheta   float64
	Seed        uint64
	Parallel    int // sweep-point workers; 0 = runner default
}

// DefaultKVSConfig returns the scaled experiment.
func DefaultKVSConfig() KVSConfig {
	return KVSConfig{
		Keys:        1 << 20,
		ValueBytes:  46, // key 18 B + value 46 B = the paper's 64 B pairs
		Connections: 10,
		Batch:       32,
		Requests:    60000,
		ZipfTheta:   0.99,
		Seed:        8,
	}
}

func kvsKey(i int) []byte { return appendKVSKey(nil, i) }

// appendKVSKey appends key i ("user" + 14-digit zero-padded decimal,
// the paper's 18 B keys) onto dst — the allocation-free formatter the
// hot request loops use with a reusable buffer.
func appendKVSKey(dst []byte, i int) []byte {
	dst = append(dst, "user"...)
	var digits [14]byte
	for p := len(digits) - 1; p >= 0; p-- {
		digits[p] = byte('0' + i%10)
		i /= 10
	}
	return append(dst, digits[:]...)
}

// kvsZeroSlab backs the KVS handlers' functional writes: the model
// writes zero bytes over each traced write address (the store already
// placed the real item bytes; the handler's write charge only needs
// *some* data to move). Sharing one read-only slab keeps the steady
// state allocation-free — memspace.Write copies from it and nothing
// may ever write into it.
var kvsZeroSlab [4096]byte

func zeros(n int) []byte {
	if n <= len(kvsZeroSlab) {
		return kvsZeroSlab[:n]
	}
	return make([]byte, n)
}

// kvsWorkload generates the request stream: uniform or Zipf-skewed key
// choice, GET-only or 50/50 GET/PUT.
type kvsWorkload struct {
	cfg     KVSConfig
	rng     *sim.RNG
	zipf    *sim.Zipf
	skewed  bool
	writes  bool
	valBase []byte
	// keyBuf backs the generated request's key; each next() overwrites
	// it, so a request is only valid until the following next().
	keyBuf []byte
}

func newKVSWorkload(cfg KVSConfig, skewed, writes bool) *kvsWorkload {
	rng := sim.NewRNG(cfg.Seed + 0x17)
	w := &kvsWorkload{
		cfg: cfg, rng: rng, skewed: skewed, writes: writes,
		valBase: make([]byte, cfg.ValueBytes),
	}
	if skewed {
		w.zipf = sim.NewZipf(rng, uint64(cfg.Keys), cfg.ZipfTheta)
	}
	return w
}

func (w *kvsWorkload) next() kvs.Request {
	var k int
	if w.skewed {
		k = int(w.zipf.Next())
	} else {
		k = w.rng.Intn(w.cfg.Keys)
	}
	w.keyBuf = appendKVSKey(w.keyBuf[:0], k)
	if w.writes && w.rng.Intn(2) == 0 {
		binary.LittleEndian.PutUint64(w.valBase, uint64(k))
		return kvs.Request{Op: kvs.OpPut, Key: w.keyBuf, Val: w.valBase}
	}
	return kvs.Request{Op: kvs.OpGet, Key: w.keyBuf}
}

// preload fills a store with the experiment's pairs.
func preloadStore(space *memspace.Space, kind memspace.Kind, cfg KVSConfig) *kvs.Store {
	store := kvs.New(space, kvs.Config{
		Buckets:   cfg.Keys / 4,
		PoolBytes: uint64(cfg.Keys) * 160,
		Kind:      kind,
	})
	val := make([]byte, cfg.ValueBytes)
	var key []byte
	var trace []kvs.Access
	for i := 0; i < cfg.Keys; i++ {
		binary.LittleEndian.PutUint64(val, uint64(i))
		key = appendKVSKey(key[:0], i)
		t, err := store.PutInto(trace[:0], key, val)
		if err != nil {
			panic(err)
		}
		trace = t
	}
	return store
}

// --- RAMBDA KVS (Sec. IV-A) ---

// kvsAPUCycles is the APU's per-request processing (hash unit,
// (de)serializer, FSM transitions).
const kvsAPUCycles = 6

type rambdaKVS struct {
	clients []*core.Client
	n       int

	// Per-system request-path scratch (each sweep point drives its
	// system from one goroutine): the store's value/trace scratch plus
	// reusable encode buffers for the wire request and response.
	sc      kvs.Scratch
	reqBuf  []byte
	respBuf []byte
}

func newRambdaKVS(cfg KVSConfig, variant core.AccelVariant, batch int) *rambdaKVS {
	return newRambdaKVSObs(cfg, variant, batch, nil, nil)
}

// newRambdaKVSObs is newRambdaKVS with an observability collector
// attached (the breakdown experiment); tr/reg nil is the regular
// uninstrumented fast path.
func newRambdaKVSObs(cfg KVSConfig, variant core.AccelVariant, batch int,
	tr *obs.Trace, reg *obs.Registry) *rambdaKVS {
	sm := core.NewMachine(core.MachineConfig{Name: "srv", Variant: variant})
	cm := core.NewMachine(core.MachineConfig{Name: "cli"})
	core.ConnectMachines(sm, cm)
	kind := sm.DataKind()
	store := preloadStore(sm.Space, kind, cfg)
	if reg != nil {
		store.RegisterMetrics(reg, "kvs")
	}
	r := &rambdaKVS{n: cfg.Connections}

	app := core.AppFunc(func(ctx *core.AppCtx, now sim.Time, reqBytes []byte) ([]byte, sim.Time) {
		req, err := kvs.DecodeRequest(reqBytes)
		if err != nil {
			panic(err)
		}
		t := ctx.Compute(now, kvsAPUCycles)
		resp, trace := kvs.ApplyScratch(store, req, &r.sc)
		for _, a := range trace {
			if a.Write {
				t = ctx.Write(t, a.Addr, zeros(a.Bytes))
			} else {
				t = ctx.Read(t, a.Addr, a.Bytes)
			}
		}
		r.respBuf = kvs.AppendResponse(r.respBuf[:0], resp)
		return r.respBuf, t
	})

	opts := core.DefaultServerOptions()
	opts.Connections = cfg.Connections
	opts.RingEntries = cfg.Batch * 4
	opts.EntryBytes = 128
	opts.ResponseBatch = batch
	opts.Trace = tr
	opts.Metrics = reg
	s := core.NewServer(sm, app, opts)
	for i := 0; i < cfg.Connections; i++ {
		r.clients = append(r.clients, core.ConnectClient(cm, s, i))
	}
	return r
}

// callOn routes to a specific connection.
func (r *rambdaKVS) callOn(id int, now sim.Time, req kvs.Request) (kvs.Response, sim.Time) {
	r.reqBuf = kvs.AppendRequest(r.reqBuf[:0], req)
	respB, done := r.clients[id%r.n].Call(now, r.reqBuf)
	resp, err := kvs.DecodeResponse(respB)
	if err != nil {
		panic(err)
	}
	return resp, done
}

// --- CPU KVS (MICA-backed two-sided RDMA RPC) ---

// cpuKVSCycles is the per-request instruction path of the optimized
// MICA server (hashing, probing, response marshalling).
const cpuKVSCycles = 900

type cpuKVS struct {
	clients []*core.CPUClient
	n       int

	// Per-system request-path scratch, same discipline as rambdaKVS.
	sc      kvs.Scratch
	reqBuf  []byte
	respBuf []byte
}

func newCPUKVS(cfg KVSConfig, batch int, jitter bool) *cpuKVS {
	sm := core.NewMachine(core.MachineConfig{Name: "srv", Cores: 10}) // paper: ten server threads
	cm := core.NewMachine(core.MachineConfig{Name: "cli"})
	core.ConnectMachines(sm, cm)
	store := preloadStore(sm.Space, memspace.KindDRAM, cfg)
	c := &cpuKVS{n: cfg.Connections}

	h := core.CPUHandler(func(reqBytes []byte) ([]byte, hostcpu.Work) {
		req, err := kvs.DecodeRequest(reqBytes)
		if err != nil {
			panic(err)
		}
		resp, trace := kvs.ApplyScratch(store, req, &c.sc)
		addr := store.IndexRange().Base
		if len(trace) > 0 {
			addr = trace[0].Addr
		}
		c.respBuf = kvs.AppendResponse(c.respBuf[:0], resp)
		return c.respBuf, hostcpu.Work{
			Cycles:      cpuKVSCycles,
			Accesses:    len(trace),
			AccessBytes: 64,
			Addr:        addr,
		}
	})
	opts := core.DefaultCPUServerOptions()
	opts.Connections = cfg.Connections
	opts.RingEntries = cfg.Batch * 4
	opts.EntryBytes = 128
	opts.Batch = batch
	if jitter {
		opts.JitterProb = 0.03
		opts.JitterCycles = 9000 // ~4.5us scheduling hiccup
		opts.JitterSeed = cfg.Seed
	}
	s := core.NewCPUServer(sm, h, opts)
	for i := 0; i < cfg.Connections; i++ {
		c.clients = append(c.clients, core.ConnectCPUClient(cm, s, i))
	}
	return c
}

func (c *cpuKVS) callOn(id int, now sim.Time, req kvs.Request) (kvs.Response, sim.Time) {
	c.reqBuf = kvs.AppendRequest(c.reqBuf[:0], req)
	respB, done := c.clients[id%c.n].Call(now, c.reqBuf)
	resp, err := kvs.DecodeResponse(respB)
	if err != nil {
		panic(err)
	}
	return resp, done
}

// --- SmartNIC KVS (KV-Direct/StRoM emulated on ARM cores) ---

// snicKVS serves requests on the SmartNIC's ARM cores with a 512 MB
// (scaled) on-board cache; misses fetch from host memory over PCIe.
type snicKVS struct {
	cfg   KVSConfig
	snic  *smartnic.SmartNIC
	cache *smartnic.LRUCache
	store *kvs.Store
	net   sim.Duration // client<->NIC one-way

	// sc is the store's per-system value/trace scratch; cache inserts
	// must NOT alias it (they copy), since it is overwritten per request.
	sc kvs.Scratch
}

// snicARMCycles is the per-request ARM processing, calibrated so eight
// ARM cores on all-local data match six Intel cores (Sec. VI-B).
const snicARMCycles = 2200

// newSNICKVS builds the SmartNIC baseline: ARM cores pipeline through
// the eight-core pool; request batching has no further effect on the
// dependent host-access chain.
func newSNICKVS(cfg KVSConfig) *snicKVS {
	space := memspace.New()
	store := preloadStore(space, memspace.KindDRAM, cfg)
	nic := smartnic.New(smartnic.DefaultConfig("bf2"), newHostMem(space))
	// Cache : data ratio follows the paper (512MB : 7GB ~= 1:14).
	dataBytes := int64(cfg.Keys) * 160
	s := &snicKVS{
		cfg:   cfg,
		snic:  nic,
		cache: smartnic.NewLRUCache(dataBytes / 14),
		store: store,
		net:   core.NetOneWay,
	}
	// Warm the cache with the hottest keys (the generator's Zipf ranks
	// low indices hottest), standing in for a long-running server whose
	// cache reached steady state.
	var key []byte
	var trace []kvs.Access
	for i := 0; i < cfg.Keys; i++ {
		key = appendKVSKey(key[:0], i)
		// Fresh value allocation per iteration (dst nil): the cache
		// retains it. Only the trace scratch is reused.
		v, t, ok := store.GetInto(nil, trace[:0], key)
		trace = t
		if !ok {
			panic("snic prewarm: missing key")
		}
		before := s.cache.Len()
		s.cache.PutBytes(key, v)
		if s.cache.Len() == before {
			break // capacity reached
		}
	}
	return s
}

func (s *snicKVS) callOn(_ int, now sim.Time, req kvs.Request) (kvs.Response, sim.Time) {
	// Request arrives at the NIC (no host PCIe on the network path).
	arrive := now + s.net

	// Walk the processing chain: ARM instruction path, then the KVS
	// accesses — on-board DRAM for cache hits, one-sided RDMA over the
	// PCIe link for misses. The accesses are a dependent chain, so the
	// core is blocked for the whole walk (the mechanism behind Fig. 1
	// and the SmartNIC's distribution sensitivity in Fig. 8).
	t := arrive + sim.Duration(float64(snicARMCycles)/s.snic.Config().ClockHz*float64(sim.Second))
	var resp kvs.Response
	switch req.Op {
	case kvs.OpGet:
		if v, ok := s.cache.GetBytes(req.Key); ok {
			for i := 0; i < 3; i++ {
				t = s.snic.LocalAccess(t, 64)
			}
			resp = kvs.Response{Status: kvs.StatusOK, Val: v}
		} else {
			r, trace := kvs.ApplyScratch(s.store, req, &s.sc)
			for range trace {
				t = s.snic.HostAccess(t, 64, 1)
			}
			resp = r
			if r.Status == kvs.StatusOK {
				// The cache retains the value: copy it out of the scratch.
				s.cache.PutBytes(req.Key, append([]byte(nil), r.Val...))
			}
		}
	case kvs.OpPut:
		// Writes go to the host copy; the cached entry is refreshed.
		r, trace := kvs.ApplyScratch(s.store, req, &s.sc)
		for range trace {
			t = s.snic.HostAccess(t, 64, 1)
		}
		s.cache.PutBytes(req.Key, append([]byte(nil), req.Val...))
		resp = r
	default:
		resp = kvs.Response{Status: kvs.StatusError}
	}
	// The core was occupied for the whole walk; queue behind the eight
	// ARM cores.
	_, end := s.snic.Cores().Occupy(arrive, t-arrive)
	return resp, end + s.net
}

// Fig8Row is one bar of Fig. 8.
type Fig8Row struct {
	System     string
	Dist       string // uniform | zipf
	Workload   string // get | mixed
	Throughput float64
}

type kvsCaller interface {
	callOn(id int, now sim.Time, req kvs.Request) (kvs.Response, sim.Time)
}

// kvsWork is one pipelined request slot: the generator's key/value are
// copied in (next() reuses its own buffers per call), so a slot stays
// valid for the one request that consumes it.
type kvsWork struct {
	op  kvs.Op
	key []byte
	val []byte
}

func measureKVS(cfg KVSConfig, sys kvsCaller, skewed, writes bool, window int) *sim.Result {
	w := newKVSWorkload(cfg, skewed, writes)
	total := cfg.Connections * window
	perClient := cfg.Requests / total
	if perClient < 1 {
		perClient = 1
	}
	// The key stream is timing-independent (request k is consumed by the
	// k-th request in walk order), so the generator runs ahead of the
	// timing walk through the pipeline's slot ring.
	stream := sim.NewPipeline(total*perClient, 64, 16, func(_ int, wk *kvsWork) {
		req := w.next()
		wk.op = req.Op
		wk.key = append(wk.key[:0], req.Key...)
		if req.Op == kvs.OpPut {
			wk.val = append(wk.val[:0], req.Val...)
		}
	})
	defer stream.Close()
	return sim.ClosedLoop{Clients: total, PerClient: perClient, Warmup: 2, Stagger: 40 * sim.Nanosecond, Jitter: 400 * sim.Nanosecond, JitterSeed: cfg.Seed}.Run(
		func(id int, issue sim.Time) sim.Time {
			wk := stream.Next()
			req := kvs.Request{Op: wk.op, Key: wk.key}
			if wk.op == kvs.OpPut {
				req.Val = wk.val
			}
			resp, done := sys.callOn(id, issue, req)
			if resp.Status == kvs.StatusError {
				panic("kvs experiment: server error")
			}
			return done
		})
}

// kvsSystems enumerates the Fig. 8-10 system matrix in table order.
// Each factory builds a fresh, fully isolated system (machines, store,
// cache), so one sweep point never observes another's state.
func kvsSystems(cfg KVSConfig) []struct {
	name string
	mk   func() kvsCaller
} {
	return []struct {
		name string
		mk   func() kvsCaller
	}{
		{"CPU", func() kvsCaller { return newCPUKVS(cfg, cfg.Batch, false) }},
		{"SmartNIC", func() kvsCaller { return newSNICKVS(cfg) }},
		{"RAMBDA", func() kvsCaller { return newRambdaKVS(cfg, core.AccelBase, cfg.Batch) }},
		{"RAMBDA-LD", func() kvsCaller { return newRambdaKVS(cfg, core.AccelLD, cfg.Batch) }},
		{"RAMBDA-LH", func() kvsCaller { return newRambdaKVS(cfg, core.AccelLH, cfg.Batch) }},
	}
}

var kvsDists = []struct {
	name   string
	skewed bool
}{{"uniform", false}, {"zipf", true}}

// fig8Plan enumerates (system x dist x workload) as runner jobs.
func fig8Plan(cfg KVSConfig) ([]Fig8Row, []runner.Job) {
	systems := kvsSystems(cfg)
	workloads := []struct {
		name   string
		writes bool
	}{{"get", false}, {"mixed", true}}

	type point struct {
		system string
		mk     func() kvsCaller
		dist   string
		skewed bool
		wl     string
		writes bool
	}
	var points []point
	for _, s := range systems {
		for _, dist := range kvsDists {
			for _, wl := range workloads {
				points = append(points, point{s.name, s.mk, dist.name, dist.skewed, wl.name, wl.writes})
			}
		}
	}
	rows := make([]Fig8Row, len(points))
	jobs := runner.Jobs("fig8", len(points),
		func(i int) string { return points[i].system + "/" + points[i].dist + "/" + points[i].wl },
		func(i int) {
			p := points[i]
			res := measureKVS(cfg, p.mk(), p.skewed, p.writes, cfg.Batch)
			rows[i] = Fig8Row{System: p.system, Dist: p.dist, Workload: p.wl, Throughput: res.Throughput}
		})
	return rows, jobs
}

// Fig8 measures peak throughput (batch 32) for every design under both
// distributions and workload mixes.
func Fig8(cfg KVSConfig) []Fig8Row {
	rows, jobs := fig8Plan(cfg)
	runner.MustRun(cfg.Parallel, jobs)
	return rows
}

func fig8Render(rows []Fig8Row) *Table {
	t := &Table{
		ID:      "fig8",
		Title:   "KVS peak throughput, batch 32",
		Columns: []string{"system", "dist", "workload", "throughput"},
		Notes: []string{
			"paper: CPU ~= RAMBDA (network-bound; RAMBDA +2.3-8.3%); SmartNIC uniform ~= 27-29% of its zipf",
		},
	}
	for _, r := range rows {
		t.AddRow(r.System, r.Dist, r.Workload, mops(r.Throughput))
	}
	return t
}

// Fig8Spec exposes the sweep for a shared pool.
func Fig8Spec(cfg KVSConfig) Spec {
	rows, jobs := fig8Plan(cfg)
	return Spec{ID: "fig8", Jobs: jobs, Table: func() *Table { return fig8Render(rows) }}
}

// Fig8Table renders Fig. 8.
func Fig8Table(cfg KVSConfig) *Table {
	return RunSpec(cfg.Parallel, Fig8Spec(cfg))
}

// Fig9Row is one latency bar of Fig. 9 (100% GET).
type Fig9Row struct {
	System string
	Dist   string
	Avg    sim.Time
	P99    sim.Time // zero when inapplicable (LD/LH emulation)
}

// fig9Plan enumerates (system x dist) latency points as runner jobs.
// Latency is measured at moderate load so path latency and jitter, not
// closed-loop equilibrium, dominate. The SmartNIC saturates far below
// the others; its latency is measured at a sustainable load (window 1),
// like the paper's per-system latency runs.
func fig9Plan(cfg KVSConfig) ([]Fig9Row, []runner.Job) {
	systems := []struct {
		name        string
		tailApplies bool
		window      int
		mk          func() kvsCaller
	}{
		{"CPU", true, 8, func() kvsCaller { return newCPUKVS(cfg, cfg.Batch, true) }},
		{"SmartNIC", true, 1, func() kvsCaller { return newSNICKVS(cfg) }},
		{"RAMBDA", true, 8, func() kvsCaller { return newRambdaKVS(cfg, core.AccelBase, cfg.Batch) }},
		{"RAMBDA-LD", false, 8, func() kvsCaller { return newRambdaKVS(cfg, core.AccelLD, cfg.Batch) }},
		{"RAMBDA-LH", false, 8, func() kvsCaller { return newRambdaKVS(cfg, core.AccelLH, cfg.Batch) }},
	}
	type point struct {
		sys    int
		dist   string
		skewed bool
	}
	var points []point
	for si := range systems {
		for _, dist := range kvsDists {
			points = append(points, point{si, dist.name, dist.skewed})
		}
	}
	rows := make([]Fig9Row, len(points))
	jobs := runner.Jobs("fig9", len(points),
		func(i int) string { return systems[points[i].sys].name + "/" + points[i].dist },
		func(i int) {
			p := points[i]
			s := systems[p.sys]
			res := measureKVS(cfg, s.mk(), p.skewed, false, s.window)
			row := Fig9Row{System: s.name, Dist: p.dist, Avg: res.Latency.Mean()}
			if s.tailApplies {
				row.P99 = res.Latency.P99()
			}
			rows[i] = row
		})
	return rows, jobs
}

// Fig9 measures average and tail latency under moderate load (100%
// GET, batch 32).
func Fig9(cfg KVSConfig) []Fig9Row {
	rows, jobs := fig9Plan(cfg)
	runner.MustRun(cfg.Parallel, jobs)
	return rows
}

func fig9Render(rows []Fig9Row) *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "KVS latency, 100% GET, batch 32",
		Columns: []string{"system", "dist", "avg", "p99"},
		Notes: []string{
			"paper: RAMBDA avg slightly above CPU (UPI hop); LD below; p99: RAMBDA 30.1% under CPU, 52.0% under SmartNIC",
			"LD/LH tail marked n/a exactly as in the paper (average-only emulation)",
		},
	}
	for _, r := range rows {
		p99 := "n/a"
		if r.P99 != 0 {
			p99 = r.P99.String()
		}
		t.AddRow(r.System, r.Dist, r.Avg.String(), p99)
	}
	return t
}

// Fig9Spec exposes the sweep for a shared pool.
func Fig9Spec(cfg KVSConfig) Spec {
	rows, jobs := fig9Plan(cfg)
	return Spec{ID: "fig9", Jobs: jobs, Table: func() *Table { return fig9Render(rows) }}
}

// Fig9Table renders Fig. 9.
func Fig9Table(cfg KVSConfig) *Table {
	return RunSpec(cfg.Parallel, Fig9Spec(cfg))
}

// Fig10Row is one point of the batch sweep.
type Fig10Row struct {
	System     string
	Batch      int
	Throughput float64
	Avg        sim.Time
}

// fig10Plan enumerates the batch sweep as runner jobs. CPU and SmartNIC
// clients pipeline `batch` requests per connection (the batch is their
// window); RAMBDA needs no request batching — its batch knob only
// amortizes response doorbells, and the client window stays at the ring
// depth (paper Sec. VI-B).
func fig10Plan(cfg KVSConfig) ([]Fig10Row, []runner.Job) {
	batches := []int{1, 2, 4, 8, 16, 32}
	systems := []struct {
		name string
		mk   func(batch int) kvsCaller
		win  func(batch int) int
	}{
		{"CPU", func(b int) kvsCaller { return newCPUKVS(cfg, b, false) }, func(b int) int { return b }},
		{"SmartNIC", func(int) kvsCaller { return newSNICKVS(cfg) }, func(b int) int { return b }},
		{"RAMBDA", func(b int) kvsCaller { return newRambdaKVS(cfg, core.AccelBase, b) }, func(int) int { return cfg.Batch }},
	}
	type point struct {
		sys   int
		batch int
	}
	var points []point
	for si := range systems {
		for _, b := range batches {
			points = append(points, point{si, b})
		}
	}
	rows := make([]Fig10Row, len(points))
	jobs := runner.Jobs("fig10", len(points),
		func(i int) string { return fmt.Sprintf("%s/batch=%d", systems[points[i].sys].name, points[i].batch) },
		func(i int) {
			p := points[i]
			s := systems[p.sys]
			res := measureKVS(cfg, s.mk(p.batch), true, false, s.win(p.batch))
			rows[i] = Fig10Row{System: s.name, Batch: p.batch, Throughput: res.Throughput, Avg: res.Latency.Mean()}
		})
	return rows, jobs
}

// Fig10 sweeps the batch size on the Zipf GET workload. The client
// window equals the batch size (HERD clients post batches of B).
func Fig10(cfg KVSConfig) []Fig10Row {
	rows, jobs := fig10Plan(cfg)
	runner.MustRun(cfg.Parallel, jobs)
	return rows
}

func fig10Render(rows []Fig10Row) *Table {
	t := &Table{
		ID:      "fig10",
		Title:   "Batch size impact (100% GET, Zipf)",
		Columns: []string{"system", "batch", "throughput", "avg latency"},
		Notes: []string{
			"paper: batching lifts CPU/SmartNIC ~12x and RAMBDA ~2x; RAMBDA latency grows sub-linearly",
		},
	}
	for _, r := range rows {
		t.AddRow(r.System, fmt.Sprintf("%d", r.Batch), mops(r.Throughput), r.Avg.String())
	}
	return t
}

// Fig10Spec exposes the sweep for a shared pool.
func Fig10Spec(cfg KVSConfig) Spec {
	rows, jobs := fig10Plan(cfg)
	return Spec{ID: "fig10", Jobs: jobs, Table: func() *Table { return fig10Render(rows) }}
}

// Fig10Table renders Fig. 10.
func Fig10Table(cfg KVSConfig) *Table {
	return RunSpec(cfg.Parallel, Fig10Spec(cfg))
}

// Tab3Row is one column of Tab. III.
type Tab3Row struct {
	System  string
	Watts   float64
	KopPerW float64
}

// tab3Plan enumerates the three power-efficiency measurements at the
// Fig. 8 uniform-GET operating point.
func tab3Plan(cfg KVSConfig) ([]Tab3Row, []runner.Job) {
	systems := []struct {
		name  string
		watts float64
		mk    func() kvsCaller
	}{
		{"CPU", power.CPUFullLoad, func() kvsCaller { return newCPUKVS(cfg, cfg.Batch, false) }},
		{"SmartNIC", power.SmartNICARMs, func() kvsCaller { return newSNICKVS(cfg) }},
		{"RAMBDA", power.RambdaFPGA, func() kvsCaller { return newRambdaKVS(cfg, core.AccelBase, cfg.Batch) }},
	}
	rows := make([]Tab3Row, len(systems))
	jobs := runner.Jobs("tab3", len(systems),
		func(i int) string { return systems[i].name },
		func(i int) {
			s := systems[i]
			tput := measureKVS(cfg, s.mk(), false, false, cfg.Batch).Throughput
			rows[i] = Tab3Row{System: s.name, Watts: s.watts, KopPerW: power.KopsPerWatt(tput, s.watts)}
		})
	return rows, jobs
}

// Tab3 computes power efficiency at the Fig. 8 uniform-GET operating
// point using the paper's measured component wattages.
func Tab3(cfg KVSConfig) []Tab3Row {
	rows, jobs := tab3Plan(cfg)
	runner.MustRun(cfg.Parallel, jobs)
	return rows
}

func tab3Render(rows []Tab3Row) *Table {
	t := &Table{
		ID:      "tab3",
		Title:   "Power efficiency, GET/uniform (Kop/W)",
		Columns: []string{"system", "watts", "Kop/W"},
		Notes: []string{
			"paper: CPU 130.4, SmartNIC 25.2, RAMBDA 188.7 Kop/W; box-level power -38% with RAMBDA",
			fmt.Sprintf("whole-box reduction (IPMI constants): %.0f%%", power.BoxReduction()*100),
		},
	}
	for _, r := range rows {
		t.AddRow(r.System, f1(r.Watts), f1(r.KopPerW))
	}
	return t
}

// Tab3Spec exposes the sweep for a shared pool.
func Tab3Spec(cfg KVSConfig) Spec {
	rows, jobs := tab3Plan(cfg)
	return Spec{ID: "tab3", Jobs: jobs, Table: func() *Table { return tab3Render(rows) }}
}

// Tab3Table renders Tab. III.
func Tab3Table(cfg KVSConfig) *Table {
	return RunSpec(cfg.Parallel, Tab3Spec(cfg))
}

// clientConnSend and clientConnPoll expose the CPU client's raw
// connection steps for diagnostics and tests.
func clientConnSend(c *core.CPUClient, now sim.Time, req kvs.Request) sim.Time {
	return c.ConnSend(now, kvs.AppendRequest(nil, req))
}

func clientConnPoll(c *core.CPUClient) { c.ConnPoll() }
