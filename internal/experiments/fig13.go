package experiments

import (
	"fmt"

	"rambda/internal/core"
	"rambda/internal/dlrm"
	"rambda/internal/hostcpu"
	"rambda/internal/interconnect"
	"rambda/internal/memspace"
	"rambda/internal/runner"
	"rambda/internal/sim"
)

// Fig13Row is one bar of Fig. 13: MERCI-based DLRM inference throughput
// for one (dataset, system).
type Fig13Row struct {
	Dataset    string
	System     string
	Throughput float64 // queries/sec
}

// Fig13Config scales the DLRM experiment.
type Fig13Config struct {
	Queries  int
	Dim      int
	RowScale float64 // scales the per-category table heights
	Seed     uint64
	Parallel int // sweep-point workers; 0 = runner default
}

// DefaultFig13Config mirrors the paper's configuration at simulation
// scale (embedding dimension 64, memo budget 0.25x).
func DefaultFig13Config() Fig13Config {
	return Fig13Config{Queries: 20000, Dim: 64, RowScale: 0.25, Seed: 13}
}

// dlrmWire is the on-wire size of a query (feature ids) and its
// response (the CTR score).
func dlrmWire(q dlrm.Query, bundleSize int) (req, resp int) {
	return 8 + 4*q.NumItems(bundleSize), 8
}

// buildDLRM materializes a category's model in the given space/kind.
func buildDLRM(cat dlrm.Category, cfg Fig13Config, space *memspace.Space, kind memspace.Kind) (*dlrm.Model, *dlrm.Dataset) {
	cat.Rows = int(float64(cat.Rows) * cfg.RowScale)
	ds := dlrm.NewDataset(cat, cfg.Seed)
	rng := sim.NewRNG(cfg.Seed + 3)
	table := dlrm.NewTable(space, "emb-"+cat.Name, cat.Rows, cfg.Dim, kind, rng)
	memo := dlrm.BuildMemo(space, "memo-"+cat.Name, table, ds.Bundles, cat.Rows/4, kind, rng)
	mlp := dlrm.NewMLP(cfg.Dim, 32, rng)
	return dlrm.NewModel(table, memo, mlp, ds.Bundles), ds
}

// Per-query CPU instruction path: request preprocessing + reduction
// bookkeeping + MLP, per reduced vector and per query. Calibrated to
// MERCI's single-core throughput scaled to the testbed clock.
const (
	cpuDLRMBaseCycles   = 700
	cpuDLRMPerRowCycles = 45
	cpuDLRMGatherMLP    = 8
	// cpuDLRMDRAMFactor reflects the activation-bandwidth waste of
	// random 256 B row gathers: the effective host bandwidth is ~40% of
	// peak, which is what caps MERCI at eight cores (Sec. VI-D).
	cpuDLRMDRAMFactor = 3.2
)

// fig13Work is one precomputed request of the DLRM stream: the query,
// its wire sizes, and the inference trace/stats. The stream is
// timing-independent — query k is consumed by the k-th request in walk
// order regardless of simulated time — so the pipeline produces it
// ahead of the timing walk; sequence position is the lookahead
// (DESIGN.md §12, index-domain mode).
type fig13Work struct {
	q     dlrm.Query
	sc    dlrm.InferScratch
	st    dlrm.InferStats
	reqB  int
	respB int
}

// fig13Stream precomputes n requests through the zero-alloc gather
// path; the scratch per ring slot keeps the steady state allocation
// free at any worker count.
func fig13Stream(ds *dlrm.Dataset, model *dlrm.Model, n int) *sim.Pipeline[fig13Work] {
	return sim.NewPipeline(n, 64, 16, func(_ int, w *fig13Work) {
		ds.NextQueryInto(&w.q)
		w.reqB, w.respB = dlrmWire(w.q, ds.Cat.BundleSize)
		_, _, w.st = model.InferInto(w.q, dlrm.AggSum, &w.sc)
	})
}

// fig13CPU measures MERCI reduction on k cores behind the RDMA network
// front-end.
func fig13CPU(cat dlrm.Category, cfg Fig13Config, cores int) float64 {
	m := core.NewMachine(core.MachineConfig{Name: "srv", Cores: cores})
	model, ds := buildDLRM(cat, cfg, m.Space, memspace.KindDRAM)
	net := interconnect.NewDuplex("net", core.NetBW, core.NetOneWay)

	clients := cores * 8
	perClient := cfg.Queries / clients
	if perClient < 1 {
		perClient = 1
	}
	stream := fig13Stream(ds, model, clients*perClient)
	defer stream.Close()
	res := sim.ClosedLoop{Clients: clients, PerClient: perClient, Warmup: 1,
		Stagger: 60 * sim.Nanosecond, Jitter: 300 * sim.Nanosecond, JitterSeed: cfg.Seed}.Run(
		func(_ int, issue sim.Time) sim.Time {
			w := stream.Next()
			t := net.AtoB.Send(issue, w.reqB)
			t = m.CPU.Process(t, hostcpu.Work{
				Cycles:      cpuDLRMBaseCycles + cpuDLRMPerRowCycles*w.st.ReducedVectors,
				Accesses:    len(w.st.Trace),
				AccessBytes: model.Table.RowBytes(),
				Addr:        model.Table.Range().Base,
				Parallel:    true,
				MLP:         cpuDLRMGatherMLP,
				DRAMFactor:  cpuDLRMDRAMFactor,
			})
			return net.BtoA.Send(t, w.respB)
		})
	return res.Throughput
}

// apuReduceCyclesPerRow is the APU's pipelined SIMD reduction cost.
const apuReduceCyclesPerRow = 2

// fig13Rambda measures the accelerator variants. The base prototype
// suffers the wimpy-controller serial gather over the cc-link
// (ReadDataBlocking); LD/LH issue 64-wide waves against local memory
// (ReadDataWave). The CPU handles request preprocessing (Sec. IV-C's
// CPU-accelerator collaboration) via the intra-machine rings.
func fig13Rambda(cat dlrm.Category, cfg Fig13Config, variant core.AccelVariant) float64 {
	kind := memspace.KindDRAM
	if variant != core.AccelBase {
		kind = memspace.KindAccelLocal
	}
	m := core.NewMachine(core.MachineConfig{Name: "srv", Variant: variant})
	model, ds := buildDLRM(cat, cfg, m.Space, kind)
	net := interconnect.NewDuplex("net", core.NetBW, core.NetOneWay)
	ctx := &core.AppCtx{M: m, A: m.Accel}

	clients := 64
	perClient := cfg.Queries / clients
	if perClient < 1 {
		perClient = 1
	}
	stream := fig13Stream(ds, model, clients*perClient)
	defer stream.Close()
	addrs := make([]memspace.Addr, 0, 64)
	res := sim.ClosedLoop{Clients: clients, PerClient: perClient, Warmup: 1,
		Stagger: 60 * sim.Nanosecond, Jitter: 300 * sim.Nanosecond, JitterSeed: cfg.Seed}.Run(
		func(_ int, issue sim.Time) sim.Time {
			w := stream.Next()
			t := net.AtoB.Send(issue, w.reqB)
			// Preprocessing runs on one CPU core (the paper observes
			// ~60% of a core keeps up); request and model-ready input
			// cross the intra-machine rings.
			t = ctx.InvokeCPU(t, w.reqB, 500)

			if variant == core.AccelBase {
				// Dense gather over the cc-link: serial issue.
				for _, a := range w.st.Trace {
					t = m.Accel.ReadDataBlocking(t, a.Addr, a.Bytes)
				}
			} else {
				// 64-wide issue against accelerator-local memory.
				for i := 0; i < len(w.st.Trace); i += 64 {
					addrs = addrs[:0]
					for j := i; j < len(w.st.Trace) && j < i+64; j++ {
						addrs = append(addrs, w.st.Trace[j].Addr)
					}
					t = m.Accel.ReadDataWave(t, addrs, model.Table.RowBytes())
				}
			}
			t = ctx.Compute(t, apuReduceCyclesPerRow*w.st.ReducedVectors+w.st.FLOPs/64)
			return net.BtoA.Send(t, w.respB)
		})
	return res.Throughput
}

// fig13Plan enumerates (dataset x system) as runner jobs — six Amazon
// categories by five CPU core counts plus three accelerator variants,
// each building its own machine, embedding tables, and dataset.
func fig13Plan(cfg Fig13Config) ([]Fig13Row, []runner.Job) {
	variantName := map[core.AccelVariant]string{
		core.AccelBase: "RAMBDA", core.AccelLD: "RAMBDA-LD", core.AccelLH: "RAMBDA-LH",
	}
	type point struct {
		cat    dlrm.Category
		system string
		fn     func() float64
	}
	var points []point
	for _, cat := range dlrm.AmazonCategories {
		cat := cat
		for _, cores := range []int{1, 2, 4, 8, 16} {
			cores := cores
			points = append(points, point{
				cat: cat, system: fmt.Sprintf("CPU-%d", cores),
				fn: func() float64 { return fig13CPU(cat, cfg, cores) },
			})
		}
		for _, v := range []core.AccelVariant{core.AccelBase, core.AccelLD, core.AccelLH} {
			v := v
			points = append(points, point{
				cat: cat, system: variantName[v],
				fn: func() float64 { return fig13Rambda(cat, cfg, v) },
			})
		}
	}
	rows := make([]Fig13Row, len(points))
	jobs := runner.Jobs("fig13", len(points),
		func(i int) string { return points[i].cat.Name + "/" + points[i].system },
		func(i int) {
			p := points[i]
			rows[i] = Fig13Row{Dataset: p.cat.Name, System: p.system, Throughput: p.fn()}
		})
	return rows, jobs
}

// Fig13 runs all six datasets across the system matrix.
func Fig13(cfg Fig13Config) []Fig13Row {
	rows, jobs := fig13Plan(cfg)
	runner.MustRun(cfg.Parallel, jobs)
	return rows
}

func fig13Render(rows []Fig13Row) *Table {
	t := &Table{
		ID:      "fig13",
		Title:   "MERCI-based DLRM inference throughput (Amazon Review-like datasets)",
		Columns: []string{"dataset", "system", "throughput"},
		Notes: []string{
			"paper: CPU scales to 8 cores (membw-bound); RAMBDA 19.7-31.3% of CPU-1;",
			"LD 52.8-95.3% of CPU-8; LH 1.6-3.1x CPU-8 (network becomes the limit)",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, r.System, fmt.Sprintf("%.2f Mq/s", r.Throughput/1e6))
	}
	return t
}

// Fig13Spec exposes the sweep for a shared pool.
func Fig13Spec(cfg Fig13Config) Spec {
	rows, jobs := fig13Plan(cfg)
	return Spec{ID: "fig13", Jobs: jobs, Table: func() *Table { return fig13Render(rows) }}
}

// Fig13Table renders Fig. 13.
func Fig13Table(cfg Fig13Config) *Table {
	return RunSpec(cfg.Parallel, Fig13Spec(cfg))
}

// coreVariantBase/LD/LH expose the accelerator variants for tests.
func coreVariantBase() core.AccelVariant { return core.AccelBase }
func coreVariantLD() core.AccelVariant   { return core.AccelLD }
func coreVariantLH() core.AccelVariant   { return core.AccelLH }

// Fig13CPUOne and Fig13RambdaOne expose single-configuration runs for
// the benchmark harness.
func Fig13CPUOne(cat dlrm.Category, cfg Fig13Config, cores int) float64 {
	return fig13CPU(cat, cfg, cores)
}

// Fig13RambdaOne measures one accelerator variant.
func Fig13RambdaOne(cat dlrm.Category, cfg Fig13Config, v core.AccelVariant) float64 {
	return fig13Rambda(cat, cfg, v)
}
