package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// smallScaleout returns a fast sweep with the metrics export under dir.
func smallScaleout(dir, tag string) ScaleoutConfig {
	cfg := DefaultScaleoutConfig()
	cfg.Shards = []int{2, 4}
	cfg.Thetas = []float64{0, 0.99}
	cfg.Keys = 1 << 11
	cfg.Requests = 2400
	cfg.Parallel = 2
	cfg.MetricsOut = filepath.Join(dir, "scaleout-metrics-"+tag+".json")
	return cfg
}

// TestScaleoutDeterministicExports is the golden determinism check of
// the sharded cluster: the rendered table and the metrics export must
// be byte-identical across runs and across worker counts — migrations,
// stale retries, and per-shard loads are all functions of the seed
// alone, never of scheduling.
func TestScaleoutDeterministicExports(t *testing.T) {
	dir := t.TempDir()
	a := smallScaleout(dir, "a")
	b := smallScaleout(dir, "b")
	ta := ScaleoutTable(a).String()
	b.Parallel = 1 // scheduling must not matter either
	tb := ScaleoutTable(b).String()
	if ta != tb {
		t.Fatalf("same seed, different tables:\n%s\n---\n%s", ta, tb)
	}

	x, err := os.ReadFile(a.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	y, err := os.ReadFile(b.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) == 0 {
		t.Fatalf("%s: empty export", a.MetricsOut)
	}
	if !bytes.Equal(x, y) {
		t.Fatalf("metrics exports differ: same seed must export byte-identical files")
	}
}

// TestScaleoutSkewRebalances pins the experiment's headline claim: at
// Zipf 0.99 the cluster migrates hot keys and the end-of-run imbalance
// sits below the pre-migration window's, while every request still
// executes exactly once (the point would panic on a failed request).
func TestScaleoutSkewRebalances(t *testing.T) {
	cfg := DefaultScaleoutConfig()
	cfg.Keys = 1 << 12
	cfg.Requests = 4800
	for i, shards := range []int{4, 8} {
		row := scaleoutPoint(cfg, shards, 0.99, i, nil)
		if row.Migrations == 0 || row.MovedKeys == 0 {
			t.Fatalf("shards=%d: no migration under zipf 0.99: %+v", shards, row)
		}
		if row.ImbLast >= row.ImbFirst {
			t.Fatalf("shards=%d: imbalance did not drop: first %.2f, last %.2f",
				shards, row.ImbFirst, row.ImbLast)
		}
		if row.StaleRetries == 0 {
			t.Fatalf("shards=%d: map flips but no frontend ever refreshed: %+v", shards, row)
		}
		if row.Goodput <= 0 || row.P99 < row.Avg {
			t.Fatalf("shards=%d: implausible row %+v", shards, row)
		}
	}
}
