package experiments

import (
	"encoding/binary"
	"fmt"

	"rambda/internal/chainrep"
	"rambda/internal/fault"
	"rambda/internal/obs"
	"rambda/internal/runner"
	"rambda/internal/scaleout"
	"rambda/internal/sim"
)

// The chaos-scaleout experiment is the cluster-level availability gate:
// the sharded KVS of the scaleout sweep run under a seeded crash storm
// — replica crash windows land on random shards while hot-key
// migrations, an elastic AddShard, and a RemoveShard drain are all in
// flight. Each point reports goodput (requests that were actually
// served), tail latency, and the availability layer's work: failovers,
// rejoins, aborted migrations, elastic range chunks, and requests that
// exhausted their retry budget. The closed-loop rows self-throttle
// under faults (goodput dips, the tail stays bounded); the open-loop
// rows keep arriving at the configured rate, so the same crash windows
// pile timeout-and-backoff latency onto far more requests — the
// queueing behaviour a closed loop structurally hides. After every run
// the cluster must converge: all replicas rejoined and every live
// shard's chain byte-identical ("state" column).

// ChaosScaleoutConfig sizes the crash-rate x shards x arrival sweep.
type ChaosScaleoutConfig struct {
	// Shards, CrashPerK and Arrivals span the grid. CrashPerK is the
	// number of replica crash windows scheduled per 1000 requests
	// (0 = fault-free control); Arrivals selects closed- and/or
	// open-loop rows.
	Shards    []int
	CrashPerK []int
	Arrivals  []string

	// Workload shape, matching the scaleout sweep.
	Keys       int
	ValueBytes int
	Requests   int
	PutPercent int
	Frontends  int
	Theta      float64

	// OpenLoopInterval is the per-frontend inter-arrival time of the
	// open-loop rows. CrashDur is each crash window's length. Elastic
	// adds a mid-run AddShard at Requests/3 and a RemoveShard(0) drain
	// at 2*Requests/3, so the crash storm races the reshape too.
	OpenLoopInterval sim.Duration
	CrashDur         sim.Duration
	Elastic          bool

	Seed     uint64
	Parallel int // sweep-point workers; 0 = runner default

	// MetricsOut, when non-empty, exports every point's registry —
	// the scaleout gauges plus the fault-layer counters — as one JSON
	// file after the jobs have run.
	MetricsOut string
}

// DefaultChaosScaleoutConfig returns the full-size sweep.
func DefaultChaosScaleoutConfig() ChaosScaleoutConfig {
	return ChaosScaleoutConfig{
		Shards:    []int{4, 8},
		CrashPerK: []int{0, 4},
		Arrivals:  []string{"closed", "open"},

		Keys:       1 << 14,
		ValueBytes: 46,
		Requests:   16000,
		PutPercent: 20,
		Frontends:  8,
		Theta:      0.99,

		OpenLoopInterval: 2 * sim.Microsecond,
		CrashDur:         200 * sim.Microsecond,
		Elastic:          true,
		Seed:             31,
	}
}

// ChaosScaleoutRow is one (shards, crash rate, arrival) point.
type ChaosScaleoutRow struct {
	Shards    int
	CrashPerK int
	Arrival   string
	Goodput   float64 // served requests/sec of virtual time
	P99       sim.Time
	Failovers int64
	Rejoins   int64
	Aborted   int64
	RangeMigs int64
	Failed    int64
	Resizes   int64
	StateOK   bool
}

// chaosScaleoutCluster maps a point onto a cluster config — the
// scaleout sweep's sizing plus the retry/elasticity knobs.
func chaosScaleoutCluster(cfg ChaosScaleoutConfig, shards int, seed uint64) scaleout.Config {
	ccfg := scaleout.DefaultConfig()
	ccfg.Shards = shards
	ccfg.Seed = seed
	ccfg.SlotsPerShard = 2*cfg.Keys/shards + 1024
	ccfg.RebalanceEvery = cfg.Requests / 12
	ccfg.ImbalanceThreshold = 1.15
	ccfg.HotKeysPerMove = 8
	ccfg.MaxMigrations = 16
	return ccfg
}

// chaosScaleoutPoint runs one grid point: preload, schedule the crash
// storm over the run's nominal horizon, drive the workload (closed or
// open loop) with the elastic reshape racing it, then converge and
// check replica agreement.
func chaosScaleoutPoint(cfg ChaosScaleoutConfig, shards, crashPerK int, arrival string,
	point int, reg *obs.Registry) ChaosScaleoutRow {
	seed := runner.Seed("chaos-scaleout", point)
	ccfg := chaosScaleoutCluster(cfg, shards, seed)
	c := scaleout.New(ccfg)
	if reg != nil {
		c.RegisterMetrics(reg, "scaleout")
		c.RegisterFaultMetrics(reg, "scaleout")
		reg.SetInterval(scaleoutMetricsInterval)
	}

	var key []byte
	val := make([]byte, cfg.ValueBytes)
	now := sim.Time(0)
	for i := 0; i < cfg.Keys; i++ {
		key = appendKVSKey(key[:0], i)
		binary.LittleEndian.PutUint64(val, uint64(i))
		now = c.Preload(now, key, val)
	}
	t0 := now

	perCli := cfg.Requests / cfg.Frontends
	executed := cfg.Requests
	var horizon sim.Time
	if arrival == "open" {
		executed = perCli * cfg.Frontends
		horizon = sim.Time(cfg.OpenLoopInterval) * sim.Time(perCli)
	} else {
		// The closed loop's span depends on per-request latency; ~8us
		// is the fault-free testbed figure. Windows scheduled past the
		// actual end simply never open — the storm's density is what
		// matters, not its exact tail.
		horizon = sim.Time(cfg.Requests) * sim.Time(8*sim.Microsecond)
	}

	// The crash storm is laid out before traffic starts, from its own
	// subseed: node and start time are uniform over the pool and the
	// horizon. The elastic-added shard (id == shards) is in the pool,
	// so crashes race the reshape's installs too.
	if crashPerK > 0 {
		frng := sim.NewRNG(runner.SubSeed(seed, 2))
		pool := shards
		if cfg.Elastic {
			pool++
		}
		n := cfg.Requests * crashPerK / 1000
		wins := make([]fault.Window, 0, n)
		for i := 0; i < n; i++ {
			node := fmt.Sprintf("s%dr%d", frng.Intn(pool), frng.Intn(ccfg.Replicas))
			from := t0 + sim.Time(frng.Uint64n(uint64(horizon)))
			wins = append(wins, fault.Window{
				Node: node, Kind: fault.Crash, From: from, To: from + sim.Time(cfg.CrashDur),
			})
		}
		c.EnableFaults(fault.New(fault.Plan{Seed: seed, Nodes: wins}))
	} else if cfg.Elastic {
		// Fault-free rows still reshape; the nil injector keeps every
		// request on the fast path.
		c.EnableFaults(fault.New(fault.Plan{}))
	}

	wrng := sim.NewRNG(runner.SubSeed(seed, 1))
	var zipf *sim.Zipf
	if cfg.Theta > 0 {
		zipf = sim.NewZipf(wrng, uint64(cfg.Keys), cfg.Theta)
	}
	fes := make([]*scaleout.Frontend, cfg.Frontends)
	for i := range fes {
		fes[i] = c.NewFrontend()
	}

	addAt, rmAt := cfg.Requests/3, 2*cfg.Requests/3
	added, removed := !cfg.Elastic, !cfg.Elastic
	reqIdx := 0
	body := func(fe *scaleout.Frontend, issue sim.Time) sim.Time {
		i := reqIdx
		reqIdx++
		var k int
		if zipf != nil {
			k = int(zipf.Next())
		} else {
			k = wrng.Intn(cfg.Keys)
		}
		key = appendKVSKey(key[:0], k)
		var done sim.Time
		if wrng.Intn(100) < cfg.PutPercent {
			binary.LittleEndian.PutUint64(val, uint64(i))
			done, _ = fe.TryPut(issue, key, val)
		} else {
			_, done, _ = fe.TryGet(issue, key)
		}
		// The reshape rides the request loop: the grow and the drain
		// are asked for once their trigger index passes, and re-asked
		// until the previous resize's chunk sequence has drained.
		if !added && i >= addAt {
			if _, err := c.AddShard(done); err == nil {
				added = true
			}
		} else if added && !removed && i >= rmAt {
			if err := c.RemoveShard(done, 0); err == nil {
				removed = true
			}
		}
		return done
	}

	var end sim.Time
	if arrival == "open" {
		drv := sim.OpenLoop{Clients: cfg.Frontends, PerCli: perCli, Interval: cfg.OpenLoopInterval}
		res := drv.Run(func(cli int, issue sim.Time) sim.Time {
			return body(fes[cli], t0+issue) - t0
		})
		end = t0 + res.End
	} else {
		now = t0
		for i := 0; i < cfg.Requests; i++ {
			now = body(fes[i%len(fes)], now)
		}
		end = now
	}

	// Converge: heal every chain, finish the reshape (issuing the drain
	// here if the run ended before it was accepted), heal again.
	end = c.RejoinAll(end)
	if cfg.Elastic && !removed {
		end = c.DrainResize(end)
		if err := c.RemoveShard(end, 0); err == nil {
			removed = true
		}
	}
	end = c.DrainResize(end)
	end = c.RejoinAll(end)
	if reg != nil {
		reg.SnapshotNow(end)
	}

	stateOK := true
	nb := ccfg.SlotsPerShard * ccfg.SlotBytes
	for i := 0; i < c.Shards(); i++ {
		if c.Retired(i) {
			continue
		}
		ch := c.Chain(i)
		for j := 1; j < len(ch.Nodes); j++ {
			if !chainrep.StateEqual(ch.Nodes[0].Store, ch.Nodes[j].Store, nb) {
				stateOK = false
			}
		}
	}

	st := c.Stats()
	hist := c.MergedLatency()
	good := int64(executed) - st.Failed
	goodput := 0.0
	if end > t0 {
		goodput = float64(good) / (float64(end-t0) / float64(sim.Second))
	}
	return ChaosScaleoutRow{
		Shards:    shards,
		CrashPerK: crashPerK,
		Arrival:   arrival,
		Goodput:   goodput,
		P99:       hist.P99(),
		Failovers: st.Failovers,
		Rejoins:   st.Rejoins,
		Aborted:   st.Aborted,
		RangeMigs: st.RangeMigrations,
		Failed:    st.Failed,
		Resizes:   st.Resizes,
		StateOK:   stateOK,
	}
}

// chaosScaleoutPlan enumerates the grid as runner jobs, slot-indexed so
// the rendered table and the metrics export are identical for every
// worker count.
func chaosScaleoutPlan(cfg ChaosScaleoutConfig) (func() *Table, []runner.Job) {
	type point struct {
		shards, crash int
		arrival       string
	}
	var points []point
	for _, s := range cfg.Shards {
		for _, cr := range cfg.CrashPerK {
			for _, ar := range cfg.Arrivals {
				points = append(points, point{s, cr, ar})
			}
		}
	}
	rows := make([]ChaosScaleoutRow, len(points))
	var regs []*obs.Registry
	if cfg.MetricsOut != "" {
		regs = make([]*obs.Registry, len(points))
	}
	jobs := runner.Jobs("chaos-scaleout", len(points),
		func(i int) string {
			return fmt.Sprintf("shards=%d/crash=%d/%s", points[i].shards, points[i].crash, points[i].arrival)
		},
		func(i int) {
			var reg *obs.Registry
			if regs != nil {
				regs[i] = obs.NewRegistry()
				reg = regs[i]
			}
			rows[i] = chaosScaleoutPoint(cfg, points[i].shards, points[i].crash, points[i].arrival, i, reg)
		})
	return func() *Table { return chaosScaleoutRender(cfg, rows, regs) }, jobs
}

func chaosScaleoutRender(cfg ChaosScaleoutConfig, rows []ChaosScaleoutRow, regs []*obs.Registry) *Table {
	t := &Table{
		ID:    "chaos-scaleout",
		Title: "Sharded cluster under crash storms: failover, elastic resharding, retry budgets",
		Columns: []string{"shards", "crash/kreq", "arrival", "goodput", "p99",
			"failovers", "rejoins", "aborted-migr", "range-migr", "failed", "state"},
		Notes: []string{
			fmt.Sprintf("crash/kreq: %v-long replica crash windows per 1000 requests; goodput excludes retry-exhausted requests", sim.Duration(cfg.CrashDur)),
			"closed rows self-throttle (one outstanding request); open rows keep arriving, so the same windows tax far more requests",
			"every row ends converged: replicas rejoined, reshape finished, chains byte-equal (state ok)",
		},
	}
	for _, r := range rows {
		state := "ok"
		if !r.StateOK {
			state = "FAIL"
		}
		t.AddRow(
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.CrashPerK),
			r.Arrival,
			fmt.Sprintf("%.1f Kops", r.Goodput/1e3),
			usStr(r.P99),
			fmt.Sprintf("%d", r.Failovers),
			fmt.Sprintf("%d", r.Rejoins),
			fmt.Sprintf("%d", r.Aborted),
			fmt.Sprintf("%d", r.RangeMigs),
			fmt.Sprintf("%d", r.Failed),
			state,
		)
	}
	if cfg.MetricsOut != "" {
		mj := make([]obs.MetricsJSON, len(regs))
		for i, reg := range regs {
			mj[i] = obs.MetricsJSON{Name: fmt.Sprintf("shards=%d/crash=%d/%s",
				rows[i].Shards, rows[i].CrashPerK, rows[i].Arrival), Registry: reg}
		}
		if err := obs.WriteMetricsFile(cfg.MetricsOut, mj); err != nil {
			panic(fmt.Sprintf("chaos-scaleout: write metrics: %v", err))
		}
		t.Notes = append(t.Notes, "metrics exported (-chaos-scaleout-metrics-out)")
	}
	return t
}

// ChaosScaleoutSpec exposes the sweep for a shared pool.
func ChaosScaleoutSpec(cfg ChaosScaleoutConfig) Spec {
	table, jobs := chaosScaleoutPlan(cfg)
	return Spec{ID: "chaos-scaleout", Jobs: jobs, Table: table}
}

// ChaosScaleoutTable runs the whole sweep and renders it.
func ChaosScaleoutTable(cfg ChaosScaleoutConfig) *Table {
	return RunSpec(cfg.Parallel, ChaosScaleoutSpec(cfg))
}
