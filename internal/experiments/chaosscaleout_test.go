package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// smallChaosScaleout returns a fast sweep with the metrics export
// under dir.
func smallChaosScaleout(dir, tag string) ChaosScaleoutConfig {
	cfg := DefaultChaosScaleoutConfig()
	cfg.Shards = []int{4}
	cfg.CrashPerK = []int{0, 4}
	cfg.Keys = 1 << 11
	cfg.Requests = 2400
	cfg.Parallel = 2
	cfg.MetricsOut = filepath.Join(dir, "chaos-scaleout-metrics-"+tag+".json")
	return cfg
}

// TestChaosScaleoutDeterministicExports is the cluster chaos gate's
// own determinism check: crash storms, failovers, migration aborts and
// the elastic reshape are all functions of the seed alone, so the
// rendered table and the metrics export must be byte-identical across
// runs and across worker counts.
func TestChaosScaleoutDeterministicExports(t *testing.T) {
	dir := t.TempDir()
	a := smallChaosScaleout(dir, "a")
	b := smallChaosScaleout(dir, "b")
	ta := ChaosScaleoutTable(a).String()
	b.Parallel = 1 // scheduling must not matter either
	tb := ChaosScaleoutTable(b).String()
	if ta != tb {
		t.Fatalf("same seed, different tables:\n%s\n---\n%s", ta, tb)
	}

	x, err := os.ReadFile(a.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	y, err := os.ReadFile(b.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) == 0 {
		t.Fatalf("%s: empty export", a.MetricsOut)
	}
	if !bytes.Equal(x, y) {
		t.Fatalf("metrics exports differ: same seed must export byte-identical files")
	}
}

// TestChaosScaleoutConvergesUnderCrashes pins the gate's headline
// claim: under a crash storm racing hot-key migration and the elastic
// reshape, every row still converges — replicas rejoined, reshape
// finished (two resizes: one grow, one drain), chains byte-equal — and
// the availability layer visibly worked.
func TestChaosScaleoutConvergesUnderCrashes(t *testing.T) {
	cfg := DefaultChaosScaleoutConfig()
	cfg.Keys = 1 << 11
	cfg.Requests = 2400
	for i, arrival := range []string{"closed", "open"} {
		row := chaosScaleoutPoint(cfg, 4, 4, arrival, i, nil)
		if !row.StateOK {
			t.Fatalf("%s: replicas diverged after convergence: %+v", arrival, row)
		}
		if row.Resizes != 2 {
			t.Fatalf("%s: reshape did not finish: %+v", arrival, row)
		}
		if row.Failovers == 0 || row.Rejoins == 0 {
			t.Fatalf("%s: crash storm never hit a serving chain: %+v", arrival, row)
		}
		if row.RangeMigs == 0 {
			t.Fatalf("%s: reshape moved nothing: %+v", arrival, row)
		}
		if row.Goodput <= 0 {
			t.Fatalf("%s: implausible goodput: %+v", arrival, row)
		}
	}
}

// TestChaosScaleoutOpenLoopShowsQueueing pins the arrival-process
// satellite: with the same crash schedule density, the open loop — which
// keeps issuing while requests are stuck in failover timeouts — absorbs
// strictly more fault encounters than the self-throttling closed loop,
// and its fault-free row is unaffected (no spurious queueing from the
// arrival process itself).
func TestChaosScaleoutOpenLoopShowsQueueing(t *testing.T) {
	cfg := DefaultChaosScaleoutConfig()
	cfg.Keys = 1 << 11
	cfg.Requests = 2400

	closed := chaosScaleoutPoint(cfg, 4, 4, "closed", 0, nil)
	open := chaosScaleoutPoint(cfg, 4, 4, "open", 1, nil)
	if open.Failovers <= closed.Failovers {
		t.Fatalf("open loop hit %d failovers, closed %d; open arrivals should meet more windows",
			open.Failovers, closed.Failovers)
	}

	calm := chaosScaleoutPoint(cfg, 4, 0, "open", 2, nil)
	if calm.Failovers != 0 || calm.Failed != 0 {
		t.Fatalf("fault-free open row took fault paths: %+v", calm)
	}
	if open.P99 <= calm.P99 {
		t.Fatalf("crash storm did not move the open-loop tail: calm p99 %v, storm p99 %v",
			calm.P99, open.P99)
	}
}
